// Workload generators: structural invariants of the synthetic mesh and the
// MD water box, plus determinism across calls.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "workload/md.hpp"
#include "workload/mesh.hpp"
#include "workload/rng.hpp"

namespace wl = chaos::wl;
using chaos::f64;
using chaos::i64;

TEST(Mesh, SizesMatchThePaper) {
  EXPECT_EQ(wl::mesh_10k().nnodes, 10648);   // "10K mesh points"
  EXPECT_EQ(wl::mesh_53k().nnodes, 53428);   // "53K mesh points"
}

TEST(Mesh, EdgesAreValidAndSelfLoopFree) {
  const auto m = wl::make_tet_mesh(6, 5, 4);
  EXPECT_EQ(m.nnodes, 120);
  EXPECT_EQ(static_cast<i64>(m.edge1.size()), m.nedges);
  EXPECT_EQ(static_cast<i64>(m.edge2.size()), m.nedges);
  for (i64 e = 0; e < m.nedges; ++e) {
    EXPECT_GE(m.edge1[static_cast<std::size_t>(e)], 0);
    EXPECT_LT(m.edge1[static_cast<std::size_t>(e)], m.nnodes);
    EXPECT_GE(m.edge2[static_cast<std::size_t>(e)], 0);
    EXPECT_LT(m.edge2[static_cast<std::size_t>(e)], m.nnodes);
    EXPECT_NE(m.edge1[static_cast<std::size_t>(e)],
              m.edge2[static_cast<std::size_t>(e)]);
  }
}

TEST(Mesh, NoDuplicateUndirectedEdges) {
  const auto m = wl::make_tet_mesh(5, 5, 5);
  std::set<std::pair<i64, i64>> seen;
  for (i64 e = 0; e < m.nedges; ++e) {
    auto key = std::minmax(m.edge1[static_cast<std::size_t>(e)],
                           m.edge2[static_cast<std::size_t>(e)]);
    EXPECT_TRUE(seen.insert({key.first, key.second}).second)
        << "duplicate edge " << key.first << "-" << key.second;
  }
}

TEST(Mesh, DegreeIsTetMeshLike) {
  // Interior nodes of a Kuhn tetrahedralization have degree 14; the mesh
  // average (with boundary) sits around 10-13 like real tet meshes.
  const auto m = wl::make_tet_mesh(12, 12, 12);
  const f64 avg_degree =
      2.0 * static_cast<f64>(m.nedges) / static_cast<f64>(m.nnodes);
  EXPECT_GT(avg_degree, 9.0);
  EXPECT_LT(avg_degree, 14.5);
}

TEST(Mesh, RenumberingScramblesLocality) {
  // With renumbering, consecutive node ids must NOT be spatially adjacent:
  // the mean |edge id difference| should be large (O(n)), unlike the
  // structured numbering where neighbors differ by O(nx*ny).
  const auto m = wl::make_tet_mesh(10, 10, 10, /*seed=*/7, 0.25,
                                   /*renumber=*/true);
  f64 mean_gap = 0.0;
  for (i64 e = 0; e < m.nedges; ++e) {
    mean_gap += std::abs(static_cast<f64>(m.edge1[static_cast<std::size_t>(e)] -
                                          m.edge2[static_cast<std::size_t>(e)]));
  }
  mean_gap /= static_cast<f64>(m.nedges);
  EXPECT_GT(mean_gap, static_cast<f64>(m.nnodes) / 5.0);

  const auto s = wl::make_tet_mesh(10, 10, 10, 7, 0.25, /*renumber=*/false);
  f64 mean_gap_structured = 0.0;
  for (i64 e = 0; e < s.nedges; ++e) {
    mean_gap_structured += std::abs(
        static_cast<f64>(s.edge1[static_cast<std::size_t>(e)] -
                         s.edge2[static_cast<std::size_t>(e)]));
  }
  mean_gap_structured /= static_cast<f64>(s.nedges);
  EXPECT_LT(mean_gap_structured, mean_gap / 2.0);
}

TEST(Mesh, DeterministicForEqualSeeds) {
  const auto a = wl::make_tet_mesh(6, 6, 6, 99);
  const auto b = wl::make_tet_mesh(6, 6, 6, 99);
  EXPECT_EQ(a.edge1, b.edge1);
  EXPECT_EQ(a.x, b.x);
  const auto c = wl::make_tet_mesh(6, 6, 6, 100);
  EXPECT_NE(a.edge1, c.edge1);
}

TEST(Md, PaperSizedSystem) {
  const auto s = wl::make_water_box();
  EXPECT_EQ(s.natoms, 648);  // 216 waters
  EXPECT_GT(s.npairs, 0);
}

TEST(Md, SystemIsNeutralAndChargesAreWaterLike) {
  const auto s = wl::make_water_box(4);
  f64 total = 0.0;
  for (f64 q : s.charge) total += q;
  EXPECT_NEAR(total, 0.0, 1e-9);
  for (i64 a = 0; a < s.natoms; ++a) {
    if (a % 3 == 0) {
      EXPECT_LT(s.charge[static_cast<std::size_t>(a)], 0.0);  // oxygen
    } else {
      EXPECT_GT(s.charge[static_cast<std::size_t>(a)], 0.0);  // hydrogen
    }
  }
}

TEST(Md, PairsRespectCutoffAndExcludeIntramolecular) {
  const auto s = wl::make_water_box(4, 6.0);
  auto min_image = [&](f64 d) {
    if (d > 0.5 * s.box) d -= s.box;
    if (d < -0.5 * s.box) d += s.box;
    return d;
  };
  for (i64 k = 0; k < s.npairs; ++k) {
    const i64 a = s.pair1[static_cast<std::size_t>(k)];
    const i64 b = s.pair2[static_cast<std::size_t>(k)];
    EXPECT_NE(a / 3, b / 3) << "intramolecular pair in the neighbor list";
    const f64 dx = min_image(s.x[static_cast<std::size_t>(a)] -
                             s.x[static_cast<std::size_t>(b)]);
    const f64 dy = min_image(s.y[static_cast<std::size_t>(a)] -
                             s.y[static_cast<std::size_t>(b)]);
    const f64 dz = min_image(s.z[static_cast<std::size_t>(a)] -
                             s.z[static_cast<std::size_t>(b)]);
    EXPECT_LT(std::sqrt(dx * dx + dy * dy + dz * dz), 6.0);
  }
}

TEST(Md, CellListMatchesAllPairsReference) {
  // molecules_per_side=6 with cutoff 6.0 gives floor(box/cutoff) = 3, so
  // the generator takes the cell-list branch; rebuild the neighbor list
  // with the plain all-pairs scan and require the same pair set.
  const auto s = wl::make_water_box(6, 6.0);
  ASSERT_GE(static_cast<i64>(s.box / s.cutoff), 3)
      << "config no longer exercises the cell-list branch";
  auto min_image = [&](f64 d) {
    if (d > 0.5 * s.box) d -= s.box;
    if (d < -0.5 * s.box) d += s.box;
    return d;
  };
  std::vector<std::pair<i64, i64>> expect;
  const f64 rc2 = s.cutoff * s.cutoff;
  for (i64 a = 0; a < s.natoms; ++a) {
    for (i64 b = a + 1; b < s.natoms; ++b) {
      if (a / 3 == b / 3) continue;
      const f64 dx = min_image(s.x[static_cast<std::size_t>(a)] -
                               s.x[static_cast<std::size_t>(b)]);
      const f64 dy = min_image(s.y[static_cast<std::size_t>(a)] -
                               s.y[static_cast<std::size_t>(b)]);
      const f64 dz = min_image(s.z[static_cast<std::size_t>(a)] -
                               s.z[static_cast<std::size_t>(b)]);
      if (dx * dx + dy * dy + dz * dz < rc2) expect.emplace_back(a, b);
    }
  }
  std::vector<std::pair<i64, i64>> got;
  for (i64 k = 0; k < s.npairs; ++k) {
    got.emplace_back(s.pair1[static_cast<std::size_t>(k)],
                     s.pair2[static_cast<std::size_t>(k)]);
  }
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, expect);  // expect is emitted sorted already
}

TEST(Md, PairDensityIsLiquidLike) {
  const auto s = wl::make_water_box(6, 8.0);
  // Each atom should see dozens of neighbors within 8 A at water density.
  const f64 pairs_per_atom =
      2.0 * static_cast<f64>(s.npairs) / static_cast<f64>(s.natoms);
  EXPECT_GT(pairs_per_atom, 40.0);
  EXPECT_LT(pairs_per_atom, 300.0);
}

TEST(Rng, DeterministicAndUniformish) {
  wl::Rng a(5), b(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
  wl::Rng r(17);
  f64 mean = 0.0;
  constexpr int kSamples = 10000;
  for (int i = 0; i < kSamples; ++i) {
    const f64 v = r.next_f64();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    mean += v;
  }
  mean /= kSamples;
  EXPECT_NEAR(mean, 0.5, 0.02);
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.below(7);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 7);
  }
}
