// Inspector (localize): localized references must address exactly the right
// values, duplicates must collapse to one ghost slot, and schedules must be
// internally consistent — swept across distributions and process counts.
#include <gtest/gtest.h>

#include <numeric>
#include <tuple>
#include <vector>

#include "core/executor.hpp"
#include "core/inspector.hpp"
#include "dist/darray.hpp"
#include "rt/collectives.hpp"
#include "workload/rng.hpp"

namespace rt = chaos::rt;
namespace dist = chaos::dist;
namespace core = chaos::core;
using chaos::f64;
using chaos::i64;

namespace {

std::shared_ptr<const dist::Distribution> make_dist(rt::Process& p, int kind,
                                                    i64 n) {
  switch (kind) {
    case 0: return dist::Distribution::block(p, n);
    case 1: return dist::Distribution::cyclic(p, n);
    default: {
      auto md = dist::Distribution::block(p, n);
      std::vector<i64> slice(static_cast<std::size_t>(md->my_local_size()));
      for (std::size_t l = 0; l < slice.size(); ++l) {
        const i64 g = md->global_of(p.rank(), static_cast<i64>(l));
        slice[l] = (g * 11 + 2) % p.nprocs();
      }
      return dist::Distribution::irregular_from_map(p, slice, *md, 16);
    }
  }
}

/// Deterministic per-rank reference list into [0, n).
std::vector<i64> make_refs(int rank, i64 n, i64 count, chaos::u64 seed) {
  chaos::wl::Rng rng(seed + static_cast<chaos::u64>(rank) * 977);
  std::vector<i64> refs(static_cast<std::size_t>(count));
  for (auto& r : refs) r = rng.below(n);
  return refs;
}

std::string kind_name(int kind) {
  return kind == 0 ? "block" : kind == 1 ? "cyclic" : "irregular";
}

}  // namespace

class LocalizeSweep
    : public ::testing::TestWithParam<std::tuple<int, i64, int>> {};

INSTANTIATE_TEST_SUITE_P(
    KindsSizesProcs, LocalizeSweep,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Values<i64>(4, 100, 333),
                       ::testing::Values(1, 2, 4, 8)),
    [](const auto& info) {
      return kind_name(std::get<0>(info.param)) + "_N" +
             std::to_string(std::get<1>(info.param)) + "_P" +
             std::to_string(std::get<2>(info.param));
    });

TEST_P(LocalizeSweep, GatherThroughScheduleReadsCorrectValues) {
  const auto [kind, n, P] = GetParam();
  rt::Machine::run(P, [&, kind = kind, n = n](rt::Process& p) {
    auto d = make_dist(p, kind, n);
    dist::DistributedArray<f64> x(p, d);
    x.fill_by_global([](i64 g) { return 100.0 + static_cast<f64>(g); });

    const auto refs = make_refs(p.rank(), n, 3 * n + p.rank(), 5);
    auto loc = core::localize(p, *d, refs);

    ASSERT_EQ(loc.refs.size(), refs.size());
    x.resize_ghost(loc.schedule.nghost);
    core::gather_ghosts<f64>(p, loc.schedule, x.local(), x.ghost());
    for (std::size_t i = 0; i < refs.size(); ++i) {
      EXPECT_DOUBLE_EQ(x.localized(loc.refs[i]),
                       100.0 + static_cast<f64>(refs[i]))
          << "ref " << i << " -> global " << refs[i];
    }
  });
}

TEST_P(LocalizeSweep, DuplicateReferencesShareGhostSlots) {
  const auto [kind, n, P] = GetParam();
  rt::Machine::run(P, [&, kind = kind, n = n](rt::Process& p) {
    auto d = make_dist(p, kind, n);
    // Reference global 0 and n-1, each many times.
    std::vector<i64> refs;
    for (int k = 0; k < 50; ++k) {
      refs.push_back(0);
      refs.push_back(n - 1);
    }
    auto loc = core::localize(p, *d, refs);
    // At most two distinct off-process targets => at most 2 ghost slots.
    EXPECT_LE(loc.schedule.nghost, 2);
    // All occurrences of the same global localize identically.
    for (std::size_t i = 2; i < refs.size(); ++i) {
      EXPECT_EQ(loc.refs[i], loc.refs[i - 2]);
    }
  });
}

TEST_P(LocalizeSweep, ScheduleAccountingIsConsistent) {
  const auto [kind, n, P] = GetParam();
  rt::Machine::run(P, [&, kind = kind, n = n](rt::Process& p) {
    auto d = make_dist(p, kind, n);
    const auto refs = make_refs(p.rank(), n, 2 * n, 17);
    auto loc = core::localize(p, *d, refs);

    // Full CSR structural validation, plus: nghost equals the sum of
    // per-source recv counts and recv_offset is the cached prefix.
    EXPECT_TRUE(loc.schedule.validate());
    i64 sum = 0;
    for (int s = 0; s < p.nprocs(); ++s) {
      EXPECT_EQ(loc.schedule.recv_offset(s), sum);
      sum += loc.schedule.recv_count(s);
    }
    EXPECT_EQ(sum, loc.schedule.nghost);
    EXPECT_EQ(loc.schedule.nlocal_at_build, d->my_local_size());
    // Ghost slots never exceed distinct off-process references.
    EXPECT_LE(loc.schedule.nghost, loc.off_process_refs);
    // Every localized index is within [0, nlocal + nghost).
    for (i64 r : loc.refs) {
      EXPECT_GE(r, 0);
      EXPECT_LT(r, d->my_local_size() + loc.schedule.nghost);
    }
    // Send/recv sides must agree pairwise across the machine: what I send
    // to rank d equals what rank d expects from me.
    std::vector<i64> my_send_counts(static_cast<std::size_t>(p.nprocs()));
    for (int r = 0; r < p.nprocs(); ++r) {
      my_send_counts[static_cast<std::size_t>(r)] = loc.schedule.send_count(r);
      EXPECT_EQ(loc.schedule.send_to(r).size(),
                static_cast<std::size_t>(loc.schedule.send_count(r)));
    }
    auto send_matrix = rt::allgatherv<i64>(p, my_send_counts);
    for (int src = 0; src < p.nprocs(); ++src) {
      const i64 they_send_me =
          send_matrix[static_cast<std::size_t>(src) *
                          static_cast<std::size_t>(p.nprocs()) +
                      static_cast<std::size_t>(p.rank())];
      EXPECT_EQ(they_send_me, loc.schedule.recv_count(src));
    }
  });
}

TEST(Localize, AllLocalReferencesNeedNoCommunication) {
  rt::Machine::run(4, [](rt::Process& p) {
    auto d = dist::Distribution::block(p, 64);
    const auto mine = d->my_globals();
    auto loc = core::localize(p, *d, mine);
    EXPECT_EQ(loc.schedule.nghost, 0);
    EXPECT_EQ(loc.off_process_refs, 0);
    for (std::size_t l = 0; l < mine.size(); ++l) {
      EXPECT_EQ(loc.refs[l], static_cast<i64>(l));
    }
  });
}

TEST(Localize, EmptyReferenceListIsLegal) {
  rt::Machine::run(4, [](rt::Process& p) {
    auto d = dist::Distribution::block(p, 64);
    auto loc = core::localize(p, *d, std::vector<i64>{});
    EXPECT_TRUE(loc.refs.empty());
    EXPECT_EQ(loc.schedule.nghost, 0);
  });
}

TEST(Localize, ManyBatchesShareOneDedupTable) {
  rt::Machine::run(4, [](rt::Process& p) {
    constexpr i64 n = 40;
    auto d = dist::Distribution::block(p, n);
    // Both batches reference the same single remote element.
    const i64 target = (p.rank() == 0) ? n - 1 : 0;
    std::vector<i64> b1(7, target), b2(9, target);
    const std::span<const i64> batches[] = {b1, b2};
    auto loc = core::localize_many(p, *d, batches);
    ASSERT_EQ(loc.refs.size(), 2u);
    EXPECT_EQ(loc.refs[0].size(), b1.size());
    EXPECT_EQ(loc.refs[1].size(), b2.size());
    // One distinct off-process target => exactly one ghost slot shared by
    // both batches.
    EXPECT_EQ(loc.schedule.nghost, 1);
    EXPECT_EQ(loc.refs[0][0], loc.refs[1][0]);
  });
}

class WorkspaceSweep : public LocalizeSweep {};

INSTANTIATE_TEST_SUITE_P(
    KindsSizesProcs, WorkspaceSweep,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Values<i64>(4, 100, 333),
                       ::testing::Values(1, 2, 4, 8)),
    [](const auto& info) {
      return kind_name(std::get<0>(info.param)) + "_N" +
             std::to_string(std::get<1>(info.param)) + "_P" +
             std::to_string(std::get<2>(info.param));
    });

TEST_P(WorkspaceSweep, WorkspacePathIsBitIdenticalToValuePath) {
  const auto [kind, n, P] = GetParam();
  rt::Machine::run(P, [&, kind = kind, n = n](rt::Process& p) {
    auto d = make_dist(p, kind, n);
    const auto refs = make_refs(p.rank(), n, 3 * n + p.rank(), 23);
    const auto value = core::localize(p, *d, refs);

    core::InspectorWorkspace ws;
    core::Localized out;
    // Three rounds through one workspace: the first sizes the buffers, the
    // rest re-run warm — every round must reproduce the value-path result
    // exactly (refs, full CSR schedule, and the pre-dedup counter).
    for (int round = 0; round < 3; ++round) {
      core::localize(p, *d, refs, ws, out);
      EXPECT_EQ(out.refs, value.refs);
      EXPECT_EQ(out.schedule.send_indices, value.schedule.send_indices);
      EXPECT_EQ(out.schedule.send_offsets, value.schedule.send_offsets);
      EXPECT_EQ(out.schedule.recv_offsets, value.schedule.recv_offsets);
      EXPECT_EQ(out.schedule.nghost, value.schedule.nghost);
      EXPECT_EQ(out.schedule.nlocal_at_build, value.schedule.nlocal_at_build);
      EXPECT_EQ(out.off_process_refs, value.off_process_refs);
    }
  });
}

TEST(Localize, HeavyDuplicatesCollapseLocateQueryVolume) {
  // Each distinct global is referenced 8x; the dedup-first pipeline must
  // push only the distinct set through the translation table.
  rt::Machine::run(4, [](rt::Process& p) {
    constexpr i64 n = 128;
    auto d = make_dist(p, 2, n);  // irregular: locate goes through the table
    std::vector<i64> refs;
    const i64 distinct = n / 2;
    for (int rep = 0; rep < 8; ++rep) {
      for (i64 g = 0; g < distinct; ++g) {
        refs.push_back((g * 5 + static_cast<i64>(p.rank())) % n);
      }
    }

    core::InspectorWorkspace ws;
    core::Localized out;
    const i64 queries_before = d->table()->stats().queries;
    core::localize(p, *d, refs, ws, out);
    const i64 queries = d->table()->stats().queries - queries_before;

    EXPECT_EQ(ws.last_total_refs(), static_cast<i64>(refs.size()));
    EXPECT_EQ(ws.last_distinct_refs(), distinct);
    EXPECT_EQ(queries, distinct);  // 8x fewer than the reference stream
    // Wire volume never exceeds the distinct set either.
    EXPECT_LE(d->table()->stats().wire_queries, distinct);

    // And the collapsed pipeline still matches the value path bit-for-bit.
    const auto value = core::localize(p, *d, refs);
    EXPECT_EQ(out.refs, value.refs);
    EXPECT_EQ(out.schedule.send_indices, value.schedule.send_indices);
    EXPECT_EQ(out.off_process_refs, value.off_process_refs);
  });
}

TEST(Localize, WorkspaceWarmRerunKeepsBufferAddressesStable) {
  // Zero-allocation claim, observable without an allocator hook: once warm,
  // re-localizing same-shaped input must not move any output buffer.
  rt::Machine::run(4, [](rt::Process& p) {
    constexpr i64 n = 256;
    auto d = dist::Distribution::block(p, n);
    const auto refs = make_refs(p.rank(), n, 4 * n, 71);
    core::InspectorWorkspace ws;
    core::Localized out;
    core::localize(p, *d, refs, ws, out);  // warmup sizes everything
    const i64* refs_data = out.refs.data();
    const i64* send_data = out.schedule.send_indices.data();
    const i64* sendoff_data = out.schedule.send_offsets.data();
    const i64* recvoff_data = out.schedule.recv_offsets.data();
    for (int round = 0; round < 3; ++round) {
      core::localize(p, *d, refs, ws, out);
      EXPECT_EQ(out.refs.data(), refs_data);
      EXPECT_EQ(out.schedule.send_indices.data(), send_data);
      EXPECT_EQ(out.schedule.send_offsets.data(), sendoff_data);
      EXPECT_EQ(out.schedule.recv_offsets.data(), recvoff_data);
    }
  });
}

TEST(Localize, WorkspaceHandlesEmptyAllLocalAndSingleProcess) {
  // P=1: every reference is owned, the schedule is trivially empty.
  rt::Machine::run(1, [](rt::Process& p) {
    auto d = dist::Distribution::block(p, 32);
    const auto refs = make_refs(0, 32, 200, 3);
    core::InspectorWorkspace ws;
    core::Localized out;
    core::localize(p, *d, refs, ws, out);
    EXPECT_EQ(out.schedule.nghost, 0);
    EXPECT_EQ(out.off_process_refs, 0);
    for (std::size_t i = 0; i < refs.size(); ++i) {
      EXPECT_EQ(out.refs[i], refs[i]);
    }
  });
  // Empty batch and all-local batch through one reused workspace.
  rt::Machine::run(4, [](rt::Process& p) {
    auto d = dist::Distribution::block(p, 64);
    core::InspectorWorkspace ws;
    core::Localized out;
    core::localize(p, *d, std::vector<i64>{}, ws, out);
    EXPECT_TRUE(out.refs.empty());
    EXPECT_EQ(out.schedule.nghost, 0);

    const auto mine = d->my_globals();
    core::localize(p, *d, mine, ws, out);
    EXPECT_EQ(out.schedule.nghost, 0);
    EXPECT_EQ(out.off_process_refs, 0);
    for (std::size_t l = 0; l < mine.size(); ++l) {
      EXPECT_EQ(out.refs[l], static_cast<i64>(l));
    }
  });
}

TEST(Localize, OutOfRangeReferenceIsRejected) {
  EXPECT_THROW(rt::Machine::run(2,
                                [](rt::Process& p) {
                                  auto d = dist::Distribution::block(p, 10);
                                  std::vector<i64> refs{0, 10};
                                  (void)core::localize(p, *d, refs);
                                }),
               chaos::ChaosError);
}
