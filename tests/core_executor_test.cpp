// Executor data movers: gather / scatter-reduce / scatter-assign must agree
// with a serial reference for arbitrary reference patterns.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "core/executor.hpp"
#include "core/inspector.hpp"
#include "dist/darray.hpp"
#include "rt/collectives.hpp"
#include "workload/rng.hpp"

namespace rt = chaos::rt;
namespace dist = chaos::dist;
namespace core = chaos::core;
using chaos::f64;
using chaos::i64;

namespace {

std::vector<i64> make_refs(int rank, i64 n, i64 count, chaos::u64 seed) {
  chaos::wl::Rng rng(seed + static_cast<chaos::u64>(rank) * 31);
  std::vector<i64> refs(static_cast<std::size_t>(count));
  for (auto& r : refs) r = rng.below(n);
  return refs;
}

}  // namespace

class ExecutorSweep : public ::testing::TestWithParam<std::tuple<i64, int>> {};

INSTANTIATE_TEST_SUITE_P(SizesProcs, ExecutorSweep,
                         ::testing::Combine(::testing::Values<i64>(6, 64, 301),
                                            ::testing::Values(1, 2, 4, 8)),
                         [](const auto& info) {
                           return "N" + std::to_string(std::get<0>(info.param)) +
                                  "_P" + std::to_string(std::get<1>(info.param));
                         });

TEST_P(ExecutorSweep, ScatterAddMatchesSerialReference) {
  const auto [n, P] = GetParam();
  rt::Machine::run(P, [&, n = n](rt::Process& p) {
    auto d = dist::Distribution::cyclic(p, n);
    dist::DistributedArray<f64> y(p, d, 0.0);

    // Every rank accumulates +g into y(g) for each of its references.
    const auto refs = make_refs(p.rank(), n, 4 * n, 23);
    auto loc = core::localize(p, *d, refs);

    std::vector<f64> ghost_acc(static_cast<std::size_t>(loc.schedule.nghost),
                               0.0);
    for (std::size_t i = 0; i < refs.size(); ++i) {
      const i64 r = loc.refs[i];
      const f64 v = static_cast<f64>(refs[i]);
      if (r < y.nlocal()) {
        y.local()[static_cast<std::size_t>(r)] += v;
      } else {
        ghost_acc[static_cast<std::size_t>(r - y.nlocal())] += v;
      }
    }
    core::scatter_reduce<f64>(p, loc.schedule, y.local(), ghost_acc,
                              core::ReduceOp::Add);

    // Serial reference: count global occurrences over all ranks.
    auto all_refs = rt::allgatherv<i64>(p, refs);
    std::vector<f64> expect(static_cast<std::size_t>(n), 0.0);
    for (i64 g : all_refs) {
      expect[static_cast<std::size_t>(g)] += static_cast<f64>(g);
    }
    const auto got = y.to_global(p);
    for (i64 g = 0; g < n; ++g) {
      EXPECT_NEAR(got[static_cast<std::size_t>(g)],
                  expect[static_cast<std::size_t>(g)], 1e-9);
    }
  });
}

TEST_P(ExecutorSweep, ScatterMaxMatchesSerialReference) {
  const auto [n, P] = GetParam();
  rt::Machine::run(P, [&, n = n](rt::Process& p) {
    auto d = dist::Distribution::block(p, n);
    dist::DistributedArray<f64> y(p, d,
                                  core::reduce_identity<f64>(core::ReduceOp::Max));

    const auto refs = make_refs(p.rank(), n, 2 * n, 77);
    auto loc = core::localize(p, *d, refs);
    std::vector<f64> ghost_acc(
        static_cast<std::size_t>(loc.schedule.nghost),
        core::reduce_identity<f64>(core::ReduceOp::Max));
    for (std::size_t i = 0; i < refs.size(); ++i) {
      // Contribution value depends on rank so the max is nontrivial.
      const f64 v = static_cast<f64>((p.rank() + 1) * 1000 + refs[i]);
      const i64 r = loc.refs[i];
      if (r < y.nlocal()) {
        auto& dst = y.local()[static_cast<std::size_t>(r)];
        dst = std::max(dst, v);
      } else {
        auto& dst = ghost_acc[static_cast<std::size_t>(r - y.nlocal())];
        dst = std::max(dst, v);
      }
    }
    core::scatter_reduce<f64>(p, loc.schedule, y.local(), ghost_acc,
                              core::ReduceOp::Max);

    struct Contribution {
      i64 g;
      f64 v;
    };
    std::vector<Contribution> mine;
    for (i64 g : refs) {
      mine.push_back({g, static_cast<f64>((p.rank() + 1) * 1000 + g)});
    }
    auto all = rt::allgatherv<Contribution>(p, mine);
    std::vector<f64> expect(static_cast<std::size_t>(n),
                            core::reduce_identity<f64>(core::ReduceOp::Max));
    for (const auto& c : all) {
      expect[static_cast<std::size_t>(c.g)] =
          std::max(expect[static_cast<std::size_t>(c.g)], c.v);
    }
    const auto got = y.to_global(p);
    for (i64 g = 0; g < n; ++g) {
      EXPECT_DOUBLE_EQ(got[static_cast<std::size_t>(g)],
                       expect[static_cast<std::size_t>(g)]);
    }
  });
}

TEST(Executor, ScatterAssignWritesRemoteElements) {
  rt::Machine::run(4, [](rt::Process& p) {
    constexpr i64 n = 32;
    auto d = dist::Distribution::block(p, n);
    dist::DistributedArray<f64> y(p, d, -1.0);

    // Rank r writes globals r, r+P, r+2P, ... — disjoint across ranks,
    // many of them remote under BLOCK.
    std::vector<i64> refs;
    for (i64 g = p.rank(); g < n; g += p.nprocs()) refs.push_back(g);
    auto loc = core::localize(p, *d, refs);
    std::vector<f64> ghost(static_cast<std::size_t>(loc.schedule.nghost), 0.0);
    for (std::size_t i = 0; i < refs.size(); ++i) {
      const f64 v = static_cast<f64>(10 * refs[i] + p.rank());
      const i64 r = loc.refs[i];
      if (r < y.nlocal()) {
        y.local()[static_cast<std::size_t>(r)] = v;
      } else {
        ghost[static_cast<std::size_t>(r - y.nlocal())] = v;
      }
    }
    core::scatter_assign<f64>(p, loc.schedule, y.local(), ghost);

    const auto got = y.to_global(p);
    for (i64 g = 0; g < n; ++g) {
      const i64 writer = g % p.nprocs();
      EXPECT_DOUBLE_EQ(got[static_cast<std::size_t>(g)],
                       static_cast<f64>(10 * g + writer));
    }
  });
}

TEST(Executor, GatherRejectsStaleSchedule) {
  rt::Machine::run(2, [](rt::Process& p) {
    auto d = dist::Distribution::block(p, 16);
    std::vector<i64> refs{0, 15};
    auto loc = core::localize(p, *d, refs);
    std::vector<f64> wrong_local(static_cast<std::size_t>(d->my_local_size()) +
                                 1);
    std::vector<f64> ghost(static_cast<std::size_t>(loc.schedule.nghost));
    EXPECT_THROW(
        core::gather_ghosts<f64>(p, loc.schedule, wrong_local, ghost),
        chaos::ChaosError);
    rt::barrier(p);
  });
}

TEST(Executor, ReduceOpAlgebra) {
  using core::ReduceOp;
  EXPECT_DOUBLE_EQ(core::apply_reduce(ReduceOp::Add, 2.0, 3.0), 5.0);
  EXPECT_DOUBLE_EQ(core::apply_reduce(ReduceOp::Max, 2.0, 3.0), 3.0);
  EXPECT_DOUBLE_EQ(core::apply_reduce(ReduceOp::Min, 2.0, 3.0), 2.0);
  EXPECT_DOUBLE_EQ(core::apply_reduce(ReduceOp::Replace, 2.0, 3.0), 3.0);
  EXPECT_DOUBLE_EQ(core::reduce_identity<f64>(ReduceOp::Add), 0.0);
  EXPECT_GT(0.0, core::reduce_identity<f64>(ReduceOp::Max));
  EXPECT_LT(0.0, core::reduce_identity<f64>(ReduceOp::Min));
  // Identity really is neutral.
  EXPECT_DOUBLE_EQ(
      core::apply_reduce(ReduceOp::Max,
                         core::reduce_identity<f64>(ReduceOp::Max), -1e300),
      -1e300);
}
