// Executor data movers: gather / scatter-reduce / scatter-assign must agree
// with a serial reference for arbitrary reference patterns.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "core/executor.hpp"
#include "core/inspector.hpp"
#include "dist/darray.hpp"
#include "rt/collectives.hpp"
#include "workload/rng.hpp"

namespace rt = chaos::rt;
namespace dist = chaos::dist;
namespace core = chaos::core;
using chaos::f64;
using chaos::i64;

namespace {

std::vector<i64> make_refs(int rank, i64 n, i64 count, chaos::u64 seed) {
  chaos::wl::Rng rng(seed + static_cast<chaos::u64>(rank) * 31);
  std::vector<i64> refs(static_cast<std::size_t>(count));
  for (auto& r : refs) r = rng.below(n);
  return refs;
}

}  // namespace

class ExecutorSweep : public ::testing::TestWithParam<std::tuple<i64, int>> {};

INSTANTIATE_TEST_SUITE_P(SizesProcs, ExecutorSweep,
                         ::testing::Combine(::testing::Values<i64>(6, 64, 301),
                                            ::testing::Values(1, 2, 4, 8)),
                         [](const auto& info) {
                           return "N" + std::to_string(std::get<0>(info.param)) +
                                  "_P" + std::to_string(std::get<1>(info.param));
                         });

TEST_P(ExecutorSweep, ScatterAddMatchesSerialReference) {
  const auto [n, P] = GetParam();
  rt::Machine::run(P, [&, n = n](rt::Process& p) {
    auto d = dist::Distribution::cyclic(p, n);
    dist::DistributedArray<f64> y(p, d, 0.0);

    // Every rank accumulates +g into y(g) for each of its references.
    const auto refs = make_refs(p.rank(), n, 4 * n, 23);
    auto loc = core::localize(p, *d, refs);

    std::vector<f64> ghost_acc(static_cast<std::size_t>(loc.schedule.nghost),
                               0.0);
    for (std::size_t i = 0; i < refs.size(); ++i) {
      const i64 r = loc.refs[i];
      const f64 v = static_cast<f64>(refs[i]);
      if (r < y.nlocal()) {
        y.local()[static_cast<std::size_t>(r)] += v;
      } else {
        ghost_acc[static_cast<std::size_t>(r - y.nlocal())] += v;
      }
    }
    core::scatter_reduce<f64>(p, loc.schedule, y.local(), ghost_acc,
                              core::ReduceOp::Add);

    // Serial reference: count global occurrences over all ranks.
    auto all_refs = rt::allgatherv<i64>(p, refs);
    std::vector<f64> expect(static_cast<std::size_t>(n), 0.0);
    for (i64 g : all_refs) {
      expect[static_cast<std::size_t>(g)] += static_cast<f64>(g);
    }
    const auto got = y.to_global(p);
    for (i64 g = 0; g < n; ++g) {
      EXPECT_NEAR(got[static_cast<std::size_t>(g)],
                  expect[static_cast<std::size_t>(g)], 1e-9);
    }
  });
}

TEST_P(ExecutorSweep, ScatterMaxMatchesSerialReference) {
  const auto [n, P] = GetParam();
  rt::Machine::run(P, [&, n = n](rt::Process& p) {
    auto d = dist::Distribution::block(p, n);
    dist::DistributedArray<f64> y(p, d,
                                  core::reduce_identity<f64>(core::ReduceOp::Max));

    const auto refs = make_refs(p.rank(), n, 2 * n, 77);
    auto loc = core::localize(p, *d, refs);
    std::vector<f64> ghost_acc(
        static_cast<std::size_t>(loc.schedule.nghost),
        core::reduce_identity<f64>(core::ReduceOp::Max));
    for (std::size_t i = 0; i < refs.size(); ++i) {
      // Contribution value depends on rank so the max is nontrivial.
      const f64 v = static_cast<f64>((p.rank() + 1) * 1000 + refs[i]);
      const i64 r = loc.refs[i];
      if (r < y.nlocal()) {
        auto& dst = y.local()[static_cast<std::size_t>(r)];
        dst = std::max(dst, v);
      } else {
        auto& dst = ghost_acc[static_cast<std::size_t>(r - y.nlocal())];
        dst = std::max(dst, v);
      }
    }
    core::scatter_reduce<f64>(p, loc.schedule, y.local(), ghost_acc,
                              core::ReduceOp::Max);

    struct Contribution {
      i64 g;
      f64 v;
    };
    std::vector<Contribution> mine;
    for (i64 g : refs) {
      mine.push_back({g, static_cast<f64>((p.rank() + 1) * 1000 + g)});
    }
    auto all = rt::allgatherv<Contribution>(p, mine);
    std::vector<f64> expect(static_cast<std::size_t>(n),
                            core::reduce_identity<f64>(core::ReduceOp::Max));
    for (const auto& c : all) {
      expect[static_cast<std::size_t>(c.g)] =
          std::max(expect[static_cast<std::size_t>(c.g)], c.v);
    }
    const auto got = y.to_global(p);
    for (i64 g = 0; g < n; ++g) {
      EXPECT_DOUBLE_EQ(got[static_cast<std::size_t>(g)],
                       expect[static_cast<std::size_t>(g)]);
    }
  });
}

TEST_P(ExecutorSweep, ScatterMinMatchesSerialReference) {
  const auto [n, P] = GetParam();
  rt::Machine::run(P, [&, n = n](rt::Process& p) {
    auto d = dist::Distribution::cyclic(p, n);
    dist::DistributedArray<f64> y(p, d,
                                  core::reduce_identity<f64>(core::ReduceOp::Min));

    const auto refs = make_refs(p.rank(), n, 2 * n, 131);
    auto loc = core::localize(p, *d, refs);
    std::vector<f64> ghost_acc(
        static_cast<std::size_t>(loc.schedule.nghost),
        core::reduce_identity<f64>(core::ReduceOp::Min));
    for (std::size_t i = 0; i < refs.size(); ++i) {
      // Lower contributions from higher ranks so the min is nontrivial.
      const f64 v = static_cast<f64>((p.nprocs() - p.rank()) * 1000 + refs[i]);
      const i64 r = loc.refs[i];
      if (r < y.nlocal()) {
        auto& dst = y.local()[static_cast<std::size_t>(r)];
        dst = std::min(dst, v);
      } else {
        auto& dst = ghost_acc[static_cast<std::size_t>(r - y.nlocal())];
        dst = std::min(dst, v);
      }
    }
    core::scatter_reduce<f64>(p, loc.schedule, y.local(), ghost_acc,
                              core::ReduceOp::Min);

    struct Contribution {
      i64 g;
      f64 v;
    };
    std::vector<Contribution> mine;
    for (i64 g : refs) {
      mine.push_back(
          {g, static_cast<f64>((p.nprocs() - p.rank()) * 1000 + g)});
    }
    auto all = rt::allgatherv<Contribution>(p, mine);
    std::vector<f64> expect(static_cast<std::size_t>(n),
                            core::reduce_identity<f64>(core::ReduceOp::Min));
    for (const auto& c : all) {
      expect[static_cast<std::size_t>(c.g)] =
          std::min(expect[static_cast<std::size_t>(c.g)], c.v);
    }
    const auto got = y.to_global(p);
    for (i64 g = 0; g < n; ++g) {
      EXPECT_DOUBLE_EQ(got[static_cast<std::size_t>(g)],
                       expect[static_cast<std::size_t>(g)]);
    }
  });
}

TEST(Executor, ScatterReplaceMatchesScatterAssign) {
  rt::Machine::run(4, [](rt::Process& p) {
    constexpr i64 n = 48;
    auto d = dist::Distribution::block(p, n);
    dist::DistributedArray<f64> y(p, d, -7.0);

    // Disjoint writers (Replace with overlapping writers is unordered).
    std::vector<i64> refs;
    for (i64 g = p.rank(); g < n; g += p.nprocs()) refs.push_back(g);
    auto loc = core::localize(p, *d, refs);
    std::vector<f64> ghost(static_cast<std::size_t>(loc.schedule.nghost), 0.0);
    for (std::size_t i = 0; i < refs.size(); ++i) {
      const f64 v = static_cast<f64>(3 * refs[i] + 1);
      const i64 r = loc.refs[i];
      if (r < y.nlocal()) {
        y.local()[static_cast<std::size_t>(r)] = v;
      } else {
        ghost[static_cast<std::size_t>(r - y.nlocal())] = v;
      }
    }
    core::scatter_reduce<f64>(p, loc.schedule, y.local(), ghost,
                              core::ReduceOp::Replace);

    const auto got = y.to_global(p);
    for (i64 g = 0; g < n; ++g) {
      EXPECT_DOUBLE_EQ(got[static_cast<std::size_t>(g)],
                       static_cast<f64>(3 * g + 1));
    }
  });
}

TEST(Executor, EmptyScheduleMovesNothing) {
  // All references local: the schedule carries no off-process traffic, and
  // gather/scatter through it must be no-ops on the local data.
  rt::Machine::run(4, [](rt::Process& p) {
    auto d = dist::Distribution::block(p, 64);
    const auto mine = d->my_globals();
    auto loc = core::localize(p, *d, mine);
    ASSERT_EQ(loc.schedule.nghost, 0);
    EXPECT_TRUE(loc.schedule.validate());
    EXPECT_EQ(loc.schedule.total_send(), 0);
    EXPECT_EQ(loc.schedule.messages(p.rank()), 0);
    EXPECT_EQ(loc.schedule.send_volume(p.rank()), 0);

    dist::DistributedArray<f64> x(p, d, 2.5);
    core::ExecutorWorkspace<f64> ws;
    std::vector<f64> ghost;
    core::gather_ghosts<f64>(p, loc.schedule, x.local(), ghost, ws);
    core::scatter_reduce<f64>(p, loc.schedule, x.local(), ghost,
                              core::ReduceOp::Add, ws);
    for (f64 v : x.local()) EXPECT_DOUBLE_EQ(v, 2.5);
  });
}

TEST(Executor, SingleProcessMachineRoundTrips) {
  // P=1: every reference is owned, the CSR arrays are a lone [0,0] prefix,
  // and gather/scatter still run as (trivial) collectives.
  rt::Machine::run(1, [](rt::Process& p) {
    constexpr i64 n = 17;
    auto d = dist::Distribution::block(p, n);
    dist::DistributedArray<f64> y(p, d, 1.0);
    std::vector<i64> refs{0, 5, 16, 5};
    auto loc = core::localize(p, *d, refs);
    EXPECT_EQ(loc.schedule.nghost, 0);
    EXPECT_EQ(loc.schedule.nprocs(), 1);
    EXPECT_TRUE(loc.schedule.validate());

    dist::DistributedArray<f64> x(p, d);
    x.fill_by_global([](i64 g) { return static_cast<f64>(g); });
    core::gather_ghosts<f64>(p, loc.schedule, x);
    for (std::size_t i = 0; i < refs.size(); ++i) {
      EXPECT_DOUBLE_EQ(x.localized(loc.refs[i]), static_cast<f64>(refs[i]));
    }
    std::vector<f64> ghost;
    core::scatter_reduce<f64>(p, loc.schedule, y.local(), ghost,
                              core::ReduceOp::Add);
    for (f64 v : y.local()) EXPECT_DOUBLE_EQ(v, 1.0);
  });
}

TEST(Executor, WorkspaceReuseKeepsBuffersStable) {
  // The allocation-free guarantee, observable without an allocator hook:
  // after the first call, repeated gathers/scatters through the same
  // workspace must reuse the same staging storage and produce identical
  // results.
  rt::Machine::run(4, [](rt::Process& p) {
    constexpr i64 n = 256;
    auto d = dist::Distribution::cyclic(p, n);
    dist::DistributedArray<f64> x(p, d);
    x.fill_by_global([](i64 g) { return 10.0 + static_cast<f64>(g); });
    const auto refs = make_refs(p.rank(), n, 3 * n, 41);
    auto loc = core::localize(p, *d, refs);
    x.resize_ghost(loc.schedule.nghost);

    core::ExecutorWorkspace<f64> ws;
    const f64* stage_ptr = ws.staging(loc.schedule).data();
    for (int sweep = 0; sweep < 5; ++sweep) {
      core::gather_ghosts<f64>(p, loc.schedule, x.local(), x.ghost(), ws);
      EXPECT_EQ(ws.staging(loc.schedule).data(), stage_ptr)
          << "staging buffer reallocated on sweep " << sweep;
      for (std::size_t i = 0; i < refs.size(); ++i) {
        ASSERT_DOUBLE_EQ(x.localized(loc.refs[i]),
                         10.0 + static_cast<f64>(refs[i]));
      }
    }
  });
}

TEST(Executor, RecvOffsetsAreCachedPrefixSums) {
  rt::Machine::run(4, [](rt::Process& p) {
    constexpr i64 n = 128;
    auto d = dist::Distribution::block(p, n);
    const auto refs = make_refs(p.rank(), n, 2 * n, 9);
    auto loc = core::localize(p, *d, refs);
    i64 running = 0;
    for (int s = 0; s < p.nprocs(); ++s) {
      EXPECT_EQ(loc.schedule.recv_offset(s), running);
      running += loc.schedule.recv_count(s);
    }
    EXPECT_EQ(running, loc.schedule.nghost);
    EXPECT_EQ(loc.schedule.recv_offsets.back(), loc.schedule.nghost);
  });
}

TEST(Executor, ScatterAssignWritesRemoteElements) {
  rt::Machine::run(4, [](rt::Process& p) {
    constexpr i64 n = 32;
    auto d = dist::Distribution::block(p, n);
    dist::DistributedArray<f64> y(p, d, -1.0);

    // Rank r writes globals r, r+P, r+2P, ... — disjoint across ranks,
    // many of them remote under BLOCK.
    std::vector<i64> refs;
    for (i64 g = p.rank(); g < n; g += p.nprocs()) refs.push_back(g);
    auto loc = core::localize(p, *d, refs);
    std::vector<f64> ghost(static_cast<std::size_t>(loc.schedule.nghost), 0.0);
    for (std::size_t i = 0; i < refs.size(); ++i) {
      const f64 v = static_cast<f64>(10 * refs[i] + p.rank());
      const i64 r = loc.refs[i];
      if (r < y.nlocal()) {
        y.local()[static_cast<std::size_t>(r)] = v;
      } else {
        ghost[static_cast<std::size_t>(r - y.nlocal())] = v;
      }
    }
    core::scatter_assign<f64>(p, loc.schedule, y.local(), ghost);

    const auto got = y.to_global(p);
    for (i64 g = 0; g < n; ++g) {
      const i64 writer = g % p.nprocs();
      EXPECT_DOUBLE_EQ(got[static_cast<std::size_t>(g)],
                       static_cast<f64>(10 * g + writer));
    }
  });
}

TEST(Executor, GatherRejectsStaleSchedule) {
  rt::Machine::run(2, [](rt::Process& p) {
    auto d = dist::Distribution::block(p, 16);
    std::vector<i64> refs{0, 15};
    auto loc = core::localize(p, *d, refs);
    std::vector<f64> wrong_local(static_cast<std::size_t>(d->my_local_size()) +
                                 1);
    std::vector<f64> ghost(static_cast<std::size_t>(loc.schedule.nghost));
    EXPECT_THROW(
        core::gather_ghosts<f64>(p, loc.schedule, wrong_local, ghost),
        chaos::ChaosError);
    rt::barrier(p);
  });
}

TEST(Executor, ScatterRejectsStaleSchedule) {
  // The CHAOS_CHECK staleness guard must fire on the scatter side too: a
  // schedule built against one local size is dead after the segment changes
  // (e.g. a REDISTRIBUTE without re-running the inspector).
  rt::Machine::run(2, [](rt::Process& p) {
    auto d = dist::Distribution::block(p, 16);
    std::vector<i64> refs{0, 15};
    auto loc = core::localize(p, *d, refs);
    std::vector<f64> wrong_local(static_cast<std::size_t>(d->my_local_size()) +
                                 2);
    std::vector<f64> ghost(static_cast<std::size_t>(loc.schedule.nghost));
    EXPECT_THROW(core::scatter_reduce<f64>(p, loc.schedule, wrong_local, ghost,
                                           core::ReduceOp::Add),
                 chaos::ChaosError);
    rt::barrier(p);
  });
}

TEST(Executor, ValidateCatchesCorruptSchedules) {
  core::CommSchedule s;
  EXPECT_TRUE(s.validate());  // default: empty, nghost 0

  s.send_offsets = {0, 2, 3};
  s.recv_offsets = {0, 1, 4};
  s.send_indices = {0, 1, 2};
  s.nghost = 4;
  s.nlocal_at_build = 3;
  EXPECT_TRUE(s.validate());

  auto corrupt = s;
  corrupt.nghost = 5;  // cached total disagrees with the receive prefix
  EXPECT_FALSE(corrupt.validate());

  corrupt = s;
  corrupt.send_offsets = {0, 3, 2};  // non-monotone prefix
  EXPECT_FALSE(corrupt.validate());

  corrupt = s;
  corrupt.send_indices = {0, 1, 7};  // index outside the local segment
  EXPECT_FALSE(corrupt.validate());

  corrupt = s;
  corrupt.send_indices = {0, 1};  // flat array shorter than the prefix claims
  EXPECT_FALSE(corrupt.validate());
}

TEST(Executor, CheckReportsTypedErrorCodesAndPositions) {
  // The untrusted-input contract: every class of corruption maps to a named
  // ScheduleErrorCode (first violation wins) with the offending position,
  // and validate_or_throw surfaces it as a typed ScheduleInvalid.
  core::CommSchedule s;
  s.send_offsets = {0, 2, 3};
  s.recv_offsets = {0, 1, 4};
  s.send_indices = {0, 1, 2};
  s.nghost = 4;
  s.nlocal_at_build = 3;
  ASSERT_EQ(s.check().code, core::ScheduleErrorCode::Ok);

  auto corrupt = s;
  corrupt.recv_offsets = {0, 1};  // prefixes disagree on P
  EXPECT_EQ(corrupt.check().code,
            core::ScheduleErrorCode::PrefixShapeMismatch);

  corrupt = s;
  corrupt.send_offsets = {1, 2, 3};
  EXPECT_EQ(corrupt.check().code, core::ScheduleErrorCode::PrefixNotZeroBased);

  corrupt = s;
  corrupt.send_offsets = {0, 3, 2};
  EXPECT_EQ(corrupt.check().code, core::ScheduleErrorCode::PrefixNonMonotone);
  EXPECT_EQ(corrupt.check().position, 1);  // offending destination rank

  corrupt = s;
  corrupt.nghost = 5;
  EXPECT_EQ(corrupt.check().code, core::ScheduleErrorCode::GhostCountMismatch);

  corrupt = s;
  corrupt.send_indices = {0, 1};
  EXPECT_EQ(corrupt.check().code, core::ScheduleErrorCode::IndexCountMismatch);

  corrupt = s;
  corrupt.send_indices = {0, 1, 7};
  EXPECT_EQ(corrupt.check().code, core::ScheduleErrorCode::IndexOutOfBounds);
  EXPECT_EQ(corrupt.check().position, 2);  // flat index of the bad entry

  try {
    corrupt.validate_or_throw("test");
    FAIL() << "validate_or_throw accepted a corrupt schedule";
  } catch (const core::ScheduleInvalid& e) {
    EXPECT_EQ(e.code, core::ScheduleErrorCode::IndexOutOfBounds);
    EXPECT_EQ(e.position, 2);
    EXPECT_NE(std::string(e.what()).find("test:"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("local segment"), std::string::npos);
  }
}

TEST(Executor, ScheduleAccountingReadsCsrOffsets) {
  core::CommSchedule s;
  s.send_offsets = {0, 0, 3, 3, 5};  // sends to ranks 1 (3 words) and 3 (2)
  s.recv_offsets = {0, 2, 2, 2, 6};  // receives from ranks 0 (2) and 3 (4)
  s.send_indices = {0, 1, 2, 0, 4};
  s.nghost = 6;
  s.nlocal_at_build = 5;
  ASSERT_TRUE(s.validate());
  // Rank 2's view: 2 nonempty sends + 2 nonempty receives.
  EXPECT_EQ(s.messages(/*my_rank=*/2), 4);
  EXPECT_EQ(s.send_volume(/*my_rank=*/2), 5);
  // Self-traffic is excluded: as rank 1, the 3-word send to rank 1 is local.
  EXPECT_EQ(s.send_volume(/*my_rank=*/1), 2);
  EXPECT_EQ(s.messages(/*my_rank=*/1), 3);
  EXPECT_EQ(s.total_send(), 5);
  EXPECT_EQ(s.send_to(3).size(), 2u);
  EXPECT_EQ(s.send_to(3)[0], 0);
}

TEST(Executor, ReduceOpAlgebra) {
  using core::ReduceOp;
  EXPECT_DOUBLE_EQ(core::apply_reduce(ReduceOp::Add, 2.0, 3.0), 5.0);
  EXPECT_DOUBLE_EQ(core::apply_reduce(ReduceOp::Max, 2.0, 3.0), 3.0);
  EXPECT_DOUBLE_EQ(core::apply_reduce(ReduceOp::Min, 2.0, 3.0), 2.0);
  EXPECT_DOUBLE_EQ(core::apply_reduce(ReduceOp::Replace, 2.0, 3.0), 3.0);
  EXPECT_DOUBLE_EQ(core::reduce_identity<f64>(ReduceOp::Add), 0.0);
  EXPECT_GT(0.0, core::reduce_identity<f64>(ReduceOp::Max));
  EXPECT_LT(0.0, core::reduce_identity<f64>(ReduceOp::Min));
  // Identity really is neutral.
  EXPECT_DOUBLE_EQ(
      core::apply_reduce(ReduceOp::Max,
                         core::reduce_identity<f64>(ReduceOp::Max), -1e300),
      -1e300);
}
