// TranslationCache: bounded persistent global->(proc,local) caching with
// epoch-flush binding semantics. The dangerous direction is staleness — a
// cache surviving a REDISTRIBUTE must flush on rebind, and *using* one still
// bound to the pre-remap distribution must throw, never serve a stale hit.
#include <gtest/gtest.h>

#include <vector>

#include "core/inspector.hpp"
#include "core/reuse.hpp"
#include "dist/translation_cache.hpp"
#include "rt/collectives.hpp"

namespace rt = chaos::rt;
namespace dist = chaos::dist;
namespace core = chaos::core;
using chaos::i64;

namespace {

/// Deterministic irregular distribution: owner of global g is
/// (g * stride + shift) % P.
std::shared_ptr<const dist::Distribution> make_irregular(rt::Process& p, i64 n,
                                                         i64 stride,
                                                         i64 shift) {
  auto md = dist::Distribution::block(p, n);
  std::vector<i64> slice(static_cast<std::size_t>(md->my_local_size()));
  for (std::size_t l = 0; l < slice.size(); ++l) {
    const i64 g = md->global_of(p.rank(), static_cast<i64>(l));
    slice[l] = (g * stride + shift) % p.nprocs();
  }
  return dist::Distribution::irregular_from_map(p, slice, *md, 16);
}

}  // namespace

TEST(TranslationCache, PutGetRoundTripAndCounters) {
  dist::TranslationCache c(64);
  dist::Entry e;
  EXPECT_FALSE(c.try_get(7, e));
  EXPECT_EQ(c.stats().misses, 1);
  c.put(7, dist::Entry{3, 21});
  ASSERT_TRUE(c.try_get(7, e));
  EXPECT_EQ(e.proc, 3);
  EXPECT_EQ(e.local, 21);
  EXPECT_EQ(c.stats().hits, 1);
  EXPECT_EQ(c.size(), 1);
}

TEST(TranslationCache, CapacityIsBoundedByEviction) {
  dist::TranslationCache c(16);
  EXPECT_EQ(c.capacity(), 16);
  for (i64 g = 0; g < 1000; ++g) {
    c.put(g, dist::Entry{0, g});
  }
  // Never grows past the fixed capacity; the overflow shows up as evictions.
  EXPECT_LE(c.size(), c.capacity());
  EXPECT_GT(c.stats().evictions, 0);
  // Whatever is still cached answers correctly.
  i64 live = 0;
  for (i64 g = 0; g < 1000; ++g) {
    dist::Entry e;
    if (c.try_get(g, e)) {
      EXPECT_EQ(e.local, g);
      ++live;
    }
  }
  EXPECT_EQ(live, c.size());
}

TEST(TranslationCache, RebindSameInstanceKeepsEntries) {
  dist::TranslationCache c(64);
  dist::Dad dad{dist::DistKind::Irregular, 100, 4, 16, 42};
  c.bind(dad, 7);
  c.put(5, dist::Entry{1, 2});
  c.bind(dad, 7);  // identical binding: no flush
  dist::Entry e;
  EXPECT_TRUE(c.try_get(5, e));
  EXPECT_EQ(c.stats().flushes, 0);
}

TEST(TranslationCache, NewIncarnationOrStampFlushes) {
  dist::TranslationCache c(64);
  dist::Dad dad{dist::DistKind::Irregular, 100, 4, 16, 42};
  c.bind(dad, 7);
  c.put(5, dist::Entry{1, 2});

  dist::Dad remapped = dad;
  remapped.incarnation = 43;  // REDISTRIBUTE mints a fresh DAD
  c.bind(remapped, 7);
  dist::Entry e;
  EXPECT_FALSE(c.try_get(5, e));
  EXPECT_EQ(c.stats().flushes, 1);
  EXPECT_EQ(c.size(), 0);
  EXPECT_TRUE(c.accepts(remapped));
  EXPECT_FALSE(c.accepts(dad));

  c.put(5, dist::Entry{2, 9});
  c.bind(remapped, 8);  // same instance, newer nmod stamp: conservative flush
  EXPECT_FALSE(c.try_get(5, e));
  EXPECT_EQ(c.stats().flushes, 2);
}

TEST(TranslationCache, InvalidateDropsEntriesAndBinding) {
  dist::TranslationCache c(64);
  dist::Dad dad{dist::DistKind::Irregular, 100, 4, 16, 42};
  c.bind(dad, 0);
  c.put(5, dist::Entry{1, 2});
  c.invalidate();
  EXPECT_FALSE(c.bound());
  EXPECT_EQ(c.size(), 0);
  dist::Entry e;
  EXPECT_FALSE(c.try_get(5, e));
}

TEST(TranslationCache, WarmLocalizeHitsForEveryDistinctReference) {
  rt::Machine::run(4, [](rt::Process& p) {
    constexpr i64 n = 96;
    auto d = make_irregular(p, n, 11, 2);
    std::vector<i64> refs;
    for (i64 g = 0; g < n; ++g) {
      refs.push_back(g);
      refs.push_back(g);  // every global twice
    }

    dist::TranslationCache cache(1 << 10);
    core::InspectorWorkspace ws;
    ws.attach_cache(&cache);
    core::Localized cold, warm;
    core::localize(p, *d, refs, ws, cold);
    const i64 cold_misses = cache.stats().misses;
    EXPECT_EQ(cold_misses, n);  // one miss per distinct global
    core::localize(p, *d, refs, ws, warm);
    EXPECT_EQ(cache.stats().misses, cold_misses);  // fully warm
    EXPECT_EQ(cache.stats().hits, n);
    EXPECT_EQ(warm.refs, cold.refs);
    EXPECT_EQ(warm.schedule.send_indices, cold.schedule.send_indices);

    // Machine-wide warm: the warm localize skipped the locate round.
    EXPECT_EQ(d->table()->stats().dereference_calls, 1);
    // Outcome counters surfaced through the process message stats.
    EXPECT_EQ(p.stats().tcache_hits, n);
    EXPECT_EQ(p.stats().tcache_misses, n);
  });
}

TEST(TranslationCache, RemapRebindFlushesAndAnswersFreshDistribution) {
  rt::Machine::run(4, [](rt::Process& p) {
    constexpr i64 n = 64;
    core::ReuseRegistry registry;
    auto a = make_irregular(p, n, 11, 2);
    std::vector<i64> refs;
    for (i64 g = 0; g < n; ++g) refs.push_back(g % (n / 2));

    dist::TranslationCache cache(1 << 10);
    core::InspectorWorkspace ws;
    ws.attach_cache(&cache);
    core::Localized la;
    core::localize(p, *a, refs, ws, la);

    // REDISTRIBUTE: fresh ownership, fresh DAD, registry stamp bumped.
    auto b = make_irregular(p, n, 7, 3);
    registry.note_remap(b->dad());
    cache.bind(b->dad(), registry.last_mod(b->dad()));
    EXPECT_GE(cache.stats().flushes, 1);
    EXPECT_EQ(cache.size(), 0);

    // Cached localize over the new distribution matches the uncached path.
    core::Localized lb;
    core::localize(p, *b, refs, ws, lb);
    const auto plain = core::localize(p, *b, refs);
    EXPECT_EQ(lb.refs, plain.refs);
    EXPECT_EQ(lb.schedule.send_indices, plain.schedule.send_indices);
    EXPECT_EQ(lb.schedule.recv_offsets, plain.schedule.recv_offsets);
  });
}

TEST(TranslationCacheDeathLike, StaleBindingAfterRemapThrows) {
  // The stale-hit guard: localizing distribution B through a cache still
  // bound to pre-remap distribution A must throw — under no circumstances
  // may a pre-remap (proc, local) pair be served for B.
  EXPECT_THROW(
      rt::Machine::run(4,
                       [](rt::Process& p) {
                         constexpr i64 n = 64;
                         auto a = make_irregular(p, n, 11, 2);
                         auto b = make_irregular(p, n, 7, 3);
                         std::vector<i64> refs{0, 5, 9, 13};
                         dist::TranslationCache cache(1 << 10);
                         core::InspectorWorkspace ws;
                         ws.attach_cache(&cache);
                         core::Localized la, lb;
                         core::localize(p, *a, refs, ws, la);
                         // Missing rebind: cache is still bound to a.
                         core::localize(p, *b, refs, ws, lb);
                       }),
      chaos::ChaosError);
}

// --- attempt quarantine (DESIGN.md §11) --------------------------------------

TEST(TranslationCache, StagedInsertionsAreInvisibleUntilCommitted) {
  dist::TranslationCache c(64);
  dist::Dad dad{dist::DistKind::Irregular, 100, 4, 16, 43};
  c.bind(dad);
  c.stage_put(7, dist::Entry{1, 3});
  c.stage_put(9, dist::Entry{2, 5});
  EXPECT_EQ(c.staged(), 2);
  dist::Entry e;
  EXPECT_FALSE(c.try_get(7, e));  // quarantined: a retry must still miss
  EXPECT_EQ(c.stats().insertions, 0);
  c.commit_staged();
  EXPECT_EQ(c.staged(), 0);
  EXPECT_TRUE(c.try_get(7, e));
  EXPECT_EQ(e.proc, 1);
  EXPECT_EQ(e.local, 3);
  EXPECT_TRUE(c.try_get(9, e));
  EXPECT_EQ(c.stats().staged_commits, 2);
  EXPECT_EQ(c.stats().insertions, 2);
}

TEST(TranslationCache, DiscardDropsTheAbortedAttempt) {
  dist::TranslationCache c(64);
  dist::Dad dad{dist::DistKind::Irregular, 100, 4, 16, 44};
  c.bind(dad);
  c.stage_put(7, dist::Entry{1, 3});
  c.discard_staged();
  EXPECT_EQ(c.staged(), 0);
  dist::Entry e;
  EXPECT_FALSE(c.try_get(7, e));
  EXPECT_EQ(c.stats().staged_discards, 1);
  EXPECT_EQ(c.stats().insertions, 0);
}

TEST(TranslationCache, RebindAndInvalidateDiscardStagedEntries) {
  dist::TranslationCache c(64);
  dist::Dad dad{dist::DistKind::Irregular, 100, 4, 16, 45};
  c.bind(dad);
  c.stage_put(7, dist::Entry{1, 3});
  c.bind(dad, /*stamp=*/9);  // staged entries were translated pre-rebind
  EXPECT_EQ(c.staged(), 0);
  EXPECT_EQ(c.stats().staged_discards, 1);
  c.stage_put(8, dist::Entry{0, 1});
  c.invalidate();
  EXPECT_EQ(c.staged(), 0);
  EXPECT_EQ(c.stats().staged_discards, 2);
}
