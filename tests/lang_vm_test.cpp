// Bytecode-VM equivalence: every corpus program must produce bit-identical
// fetched arrays, PhaseTimes, cache statistics, and registry timestamps
// whether it runs through the PlanIR dispatch loop (the default) or the
// tree-walking oracle (set_tree_walk). Also pins the VM-specific contracts:
// warm re-executions are pure plan-cache hits, and introspection is safe
// before the first execute.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <string>
#include <vector>

#include "lang/interp.hpp"
#include "lang/parser.hpp"
#include "lang/token.hpp"
#include "rt/machine.hpp"
#include "workload/mesh.hpp"

namespace rt = chaos::rt;
namespace lang = chaos::lang;
namespace wl = chaos::wl;
using chaos::f64;
using chaos::i64;
using chaos::u64;

namespace {

struct Scenario {
  const char* source = nullptr;
  std::map<std::string, i64> params;
  std::map<std::string, std::vector<f64>> reals;
  std::map<std::string, std::vector<i64>> ints;
  std::vector<std::string> fetch;  // REAL*8 arrays to compare
  bool reuse = true;
  bool flat_locate = false;
  int procs = 4;
};

struct RunResult {
  std::map<std::string, std::vector<f64>> fetched;
  std::vector<lang::PhaseTimes> phases;  // per rank
  i64 cache_hits = 0, cache_misses = 0;
  i64 mapper_hits = 0, mapper_misses = 0;
  u64 nmod = 0;
};

/// Runs the scenario in one execution mode on a fresh machine (fresh virtual
/// clocks), so modeled times of the two modes are directly comparable.
RunResult run_mode(const lang::Program& prog, const Scenario& sc,
                   bool tree_walk) {
  RunResult r;
  r.phases.resize(static_cast<std::size_t>(sc.procs));
  rt::Machine::run(sc.procs, [&](rt::Process& p) {
    lang::Instance inst(prog);
    inst.set_tree_walk(tree_walk);
    inst.set_schedule_reuse(sc.reuse);
    inst.set_flat_locate(sc.flat_locate);
    for (const auto& [name, v] : sc.params) inst.set_param(name, v);
    for (const auto& [name, v] : sc.reals) inst.bind_real(name, v);
    for (const auto& [name, v] : sc.ints) inst.bind_int(name, v);
    inst.execute(p);
    r.phases[static_cast<std::size_t>(p.rank())] = inst.phases();
    for (const auto& name : sc.fetch) {
      auto v = inst.fetch_real(p, name);  // collective: every rank calls
      if (p.rank() == 0) r.fetched[name] = std::move(v);
    }
    if (p.rank() == 0) {
      r.cache_hits = inst.cache_stats().hits;
      r.cache_misses = inst.cache_stats().misses;
      r.mapper_hits = inst.mapper_cache_stats().hits;
      r.mapper_misses = inst.mapper_cache_stats().misses;
      r.nmod = inst.reuse_registry().nmod();
    }
  });
  return r;
}

/// Bit-exact comparison of the two execution modes.
void expect_modes_identical(const Scenario& sc) {
  auto prog = lang::compile(sc.source);
  const RunResult vm = run_mode(prog, sc, /*tree_walk=*/false);
  const RunResult tw = run_mode(prog, sc, /*tree_walk=*/true);

  for (const auto& name : sc.fetch) {
    ASSERT_TRUE(tw.fetched.count(name)) << name;
    EXPECT_EQ(vm.fetched.at(name), tw.fetched.at(name))
        << "array " << name << " differs between VM and tree walk";
  }
  for (int rank = 0; rank < sc.procs; ++rank) {
    const auto& a = vm.phases[static_cast<std::size_t>(rank)];
    const auto& b = tw.phases[static_cast<std::size_t>(rank)];
    EXPECT_EQ(a.graph_gen, b.graph_gen) << "rank " << rank;
    EXPECT_EQ(a.partition, b.partition) << "rank " << rank;
    EXPECT_EQ(a.remap, b.remap) << "rank " << rank;
    EXPECT_EQ(a.inspector, b.inspector) << "rank " << rank;
    EXPECT_EQ(a.executor, b.executor) << "rank " << rank;
  }
  EXPECT_EQ(vm.cache_hits, tw.cache_hits);
  EXPECT_EQ(vm.cache_misses, tw.cache_misses);
  EXPECT_EQ(vm.mapper_hits, tw.mapper_hits);
  EXPECT_EQ(vm.mapper_misses, tw.mapper_misses);
  EXPECT_EQ(vm.nmod, tw.nmod);
}

/// 1-based edge arrays of the tiny test mesh.
struct EdgeData {
  i64 nnodes, nedges;
  std::vector<i64> e1, e2;
};

EdgeData tiny_edges() {
  const auto mesh = wl::mesh_tiny();
  EdgeData d{mesh.nnodes, mesh.nedges, mesh.edge1, mesh.edge2};
  for (auto& v : d.e1) v += 1;
  for (auto& v : d.e2) v += 1;
  return d;
}

}  // namespace

TEST(LangVm, MatchesTreeWalkOnGatherLoop) {
  constexpr i64 n = 24;
  Scenario sc;
  sc.source = R"(
      REAL*8 x(n), y(n)
      INTEGER ia(n), ib(n)
C$    DECOMPOSITION reg(n)
C$    DISTRIBUTE reg(BLOCK)
C$    ALIGN x, y, ia, ib WITH reg
      FORALL i = 1, n
        y(ia(i)) = 2.0 * x(ib(i)) + 1.0
      END FORALL
)";
  sc.params["N"] = n;
  std::vector<f64> x0(n);
  std::vector<i64> ia(n), ib(n);
  for (i64 i = 0; i < n; ++i) {
    x0[static_cast<std::size_t>(i)] = 0.5 * static_cast<f64>(i);
    ia[static_cast<std::size_t>(i)] = (i * 7 + 3) % n + 1;  // permutation
    ib[static_cast<std::size_t>(i)] = (i * 5 + 1) % n + 1;
  }
  sc.reals["X"] = x0;
  sc.ints["IA"] = ia;
  sc.ints["IB"] = ib;
  sc.fetch = {"X", "Y"};
  expect_modes_identical(sc);
}

TEST(LangVm, MatchesTreeWalkOnFigure4Pipeline) {
  const auto d = tiny_edges();
  Scenario sc;
  sc.source = R"(
      REAL*8 x(nnode), y(nnode)
      INTEGER end_pt1(nedge), end_pt2(nedge)
C$    DYNAMIC, DECOMPOSITION reg(nnode), reg2(nedge)
C$    DISTRIBUTE reg(BLOCK), reg2(BLOCK)
C$    ALIGN x, y WITH reg
C$    ALIGN end_pt1, end_pt2 WITH reg2
C$    CONSTRUCT G (nnode, LINK(nedge, end_pt1, end_pt2))
C$    SET distfmt BY PARTITIONING G USING RSB
C$    REDISTRIBUTE reg(distfmt)
      FORALL i = 1, nedge
        REDUCE(ADD, y(end_pt1(i)), x(end_pt1(i)) * x(end_pt2(i)))
        REDUCE(ADD, y(end_pt2(i)), x(end_pt1(i)) - x(end_pt2(i)))
      END FORALL
)";
  sc.params["NNODE"] = d.nnodes;
  sc.params["NEDGE"] = d.nedges;
  std::vector<f64> x0(static_cast<std::size_t>(d.nnodes));
  for (i64 i = 0; i < d.nnodes; ++i) {
    x0[static_cast<std::size_t>(i)] = std::cos(static_cast<f64>(i));
  }
  sc.reals["X"] = x0;
  sc.ints["END_PT1"] = d.e1;
  sc.ints["END_PT2"] = d.e2;
  sc.fetch = {"X", "Y"};
  expect_modes_identical(sc);
}

TEST(LangVm, MatchesTreeWalkAcrossTimeStepLoop) {
  const auto d = tiny_edges();
  Scenario sc;
  sc.source = R"(
      REAL*8 x(nnode), y(nnode)
      INTEGER end_pt1(nedge), end_pt2(nedge)
C$    DECOMPOSITION reg(nnode), reg2(nedge)
C$    DISTRIBUTE reg(BLOCK), reg2(BLOCK)
C$    ALIGN x, y WITH reg
C$    ALIGN end_pt1, end_pt2 WITH reg2
      DO step = 1, 10
      FORALL i = 1, nedge
        REDUCE(ADD, y(end_pt1(i)), x(end_pt2(i)) + step)
      END FORALL
      END DO
)";
  sc.params["NNODE"] = d.nnodes;
  sc.params["NEDGE"] = d.nedges;
  sc.reals["X"] =
      std::vector<f64>(static_cast<std::size_t>(d.nnodes), 1.0);
  sc.ints["END_PT1"] = d.e1;
  sc.ints["END_PT2"] = d.e2;
  sc.fetch = {"Y"};
  expect_modes_identical(sc);
}

TEST(LangVm, MatchesTreeWalkWithReuseDisabled) {
  const auto d = tiny_edges();
  Scenario sc;
  sc.source = R"(
      REAL*8 x(nnode), y(nnode)
      INTEGER end_pt1(nedge), end_pt2(nedge)
C$    DECOMPOSITION reg(nnode), reg2(nedge)
C$    DISTRIBUTE reg(BLOCK), reg2(BLOCK)
C$    ALIGN x, y WITH reg
C$    ALIGN end_pt1, end_pt2 WITH reg2
      DO step = 1, 4
      FORALL i = 1, nedge
        REDUCE(ADD, y(end_pt1(i)), x(end_pt2(i)))
      END FORALL
      END DO
)";
  sc.params["NNODE"] = d.nnodes;
  sc.params["NEDGE"] = d.nedges;
  sc.reals["X"] =
      std::vector<f64>(static_cast<std::size_t>(d.nnodes), 2.0);
  sc.ints["END_PT1"] = d.e1;
  sc.ints["END_PT2"] = d.e2;
  sc.fetch = {"Y"};
  sc.reuse = false;
  sc.procs = 2;
  expect_modes_identical(sc);
}

TEST(LangVm, MatchesTreeWalkOnMultiStatementForall) {
  // Mixed body: direct assign with intrinsics and scalars, indirect assign
  // through a permutation, and an indirect reduction — every write-routing
  // group (assign-direct, assign-indirect, reduce) in one statement.
  constexpr i64 n = 24;
  Scenario sc;
  sc.source = R"(
      REAL*8 x(n), y(n), z(n), w(n)
      INTEGER ia(n)
C$    DECOMPOSITION reg(n)
C$    DISTRIBUTE reg(BLOCK)
C$    ALIGN x, y, z, w WITH reg
C$    ALIGN ia WITH reg
      FORALL i = 1, n
        z(i) = sqrt(abs(x(i))) + scale * i
        w(ia(i)) = x(i) * 0.5
        REDUCE(MAX, y(ia(i)), x(i) - 1.0)
      END FORALL
)";
  sc.params["N"] = n;
  sc.params["SCALE"] = 3;
  std::vector<f64> x0(n);
  std::vector<i64> ia(n);
  for (i64 i = 0; i < n; ++i) {
    x0[static_cast<std::size_t>(i)] = std::sin(static_cast<f64>(i)) * 4.0;
    ia[static_cast<std::size_t>(i)] = (i * 11 + 5) % n + 1;  // permutation
  }
  sc.reals["X"] = x0;
  sc.ints["IA"] = ia;
  sc.fetch = {"Y", "Z", "W"};
  expect_modes_identical(sc);
}

TEST(LangVm, MatchesTreeWalkWithFlatLocate) {
  const auto d = tiny_edges();
  Scenario sc;
  sc.source = R"(
      REAL*8 x(nnode), y(nnode)
      INTEGER end_pt1(nedge), end_pt2(nedge)
C$    DECOMPOSITION reg(nnode), reg2(nedge)
C$    DISTRIBUTE reg(BLOCK), reg2(BLOCK)
C$    ALIGN x, y WITH reg
C$    ALIGN end_pt1, end_pt2 WITH reg2
C$    CONSTRUCT G (nnode, LINK(nedge, end_pt1, end_pt2))
C$    SET distfmt BY PARTITIONING G USING RSB
C$    REDISTRIBUTE reg(distfmt)
      FORALL i = 1, nedge
        REDUCE(ADD, y(end_pt1(i)), x(end_pt2(i)))
      END FORALL
)";
  sc.params["NNODE"] = d.nnodes;
  sc.params["NEDGE"] = d.nedges;
  sc.reals["X"] =
      std::vector<f64>(static_cast<std::size_t>(d.nnodes), 1.0);
  sc.ints["END_PT1"] = d.e1;
  sc.ints["END_PT2"] = d.e2;
  sc.fetch = {"Y"};
  sc.flat_locate = true;
  expect_modes_identical(sc);
}

TEST(LangVm, WarmSweepsArePurePlanCacheHits) {
  // The acceptance counter: K executions of an unchanged FORALL cost one
  // inspector (miss) and K-1 CHECK_INCARNATION hits in VM mode.
  const auto d = tiny_edges();
  const char* source = R"(
      REAL*8 x(nnode), y(nnode)
      INTEGER end_pt1(nedge), end_pt2(nedge)
C$    DECOMPOSITION reg(nnode), reg2(nedge)
C$    DISTRIBUTE reg(BLOCK), reg2(BLOCK)
C$    ALIGN x, y WITH reg
C$    ALIGN end_pt1, end_pt2 WITH reg2
      DO step = 1, 10
      FORALL i = 1, nedge
        REDUCE(ADD, y(end_pt1(i)), x(end_pt2(i)))
      END FORALL
      END DO
)";
  auto prog = lang::compile(source);
  rt::Machine::run(4, [&](rt::Process& p) {
    lang::Instance inst(prog);
    inst.set_param("NNODE", d.nnodes);
    inst.set_param("NEDGE", d.nedges);
    inst.bind_real("X",
                   std::vector<f64>(static_cast<std::size_t>(d.nnodes), 1.0));
    inst.bind_int("END_PT1", d.e1);
    inst.bind_int("END_PT2", d.e2);
    inst.execute(p);
    EXPECT_EQ(inst.cache_stats().misses, 1);
    EXPECT_EQ(inst.cache_stats().hits, 9);
  });
}

TEST(LangVm, IntrospectionIsSafeBeforeFirstExecute) {
  auto prog = lang::compile(R"(
      REAL*8 x(4)
C$    DECOMPOSITION reg(4)
C$    DISTRIBUTE reg(BLOCK)
C$    ALIGN x WITH reg
)");
  lang::Instance inst(prog);
  EXPECT_EQ(inst.cache_stats().hits, 0);
  EXPECT_EQ(inst.cache_stats().misses, 0);
  EXPECT_EQ(inst.mapper_cache_stats().hits, 0);
  EXPECT_EQ(inst.mapper_cache_stats().misses, 0);
  EXPECT_EQ(inst.reuse_registry().nmod(), 0u);
}

TEST(LangVm, ErrorMessagesMatchBetweenModes) {
  struct Bad {
    const char* source;
    std::map<std::string, std::vector<i64>> ints;
  };
  const std::vector<Bad> corpus = {
      // Read/write conflict.
      {R"(
      REAL*8 x(4)
      INTEGER ia(4)
C$    DECOMPOSITION reg(4)
C$    DISTRIBUTE reg(BLOCK)
C$    ALIGN x, ia WITH reg
      FORALL i = 1, 4
        x(ia(i)) = x(ia(i)) + 1.0
      END FORALL
)",
       {{"IA", {1, 2, 3, 4}}}},
      // Indirection array must be INTEGER.
      {R"(
      REAL*8 x(4), w(4)
C$    DECOMPOSITION reg(4)
C$    DISTRIBUTE reg(BLOCK)
C$    ALIGN x, w WITH reg
      FORALL i = 1, 4
        x(w(i)) = 1.0
      END FORALL
)",
       {}},
      // Subscript out of range.
      {R"(
      REAL*8 x(4), y(4)
      INTEGER ia(4)
C$    DECOMPOSITION reg(4)
C$    DISTRIBUTE reg(BLOCK)
C$    ALIGN x, y, ia WITH reg
      FORALL i = 1, 4
        y(ia(i)) = x(i)
      END FORALL
)",
       {{"IA", {1, 2, 3, 9}}}},
      // Mixed reduction operators on one target.
      {R"(
      REAL*8 x(4), y(4)
      INTEGER ia(4)
C$    DECOMPOSITION reg(4)
C$    DISTRIBUTE reg(BLOCK)
C$    ALIGN x, y, ia WITH reg
      FORALL i = 1, 4
        REDUCE(ADD, y(ia(i)), x(i))
        REDUCE(MAX, y(ia(i)), x(i))
      END FORALL
)",
       {{"IA", {1, 2, 3, 4}}}},
  };

  rt::Machine::run(1, [&](rt::Process& p) {
    for (const auto& bad : corpus) {
      auto prog = lang::compile(bad.source);
      std::string messages[2];
      for (int mode = 0; mode < 2; ++mode) {
        lang::Instance inst(prog);
        inst.set_tree_walk(mode == 1);
        for (const auto& [name, v] : bad.ints) inst.bind_int(name, v);
        try {
          inst.execute(p);
          messages[mode] = "<no error>";
        } catch (const lang::LangError& e) {
          messages[mode] = e.what();
        }
      }
      EXPECT_NE(messages[0], "<no error>") << bad.source;
      EXPECT_EQ(messages[0], messages[1]) << bad.source;
    }
  });
}

TEST(LangVm, RidesTheShrunkenMachineUntouched) {
  // Degradation contract (DESIGN.md §13): after the machine narrows around a
  // dead rank, a fresh per-rank Instance of the same Program just runs — the
  // VM never caches the machine width, and every distribution, plan, and
  // translation it builds is minted at the width it executes at. The gather
  // uses exactly representable values (halves), so the fetched images must
  // be bit-identical across widths.
  constexpr i64 n = 24;
  Scenario sc;
  sc.source = R"(
      REAL*8 x(n), y(n)
      INTEGER ia(n), ib(n)
C$    DECOMPOSITION reg(n)
C$    DISTRIBUTE reg(BLOCK)
C$    ALIGN x, y, ia, ib WITH reg
      FORALL i = 1, n
        y(ia(i)) = 2.0 * x(ib(i)) + 1.0
      END FORALL
)";
  sc.params["N"] = n;
  std::vector<f64> x0(n);
  std::vector<i64> ia(n), ib(n);
  for (i64 i = 0; i < n; ++i) {
    x0[static_cast<std::size_t>(i)] = 0.5 * static_cast<f64>(i);
    ia[static_cast<std::size_t>(i)] = (i * 7 + 3) % n + 1;
    ib[static_cast<std::size_t>(i)] = (i * 5 + 1) % n + 1;
  }
  sc.reals["X"] = x0;
  sc.ints["IA"] = ia;
  sc.ints["IB"] = ib;
  sc.fetch = {"Y"};

  const auto prog = lang::compile(sc.source);
  rt::Machine machine(6);
  auto fetch_y = [&]() {
    std::vector<f64> y;
    machine.run([&](rt::Process& p) {
      lang::Instance inst(prog);
      for (const auto& [name, v] : sc.params) inst.set_param(name, v);
      for (const auto& [name, v] : sc.reals) inst.bind_real(name, v);
      for (const auto& [name, v] : sc.ints) inst.bind_int(name, v);
      inst.execute(p);
      auto v = inst.fetch_real(p, "Y");
      if (p.rank() == 0) y = std::move(v);
    });
    return y;
  };

  const std::vector<f64> full = fetch_y();
  machine.shrink_to(4);  // two ranks died; survivors carry on
  const std::vector<f64> degraded = fetch_y();
  EXPECT_EQ(full, degraded);
  machine.shrink_to(1);  // total collapse still executes (inline)
  const std::vector<f64> solo = fetch_y();
  EXPECT_EQ(full, solo);
}
