// Unit tests for the virtual machine substrate: SPMD launch, point-to-point
// messaging, determinism of virtual clocks, and failure propagation.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "rt/collectives.hpp"
#include "rt/machine.hpp"

namespace rt = chaos::rt;
using chaos::i64;

TEST(Machine, RunsEveryRankExactlyOnce) {
  std::atomic<int> count{0};
  std::array<std::atomic<int>, 8> seen{};
  rt::Machine::run(8, [&](rt::Process& p) {
    ++count;
    ++seen[static_cast<std::size_t>(p.rank())];
    EXPECT_EQ(p.nprocs(), 8);
  });
  EXPECT_EQ(count.load(), 8);
  for (const auto& s : seen) EXPECT_EQ(s.load(), 1);
}

TEST(Machine, SingleProcessRunsInline) {
  bool ran = false;
  rt::Machine::run(1, [&](rt::Process& p) {
    ran = true;
    EXPECT_TRUE(p.is_root());
    EXPECT_EQ(p.nprocs(), 1);
  });
  EXPECT_TRUE(ran);
}

TEST(Machine, PointToPointRoundTrip) {
  rt::Machine::run(2, [](rt::Process& p) {
    if (p.rank() == 0) {
      std::vector<i64> payload{1, 2, 3, 42};
      p.send<i64>(1, /*tag=*/7, payload);
      auto back = p.recv<i64>(1, /*tag=*/8);
      ASSERT_EQ(back.size(), 1u);
      EXPECT_EQ(back[0], 48);
    } else {
      auto data = p.recv<i64>(0, 7);
      EXPECT_EQ(data, (std::vector<i64>{1, 2, 3, 42}));
      const i64 sum = std::accumulate(data.begin(), data.end(), i64{0});
      p.send_value<i64>(0, 8, sum);
    }
  });
}

TEST(Machine, MessagesFromSameSourceArriveInOrder) {
  rt::Machine::run(2, [](rt::Process& p) {
    constexpr int kMessages = 64;
    if (p.rank() == 0) {
      for (int i = 0; i < kMessages; ++i) p.send_value<int>(1, 3, i);
    } else {
      for (int i = 0; i < kMessages; ++i) {
        EXPECT_EQ(p.recv_value<int>(0, 3), i);
      }
    }
  });
}

TEST(Machine, TagsAreMatchedIndependently) {
  rt::Machine::run(2, [](rt::Process& p) {
    if (p.rank() == 0) {
      p.send_value<int>(1, /*tag=*/1, 100);
      p.send_value<int>(1, /*tag=*/2, 200);
    } else {
      // Receive in the opposite order of sending.
      EXPECT_EQ(p.recv_value<int>(0, 2), 200);
      EXPECT_EQ(p.recv_value<int>(0, 1), 100);
    }
  });
}

TEST(Machine, SendChargesClockAndStats) {
  rt::Machine machine(2);
  machine.run([](rt::Process& p) {
    if (p.rank() == 0) {
      std::vector<double> payload(100, 1.0);
      p.send<double>(1, 0, payload);
      EXPECT_GT(p.clock().now_us(), 0.0);
      EXPECT_EQ(p.stats().messages_sent, 1);
      EXPECT_EQ(p.stats().bytes_sent, 800);
    } else {
      auto v = p.recv<double>(0, 0);
      EXPECT_EQ(v.size(), 100u);
      EXPECT_EQ(p.stats().messages_received, 1);
      EXPECT_EQ(p.stats().bytes_received, 800);
    }
  });
  EXPECT_EQ(machine.total_stats().messages_sent, 1);
  EXPECT_EQ(machine.total_stats().bytes_sent, 800);
  EXPECT_GT(machine.max_virtual_time_us(), 0.0);
}

TEST(Machine, ReceiverClockAdvancesToMessageReadyTime) {
  rt::Machine::run(2, [](rt::Process& p) {
    if (p.rank() == 0) {
      p.clock().charge(1e6);  // sender is far in the virtual future
      p.send_value<int>(1, 0, 1);
    } else {
      (void)p.recv_value<int>(0, 0);
      EXPECT_GE(p.clock().now_us(), 1e6);
    }
  });
}

TEST(Machine, VirtualTimeIsDeterministicAcrossRuns) {
  auto run_once = [] {
    rt::Machine machine(4);
    machine.run([](rt::Process& p) {
      std::vector<std::vector<i64>> send(4);
      for (int d = 0; d < 4; ++d) {
        send[static_cast<std::size_t>(d)].assign(
            static_cast<std::size_t>(p.rank() + d + 1), 7);
      }
      auto recv = rt::alltoallv(p, send);
      rt::barrier(p);
      (void)recv;
    });
    return machine.max_virtual_time_us();
  };
  const double t1 = run_once();
  const double t2 = run_once();
  EXPECT_GT(t1, 0.0);
  EXPECT_DOUBLE_EQ(t1, t2);
}

TEST(Machine, ExceptionInOneRankPropagatesAndReleasesOthers) {
  EXPECT_THROW(
      rt::Machine::run(4,
                       [](rt::Process& p) {
                         if (p.rank() == 2) throw chaos::ChaosError("boom");
                         // Other ranks head into a barrier and must be
                         // released by poisoning rather than deadlock.
                         p.barrier_sync_only();
                       }),
      chaos::ChaosError);
}

TEST(Machine, ThrowingRankReleasesPeerBlockedInRecv) {
  // Regression: poison used to release only the barrier, so a peer blocked
  // in Mailbox::take (recv of a message that will never be sent) hung
  // forever. The mailbox condvars must be poisoned too, and the blocked
  // receiver must come back with MachinePoisoned.
  std::atomic<bool> receiver_poisoned{false};
  EXPECT_THROW(
      rt::Machine::run(2,
                       [&](rt::Process& p) {
                         if (p.rank() == 1) throw chaos::ChaosError("boom");
                         try {
                           (void)p.recv<int>(1, /*tag=*/0);
                         } catch (const chaos::MachinePoisoned&) {
                           receiver_poisoned = true;
                           throw;
                         }
                       }),
      chaos::ChaosError);
  EXPECT_TRUE(receiver_poisoned.load());
}

TEST(Machine, ThrowingRankReleasesPeersBlockedInAlltoallvFlat) {
  // Regression for the fault-injection PR: a rank dying BETWEEN collectives
  // leaves its peers inside alltoallv_flat's fused barrier phase (not a
  // plain recv), and each of them must surface MachinePoisoned rather than
  // wait for a publish that will never happen.
  constexpr int P = 4;
  std::atomic<int> poisoned_peers{0};
  EXPECT_THROW(
      rt::Machine::run(P,
                       [&](rt::Process& p) {
                         if (p.rank() == 2) throw chaos::ChaosError("boom");
                         std::vector<i64> off(P + 1);
                         for (std::size_t i = 0; i < off.size(); ++i) {
                           off[i] = static_cast<i64>(i);
                         }
                         std::vector<double> send(P, 1.0), recv(P, 0.0);
                         try {
                           rt::alltoallv_flat<double>(p, send, off, recv, off);
                         } catch (const chaos::MachinePoisoned&) {
                           ++poisoned_peers;
                           throw;
                         }
                       }),
      chaos::ChaosError);
  EXPECT_EQ(poisoned_peers.load(), P - 1);
}

TEST(Machine, BackToBackRunsResetStatsClocksAndMailboxes) {
  rt::Machine machine(2);
  machine.run([](rt::Process& p) {
    if (p.rank() == 0) {
      p.send_value<int>(1, 0, 11);
    } else {
      EXPECT_EQ(p.recv_value<int>(0, 0), 11);
    }
  });
  EXPECT_EQ(machine.total_stats().messages_sent, 1);
  EXPECT_GT(machine.max_virtual_time_us(), 0.0);

  // An empty second run must start from scratch: no carried-over stats,
  // clocks, or queued messages.
  machine.run([](rt::Process& p) {
    EXPECT_EQ(p.stats().messages_sent, 0);
    EXPECT_EQ(p.machine().mailbox(p.rank()).pending(), 0u);
    EXPECT_DOUBLE_EQ(p.clock().now_us(), 0.0);
  });
  EXPECT_EQ(machine.total_stats().messages_sent, 0);
  EXPECT_EQ(machine.total_stats().barriers, 0);
  EXPECT_DOUBLE_EQ(machine.max_virtual_time_us(), 0.0);
}

TEST(Machine, ReusableAfterPoisonedRun) {
  rt::Machine machine(4);
  EXPECT_THROW(machine.run([](rt::Process& p) {
    // Rank 0 parks a message nobody consumes; rank 1 blocks on a receive
    // that never arrives; rank 3 fails. Poison must release everyone and
    // the next run must see a clean machine.
    if (p.rank() == 0) p.send_value<int>(2, /*tag=*/9, 1);
    if (p.rank() == 1) (void)p.recv<int>(3, /*tag=*/7);
    if (p.rank() == 3) throw chaos::ChaosError("boom");
    p.barrier_sync_only();
  }),
               chaos::ChaosError);

  machine.run([](rt::Process& p) {
    EXPECT_EQ(p.machine().mailbox(p.rank()).pending(), 0u);
    const auto sum = rt::allreduce_sum(p, i64{p.rank() + 1});
    EXPECT_EQ(sum, 10);
  });
  EXPECT_EQ(machine.total_stats().messages_sent, 0);
}

TEST(Machine, BarrierOrdersPlainWritesAcrossRanks) {
  // The combining barrier is the machine's memory fence: plain writes
  // published before a phase must be visible to every rank after it, for
  // many back-to-back phases (exercises the epoch/parity reuse protocol).
  constexpr int P = 16;
  constexpr int kRounds = 200;
  std::vector<int> shared(P, -1);
  rt::Machine::run(P, [&](rt::Process& p) {
    for (int round = 0; round < kRounds; ++round) {
      shared[static_cast<std::size_t>(p.rank())] = round;
      p.barrier_sync_only();
      for (int r = 0; r < P; ++r) {
        ASSERT_EQ(shared[static_cast<std::size_t>(r)], round);
      }
      p.barrier_sync_only();
    }
  });
}

TEST(Machine, MachineReusableAfterRun) {
  rt::Machine machine(3);
  for (int round = 0; round < 3; ++round) {
    machine.run([&](rt::Process& p) {
      auto sum = rt::allreduce_sum(p, i64{p.rank() + 1});
      EXPECT_EQ(sum, 6);
    });
  }
}

TEST(Machine, CollectiveCounterIsUniqueAndAgreedUpon) {
  rt::Machine machine(4);
  machine.run([](rt::Process& p) {
    const auto a = rt::collective_counter(p);
    const auto b = rt::collective_counter(p);
    EXPECT_NE(a, b);
    // All ranks must see identical values.
    auto all_a = rt::allgather(p, a);
    auto all_b = rt::allgather(p, b);
    for (auto v : all_a) EXPECT_EQ(v, a);
    for (auto v : all_b) EXPECT_EQ(v, b);
  });
}

// --- post-poison recovery (DESIGN.md §11) ------------------------------------

TEST(Machine, RecoverDrainsEveryMailboxShard) {
  constexpr int P = 4;
  rt::Machine machine(P);
  // Every rank parks one message in every other rank's box (all P*(P-1)
  // source shards populated), then rank 3 fails before anyone receives.
  EXPECT_THROW(machine.run([](rt::Process& p) {
                 for (int d = 0; d < p.nprocs(); ++d) {
                   if (d != p.rank()) p.send_value<int>(d, /*tag=*/5, p.rank());
                 }
                 if (p.rank() == 3) throw chaos::ChaosError("boom");
                 p.barrier_sync_only();
               }),
               chaos::ChaosError);
  EXPECT_TRUE(machine.is_poisoned());
  for (int d = 0; d < P; ++d) {
    for (int s = 0; s < P; ++s) {
      EXPECT_EQ(machine.mailbox(d).pending_from(s),
                s == d ? 0u : 1u)
          << "dest " << d << " source " << s;
    }
  }

  EXPECT_EQ(machine.recover(), P * (P - 1));
  EXPECT_FALSE(machine.is_poisoned());
  for (int d = 0; d < P; ++d) {
    EXPECT_EQ(machine.mailbox(d).pending(), 0u) << "dest " << d;
    for (int s = 0; s < P; ++s) {
      EXPECT_EQ(machine.mailbox(d).pending_from(s), 0u)
          << "dest " << d << " source " << s;
    }
  }
  machine.run([](rt::Process& p) {
    EXPECT_EQ(rt::allreduce_sum(p, i64{p.rank() + 1}), 10);
  });
}

TEST(Machine, StaleMessageIsNeverRedeliveredAfterRecover) {
  rt::Machine machine(2);
  // Run 1: rank 1's message is in flight when rank 0 dies before receiving.
  EXPECT_THROW(machine.run([](rt::Process& p) {
                 if (p.rank() == 1) p.send_value<int>(0, /*tag=*/5, 111);
                 if (p.rank() == 0) throw chaos::ChaosError("die first");
                 p.barrier_sync_only();
               }),
               chaos::ChaosError);
  EXPECT_EQ(machine.mailbox(0).pending_from(1), 1u);
  EXPECT_EQ(machine.recover(), 1);

  // Run 2 re-sends under the same (source, tag): the receive must see the
  // fresh payload, never the stale one from the poisoned run.
  machine.run([](rt::Process& p) {
    if (p.rank() == 1) p.send_value<int>(0, /*tag=*/5, 222);
    if (p.rank() == 0) EXPECT_EQ(p.recv_value<int>(1, 5), 222);
  });
  EXPECT_EQ(machine.mailbox(0).pending(), 0u);
}

TEST(Machine, RecoverOnACleanMachineIsANoOp) {
  rt::Machine machine(3);
  EXPECT_EQ(machine.recover(), 0);  // fresh machine: nothing to drain
  machine.run([](rt::Process& p) {
    if (p.rank() == 0) p.send_value<int>(1, 2, 9);
    if (p.rank() == 1) EXPECT_EQ(p.recv_value<int>(0, 2), 9);
    rt::barrier(p);
  });
  EXPECT_EQ(machine.recover(), 0);  // every message was consumed
  machine.run([](rt::Process& p) {
    EXPECT_EQ(rt::allreduce_sum(p, i64{1}), 3);
  });
}

// ---------------------------------------------------------------------------
// Shrunken active-rank view (graceful degradation)
// ---------------------------------------------------------------------------

TEST(Machine, ShrinkNarrowsBarrierAndCollectivesToTheSurvivors) {
  rt::Machine machine(8);
  machine.run([](rt::Process& p) { EXPECT_EQ(p.nprocs(), 8); });

  machine.shrink_to(5);
  EXPECT_EQ(machine.active_nprocs(), 5);
  EXPECT_EQ(machine.shrink_count(), 1);
  machine.run([](rt::Process& p) {
    EXPECT_EQ(p.nprocs(), 5);
    EXPECT_LT(p.rank(), 5);
    // Barrier, reduction, and alltoallv all span exactly the survivors.
    EXPECT_EQ(rt::allreduce_sum(p, i64{p.rank()}), 10);
    std::vector<std::vector<i64>> out(5);
    for (int d = 0; d < 5; ++d) out[static_cast<std::size_t>(d)] = {i64{p.rank()}};
    const auto in = rt::alltoallv<i64>(p, out);
    ASSERT_EQ(in.size(), 5u);
    for (int s = 0; s < 5; ++s) {
      ASSERT_EQ(in[static_cast<std::size_t>(s)].size(), 1u);
      EXPECT_EQ(in[static_cast<std::size_t>(s)][0], s);
    }
  });
  EXPECT_EQ(machine.recover(), 0);  // parked ranks sent nothing

  machine.restore_full_width();
  EXPECT_EQ(machine.active_nprocs(), 8);
  EXPECT_EQ(machine.shrink_count(), 1);  // restore is not a shrink
  machine.run([](rt::Process& p) {
    EXPECT_EQ(p.nprocs(), 8);
    EXPECT_EQ(rt::allreduce_sum(p, i64{1}), 8);
  });
}

TEST(Machine, ShrinkToOneRunsInlineOnTheCaller) {
  rt::Machine machine(4);
  machine.shrink_to(1);
  const auto caller = std::this_thread::get_id();
  machine.run([&](rt::Process& p) {
    EXPECT_EQ(p.nprocs(), 1);
    EXPECT_EQ(p.rank(), 0);
    EXPECT_EQ(std::this_thread::get_id(), caller);
    EXPECT_EQ(rt::allreduce_sum(p, i64{7}), 7);
  });
  machine.restore_full_width();
  machine.run([](rt::Process& p) { EXPECT_EQ(p.nprocs(), 4); });
}

TEST(Machine, RepeatedShrinksCountAndStack) {
  rt::Machine machine(8);
  machine.shrink_to(7);
  machine.shrink_to(6);
  machine.shrink_to(6);  // no-op: already at the requested width
  EXPECT_EQ(machine.active_nprocs(), 6);
  EXPECT_EQ(machine.shrink_count(), 2);
  machine.run([](rt::Process& p) {
    EXPECT_EQ(rt::allreduce_sum(p, i64{1}), 6);
  });
}
