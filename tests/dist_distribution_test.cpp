// Distribution math: ownership round-trips, coverage, and the irregular
// (map-driven) path, swept over kinds, sizes and process counts.
#include <gtest/gtest.h>

#include <numeric>
#include <set>
#include <tuple>
#include <vector>

#include "dist/distribution.hpp"
#include "rt/collectives.hpp"

namespace rt = chaos::rt;
namespace dist = chaos::dist;
using chaos::i64;

namespace {

std::shared_ptr<const dist::Distribution> make(rt::Process& p,
                                               dist::DistKind kind, i64 n) {
  switch (kind) {
    case dist::DistKind::Block: return dist::Distribution::block(p, n);
    case dist::DistKind::Cyclic: return dist::Distribution::cyclic(p, n);
    case dist::DistKind::BlockCyclic:
      return dist::Distribution::block_cyclic(p, n, 3);
    case dist::DistKind::Irregular: {
      // A deterministic scrambled map: global g goes to (g*7+3) mod P.
      auto map_dist = dist::Distribution::block(p, n);
      std::vector<i64> slice(static_cast<std::size_t>(map_dist->my_local_size()));
      for (std::size_t l = 0; l < slice.size(); ++l) {
        const i64 g = map_dist->global_of(p.rank(), static_cast<i64>(l));
        slice[l] = (g * 7 + 3) % p.nprocs();
      }
      return dist::Distribution::irregular_from_map(p, slice, *map_dist,
                                                    /*page_size=*/16);
    }
  }
  return nullptr;
}

}  // namespace

class DistributionSweep
    : public ::testing::TestWithParam<std::tuple<dist::DistKind, i64, int>> {};

INSTANTIATE_TEST_SUITE_P(
    KindsSizesProcs, DistributionSweep,
    ::testing::Combine(::testing::Values(dist::DistKind::Block,
                                         dist::DistKind::Cyclic,
                                         dist::DistKind::BlockCyclic,
                                         dist::DistKind::Irregular),
                       ::testing::Values<i64>(1, 5, 64, 257),
                       ::testing::Values(1, 3, 4, 8)),
    [](const auto& info) {
      return std::string(dist::to_string(std::get<0>(info.param))) + "_N" +
             std::to_string(std::get<1>(info.param)) + "_P" +
             std::to_string(std::get<2>(info.param));
    });

TEST_P(DistributionSweep, LocalSizesCoverGlobalExactly) {
  const auto [kind, n, P] = GetParam();
  rt::Machine::run(P, [&, kind = kind, n = n](rt::Process& p) {
    auto d = make(p, kind, n);
    i64 total = 0;
    for (int r = 0; r < p.nprocs(); ++r) total += d->local_size(r);
    EXPECT_EQ(total, n);
    EXPECT_EQ(d->my_local_size(),
              static_cast<i64>(d->my_globals().size()));
  });
}

TEST_P(DistributionSweep, GlobalsPartitionTheIndexSpace) {
  const auto [kind, n, P] = GetParam();
  rt::Machine::run(P, [&, kind = kind, n = n](rt::Process& p) {
    auto d = make(p, kind, n);
    auto mine = d->my_globals();
    auto everyone = rt::allgatherv<i64>(p, mine);
    std::set<i64> unique(everyone.begin(), everyone.end());
    EXPECT_EQ(static_cast<i64>(unique.size()), n);
    if (!unique.empty()) {
      EXPECT_EQ(*unique.begin(), 0);
      EXPECT_EQ(*unique.rbegin(), n - 1);
    }
  });
}

TEST_P(DistributionSweep, LocateAgreesWithOwnership) {
  const auto [kind, n, P] = GetParam();
  rt::Machine::run(P, [&, kind = kind, n = n](rt::Process& p) {
    auto d = make(p, kind, n);
    // Everyone queries the whole index space.
    std::vector<i64> all(static_cast<std::size_t>(n));
    std::iota(all.begin(), all.end(), 0);
    auto entries = d->locate(p, all);
    // My own globals must resolve to me with the right local offset.
    auto mine = d->my_globals();
    for (std::size_t l = 0; l < mine.size(); ++l) {
      const auto& e = entries[static_cast<std::size_t>(mine[l])];
      EXPECT_EQ(e.proc, p.rank());
      EXPECT_EQ(e.local, static_cast<i64>(l));
    }
    // Every entry's local offset must be within its owner's extent.
    for (const auto& e : entries) {
      ASSERT_GE(e.proc, 0);
      ASSERT_LT(e.proc, p.nprocs());
      EXPECT_GE(e.local, 0);
      EXPECT_LT(e.local, d->local_size(e.proc));
    }
  });
}

TEST_P(DistributionSweep, GlobalOfInvertsLocalIndexing) {
  const auto [kind, n, P] = GetParam();
  rt::Machine::run(P, [&, kind = kind, n = n](rt::Process& p) {
    auto d = make(p, kind, n);
    auto mine = d->my_globals();
    for (std::size_t l = 0; l < mine.size(); ++l) {
      EXPECT_EQ(d->global_of(p.rank(), static_cast<i64>(l)), mine[l]);
    }
  });
}

TEST(Distribution, RegularClosedFormsMatchHpfConventions) {
  rt::Machine::run(4, [](rt::Process& p) {
    auto blk = dist::Distribution::block(p, 10);  // block size ceil(10/4)=3
    EXPECT_EQ(blk->owner_of(0), 0);
    EXPECT_EQ(blk->owner_of(2), 0);
    EXPECT_EQ(blk->owner_of(3), 1);
    EXPECT_EQ(blk->owner_of(9), 3);
    EXPECT_EQ(blk->local_index_of(4), 1);
    EXPECT_EQ(blk->local_size(3), 1);  // 9 only

    auto cyc = dist::Distribution::cyclic(p, 10);
    EXPECT_EQ(cyc->owner_of(0), 0);
    EXPECT_EQ(cyc->owner_of(5), 1);
    EXPECT_EQ(cyc->local_index_of(9), 2);
    EXPECT_EQ(cyc->local_size(0), 3);  // 0,4,8
    EXPECT_EQ(cyc->local_size(2), 2);  // 2,6

    auto bc = dist::Distribution::block_cyclic(p, 20, 2);
    // Bricks of 2: [0,1]->p0 [2,3]->p1 [4,5]->p2 [6,7]->p3 [8,9]->p0 ...
    EXPECT_EQ(bc->owner_of(0), 0);
    EXPECT_EQ(bc->owner_of(3), 1);
    EXPECT_EQ(bc->owner_of(8), 0);
    EXPECT_EQ(bc->local_index_of(9), 3);
    EXPECT_EQ(bc->local_size(0), 6);  // 0,1,8,9,16,17
  });
}

TEST(Distribution, DadsDifferByIncarnation) {
  rt::Machine::run(2, [](rt::Process& p) {
    auto a = dist::Distribution::block(p, 100);
    auto b = dist::Distribution::block(p, 100);
    EXPECT_EQ(a->dad().kind, b->dad().kind);
    EXPECT_EQ(a->dad().size, b->dad().size);
    EXPECT_NE(a->dad().incarnation, b->dad().incarnation);
    EXPECT_FALSE(a->dad() == b->dad());
    EXPECT_TRUE(a->dad() == a->dad());
  });
}

TEST(Distribution, IrregularFromMapRespectsTheMap) {
  rt::Machine::run(4, [](rt::Process& p) {
    constexpr i64 n = 37;
    auto map_dist = dist::Distribution::block(p, n);
    // Send everything to rank 2 except multiples of 5, which go to rank 0.
    std::vector<i64> slice(static_cast<std::size_t>(map_dist->my_local_size()));
    for (std::size_t l = 0; l < slice.size(); ++l) {
      const i64 g = map_dist->global_of(p.rank(), static_cast<i64>(l));
      slice[l] = (g % 5 == 0) ? 0 : 2;
    }
    auto d = dist::Distribution::irregular_from_map(p, slice, *map_dist, 8);
    EXPECT_EQ(d->local_size(0), 8);  // 0,5,10,15,20,25,30,35
    EXPECT_EQ(d->local_size(1), 0);
    EXPECT_EQ(d->local_size(2), n - 8);
    EXPECT_EQ(d->local_size(3), 0);
    if (p.rank() == 0) {
      auto mine = d->my_globals();
      for (std::size_t l = 0; l < mine.size(); ++l) {
        EXPECT_EQ(mine[l] % 5, 0);
        if (l > 0) {
          EXPECT_LT(mine[l - 1], mine[l]);  // ascending order
        }
      }
    }
  });
}

TEST(Distribution, OwnerOfRejectsIrregular) {
  rt::Machine::run(2, [](rt::Process& p) {
    auto map_dist = dist::Distribution::block(p, 8);
    std::vector<i64> slice(static_cast<std::size_t>(map_dist->my_local_size()),
                           0);
    auto d = dist::Distribution::irregular_from_map(p, slice, *map_dist);
    EXPECT_THROW((void)d->owner_of(0), chaos::ChaosError);
    EXPECT_THROW((void)d->local_index_of(0), chaos::ChaosError);
  });
}
