// Shrink-remap recovery (DESIGN.md §13): after a permanent rank failure the
// survivors restore every checkpointed array from the partner copies onto
// the narrowed machine, bit-identically, under freshly minted incarnations.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <vector>

#include "core/degrade.hpp"
#include "dist/darray.hpp"
#include "rt/checkpoint.hpp"
#include "rt/collectives.hpp"
#include "rt/machine.hpp"

namespace rt = chaos::rt;
namespace dist = chaos::dist;
namespace core = chaos::core;
using chaos::f64;
using chaos::i64;
using chaos::u64;

namespace {

/// Deterministic fills keyed to the GLOBAL index: the restored image at any
/// width must reproduce these bytes exactly, because restore only moves
/// values — it never recomputes them.
f64 fx(i64 g) { return static_cast<f64>(g) * 1.5 + 0.25; }
i64 fi(i64 g) { return g * g - 3; }
float fw(i64 g) { return static_cast<float>(g) * 0.5f; }

struct Reference {
  std::vector<f64> x;
  std::vector<i64> idx;
  std::vector<float> w;
};

/// Full-width phase: builds three arrays (two aligned on one irregular
/// distribution, one on its own block distribution), captures a checkpoint
/// at @p epoch, and returns the global reference image.
Reference build_and_checkpoint(rt::Machine& machine, rt::CheckpointStore& store,
                               i64 n, u64 epoch) {
  Reference ref;
  machine.run([&](rt::Process& p) {
    // Scrambled irregular home for x/idx so the restore path must handle
    // non-block ownership; w lives on plain block.
    auto map_dist = dist::Distribution::block(p, n);
    std::vector<i64> slice(
        static_cast<std::size_t>(map_dist->my_local_size()));
    for (std::size_t l = 0; l < slice.size(); ++l) {
      const i64 g = map_dist->global_of(p.rank(), static_cast<i64>(l));
      slice[l] = (g * 7 + 3) % p.nprocs();
    }
    auto dxy = dist::Distribution::irregular_from_map(p, slice, *map_dist, 16);
    auto dw = dist::Distribution::block(p, n);

    dist::DistributedArray<f64> x(p, dxy);
    dist::DistributedArray<i64> idx(p, dxy);
    dist::DistributedArray<float> w(p, dw);
    x.fill_by_global(fx);
    idx.fill_by_global(fi);
    w.fill_by_global(fw);

    const auto gxy = dxy->my_globals();
    const auto gw = dw->my_globals();
    const std::vector<rt::SegmentView> views = {
        core::make_segment_view<f64>(0, x, gxy, /*nmod=*/7),
        core::make_segment_view<i64>(1, idx, gxy, /*nmod=*/8),
        core::make_segment_view<float>(2, w, gw, /*nmod=*/9),
    };
    store.capture(p, epoch, views);

    const auto ax = x.to_global(p);
    const auto ai = idx.to_global(p);
    const auto aw = w.to_global(p);
    if (p.rank() == 0) {
      ref.x = ax;
      ref.idx = ai;
      ref.w = aw;
    }
  });
  store.commit();
  return ref;
}

/// Shrunken-width phase: restores from @p store under @p map, materializes
/// the typed arrays, and returns the reassembled global image.
Reference restore_and_gather(rt::Machine& machine,
                             const rt::CheckpointStore& store,
                             const core::ShrinkMap& map) {
  Reference got;
  machine.run([&](rt::Process& p) {
    const auto segs = core::restore_shrunk(p, store, map, /*page_size=*/16);
    ASSERT_EQ(segs.size(), 3u);
    EXPECT_EQ(segs[0].array_id, 0u);
    EXPECT_EQ(segs[0].nmod, 7u);
    EXPECT_EQ(segs[1].nmod, 8u);
    EXPECT_EQ(segs[2].nmod, 9u);
    // Aligned arrays come back aligned: one fresh distribution, one fresh
    // incarnation, shared by both — and distinct from the dead-width one.
    EXPECT_EQ(segs[0].dist.get(), segs[1].dist.get());
    EXPECT_NE(segs[0].dist->dad().incarnation, segs[0].old_incarnation);
    EXPECT_NE(segs[2].dist->dad().incarnation, segs[2].old_incarnation);

    auto x = core::restored_array<f64>(p, segs[0]);
    auto idx = core::restored_array<i64>(p, segs[1]);
    auto w = core::restored_array<float>(p, segs[2]);
    const auto ax = x.to_global(p);
    const auto ai = idx.to_global(p);
    const auto aw = w.to_global(p);
    if (p.rank() == 0) {
      got.x = ax;
      got.idx = ai;
      got.w = aw;
    }
    // Restore tallies its modeled charge (bytes may be zero on a rank that
    // ends up owning nothing — the machine-wide check is below).
    EXPECT_GT(p.stats().restored_segments, 0);
  });
  EXPECT_GT(machine.total_stats().restored_bytes, 0);
  return got;
}

void expect_bit_identical(const Reference& a, const Reference& b) {
  ASSERT_EQ(a.x.size(), b.x.size());
  ASSERT_EQ(a.idx.size(), b.idx.size());
  ASSERT_EQ(a.w.size(), b.w.size());
  EXPECT_EQ(std::memcmp(a.x.data(), b.x.data(), a.x.size() * sizeof(f64)), 0);
  EXPECT_EQ(
      std::memcmp(a.idx.data(), b.idx.data(), a.idx.size() * sizeof(i64)), 0);
  EXPECT_EQ(
      std::memcmp(a.w.data(), b.w.data(), a.w.size() * sizeof(float)), 0);
}

}  // namespace

TEST(Degrade, SingleKillRestoresBitIdenticallyAtEveryDeadRank) {
  // Rank 0, a middle rank, and rank P-1 (whose buddy wraps to rank 0).
  for (const int dead : {0, 3, 7}) {
    rt::Machine machine(8);
    rt::CheckpointStore store(8);
    const Reference ref = build_and_checkpoint(machine, store, /*n=*/64,
                                               /*epoch=*/1);

    machine.shrink_to(7);
    const core::ShrinkMap map{.old_nprocs = 8, .dead_rank = dead};
    EXPECT_EQ(map.new_of(dead), -1);
    EXPECT_EQ(map.old_of(map.new_of(map.buddy_old_rank())),
              map.buddy_old_rank());
    const Reference got = restore_and_gather(machine, store, map);
    expect_bit_identical(ref, got);
  }
}

TEST(Degrade, DoubleKillSurvivesEightToSevenToSix) {
  rt::Machine machine(8);
  rt::CheckpointStore store(8);
  const Reference ref = build_and_checkpoint(machine, store, /*n=*/48,
                                             /*epoch=*/1);

  // First failure: old rank 5 dies.
  machine.shrink_to(7);
  const core::ShrinkMap first{.old_nprocs = 8, .dead_rank = 5};
  Reference mid;
  machine.run([&](rt::Process& p) {
    const auto segs = core::restore_shrunk(p, store, first, /*page_size=*/16);
    auto x = core::restored_array<f64>(p, segs[0]);
    auto idx = core::restored_array<i64>(p, segs[1]);
    auto w = core::restored_array<float>(p, segs[2]);
    // Re-checkpoint at the NEW width before resuming — the second failure
    // must restore from a width-7 checkpoint, not the stale width-8 one.
    const auto gxy = x.dist().my_globals();
    const auto gw = w.dist().my_globals();
    const std::vector<rt::SegmentView> views = {
        core::make_segment_view<f64>(0, x, gxy, 7),
        core::make_segment_view<i64>(1, idx, gxy, 8),
        core::make_segment_view<float>(2, w, gw, 9),
    };
    store.capture(p, /*epoch=*/2, views);
    const auto ax = x.to_global(p);
    const auto ai = idx.to_global(p);
    const auto aw = w.to_global(p);
    if (p.rank() == 0) mid = {ax, ai, aw};
  });
  store.commit();
  EXPECT_EQ(store.width(), 7);
  EXPECT_EQ(store.epoch(), 2u);
  expect_bit_identical(ref, mid);

  // Second failure: width-7 rank 2 dies.
  machine.shrink_to(6);
  const core::ShrinkMap second{.old_nprocs = 7, .dead_rank = 2};
  const Reference got = restore_and_gather(machine, store, second);
  expect_bit_identical(ref, got);
  EXPECT_EQ(machine.shrink_count(), 2);
}

TEST(Degrade, RanksThatOwnNothingStillParticipate) {
  // N < P: block gives ranks 5..7 empty slices. Kill an empty rank and a
  // loaded one; both restores must reproduce the reference.
  for (const int dead : {6, 2}) {
    rt::Machine machine(8);
    rt::CheckpointStore store(8);
    const Reference ref = build_and_checkpoint(machine, store, /*n=*/5,
                                               /*epoch=*/1);
    machine.shrink_to(7);
    const core::ShrinkMap map{.old_nprocs = 8, .dead_rank = dead};
    const Reference got = restore_and_gather(machine, store, map);
    expect_bit_identical(ref, got);
    machine.restore_full_width();
  }
}

TEST(Degrade, TwoToOneCollapseRunsInline) {
  rt::Machine machine(2);
  rt::CheckpointStore store(2);
  const Reference ref = build_and_checkpoint(machine, store, /*n=*/12,
                                             /*epoch=*/1);
  machine.shrink_to(1);
  const core::ShrinkMap map{.old_nprocs = 2, .dead_rank = 0};
  EXPECT_EQ(map.buddy_old_rank(), 1);  // the lone survivor holds the copy
  const Reference got = restore_and_gather(machine, store, map);
  expect_bit_identical(ref, got);
  // Everything now lives on the one survivor.
  machine.run([&](rt::Process& p) { EXPECT_EQ(p.nprocs(), 1); });
}
