// GeoCoL construction: CSR assembly must be deduplicated, symmetrized,
// self-loop-free, and independent of which process contributed which edge.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/geocol.hpp"
#include "rt/collectives.hpp"

namespace rt = chaos::rt;
namespace dist = chaos::dist;
namespace core = chaos::core;
using chaos::f64;
using chaos::i64;

TEST(GeoCol, LinkBuildsSymmetricDedupedCsr) {
  rt::Machine::run(4, [](rt::Process& p) {
    constexpr i64 n = 8;
    auto vdist = dist::Distribution::block(p, n);
    // A ring 0-1-2-...-7-0 plus a chord 0-4; every process contributes the
    // subset of edges e with e % nprocs == rank, plus a DUPLICATE of edge
    // (0,1) from every process and a self loop (3,3).
    std::vector<i64> u, v;
    for (i64 e = 0; e < n; ++e) {
      if (e % p.nprocs() == p.rank()) {
        u.push_back(e);
        v.push_back((e + 1) % n);
      }
    }
    if (p.rank() == 0) {
      u.push_back(0);
      v.push_back(4);
    }
    u.push_back(1);  // duplicate from every rank, reversed direction
    v.push_back(0);
    u.push_back(3);  // self loop: must be dropped
    v.push_back(3);

    core::GeoColBuilder b(p, vdist);
    b.link(u, v);
    auto g = b.build();
    ASSERT_TRUE(g->has_connectivity());
    auto view = g->view();

    // Expected neighbor sets.
    auto expect_neighbors = [&](i64 vertex) {
      std::vector<i64> nb{(vertex + 1) % n, (vertex + n - 1) % n};
      if (vertex == 0) nb.push_back(4);
      if (vertex == 4) nb.push_back(0);
      std::sort(nb.begin(), nb.end());
      nb.erase(std::unique(nb.begin(), nb.end()), nb.end());
      return nb;
    };
    const auto globals = vdist->my_globals();
    for (i64 l = 0; l < view.nlocal(); ++l) {
      std::vector<i64> got(view.adjncy.begin() + view.xadj[static_cast<std::size_t>(l)],
                           view.adjncy.begin() + view.xadj[static_cast<std::size_t>(l) + 1]);
      EXPECT_EQ(got, expect_neighbors(globals[static_cast<std::size_t>(l)]))
          << "vertex " << globals[static_cast<std::size_t>(l)];
    }
  });
}

TEST(GeoCol, GeometryAndLoadSlicesAreStored) {
  rt::Machine::run(3, [](rt::Process& p) {
    constexpr i64 n = 10;
    auto vdist = dist::Distribution::block(p, n);
    const i64 nl = vdist->my_local_size();
    std::vector<f64> xs(static_cast<std::size_t>(nl)),
        ys(static_cast<std::size_t>(nl)), w(static_cast<std::size_t>(nl));
    for (i64 l = 0; l < nl; ++l) {
      const i64 g = vdist->global_of(p.rank(), l);
      xs[static_cast<std::size_t>(l)] = static_cast<f64>(g);
      ys[static_cast<std::size_t>(l)] = -static_cast<f64>(g);
      w[static_cast<std::size_t>(l)] = 1.0 + static_cast<f64>(g % 3);
    }
    core::GeoColBuilder b(p, vdist);
    const std::span<const f64> coords[] = {xs, ys};
    b.geometry(coords).load(w);
    auto g = b.build();
    EXPECT_TRUE(g->has_geometry());
    EXPECT_EQ(g->dims(), 2);
    EXPECT_TRUE(g->has_load());
    EXPECT_FALSE(g->has_connectivity());
    auto view = g->view();
    for (i64 l = 0; l < nl; ++l) {
      EXPECT_DOUBLE_EQ(view.coords[0][static_cast<std::size_t>(l)],
                       xs[static_cast<std::size_t>(l)]);
      EXPECT_DOUBLE_EQ(view.weights[static_cast<std::size_t>(l)],
                       w[static_cast<std::size_t>(l)]);
      EXPECT_DOUBLE_EQ(view.weight_of(l), w[static_cast<std::size_t>(l)]);
    }
  });
}

TEST(GeoCol, EdgeCountIsGlobalAcrossContributors) {
  rt::Machine::run(4, [](rt::Process& p) {
    auto vdist = dist::Distribution::block(p, 6);
    core::GeoColBuilder b(p, vdist);
    // Each rank contributes one edge.
    std::vector<i64> u{static_cast<i64>(p.rank() % 6)};
    std::vector<i64> v{static_cast<i64>((p.rank() + 1) % 6)};
    b.link(u, v);
    auto g = b.build();
    EXPECT_EQ(g->nedges_global(), 4);
  });
}

TEST(GeoCol, MisalignedGeometryIsRejected) {
  EXPECT_THROW(
      rt::Machine::run(2,
                       [](rt::Process& p) {
                         auto vdist = dist::Distribution::block(p, 10);
                         std::vector<f64> wrong(1, 0.0);
                         core::GeoColBuilder b(p, vdist);
                         const std::span<const f64> coords[] = {wrong};
                         b.geometry(coords);
                       }),
      chaos::ChaosError);
}

TEST(GeoCol, OutOfRangeEdgeIsRejected) {
  EXPECT_THROW(rt::Machine::run(2,
                                [](rt::Process& p) {
                                  auto vdist = dist::Distribution::block(p, 4);
                                  core::GeoColBuilder b(p, vdist);
                                  std::vector<i64> u{0}, v{4};
                                  b.link(u, v);
                                  (void)b.build();
                                }),
               chaos::ChaosError);
}
