// Parser for the mini Fortran 90D dialect: accepted grammar, rejected
// malformed inputs, and faithful AST shapes for the paper's figures.
#include <gtest/gtest.h>

#include <variant>

#include "lang/parser.hpp"
#include "lang/token.hpp"

namespace lang = chaos::lang;

TEST(Lexer, TokenKindsAndCase) {
  auto toks = lang::tokenize_line("  Real*8 x(NNode), y_2 ! comment", 3);
  ASSERT_GE(toks.size(), 8u);
  EXPECT_EQ(toks[0].kind, lang::Tok::Ident);
  EXPECT_EQ(toks[0].text, "REAL*8");
  EXPECT_EQ(toks[1].text, "X");
  EXPECT_EQ(toks[2].kind, lang::Tok::LParen);
  EXPECT_EQ(toks[3].text, "NNODE");
  EXPECT_EQ(toks[5].kind, lang::Tok::Comma);
  EXPECT_EQ(toks[6].text, "Y_2");
  EXPECT_EQ(toks.back().kind, lang::Tok::End);
  EXPECT_EQ(toks[0].line, 3);
}

TEST(Lexer, NumbersIncludingFortranDoubles) {
  auto toks = lang::tokenize_line("1 2.5 1e3 4.5d-2 2**3", 1);
  EXPECT_DOUBLE_EQ(toks[0].number, 1.0);
  EXPECT_DOUBLE_EQ(toks[1].number, 2.5);
  EXPECT_DOUBLE_EQ(toks[2].number, 1000.0);
  EXPECT_DOUBLE_EQ(toks[3].number, 0.045);
  EXPECT_EQ(toks[5].kind, lang::Tok::Power);
}

TEST(Lexer, RejectsGarbage) {
  EXPECT_THROW(lang::tokenize_line("x @ y", 1), lang::LangError);
}

TEST(Parser, Figure4ProgramParses) {
  // The paper's Figure 4, modulo the partitioner spelling.
  const char* source = R"(
      REAL*8 x(nnode), y(nnode)
      INTEGER end_pt1(nedge), end_pt2(nedge)
C$    DYNAMIC, DECOMPOSITION reg(nnode), reg2(nedge)
C$    DISTRIBUTE reg(BLOCK), reg2(BLOCK)
C$    ALIGN x, y WITH reg
C$    ALIGN end_pt1, end_pt2 WITH reg2
C$    CONSTRUCT G (nnode, LINK(nedge, end_pt1, end_pt2))
C$    SET distfmt BY PARTITIONING G USING RSB
C$    REDISTRIBUTE reg(distfmt)
      FORALL i = 1, nedge
        REDUCE(ADD, y(end_pt1(i)), x(end_pt1(i)) * x(end_pt2(i)))
        REDUCE(ADD, y(end_pt2(i)), x(end_pt1(i)) - x(end_pt2(i)))
      END FORALL
)";
  auto prog = lang::compile(source);
  // decl, decl, decomps, distribute(+1 pending), align, align, construct,
  // set, redistribute, forall
  ASSERT_EQ(prog.statements.size(), 11u);
  EXPECT_EQ(prog.forall_count, 1u);
  // Host must bind NNODE and NEDGE.
  ASSERT_EQ(prog.params.size(), 2u);
  EXPECT_EQ(prog.params[0], "NEDGE");
  EXPECT_EQ(prog.params[1], "NNODE");

  const auto* forall =
      std::get_if<lang::Forall>(&prog.statements.back().node);
  ASSERT_NE(forall, nullptr);
  EXPECT_EQ(forall->loop_var, "I");
  ASSERT_EQ(forall->body.size(), 2u);
  EXPECT_EQ(forall->body[0].op, lang::LoopReduceOp::Add);
  EXPECT_EQ(forall->body[0].target_array, "Y");
  EXPECT_FALSE(forall->body[0].target_index.direct);
  EXPECT_EQ(forall->body[0].target_index.ind_array, "END_PT1");
}

TEST(Parser, GeometryConstructOfFigure5) {
  const char* source = R"(
      REAL*8 xc(n), yc(n), zc(n)
C$    DECOMPOSITION reg(n)
C$    DISTRIBUTE reg(BLOCK)
C$    ALIGN xc, yc, zc WITH reg
C$    CONSTRUCT G (n, GEOMETRY(3, xc, yc, zc))
C$    SET distfmt BY PARTITIONING G USING RCB
)";
  auto prog = lang::compile(source);
  const lang::Construct* c = nullptr;
  for (const auto& s : prog.statements) {
    if (const auto* g = std::get_if<lang::Construct>(&s.node)) c = g;
  }
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->geometry_dims, 3);
  EXPECT_EQ(c->geometry_arrays,
            (std::vector<std::string>{"XC", "YC", "ZC"}));
  EXPECT_TRUE(c->links.empty());
}

TEST(Parser, CombinedGeoColClausesAndLoad) {
  auto prog = lang::compile(
      "C$ CONSTRUCT G4 (n, GEOMETRY(2, xc, yc), LINK(e, u, v), LOAD(w))");
  const auto* c = std::get_if<lang::Construct>(&prog.statements[0].node);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->geometry_dims, 2);
  EXPECT_EQ(c->links.size(), 1u);
  EXPECT_EQ(c->load_array, "W");
}

TEST(Parser, DoLoopNestsStatements) {
  const char* source = R"(
      REAL*8 x(n)
      DO iter = 1, 10
      FORALL i = 1, n
        x(i) = x(i) + 1.0
      END FORALL
      END DO
)";
  auto prog = lang::compile(source);
  ASSERT_EQ(prog.statements.size(), 2u);
  const auto* loop = std::get_if<lang::DoLoop>(&prog.statements[1].node);
  ASSERT_NE(loop, nullptr);
  EXPECT_EQ(loop->var, "ITER");
  ASSERT_EQ(loop->body.size(), 1u);
  EXPECT_NE(std::get_if<lang::Forall>(&loop->body[0].node), nullptr);
  // ITER is the DO variable, not a host parameter.
  for (const auto& p : prog.params) EXPECT_NE(p, "ITER");
}

TEST(Parser, ExpressionPrecedenceAndIntrinsics) {
  const char* source = R"(
      FORALL i = 1, n
        y(ia(i)) = 2.0 + x(ib(i)) * 3.0 - SQRT(ABS(x(ic(i)))) / 2.0 ** 2
      END FORALL
)";
  auto prog = lang::compile(source);
  const auto* f = std::get_if<lang::Forall>(&prog.statements[0].node);
  ASSERT_NE(f, nullptr);
  const auto& e = *f->body[0].value;
  // Top node: (2.0 + x*3.0) - sqrt/2**2  => Binary Sub.
  const auto* top = std::get_if<lang::Expr::Binary>(&e.node);
  ASSERT_NE(top, nullptr);
  EXPECT_EQ(top->op, lang::BinOp::Sub);
  const auto* left = std::get_if<lang::Expr::Binary>(&top->lhs->node);
  ASSERT_NE(left, nullptr);
  EXPECT_EQ(left->op, lang::BinOp::Add);
}

TEST(Parser, CommentAndDirectiveLineHandling) {
  const char* source = R"(
C this is a comment and CONSTRUCT here is ignored
* another comment
! bang comment
C$ DECOMPOSITION reg(10)
)";
  auto prog = lang::compile(source);
  ASSERT_EQ(prog.statements.size(), 1u);
  EXPECT_NE(std::get_if<lang::DeclDecomps>(&prog.statements[0].node),
            nullptr);
}

TEST(Parser, RejectsTwoLevelIndirection) {
  EXPECT_THROW(lang::compile(R"(
      FORALL i = 1, n
        y(ia(ib(i))) = 1.0
      END FORALL
)"),
               lang::LangError);
}

TEST(Parser, RejectsNonLoopVarSubscript) {
  EXPECT_THROW(lang::compile(R"(
      FORALL i = 1, n
        y(j) = 1.0
      END FORALL
)"),
               lang::LangError);
}

TEST(Parser, RejectsUnterminatedBlocks) {
  EXPECT_THROW(lang::compile("FORALL i = 1, n"), lang::LangError);
  EXPECT_THROW(lang::compile("DO k = 1, 5"), lang::LangError);
}

TEST(Parser, RejectsUnknownStatementsAndBadReduce) {
  EXPECT_THROW(lang::compile("FROBNICATE x"), lang::LangError);
  EXPECT_THROW(lang::compile(R"(
      FORALL i = 1, n
        REDUCE(XOR, y(ia(i)), 1.0)
      END FORALL
)"),
               lang::LangError);
}

TEST(Parser, ErrorsCarryLineNumbers) {
  try {
    lang::compile("\n\nC$ DISTRIBUTE reg BLOCK\n");
    FAIL() << "expected LangError";
  } catch (const lang::LangError& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
        << e.what();
  }
}

TEST(Parser, ErrorsRenderLineAndColumn) {
  // Diagnostics render as "line L:C: message" with C a 1-based column into
  // the raw source line (the C$ sentinel is blanked, not stripped, so
  // directive columns stay aligned with the file).
  try {
    lang::compile("\n\nC$ DISTRIBUTE reg BLOCK\n");
    FAIL() << "expected LangError";
  } catch (const lang::LangError& e) {
    // "BLOCK" starts at column 19 of the raw line, where '(' was expected.
    EXPECT_EQ(std::string(e.what()), "line 3:19: expected '('");
  }

  try {
    lang::compile(R"(
      FORALL i = 1, n
        y(i) = x(i) +
      END FORALL
)");
    FAIL() << "expected LangError";
  } catch (const lang::LangError& e) {
    const std::string msg = e.what();
    // Whatever the wording, the location prefix must carry line AND column.
    EXPECT_EQ(msg.rfind("line 3:", 0), 0u) << msg;
    EXPECT_NE(msg.find(": "), std::string::npos) << msg;
  }
}
