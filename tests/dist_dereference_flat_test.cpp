// dereference_flat: the zero-allocation flat CSR dereference protocol must
// answer bit-identically to the nested dereference() on every layout, hold
// its 3-collective (paged) / 0-collective (replicated) budget, survive the
// edge shapes (empty rank, all-local, P=1, replicated), and fail out-of-range
// queries with exactly the nested path's error. The localize flag sweep at
// the bottom locks the inspector wiring: flat cold misses produce the same
// refs/schedule as the nested cold path, with and without a translation
// cache.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>
#include <string>
#include <tuple>
#include <vector>

#include "core/inspector.hpp"
#include "dist/dereference_workspace.hpp"
#include "dist/translation_cache.hpp"
#include "dist/translation_table.hpp"
#include "rt/collectives.hpp"

namespace rt = chaos::rt;
namespace dist = chaos::dist;
namespace core = chaos::core;
using chaos::i64;

namespace {

std::vector<i64> shuffled_ownership(i64 n, int nprocs, int rank,
                                    unsigned seed) {
  std::vector<i64> all(static_cast<std::size_t>(n));
  std::iota(all.begin(), all.end(), 0);
  std::mt19937 rng(seed);
  std::shuffle(all.begin(), all.end(), rng);
  std::vector<i64> mine;
  for (std::size_t k = 0; k < all.size(); ++k) {
    if (static_cast<int>(k % static_cast<std::size_t>(nprocs)) == rank) {
      mine.push_back(all[k]);
    }
  }
  return mine;
}

void expect_same(const std::vector<dist::Entry>& a,
                 const std::vector<dist::Entry>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t k = 0; k < a.size(); ++k) {
    EXPECT_EQ(a[k].proc, b[k].proc);
    EXPECT_EQ(a[k].local, b[k].local);
  }
}

}  // namespace

class FlatDereferenceSweep
    : public ::testing::TestWithParam<std::tuple<i64, int, i64, bool>> {};

INSTANTIATE_TEST_SUITE_P(
    SizesProcsPages, FlatDereferenceSweep,
    ::testing::Combine(::testing::Values<i64>(1, 17, 256, 1000),
                       ::testing::Values(1, 2, 4, 8),
                       ::testing::Values<i64>(1, 7, 64, 4096),
                       ::testing::Bool()),
    [](const auto& info) {
      return "N" + std::to_string(std::get<0>(info.param)) + "_P" +
             std::to_string(std::get<1>(info.param)) + "_pg" +
             std::to_string(std::get<2>(info.param)) +
             (std::get<3>(info.param) ? "_repl" : "_dist");
    });

TEST_P(FlatDereferenceSweep, MatchesNestedDereference) {
  const auto [n, P, page, repl] = GetParam();
  rt::Machine::run(P, [&, n = n, page = page, repl = repl](rt::Process& p) {
    auto mine = shuffled_ownership(n, p.nprocs(), p.rank(), /*seed=*/42);
    auto tt = dist::TranslationTable::build(p, n, mine, page, repl);

    // Every global plus rank-skewed duplicates: the flat protocol dedups per
    // home on the wire, so duplicate-heavy inputs are the interesting case.
    std::vector<i64> q(static_cast<std::size_t>(n));
    std::iota(q.begin(), q.end(), 0);
    for (i64 g = p.rank(); g < n; g += 3) q.push_back(g);

    const auto nested = tt->dereference(p, q);
    std::vector<dist::Entry> flat;
    dist::DereferenceWorkspace ws;
    tt->dereference_flat(p, q, flat, ws);
    expect_same(nested, flat);

    // Warm repeat through the same workspace: same answers, and the stats
    // hold the collective budget — exactly 3 per paged call, 0 replicated.
    tt->dereference_flat(p, q, flat, ws);
    expect_same(nested, flat);
    EXPECT_EQ(tt->stats().flat_calls, 2);
    EXPECT_EQ(tt->stats().flat_collectives, repl ? 0 : 2 * 3);
  });
}

TEST(FlatDereference, EmptyRanksAndAsymmetricQueries) {
  // Ranks 1 and 3 own nothing and ask nothing; the exchange must tolerate a
  // rank that neither owns nor queries, paged and replicated alike.
  rt::Machine::run(4, [](rt::Process& p) {
    constexpr i64 n = 40;
    std::vector<i64> mine;
    if (p.rank() == 0) {
      for (i64 g = 0; g < n; g += 2) mine.push_back(g);  // evens
    } else if (p.rank() == 2) {
      for (i64 g = 1; g < n; g += 2) mine.push_back(g);  // odds
    }
    for (const i64 page : {i64{1}, i64{4}, i64{64}}) {
      for (const bool repl : {false, true}) {
        auto tt = dist::TranslationTable::build(p, n, mine, page, repl);
        std::vector<i64> q;
        if (!mine.empty()) q = {0, n - 1, 0, 7};
        std::vector<dist::Entry> flat;
        dist::DereferenceWorkspace ws;
        tt->dereference_flat(p, q, flat, ws);
        ASSERT_EQ(flat.size(), q.size());
        for (std::size_t k = 0; k < q.size(); ++k) {
          EXPECT_EQ(flat[k].proc, q[k] % 2 == 0 ? 0 : 2);
          EXPECT_EQ(flat[k].local, q[k] / 2);
        }
      }
    }
  });
}

TEST(FlatDereference, AllLocalQueriesShipNothing) {
  // Each rank asks only about globals whose pages it hosts: the request CSR
  // is all-empty, the three collectives still run (they are collective), but
  // no request word travels.
  rt::Machine::run(4, [](rt::Process& p) {
    constexpr i64 n = 64;
    constexpr i64 page = 4;
    auto mine = shuffled_ownership(n, p.nprocs(), p.rank(), 5);
    auto tt = dist::TranslationTable::build(p, n, mine, page, false);
    std::vector<i64> q;
    for (i64 g = 0; g < n; ++g) {
      if ((g / page) % p.nprocs() == p.rank()) q.push_back(g);
    }
    const auto nested = tt->dereference(p, q);
    std::vector<dist::Entry> flat;
    dist::DereferenceWorkspace ws;
    tt->dereference_flat(p, q, flat, ws);
    expect_same(nested, flat);
    EXPECT_EQ(tt->stats().flat_wire_queries, 0);
    EXPECT_EQ(tt->stats().flat_collectives, 3);
    EXPECT_EQ(p.stats().ttable_flat_wire_queries, 0);
  });
}

TEST(FlatDereference, SingleProcess) {
  rt::Machine::run(1, [](rt::Process& p) {
    constexpr i64 n = 33;
    std::vector<i64> mine(static_cast<std::size_t>(n));
    std::iota(mine.begin(), mine.end(), 0);
    std::reverse(mine.begin(), mine.end());  // local order != global order
    auto tt = dist::TranslationTable::build(p, n, mine, 8, false);
    std::vector<i64> q = {0, 32, 5, 5, 17};
    std::vector<dist::Entry> flat;
    dist::DereferenceWorkspace ws;
    tt->dereference_flat(p, q, flat, ws);
    const auto nested = tt->dereference(p, q);
    expect_same(nested, flat);
    EXPECT_EQ(tt->stats().flat_wire_queries, 0);  // everything self-homed
  });
}

TEST(FlatDereference, ReplicatedAnswersWithZeroCollectives) {
  rt::Machine::run(4, [](rt::Process& p) {
    constexpr i64 n = 100;
    auto mine = shuffled_ownership(n, p.nprocs(), p.rank(), 11);
    auto tt = dist::TranslationTable::build(p, n, mine, 16, true);
    std::vector<i64> q;
    for (i64 g = p.rank(); g < n; g += 3) q.push_back(g);
    std::vector<dist::Entry> flat;
    dist::DereferenceWorkspace ws;
    tt->dereference_flat(p, q, flat, ws);
    const auto nested = tt->dereference(p, q);
    expect_same(nested, flat);
    EXPECT_EQ(tt->stats().flat_collectives, 0);
    EXPECT_EQ(tt->stats().flat_wire_queries, 0);
  });
}

TEST(FlatDereference, OutOfRangeThrowsTheNestedPathsError) {
  // The flat entry point must fail out-of-range queries with the exact
  // message of the nested path — callers switching protocols keep their
  // error handling. Every rank passes the same bad query, so each throws
  // locally before any collective.
  std::string nested_msg, flat_msg;
  try {
    rt::Machine::run(2, [](rt::Process& p) {
      auto mine = shuffled_ownership(10, p.nprocs(), p.rank(), 3);
      auto tt = dist::TranslationTable::build(p, 10, mine, 4);
      const std::vector<i64> q = {10};
      (void)tt->dereference(p, q);
    });
    FAIL() << "nested dereference accepted an out-of-range query";
  } catch (const chaos::ChaosError& e) {
    nested_msg = e.what();
  }
  try {
    rt::Machine::run(2, [](rt::Process& p) {
      auto mine = shuffled_ownership(10, p.nprocs(), p.rank(), 3);
      auto tt = dist::TranslationTable::build(p, 10, mine, 4);
      const std::vector<i64> q = {10};
      std::vector<dist::Entry> out;
      dist::DereferenceWorkspace ws;
      tt->dereference_flat(p, q, out, ws);
    });
    FAIL() << "flat dereference accepted an out-of-range query";
  } catch (const chaos::ChaosError& e) {
    flat_msg = e.what();
  }
  // CHAOS_CHECK prefixes file:line — compare from the message proper on.
  const auto payload = [](const std::string& msg) {
    const auto at = msg.find("check failed:");
    return at == std::string::npos ? msg : msg.substr(at);
  };
  EXPECT_EQ(payload(nested_msg), payload(flat_msg));
  EXPECT_NE(nested_msg.find(
                "translation table: dereferenced index 10 outside [0, 10)"),
            std::string::npos);
}

// --- inspector wiring: the flat cold path behind the workspace flag ---------

TEST(FlatLocalize, FlagProducesBitIdenticalRefsAndSchedule) {
  // Same references localized twice against an irregular distribution: once
  // through the nested cold path, once with the flat flag on. refs, the CSR
  // schedule, and off-process counts must match bit-for-bit; only the
  // modeled collective bill differs (which is why the flag defaults off).
  rt::Machine::run(4, [](rt::Process& p) {
    constexpr i64 n = 120;
    auto md = dist::Distribution::block(p, n);
    std::vector<i64> slice(static_cast<std::size_t>(md->my_local_size()));
    for (std::size_t l = 0; l < slice.size(); ++l) {
      const i64 g = md->global_of(p.rank(), static_cast<i64>(l));
      slice[l] = (g * 7 + 3) % p.nprocs();
    }
    auto d = dist::Distribution::irregular_from_map(p, slice, *md, 8);

    std::vector<i64> refs;
    for (i64 k = 0; k < 60; ++k) {
      refs.push_back((k * 31 + p.rank() * 17) % n);
    }

    core::InspectorWorkspace nested_ws;
    core::Localized nested_out;
    core::localize(p, *d, refs, nested_ws, nested_out);

    core::InspectorWorkspace flat_ws;
    flat_ws.set_flat_locate(true);
    EXPECT_TRUE(flat_ws.flat_locate());
    core::Localized flat_out;
    core::localize(p, *d, refs, flat_ws, flat_out);

    EXPECT_EQ(nested_out.refs, flat_out.refs);
    EXPECT_EQ(nested_out.off_process_refs, flat_out.off_process_refs);
    EXPECT_EQ(nested_out.schedule.send_indices, flat_out.schedule.send_indices);
    EXPECT_EQ(nested_out.schedule.send_offsets, flat_out.schedule.send_offsets);
    EXPECT_EQ(nested_out.schedule.recv_offsets, flat_out.schedule.recv_offsets);
    EXPECT_EQ(nested_out.schedule.nghost, flat_out.schedule.nghost);
  });
}

TEST(FlatLocalize, ComposesWithTranslationCache) {
  // Warm cache hits + flat cold misses: the first localize misses and runs
  // the flat round; the second hits for every distinct global and skips the
  // round entirely (the machine-wide vote). Results stay identical to the
  // cache-free nested baseline throughout.
  rt::Machine::run(4, [](rt::Process& p) {
    constexpr i64 n = 96;
    auto md = dist::Distribution::block(p, n);
    std::vector<i64> slice(static_cast<std::size_t>(md->my_local_size()));
    for (std::size_t l = 0; l < slice.size(); ++l) {
      const i64 g = md->global_of(p.rank(), static_cast<i64>(l));
      slice[l] = (g * 5 + 1) % p.nprocs();
    }
    auto d = dist::Distribution::irregular_from_map(p, slice, *md, 8);

    std::vector<i64> refs;
    for (i64 k = 0; k < 48; ++k) {
      refs.push_back((k * 13 + p.rank() * 29) % n);
    }

    const core::Localized baseline = core::localize(p, *d, refs);

    dist::TranslationCache cache(1 << 10);
    core::InspectorWorkspace ws;
    ws.attach_cache(&cache);
    ws.set_flat_locate(true);
    core::Localized out;
    core::localize(p, *d, refs, ws, out);  // cold: flat round over misses
    EXPECT_EQ(baseline.refs, out.refs);
    const i64 flat_calls_after_cold = d->table()->stats().flat_calls;
    EXPECT_GT(flat_calls_after_cold, 0);  // the flat cold path actually ran

    core::localize(p, *d, refs, ws, out);  // warm: vote skips the round
    EXPECT_EQ(baseline.refs, out.refs);
    EXPECT_EQ(baseline.schedule.send_indices, out.schedule.send_indices);
    EXPECT_EQ(d->table()->stats().flat_calls, flat_calls_after_cold);
  });
}
