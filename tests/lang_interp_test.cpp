// Interpreter end-to-end: directive programs must produce the same results
// as serial evaluation, the REDISTRIBUTE pipeline must work through
// directives alone, and the automatically inserted schedule-reuse guard must
// hit/miss exactly as Section 3 prescribes.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "lang/interp.hpp"
#include "lang/parser.hpp"
#include "lang/token.hpp"
#include "rt/machine.hpp"
#include "workload/mesh.hpp"

namespace rt = chaos::rt;
namespace lang = chaos::lang;
namespace wl = chaos::wl;
using chaos::f64;
using chaos::i64;

namespace {

/// 1-based edge arrays of a tiny mesh.
struct EdgeData {
  i64 nnodes, nedges;
  std::vector<i64> e1, e2;  // 1-based
};

EdgeData tiny_edges() {
  const auto mesh = wl::mesh_tiny();
  EdgeData d{mesh.nnodes, mesh.nedges, mesh.edge1, mesh.edge2};
  for (auto& v : d.e1) v += 1;
  for (auto& v : d.e2) v += 1;
  return d;
}

}  // namespace

TEST(Interp, SingleStatementLoopMatchesSerial) {
  const char* source = R"(
      REAL*8 x(n), y(n)
      INTEGER ia(n), ib(n)
C$    DECOMPOSITION reg(n)
C$    DISTRIBUTE reg(BLOCK)
C$    ALIGN x, y, ia, ib WITH reg
      FORALL i = 1, n
        y(ia(i)) = 2.0 * x(ib(i)) + 1.0
      END FORALL
)";
  constexpr i64 n = 24;
  std::vector<f64> x0(n), expect(n, 0.0);
  std::vector<i64> ia(n), ib(n);
  for (i64 i = 0; i < n; ++i) {
    x0[static_cast<std::size_t>(i)] = 0.5 * static_cast<f64>(i);
    ia[static_cast<std::size_t>(i)] = (i * 7 + 3) % n + 1;   // permutation
    ib[static_cast<std::size_t>(i)] = (i * 5 + 1) % n + 1;
  }
  for (i64 i = 0; i < n; ++i) {
    expect[static_cast<std::size_t>(ia[static_cast<std::size_t>(i)] - 1)] =
        2.0 * x0[static_cast<std::size_t>(ib[static_cast<std::size_t>(i)] - 1)] +
        1.0;
  }

  auto prog = lang::compile(source);
  rt::Machine::run(4, [&](rt::Process& p) {
    lang::Instance inst(prog);
    inst.set_param("N", n);
    inst.bind_real("X", x0);
    inst.bind_int("IA", ia);
    inst.bind_int("IB", ib);
    inst.execute(p);
    const auto y = inst.fetch_real(p, "Y");
    for (i64 i = 0; i < n; ++i) {
      EXPECT_NEAR(y[static_cast<std::size_t>(i)],
                  expect[static_cast<std::size_t>(i)], 1e-12);
    }
  });
}

TEST(Interp, Figure4PipelineRunsAndReducesCorrectly) {
  const auto d = tiny_edges();
  const char* source = R"(
      REAL*8 x(nnode), y(nnode)
      INTEGER end_pt1(nedge), end_pt2(nedge)
C$    DYNAMIC, DECOMPOSITION reg(nnode), reg2(nedge)
C$    DISTRIBUTE reg(BLOCK), reg2(BLOCK)
C$    ALIGN x, y WITH reg
C$    ALIGN end_pt1, end_pt2 WITH reg2
C$    CONSTRUCT G (nnode, LINK(nedge, end_pt1, end_pt2))
C$    SET distfmt BY PARTITIONING G USING RSB
C$    REDISTRIBUTE reg(distfmt)
      FORALL i = 1, nedge
        REDUCE(ADD, y(end_pt1(i)), x(end_pt1(i)) * x(end_pt2(i)))
        REDUCE(ADD, y(end_pt2(i)), x(end_pt1(i)) - x(end_pt2(i)))
      END FORALL
)";
  // Serial reference.
  std::vector<f64> x0(static_cast<std::size_t>(d.nnodes));
  for (i64 i = 0; i < d.nnodes; ++i) {
    x0[static_cast<std::size_t>(i)] = std::cos(static_cast<f64>(i));
  }
  std::vector<f64> expect(static_cast<std::size_t>(d.nnodes), 0.0);
  for (i64 e = 0; e < d.nedges; ++e) {
    const i64 a = d.e1[static_cast<std::size_t>(e)] - 1;
    const i64 b = d.e2[static_cast<std::size_t>(e)] - 1;
    expect[static_cast<std::size_t>(a)] +=
        x0[static_cast<std::size_t>(a)] * x0[static_cast<std::size_t>(b)];
    expect[static_cast<std::size_t>(b)] +=
        x0[static_cast<std::size_t>(a)] - x0[static_cast<std::size_t>(b)];
  }

  auto prog = lang::compile(source);
  rt::Machine::run(4, [&](rt::Process& p) {
    lang::Instance inst(prog);
    inst.set_param("NNODE", d.nnodes);
    inst.set_param("NEDGE", d.nedges);
    inst.bind_real("X", x0);
    inst.bind_int("END_PT1", d.e1);
    inst.bind_int("END_PT2", d.e2);
    inst.execute(p);
    const auto y = inst.fetch_real(p, "Y");
    for (i64 i = 0; i < d.nnodes; ++i) {
      EXPECT_NEAR(y[static_cast<std::size_t>(i)],
                  expect[static_cast<std::size_t>(i)], 1e-9);
    }
    // Phase accounting: the pipeline spent time in every phase.
    EXPECT_GT(inst.phases().graph_gen, 0.0);
    EXPECT_GT(inst.phases().partition, 0.0);
    EXPECT_GT(inst.phases().remap, 0.0);
    EXPECT_GT(inst.phases().inspector, 0.0);
    EXPECT_GT(inst.phases().executor, 0.0);
  });
}

TEST(Interp, DoLoopReusesSchedulesAcrossIterations) {
  const auto d = tiny_edges();
  const char* source = R"(
      REAL*8 x(nnode), y(nnode)
      INTEGER end_pt1(nedge), end_pt2(nedge)
C$    DECOMPOSITION reg(nnode), reg2(nedge)
C$    DISTRIBUTE reg(BLOCK), reg2(BLOCK)
C$    ALIGN x, y WITH reg
C$    ALIGN end_pt1, end_pt2 WITH reg2
      DO step = 1, 10
      FORALL i = 1, nedge
        REDUCE(ADD, y(end_pt1(i)), x(end_pt2(i)))
      END FORALL
      END DO
)";
  auto prog = lang::compile(source);
  rt::Machine::run(4, [&](rt::Process& p) {
    lang::Instance inst(prog);
    inst.set_param("NNODE", d.nnodes);
    inst.set_param("NEDGE", d.nedges);
    std::vector<f64> x0(static_cast<std::size_t>(d.nnodes), 1.0);
    inst.bind_real("X", x0);
    inst.bind_int("END_PT1", d.e1);
    inst.bind_int("END_PT2", d.e2);
    inst.execute(p);
    // One inspector, nine reuses.
    EXPECT_EQ(inst.cache_stats().misses, 1);
    EXPECT_EQ(inst.cache_stats().hits, 9);

    // y(v) = 10 * indegree(v) with x == 1.
    const auto y = inst.fetch_real(p, "Y");
    std::vector<f64> expect(static_cast<std::size_t>(d.nnodes), 0.0);
    for (i64 e = 0; e < d.nedges; ++e) {
      expect[static_cast<std::size_t>(d.e1[static_cast<std::size_t>(e)] - 1)] +=
          10.0;
    }
    for (i64 i = 0; i < d.nnodes; ++i) {
      EXPECT_NEAR(y[static_cast<std::size_t>(i)],
                  expect[static_cast<std::size_t>(i)], 1e-9);
    }
  });
}

TEST(Interp, DisablingReuseRunsInspectorEveryIteration) {
  const auto d = tiny_edges();
  const char* source = R"(
      REAL*8 x(nnode), y(nnode)
      INTEGER end_pt1(nedge), end_pt2(nedge)
C$    DECOMPOSITION reg(nnode), reg2(nedge)
C$    DISTRIBUTE reg(BLOCK), reg2(BLOCK)
C$    ALIGN x, y WITH reg
C$    ALIGN end_pt1, end_pt2 WITH reg2
      DO step = 1, 5
      FORALL i = 1, nedge
        REDUCE(ADD, y(end_pt1(i)), x(end_pt2(i)))
      END FORALL
      END DO
)";
  auto prog = lang::compile(source);
  rt::Machine::run(2, [&](rt::Process& p) {
    lang::Instance with(prog), without(prog);
    for (auto* inst : {&with, &without}) {
      inst->set_param("NNODE", d.nnodes);
      inst->set_param("NEDGE", d.nedges);
      inst->bind_real("X", std::vector<f64>(
                               static_cast<std::size_t>(d.nnodes), 2.0));
      inst->bind_int("END_PT1", d.e1);
      inst->bind_int("END_PT2", d.e2);
    }
    without.set_schedule_reuse(false);
    with.execute(p);
    without.execute(p);
    // Identical results...
    EXPECT_EQ(with.fetch_real(p, "Y"), without.fetch_real(p, "Y"));
    // ...but very different preprocessing cost (Table 1's story).
    EXPECT_LT(with.phases().inspector + with.phases().remap,
              (without.phases().inspector + without.phases().remap) / 2.0);
  });
}

TEST(Interp, OverwritingIndirectionArrayForcesReinspection) {
  const auto d = tiny_edges();
  const char* source = R"(
      REAL*8 x(nnode), y(nnode)
      INTEGER ind(nedge)
C$    DECOMPOSITION reg(nnode), reg2(nedge)
C$    DISTRIBUTE reg(BLOCK), reg2(BLOCK)
C$    ALIGN x, y WITH reg
C$    ALIGN ind WITH reg2
      FORALL i = 1, nedge
        REDUCE(ADD, y(ind(i)), x(ind(i)))
      END FORALL
)";
  auto prog = lang::compile(source);
  rt::Machine::run(2, [&](rt::Process& p) {
    lang::Instance inst(prog);
    inst.set_param("NNODE", d.nnodes);
    inst.set_param("NEDGE", d.nedges);
    std::vector<f64> x0(static_cast<std::size_t>(d.nnodes), 1.0);
    inst.bind_real("X", x0);
    inst.bind_int("IND", d.e1);
    inst.execute(p);
    EXPECT_EQ(inst.cache_stats().misses, 1);
    const chaos::u64 nmod_before = inst.reuse_registry().nmod();
    // An "array intrinsic" rewrites the indirection array (adaptive mesh!).
    inst.overwrite_int(p, "IND", d.e2);
    EXPECT_GT(inst.reuse_registry().nmod(), nmod_before);
  });
}

TEST(Interp, MaxAndMinReductions) {
  const char* source = R"(
      REAL*8 x(n), hi(n), lo(n)
      INTEGER ia(n)
C$    DECOMPOSITION reg(n)
C$    DISTRIBUTE reg(BLOCK)
C$    ALIGN x, hi, lo, ia WITH reg
      FORALL i = 1, n
        REDUCE(MAX, hi(ia(i)), x(i))
        REDUCE(MIN, lo(ia(i)), x(i))
      END FORALL
)";
  constexpr i64 n = 16;
  std::vector<f64> x0(n);
  std::vector<i64> ia(n);
  for (i64 i = 0; i < n; ++i) {
    x0[static_cast<std::size_t>(i)] = static_cast<f64>((i * 11) % n) - 5.0;
    ia[static_cast<std::size_t>(i)] = i % 4 + 1;  // buckets 1..4
  }
  auto prog = lang::compile(source);
  rt::Machine::run(4, [&](rt::Process& p) {
    lang::Instance inst(prog);
    inst.set_param("N", n);
    inst.bind_real("X", x0);
    inst.bind_int("IA", ia);
    inst.execute(p);
    const auto hi = inst.fetch_real(p, "HI");
    const auto lo = inst.fetch_real(p, "LO");
    for (i64 b = 0; b < 4; ++b) {
      f64 want_hi = -1e300, want_lo = 1e300;
      for (i64 i = b; i < n; i += 4) {
        want_hi = std::max(want_hi, x0[static_cast<std::size_t>(i)]);
        want_lo = std::min(want_lo, x0[static_cast<std::size_t>(i)]);
      }
      EXPECT_DOUBLE_EQ(hi[static_cast<std::size_t>(b)], want_hi);
      EXPECT_DOUBLE_EQ(lo[static_cast<std::size_t>(b)], want_lo);
    }
  });
}

TEST(Interp, LoopVarAndScalarsInExpressions) {
  const char* source = R"(
      REAL*8 y(n)
C$    DECOMPOSITION reg(n)
C$    DISTRIBUTE reg(CYCLIC)
C$    ALIGN y WITH reg
      FORALL i = 1, n
        y(i) = scale * i + 0.5
      END FORALL
)";
  constexpr i64 n = 13;
  auto prog = lang::compile(source);
  rt::Machine::run(3, [&](rt::Process& p) {
    lang::Instance inst(prog);
    inst.set_param("N", n);
    inst.set_param("SCALE", 3);
    inst.execute(p);
    const auto y = inst.fetch_real(p, "Y");
    for (i64 i = 0; i < n; ++i) {
      EXPECT_DOUBLE_EQ(y[static_cast<std::size_t>(i)],
                       3.0 * static_cast<f64>(i + 1) + 0.5);
    }
  });
}

TEST(Interp, SemanticErrorsAreReported) {
  rt::Machine::run(1, [](rt::Process& p) {
    {
      // Unbound parameter.
      auto prog = lang::compile("C$ DECOMPOSITION reg(n)");
      lang::Instance inst(prog);
      EXPECT_THROW(inst.execute(p), lang::LangError);
    }
    {
      // ALIGN before DISTRIBUTE.
      auto prog = lang::compile(R"(
      REAL*8 x(4)
C$    DECOMPOSITION reg(4)
C$    ALIGN x WITH reg
)");
      lang::Instance inst(prog);
      EXPECT_THROW(inst.execute(p), lang::LangError);
    }
    {
      // Read and write of one array in a FORALL.
      auto prog = lang::compile(R"(
      REAL*8 x(4)
      INTEGER ia(4)
C$    DECOMPOSITION reg(4)
C$    DISTRIBUTE reg(BLOCK)
C$    ALIGN x, ia WITH reg
      FORALL i = 1, 4
        x(ia(i)) = x(ia(i)) + 1.0
      END FORALL
)");
      lang::Instance inst(prog);
      inst.bind_int("IA", {1, 2, 3, 4});
      EXPECT_THROW(inst.execute(p), lang::LangError);
    }
    {
      // Indirection array must be INTEGER.
      auto prog = lang::compile(R"(
      REAL*8 x(4), w(4)
C$    DECOMPOSITION reg(4)
C$    DISTRIBUTE reg(BLOCK)
C$    ALIGN x, w WITH reg
      FORALL i = 1, 4
        x(w(i)) = 1.0
      END FORALL
)");
      lang::Instance inst(prog);
      EXPECT_THROW(inst.execute(p), lang::LangError);
    }
    {
      // Subscript out of range.
      auto prog = lang::compile(R"(
      REAL*8 x(4), y(4)
      INTEGER ia(4)
C$    DECOMPOSITION reg(4)
C$    DISTRIBUTE reg(BLOCK)
C$    ALIGN x, y, ia WITH reg
      FORALL i = 1, 4
        y(ia(i)) = x(i)
      END FORALL
)");
      lang::Instance inst(prog);
      inst.bind_int("IA", {1, 2, 3, 9});
      EXPECT_THROW(inst.execute(p), lang::LangError);
    }
  });
}

TEST(Interp, MapperCouplerReusedInsideTimeStepLoop) {
  // Section 3 applied to the mapper: a CONSTRUCT + SET + REDISTRIBUTE inside
  // a DO loop must build the GeoCoL and partition exactly once when nothing
  // that feeds them changes.
  const auto d = tiny_edges();
  const char* source = R"(
      REAL*8 x(nnode), y(nnode)
      INTEGER end_pt1(nedge), end_pt2(nedge)
C$    DECOMPOSITION reg(nnode), reg2(nedge)
C$    DISTRIBUTE reg(BLOCK), reg2(BLOCK)
C$    ALIGN x, y WITH reg
C$    ALIGN end_pt1, end_pt2 WITH reg2
      DO step = 1, 6
C$    CONSTRUCT G (nnode, LINK(nedge, end_pt1, end_pt2))
C$    SET distfmt BY PARTITIONING G USING RSB
C$    REDISTRIBUTE reg(distfmt)
      FORALL i = 1, nedge
        REDUCE(ADD, y(end_pt1(i)), x(end_pt2(i)))
      END FORALL
      END DO
)";
  auto prog = lang::compile(source);
  rt::Machine::run(4, [&](rt::Process& p) {
    lang::Instance inst(prog);
    inst.set_param("NNODE", d.nnodes);
    inst.set_param("NEDGE", d.nedges);
    std::vector<f64> x0(static_cast<std::size_t>(d.nnodes), 1.0);
    inst.bind_real("X", x0);
    inst.bind_int("END_PT1", d.e1);
    inst.bind_int("END_PT2", d.e2);
    inst.execute(p);

    // One GeoCoL build + one partition; five reuses of each.
    EXPECT_EQ(inst.mapper_cache_stats().misses, 2);
    EXPECT_EQ(inst.mapper_cache_stats().hits, 10);
    // The identity REDISTRIBUTE after the first step does not invalidate the
    // FORALL's inspector either.
    EXPECT_EQ(inst.cache_stats().misses, 1);
    EXPECT_EQ(inst.cache_stats().hits, 5);

    // And the numerics are exactly six accumulated sweeps.
    const auto y = inst.fetch_real(p, "Y");
    std::vector<f64> expect(static_cast<std::size_t>(d.nnodes), 0.0);
    for (i64 e = 0; e < d.nedges; ++e) {
      expect[static_cast<std::size_t>(d.e1[static_cast<std::size_t>(e)] - 1)] +=
          6.0;
    }
    for (i64 i = 0; i < d.nnodes; ++i) {
      EXPECT_NEAR(y[static_cast<std::size_t>(i)],
                  expect[static_cast<std::size_t>(i)], 1e-9);
    }
  });
}

TEST(Interp, GeometryPartitionerPathWorks) {
  // Figure 5: RCB through GEOMETRY directives.
  const auto mesh = wl::mesh_tiny();
  const char* source = R"(
      REAL*8 x(nnode), y(nnode), xc(nnode), yc(nnode), zc(nnode)
      INTEGER e1(nedge), e2(nedge)
C$    DECOMPOSITION reg(nnode), reg2(nedge)
C$    DISTRIBUTE reg(BLOCK), reg2(BLOCK)
C$    ALIGN x, y, xc, yc, zc WITH reg
C$    ALIGN e1, e2 WITH reg2
C$    CONSTRUCT G (nnode, GEOMETRY(3, xc, yc, zc))
C$    SET distfmt BY PARTITIONING G USING RCB
C$    REDISTRIBUTE reg(distfmt)
      FORALL i = 1, nedge
        REDUCE(ADD, y(e1(i)), x(e2(i)))
      END FORALL
)";
  std::vector<i64> e1 = mesh.edge1, e2 = mesh.edge2;
  for (auto& v : e1) v += 1;
  for (auto& v : e2) v += 1;
  std::vector<f64> x0(static_cast<std::size_t>(mesh.nnodes), 1.0);
  std::vector<f64> expect(static_cast<std::size_t>(mesh.nnodes), 0.0);
  for (i64 e = 0; e < mesh.nedges; ++e) {
    expect[static_cast<std::size_t>(mesh.edge1[static_cast<std::size_t>(e)])] +=
        1.0;
  }
  auto prog = lang::compile(source);
  rt::Machine::run(4, [&](rt::Process& p) {
    lang::Instance inst(prog);
    inst.set_param("NNODE", mesh.nnodes);
    inst.set_param("NEDGE", mesh.nedges);
    inst.bind_real("X", x0);
    inst.bind_real("XC", mesh.x);
    inst.bind_real("YC", mesh.y);
    inst.bind_real("ZC", mesh.z);
    inst.bind_int("E1", e1);
    inst.bind_int("E2", e2);
    inst.execute(p);
    const auto y = inst.fetch_real(p, "Y");
    for (i64 i = 0; i < mesh.nnodes; ++i) {
      EXPECT_NEAR(y[static_cast<std::size_t>(i)],
                  expect[static_cast<std::size_t>(i)], 1e-9);
    }
  });
}
