// Partitioner library: every partitioner must produce a complete, balanced
// assignment; the smart ones must beat the naive ones on mesh-like graphs;
// refinement must never worsen the cut.
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <vector>

#include "core/geocol.hpp"
#include "partition/metrics.hpp"
#include "partition/partitioner.hpp"
#include "rt/collectives.hpp"
#include "workload/mesh.hpp"

namespace rt = chaos::rt;
namespace dist = chaos::dist;
namespace core = chaos::core;
namespace part = chaos::part;
namespace wl = chaos::wl;
using chaos::f64;
using chaos::i64;

namespace {

/// Builds the GeoCoL of a mesh with geometry + connectivity (+ optional
/// load), using this process's BLOCK slices.
std::shared_ptr<const core::GeoCol> mesh_geocol(rt::Process& p,
                                                const wl::Mesh& mesh,
                                                bool with_load = false) {
  auto vdist = dist::Distribution::block(p, mesh.nnodes);
  auto edist = dist::Distribution::block(p, mesh.nedges);
  std::vector<f64> xs, ys, zs, w;
  for (i64 l = 0; l < vdist->my_local_size(); ++l) {
    const i64 g = vdist->global_of(p.rank(), l);
    xs.push_back(mesh.x[static_cast<std::size_t>(g)]);
    ys.push_back(mesh.y[static_cast<std::size_t>(g)]);
    zs.push_back(mesh.z[static_cast<std::size_t>(g)]);
    w.push_back(1.0 + static_cast<f64>(g % 4));
  }
  std::vector<i64> e1, e2;
  for (i64 l = 0; l < edist->my_local_size(); ++l) {
    const i64 e = edist->global_of(p.rank(), l);
    e1.push_back(mesh.edge1[static_cast<std::size_t>(e)]);
    e2.push_back(mesh.edge2[static_cast<std::size_t>(e)]);
  }
  core::GeoColBuilder b(p, vdist);
  const std::span<const f64> coords[] = {xs, ys, zs};
  b.geometry(coords).link(e1, e2);
  if (with_load) b.load(w);
  return b.build();
}

}  // namespace

class PartitionerSweep
    : public ::testing::TestWithParam<std::tuple<std::string, int, int>> {};

INSTANTIATE_TEST_SUITE_P(
    NamesProcsParts, PartitionerSweep,
    ::testing::Combine(::testing::Values("BLOCK", "CYCLIC", "RANDOM", "RCB",
                                         "INERTIAL", "RSB", "GREEDY",
                                         "RCB+KL"),
                       ::testing::Values(1, 4), ::testing::Values(2, 5, 8)),
    [](const auto& info) {
      std::string name = std::get<0>(info.param);
      std::replace(name.begin(), name.end(), '+', '_');
      return name + "_P" + std::to_string(std::get<1>(info.param)) + "_k" +
             std::to_string(std::get<2>(info.param));
    });

TEST_P(PartitionerSweep, ProducesCompleteBalancedAssignment) {
  const auto [name, P, k] = GetParam();
  const auto mesh = wl::mesh_tiny();
  rt::Machine::run(P, [&, name = name, k = k](rt::Process& p) {
    auto g = mesh_geocol(p, mesh);
    auto view = g->view();
    const auto& fn = part::PartitionerRegistry::instance().get(name);
    auto parts = fn(p, view, k);
    ASSERT_EQ(static_cast<i64>(parts.size()), view.nlocal());
    for (i64 pt : parts) {
      EXPECT_GE(pt, 0);
      EXPECT_LT(pt, k);
    }
    auto q = part::evaluate_partition(p, view, parts, k);
    EXPECT_EQ(q.nonempty_parts, std::min<i64>(k, mesh.nnodes));
    // Unit weights: no part may exceed ~2x the average for these inputs
    // (RANDOM on a tiny mesh is the loosest).
    EXPECT_LE(q.imbalance, 2.0);
    EXPECT_LE(q.edge_cut, q.total_edges);
  });
}

TEST(Partitioners, GeometricOnesAreNearPerfectlyBalanced) {
  const auto mesh = wl::mesh_tiny();
  rt::Machine::run(4, [&](rt::Process& p) {
    auto g = mesh_geocol(p, mesh);
    auto view = g->view();
    for (const char* name : {"RCB", "INERTIAL", "RSB", "BLOCK"}) {
      auto parts =
          part::PartitionerRegistry::instance().get(name)(p, view, 4);
      auto q = part::evaluate_partition(p, view, parts, 4);
      EXPECT_LE(q.imbalance, 1.15) << name;
    }
  });
}

TEST(Partitioners, SmartPartitionersBeatNaiveOnesOnMeshes) {
  // The paper's Table 2 story: RCB and RSB produce far smaller boundaries
  // than BLOCK on an irregularly numbered mesh.
  const auto mesh = wl::make_tet_mesh(10, 10, 10);
  rt::Machine::run(4, [&](rt::Process& p) {
    auto g = mesh_geocol(p, mesh);
    auto view = g->view();
    auto& registry = part::PartitionerRegistry::instance();
    const auto cut_of = [&](const char* name) {
      auto parts = registry.get(name)(p, view, 4);
      return part::evaluate_partition(p, view, parts, 4).edge_cut;
    };
    const i64 block = cut_of("BLOCK");
    const i64 random = cut_of("RANDOM");
    const i64 rcb = cut_of("RCB");
    const i64 inertial = cut_of("INERTIAL");
    const i64 rsb = cut_of("RSB");
    const i64 greedy = cut_of("GREEDY");
    // Renumbered mesh: BLOCK over node numbers is as bad as random.
    EXPECT_LT(rcb, block / 2) << "RCB should halve the BLOCK cut at least";
    EXPECT_LT(rsb, block / 2);
    EXPECT_LT(inertial, block / 2);
    EXPECT_LT(greedy, block / 2);
    EXPECT_LT(rcb, random);
    EXPECT_LT(rsb, random);
  });
}

TEST(Partitioners, KlRefinementNeverWorsensTheCut) {
  const auto mesh = wl::make_tet_mesh(8, 8, 8);
  rt::Machine::run(4, [&](rt::Process& p) {
    auto g = mesh_geocol(p, mesh);
    auto view = g->view();
    auto base = part::partition_rcb(p, view, 4);
    const auto q0 = part::evaluate_partition(p, view, base, 4);
    auto refined = part::refine_kl(p, view, 4, base);
    const auto q1 = part::evaluate_partition(p, view, refined, 4);
    EXPECT_LE(q1.edge_cut, q0.edge_cut);
    EXPECT_LE(q1.imbalance, 1.2);
  });
}

TEST(Partitioners, WeightedRcbBalancesLoadNotCounts) {
  rt::Machine::run(2, [](rt::Process& p) {
    // 1-D points: the left 8 carry weight 9, the right 8 weight 1. A
    // weighted median at equal HALF-WEIGHT lands inside the left group.
    constexpr i64 n = 16;
    auto vdist = dist::Distribution::block(p, n);
    std::vector<f64> xs, w;
    for (i64 l = 0; l < vdist->my_local_size(); ++l) {
      const i64 g = vdist->global_of(p.rank(), l);
      xs.push_back(static_cast<f64>(g));
      w.push_back(g < 8 ? 9.0 : 1.0);
    }
    core::GeoColBuilder b(p, vdist);
    const std::span<const f64> coords[] = {xs};
    b.geometry(coords).load(w);
    auto g = b.build();
    auto parts = part::partition_rcb(p, g->view(), 2);

    // Total weight 8*9 + 8*1 = 80; part 0 must hold weight close to 40,
    // i.e. only ~4-5 of the heavy points, not 8 points.
    f64 w0 = 0.0;
    for (std::size_t l = 0; l < parts.size(); ++l) {
      if (parts[l] == 0) w0 += w[l];
    }
    w0 = rt::allreduce_sum(p, w0);
    EXPECT_NEAR(w0, 40.0, 9.0);
  });
}

TEST(Partitioners, RcbSplitsTiedCoordinatesEvenly) {
  // Regression: the weighted-median bisection had no tie-splitting, so a
  // point cloud where most coordinates coincide put the whole tie cluster
  // on one side of every cut — arbitrarily unbalanced parts. Ties must be
  // split deterministically by global id to hit the weight target.
  constexpr i64 n = 400;
  constexpr int k = 4;
  rt::Machine::run(4, [](rt::Process& p) {
    auto vdist = dist::Distribution::block(p, n);
    std::vector<f64> xs, ys;
    for (i64 l = 0; l < vdist->my_local_size(); ++l) {
      const i64 g = vdist->global_of(p.rank(), l);
      if (g % 5 < 3) {
        // 60% of all points at one exact location.
        xs.push_back(0.25);
        ys.push_back(0.5);
      } else {
        xs.push_back(static_cast<f64>(g % 17) / 17.0);
        ys.push_back(static_cast<f64>(g % 23) / 23.0);
      }
    }
    core::GeoColBuilder b(p, vdist);
    const std::span<const f64> coords[] = {xs, ys};
    b.geometry(coords);
    auto g = b.build();
    auto parts = part::partition_rcb(p, g->view(), k);

    std::vector<f64> weight(k, 0.0);
    for (i64 pt : parts) weight[static_cast<std::size_t>(pt)] += 1.0;
    weight = rt::allreduce_vec(p, weight, std::plus<>{});
    f64 total = 0.0, max_w = 0.0;
    for (f64 w : weight) {
      total += w;
      max_w = std::max(max_w, w);
    }
    EXPECT_DOUBLE_EQ(total, static_cast<f64>(n));
    EXPECT_LE(max_w / (total / k), 1.05);
  });
}

TEST(Partitioners, RegistrySupportsCustomPartitioners) {
  // The paper: "the user can link a customized partitioner as long as the
  // calling sequence matches".
  auto& registry = part::PartitionerRegistry::instance();
  EXPECT_FALSE(registry.contains("MY_CUSTOM"));
  registry.add("MY_CUSTOM",
               [](rt::Process& p, const part::GeoColView& g, int nparts) {
                 (void)p;
                 std::vector<i64> parts(static_cast<std::size_t>(g.nlocal()),
                                        static_cast<i64>(nparts - 1));
                 return parts;
               });
  EXPECT_TRUE(registry.contains("MY_CUSTOM"));
  rt::Machine::run(2, [](rt::Process& p) {
    auto vdist = dist::Distribution::block(p, 10);
    core::GeoColBuilder b(p, vdist);
    auto g = b.build();
    auto parts = part::PartitionerRegistry::instance().get("MY_CUSTOM")(
        p, g->view(), 3);
    for (i64 pt : parts) EXPECT_EQ(pt, 2);
  });
  EXPECT_THROW((void)registry.get("NO_SUCH_PARTITIONER"), chaos::ChaosError);
}

TEST(Partitioners, RsbRequiresConnectivityRcbRequiresGeometry) {
  rt::Machine::run(2, [](rt::Process& p) {
    auto vdist = dist::Distribution::block(p, 10);
    core::GeoColBuilder b(p, vdist);
    auto g = b.build();  // neither geometry nor connectivity
    EXPECT_THROW((void)part::partition_rcb(p, g->view(), 2),
                 chaos::ChaosError);
    EXPECT_THROW((void)part::partition_rsb(p, g->view(), 2),
                 chaos::ChaosError);
    rt::barrier(p);
  });
}
