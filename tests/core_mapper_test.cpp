// Mapper coupler: SET ... BY PARTITIONING semantics, REDISTRIBUTE alignment
// rules, the identity short-circuit, and custom partitioner plumbing.
#include <gtest/gtest.h>

#include <vector>

#include "core/mapper.hpp"
#include "rt/collectives.hpp"
#include "workload/mesh.hpp"

namespace rt = chaos::rt;
namespace dist = chaos::dist;
namespace core = chaos::core;
namespace part = chaos::part;
namespace wl = chaos::wl;
using chaos::f64;
using chaos::i64;

namespace {

std::shared_ptr<const core::GeoCol> tiny_geocol(
    rt::Process& p, const wl::Mesh& mesh,
    std::shared_ptr<const dist::Distribution> vdist) {
  auto edist = dist::Distribution::block(p, mesh.nedges);
  std::vector<i64> e1, e2;
  for (i64 l = 0; l < edist->my_local_size(); ++l) {
    const i64 e = edist->global_of(p.rank(), l);
    e1.push_back(mesh.edge1[static_cast<std::size_t>(e)]);
    e2.push_back(mesh.edge2[static_cast<std::size_t>(e)]);
  }
  core::GeoColBuilder b(p, std::move(vdist));
  b.link(e1, e2);
  return b.build();
}

}  // namespace

TEST(Mapper, SetByPartitioningProducesTheIrregularMap) {
  const auto mesh = wl::mesh_tiny();
  rt::Machine::run(4, [&](rt::Process& p) {
    auto reg = dist::Distribution::block(p, mesh.nnodes);
    auto g = tiny_geocol(p, mesh, reg);
    // A deterministic custom partitioner: vertex v -> part (v % nparts).
    part::PartitionerRegistry::instance().add(
        "MOD_TEST", [](rt::Process& pp, const part::GeoColView& view,
                       int nparts) {
          (void)pp;
          std::vector<i64> parts(static_cast<std::size_t>(view.nlocal()));
          const auto globals = view.vdist->my_globals();
          for (std::size_t l = 0; l < parts.size(); ++l) {
            parts[l] = globals[l] % nparts;
          }
          return parts;
        });
    auto d = core::set_by_partitioning(p, *g, "MOD_TEST");
    EXPECT_EQ(d->kind(), dist::DistKind::Irregular);
    EXPECT_EQ(d->size(), mesh.nnodes);
    // Ownership matches the map: vertex v lives on rank v % 4.
    std::vector<i64> all(static_cast<std::size_t>(mesh.nnodes));
    for (i64 v = 0; v < mesh.nnodes; ++v) all[static_cast<std::size_t>(v)] = v;
    auto entries = d->locate(p, all);
    for (i64 v = 0; v < mesh.nnodes; ++v) {
      EXPECT_EQ(entries[static_cast<std::size_t>(v)].proc, v % 4);
    }
  });
}

TEST(Mapper, UnknownPartitionerIsRejected) {
  const auto mesh = wl::mesh_tiny();
  EXPECT_THROW(
      rt::Machine::run(2,
                       [&](rt::Process& p) {
                         auto reg = dist::Distribution::block(p, mesh.nnodes);
                         auto g = tiny_geocol(p, mesh, reg);
                         (void)core::set_by_partitioning(p, *g,
                                                         "DOES_NOT_EXIST");
                       }),
      chaos::ChaosError);
}

TEST(Mapper, RedistributorMovesAllAlignedArraysTogether) {
  const auto mesh = wl::mesh_tiny();
  rt::Machine::run(4, [&](rt::Process& p) {
    auto reg = dist::Distribution::block(p, mesh.nnodes);
    dist::DistributedArray<f64> x(p, reg), y(p, reg);
    dist::DistributedArray<i64> tag(p, reg);
    x.fill_by_global([](i64 g) { return static_cast<f64>(g); });
    y.fill_by_global([](i64 g) { return -static_cast<f64>(g); });
    tag.fill_by_global([](i64 g) { return g * 3; });

    auto g = tiny_geocol(p, mesh, reg);
    core::ReuseRegistry registry;
    const auto nmod0 = registry.nmod();
    auto d = core::set_by_partitioning(p, *g, "RSB");
    core::Redistributor rd(&registry);
    rd.add(x).add(y).add(tag);
    rd.apply(p, d);

    EXPECT_TRUE(x.dad() == d->dad());
    EXPECT_TRUE(tag.dad() == d->dad());
    EXPECT_GT(registry.nmod(), nmod0);  // remap recorded

    const auto gx = x.to_global(p);
    const auto gt = tag.to_global(p);
    for (i64 v = 0; v < mesh.nnodes; ++v) {
      EXPECT_DOUBLE_EQ(gx[static_cast<std::size_t>(v)], static_cast<f64>(v));
      EXPECT_EQ(gt[static_cast<std::size_t>(v)], v * 3);
    }
  });
}

TEST(Mapper, IdentityRedistributeIsANoOpAndPreservesReuse) {
  const auto mesh = wl::mesh_tiny();
  rt::Machine::run(4, [&](rt::Process& p) {
    auto reg = dist::Distribution::block(p, mesh.nnodes);
    dist::DistributedArray<f64> x(p, reg);
    auto g = tiny_geocol(p, mesh, reg);
    core::ReuseRegistry registry;
    auto d = core::set_by_partitioning(p, *g, "RSB");
    {
      core::Redistributor rd(&registry);
      rd.add(x);
      rd.apply(p, d);
    }
    const auto nmod_after_first = registry.nmod();
    const auto dad_after_first = x.dad();
    {
      // Same target again: must not bump nmod nor change the DAD — a loop
      // that re-runs SET+REDISTRIBUTE with unchanged inputs stays free.
      core::Redistributor rd(&registry);
      rd.add(x);
      rd.apply(p, d);
    }
    EXPECT_EQ(registry.nmod(), nmod_after_first);
    EXPECT_TRUE(x.dad() == dad_after_first);
  });
}

TEST(Mapper, MisalignedArraysAreRejected) {
  const auto mesh = wl::mesh_tiny();
  EXPECT_THROW(rt::Machine::run(2,
                                [&](rt::Process& p) {
                                  auto reg =
                                      dist::Distribution::block(p, mesh.nnodes);
                                  auto other = dist::Distribution::cyclic(
                                      p, mesh.nnodes);
                                  dist::DistributedArray<f64> a(p, reg);
                                  dist::DistributedArray<f64> b(p, other);
                                  auto g = tiny_geocol(p, mesh, reg);
                                  auto d = core::set_by_partitioning(p, *g,
                                                                     "RSB");
                                  core::Redistributor rd;
                                  rd.add(a).add(b);
                                  rd.apply(p, d);
                                }),
               chaos::ChaosError);
}

TEST(Mapper, EmptyRedistributorIsRejected) {
  rt::Machine::run(2, [](rt::Process& p) {
    auto reg = dist::Distribution::block(p, 8);
    core::Redistributor rd;
    EXPECT_THROW(rd.apply(p, reg), chaos::ChaosError);
    rt::barrier(p);
  });
}
