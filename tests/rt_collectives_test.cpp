// Collectives: correctness across process counts (parameterized sweep) and
// the BSP clock-synchronization contract.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "rt/collectives.hpp"
#include "rt/machine.hpp"

namespace rt = chaos::rt;
using chaos::f64;
using chaos::i64;

class CollectivesSweep : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(ProcCounts, CollectivesSweep,
                         ::testing::Values(1, 2, 3, 4, 7, 8, 16),
                         [](const auto& info) {
                           return "P" + std::to_string(info.param);
                         });

TEST_P(CollectivesSweep, Barrier) {
  rt::Machine::run(GetParam(), [](rt::Process& p) {
    for (int i = 0; i < 4; ++i) rt::barrier(p);
    EXPECT_EQ(p.stats().collectives, 4);
  });
}

TEST_P(CollectivesSweep, BroadcastScalarAndVector) {
  const int P = GetParam();
  rt::Machine::run(P, [&](rt::Process& p) {
    const int root = P - 1;
    const i64 v = p.rank() == root ? 31337 : -1;
    EXPECT_EQ(rt::broadcast(p, v, root), 31337);

    std::vector<f64> payload;
    if (p.rank() == root) payload = {1.5, 2.5, 3.5};
    auto got = rt::broadcast_vec(p, payload, root);
    EXPECT_EQ(got, (std::vector<f64>{1.5, 2.5, 3.5}));
  });
}

TEST_P(CollectivesSweep, AllreduceSumMaxMin) {
  const int P = GetParam();
  rt::Machine::run(P, [&](rt::Process& p) {
    const i64 r = p.rank();
    EXPECT_EQ(rt::allreduce_sum(p, r + 1), i64(P) * (P + 1) / 2);
    EXPECT_EQ(rt::allreduce_max(p, r), i64(P - 1));
    EXPECT_EQ(rt::allreduce_min(p, r), i64(0));
  });
}

TEST_P(CollectivesSweep, ExscanSum) {
  const int P = GetParam();
  rt::Machine::run(P, [&](rt::Process& p) {
    // Value r+1 at rank r: exclusive prefix at r is sum 1..r.
    const i64 got = rt::exscan_sum(p, i64{p.rank() + 1});
    EXPECT_EQ(got, i64(p.rank()) * (p.rank() + 1) / 2);
  });
}

TEST_P(CollectivesSweep, Allgather) {
  const int P = GetParam();
  rt::Machine::run(P, [&](rt::Process& p) {
    auto all = rt::allgather(p, i64{10 * p.rank()});
    ASSERT_EQ(static_cast<int>(all.size()), P);
    for (int r = 0; r < P; ++r) EXPECT_EQ(all[static_cast<std::size_t>(r)], 10 * r);
  });
}

TEST_P(CollectivesSweep, AllgathervConcatenatesInRankOrder) {
  const int P = GetParam();
  rt::Machine::run(P, [&](rt::Process& p) {
    // Rank r contributes r elements, all equal to r.
    std::vector<i64> mine(static_cast<std::size_t>(p.rank()), p.rank());
    std::vector<i64> offsets;
    auto all = rt::allgatherv<i64>(p, mine, &offsets);
    ASSERT_EQ(static_cast<int>(offsets.size()), P + 1);
    for (int r = 0; r < P; ++r) {
      EXPECT_EQ(offsets[static_cast<std::size_t>(r) + 1] -
                    offsets[static_cast<std::size_t>(r)],
                r);
      for (i64 k = offsets[static_cast<std::size_t>(r)];
           k < offsets[static_cast<std::size_t>(r) + 1]; ++k) {
        EXPECT_EQ(all[static_cast<std::size_t>(k)], r);
      }
    }
  });
}

TEST_P(CollectivesSweep, AlltoallvTransposes) {
  const int P = GetParam();
  rt::Machine::run(P, [&](rt::Process& p) {
    // send[d] = {rank*100 + d}; so received[s] must be {s*100 + rank}.
    std::vector<std::vector<i64>> send(static_cast<std::size_t>(P));
    for (int d = 0; d < P; ++d) {
      send[static_cast<std::size_t>(d)] = {i64{100} * p.rank() + d};
    }
    auto recv = rt::alltoallv(p, send);
    for (int s = 0; s < P; ++s) {
      ASSERT_EQ(recv[static_cast<std::size_t>(s)].size(), 1u);
      EXPECT_EQ(recv[static_cast<std::size_t>(s)][0], i64{100} * s + p.rank());
    }
  });
}

TEST_P(CollectivesSweep, AlltoallvEmptyLanesAreFine) {
  const int P = GetParam();
  rt::Machine::run(P, [&](rt::Process& p) {
    // Only rank 0 sends, and only to the last rank.
    std::vector<std::vector<i64>> send(static_cast<std::size_t>(P));
    if (p.rank() == 0) send[static_cast<std::size_t>(P - 1)] = {5, 6};
    auto recv = rt::alltoallv(p, send);
    for (int s = 0; s < P; ++s) {
      if (p.rank() == P - 1 && s == 0) {
        EXPECT_EQ(recv[static_cast<std::size_t>(s)], (std::vector<i64>{5, 6}));
      } else {
        EXPECT_TRUE(recv[static_cast<std::size_t>(s)].empty());
      }
    }
  });
}

TEST_P(CollectivesSweep, GathervAndScatterv) {
  const int P = GetParam();
  rt::Machine::run(P, [&](rt::Process& p) {
    std::vector<i64> mine{i64{p.rank()}, i64{p.rank()} * 2};
    std::vector<i64> offsets;
    auto gathered = rt::gatherv<i64>(p, mine, /*root=*/0, &offsets);
    if (p.is_root()) {
      ASSERT_EQ(static_cast<int>(gathered.size()), 2 * P);
      for (int r = 0; r < P; ++r) {
        EXPECT_EQ(gathered[static_cast<std::size_t>(2 * r)], r);
        EXPECT_EQ(gathered[static_cast<std::size_t>(2 * r + 1)], 2 * r);
      }
    } else {
      EXPECT_TRUE(gathered.empty());
    }

    std::vector<std::vector<i64>> blocks;
    if (p.is_root()) {
      blocks.resize(static_cast<std::size_t>(P));
      for (int r = 0; r < P; ++r) {
        blocks[static_cast<std::size_t>(r)] = {i64{1000} + r};
      }
    }
    auto got = rt::scatterv(p, blocks, 0);
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0], 1000 + p.rank());
  });
}

TEST(Collectives, BarrierEqualizesClocks) {
  rt::Machine::run(4, [](rt::Process& p) {
    // Rank 3 is far ahead in virtual time; a barrier must drag everyone up.
    if (p.rank() == 3) p.clock().charge(5e5);
    rt::barrier(p);
    EXPECT_GE(p.clock().now_us(), 5e5);
  });
}

TEST(Collectives, AlltoallvChargesPerMessage) {
  rt::Machine machine(4);
  machine.run([](rt::Process& p) {
    std::vector<std::vector<i64>> send(4);
    for (int d = 0; d < 4; ++d) {
      if (d != p.rank()) send[static_cast<std::size_t>(d)] = {1, 2, 3};
    }
    const double before = p.clock().now_us();
    (void)rt::alltoallv(p, send);
    // Three sends + three receives of 24 bytes each.
    const auto& c = p.params();
    const double expected = 3 * c.send_us(24) + 3 * c.recv_us(24);
    EXPECT_NEAR(p.clock().now_us() - before, expected, 1e-9);
    EXPECT_EQ(p.stats().messages_sent, 3);
    EXPECT_EQ(p.stats().messages_received, 3);
  });
}

TEST(ExchangeCsr, RoundTripsCountsAndPayload) {
  constexpr int P = 4;
  rt::Machine::run(P, [](rt::Process& p) {
    // Rank r sends one element (value 100*r + d) to every destination d.
    std::vector<i64> send(P), offsets(P + 1);
    for (int d = 0; d < P; ++d) {
      send[static_cast<std::size_t>(d)] = 100 * p.rank() + d;
      offsets[static_cast<std::size_t>(d)] = d;
    }
    offsets[P] = P;
    std::vector<i64> recv, recv_offsets, scratch;
    rt::exchange_csr<i64>(p, send, offsets, recv, recv_offsets, scratch);
    ASSERT_EQ(recv_offsets.size(), static_cast<std::size_t>(P) + 1);
    ASSERT_EQ(recv.size(), static_cast<std::size_t>(P));
    for (int s = 0; s < P; ++s) {
      EXPECT_EQ(recv_offsets[static_cast<std::size_t>(s)], s);
      EXPECT_EQ(recv[static_cast<std::size_t>(s)], 100 * s + p.rank());
    }
  });
}

TEST(ExchangeCsr, RejectsNonMonotoneSendOffsets) {
  // The counts round is derived from a caller-supplied prefix; a decreasing
  // prefix means a negative segment count, which must be rejected BEFORE the
  // counts alltoall (so every rank throws synchronously, in Release too —
  // the check is always-on) instead of turning into a negative resize.
  rt::Machine::run(2, [](rt::Process& p) {
    const std::vector<i64> send(3, 7);
    const std::vector<i64> offsets{2, 1, 3};  // 2 -> 1 decreases
    std::vector<i64> recv, recv_offsets, scratch;
    EXPECT_THROW(
        rt::exchange_csr<i64>(p, send, offsets, recv, recv_offsets, scratch),
        chaos::ChaosError);
    rt::barrier(p);
  });
}

TEST(ExchangeCsr, RejectsReceivePrefixOverflow) {
  // Peer-controlled counts feed the receive prefix sum: claims that are
  // individually representable but collectively wrap i64 must trip the
  // overflow guard rather than become a bogus receive-buffer size. Both
  // ranks claim kHuge words for rank 1, so rank 1's receive prefix wraps
  // (the overflow guard) while rank 0 trips alltoallv_flat's buffer/prefix
  // entry check — every rank throws before entering the payload round, so
  // the body stays synchronous and nothing needs poisoning.
  rt::Machine::run(2, [](rt::Process& p) {
    constexpr i64 kHuge = i64{3} << 61;  // 2 x kHuge wraps i64
    const std::vector<i64> offsets{0, 0, kHuge};
    std::vector<i64> recv, recv_offsets, scratch;
    EXPECT_THROW(rt::exchange_csr<i64>(p, std::span<const i64>{}, offsets,
                                       recv, recv_offsets, scratch),
                 chaos::ChaosError);
    rt::barrier(p);
  });
}
