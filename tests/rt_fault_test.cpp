// Fault-injection sweep for the rt/ substrate (DESIGN.md §10).
//
// The tentpole contract under test: for EVERY injection site x fault kind x
// victim rank, a run over a body that visits all sites must terminate — the
// victim observes its own fault, every surviving rank throws a typed error
// (MachinePoisoned or MachineTimeout) instead of deadlocking, and the plan's
// deterministic visit counters agree across repeated runs. The whole sweep
// must be TSan/ASan clean (CI runs this binary under both).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "rt/collectives.hpp"
#include "rt/fault.hpp"
#include "rt/machine.hpp"

namespace rt = chaos::rt;
using chaos::f64;
using chaos::i64;
using chaos::u64;

// --- global operator-new hook: the AllocFail consumer -----------------------
//
// Mirrors the ablation benches' counting hook (PR 5). When a FaultPlan arms
// an allocation failure, the next allocation on the armed thread throws from
// inside the allocator itself — the strongest form of the fault, exercising
// the exception safety of whatever call surrounds the allocation. Binaries
// without a hook still fail: the injection site throws bad_alloc directly.
void* operator new(std::size_t size) {
  if (rt::fault_consume_alloc_fail()) throw std::bad_alloc{};
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  if (rt::fault_consume_alloc_fail()) throw std::bad_alloc{};
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   (size + static_cast<std::size_t>(align) - 1) &
                                       ~(static_cast<std::size_t>(align) - 1))) {
    return p;
  }
  throw std::bad_alloc{};
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

constexpr int kP = 4;

/// What one rank observed at the end of a faulted run.
enum class Outcome : int {
  kNone = 0,     ///< body neither completed nor threw (a bug: deadlock path)
  kCompleted,    ///< body ran to the final barrier
  kInjected,     ///< FaultInjected (the victim of a Throw fault)
  kAllocFailed,  ///< std::bad_alloc (the victim of an AllocFail fault)
  kTimeout,      ///< MachineTimeout (a survivor whose watchdog fired)
  kPoisoned,     ///< MachinePoisoned (a survivor released by poison)
  kOther,        ///< anything else (always a failure)
};

const char* outcome_name(Outcome o) {
  switch (o) {
    case Outcome::kNone: return "none";
    case Outcome::kCompleted: return "completed";
    case Outcome::kInjected: return "injected";
    case Outcome::kAllocFailed: return "alloc-failed";
    case Outcome::kTimeout: return "timeout";
    case Outcome::kPoisoned: return "poisoned";
    case Outcome::kOther: return "other";
  }
  return "?";
}

/// One SPMD body visiting every injection site at least once per rank: a
/// barrier (BarrierArrive), a ring send/recv (MailboxPut, MailboxRecv), an
/// alltoall (Alltoall, and BlackboardPublish via its pointer publish), an
/// alltoallv_flat, and a closing barrier. The closing barrier gates
/// completion: no rank can report kCompleted unless EVERY rank survived the
/// whole body, so a "victim died but a peer finished anyway" bug shows up as
/// a wrong outcome, not a flake.
void exercise(rt::Process& p) {
  const int P = p.nprocs();
  const int r = p.rank();
  rt::barrier(p);
  const int next = (r + 1) % P;
  const int prev = (r + P - 1) % P;
  p.send_value<int>(next, /*tag=*/5, r);
  EXPECT_EQ(p.recv_value<int>(prev, 5), prev);
  std::vector<i64> counts(static_cast<std::size_t>(P), 1);
  std::vector<i64> peers(static_cast<std::size_t>(P), 0);
  rt::alltoall<i64>(p, counts, peers);
  std::vector<i64> off(static_cast<std::size_t>(P) + 1);
  for (std::size_t i = 0; i < off.size(); ++i) off[i] = static_cast<i64>(i);
  std::vector<f64> payload(static_cast<std::size_t>(P), static_cast<f64>(r));
  std::vector<f64> ghost(static_cast<std::size_t>(P), 0.0);
  rt::alltoallv_flat<f64>(p, payload, off, ghost, off);
  rt::barrier(p);
}

struct SweepResult {
  std::vector<Outcome> per_rank;
  bool run_threw = false;
  i64 fired = 0;
  f64 wall_sec = 0.0;
};

/// Runs `exercise` on a fresh machine with one armed fault and captures what
/// every rank observed. Stall faults need the watchdog (nothing else ever
/// unblocks the peers); all other kinds terminate through the poison
/// protocol alone, so the deadline stays off and the futex path is covered.
SweepResult run_case(rt::FaultSite site, rt::FaultKind kind, int victim,
                     f64 deadline_sec) {
  rt::Machine machine(kP);
  machine.set_deadline_sec(deadline_sec);
  rt::FaultPlan plan(kP);
  plan.add({site, kind, victim, /*nth_visit=*/1, /*delay_ms=*/2.0});
  machine.install_fault_plan(&plan);

  SweepResult res;
  std::vector<std::atomic<int>> outcome(kP);
  const auto t0 = std::chrono::steady_clock::now();
  try {
    machine.run([&](rt::Process& p) {
      auto& mine = outcome[static_cast<std::size_t>(p.rank())];
      try {
        exercise(p);
        mine.store(static_cast<int>(Outcome::kCompleted));
      } catch (const chaos::FaultInjected&) {
        mine.store(static_cast<int>(Outcome::kInjected));
        throw;
      } catch (const chaos::MachineTimeout&) {
        mine.store(static_cast<int>(Outcome::kTimeout));
        throw;
      } catch (const chaos::MachinePoisoned&) {
        mine.store(static_cast<int>(Outcome::kPoisoned));
        throw;
      } catch (const std::bad_alloc&) {
        mine.store(static_cast<int>(Outcome::kAllocFailed));
        throw;
      } catch (...) {
        mine.store(static_cast<int>(Outcome::kOther));
        throw;
      }
    });
  } catch (...) {
    res.run_threw = true;
  }
  res.wall_sec = std::chrono::duration<f64>(std::chrono::steady_clock::now() -
                                            t0)
                     .count();
  res.fired = plan.fired();
  res.per_rank.resize(kP);
  for (int r = 0; r < kP; ++r) {
    res.per_rank[static_cast<std::size_t>(r)] =
        static_cast<Outcome>(outcome[static_cast<std::size_t>(r)].load());
  }
  return res;
}

constexpr rt::FaultSite kSites[] = {
    rt::FaultSite::BarrierArrive,  rt::FaultSite::BlackboardPublish,
    rt::FaultSite::MailboxPut,     rt::FaultSite::MailboxRecv,
    rt::FaultSite::Alltoall,       rt::FaultSite::AlltoallvFlat,
};
constexpr rt::FaultKind kKinds[] = {
    rt::FaultKind::Throw,
    rt::FaultKind::Delay,
    rt::FaultKind::AllocFail,
    rt::FaultKind::Stall,
    rt::FaultKind::Permanent,
};

}  // namespace

// The tentpole sweep: every site x kind x victim rank. 120 independent runs;
// each must terminate with the expected per-rank outcome vector.
TEST(FaultSweep, EverySiteKindRankTerminatesWithTypedErrors) {
  // Long enough to never fire spuriously on a loaded/sanitized host, short
  // enough that the 24 stall cases keep the sweep in CI budget.
  constexpr f64 kStallDeadlineSec = 0.5;
  for (const rt::FaultSite site : kSites) {
    for (const rt::FaultKind kind : kKinds) {
      for (int victim = 0; victim < kP; ++victim) {
        SCOPED_TRACE(std::string("site=") + rt::fault_site_name(site) +
                     " kind=" + rt::fault_kind_name(kind) +
                     " victim=" + std::to_string(victim));
        const f64 deadline =
            kind == rt::FaultKind::Stall ? kStallDeadlineSec : 0.0;
        const SweepResult res = run_case(site, kind, victim, deadline);
        ASSERT_EQ(res.fired, 1);

        if (kind == rt::FaultKind::Delay) {
          // Delays perturb wall-clock scheduling only: the run completes.
          EXPECT_FALSE(res.run_threw);
          for (int r = 0; r < kP; ++r) {
            EXPECT_EQ(res.per_rank[static_cast<std::size_t>(r)],
                      Outcome::kCompleted)
                << "rank " << r << " observed "
                << outcome_name(res.per_rank[static_cast<std::size_t>(r)]);
          }
          continue;
        }

        // A real fault: the run rethrows, the victim sees its own fault
        // kind, and every surviving rank is released with a typed error —
        // nobody completes (the closing barrier needs the victim) and
        // nobody is left hanging (kNone would mean a deadlocked rank whose
        // outcome store never ran).
        EXPECT_TRUE(res.run_threw);
        const Outcome expected_victim =
            kind == rt::FaultKind::Throw ||
                    kind == rt::FaultKind::Permanent
                ? Outcome::kInjected
            : kind == rt::FaultKind::AllocFail ? Outcome::kAllocFailed
                                               : Outcome::kPoisoned;
        EXPECT_EQ(res.per_rank[static_cast<std::size_t>(victim)],
                  expected_victim)
            << "victim observed "
            << outcome_name(res.per_rank[static_cast<std::size_t>(victim)]);
        for (int r = 0; r < kP; ++r) {
          if (r == victim) continue;
          const Outcome o = res.per_rank[static_cast<std::size_t>(r)];
          EXPECT_TRUE(o == Outcome::kPoisoned || o == Outcome::kTimeout)
              << "surviving rank " << r << " observed " << outcome_name(o);
        }
        if (kind == rt::FaultKind::Stall) {
          // Detection latency is bounded: the watchdog fires one deadline
          // after the stall, plus generous scheduling slack for sanitizer
          // builds. A deadlock would blow well past this (and the ctest
          // per-test TIMEOUT backstops the whole sweep).
          EXPECT_LT(res.wall_sec, kStallDeadlineSec + 10.0);
        }
      }
    }
  }
}

TEST(FaultPlan, PermanentFiresOnEveryVisitFromTheNthOnward) {
  // The kind that models an unrecoverable rank: unlike Throw (exactly the
  // Nth visit), Permanent keeps detonating on every later visit too, so a
  // supervisor's retries can never sneak a clean pass through. Visit
  // counters are cumulative across runs: with nth_visit=2, run 1 survives
  // visit 1 and dies at visit 2; every subsequent run dies at its first
  // visit. A Throw spec would let runs 2 and 3 complete.
  rt::Machine machine(2);
  rt::FaultPlan plan(2);
  plan.add({rt::FaultSite::BarrierArrive, rt::FaultKind::Permanent,
            /*rank=*/1, /*nth_visit=*/2});
  machine.install_fault_plan(&plan);
  for (int run = 0; run < 3; ++run) {
    bool injected = false;
    try {
      machine.run([](rt::Process& p) {
        rt::barrier(p);
        rt::barrier(p);
        rt::barrier(p);
      });
    } catch (const chaos::FaultInjected& f) {
      injected = true;
      EXPECT_EQ(f.rank, 1);
      EXPECT_EQ(f.site, static_cast<int>(rt::FaultSite::BarrierArrive));
    }
    EXPECT_TRUE(injected) << "run " << run << " should have been killed";
    (void)machine.recover();
  }
  EXPECT_EQ(plan.fired(), 3);
  machine.install_fault_plan(nullptr);
  EXPECT_EQ(std::string(rt::fault_kind_name(rt::FaultKind::Permanent)),
            "permanent");
}

TEST(FaultPlan, VisitCountersAreDeterministicAcrossRuns) {
  rt::Machine machine(kP);
  rt::FaultPlan plan(kP);  // armed but empty: counts visits, never fires
  machine.install_fault_plan(&plan);

  std::vector<u64> first;
  for (int pass = 0; pass < 2; ++pass) {
    plan.reset();
    machine.run(exercise);
    std::vector<u64> counts;
    for (int s = 0; s < rt::kFaultSiteCount; ++s) {
      for (int r = 0; r < kP; ++r) {
        counts.push_back(plan.visits(static_cast<rt::FaultSite>(s), r));
      }
    }
    if (pass == 0) {
      first = counts;
      // The exercise body visits every site on every rank at least once.
      for (const u64 c : counts) EXPECT_GE(c, 1u);
    } else {
      EXPECT_EQ(counts, first);
    }
  }
  EXPECT_EQ(plan.fired(), 0);
}

TEST(FaultPlan, SeededDelaysAreDeterministic) {
  // delay_ms <= 0 asks for a seeded duration; same seed => same schedule,
  // so two runs produce identical fired tallies and identical results.
  for (int pass = 0; pass < 2; ++pass) {
    rt::Machine machine(kP);
    rt::FaultPlan plan(kP, /*seed=*/12345);
    plan.add({rt::FaultSite::Alltoall, rt::FaultKind::Delay, /*rank=*/-1,
              /*nth_visit=*/1, /*delay_ms=*/0.0});
    machine.install_fault_plan(&plan);
    machine.run(exercise);
    EXPECT_EQ(plan.fired(), kP);  // rank -1 arms every rank
    EXPECT_EQ(machine.total_stats().faults_injected, static_cast<i64>(kP));
  }
}

TEST(Deadline, RecvDeadlineThrowsTypedTimeout) {
  rt::Machine machine(2);  // no machine deadline: only the explicit call
  bool timed_out = false;
  try {
    machine.run([&](rt::Process& p) {
      if (p.rank() == 0) {
        // Nobody ever sends: the explicit per-call deadline must fire even
        // with the machine-wide watchdog disabled.
        (void)p.recv_deadline<int>(1, /*tag=*/9, /*deadline_sec=*/0.2);
        FAIL() << "recv_deadline returned without a message";
      } else {
        rt::barrier(p);  // parked until rank 0's timeout poisons the machine
      }
    });
  } catch (const chaos::MachineTimeout& t) {
    timed_out = true;
    ASSERT_EQ(t.missing_ranks.size(), 1u);
    EXPECT_EQ(t.missing_ranks[0], 1);  // the source we waited on
    EXPECT_EQ(t.epoch, 0u);            // not a barrier timeout
    EXPECT_NE(std::string(t.what()).find("rank 1"), std::string::npos);
  }
  EXPECT_TRUE(timed_out);
  EXPECT_GE(machine.total_stats().timeouts, 1);
  EXPECT_GE(machine.total_stats().poisoned_waits, 1);  // rank 1's barrier
}

TEST(Deadline, BarrierWatchdogNamesTheMissingRank) {
  rt::Machine machine(kP);
  machine.set_deadline_sec(0.25);
  bool timed_out = false;
  try {
    machine.run([](rt::Process& p) {
      if (p.rank() == 3) return;  // never arrives at the barrier
      rt::barrier(p);
    });
  } catch (const chaos::MachineTimeout& t) {
    timed_out = true;
    ASSERT_EQ(t.missing_ranks.size(), 1u);
    EXPECT_EQ(t.missing_ranks[0], 3);
    EXPECT_EQ(t.epoch, 1u);  // first barrier pass
    EXPECT_NE(std::string(t.what()).find("missing ranks: 3"),
              std::string::npos);
  }
  EXPECT_TRUE(timed_out);
  EXPECT_GE(machine.total_stats().timeouts, 1);
}

TEST(Deadline, DelayLongerThanDeadlineBecomesTimeout) {
  rt::Machine machine(2);
  machine.set_deadline_sec(0.2);
  rt::FaultPlan plan(2);
  plan.add({rt::FaultSite::BarrierArrive, rt::FaultKind::Delay, /*rank=*/1,
            /*nth_visit=*/1, /*delay_ms=*/1500.0});
  machine.install_fault_plan(&plan);
  EXPECT_THROW(machine.run([](rt::Process& p) { rt::barrier(p); }),
               chaos::MachineTimeout);
  EXPECT_EQ(machine.total_stats().faults_injected, 1);
  EXPECT_GE(machine.total_stats().timeouts, 1);
}

TEST(Deadline, MachineIsReusableAfterTimeoutAndFaults) {
  rt::Machine machine(kP);
  machine.set_deadline_sec(0.3);
  rt::FaultPlan plan(kP);
  plan.add({rt::FaultSite::Alltoall, rt::FaultKind::Stall, /*rank=*/2});
  machine.install_fault_plan(&plan);
  EXPECT_THROW(machine.run(exercise), chaos::ChaosError);
  EXPECT_GE(machine.total_stats().faults_injected, 1);

  // Disarm everything; the same machine must run clean with fresh counters.
  machine.install_fault_plan(nullptr);
  machine.set_deadline_sec(0.0);
  machine.run(exercise);
  EXPECT_EQ(machine.total_stats().faults_injected, 0);
  EXPECT_EQ(machine.total_stats().timeouts, 0);
  EXPECT_EQ(machine.total_stats().poisoned_waits, 0);
  EXPECT_FALSE(rt::fault_alloc_fail_armed());
}

TEST(FaultPlan, UninstalledPlanLeavesModeledClocksByteIdentical) {
  // The zero-overhead contract in miniature (ablation_faults gates the full
  // version): an armed-but-never-firing plan and no plan at all produce
  // bit-identical virtual clocks, because fault machinery never charges
  // modeled time.
  auto run_once = [](bool arm) {
    rt::Machine machine(kP);
    rt::FaultPlan plan(kP);
    if (arm) machine.install_fault_plan(&plan);
    machine.run(exercise);
    return machine.max_virtual_time_us();
  };
  const f64 bare = run_once(false);
  const f64 armed = run_once(true);
  EXPECT_EQ(bare, armed);
  EXPECT_GT(bare, 0.0);
}

TEST(FaultPlan, ThrowAtTheSameVisitNeverLeaksAnArmedAllocFail) {
  // Regression for the armed-flag scope guard: an AllocFail spec arms during
  // the spec loop, then a Throw spec at the SAME (site, rank, visit) unwinds
  // on_visit before the allocator probe runs. The guard must disarm the
  // thread-local on that unwind path. In this hooked binary the flag may
  // also be consumed by the exception's own construction; either way,
  // nothing is allowed to survive into later allocations or later visits.
  rt::Machine machine(2);
  rt::FaultPlan plan(2);
  plan.add({rt::FaultSite::BarrierArrive, rt::FaultKind::AllocFail,
            /*rank=*/0, /*nth_visit=*/1});
  plan.add({rt::FaultSite::BarrierArrive, rt::FaultKind::Throw, /*rank=*/0,
            /*nth_visit=*/1});
  machine.install_fault_plan(&plan);
  EXPECT_ANY_THROW(machine.run([](rt::Process& p) { rt::barrier(p); }));
  // Rank 0 runs inline on this thread: a leaked flag would detonate the
  // next allocation (hooked binaries) or the next visit's probe (plain).
  EXPECT_FALSE(rt::fault_alloc_fail_armed());
  std::vector<int> alloc_probe(1024, 7);
  EXPECT_EQ(alloc_probe.back(), 7);
  // Second run with the plan STILL installed: visit 2 matches no spec and
  // must run clean — in a plain binary a leaked flag would only fire here.
  machine.run([](rt::Process& p) { rt::barrier(p); });
  machine.install_fault_plan(nullptr);
  EXPECT_FALSE(rt::fault_alloc_fail_armed());
}
