// Section 3 schedule-reuse machinery: nmod / last_mod semantics, the three
// validity conditions, cache behaviour, and a randomized property test that
// conservativeness never admits a stale plan.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/reuse.hpp"
#include "dist/distribution.hpp"
#include "rt/collectives.hpp"
#include "workload/rng.hpp"

namespace rt = chaos::rt;
namespace dist = chaos::dist;
namespace core = chaos::core;
using chaos::i64;
using chaos::u64;

namespace {

dist::Dad make_dad(u64 inc, i64 size = 100) {
  return dist::Dad{dist::DistKind::Block, size, 4, 25, inc};
}

}  // namespace

TEST(ReuseRegistry, NmodCountsModifyingBlocksNotElements) {
  core::ReuseRegistry reg;
  EXPECT_EQ(reg.nmod(), 0u);
  const auto a = make_dad(1);
  // One loop writing a million elements is ONE modification event.
  reg.note_write(a);
  EXPECT_EQ(reg.nmod(), 1u);
  EXPECT_EQ(reg.last_mod(a), 1u);
  reg.note_write(a);
  reg.note_write(a);
  EXPECT_EQ(reg.nmod(), 3u);
  EXPECT_EQ(reg.last_mod(a), 3u);
}

TEST(ReuseRegistry, DistinctDadsTrackIndependently) {
  core::ReuseRegistry reg;
  const auto a = make_dad(1);
  const auto b = make_dad(2);
  reg.note_write(a);
  reg.note_write(b);
  reg.note_write(b);
  EXPECT_EQ(reg.last_mod(a), 1u);
  EXPECT_EQ(reg.last_mod(b), 3u);
  EXPECT_EQ(reg.last_mod(make_dad(99)), 0u);  // never touched
}

TEST(ReuseRegistry, ArraysSharingADadShareTheSlot) {
  // The paper's conservative sharing: arrays aligned to one distribution
  // share a DAD, so writing either marks both.
  core::ReuseRegistry reg;
  const auto shared = make_dad(7);
  reg.note_write(shared);
  const auto again = make_dad(7);  // same value == same slot
  EXPECT_EQ(reg.last_mod(again), 1u);
}

TEST(ReuseConditions, AllThreeMustHold) {
  core::ReuseRegistry reg;
  const auto xdad = make_dad(1);
  const auto inddad = make_dad(2, 50);
  reg.note_write(inddad);  // indirection array initialized

  core::InspectorRecord rec;
  rec.data_dads = {xdad};
  rec.ind_dads = {inddad};
  rec.ind_last_mod = {reg.last_mod(inddad)};

  const std::vector<dist::Dad> data{xdad};
  const std::vector<dist::Dad> ind{inddad};
  EXPECT_TRUE(core::reuse_valid(reg, rec, data, ind));

  // Condition 1 broken: data array remapped (new DAD).
  const std::vector<dist::Dad> data2{make_dad(11)};
  EXPECT_FALSE(core::reuse_valid(reg, rec, data2, ind));

  // Condition 2 broken: indirection array remapped.
  const std::vector<dist::Dad> ind2{make_dad(12, 50)};
  EXPECT_FALSE(core::reuse_valid(reg, rec, data, ind2));

  // Condition 3 broken: indirection array possibly modified in place.
  reg.note_write(inddad);
  EXPECT_FALSE(core::reuse_valid(reg, rec, data, ind));
}

TEST(ReuseConditions, UnrelatedWritesDoNotInvalidate) {
  core::ReuseRegistry reg;
  const auto xdad = make_dad(1);
  const auto inddad = make_dad(2, 50);
  core::InspectorRecord rec;
  rec.data_dads = {xdad};
  rec.ind_dads = {inddad};
  rec.ind_last_mod = {reg.last_mod(inddad)};

  // Writes to the DATA array or to unrelated arrays bump nmod but must not
  // force a new inspector — only indirection-array changes matter.
  reg.note_write(xdad);
  reg.note_write(make_dad(42));
  const std::vector<dist::Dad> data{xdad};
  const std::vector<dist::Dad> ind{inddad};
  EXPECT_TRUE(core::reuse_valid(reg, rec, data, ind));
}

TEST(ReuseConditions, ArityMismatchIsInvalid) {
  core::ReuseRegistry reg;
  core::InspectorRecord rec;
  rec.data_dads = {make_dad(1)};
  rec.ind_dads = {make_dad(2)};
  rec.ind_last_mod = {0};
  const std::vector<dist::Dad> data{make_dad(1), make_dad(1)};
  const std::vector<dist::Dad> ind{make_dad(2)};
  EXPECT_FALSE(core::reuse_valid(reg, rec, data, ind));
}

TEST(InspectorCache, HitsWhileCleanMissesAfterIndirectionWrite) {
  core::ReuseRegistry reg;
  core::InspectorCache cache;
  const auto xdad = make_dad(1);
  const auto inddad = make_dad(2);
  int builds = 0;
  auto build = [&] {
    ++builds;
    return std::make_shared<int>(builds);
  };

  auto p1 = cache.get_or_build<int>(7, reg, {xdad}, {inddad}, build);
  auto p2 = cache.get_or_build<int>(7, reg, {xdad}, {inddad}, build);
  EXPECT_EQ(builds, 1);
  EXPECT_EQ(p1.get(), p2.get());
  EXPECT_EQ(cache.stats().hits, 1);
  EXPECT_EQ(cache.stats().misses, 1);

  reg.note_write(inddad);
  auto p3 = cache.get_or_build<int>(7, reg, {xdad}, {inddad}, build);
  EXPECT_EQ(builds, 2);
  EXPECT_NE(p3.get(), p2.get());

  // Settles again afterwards.
  auto p4 = cache.get_or_build<int>(7, reg, {xdad}, {inddad}, build);
  EXPECT_EQ(builds, 2);
  EXPECT_EQ(p4.get(), p3.get());
}

TEST(InspectorCache, LoopsAreIndependent) {
  core::ReuseRegistry reg;
  core::InspectorCache cache;
  int builds = 0;
  auto build = [&] { return std::make_shared<int>(++builds); };
  (void)cache.get_or_build<int>(1, reg, {make_dad(1)}, {make_dad(2)}, build);
  (void)cache.get_or_build<int>(2, reg, {make_dad(1)}, {make_dad(2)}, build);
  EXPECT_EQ(builds, 2);
  EXPECT_EQ(cache.size(), 2u);
  cache.invalidate(1);
  EXPECT_EQ(cache.size(), 1u);
  (void)cache.get_or_build<int>(2, reg, {make_dad(1)}, {make_dad(2)}, build);
  EXPECT_EQ(builds, 2);  // loop 2 untouched by invalidating loop 1
}

TEST(InspectorCache, RemapOfDataArrayForcesRebuild) {
  core::ReuseRegistry reg;
  core::InspectorCache cache;
  int builds = 0;
  auto build = [&] { return std::make_shared<int>(++builds); };
  const auto ind = make_dad(5);
  (void)cache.get_or_build<int>(3, reg, {make_dad(1)}, {ind}, build);
  // REDISTRIBUTE: the data array gets a fresh DAD incarnation.
  const auto fresh = make_dad(9);
  reg.note_remap(fresh);
  (void)cache.get_or_build<int>(3, reg, {fresh}, {ind}, build);
  EXPECT_EQ(builds, 2);
}

// Property test: against a random sequence of events, the cache must rebuild
// whenever (and only report reuse when) a rebuild would produce the same
// plan. We model the "plan" as a copy of the indirection array's version
// counter: reuse is stale iff the cached plan's version differs from the
// current version.
TEST(InspectorCache, PropertyNeverServesStalePlans) {
  chaos::wl::Rng rng(2024);
  for (int trial = 0; trial < 50; ++trial) {
    core::ReuseRegistry reg;
    core::InspectorCache cache;
    // Three indirection arrays with independent versions and DADs.
    std::vector<dist::Dad> ind_dads{make_dad(100), make_dad(200),
                                    make_dad(300)};
    std::vector<int> version{0, 0, 0};
    dist::Dad data_dad = make_dad(1000);
    u64 next_inc = 5000;

    for (int step = 0; step < 200; ++step) {
      const int action = static_cast<int>(rng.below(4));
      if (action == 0) {
        // Modify a random indirection array in place.
        const auto j = static_cast<std::size_t>(rng.below(3));
        ++version[j];
        reg.note_write(ind_dads[j]);
      } else if (action == 1) {
        // Remap the data array.
        data_dad = make_dad(next_inc++);
        reg.note_remap(data_dad);
      } else if (action == 2) {
        // Write an unrelated array: must not cause staleness nor rebuilds
        // beyond what the conservative rule allows.
        reg.note_write(make_dad(next_inc++ + 100000));
      } else {
        // Execute a random loop using one indirection array.
        const auto j = static_cast<std::size_t>(rng.below(3));
        const u64 loop_id = rng.below(2) == 0 ? 1 : 2;
        struct Plan {
          int built_from_version;
        };
        auto plan = cache.get_or_build<Plan>(
            loop_id * 10 + j, reg, {data_dad}, {ind_dads[j]},
            [&] { return std::make_shared<Plan>(Plan{version[j]}); });
        // THE invariant: a served plan always matches the current state.
        ASSERT_EQ(plan->built_from_version, version[j])
            << "stale plan served at trial " << trial << " step " << step;
      }
    }
  }
}

TEST(ReuseRegistry, SpmdRegistriesStayIdentical) {
  // Every rank executes the same statement sequence; their registries must
  // agree without communication (the scheme's core assumption).
  rt::Machine::run(4, [](rt::Process& p) {
    core::ReuseRegistry reg;
    auto d1 = dist::Distribution::block(p, 50);
    auto d2 = dist::Distribution::cyclic(p, 60);
    reg.note_write(d1->dad());
    reg.note_write(d2->dad());
    reg.note_remap(d2->dad());
    auto nmods = rt::allgather(p, reg.nmod());
    auto lm = rt::allgather(p, reg.last_mod(d2->dad()));
    for (auto v : nmods) EXPECT_EQ(v, nmods[0]);
    for (auto v : lm) EXPECT_EQ(v, lm[0]);
  });
}
