// The iPSC/860 cost model: algebraic properties the benches depend on.
#include <gtest/gtest.h>

#include "rt/cost_model.hpp"

namespace rt = chaos::rt;
using chaos::f64;
using chaos::i64;

TEST(CostParams, SendCostIsAffineInBytes) {
  rt::CostParams c;
  EXPECT_DOUBLE_EQ(c.send_us(0), c.alpha_send_us);
  const f64 d1 = c.send_us(1000) - c.send_us(0);
  const f64 d2 = c.send_us(2000) - c.send_us(1000);
  EXPECT_DOUBLE_EQ(d1, d2);
  EXPECT_DOUBLE_EQ(d1, 1000 * c.beta_us_per_byte);
}

TEST(CostParams, LatencyDominatesSmallMessages) {
  // The iPSC/860 regime the paper's schedule-aggregation exploits: one big
  // message is far cheaper than many small ones of the same total volume.
  rt::CostParams c;
  const f64 one_big = c.send_us(8 * 1024);
  const f64 many_small = 1024 * c.send_us(8);
  EXPECT_LT(one_big, many_small / 10.0);
}

TEST(CostParams, HopsGrowLogarithmically) {
  EXPECT_DOUBLE_EQ(rt::CostParams::hops(1), 0.0);
  EXPECT_DOUBLE_EQ(rt::CostParams::hops(2), 1.0);
  EXPECT_DOUBLE_EQ(rt::CostParams::hops(4), 2.0);
  EXPECT_DOUBLE_EQ(rt::CostParams::hops(5), 3.0);  // padded to next dimension
  EXPECT_DOUBLE_EQ(rt::CostParams::hops(64), 6.0);
}

TEST(CostParams, BarrierScalesWithDimension) {
  rt::CostParams c;
  EXPECT_DOUBLE_EQ(c.barrier_us(1), 0.0);
  EXPECT_DOUBLE_EQ(c.barrier_us(64), 6 * c.barrier_hop_us);
}

TEST(VirtualClock, ChargeAndAdvance) {
  rt::VirtualClock clock;
  EXPECT_DOUBLE_EQ(clock.now_us(), 0.0);
  clock.charge(10.0);
  clock.charge_ops(5, 2.0);
  EXPECT_DOUBLE_EQ(clock.now_us(), 20.0);
  clock.advance_to(15.0);  // behind: no effect
  EXPECT_DOUBLE_EQ(clock.now_us(), 20.0);
  clock.advance_to(30.0);
  EXPECT_DOUBLE_EQ(clock.now_us(), 30.0);
  EXPECT_DOUBLE_EQ(clock.now_sec(), 30.0e-6);
  clock.reset();
  EXPECT_DOUBLE_EQ(clock.now_us(), 0.0);
}

TEST(ClockSection, MeasuresOnlyItsInterval) {
  rt::VirtualClock clock;
  clock.charge(100.0);
  rt::ClockSection section(clock);
  clock.charge(42.0);
  EXPECT_DOUBLE_EQ(section.elapsed_us(), 42.0);
  EXPECT_DOUBLE_EQ(section.elapsed_sec(), 42.0e-6);
}
