// Remap (REDISTRIBUTE): values must survive arbitrary distribution changes,
// plans must be reusable across aligned arrays, and round trips must be
// lossless.
#include <gtest/gtest.h>

#include <numeric>
#include <tuple>
#include <vector>

#include "dist/darray.hpp"
#include "dist/remap.hpp"
#include "rt/collectives.hpp"

namespace rt = chaos::rt;
namespace dist = chaos::dist;
using chaos::f64;
using chaos::i64;

namespace {

std::shared_ptr<const dist::Distribution> scrambled_irregular(rt::Process& p,
                                                              i64 n,
                                                              i64 mult) {
  auto map_dist = dist::Distribution::block(p, n);
  std::vector<i64> slice(static_cast<std::size_t>(map_dist->my_local_size()));
  for (std::size_t l = 0; l < slice.size(); ++l) {
    const i64 g = map_dist->global_of(p.rank(), static_cast<i64>(l));
    slice[l] = (g * mult + 1) % p.nprocs();
  }
  return dist::Distribution::irregular_from_map(p, slice, *map_dist, 16);
}

}  // namespace

class RemapSweep : public ::testing::TestWithParam<std::tuple<i64, int>> {};

INSTANTIATE_TEST_SUITE_P(SizesProcs, RemapSweep,
                         ::testing::Combine(::testing::Values<i64>(1, 8, 100,
                                                                   517),
                                            ::testing::Values(1, 2, 4, 8)),
                         [](const auto& info) {
                           return "N" + std::to_string(std::get<0>(info.param)) +
                                  "_P" + std::to_string(std::get<1>(info.param));
                         });

TEST_P(RemapSweep, BlockToIrregularPreservesValues) {
  const auto [n, P] = GetParam();
  rt::Machine::run(P, [&, n = n](rt::Process& p) {
    auto from = dist::Distribution::block(p, n);
    auto to = scrambled_irregular(p, n, 13);

    dist::DistributedArray<f64> x(p, from);
    x.fill_by_global([](i64 g) { return 3.0 * static_cast<f64>(g) + 0.5; });

    auto plan = dist::build_remap(p, *from, *to);
    auto fresh = dist::apply_remap<f64>(p, plan, x.local());

    dist::DistributedArray<f64> y(p, to);
    y.assign_local(std::move(fresh));
    auto global = y.to_global(p);
    for (i64 g = 0; g < n; ++g) {
      EXPECT_DOUBLE_EQ(global[static_cast<std::size_t>(g)],
                       3.0 * static_cast<f64>(g) + 0.5);
    }
  });
}

TEST_P(RemapSweep, RoundTripIsIdentity) {
  const auto [n, P] = GetParam();
  rt::Machine::run(P, [&, n = n](rt::Process& p) {
    auto a = dist::Distribution::cyclic(p, n);
    auto b = scrambled_irregular(p, n, 5);

    dist::DistributedArray<i64> x(p, a);
    x.fill_by_global([](i64 g) { return g * g; });
    const std::vector<i64> original(x.local().begin(), x.local().end());

    auto there = dist::build_remap(p, *a, *b);
    auto mid = dist::apply_remap<i64>(p, there, x.local());
    auto back = dist::build_remap(p, *b, *a);
    auto restored = dist::apply_remap<i64>(p, back, mid);

    EXPECT_EQ(restored, original);
  });
}

TEST_P(RemapSweep, PlanReusableAcrossAlignedArrays) {
  const auto [n, P] = GetParam();
  rt::Machine::run(P, [&, n = n](rt::Process& p) {
    auto from = dist::Distribution::block(p, n);
    auto to = scrambled_irregular(p, n, 3);
    auto plan = dist::build_remap(p, *from, *to);

    // Two aligned arrays moved with one plan (the paper remaps x and y with
    // the schedule built once for distribution reg -> distfmt).
    dist::DistributedArray<f64> x(p, from), y(p, from);
    x.fill_by_global([](i64 g) { return static_cast<f64>(g); });
    y.fill_by_global([](i64 g) { return static_cast<f64>(-g); });
    auto nx = dist::apply_remap<f64>(p, plan, x.local());
    auto ny = dist::apply_remap<f64>(p, plan, y.local());

    dist::DistributedArray<f64> gx(p, to), gy(p, to);
    gx.assign_local(std::move(nx));
    gy.assign_local(std::move(ny));
    auto fx = gx.to_global(p);
    auto fy = gy.to_global(p);
    for (i64 g = 0; g < n; ++g) {
      EXPECT_DOUBLE_EQ(fx[static_cast<std::size_t>(g)], static_cast<f64>(g));
      EXPECT_DOUBLE_EQ(fy[static_cast<std::size_t>(g)], -static_cast<f64>(g));
    }
  });
}

TEST(Remap, IdentityRemapMovesNothing) {
  rt::Machine::run(4, [](rt::Process& p) {
    auto d = dist::Distribution::block(p, 100);
    auto plan = dist::build_remap(p, *d, *d);
    EXPECT_EQ(plan.moved_elements, 0);
    dist::DistributedArray<i64> x(p, d);
    x.fill_by_global([](i64 g) { return g + 7; });
    auto fresh = dist::apply_remap<i64>(p, plan, x.local());
    EXPECT_EQ(fresh, std::vector<i64>(x.local().begin(), x.local().end()));
  });
}

TEST(Remap, SizeMismatchIsRejected) {
  EXPECT_THROW(rt::Machine::run(2,
                                [](rt::Process& p) {
                                  auto a = dist::Distribution::block(p, 10);
                                  auto b = dist::Distribution::block(p, 11);
                                  (void)dist::build_remap(p, *a, *b);
                                }),
               chaos::ChaosError);
}

TEST(Remap, StalePlanDetected) {
  rt::Machine::run(2, [](rt::Process& p) {
    auto a = dist::Distribution::block(p, 10);
    auto b = dist::Distribution::cyclic(p, 10);
    auto plan = dist::build_remap(p, *a, *b);
    // Apply with a wrong-sized source segment: must be caught, not corrupt.
    std::vector<f64> wrong(1, 0.0);
    if (a->my_local_size() > 1) {
      EXPECT_THROW((void)dist::apply_remap<f64>(p, plan, wrong),
                   chaos::ChaosError);
    }
    rt::barrier(p);
  });
}
