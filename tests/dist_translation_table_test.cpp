// Translation table: paged-distributed vs replicated equivalence, duplicate /
// coverage detection, and dereference correctness on adversarial layouts.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>
#include <tuple>
#include <vector>

#include "dist/translation_table.hpp"
#include "rt/collectives.hpp"

namespace rt = chaos::rt;
namespace dist = chaos::dist;
using chaos::i64;

namespace {

// Deterministically deals [0, n) to P ranks in a shuffled round-robin, so
// ownership is scattered across pages. Returns this rank's globals in the
// local order the table must preserve.
std::vector<i64> shuffled_ownership(i64 n, int nprocs, int rank, unsigned seed) {
  std::vector<i64> all(static_cast<std::size_t>(n));
  std::iota(all.begin(), all.end(), 0);
  std::mt19937 rng(seed);
  std::shuffle(all.begin(), all.end(), rng);
  std::vector<i64> mine;
  for (std::size_t k = 0; k < all.size(); ++k) {
    if (static_cast<int>(k % static_cast<std::size_t>(nprocs)) == rank) {
      mine.push_back(all[k]);
    }
  }
  return mine;
}

}  // namespace

class TTableSweep
    : public ::testing::TestWithParam<std::tuple<i64, int, i64, bool>> {};

INSTANTIATE_TEST_SUITE_P(
    SizesProcsPages, TTableSweep,
    ::testing::Combine(::testing::Values<i64>(1, 17, 256, 1000),
                       ::testing::Values(1, 2, 4, 8),
                       ::testing::Values<i64>(1, 7, 64, 4096),
                       ::testing::Bool()),
    [](const auto& info) {
      return "N" + std::to_string(std::get<0>(info.param)) + "_P" +
             std::to_string(std::get<1>(info.param)) + "_pg" +
             std::to_string(std::get<2>(info.param)) +
             (std::get<3>(info.param) ? "_repl" : "_dist");
    });

TEST_P(TTableSweep, DereferenceRecoversOwnership) {
  const auto [n, P, page, repl] = GetParam();
  rt::Machine::run(P, [&, n = n, page = page, repl = repl](rt::Process& p) {
    auto mine = shuffled_ownership(n, p.nprocs(), p.rank(), /*seed=*/42);
    auto tt = dist::TranslationTable::build(p, n, mine, page, repl);

    EXPECT_EQ(tt->local_count(p.rank()), static_cast<i64>(mine.size()));

    // Query every global index and verify it resolves to the right owner
    // with the right local slot.
    std::vector<i64> all(static_cast<std::size_t>(n));
    std::iota(all.begin(), all.end(), 0);
    auto entries = tt->dereference(p, all);
    for (std::size_t l = 0; l < mine.size(); ++l) {
      const auto& e = entries[static_cast<std::size_t>(mine[l])];
      EXPECT_EQ(e.proc, p.rank());
      EXPECT_EQ(e.local, static_cast<i64>(l));
    }
    // Owners must agree globally: gather (global, proc) and check singles.
    std::vector<i64> owner_view(static_cast<std::size_t>(n));
    for (std::size_t g = 0; g < owner_view.size(); ++g) {
      owner_view[g] = entries[g].proc;
    }
    auto other = rt::broadcast_vec(p, owner_view, 0);
    EXPECT_EQ(owner_view, other);
  });
}

TEST_P(TTableSweep, EmptyQueriesAreLegal) {
  const auto [n, P, page, repl] = GetParam();
  rt::Machine::run(P, [&, n = n, page = page, repl = repl](rt::Process& p) {
    auto mine = shuffled_ownership(n, p.nprocs(), p.rank(), 7);
    auto tt = dist::TranslationTable::build(p, n, mine, page, repl);
    // Only rank 0 queries; everyone else passes empty lists (still
    // collective — the exchange must tolerate asymmetric load).
    std::vector<i64> q;
    if (p.is_root() && n > 0) q = {0, n - 1, 0};
    auto entries = tt->dereference(p, q);
    EXPECT_EQ(entries.size(), q.size());
    if (p.is_root() && n > 0) {
      EXPECT_EQ(entries[0].proc, entries[2].proc);
      EXPECT_EQ(entries[0].local, entries[2].local);
    }
  });
}

TEST(TranslationTable, RepeatedQueriesGetConsistentAnswers) {
  rt::Machine::run(4, [](rt::Process& p) {
    constexpr i64 n = 64;
    auto mine = shuffled_ownership(n, p.nprocs(), p.rank(), 3);
    auto tt = dist::TranslationTable::build(p, n, mine, 8);
    std::vector<i64> q(static_cast<std::size_t>(n), 13);  // same index, n times
    auto entries = tt->dereference(p, q);
    for (const auto& e : entries) {
      EXPECT_EQ(e.proc, entries[0].proc);
      EXPECT_EQ(e.local, entries[0].local);
    }
  });
}

TEST(TranslationTable, DetectsDoubleClaim) {
  EXPECT_THROW(
      rt::Machine::run(2,
                       [](rt::Process& p) {
                         // Both ranks claim global 0; rank 1 also skips 1.
                         std::vector<i64> mine =
                             p.rank() == 0 ? std::vector<i64>{0} : std::vector<i64>{0};
                         (void)dist::TranslationTable::build(p, 2, mine, 4);
                       }),
      chaos::ChaosError);
}

TEST(TranslationTable, DetectsUnclaimedIndex) {
  EXPECT_THROW(
      rt::Machine::run(2,
                       [](rt::Process& p) {
                         // Global size 3 but only two elements claimed.
                         std::vector<i64> mine =
                             p.rank() == 0 ? std::vector<i64>{0} : std::vector<i64>{2};
                         (void)dist::TranslationTable::build(p, 3, mine, 4);
                       }),
      chaos::ChaosError);
}

TEST(TranslationTable, RejectsOutOfRangeClaims) {
  EXPECT_THROW(
      rt::Machine::run(2,
                       [](rt::Process& p) {
                         std::vector<i64> mine =
                             p.rank() == 0 ? std::vector<i64>{0, 5} : std::vector<i64>{1};
                         (void)dist::TranslationTable::build(p, 3, mine, 4);
                       }),
      chaos::ChaosError);
}

TEST(TranslationTable, BuildFromEmptyRankPagedAndReplicatedAgree) {
  // Ranks 1 and 3 own nothing: the pager must still host their share of the
  // pages, accept a zero-length claim vector, and answer queries that
  // resolve to the two non-empty ranks. Locks down the empty-rank edge for
  // both table organizations, including page_size 1 (one global per page).
  rt::Machine::run(4, [](rt::Process& p) {
    constexpr i64 n = 40;
    std::vector<i64> mine;
    if (p.rank() == 0) {
      for (i64 g = 0; g < n; g += 2) mine.push_back(g);  // evens
    } else if (p.rank() == 2) {
      for (i64 g = 1; g < n; g += 2) mine.push_back(g);  // odds
    }
    for (const i64 page : {i64{1}, i64{4}, i64{64}}) {
      for (const bool repl : {false, true}) {
        auto tt = dist::TranslationTable::build(p, n, mine, page, repl);
        EXPECT_EQ(tt->local_count(0), n / 2);
        EXPECT_EQ(tt->local_count(1), 0);
        EXPECT_EQ(tt->local_count(2), n / 2);
        EXPECT_EQ(tt->local_count(3), 0);
        std::vector<i64> all(static_cast<std::size_t>(n));
        std::iota(all.begin(), all.end(), 0);
        auto entries = tt->dereference(p, all);
        for (i64 g = 0; g < n; ++g) {
          const auto& e = entries[static_cast<std::size_t>(g)];
          EXPECT_EQ(e.proc, g % 2 == 0 ? 0 : 2);
          EXPECT_EQ(e.local, g / 2);
        }
        // Empty ranks also query nothing — the exchange must tolerate a
        // rank that neither owns nor asks.
        std::vector<i64> q;
        if (!mine.empty()) q = {0, n - 1};
        auto sparse = tt->dereference(p, q);
        EXPECT_EQ(sparse.size(), q.size());
      }
    }
  });
}

TEST(TranslationTable, ReplicatedAndDistributedAgree) {
  rt::Machine::run(4, [](rt::Process& p) {
    constexpr i64 n = 300;
    auto mine = shuffled_ownership(n, p.nprocs(), p.rank(), 11);
    auto dist_tt = dist::TranslationTable::build(p, n, mine, 32, false);
    auto repl_tt = dist::TranslationTable::build(p, n, mine, 32, true);
    std::vector<i64> q;
    for (i64 g = p.rank(); g < n; g += 5) q.push_back(g);
    auto a = dist_tt->dereference(p, q);
    auto b = repl_tt->dereference(p, q);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t k = 0; k < a.size(); ++k) {
      EXPECT_EQ(a[k].proc, b[k].proc);
      EXPECT_EQ(a[k].local, b[k].local);
    }
  });
}
