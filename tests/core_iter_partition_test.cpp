// Iteration partitioning (Section 4.3): the majority rule, the
// owner-computes rule, tie-breaking, and the induced remap of
// iteration-aligned arrays.
#include <gtest/gtest.h>

#include <vector>

#include "core/iter_partition.hpp"
#include "rt/collectives.hpp"

namespace rt = chaos::rt;
namespace dist = chaos::dist;
namespace core = chaos::core;
using chaos::i64;

TEST(IterPartition, MajorityRulePicksTheDominantOwner) {
  rt::Machine::run(4, [](rt::Process& p) {
    constexpr i64 ndata = 40;  // BLOCK over 4 procs: 10 elements each
    constexpr i64 niter = 4;
    auto ddist = dist::Distribution::block(p, ndata);
    auto idist = dist::Distribution::block(p, niter);  // 1 iteration each

    // Every iteration references: two elements owned by proc 2, one owned
    // by proc 0 => majority says proc 2 executes all iterations.
    std::vector<i64> b1(static_cast<std::size_t>(idist->my_local_size()), 20);
    std::vector<i64> b2(static_cast<std::size_t>(idist->my_local_size()), 25);
    std::vector<i64> b3(static_cast<std::size_t>(idist->my_local_size()), 5);
    const std::span<const i64> batches[] = {b1, b2, b3};
    auto part = core::partition_iterations(p, *idist, *ddist, batches);

    EXPECT_EQ(part.iter_dist->local_size(2), niter);
    EXPECT_EQ(part.iter_dist->local_size(0), 0);
  });
}

TEST(IterPartition, TieGoesToTheLowestRank) {
  rt::Machine::run(4, [](rt::Process& p) {
    constexpr i64 ndata = 40;
    constexpr i64 niter = 8;
    auto ddist = dist::Distribution::block(p, ndata);
    auto idist = dist::Distribution::block(p, niter);

    // One reference owned by proc 3, one by proc 1: tie -> proc 1.
    std::vector<i64> b1(static_cast<std::size_t>(idist->my_local_size()), 35);
    std::vector<i64> b2(static_cast<std::size_t>(idist->my_local_size()), 15);
    const std::span<const i64> batches[] = {b1, b2};
    auto part = core::partition_iterations(p, *idist, *ddist, batches);
    EXPECT_EQ(part.iter_dist->local_size(1), niter);
    EXPECT_EQ(part.iter_dist->local_size(3), 0);
  });
}

TEST(IterPartition, OwnerComputesFollowsFirstBatch) {
  rt::Machine::run(4, [](rt::Process& p) {
    constexpr i64 ndata = 40;
    constexpr i64 niter = 8;
    auto ddist = dist::Distribution::block(p, ndata);
    auto idist = dist::Distribution::block(p, niter);

    // First batch (the LHS) points at proc 3's block; the other two batches
    // gang up on proc 0 — owner-computes must still pick proc 3.
    std::vector<i64> lhs(static_cast<std::size_t>(idist->my_local_size()), 38);
    std::vector<i64> r1(static_cast<std::size_t>(idist->my_local_size()), 1);
    std::vector<i64> r2(static_cast<std::size_t>(idist->my_local_size()), 2);
    const std::span<const i64> batches[] = {lhs, r1, r2};
    auto part = core::partition_iterations(p, *idist, *ddist, batches,
                                           core::IterRule::OwnerComputes);
    EXPECT_EQ(part.iter_dist->local_size(3), niter);
  });
}

TEST(IterPartition, RemapMovesIterationAlignedData) {
  rt::Machine::run(4, [](rt::Process& p) {
    constexpr i64 ndata = 16;
    constexpr i64 niter = 12;
    auto ddist = dist::Distribution::block(p, ndata);
    auto idist = dist::Distribution::block(p, niter);

    // Iteration i references data element (i * 5 + 1) % ndata.
    std::vector<i64> refs;
    for (i64 l = 0; l < idist->my_local_size(); ++l) {
      const i64 i = idist->global_of(p.rank(), l);
      refs.push_back((i * 5 + 1) % ndata);
    }
    const std::span<const i64> batches[] = {refs};
    auto part = core::partition_iterations(p, *idist, *ddist, batches);

    // After remapping the reference array with the iteration remap, every
    // process must own exactly the references of its assigned iterations —
    // and under the single-batch majority rule those are all LOCAL data.
    auto moved = dist::apply_remap<i64>(p, part.remap, refs);
    ASSERT_EQ(static_cast<i64>(moved.size()),
              part.iter_dist->my_local_size());
    auto entries = ddist->locate(p, moved);
    for (const auto& e : entries) EXPECT_EQ(e.proc, p.rank());

    // And the iteration space itself is exactly partitioned.
    i64 total = 0;
    for (int r = 0; r < p.nprocs(); ++r) {
      total += part.iter_dist->local_size(r);
    }
    EXPECT_EQ(total, niter);
  });
}

TEST(IterPartition, CountsMovedIterations) {
  rt::Machine::run(2, [](rt::Process& p) {
    constexpr i64 ndata = 8;
    constexpr i64 niter = 6;
    auto ddist = dist::Distribution::block(p, ndata);  // 0-3 on p0, 4-7 on p1
    auto idist = dist::Distribution::block(p, niter);  // 0-2 on p0, 3-5 on p1

    // All iterations reference element 7 (owned by p1): p0's 3 iterations
    // move, p1's stay.
    std::vector<i64> refs(static_cast<std::size_t>(idist->my_local_size()), 7);
    const std::span<const i64> batches[] = {refs};
    auto part = core::partition_iterations(p, *idist, *ddist, batches);
    EXPECT_EQ(part.moved_iterations, 3);
    EXPECT_EQ(part.iter_dist->local_size(1), niter);
  });
}

TEST(IterPartition, MisalignedBatchIsRejected) {
  EXPECT_THROW(
      rt::Machine::run(2,
                       [](rt::Process& p) {
                         auto ddist = dist::Distribution::block(p, 8);
                         auto idist = dist::Distribution::block(p, 6);
                         std::vector<i64> bad(1, 0);
                         const std::span<const i64> batches[] = {bad};
                         (void)core::partition_iterations(p, *idist, *ddist,
                                                          batches);
                       }),
      chaos::ChaosError);
}
