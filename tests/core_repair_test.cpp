// Incremental schedule repair (DESIGN.md §14): the delta-splice path must be
// indistinguishable from a full re-inspection — bit-identical schedules and
// executor results — and must refuse every case it cannot prove repairable
// (fresh DAD incarnations, over-threshold deltas, repair turned off). Edge
// values are small integers throughout so every executor sum is exact and
// cross-path comparisons can demand bitwise equality.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/forall.hpp"
#include "core/mapper.hpp"
#include "core/plan_options.hpp"
#include "core/reuse.hpp"
#include "rt/collectives.hpp"
#include "workload/rng.hpp"

namespace rt = chaos::rt;
namespace dist = chaos::dist;
namespace core = chaos::core;
namespace wl = chaos::wl;
using chaos::f64;
using chaos::i64;
using chaos::u64;

namespace {

struct Graph {
  i64 nnodes;
  std::vector<i64> e1, e2;
};

Graph random_graph(i64 nnodes, i64 nedges, u64 seed) {
  wl::Rng rng(seed);
  Graph g{nnodes, {}, {}};
  for (i64 e = 0; e < nedges; ++e) {
    g.e1.push_back(rng.below(nnodes));
    g.e2.push_back(rng.below(nnodes));
  }
  return g;
}

/// Rewires every stride-th edge endpoint: the "refinement epoch". Integer
/// jitter keeps the new endpoints in range and deterministic on every rank.
void refine(Graph& g, i64 stride, int epoch) {
  for (i64 e = epoch; e < static_cast<i64>(g.e1.size()); e += stride) {
    auto& end = (e % 2 == 0) ? g.e1 : g.e2;
    end[static_cast<std::size_t>(e)] =
        (end[static_cast<std::size_t>(e)] + 1 + epoch) % g.nnodes;
  }
}

// Exactly-representable integer kernels: sums are order-independent.
f64 fval(f64 a, f64 b) { return a * b; }
f64 gval(f64 a, f64 b) { return a - b; }

std::vector<f64> serial_l2(const Graph& g, const std::vector<f64>& x) {
  std::vector<f64> y(static_cast<std::size_t>(g.nnodes), 0.0);
  for (std::size_t e = 0; e < g.e1.size(); ++e) {
    const f64 x1 = x[static_cast<std::size_t>(g.e1[e])];
    const f64 x2 = x[static_cast<std::size_t>(g.e2[e])];
    y[static_cast<std::size_t>(g.e1[e])] += fval(x1, x2);
    y[static_cast<std::size_t>(g.e2[e])] += gval(x1, x2);
  }
  return y;
}

std::vector<i64> local_slice(rt::Process& p, const dist::Distribution& d,
                             const std::vector<i64>& global) {
  std::vector<i64> s;
  for (i64 l = 0; l < d.my_local_size(); ++l) {
    s.push_back(global[static_cast<std::size_t>(d.global_of(p.rank(), l))]);
  }
  return s;
}

void expect_schedules_equal(const core::CommSchedule& a,
                            const core::CommSchedule& b) {
  EXPECT_EQ(a.send_indices, b.send_indices);
  EXPECT_EQ(a.send_offsets, b.send_offsets);
  EXPECT_EQ(a.recv_offsets, b.recv_offsets);
  EXPECT_EQ(a.nghost, b.nghost);
  EXPECT_EQ(a.nlocal_at_build, b.nlocal_at_build);
}

}  // namespace

// An in-place rewrite that changes NOTHING (same values re-stored) must ride
// the repair path as an empty splice: schedule untouched, validate clean,
// and the plan still executes correctly.
TEST(ScheduleRepair, EmptyDeltaIsNoOpSplice) {
  const Graph g = random_graph(90, 400, 11);
  for (const int P : {1, 4}) {
    rt::Machine machine(P);
    machine.run([&](rt::Process& p) {
      auto ddist = dist::Distribution::block(p, g.nnodes);
      auto edist = dist::Distribution::block(p, static_cast<i64>(g.e1.size()));
      const auto s1 = local_slice(p, *edist, g.e1);
      const auto s2 = local_slice(p, *edist, g.e2);
      auto plan = core::EdgeReductionLoop::inspect(p, *edist, s1, s2, *ddist);

      const core::CommSchedule before = plan->loc.schedule;
      ASSERT_TRUE(core::EdgeReductionLoop::repair(p, *plan, s1, s2, *ddist));
      expect_schedules_equal(before, plan->loc.schedule);
      plan->loc.schedule.validate_or_throw("empty-delta splice");
      EXPECT_EQ(p.stats().schedule_repairs, 1);
      EXPECT_EQ(p.stats().repair_fallbacks, 0);
    });
  }
}

// A cache probe with no intervening write is a pure reuse hit: the repair
// machinery must not run at all (the §3 guard short-circuits above it).
TEST(ScheduleRepair, CleanProbeIsPureHitNotRepair) {
  const Graph g = random_graph(60, 200, 5);
  rt::Machine machine(4);
  machine.run([&](rt::Process& p) {
    auto ddist = dist::Distribution::block(p, g.nnodes);
    auto edist = dist::Distribution::block(p, static_cast<i64>(g.e1.size()));
    dist::DistributedArray<f64> x(p, ddist), y(p, ddist, 0.0);
    x.fill_by_global([](i64 gl) { return static_cast<f64>(1 + gl % 5); });
    dist::DistributedArray<i64> e1(p, edist), e2(p, edist);
    e1.fill_by_global(
        [&](i64 gl) { return g.e1[static_cast<std::size_t>(gl)]; });
    e2.fill_by_global(
        [&](i64 gl) { return g.e2[static_cast<std::size_t>(gl)]; });

    core::ReuseRegistry registry;
    core::InspectorCache cache;
    const u64 loop_id = rt::collective_counter(p);
    i64 repair_calls = 0;
    auto probe = [&] {
      return cache.get_or_build<core::EdgeLoopPlan>(
          loop_id, registry, {x.dad(), y.dad()}, {e1.dad()},
          [&] {
            const auto s1 = local_slice(p, *edist, g.e1);
            const auto s2 = local_slice(p, *edist, g.e2);
            return core::EdgeReductionLoop::inspect(p, *edist, s1, s2,
                                                    *ddist);
          },
          [&](const std::shared_ptr<core::EdgeLoopPlan>&) {
            ++repair_calls;
            return false;
          });
    };
    auto first = probe();
    auto second = probe();
    EXPECT_EQ(first.get(), second.get());
    EXPECT_EQ(repair_calls, 0);
    EXPECT_EQ(cache.stats().hits, 1);
    EXPECT_EQ(cache.stats().misses, 1);
    EXPECT_EQ(cache.stats().repairs, 0);
    EXPECT_EQ(cache.stats().repair_fallbacks, 0);
    EXPECT_EQ(p.stats().schedule_repairs, 0);
  });
}

// Repaired-then-executed must equal rebuilt-then-executed bitwise, and the
// repaired schedule must equal a full localize of the same remapped
// references — at P=1 and P=8, across three refinement epochs.
TEST(ScheduleRepair, RepairedMatchesRebuiltBitIdentically) {
  // Epoch snapshots precomputed OUTSIDE machine.run: the rank lambdas run
  // concurrently and may only READ shared test state.
  std::vector<Graph> epochs{random_graph(120, 600, 23)};
  for (int epoch = 1; epoch <= 3; ++epoch) {
    Graph next = epochs.back();
    refine(next, /*stride=*/7 - epoch, epoch);  // growing delta per epoch
    epochs.push_back(std::move(next));
  }
  std::vector<f64> x0(static_cast<std::size_t>(epochs[0].nnodes));
  for (std::size_t i = 0; i < x0.size(); ++i) {
    x0[i] = static_cast<f64>(1 + i % 7);
  }
  for (const int P : {1, 8}) {
    const Graph& g0 = epochs[0];
    rt::Machine machine(P);
    machine.run([&](rt::Process& p) {
      auto ddist = dist::Distribution::block(p, g0.nnodes);
      auto edist =
          dist::Distribution::block(p, static_cast<i64>(g0.e1.size()));
      dist::DistributedArray<f64> x(p, ddist);
      x.fill_by_global(
          [&](i64 gl) { return x0[static_cast<std::size_t>(gl)]; });

      auto s1 = local_slice(p, *edist, g0.e1);
      auto s2 = local_slice(p, *edist, g0.e2);
      // RepairMode::On: the splice must engage every epoch, whatever the
      // delta fraction, so this also covers deltas above the Auto threshold.
      const core::PlanOptions opts{.repair = core::RepairMode::On};
      auto plan = core::EdgeReductionLoop::inspect(
          p, *edist, s1, s2, *ddist, core::IterRule::MostLocalReferences,
          opts);

      for (int epoch = 1; epoch <= 3; ++epoch) {
        const Graph& g = epochs[static_cast<std::size_t>(epoch)];
        s1 = local_slice(p, *edist, g.e1);
        s2 = local_slice(p, *edist, g.e2);

        ASSERT_TRUE(core::EdgeReductionLoop::repair(p, *plan, s1, s2, *ddist))
            << "epoch " << epoch << " P " << P;
        plan->loc.schedule.validate_or_throw("post-repair");

        // The repaired schedule must be exactly what a full localize of the
        // SAME remapped references builds (the canonical ghost order makes
        // the schedule a pure function of the reference set).
        core::InspectorWorkspace control_ws;
        core::LocalizedMany control;
        const std::span<const i64> remapped[] = {plan->end1, plan->end2};
        core::localize_many(p, *ddist, remapped, control_ws, control);
        expect_schedules_equal(control.schedule, plan->loc.schedule);
        EXPECT_EQ(control.refs[0], plan->loc.refs[0]);
        EXPECT_EQ(control.refs[1], plan->loc.refs[1]);

        // And the repaired remap must equal a from-scratch remap of the new
        // slices: the delta shipping may not drop or misplace a value.
        EXPECT_EQ(plan->end1,
                  dist::apply_remap<i64>(p, plan->iters.remap, s1));
        EXPECT_EQ(plan->end2,
                  dist::apply_remap<i64>(p, plan->iters.remap, s2));

        // Executor equivalence, bitwise (integer values, exact sums):
        // repaired plan vs a freshly inspected plan vs the serial reference.
        dist::DistributedArray<f64> y_rep(p, ddist, 0.0);
        core::EdgeReductionLoop::execute(p, *plan, x, y_rep, fval, gval);
        auto rebuilt = core::EdgeReductionLoop::inspect(
            p, *edist, s1, s2, *ddist, core::IterRule::MostLocalReferences,
            opts);
        dist::DistributedArray<f64> y_full(p, ddist, 0.0);
        core::EdgeReductionLoop::execute(p, *rebuilt, x, y_full, fval, gval);

        const auto got_rep = y_rep.to_global(p);
        const auto got_full = y_full.to_global(p);
        const auto expect = serial_l2(g, x0);
        for (i64 v = 0; v < g.nnodes; ++v) {
          EXPECT_EQ(got_rep[static_cast<std::size_t>(v)],
                    got_full[static_cast<std::size_t>(v)])
              << "node " << v << " epoch " << epoch;
          EXPECT_EQ(got_rep[static_cast<std::size_t>(v)],
                    expect[static_cast<std::size_t>(v)])
              << "node " << v << " epoch " << epoch;
        }
      }
      EXPECT_EQ(p.stats().schedule_repairs, 3);
    });
  }
}

// A 100% delta (every endpoint rewired) must lose the Auto-mode vote and
// fall back to full re-inspection through the cache's third outcome.
TEST(ScheduleRepair, FullDeltaFallsBackToRebuild) {
  const Graph g0 = random_graph(80, 300, 31);
  // Rewire EVERY edge to a disjoint endpoint set: delta fraction 1.0.
  // Precomputed outside machine.run — rank lambdas only read shared state.
  Graph g1 = g0;
  for (auto& v : g1.e1) v = (v + g1.nnodes / 2) % g1.nnodes;
  for (auto& v : g1.e2) v = (v + g1.nnodes / 2 + 1) % g1.nnodes;
  rt::Machine machine(4);
  machine.run([&](rt::Process& p) {
    const Graph* g = &g0;
    auto ddist = dist::Distribution::block(p, g0.nnodes);
    auto edist = dist::Distribution::block(p, static_cast<i64>(g0.e1.size()));
    dist::DistributedArray<f64> x(p, ddist), y(p, ddist, 0.0);
    x.fill_by_global([](i64 gl) { return static_cast<f64>(1 + gl % 3); });
    dist::DistributedArray<i64> e1(p, edist), e2(p, edist);
    auto load = [&] {
      e1.fill_by_global(
          [&](i64 gl) { return g->e1[static_cast<std::size_t>(gl)]; });
      e2.fill_by_global(
          [&](i64 gl) { return g->e2[static_cast<std::size_t>(gl)]; });
    };
    load();

    core::ReuseRegistry registry;
    core::InspectorCache cache;
    const u64 loop_id = rt::collective_counter(p);
    auto probe = [&] {
      return cache.get_or_build<core::EdgeLoopPlan>(
          loop_id, registry, {x.dad(), y.dad()}, {e1.dad()},
          [&] {
            const auto s1 = local_slice(p, *edist, g->e1);
            const auto s2 = local_slice(p, *edist, g->e2);
            return core::EdgeReductionLoop::inspect(p, *edist, s1, s2,
                                                    *ddist);
          },
          [&](const std::shared_ptr<core::EdgeLoopPlan>& cached) {
            const auto s1 = local_slice(p, *edist, g->e1);
            const auto s2 = local_slice(p, *edist, g->e2);
            return core::EdgeReductionLoop::repair(p, *cached, s1, s2,
                                                   *ddist);
          });
    };
    auto first = probe();

    // Switch to the fully rewired edge list: delta fraction 1.0.
    g = &g1;
    load();
    registry.note_write(e1.dad());

    auto second = probe();
    EXPECT_NE(first.get(), second.get());  // rebuilt, not spliced
    EXPECT_EQ(cache.stats().repairs, 0);
    EXPECT_EQ(cache.stats().repair_fallbacks, 1);
    EXPECT_EQ(cache.stats().misses, 2);
    EXPECT_GE(p.stats().repair_fallbacks, 1);
    // The fallback left a working plan: execute and check the reference.
    core::EdgeReductionLoop::execute(p, *second, x, y, fval, gval);
    std::vector<f64> x0(static_cast<std::size_t>(g1.nnodes));
    for (std::size_t i = 0; i < x0.size(); ++i) {
      x0[i] = static_cast<f64>(1 + i % 3);
    }
    const auto expect = serial_l2(g1, x0);
    const auto got = y.to_global(p);
    for (i64 v = 0; v < g1.nnodes; ++v) {
      EXPECT_EQ(got[static_cast<std::size_t>(v)],
                expect[static_cast<std::size_t>(v)]);
    }
  });
}

// After a REDISTRIBUTE the data arrays carry a fresh DAD incarnation — a
// hard-ineligible repair even in RepairMode::On, and the cache must classify
// it as a plain miss (never a repair candidate).
TEST(ScheduleRepair, RefusedAfterRedistribute) {
  const Graph g = random_graph(70, 250, 41);
  rt::Machine machine(4);
  machine.run([&](rt::Process& p) {
    auto ddist = dist::Distribution::block(p, g.nnodes);
    auto edist = dist::Distribution::block(p, static_cast<i64>(g.e1.size()));
    dist::DistributedArray<f64> x(p, ddist), y(p, ddist, 0.0);
    x.fill_by_global([](i64 gl) { return static_cast<f64>(1 + gl % 4); });

    const auto s1 = local_slice(p, *edist, g.e1);
    const auto s2 = local_slice(p, *edist, g.e2);
    const core::PlanOptions opts{.repair = core::RepairMode::On};
    auto plan = core::EdgeReductionLoop::inspect(
        p, *edist, s1, s2, *ddist, core::IterRule::MostLocalReferences, opts);

    // REDISTRIBUTE reg(cyclic): new data DAD, arrays remapped.
    core::ReuseRegistry registry;
    auto cyc = dist::Distribution::cyclic(p, g.nnodes);
    core::Redistributor rd(&registry);
    rd.add(x).add(y);
    rd.apply(p, cyc);

    // Direct repair against the new distribution: hard-ineligible (the
    // snapshot was taken under the block DAD), even with repair=On.
    const auto ns1 = local_slice(p, *edist, g.e1);
    const auto ns2 = local_slice(p, *edist, g.e2);
    EXPECT_FALSE(core::EdgeReductionLoop::repair(p, *plan, ns1, ns2, *cyc));
    EXPECT_GE(p.stats().repair_fallbacks, 1);
    EXPECT_EQ(p.stats().schedule_repairs, 0);

    // The failed repair left the plan not-ready: a full inspect recovers.
    auto fresh = core::EdgeReductionLoop::inspect(
        p, *edist, ns1, ns2, *cyc, core::IterRule::MostLocalReferences, opts);
    core::EdgeReductionLoop::execute(p, *fresh, x, y, fval, gval);
    std::vector<f64> x0(static_cast<std::size_t>(g.nnodes));
    for (std::size_t i = 0; i < x0.size(); ++i) {
      x0[i] = static_cast<f64>(1 + i % 4);
    }
    const auto expect = serial_l2(g, x0);
    const auto got = y.to_global(p);
    for (i64 v = 0; v < g.nnodes; ++v) {
      EXPECT_EQ(got[static_cast<std::size_t>(v)],
                expect[static_cast<std::size_t>(v)]);
    }
  });
}

// RepairMode::Off refuses before any vote or mutation; the plan stays ready
// and keeps executing through the old schedule.
TEST(ScheduleRepair, OffModeRefusesAndPlanStaysUsable) {
  const Graph g = random_graph(50, 150, 3);
  rt::Machine machine(2);
  machine.run([&](rt::Process& p) {
    auto ddist = dist::Distribution::block(p, g.nnodes);
    auto edist = dist::Distribution::block(p, static_cast<i64>(g.e1.size()));
    const auto s1 = local_slice(p, *edist, g.e1);
    const auto s2 = local_slice(p, *edist, g.e2);
    const core::PlanOptions opts{.repair = core::RepairMode::Off};
    auto plan = core::EdgeReductionLoop::inspect(
        p, *edist, s1, s2, *ddist, core::IterRule::MostLocalReferences, opts);
    EXPECT_FALSE(core::EdgeReductionLoop::repair(p, *plan, s1, s2, *ddist));
    // The off-mode refusal happens before begin_build: still executable.
    EXPECT_TRUE(plan->build.ready());
    EXPECT_EQ(p.stats().schedule_repairs, 0);
  });
}

// The L1 single-statement plan repairs all three indirection slices and both
// schedules (lhs against y, rhs against x) — exact match with the serial
// reference after a partial rewire.
TEST(ScheduleRepair, SingleStatementRepairMatchesSerial) {
  const i64 n = 200, nx = 90, ny = 90;
  wl::Rng rng(77);
  std::vector<i64> ia, ib, ic;
  for (i64 i = 0; i < n; ++i) {
    // FORALL semantics: distinct iterations write distinct elements. Use a
    // permutation-free unique target per iteration modulo ny via i itself
    // spread over ny — keep ia unique by construction (n <= ny * k with
    // distinct writes): simplest is ia = a fixed permutation slot per i.
    ia.push_back(i % ny);
    ib.push_back(rng.below(nx));
    ic.push_back(rng.below(nx));
  }
  // Make ia a real FORALL target: later iterations overwriting the same
  // element would be a race, so keep only the last write per target in the
  // serial reference (executor order is unspecified otherwise). To stay
  // race-free, restrict n to ny so every target is written exactly once.
  ia.resize(static_cast<std::size_t>(ny));
  ib.resize(static_cast<std::size_t>(ny));
  ic.resize(static_cast<std::size_t>(ny));
  const i64 iters = ny;

  std::vector<f64> x0(static_cast<std::size_t>(nx));
  for (std::size_t i = 0; i < x0.size(); ++i) {
    x0[i] = static_cast<f64>(1 + i % 6);
  }
  auto serial = [&](const std::vector<i64>& a, const std::vector<i64>& b,
                    const std::vector<i64>& c) {
    std::vector<f64> y(static_cast<std::size_t>(ny), 0.0);
    for (i64 i = 0; i < iters; ++i) {
      y[static_cast<std::size_t>(a[static_cast<std::size_t>(i)])] =
          fval(x0[static_cast<std::size_t>(b[static_cast<std::size_t>(i)])],
               x0[static_cast<std::size_t>(c[static_cast<std::size_t>(i)])]);
    }
    return y;
  };

  for (const int P : {1, 8}) {
    rt::Machine machine(P);
    machine.run([&](rt::Process& p) {
      auto ydist = dist::Distribution::block(p, ny);
      auto xdist = dist::Distribution::block(p, nx);
      auto idist = dist::Distribution::block(p, iters);
      dist::DistributedArray<f64> x(p, xdist), y(p, ydist, 0.0);
      x.fill_by_global(
          [&](i64 gl) { return x0[static_cast<std::size_t>(gl)]; });

      auto sa = local_slice(p, *idist, ia);
      auto sb = local_slice(p, *idist, ib);
      auto sc = local_slice(p, *idist, ic);
      // RepairMode::On: at P=8 a rank holds only a handful of distinct RHS
      // globals, so even a ~15% rewire can exceed the Auto threshold on the
      // machine-max vote — On pins the test to the splice path.
      const core::PlanOptions opts{.repair = core::RepairMode::On};
      auto plan = core::SingleStatementLoop::inspect(
          p, *idist, sa, sb, sc, *ydist, *xdist,
          core::IterRule::MostLocalReferences, opts);

      // Rewire ~15% of the reads (ib/ic); writes (ia) stay a permutation.
      std::vector<i64> nib = ib, nic = ic;
      for (i64 i = 0; i < iters; i += 7) {
        nib[static_cast<std::size_t>(i)] =
            (nib[static_cast<std::size_t>(i)] + 13) % nx;
        nic[static_cast<std::size_t>(i)] =
            (nic[static_cast<std::size_t>(i)] + 29) % nx;
      }
      sb = local_slice(p, *idist, nib);
      sc = local_slice(p, *idist, nic);
      ASSERT_TRUE(core::SingleStatementLoop::repair(p, *plan, sa, sb, sc,
                                                    *ydist, *xdist));
      plan->lhs.schedule.validate_or_throw("post-repair lhs");
      plan->rhs.schedule.validate_or_throw("post-repair rhs");

      core::SingleStatementLoop::execute(p, *plan, y, x, fval);
      const auto got = y.to_global(p);
      const auto expect = serial(ia, nib, nic);
      for (i64 v = 0; v < ny; ++v) {
        EXPECT_EQ(got[static_cast<std::size_t>(v)],
                  expect[static_cast<std::size_t>(v)])
            << "element " << v << " P " << P;
      }
      EXPECT_GE(p.stats().schedule_repairs, 1);
    });
  }
}
