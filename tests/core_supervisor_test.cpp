// Supervised recovery (DESIGN.md §11): retry classification, deterministic
// backoff, the Supervisor's run/classify/recover/retry loop, and the
// exception-safety contracts that make a retried attempt sound — exchange_csr
// leaves its outputs explicitly invalid (never half-written), a localize that
// dies mid-exchange leaves workspace + translation cache resumable with the
// retry bit-identical to a clean run, and a half-built plan refuses to
// execute. This binary deliberately has NO operator-new hook: the AllocFail
// armed-flag regression below exercises the plain-binary unwind path, where a
// leaked flag would detonate at the NEXT injection-site visit.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <stdexcept>
#include <vector>

#include "core/forall.hpp"
#include "core/inspector.hpp"
#include "core/schedule.hpp"
#include "core/supervisor.hpp"
#include "dist/darray.hpp"
#include "dist/distribution.hpp"
#include "dist/translation_cache.hpp"
#include "rt/collectives.hpp"
#include "rt/fault.hpp"
#include "rt/machine.hpp"
#include "rt/retry.hpp"

namespace rt = chaos::rt;
namespace core = chaos::core;
namespace dist = chaos::dist;
using chaos::f64;
using chaos::i64;
using chaos::u64;

namespace {

template <typename Make>
std::exception_ptr capture(Make&& make) {
  try {
    throw make();
  } catch (...) {
    return std::current_exception();
  }
}

}  // namespace

// --- retry classification ----------------------------------------------------

TEST(RetryPolicy, TransientErrorsAreRetryable) {
  EXPECT_TRUE(rt::is_retryable(
      capture([] { return chaos::FaultInjected("injected"); })));
  EXPECT_TRUE(rt::is_retryable(capture(
      [] { return chaos::MachineTimeout("late", {2}, 7, 123.0); })));
  EXPECT_TRUE(rt::is_retryable(
      capture([] { return chaos::MachinePoisoned("sibling died"); })));
  EXPECT_TRUE(rt::is_retryable(capture([] { return std::bad_alloc{}; })));
}

TEST(RetryPolicy, DeterministicBreakageIsFatal) {
  // The ChaosError base is a violated invariant (CHAOS_CHECK) — retrying
  // replays the same deterministic failure, so the supervisor must rethrow.
  EXPECT_FALSE(
      rt::is_retryable(capture([] { return chaos::ChaosError("check"); })));
  EXPECT_FALSE(rt::is_retryable(capture([] {
    return core::ScheduleInvalid("bad plan",
                                 core::ScheduleErrorCode::PrefixNonMonotone,
                                 3);
  })));
  EXPECT_FALSE(rt::is_retryable(
      capture([] { return std::logic_error("program bug"); })));
  EXPECT_FALSE(rt::is_retryable(std::exception_ptr{}));
}

// --- backoff -----------------------------------------------------------------

TEST(RetryPolicy, BackoffIsDeterministicJitteredAndCapped) {
  const rt::RetryPolicy policy{.max_attempts = 8,
                               .base_backoff_ms = 1.0,
                               .multiplier = 2.0,
                               .max_backoff_ms = 16.0};
  EXPECT_EQ(policy.backoff_ms(0), 0.0);
  // Deterministic: the jitter is seeded, not sampled.
  for (int n = 1; n <= 8; ++n) {
    EXPECT_EQ(policy.backoff_ms(n), policy.backoff_ms(n));
  }
  // Jitter multiplies the exponential step by [0.5, 1.5); the cap bounds
  // the step itself, so every value sits in [0.5 * step, 1.5 * cap).
  f64 step = 1.0;
  for (int n = 1; n <= 8; ++n) {
    const f64 expect = std::min(step, 16.0);
    const f64 got = policy.backoff_ms(n);
    EXPECT_GE(got, 0.5 * expect) << "attempt " << n;
    EXPECT_LT(got, 1.5 * expect) << "attempt " << n;
    step *= 2.0;
  }
  // A different seed moves the jitter but keeps the bounds.
  rt::RetryPolicy other = policy;
  other.jitter_seed = 0x1234u;
  EXPECT_NE(other.backoff_ms(1), policy.backoff_ms(1));
  EXPECT_GE(other.backoff_ms(1), 0.5);
  EXPECT_LT(other.backoff_ms(1), 1.5);
}

// --- the supervisor loop -----------------------------------------------------

namespace {
const rt::RetryPolicy kFastRetry{.max_attempts = 3,
                                 .base_backoff_ms = 0.01,
                                 .multiplier = 2.0,
                                 .max_backoff_ms = 0.05};
}  // namespace

TEST(Supervisor, RejectsAPolicyWithZeroAttempts) {
  rt::Machine machine(2);
  EXPECT_THROW(core::Supervisor(machine, rt::RetryPolicy{.max_attempts = 0}),
               chaos::ChaosError);
}

TEST(Supervisor, RetriesTransientFaultAndRecovers) {
  rt::Machine machine(4);
  rt::FaultPlan plan(4);
  plan.add({rt::FaultSite::BarrierArrive, rt::FaultKind::Throw, /*rank=*/2,
            /*nth_visit=*/1});
  machine.install_fault_plan(&plan);
  core::Supervisor sup(machine, kFastRetry);
  std::atomic<int> completions{0};
  sup.run_phase("phase", [&](rt::Process& p) {
    rt::barrier(p);
    if (p.rank() == 0) completions.fetch_add(1, std::memory_order_relaxed);
  });
  machine.install_fault_plan(nullptr);
  EXPECT_EQ(completions.load(), 1);
  EXPECT_EQ(plan.fired(), 1);
  EXPECT_EQ(sup.stats().phases, 1);
  EXPECT_EQ(sup.stats().attempts, 2);
  EXPECT_EQ(sup.stats().retries, 1);
  EXPECT_EQ(sup.stats().recoveries, 1);
  EXPECT_EQ(sup.stats().gave_up, 0);
  EXPECT_GT(sup.stats().backoff_wall_ms, 0.0);
}

TEST(Supervisor, ExhaustsAttemptsThenEscalatesToPermanentFault) {
  rt::Machine machine(4);
  rt::FaultPlan plan(4);
  // One spec per attempt: visit counters are cumulative across runs, so
  // visits 1, 2, 3 of rank 1 fail attempts 1, 2, 3 respectively. Exhausting
  // the budget must NOT rethrow the bare FaultInjected — the supervisor
  // reclassifies the fault as permanent and names the dead rank + site so
  // the caller can degrade (DESIGN.md §13).
  for (u64 visit = 1; visit <= 3; ++visit) {
    plan.add({rt::FaultSite::BarrierArrive, rt::FaultKind::Throw, /*rank=*/1,
              visit});
  }
  machine.install_fault_plan(&plan);
  core::Supervisor sup(machine, kFastRetry);
  bool escalated = false;
  try {
    sup.run_phase("phase", [](rt::Process& p) { rt::barrier(p); });
  } catch (const chaos::PermanentFault& pf) {
    escalated = true;
    EXPECT_EQ(pf.rank, 1);
    EXPECT_EQ(pf.site, static_cast<int>(rt::FaultSite::BarrierArrive));
    EXPECT_NE(std::string(pf.what()).find("phase"), std::string::npos);
  }
  EXPECT_TRUE(escalated);
  machine.install_fault_plan(nullptr);
  EXPECT_EQ(sup.stats().attempts, 3);
  EXPECT_EQ(sup.stats().retries, 2);
  EXPECT_EQ(sup.stats().gave_up, 1);
  EXPECT_EQ(sup.stats().phases, 0);
  EXPECT_EQ(sup.stats().recoveries, 0);
  // The escalation path recovers too: the caller keeps a clean machine.
  EXPECT_FALSE(machine.is_poisoned());
  machine.run([](rt::Process& p) {
    EXPECT_EQ(rt::allreduce_sum(p, i64{p.rank() + 1}), 10);
  });
}

TEST(Supervisor, PermanentFaultIsNotRetryableByANestedSupervisor) {
  // The escalation must not loop: a PermanentFault caught by an outer
  // supervision layer classifies as fatal, not transient.
  EXPECT_FALSE(rt::is_retryable(
      capture([] { return chaos::PermanentFault("dead", 3, 0); })));
}

TEST(Supervisor, FatalErrorsAreNotRetried) {
  rt::Machine machine(4);
  core::Supervisor sup(machine, rt::RetryPolicy{.max_attempts = 5});
  EXPECT_THROW(sup.run_phase("phase",
                             [](rt::Process& p) {
                               if (p.rank() == 3) {
                                 throw chaos::ChaosError("deterministic bug");
                               }
                               rt::barrier(p);
                             }),
               chaos::ChaosError);
  EXPECT_EQ(sup.stats().attempts, 1);
  EXPECT_EQ(sup.stats().retries, 0);
  EXPECT_EQ(sup.stats().gave_up, 1);
}

TEST(Supervisor, DrainsInFlightMessagesOfTheFailedAttempt) {
  rt::Machine machine(4);
  rt::FaultPlan plan(4);
  plan.add({rt::FaultSite::BarrierArrive, rt::FaultKind::Throw, /*rank=*/2,
            /*nth_visit=*/1});
  machine.install_fault_plan(&plan);
  core::Supervisor sup(machine, kFastRetry);
  sup.run_phase("phase", [](rt::Process& p) {
    // Attempt 1 parks two undelivered messages before rank 2 fails at the
    // barrier; the retry re-sends and this time rank 0 consumes them.
    if (p.rank() == 1) {
      p.send_value<int>(0, /*tag=*/9, 41);
      p.send_value<int>(0, /*tag=*/9, 42);
    }
    rt::barrier(p);
    if (p.rank() == 0) {
      EXPECT_EQ(p.recv_value<int>(1, 9), 41);
      EXPECT_EQ(p.recv_value<int>(1, 9), 42);
    }
  });
  machine.install_fault_plan(nullptr);
  EXPECT_EQ(sup.stats().retries, 1);
  EXPECT_EQ(sup.stats().messages_drained, 2);
  // The per-shard breakdown names exactly WHICH pair was mid-flight: both
  // undelivered messages sat in rank 0's mailbox shard for source rank 1.
  EXPECT_EQ(sup.stats().dirty_shards, 1);
  ASSERT_EQ(sup.last_dirty_shards().size(), 1u);
  EXPECT_EQ(sup.last_dirty_shards()[0].dest, 0);
  EXPECT_EQ(sup.last_dirty_shards()[0].source, 1);
  EXPECT_EQ(sup.last_dirty_shards()[0].messages, 2);
}

TEST(Supervisor, ThrowWithArmedAllocFailRetriesExactlyOnce) {
  // Regression for the AllocFail scope guard (rt/fault.cpp): the AllocFail
  // spec ARMS during the spec loop, then the Throw spec at the SAME visit
  // unwinds before the allocator probe runs. Without the guard the armed
  // thread-local leaks past the unwind and detonates at the victim's next
  // site visit — here that would fail attempt 2 as well, making retries 2.
  rt::Machine machine(2);
  rt::FaultPlan plan(2);
  plan.add({rt::FaultSite::BarrierArrive, rt::FaultKind::AllocFail,
            /*rank=*/0, /*nth_visit=*/1});
  plan.add({rt::FaultSite::BarrierArrive, rt::FaultKind::Throw, /*rank=*/0,
            /*nth_visit=*/1});
  machine.install_fault_plan(&plan);
  core::Supervisor sup(machine, rt::RetryPolicy{.max_attempts = 4,
                                                .base_backoff_ms = 0.01,
                                                .multiplier = 2.0,
                                                .max_backoff_ms = 0.05});
  sup.run_phase("phase", [](rt::Process& p) { rt::barrier(p); });
  machine.install_fault_plan(nullptr);
  // Rank 0 runs inline on this thread: the flag must be gone, and a clean
  // allocation must succeed.
  EXPECT_FALSE(rt::fault_alloc_fail_armed());
  std::vector<int> alloc_probe(1024, 7);
  EXPECT_EQ(alloc_probe.back(), 7);
  EXPECT_EQ(sup.stats().attempts, 2);
  EXPECT_EQ(sup.stats().retries, 1);
}

// --- exchange_csr exception safety -------------------------------------------

TEST(ExchangeCsr, OutputsAreExplicitlyInvalidWhenThePayloadRoundFaults) {
  constexpr int kProcs = 4;
  constexpr int kVictim = 2;
  rt::Machine machine(kProcs);
  rt::FaultPlan plan(kProcs);
  // The counts alltoall completes; the fault lands at the payload round, so
  // recv_offsets is already prefixed and recv resized — the dangerous
  // half-written window the clear-on-unwind contract exists for.
  plan.add({rt::FaultSite::AlltoallvFlat, rt::FaultKind::Throw, kVictim,
            /*nth_visit=*/1});
  machine.install_fault_plan(&plan);
  EXPECT_THROW(
      machine.run([&](rt::Process& p) {
        const auto np = static_cast<std::size_t>(p.nprocs());
        std::vector<i64> send(np, p.rank());
        std::vector<i64> soff(np + 1);
        for (std::size_t r = 0; r <= np; ++r) soff[r] = static_cast<i64>(r);
        std::vector<i64> recv{99, 99};          // sentinel: must be cleared
        std::vector<i64> roff{7, 7, 7};
        std::vector<i64> scratch;
        try {
          rt::exchange_csr<i64>(p, send, soff, recv, roff, scratch);
        } catch (...) {
          // Every rank's outputs — the victim's and the poisoned peers' —
          // must be empty, never the half-written exchange.
          EXPECT_TRUE(recv.empty()) << "rank " << p.rank();
          EXPECT_TRUE(roff.empty()) << "rank " << p.rank();
          throw;
        }
        ADD_FAILURE() << "rank " << p.rank() << " completed the exchange";
      }),
      chaos::FaultInjected);
  machine.install_fault_plan(nullptr);
  EXPECT_EQ(plan.fired(), 1);

  // Same buffers, clean machine: the exchange completes and refills them.
  machine.run([&](rt::Process& p) {
    const auto np = static_cast<std::size_t>(p.nprocs());
    std::vector<i64> send(np, p.rank());
    std::vector<i64> soff(np + 1);
    for (std::size_t r = 0; r <= np; ++r) soff[r] = static_cast<i64>(r);
    std::vector<i64> recv, roff, scratch;
    rt::exchange_csr<i64>(p, send, soff, recv, roff, scratch);
    ASSERT_EQ(recv.size(), np);
    for (std::size_t r = 0; r < np; ++r) {
      EXPECT_EQ(recv[r], static_cast<i64>(r));
    }
  });
}

// --- workspace + cache resumability ------------------------------------------

namespace {

struct LocalizeState {
  core::InspectorWorkspace ws;
  core::Localized out;
  std::unique_ptr<dist::TranslationCache> cache;
  std::vector<i64> refs;
};

void expect_same_localized(const core::Localized& got,
                           const core::Localized& want, int rank) {
  EXPECT_EQ(got.refs, want.refs) << "rank " << rank;
  EXPECT_EQ(got.off_process_refs, want.off_process_refs) << "rank " << rank;
  EXPECT_EQ(got.schedule.send_indices, want.schedule.send_indices)
      << "rank " << rank;
  EXPECT_EQ(got.schedule.send_offsets, want.schedule.send_offsets)
      << "rank " << rank;
  EXPECT_EQ(got.schedule.recv_offsets, want.schedule.recv_offsets)
      << "rank " << rank;
  EXPECT_EQ(got.schedule.nghost, want.schedule.nghost) << "rank " << rank;
}

}  // namespace

TEST(Recovery, LocalizeRetryAfterMidExchangeFaultIsBitIdenticalToClean) {
  constexpr int kProcs = 4;
  constexpr int kVictim = 1;
  constexpr i64 kN = 96;
  rt::Machine machine(kProcs);

  // An irregular distribution (engages the translation cache) shared by the
  // three runs below.
  std::vector<std::shared_ptr<const dist::Distribution>> dists(kProcs);
  machine.run([&](rt::Process& p) {
    auto md = dist::Distribution::block(p, kN);
    std::vector<i64> owner(static_cast<std::size_t>(md->my_local_size()));
    for (std::size_t l = 0; l < owner.size(); ++l) {
      const i64 g = md->global_of(p.rank(), static_cast<i64>(l));
      owner[l] = (g * 3 + 1) % kProcs;
    }
    dists[static_cast<std::size_t>(p.rank())] =
        dist::Distribution::irregular_from_map(p, owner, *md,
                                               /*page_size=*/16);
  });

  auto init = [&](std::vector<LocalizeState>& st) {
    st.resize(kProcs);
    for (int r = 0; r < kProcs; ++r) {
      st[static_cast<std::size_t>(r)].cache =
          std::make_unique<dist::TranslationCache>(256);
      st[static_cast<std::size_t>(r)].ws.attach_cache(
          st[static_cast<std::size_t>(r)].cache.get());
      for (i64 i = 0; i < 48; ++i) {  // duplicates + off-process references
        st[static_cast<std::size_t>(r)].refs.push_back(
            (static_cast<i64>(r) * 5 + i * 7) % kN);
      }
    }
  };
  std::vector<LocalizeState> clean_st, retry_st;
  init(clean_st);
  init(retry_st);
  auto localize_body = [&](std::vector<LocalizeState>& st) {
    return [&](rt::Process& p) {
      auto& s = st[static_cast<std::size_t>(p.rank())];
      core::localize(p, *dists[static_cast<std::size_t>(p.rank())], s.refs,
                     s.ws, s.out);
    };
  };

  // Clean baseline, with a spec-less plan installed purely to COUNT the
  // victim's site visits — the last AlltoallvFlat visit is the phase-5
  // exchange's payload round, after the cache insertions were staged.
  rt::FaultPlan counting_plan(kProcs);
  machine.install_fault_plan(&counting_plan);
  machine.run(localize_body(clean_st));
  machine.install_fault_plan(nullptr);
  const f64 clean_clock = machine.max_virtual_time_us();
  const u64 payload_visit =
      counting_plan.visits(rt::FaultSite::AlltoallvFlat, kVictim);
  ASSERT_GE(payload_visit, 1u);

  // Aborted attempt: the fault lands mid-exchange, after staging.
  rt::FaultPlan plan(kProcs);
  plan.add({rt::FaultSite::AlltoallvFlat, rt::FaultKind::Throw, kVictim,
            payload_visit});
  machine.install_fault_plan(&plan);
  EXPECT_THROW(machine.run(localize_body(retry_st)), chaos::FaultInjected);
  machine.install_fault_plan(nullptr);
  EXPECT_EQ(plan.fired(), 1);
  auto& victim = retry_st[static_cast<std::size_t>(kVictim)];
  // The aborted attempt's cache insertions are quarantined, not published,
  // and the victim's schedule outputs were cleared by exchange_csr.
  EXPECT_GT(victim.cache->staged(), 0);
  EXPECT_EQ(victim.cache->stats().insertions, 0);
  EXPECT_TRUE(victim.out.schedule.send_indices.empty());

  // Retry through the SAME workspaces, caches, and outputs: modeled clock
  // and every output must match the clean run bit for bit (the staged
  // insertions are discarded on entry, so the miss vote matches too).
  machine.run(localize_body(retry_st));
  EXPECT_EQ(machine.max_virtual_time_us(), clean_clock);
  for (int r = 0; r < kProcs; ++r) {
    expect_same_localized(retry_st[static_cast<std::size_t>(r)].out,
                          clean_st[static_cast<std::size_t>(r)].out, r);
    EXPECT_EQ(retry_st[static_cast<std::size_t>(r)].cache->staged(), 0)
        << "rank " << r;
  }
}

// --- plan build validity -----------------------------------------------------

TEST(PlanBuildState, TracksGenerationsAndCompleteness) {
  core::PlanBuildState b;
  EXPECT_FALSE(b.ready());
  b.begin_build();
  EXPECT_FALSE(b.ready());
  EXPECT_EQ(b.generation, 1u);
  b.mark_built();
  EXPECT_TRUE(b.ready());
  b.begin_build();  // a rebuild in flight invalidates the plan again
  EXPECT_FALSE(b.ready());
  EXPECT_EQ(b.generation, 2u);
}

TEST(PlanBuildState, ExecuteRefusesAHalfBuiltPlan) {
  rt::Machine::run(2, [](rt::Process& p) {
    auto reg = dist::Distribution::block(p, 32);
    auto reg2 = dist::Distribution::block(p, 16);
    dist::DistributedArray<f64> x(p, reg, 1.0), y(p, reg, 0.0);
    std::vector<i64> e1, e2;
    for (i64 l = 0; l < reg2->my_local_size(); ++l) {
      const i64 g = reg2->global_of(p.rank(), l);
      e1.push_back(g % 32);
      e2.push_back((g * 2 + 1) % 32);
    }
    auto plan = core::EdgeReductionLoop::inspect(p, *reg2, e1, e2, *reg);
    const auto f = [](f64 a, f64 b) { return a + b; };
    core::EdgeReductionLoop::execute(p, *plan, x, y, f, f);  // built: fine
    const u64 gen = plan->build.generation;
    // An inspection that died mid-build leaves the plan not ready; the
    // check fires before any collective, so every rank refuses in lockstep.
    plan->build.begin_build();
    EXPECT_THROW(core::EdgeReductionLoop::execute(p, *plan, x, y, f, f),
                 chaos::ChaosError);
    plan->build.mark_built();
    core::EdgeReductionLoop::execute(p, *plan, x, y, f, f);
    EXPECT_EQ(plan->build.generation, gen + 1);
    // A default-constructed plan was never built at all.
    const core::EdgeLoopPlan unbuilt;
    EXPECT_THROW(core::EdgeReductionLoop::execute(p, unbuilt, x, y, f, f),
                 chaos::ChaosError);
  });
}
