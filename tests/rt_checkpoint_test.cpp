// Unit tests for the partner checkpoint store: round-trip bit-identity,
// partner placement across machine widths, epoch GC on commit, and the
// two-phase staging contract (a failed capture never corrupts the committed
// checkpoint).
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "rt/checkpoint.hpp"
#include "rt/fault.hpp"
#include "rt/machine.hpp"

namespace rt = chaos::rt;
using chaos::i64;
using chaos::u64;

namespace {

/// One synthetic segment per rank: rank-dependent globals and raw byte
/// patterns (including NaN payloads when viewed as doubles) so bit-identity
/// is meaningful.
struct TestSegment {
  std::vector<i64> globals;
  std::vector<std::byte> values;
};

TestSegment make_segment(int rank, i64 elem_size, u64 salt) {
  TestSegment s;
  const i64 n = 3 + rank;  // deliberately uneven across ranks
  s.globals.resize(static_cast<std::size_t>(n));
  s.values.resize(static_cast<std::size_t>(n * elem_size));
  for (i64 i = 0; i < n; ++i) {
    s.globals[static_cast<std::size_t>(i)] = rank * 100 + i;
    for (i64 b = 0; b < elem_size; ++b) {
      s.values[static_cast<std::size_t>(i * elem_size + b)] =
          static_cast<std::byte>((salt * 131 + static_cast<u64>(rank) * 31 +
                                  static_cast<u64>(i * elem_size + b) * 7) &
                                 0xff);
    }
  }
  return s;
}

rt::SegmentView view_of(u64 id, u64 inc, u64 nmod, i64 global_size,
                        i64 elem_size, const TestSegment& s) {
  rt::SegmentView v;
  v.array_id = id;
  v.incarnation = inc;
  v.nmod = nmod;
  v.global_size = global_size;
  v.elem_size = elem_size;
  v.globals = s.globals;
  v.values = s.values;
  return v;
}

}  // namespace

TEST(Checkpoint, RoundTripsEverySegmentBitIdentically) {
  constexpr int kP = 4;
  rt::Machine machine(kP);
  rt::CheckpointStore store(kP);

  // Two segments per rank, different element widths; seg 1 carries bytes
  // that are NaN when reinterpreted as f64 — round-trip must not care.
  std::vector<std::vector<TestSegment>> segs(kP);
  for (int r = 0; r < kP; ++r) {
    segs[static_cast<std::size_t>(r)].push_back(make_segment(r, 8, 1));
    auto nan_seg = make_segment(r, 8, 2);
    const double qnan = std::numeric_limits<double>::quiet_NaN();
    std::memcpy(nan_seg.values.data(), &qnan, sizeof(qnan));
    segs[static_cast<std::size_t>(r)].push_back(std::move(nan_seg));
    segs[static_cast<std::size_t>(r)].push_back(make_segment(r, 4, 3));
  }

  machine.run([&](rt::Process& p) {
    const auto& mine = segs[static_cast<std::size_t>(p.rank())];
    const std::vector<rt::SegmentView> views = {
        view_of(0, 11, 5, 1000, 8, mine[0]),
        view_of(1, 11, 6, 1000, 8, mine[1]),
        view_of(2, 12, 7, 500, 4, mine[2]),
    };
    store.capture(p, 42, views);
  });
  store.commit();

  ASSERT_TRUE(store.has_committed());
  EXPECT_EQ(store.epoch(), 42u);
  EXPECT_EQ(store.width(), kP);
  EXPECT_EQ(store.commits(), 1);
  for (int r = 0; r < kP; ++r) {
    const rt::RankCheckpoint& ck = store.of(r);
    EXPECT_EQ(ck.rank, r);
    EXPECT_EQ(ck.epoch, 42u);
    EXPECT_EQ(ck.width, kP);
    ASSERT_EQ(ck.segments.size(), 3u);
    const auto& orig = segs[static_cast<std::size_t>(r)];
    for (std::size_t j = 0; j < 3; ++j) {
      const rt::SegmentSnapshot& got = ck.segments[j];
      EXPECT_EQ(got.array_id, j);
      EXPECT_EQ(got.incarnation, j < 2 ? 11u : 12u);
      EXPECT_EQ(got.nmod, 5 + j);
      EXPECT_EQ(got.global_size, j < 2 ? 1000 : 500);
      EXPECT_EQ(got.elem_size, j < 2 ? 8 : 4);
      EXPECT_EQ(got.globals, orig[j].globals);
      ASSERT_EQ(got.values.size(), orig[j].values.size());
      EXPECT_EQ(std::memcmp(got.values.data(), orig[j].values.data(),
                            got.values.size()),
                0);  // bit identity, NaN payloads included
    }
  }
}

TEST(Checkpoint, PartnerPlacementChargesEveryWidth) {
  for (int P = 2; P <= 8; ++P) {
    rt::Machine machine(P);
    rt::CheckpointStore store(P);
    std::vector<TestSegment> segs;
    for (int r = 0; r < P; ++r) segs.push_back(make_segment(r, 8, 9));

    machine.run([&](rt::Process& p) {
      // The buddy relation is a P-cycle: distinct from self for all P >= 2,
      // so any single dead rank's snapshot survives on a different rank.
      const int buddy = rt::CheckpointStore::partner_of(p.rank(), P);
      EXPECT_NE(buddy, p.rank());
      EXPECT_EQ(rt::CheckpointStore::partner_of(P - 1, P), 0);  // wraps
      const std::vector<rt::SegmentView> views = {view_of(
          0, 1, 0, 100, 8, segs[static_cast<std::size_t>(p.rank())])};
      store.capture(p, 1, views);
    });
    store.commit();

    // Every rank's snapshot is intact and attributed to its source rank,
    // and every rank paid a modeled checkpoint charge for shipping its
    // blob to the buddy.
    for (int r = 0; r < P; ++r) {
      EXPECT_EQ(store.of(r).rank, r);
      EXPECT_EQ(store.of(r).segments[0].globals,
                segs[static_cast<std::size_t>(r)].globals);
      EXPECT_EQ(machine.stats_of(r).checkpoint_captures, 1);
      EXPECT_GT(machine.stats_of(r).checkpoint_bytes, 0);
    }
    EXPECT_EQ(machine.total_stats().checkpoint_captures, P);
  }
}

TEST(Checkpoint, CommitFreesTheSupersededEpoch) {
  constexpr int kP = 2;
  rt::Machine machine(kP);
  rt::CheckpointStore store(kP);

  auto capture_epoch = [&](u64 epoch, i64 scale) {
    std::vector<std::vector<TestSegment>> segs(kP);
    machine.run([&](rt::Process& p) {
      auto& s = segs[static_cast<std::size_t>(p.rank())];
      s.push_back(make_segment(p.rank(), 8, epoch));
      // Grow the payload with `scale` so the byte accounting below can tell
      // the epochs apart.
      s.back().globals.resize(static_cast<std::size_t>(scale), 7);
      s.back().values.resize(static_cast<std::size_t>(scale * 8),
                             std::byte{0x5a});
      const std::vector<rt::SegmentView> views = {
          view_of(0, 1, 0, 100, 8, s.back())};
      store.capture(p, epoch, views);
    });
    store.commit();
  };

  capture_epoch(1, 64);
  ASSERT_TRUE(store.has_committed());
  const i64 bytes_e1 = store.committed_bytes();
  EXPECT_GT(bytes_e1, 0);

  capture_epoch(5, 8);
  EXPECT_EQ(store.epoch(), 5u);   // latest epoch wins
  EXPECT_EQ(store.commits(), 2);
  // The superseded epoch's payload was freed on commit: the store now holds
  // only the (much smaller) epoch-5 snapshot.
  EXPECT_LT(store.committed_bytes(), bytes_e1);
  for (int r = 0; r < kP; ++r) EXPECT_EQ(store.of(r).epoch, 5u);
}

TEST(Checkpoint, FailedCaptureLeavesTheCommittedCheckpointIntact) {
  constexpr int kP = 2;
  rt::Machine machine(kP);
  rt::CheckpointStore store(kP);
  std::vector<TestSegment> segs;
  for (int r = 0; r < kP; ++r) segs.push_back(make_segment(r, 8, 4));

  machine.run([&](rt::Process& p) {
    const std::vector<rt::SegmentView> views = {
        view_of(0, 1, 3, 100, 8, segs[static_cast<std::size_t>(p.rank())])};
    store.capture(p, 10, views);
  });
  store.commit();
  ASSERT_TRUE(store.has_committed());

  // Detonate the next capture inside the partner exchange.
  rt::FaultPlan plan(kP);
  plan.add({rt::FaultSite::AlltoallvFlat, rt::FaultKind::Throw,
            /*rank=*/1, /*nth_visit=*/1});
  machine.install_fault_plan(&plan);
  EXPECT_THROW(machine.run([&](rt::Process& p) {
                 const std::vector<rt::SegmentView> views = {view_of(
                     0, 1, 4, 100, 8,
                     segs[static_cast<std::size_t>(p.rank())])};
                 store.capture(p, 11, views);
               }),
               chaos::FaultInjected);
  machine.install_fault_plan(nullptr);
  machine.recover();
  store.discard_staged();

  // A failed capture was never a commit candidate: epoch 10 survives whole.
  EXPECT_EQ(store.epoch(), 10u);
  EXPECT_EQ(store.commits(), 1);
  for (int r = 0; r < kP; ++r) {
    EXPECT_EQ(store.of(r).epoch, 10u);
    EXPECT_EQ(store.of(r).segments[0].nmod, 3u);
  }
  // Commit with nothing staged must refuse rather than promote garbage.
  EXPECT_THROW(store.commit(), chaos::ChaosError);

  // The store still works: the retried capture commits normally.
  machine.run([&](rt::Process& p) {
    const std::vector<rt::SegmentView> views = {
        view_of(0, 1, 4, 100, 8, segs[static_cast<std::size_t>(p.rank())])};
    store.capture(p, 11, views);
  });
  store.commit();
  EXPECT_EQ(store.epoch(), 11u);
  EXPECT_EQ(store.commits(), 2);
}
