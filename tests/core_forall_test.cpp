// End-to-end FORALL drivers: the full inspector/executor pipeline (iteration
// partitioning, indirection remap, localize, gather, reduce, scatter) must
// reproduce a serial reference on random graphs, for every distribution and
// process count, including after a mid-run REDISTRIBUTE.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "core/forall.hpp"
#include "core/mapper.hpp"
#include "core/reuse.hpp"
#include "rt/collectives.hpp"
#include "workload/mesh.hpp"
#include "workload/rng.hpp"

namespace rt = chaos::rt;
namespace dist = chaos::dist;
namespace core = chaos::core;
namespace wl = chaos::wl;
using chaos::f64;
using chaos::i64;

namespace {

struct Graph {
  i64 nnodes;
  std::vector<i64> e1, e2;
};

Graph random_graph(i64 nnodes, i64 nedges, chaos::u64 seed) {
  wl::Rng rng(seed);
  Graph g{nnodes, {}, {}};
  for (i64 e = 0; e < nedges; ++e) {
    g.e1.push_back(rng.below(nnodes));
    g.e2.push_back(rng.below(nnodes));
  }
  return g;
}

f64 fval(f64 a, f64 b) { return a * b + 1.0; }
f64 gval(f64 a, f64 b) { return a - 2.0 * b; }

/// Serial reference of loop L2 over the whole edge list.
std::vector<f64> serial_l2(const Graph& g, const std::vector<f64>& x) {
  std::vector<f64> y(static_cast<std::size_t>(g.nnodes), 0.0);
  for (std::size_t e = 0; e < g.e1.size(); ++e) {
    const f64 x1 = x[static_cast<std::size_t>(g.e1[e])];
    const f64 x2 = x[static_cast<std::size_t>(g.e2[e])];
    y[static_cast<std::size_t>(g.e1[e])] += fval(x1, x2);
    y[static_cast<std::size_t>(g.e2[e])] += gval(x1, x2);
  }
  return y;
}

}  // namespace

class ForallSweep
    : public ::testing::TestWithParam<std::tuple<int, core::IterRule>> {};

INSTANTIATE_TEST_SUITE_P(
    ProcsRules, ForallSweep,
    ::testing::Combine(::testing::Values(1, 2, 4, 8),
                       ::testing::Values(core::IterRule::MostLocalReferences,
                                         core::IterRule::OwnerComputes)),
    [](const auto& info) {
      return "P" + std::to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) == core::IterRule::MostLocalReferences
                  ? "_majority"
                  : "_owner");
    });

TEST_P(ForallSweep, EdgeReductionMatchesSerialReference) {
  const auto [P, rule] = GetParam();
  const Graph g = random_graph(120, 500, 42);
  std::vector<f64> x0(static_cast<std::size_t>(g.nnodes));
  for (std::size_t i = 0; i < x0.size(); ++i) {
    x0[i] = 0.25 * static_cast<f64>(i) - 3.0;
  }
  const auto expect = serial_l2(g, x0);

  rt::Machine::run(P, [&, rule = rule](rt::Process& p) {
    auto ddist = dist::Distribution::block(p, g.nnodes);
    auto edist = dist::Distribution::block(p, static_cast<i64>(g.e1.size()));
    dist::DistributedArray<f64> x(p, ddist), y(p, ddist, 0.0);
    x.fill_by_global([&](i64 gl) { return x0[static_cast<std::size_t>(gl)]; });

    // Local slices of the edge arrays under the edge distribution.
    std::vector<i64> s1, s2;
    for (i64 l = 0; l < edist->my_local_size(); ++l) {
      const i64 e = edist->global_of(p.rank(), l);
      s1.push_back(g.e1[static_cast<std::size_t>(e)]);
      s2.push_back(g.e2[static_cast<std::size_t>(e)]);
    }

    auto plan = core::EdgeReductionLoop::inspect(p, *edist, s1, s2, *ddist,
                                                 rule);
    // Every iteration is executed exactly once across the machine.
    const i64 total_iters = rt::allreduce_sum(p, plan->my_iterations());
    EXPECT_EQ(total_iters, static_cast<i64>(g.e1.size()));

    core::EdgeReductionLoop::execute(p, *plan, x, y, fval, gval);

    const auto got = y.to_global(p);
    for (i64 v = 0; v < g.nnodes; ++v) {
      EXPECT_NEAR(got[static_cast<std::size_t>(v)],
                  expect[static_cast<std::size_t>(v)], 1e-9)
          << "node " << v;
    }
  });
}

TEST_P(ForallSweep, RepeatedExecutionAccumulates) {
  const auto [P, rule] = GetParam();
  const Graph g = random_graph(60, 200, 7);
  std::vector<f64> x0(static_cast<std::size_t>(g.nnodes), 1.5);
  auto expect = serial_l2(g, x0);
  for (auto& v : expect) v *= 3.0;  // three identical sweeps

  rt::Machine::run(P, [&, rule = rule](rt::Process& p) {
    auto ddist = dist::Distribution::cyclic(p, g.nnodes);
    auto edist = dist::Distribution::block(p, static_cast<i64>(g.e1.size()));
    dist::DistributedArray<f64> x(p, ddist), y(p, ddist, 0.0);
    x.fill_by_global([&](i64 gl) { return x0[static_cast<std::size_t>(gl)]; });

    std::vector<i64> s1, s2;
    for (i64 l = 0; l < edist->my_local_size(); ++l) {
      const i64 e = edist->global_of(p.rank(), l);
      s1.push_back(g.e1[static_cast<std::size_t>(e)]);
      s2.push_back(g.e2[static_cast<std::size_t>(e)]);
    }
    auto plan = core::EdgeReductionLoop::inspect(p, *edist, s1, s2, *ddist,
                                                 rule);
    // The executor reuses one plan across timesteps (schedule reuse!).
    for (int step = 0; step < 3; ++step) {
      core::EdgeReductionLoop::execute(p, *plan, x, y, fval, gval);
    }
    const auto got = y.to_global(p);
    for (i64 v = 0; v < g.nnodes; ++v) {
      EXPECT_NEAR(got[static_cast<std::size_t>(v)],
                  expect[static_cast<std::size_t>(v)], 1e-9);
    }
  });
}

TEST_P(ForallSweep, SingleStatementLoopMatchesSerialReference) {
  const auto [P, rule] = GetParam();
  constexpr i64 n = 90;
  constexpr i64 iters = 90;
  // ia is a permutation (FORALL requires distinct writes); ib/ic random.
  wl::Rng rng(11);
  std::vector<i64> ia(static_cast<std::size_t>(iters));
  for (i64 i = 0; i < iters; ++i) ia[static_cast<std::size_t>(i)] = i;
  for (i64 i = iters - 1; i > 0; --i) {
    const i64 j = rng.below(i + 1);
    std::swap(ia[static_cast<std::size_t>(i)], ia[static_cast<std::size_t>(j)]);
  }
  std::vector<i64> ib(static_cast<std::size_t>(iters)),
      ic(static_cast<std::size_t>(iters));
  for (i64 i = 0; i < iters; ++i) {
    ib[static_cast<std::size_t>(i)] = rng.below(n);
    ic[static_cast<std::size_t>(i)] = rng.below(n);
  }
  std::vector<f64> x0(static_cast<std::size_t>(n));
  for (i64 i = 0; i < n; ++i) {
    x0[static_cast<std::size_t>(i)] = std::sin(static_cast<f64>(i));
  }
  std::vector<f64> expect(static_cast<std::size_t>(n), -7.0);
  for (i64 i = 0; i < iters; ++i) {
    expect[static_cast<std::size_t>(ia[static_cast<std::size_t>(i)])] =
        fval(x0[static_cast<std::size_t>(ib[static_cast<std::size_t>(i)])],
             x0[static_cast<std::size_t>(ic[static_cast<std::size_t>(i)])]);
  }

  rt::Machine::run(P, [&, rule = rule](rt::Process& p) {
    auto ddist = dist::Distribution::block(p, n);
    auto idist = dist::Distribution::block(p, iters);
    dist::DistributedArray<f64> x(p, ddist), y(p, ddist, -7.0);
    x.fill_by_global([&](i64 gl) { return x0[static_cast<std::size_t>(gl)]; });

    std::vector<i64> sa, sb, sc;
    for (i64 l = 0; l < idist->my_local_size(); ++l) {
      const i64 i = idist->global_of(p.rank(), l);
      sa.push_back(ia[static_cast<std::size_t>(i)]);
      sb.push_back(ib[static_cast<std::size_t>(i)]);
      sc.push_back(ic[static_cast<std::size_t>(i)]);
    }
    auto plan = core::SingleStatementLoop::inspect(p, *idist, sa, sb, sc,
                                                   *ddist, *ddist, rule);
    core::SingleStatementLoop::execute(p, *plan, y, x, fval);

    const auto got = y.to_global(p);
    for (i64 v = 0; v < n; ++v) {
      EXPECT_NEAR(got[static_cast<std::size_t>(v)],
                  expect[static_cast<std::size_t>(v)], 1e-9);
    }
  });
}

TEST(Forall, WorksAfterRedistributeToPartitionedLayout) {
  // The paper's full pipeline: CONSTRUCT -> SET/PARTITION -> REDISTRIBUTE ->
  // inspect -> execute, on a real (tiny) mesh, compared against serial.
  const auto mesh = wl::mesh_tiny();
  Graph g{mesh.nnodes, mesh.edge1, mesh.edge2};
  std::vector<f64> x0(static_cast<std::size_t>(g.nnodes));
  for (std::size_t i = 0; i < x0.size(); ++i) {
    x0[i] = 0.1 * static_cast<f64>(i);
  }
  const auto expect = serial_l2(g, x0);

  rt::Machine::run(4, [&](rt::Process& p) {
    auto reg = dist::Distribution::block(p, mesh.nnodes);
    auto reg2 = dist::Distribution::block(p, mesh.nedges);
    dist::DistributedArray<f64> x(p, reg), y(p, reg, 0.0);
    x.fill_by_global([&](i64 gl) { return x0[static_cast<std::size_t>(gl)]; });

    std::vector<i64> s1, s2;
    for (i64 l = 0; l < reg2->my_local_size(); ++l) {
      const i64 e = reg2->global_of(p.rank(), l);
      s1.push_back(mesh.edge1[static_cast<std::size_t>(e)]);
      s2.push_back(mesh.edge2[static_cast<std::size_t>(e)]);
    }

    // CONSTRUCT G (nnode, LINK(nedge, end_pt1, end_pt2))
    core::GeoColBuilder builder(p, reg);
    builder.link(s1, s2);
    auto geocol = builder.build();
    // SET distfmt BY PARTITIONING G USING RSB; REDISTRIBUTE reg(distfmt)
    core::ReuseRegistry rreg;
    auto distfmt = core::set_by_partitioning(p, *geocol, "RSB");
    core::Redistributor rd(&rreg);
    rd.add(x).add(y);
    rd.apply(p, distfmt);
    EXPECT_TRUE(x.dad() == distfmt->dad());

    auto plan = core::EdgeReductionLoop::inspect(p, *reg2, s1, s2, *distfmt);
    core::EdgeReductionLoop::execute(p, *plan, x, y, fval, gval);

    const auto got = y.to_global(p);
    for (i64 v = 0; v < g.nnodes; ++v) {
      EXPECT_NEAR(got[static_cast<std::size_t>(v)],
                  expect[static_cast<std::size_t>(v)], 1e-9);
    }
  });
}

TEST(Forall, MajorityRuleKeepsIterationsNearData) {
  // On a well-partitioned mesh, the majority rule must place nearly every
  // iteration on a process owning at least one endpoint.
  const auto mesh = wl::mesh_tiny();
  rt::Machine::run(4, [&](rt::Process& p) {
    auto reg = dist::Distribution::block(p, mesh.nnodes);
    auto reg2 = dist::Distribution::block(p, mesh.nedges);
    std::vector<i64> s1, s2;
    for (i64 l = 0; l < reg2->my_local_size(); ++l) {
      const i64 e = reg2->global_of(p.rank(), l);
      s1.push_back(mesh.edge1[static_cast<std::size_t>(e)]);
      s2.push_back(mesh.edge2[static_cast<std::size_t>(e)]);
    }
    auto plan = core::EdgeReductionLoop::inspect(p, *reg2, s1, s2, *reg);
    // Each local iteration references at most 2 remote nodes; with the
    // majority rule at least one endpoint is local unless both endpoints
    // live elsewhere on the same remote process.
    const auto& sched = plan->loc.schedule;
    EXPECT_LE(sched.nghost, plan->my_iterations() * 2);
    // Off-process references cannot exceed one per (iteration, endpoint).
    EXPECT_LE(plan->loc.off_process_refs, 2 * plan->my_iterations());
  });
}
