// Cross-module integration: the complete Figure-2 pipeline (construct →
// partition → redistribute → inspect → execute) must produce bit-identical
// results to a serial sweep for every partitioner, distribution kind and
// process count, including repeated remaps and the 64-process configuration
// of the paper's largest runs.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "core/forall.hpp"
#include "core/mapper.hpp"
#include "core/reuse.hpp"
#include "lang/interp.hpp"
#include "lang/parser.hpp"
#include "rt/collectives.hpp"
#include "workload/mesh.hpp"
#include "workload/rng.hpp"

namespace rt = chaos::rt;
namespace dist = chaos::dist;
namespace core = chaos::core;
namespace lang = chaos::lang;
namespace wl = chaos::wl;
using chaos::f64;
using chaos::i64;

namespace {

f64 fval(f64 a, f64 b) { return a * b + 0.25; }
f64 gval(f64 a, f64 b) { return a - 1.5 * b; }

std::vector<f64> serial_sweeps(const wl::Mesh& m, const std::vector<f64>& x0,
                               int sweeps) {
  std::vector<f64> y(static_cast<std::size_t>(m.nnodes), 0.0);
  for (int s = 0; s < sweeps; ++s) {
    for (i64 e = 0; e < m.nedges; ++e) {
      const i64 a = m.edge1[static_cast<std::size_t>(e)];
      const i64 b = m.edge2[static_cast<std::size_t>(e)];
      y[static_cast<std::size_t>(a)] +=
          fval(x0[static_cast<std::size_t>(a)], x0[static_cast<std::size_t>(b)]);
      y[static_cast<std::size_t>(b)] +=
          gval(x0[static_cast<std::size_t>(a)], x0[static_cast<std::size_t>(b)]);
    }
  }
  return y;
}

}  // namespace

class PipelineSweep
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

INSTANTIATE_TEST_SUITE_P(
    PartitionersProcs, PipelineSweep,
    ::testing::Combine(::testing::Values("BLOCK", "RANDOM", "RCB", "INERTIAL",
                                         "RSB", "RCB+KL"),
                       ::testing::Values(2, 4, 8)),
    [](const auto& info) {
      std::string name = std::get<0>(info.param);
      std::replace(name.begin(), name.end(), '+', '_');
      return name + "_P" + std::to_string(std::get<1>(info.param));
    });

TEST_P(PipelineSweep, FullPipelineMatchesSerial) {
  const auto [partitioner, P] = GetParam();
  const auto mesh = wl::mesh_tiny();
  std::vector<f64> x0(static_cast<std::size_t>(mesh.nnodes));
  for (std::size_t i = 0; i < x0.size(); ++i) {
    x0[i] = std::sin(static_cast<f64>(i) * 0.3);
  }
  const auto expect = serial_sweeps(mesh, x0, 3);

  rt::Machine::run(P, [&, partitioner = partitioner](rt::Process& p) {
    auto reg = dist::Distribution::block(p, mesh.nnodes);
    auto reg2 = dist::Distribution::block(p, mesh.nedges);
    dist::DistributedArray<f64> x(p, reg), y(p, reg, 0.0);
    x.fill_by_global([&](i64 g) { return x0[static_cast<std::size_t>(g)]; });

    std::vector<i64> e1, e2;
    std::vector<f64> xc, yc, zc;
    for (i64 l = 0; l < reg2->my_local_size(); ++l) {
      const i64 e = reg2->global_of(p.rank(), l);
      e1.push_back(mesh.edge1[static_cast<std::size_t>(e)]);
      e2.push_back(mesh.edge2[static_cast<std::size_t>(e)]);
    }
    for (i64 l = 0; l < reg->my_local_size(); ++l) {
      const i64 g = reg->global_of(p.rank(), l);
      xc.push_back(mesh.x[static_cast<std::size_t>(g)]);
      yc.push_back(mesh.y[static_cast<std::size_t>(g)]);
      zc.push_back(mesh.z[static_cast<std::size_t>(g)]);
    }
    core::GeoColBuilder builder(p, reg);
    const std::span<const f64> coords[] = {xc, yc, zc};
    builder.geometry(coords).link(e1, e2);
    auto geocol = builder.build();

    core::ReuseRegistry registry;
    auto distfmt = core::set_by_partitioning(p, *geocol, partitioner);
    core::Redistributor rd(&registry);
    rd.add(x).add(y);
    rd.apply(p, distfmt);

    auto plan = core::EdgeReductionLoop::inspect(p, *reg2, e1, e2, *distfmt);
    for (int sweep = 0; sweep < 3; ++sweep) {
      core::EdgeReductionLoop::execute(p, *plan, x, y, fval, gval);
    }
    const auto got = y.to_global(p);
    for (i64 v = 0; v < mesh.nnodes; ++v) {
      ASSERT_NEAR(got[static_cast<std::size_t>(v)],
                  expect[static_cast<std::size_t>(v)], 1e-9)
          << partitioner << " node " << v;
    }
  });
}

TEST(Pipeline, SurvivesRepeatedRepartitioning) {
  // Remap the same arrays through several different distributions, running
  // the loop (with a fresh inspector, forced by the DAD change) after each.
  const auto mesh = wl::mesh_tiny();
  std::vector<f64> x0(static_cast<std::size_t>(mesh.nnodes), 2.0);
  const auto one = serial_sweeps(mesh, x0, 1);

  rt::Machine::run(4, [&](rt::Process& p) {
    auto reg = dist::Distribution::block(p, mesh.nnodes);
    auto reg2 = dist::Distribution::block(p, mesh.nedges);
    dist::DistributedArray<f64> x(p, reg), y(p, reg, 0.0);
    x.fill_by_global([](i64) { return 2.0; });
    std::vector<i64> e1, e2;
    std::vector<f64> xc, yc, zc;
    for (i64 l = 0; l < reg2->my_local_size(); ++l) {
      const i64 e = reg2->global_of(p.rank(), l);
      e1.push_back(mesh.edge1[static_cast<std::size_t>(e)]);
      e2.push_back(mesh.edge2[static_cast<std::size_t>(e)]);
    }
    for (i64 l = 0; l < reg->my_local_size(); ++l) {
      const i64 g = reg->global_of(p.rank(), l);
      xc.push_back(mesh.x[static_cast<std::size_t>(g)]);
      yc.push_back(mesh.y[static_cast<std::size_t>(g)]);
      zc.push_back(mesh.z[static_cast<std::size_t>(g)]);
    }
    core::GeoColBuilder builder(p, reg);
    const std::span<const f64> coords[] = {xc, yc, zc};
    builder.geometry(coords).link(e1, e2);
    auto geocol = builder.build();

    core::ReuseRegistry registry;
    core::InspectorCache cache;
    const auto loop_id = rt::collective_counter(p);
    int expected_sweeps = 0;
    for (const char* name : {"RCB", "RSB", "RANDOM", "RCB"}) {
      auto distfmt = core::set_by_partitioning(p, *geocol, name);
      core::Redistributor rd(&registry);
      rd.add(x).add(y);
      rd.apply(p, distfmt);
      auto plan = cache.get_or_build<core::EdgeLoopPlan>(
          loop_id, registry, {x.dad(), y.dad()}, {reg2->dad()}, [&] {
            return core::EdgeReductionLoop::inspect(p, *reg2, e1, e2,
                                                    x.dist());
          });
      core::EdgeReductionLoop::execute(p, *plan, x, y, fval, gval);
      ++expected_sweeps;
    }
    // Every repartition changed the data DADs: four inspector builds.
    EXPECT_EQ(cache.stats().misses, 4);
    EXPECT_EQ(cache.stats().hits, 0);

    const auto got = y.to_global(p);
    for (i64 v = 0; v < mesh.nnodes; ++v) {
      ASSERT_NEAR(got[static_cast<std::size_t>(v)],
                  static_cast<f64>(expected_sweeps) *
                      one[static_cast<std::size_t>(v)],
                  1e-9);
    }
  });
}

TEST(Pipeline, SixtyFourProcessConfiguration) {
  // The paper's largest machine size. Small mesh, just proving the full
  // pipeline holds together at P=64 (empty-owner ranks included).
  const auto mesh = wl::mesh_tiny();  // 60 nodes < 64 procs: some ranks own 0
  std::vector<f64> x0(static_cast<std::size_t>(mesh.nnodes), 1.0);
  const auto expect = serial_sweeps(mesh, x0, 1);
  rt::Machine::run(64, [&](rt::Process& p) {
    auto reg = dist::Distribution::block(p, mesh.nnodes);
    auto reg2 = dist::Distribution::block(p, mesh.nedges);
    dist::DistributedArray<f64> x(p, reg, 1.0), y(p, reg, 0.0);
    std::vector<i64> e1, e2;
    for (i64 l = 0; l < reg2->my_local_size(); ++l) {
      const i64 e = reg2->global_of(p.rank(), l);
      e1.push_back(mesh.edge1[static_cast<std::size_t>(e)]);
      e2.push_back(mesh.edge2[static_cast<std::size_t>(e)]);
    }
    auto plan = core::EdgeReductionLoop::inspect(p, *reg2, e1, e2, *reg);
    core::EdgeReductionLoop::execute(p, *plan, x, y, fval, gval);
    const auto got = y.to_global(p);
    for (i64 v = 0; v < mesh.nnodes; ++v) {
      ASSERT_NEAR(got[static_cast<std::size_t>(v)],
                  expect[static_cast<std::size_t>(v)], 1e-9);
    }
  });
}

TEST(Pipeline, BlockCyclicDataDistributionWorksToo) {
  // The executor machinery is distribution-agnostic: run the loop against a
  // BLOCK_CYCLIC data layout (not used in the paper's tables but supported
  // by the runtime).
  const auto mesh = wl::mesh_tiny();
  std::vector<f64> x0(static_cast<std::size_t>(mesh.nnodes));
  for (std::size_t i = 0; i < x0.size(); ++i) x0[i] = static_cast<f64>(i % 5);
  const auto expect = serial_sweeps(mesh, x0, 2);
  rt::Machine::run(4, [&](rt::Process& p) {
    auto ddist = dist::Distribution::block_cyclic(p, mesh.nnodes, 3);
    auto edist = dist::Distribution::cyclic(p, mesh.nedges);
    dist::DistributedArray<f64> x(p, ddist), y(p, ddist, 0.0);
    x.fill_by_global([&](i64 g) { return x0[static_cast<std::size_t>(g)]; });
    std::vector<i64> e1, e2;
    for (i64 l = 0; l < edist->my_local_size(); ++l) {
      const i64 e = edist->global_of(p.rank(), l);
      e1.push_back(mesh.edge1[static_cast<std::size_t>(e)]);
      e2.push_back(mesh.edge2[static_cast<std::size_t>(e)]);
    }
    auto plan = core::EdgeReductionLoop::inspect(p, *edist, e1, e2, *ddist);
    core::EdgeReductionLoop::execute(p, *plan, x, y, fval, gval);
    core::EdgeReductionLoop::execute(p, *plan, x, y, fval, gval);
    const auto got = y.to_global(p);
    for (i64 v = 0; v < mesh.nnodes; ++v) {
      ASSERT_NEAR(got[static_cast<std::size_t>(v)],
                  expect[static_cast<std::size_t>(v)], 1e-9);
    }
  });
}

// Property sweep: compiler path with reuse ON and OFF must agree with each
// other and with serial, for random graphs and coefficients.
class LangReuseEquivalence : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Seeds, LangReuseEquivalence,
                         ::testing::Values(1, 2, 3, 4, 5),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

TEST_P(LangReuseEquivalence, ReuseNeverChangesResults) {
  const int seed = GetParam();
  wl::Rng rng(static_cast<chaos::u64>(seed) * 7919);
  const i64 nnodes = 40 + rng.below(40);
  const i64 nedges = 100 + rng.below(200);
  std::vector<i64> e1(static_cast<std::size_t>(nedges)),
      e2(static_cast<std::size_t>(nedges));
  for (i64 e = 0; e < nedges; ++e) {
    e1[static_cast<std::size_t>(e)] = rng.below(nnodes) + 1;  // 1-based
    e2[static_cast<std::size_t>(e)] = rng.below(nnodes) + 1;
  }
  std::vector<f64> x0(static_cast<std::size_t>(nnodes));
  for (auto& v : x0) v = rng.uniform(-2.0, 2.0);

  const char* source = R"(
      REAL*8 x(nnode), y(nnode), z(nnode)
      INTEGER e1(nedge), e2(nedge)
C$    DECOMPOSITION reg(nnode), reg2(nedge)
C$    DISTRIBUTE reg(BLOCK), reg2(BLOCK)
C$    ALIGN x, y, z WITH reg
C$    ALIGN e1, e2 WITH reg2
      DO step = 1, 4
      FORALL i = 1, nedge
        REDUCE(ADD, y(e1(i)), x(e1(i)) * x(e2(i)) - 0.5)
        REDUCE(MAX, z(e2(i)), x(e1(i)) + x(e2(i)))
      END FORALL
      END DO
)";
  auto prog = lang::compile(source);
  rt::Machine::run(4, [&](rt::Process& p) {
    std::vector<f64> with_reuse, without_reuse;
    for (bool reuse : {true, false}) {
      lang::Instance inst(prog);
      inst.set_param("NNODE", nnodes);
      inst.set_param("NEDGE", nedges);
      inst.bind_real("X", x0);
      inst.bind_int("E1", e1);
      inst.bind_int("E2", e2);
      inst.set_schedule_reuse(reuse);
      inst.execute(p);
      auto y = inst.fetch_real(p, "Y");
      const auto z = inst.fetch_real(p, "Z");
      y.insert(y.end(), z.begin(), z.end());
      (reuse ? with_reuse : without_reuse) = std::move(y);
    }
    ASSERT_EQ(with_reuse.size(), without_reuse.size());
    for (std::size_t i = 0; i < with_reuse.size(); ++i) {
      ASSERT_DOUBLE_EQ(with_reuse[i], without_reuse[i]) << "node " << i;
    }
  });
}
