#include "dist/translation_table.hpp"

#include <algorithm>

#include "dist/dereference_workspace.hpp"
#include "rt/collectives.hpp"

namespace chaos::dist {

namespace {

/// One ownership claim routed to a page home during build.
struct Claim {
  i64 g;      ///< global index
  i64 local;  ///< local offset at the owner
};

}  // namespace

std::shared_ptr<const TranslationTable> TranslationTable::build(
    rt::Process& p, i64 n, std::span<const i64> mine, i64 page_size,
    bool replicated) {
  CHAOS_CHECK(n >= 0, "translation table: negative global size");
  CHAOS_CHECK(page_size >= 1, "translation table: page size must be >= 1");
  auto tt = std::shared_ptr<TranslationTable>(new TranslationTable());
  tt->n_ = n;
  tt->page_size_ = page_size;
  tt->replicated_ = replicated;
  tt->nprocs_ = p.nprocs();
  tt->my_rank_ = p.rank();

  for (i64 g : mine) {
    CHAOS_CHECK(g >= 0 && g < n,
                "translation table: claimed global index out of range");
  }
  tt->local_counts_ = rt::allgather(p, static_cast<i64>(mine.size()));
  i64 total = 0;
  for (i64 c : tt->local_counts_) total += c;
  CHAOS_CHECK(total == n,
              "translation table: claims do not cover the index space "
              "exactly (claimed " +
                  std::to_string(total) + " of " + std::to_string(n) + ")");

  if (replicated) {
    // Everyone ships (global, local) to everyone; block offsets identify the
    // owning rank, so no owner field travels.
    std::vector<Claim> claims;
    claims.reserve(mine.size());
    for (std::size_t l = 0; l < mine.size(); ++l) {
      claims.push_back(Claim{mine[l], static_cast<i64>(l)});
    }
    std::vector<i64> offsets;
    const auto all = rt::allgatherv<Claim>(p, claims, &offsets);
    tt->proc_.assign(static_cast<std::size_t>(n), -1);
    tt->local_.assign(static_cast<std::size_t>(n), -1);
    for (int r = 0; r < p.nprocs(); ++r) {
      for (i64 k = offsets[static_cast<std::size_t>(r)];
           k < offsets[static_cast<std::size_t>(r) + 1]; ++k) {
        const auto& c = all[static_cast<std::size_t>(k)];
        auto slot = static_cast<std::size_t>(c.g);
        CHAOS_CHECK(tt->proc_[slot] == -1,
                    "translation table: global " + std::to_string(c.g) +
                        " claimed by more than one process");
        tt->proc_[slot] = r;
        tt->local_[slot] = c.local;
      }
    }
    for (i64 g = 0; g < n; ++g) {
      CHAOS_CHECK(tt->proc_[static_cast<std::size_t>(g)] != -1,
                  "translation table: global " + std::to_string(g) +
                      " claimed by no process");
    }
    p.clock().charge_ops(n, p.params().mem_us_per_word);
    return tt;
  }

  // Paged: route each claim to its page home in one exchange, then fill and
  // validate the pages this process hosts.
  const i64 npages = n == 0 ? 0 : (n + page_size - 1) / page_size;
  const i64 my_pages =
      npages > p.rank() ? (npages - 1 - p.rank()) / p.nprocs() + 1 : 0;
  tt->proc_.assign(static_cast<std::size_t>(my_pages * page_size), -1);
  tt->local_.assign(static_cast<std::size_t>(my_pages * page_size), -1);

  std::vector<std::vector<Claim>> outgoing(
      static_cast<std::size_t>(p.nprocs()));
  for (std::size_t l = 0; l < mine.size(); ++l) {
    outgoing[static_cast<std::size_t>(tt->home_of(mine[l]))].push_back(
        Claim{mine[l], static_cast<i64>(l)});
  }
  const auto incoming = rt::alltoallv(p, outgoing);
  for (int s = 0; s < p.nprocs(); ++s) {
    for (const auto& c : incoming[static_cast<std::size_t>(s)]) {
      const std::size_t slot = tt->my_slot(c.g);
      CHAOS_CHECK(tt->proc_[slot] == -1,
                  "translation table: global " + std::to_string(c.g) +
                      " claimed by more than one process");
      tt->proc_[slot] = s;
      tt->local_[slot] = c.local;
    }
  }
  // Coverage: every slot of every hosted page that maps to a real global
  // must have been claimed (padding slots past n stay -1 and are never hit).
  for (i64 k = 0; k < my_pages; ++k) {
    const i64 pid = p.rank() + k * p.nprocs();
    const i64 lo = pid * page_size;
    const i64 hi = std::min(n, lo + page_size);
    for (i64 g = lo; g < hi; ++g) {
      CHAOS_CHECK(tt->proc_[static_cast<std::size_t>(k * page_size +
                                                     (g - lo))] != -1,
                  "translation table: global " + std::to_string(g) +
                      " claimed by no process");
    }
  }
  p.clock().charge_ops(static_cast<i64>(mine.size()) + my_pages * page_size,
                       p.params().mem_us_per_word);
  return tt;
}

std::vector<Entry> TranslationTable::dereference(
    rt::Process& p, std::span<const i64> queries,
    i64 extra_charged_queries) const {
  ++stats_.dereference_calls;
  stats_.queries += static_cast<i64>(queries.size());
  std::vector<Entry> out(queries.size());

  for (i64 q : queries) {
    CHAOS_CHECK(q >= 0 && q < n_,
                "translation table: dereferenced index " + std::to_string(q) +
                    " outside [0, " + std::to_string(n_) + ")");
  }

  if (replicated_) {
    // Local-only answer path: zero exchange rounds by construction.
    for (std::size_t i = 0; i < queries.size(); ++i) {
      const auto g = static_cast<std::size_t>(queries[i]);
      out[i] = Entry{proc_[g], local_[g]};
    }
    p.clock().charge_ops(static_cast<i64>(queries.size()) +
                             extra_charged_queries,
                         p.params().mem_us_per_word);
    return out;
  }

  // Paged: answer self-homed pages directly; batch everything else into one
  // request/response round with sorted, deduplicated per-home vectors.
  std::vector<std::vector<i64>> requests(static_cast<std::size_t>(nprocs_));
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const i64 q = queries[i];
    const int home = home_of(q);
    if (home == my_rank_) {
      const std::size_t slot = my_slot(q);
      out[i] = Entry{proc_[slot], local_[slot]};
    } else {
      requests[static_cast<std::size_t>(home)].push_back(q);
      ++stats_.remote_queries;
    }
  }
  i64 remote = 0;  // distinct remote targets after dedup (wire volume)
  for (auto& r : requests) {
    std::sort(r.begin(), r.end());
    r.erase(std::unique(r.begin(), r.end()), r.end());
    remote += static_cast<i64>(r.size());
  }
  stats_.wire_queries += remote;

  // The exchange is collective even when this process asks nothing: peers
  // may be asking us. One round = request alltoallv + response alltoallv.
  ++stats_.alltoallv_rounds;
  const auto asked = rt::alltoallv(p, requests);
  std::vector<std::vector<Entry>> replies(static_cast<std::size_t>(nprocs_));
  for (std::size_t s = 0; s < asked.size(); ++s) {
    replies[s].reserve(asked[s].size());
    for (i64 g : asked[s]) {
      const std::size_t slot = my_slot(g);
      replies[s].push_back(Entry{proc_[slot], local_[slot]});
    }
  }
  const auto answers = rt::alltoallv(p, replies);

  // Resolve remote queries by binary search in the sorted request vector —
  // answers[home] is index-aligned with requests[home] by construction.
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const i64 q = queries[i];
    const auto home = static_cast<std::size_t>(home_of(q));
    if (static_cast<int>(home) == my_rank_) continue;
    const auto& req = requests[home];
    const auto it = std::lower_bound(req.begin(), req.end(), q);
    out[i] = answers[home][static_cast<std::size_t>(it - req.begin())];
  }
  p.clock().charge_ops(static_cast<i64>(queries.size()) +
                           extra_charged_queries + 2 * remote,
                       p.params().mem_us_per_word);
  return out;
}

void TranslationTable::dereference_flat(rt::Process& p,
                                        std::span<const i64> queries,
                                        std::vector<Entry>& out,
                                        DereferenceWorkspace& ws,
                                        i64 extra_charged_queries) const {
  ++stats_.flat_calls;
  stats_.flat_queries += static_cast<i64>(queries.size());
  ++p.stats().ttable_flat_calls;
  out.resize(queries.size());

  for (i64 q : queries) {
    CHAOS_CHECK(q >= 0 && q < n_,
                "translation table: dereferenced index " + std::to_string(q) +
                    " outside [0, " + std::to_string(n_) + ")");
  }

  if (replicated_) {
    // Same zero-round local answer path as the nested variant, writing into
    // the caller-owned buffer.
    for (std::size_t i = 0; i < queries.size(); ++i) {
      const auto g = static_cast<std::size_t>(queries[i]);
      out[i] = Entry{proc_[g], local_[g]};
    }
    p.clock().charge_ops(static_cast<i64>(queries.size()) +
                             extra_charged_queries,
                         p.params().mem_us_per_word);
    return;
  }

  const auto np = static_cast<std::size_t>(nprocs_);
  ws.counts_.resize(2 * np);
  const std::span<i64> my_counts(ws.counts_.data(), np);
  std::fill(my_counts.begin(), my_counts.end(), 0);

  // Pass 1: answer self-homed queries immediately, count the rest per home.
  ws.home_.resize(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const i64 q = queries[i];
    const int home = home_of(q);
    if (home == my_rank_) {
      const std::size_t slot = my_slot(q);
      out[i] = Entry{proc_[slot], local_[slot]};
      ws.home_[i] = -1;
    } else {
      ws.home_[i] = static_cast<i32>(home);
      ++my_counts[static_cast<std::size_t>(home)];
    }
  }

  // Pass 2: scatter the remote queries into a per-home CSR, then sort and
  // dedup each segment IN PLACE, compacting left so the request buffer stays
  // flat. my_counts is rewritten with the post-dedup segment lengths.
  ws.send_offsets_.resize(np + 1);
  ws.send_offsets_[0] = 0;
  for (std::size_t r = 0; r < np; ++r) {
    ws.send_offsets_[r + 1] = ws.send_offsets_[r] + my_counts[r];
  }
  ws.req_.resize(static_cast<std::size_t>(ws.send_offsets_[np]));
  ws.cursor_.resize(np);
  std::copy(ws.send_offsets_.begin(), ws.send_offsets_.end() - 1,
            ws.cursor_.begin());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    if (ws.home_[i] >= 0) {
      ws.req_[static_cast<std::size_t>(
          ws.cursor_[static_cast<std::size_t>(ws.home_[i])]++)] = queries[i];
    }
  }
  i64 write = 0;
  for (std::size_t r = 0; r < np; ++r) {
    const i64 lo = ws.send_offsets_[r];
    const i64 hi = ws.send_offsets_[r + 1];
    std::sort(ws.req_.begin() + lo, ws.req_.begin() + hi);
    const i64 start = write;
    for (i64 k = lo; k < hi; ++k) {
      if (k == lo || ws.req_[static_cast<std::size_t>(k)] !=
                         ws.req_[static_cast<std::size_t>(k - 1)]) {
        ws.req_[static_cast<std::size_t>(write++)] =
            ws.req_[static_cast<std::size_t>(k)];
      }
    }
    my_counts[r] = write - start;
  }
  const i64 wire = write;
  ws.send_offsets_[0] = 0;
  for (std::size_t r = 0; r < np; ++r) {
    ws.send_offsets_[r + 1] = ws.send_offsets_[r] + my_counts[r];
  }
  stats_.flat_wire_queries += wire;
  p.stats().ttable_flat_wire_queries += wire;

  // Rounds 1+2: the shared CSR exchange (counts alltoall fixes the
  // incoming-query prefix, one flat alltoallv moves the request globals) —
  // the same rt::exchange_csr the inspector's ghost requests and geocol's
  // half-edges drive. It rederives the counts from send_offsets_ into
  // ws.counts_, so the staging halves above are free to be clobbered here.
  rt::exchange_csr<i64>(
      p, std::span<const i64>(ws.req_.data(), static_cast<std::size_t>(wire)),
      ws.send_offsets_, ws.peer_req_, ws.recv_offsets_, ws.counts_);
  const i64 incoming = ws.recv_offsets_[np];

  // Answer from my pages; round 3 ships the entries back with the prefixes
  // swapped (my recv prefix is the peers' send prefix and vice versa).
  ws.reply_.resize(static_cast<std::size_t>(incoming));
  for (std::size_t k = 0; k < ws.peer_req_.size(); ++k) {
    const std::size_t slot = my_slot(ws.peer_req_[k]);
    ws.reply_[k] = Entry{proc_[slot], local_[slot]};
  }
  ws.answers_.resize(static_cast<std::size_t>(wire));
  rt::alltoallv_flat<Entry>(
      p, ws.reply_, ws.recv_offsets_,
      std::span<Entry>(ws.answers_.data(), static_cast<std::size_t>(wire)),
      ws.send_offsets_);
  stats_.flat_collectives += 3;

  // Resolve remote queries by binary search in their home's sorted request
  // segment — answers_ is index-aligned with req_ by construction.
  for (std::size_t i = 0; i < queries.size(); ++i) {
    if (ws.home_[i] < 0) continue;
    const auto h = static_cast<std::size_t>(ws.home_[i]);
    const auto lo = ws.req_.begin() + ws.send_offsets_[h];
    const auto hi = ws.req_.begin() + ws.send_offsets_[h + 1];
    const auto it = std::lower_bound(lo, hi, queries[i]);
    out[i] = ws.answers_[static_cast<std::size_t>(it - ws.req_.begin())];
  }

  // Modeled charge of the flat protocol: one table touch per query (plus the
  // compensated extras) and two wire words per distinct remote target — the
  // same ops model as the nested path — while the collective costs above
  // came from the 3 rounds actually performed. Flat and nested are therefore
  // deliberately NOT charge-identical: flat pays one extra small collective
  // and saves the nested path's per-message vector handling.
  p.clock().charge_ops(static_cast<i64>(queries.size()) +
                           extra_charged_queries + 2 * wire,
                       p.params().mem_us_per_word);
}

}  // namespace chaos::dist
