#include "dist/translation_cache.hpp"

namespace chaos::dist {

namespace {

std::size_t round_up_pow2(i64 v) {
  std::size_t c = 16;
  while (static_cast<i64>(c) < v) c <<= 1;
  return c;
}

}  // namespace

TranslationCache::TranslationCache(i64 capacity) {
  CHAOS_CHECK(capacity >= 1, "translation cache: capacity must be >= 1");
  const std::size_t cap = round_up_pow2(capacity);
  mask_ = cap - 1;
  slot_key_.assign(cap, -1);
  slot_val_.assign(cap, Entry{});
  slot_epoch_.assign(cap, 0);  // epoch_ starts at 1: every slot begins empty
}

void TranslationCache::bind(const Dad& dad, u64 stamp) {
  if (bound_ && dad_ == dad && stamp_ == stamp) return;  // same instance+state
  if (bound_ && size_ > 0) {
    ++stats_.flushes;
  }
  ++epoch_;
  size_ = 0;
  bound_ = true;
  dad_ = dad;
  stamp_ = stamp;
  // Anything staged was translated against the previous binding.
  discard_staged();
}

void TranslationCache::invalidate() {
  if (size_ > 0) ++stats_.flushes;
  ++epoch_;
  size_ = 0;
  bound_ = false;
  dad_ = Dad{};
  stamp_ = 0;
  discard_staged();
}

bool TranslationCache::try_get(i64 g, Entry& out) {
  std::size_t s = home_slot(g);
  for (int probe = 0; probe < kProbeLimit; ++probe) {
    if (!live(s)) break;  // first hole terminates the neighborhood
    if (slot_key_[s] == g) {
      out = slot_val_[s];
      ++stats_.hits;
      return true;
    }
    s = (s + 1) & mask_;
  }
  ++stats_.misses;
  return false;
}

i64 TranslationCache::probe_batch(std::span<const i64> ids,
                                  std::span<const i64> globals,
                                  std::span<Entry> entries_out,
                                  std::vector<i64>& miss_ids,
                                  std::vector<i64>& miss_globals) {
  miss_ids.clear();
  miss_globals.clear();
  for (const i64 k : ids) {
    const i64 g = globals[static_cast<std::size_t>(k)];
    if (!try_get(g, entries_out[static_cast<std::size_t>(k)])) {
      miss_ids.push_back(k);
      miss_globals.push_back(g);
    }
  }
  return static_cast<i64>(miss_ids.size());
}

void TranslationCache::put(i64 g, const Entry& e) {
  const std::size_t home = home_slot(g);
  std::size_t s = home;
  std::size_t empty = static_cast<std::size_t>(-1);
  for (int probe = 0; probe < kProbeLimit; ++probe) {
    if (!live(s)) {
      empty = s;
      break;
    }
    if (slot_key_[s] == g) {  // refresh in place
      slot_val_[s] = e;
      return;
    }
    s = (s + 1) & mask_;
  }
  if (empty == static_cast<std::size_t>(-1)) {
    // Neighborhood full: displace the home slot. Bounded capacity beats
    // completeness here — a displaced global simply misses and re-locates.
    empty = home;
    ++stats_.evictions;
  } else {
    ++size_;
  }
  slot_key_[empty] = g;
  slot_val_[empty] = e;
  slot_epoch_[empty] = epoch_;
  ++stats_.insertions;
}

void TranslationCache::stage_put(i64 g, const Entry& e) {
  staged_keys_.push_back(g);
  staged_vals_.push_back(e);
}

void TranslationCache::commit_staged() {
  for (std::size_t k = 0; k < staged_keys_.size(); ++k) {
    put(staged_keys_[k], staged_vals_[k]);
  }
  stats_.staged_commits += static_cast<i64>(staged_keys_.size());
  staged_keys_.clear();
  staged_vals_.clear();
}

void TranslationCache::discard_staged() {
  stats_.staged_discards += static_cast<i64>(staged_keys_.size());
  staged_keys_.clear();
  staged_vals_.clear();
}

}  // namespace chaos::dist
