// Reusable scratch for TranslationTable::dereference_flat — the dist-layer
// sibling of core::InspectorWorkspace and ExecutorWorkspace. Every buffer the
// flat dereference protocol touches lives here and grows monotonically, so a
// warm repeat call (same or smaller query shape) performs ZERO heap
// allocations: request staging, both CSR prefixes, the incoming query block,
// and both Entry payload buffers are all resize-in-place.
//
// One workspace serves any number of sequential dereference_flat calls
// against any table (it carries no table state, only capacity). It is NOT
// shareable across concurrent calls — one workspace per logical process,
// like the other workspaces in the tree. Wire protocol: DESIGN.md §9.
#pragma once

#include <vector>

#include "dist/translation_table.hpp"

namespace chaos::dist {

class DereferenceWorkspace {
 public:
  DereferenceWorkspace() = default;

 private:
  friend class TranslationTable;

  std::vector<i64> counts_;        ///< 2P: my per-home counts + peer counts
  std::vector<i32> home_;          ///< per query: home rank, or -1 if answered
  std::vector<i64> send_offsets_;  ///< P+1: request CSR prefix (post-dedup)
  std::vector<i64> recv_offsets_;  ///< P+1: incoming-query CSR prefix
  std::vector<i64> cursor_;        ///< P: segment fill cursors
  std::vector<i64> req_;           ///< flat sorted+deduped request globals
  std::vector<i64> peer_req_;      ///< globals peers ask this process
  std::vector<Entry> reply_;       ///< answers shipped back to peers
  std::vector<Entry> answers_;     ///< answers received, aligned with req_
};

}  // namespace chaos::dist
