// A distributed data array: this process's owned segment of a 1-D global
// array plus a ghost region sized by the current communication schedule.
// Executors address elements through "localized" indices — [0, nlocal) hits
// the owned segment, [nlocal, nlocal+nghost) the gathered off-process copies
// — so the inner loops are branch-one-compare, no hashing, no translation.
#pragma once

#include <memory>
#include <span>
#include <type_traits>
#include <vector>

#include "dist/distribution.hpp"
#include "rt/collectives.hpp"

namespace chaos::dist {

struct RemapPlan;

template <typename T>
class DistributedArray {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  /// Collective (all processes construct together against one distribution).
  DistributedArray(rt::Process& p, std::shared_ptr<const Distribution> d,
                   T init = T{})
      : dist_(std::move(d)) {
    CHAOS_CHECK(dist_ != nullptr, "DistributedArray: null distribution");
    CHAOS_CHECK(dist_->nprocs() == p.nprocs(),
                "DistributedArray: distribution built for another machine");
    data_.assign(static_cast<std::size_t>(dist_->my_local_size()), init);
  }

  [[nodiscard]] const Distribution& dist() const { return *dist_; }
  [[nodiscard]] const std::shared_ptr<const Distribution>& dist_ptr() const {
    return dist_;
  }
  [[nodiscard]] const Dad& dad() const { return dist_->dad(); }

  [[nodiscard]] i64 nlocal() const { return static_cast<i64>(data_.size()); }
  [[nodiscard]] i64 nghost() const { return static_cast<i64>(ghost_.size()); }

  [[nodiscard]] std::span<T> local() { return data_; }
  [[nodiscard]] std::span<const T> local() const { return data_; }
  [[nodiscard]] std::span<T> ghost() { return ghost_; }
  [[nodiscard]] std::span<const T> ghost() const { return ghost_; }

  /// Reads through a localized index (inspector output): owned segment below
  /// nlocal, ghost region above.
  [[nodiscard]] T localized(i64 ref) const {
    return ref < nlocal() ? data_[static_cast<std::size_t>(ref)]
                          : ghost_[static_cast<std::size_t>(ref - nlocal())];
  }

  void resize_ghost(i64 n) {
    CHAOS_CHECK(n >= 0, "resize_ghost: negative size");
    ghost_.assign(static_cast<std::size_t>(n), T{});
  }

  /// Sets every owned element from its global index. Local-only.
  template <typename Fn>
  void fill_by_global(Fn&& fn) {
    for (std::size_t l = 0; l < data_.size(); ++l) {
      data_[l] = static_cast<T>(fn(dist_->my_global_of(static_cast<i64>(l))));
    }
  }

  /// Replaces the owned segment (e.g. with a remapped image of the array).
  void assign_local(std::vector<T>&& values) {
    CHAOS_CHECK(static_cast<i64>(values.size()) == dist_->my_local_size(),
                "assign_local: segment size does not match the distribution");
    data_ = std::move(values);
  }

  /// Collective: reassembles the full global array on every process
  /// (test/debug path — O(N) everywhere by design).
  [[nodiscard]] std::vector<T> to_global(rt::Process& p) const {
    const auto globals = dist_->my_globals();
    const auto all_g = rt::allgatherv<i64>(p, globals);
    const auto all_v = rt::allgatherv<T>(p, std::span<const T>(data_));
    std::vector<T> out(static_cast<std::size_t>(dist_->size()));
    for (std::size_t k = 0; k < all_g.size(); ++k) {
      out[static_cast<std::size_t>(all_g[k])] = all_v[k];
    }
    return out;
  }

  /// Collective: moves the owned segment onto @p to with a prebuilt plan
  /// (one plan moves every aligned array — the REDISTRIBUTE contract).
  void redistribute(rt::Process& p, const RemapPlan& plan,
                    std::shared_ptr<const Distribution> to);

 private:
  std::shared_ptr<const Distribution> dist_;
  std::vector<T> data_;
  std::vector<T> ghost_;
};

}  // namespace chaos::dist

#include "dist/remap.hpp"

namespace chaos::dist {

template <typename T>
void DistributedArray<T>::redistribute(rt::Process& p, const RemapPlan& plan,
                                       std::shared_ptr<const Distribution> to) {
  // Every guard fires BEFORE the exchange: a stale or mismatched plan must
  // not leave some ranks mid-collective (or the array half-mutated) while
  // others throw. Incarnations pin the plan to the exact distribution
  // instances it was built between.
  CHAOS_CHECK(to != nullptr, "redistribute: null target distribution");
  CHAOS_CHECK(plan.from_incarnation == dist_->dad().incarnation,
              "redistribute: plan was built from a different source "
              "distribution");
  CHAOS_CHECK(plan.to_incarnation == to->dad().incarnation,
              "redistribute: plan was built for a different target "
              "distribution");
  CHAOS_CHECK(plan.nlocal_to == to->my_local_size(),
              "redistribute: plan does not match the target distribution");
  data_ = apply_remap<T>(p, plan, data_);
  dist_ = std::move(to);
  ghost_.clear();  // schedules against the old layout are void
}

}  // namespace chaos::dist
