// The distributed translation table (PARTI/CHAOS): maps global index ->
// (owning process, local offset) for IRREGULAR distributions, where no
// closed form exists. Two organizations, chosen at build time:
//
//   paged      — the table is split into fixed-size pages of consecutive
//                globals; page pid lives on process pid % P. O(N/P) memory
//                per process. dereference() batches all lookups into ONE
//                request/response exchange round (two rt::alltoallv calls)
//                with per-destination sorted, deduplicated request vectors.
//   replicated — every process stores the whole table. O(N) memory,
//                zero-communication dereference.
//
// The layout and batching protocol are documented in DESIGN.md §3–4.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "rt/machine.hpp"

namespace chaos::dist {

class DereferenceWorkspace;

/// One resolved global reference: owning process and local offset there.
struct Entry {
  i32 proc = -1;
  i64 local = -1;
};

class TranslationTable {
 public:
  /// Per-process dereference accounting; the bench layer reads this to show
  /// that replicated tables answer with zero exchange rounds while paged
  /// tables spend exactly one round per dereference call.
  struct Stats {
    i64 dereference_calls = 0;
    i64 alltoallv_rounds = 0;  ///< request+response exchanges performed
    i64 queries = 0;
    i64 remote_queries = 0;  ///< queries whose page lives on another process
    /// Distinct remote targets actually shipped on the wire (after the
    /// per-home sort+unique): the request-side alltoallv word count. The
    /// inspector bench reads this to show the translation-cache traffic cut.
    i64 wire_queries = 0;
    /// dereference_flat accounting, kept separate so existing consumers of
    /// the nested counters never see flat traffic folded in.
    i64 flat_calls = 0;
    i64 flat_collectives = 0;  ///< 3 per paged flat call, 0 replicated
    i64 flat_queries = 0;
    i64 flat_wire_queries = 0;  ///< post-dedup request words, flat path
  };

  /// Collective. Every process contributes the globals it owns, in its local
  /// storage order (local index of mine[l] is l). Validates the claims form
  /// an exact partition of [0, n): double claims, unclaimed indices and
  /// out-of-range claims all throw ChaosError.
  [[nodiscard]] static std::shared_ptr<const TranslationTable> build(
      rt::Process& p, i64 n, std::span<const i64> mine, i64 page_size = 4096,
      bool replicated = false);

  /// Collective (paged mode performs one exchange round even when this
  /// process has no remote queries — peers may). answers[i] resolves
  /// queries[i]; duplicate and empty query lists are legal and lists may
  /// differ in length across processes. @p extra_charged_queries is folded
  /// into the final clock charge (see Distribution::locate_into).
  [[nodiscard]] std::vector<Entry> dereference(
      rt::Process& p, std::span<const i64> queries,
      i64 extra_charged_queries = 0) const;

  /// Collective, zero-allocation variant of dereference(): the flat CSR
  /// protocol (DESIGN.md §9) answers the same queries through one counts
  /// rt::alltoall plus two rt::alltoallv_flat exchanges, staging everything
  /// in @p ws — a warm repeat call performs 0 heap allocations. Answers are
  /// identical to dereference(); the modeled charge is NOT: the flat
  /// protocol spends 3 collectives where the nested path spends 2, so this
  /// is an opt-in entry point with its own charge, never a drop-in swap
  /// (existing modeled virtual times stay bit-identical as long as callers
  /// keep using dereference()). Out-of-range queries throw the same error
  /// as the nested path.
  void dereference_flat(rt::Process& p, std::span<const i64> queries,
                        std::vector<Entry>& out, DereferenceWorkspace& ws,
                        i64 extra_charged_queries = 0) const;

  [[nodiscard]] i64 size() const { return n_; }
  [[nodiscard]] i64 page_size() const { return page_size_; }
  [[nodiscard]] bool replicated() const { return replicated_; }
  [[nodiscard]] i64 local_count(int rank) const {
    return local_counts_[static_cast<std::size_t>(rank)];
  }
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  TranslationTable() = default;

  [[nodiscard]] i64 page_of(i64 g) const { return g / page_size_; }
  [[nodiscard]] int home_of(i64 g) const {
    return static_cast<int>(page_of(g) % nprocs_);
  }
  /// Flat slot of global @p g inside this process's page storage (the
  /// caller guarantees home_of(g) == my rank).
  [[nodiscard]] std::size_t my_slot(i64 g) const {
    const i64 pid = page_of(g);
    return static_cast<std::size_t>((pid / nprocs_) * page_size_ +
                                    (g - pid * page_size_));
  }

  i64 n_ = 0;
  i64 page_size_ = 4096;
  bool replicated_ = false;
  int nprocs_ = 0;
  int my_rank_ = 0;
  std::vector<i64> local_counts_;  ///< owned-element count per rank

  /// Entry storage. Replicated: indexed directly by global. Paged: my pages
  /// concatenated in page order, each padded to page_size_ (my_slot()).
  std::vector<i32> proc_;
  std::vector<i64> local_;

  mutable Stats stats_;
};

}  // namespace chaos::dist
