// The remap engine (REDISTRIBUTE): a RemapPlan is a reusable permutation
// schedule between two equal-sized distributions. build_remap computes it
// with ONE batched locate (closed form for regular targets, one table
// exchange for irregular) plus one placement exchange; apply_remap then
// moves any aligned array with a single value alltoallv — pack by
// precomputed source positions, unpack by precomputed target positions, no
// per-element address arithmetic in the hot path.
#pragma once

#include <span>
#include <vector>

#include "dist/distribution.hpp"
#include "rt/collectives.hpp"

namespace chaos::dist {

struct RemapPlan {
  i64 size = 0;            ///< global extent both distributions share
  i64 nlocal_from = 0;     ///< my source-segment length (staleness guard)
  i64 nlocal_to = 0;       ///< my target-segment length
  i64 moved_elements = 0;  ///< machine-total elements that changed process
  u64 from_incarnation = 0;
  u64 to_incarnation = 0;
  /// send_pos[d][k] = position in my source segment of the k-th value I
  /// ship to process d (ascending source order).
  std::vector<std::vector<i64>> send_pos;
  /// place_pos[s][k] = position in my target segment where the k-th value
  /// arriving from process s lands.
  std::vector<std::vector<i64>> place_pos;
};

/// Collective. Throws if the distributions differ in global size.
[[nodiscard]] RemapPlan build_remap(rt::Process& p, const Distribution& from,
                                    const Distribution& to);

/// Collective. Moves one array's owned segment through @p plan; the source
/// span must match the plan's build-time segment length, checked before any
/// communication so no rank is left stranded mid-exchange. A raw span
/// carries no distribution identity, so this length compare is the only
/// guard here; DistributedArray::redistribute additionally pins the plan to
/// both endpoint distributions via their DAD incarnations.
template <typename T>
[[nodiscard]] std::vector<T> apply_remap(rt::Process& p, const RemapPlan& plan,
                                         std::span<const T> src) {
  CHAOS_CHECK(static_cast<i64>(src.size()) == plan.nlocal_from,
              "apply_remap: plan is stale (source segment length changed)");
  std::vector<std::vector<T>> outgoing(plan.send_pos.size());
  i64 packed = 0;
  for (std::size_t d = 0; d < plan.send_pos.size(); ++d) {
    outgoing[d].reserve(plan.send_pos[d].size());
    for (i64 pos : plan.send_pos[d]) {
      outgoing[d].push_back(src[static_cast<std::size_t>(pos)]);
      ++packed;
    }
  }
  const auto incoming = rt::alltoallv(p, outgoing);
  std::vector<T> out(static_cast<std::size_t>(plan.nlocal_to));
  for (std::size_t s = 0; s < incoming.size(); ++s) {
    CHAOS_CHECK(incoming[s].size() == plan.place_pos[s].size(),
                "apply_remap: peer sent unexpected element count");
    for (std::size_t k = 0; k < incoming[s].size(); ++k) {
      out[static_cast<std::size_t>(plan.place_pos[s][k])] = incoming[s][k];
    }
  }
  p.clock().charge_ops(packed + plan.nlocal_to, p.params().mem_us_per_word);
  return out;
}

}  // namespace chaos::dist
