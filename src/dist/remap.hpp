// The remap engine (REDISTRIBUTE): a RemapPlan is a reusable permutation
// schedule between two equal-sized distributions. build_remap computes it
// with ONE batched locate (closed form for regular targets, one table
// exchange for irregular) plus one placement exchange; apply_remap then
// moves any aligned array with a single value alltoallv — pack by
// precomputed source positions, unpack by precomputed target positions, no
// per-element address arithmetic in the hot path.
#pragma once

#include <span>
#include <vector>

#include "dist/distribution.hpp"
#include "rt/collectives.hpp"

namespace chaos::dist {

struct RemapPlan {
  i64 size = 0;            ///< global extent both distributions share
  i64 nlocal_from = 0;     ///< my source-segment length (staleness guard)
  i64 nlocal_to = 0;       ///< my target-segment length
  i64 moved_elements = 0;  ///< machine-total elements that changed process
  u64 from_incarnation = 0;
  u64 to_incarnation = 0;
  /// send_pos[d][k] = position in my source segment of the k-th value I
  /// ship to process d (ascending source order).
  std::vector<std::vector<i64>> send_pos;
  /// place_pos[s][k] = position in my target segment where the k-th value
  /// arriving from process s lands.
  std::vector<std::vector<i64>> place_pos;
};

/// Collective. Throws if the distributions differ in global size.
[[nodiscard]] RemapPlan build_remap(rt::Process& p, const Distribution& from,
                                    const Distribution& to);

/// Collective. Moves one array's owned segment through @p plan; the source
/// span must match the plan's build-time segment length, checked before any
/// communication so no rank is left stranded mid-exchange. A raw span
/// carries no distribution identity, so this length compare is the only
/// guard here; DistributedArray::redistribute additionally pins the plan to
/// both endpoint distributions via their DAD incarnations.
/// Scratch for apply_remap_delta: the plan's inverse placement map (source
/// position -> (destination, ordinal in the destination's arrival order)),
/// built once per plan and reused, plus the exchange staging. All buffers
/// grow monotonically — warm delta applies perform zero heap allocations.
struct RemapDeltaWorkspace {
  std::vector<i64> dest_of;   ///< source pos -> destination rank
  std::vector<i64> ord_of;    ///< source pos -> ordinal within that dest
  bool inverse_built = false;
  std::vector<i64> payload;   ///< flat (ordinal, value) pairs per dest
  std::vector<i64> payload_offsets;
  std::vector<i64> recv_payload;
  std::vector<i64> recv_offsets;
  std::vector<i64> counts_scratch;
};

/// Collective sparse companion of apply_remap (incremental schedule repair,
/// DESIGN.md §14): pushes only the CHANGED source entries of an i64 array
/// through @p plan, updating @p target — the array apply_remap produced —
/// in place. Wire volume is two words per changed element, so a repair's
/// remap leg costs ∝ delta size instead of re-shipping the whole array.
/// Every rank must call together (changed sets may be empty on some ranks).
inline void apply_remap_delta(rt::Process& p, const RemapPlan& plan,
                              std::span<const i64> changed_pos,
                              std::span<const i64> changed_val,
                              std::span<i64> target,
                              RemapDeltaWorkspace& ws) {
  CHAOS_CHECK(changed_pos.size() == changed_val.size(),
              "apply_remap_delta: positions/values length mismatch");
  CHAOS_CHECK(static_cast<i64>(target.size()) == plan.nlocal_to,
              "apply_remap_delta: target segment length does not match plan");
  const auto np = plan.send_pos.size();
  if (!ws.inverse_built) {
    ws.dest_of.assign(static_cast<std::size_t>(plan.nlocal_from), -1);
    ws.ord_of.assign(static_cast<std::size_t>(plan.nlocal_from), -1);
    for (std::size_t d = 0; d < np; ++d) {
      for (std::size_t k = 0; k < plan.send_pos[d].size(); ++k) {
        const auto pos = static_cast<std::size_t>(plan.send_pos[d][k]);
        ws.dest_of[pos] = static_cast<i64>(d);
        ws.ord_of[pos] = static_cast<i64>(k);
      }
    }
    ws.inverse_built = true;
  }
  // Pack (ordinal, value) pairs grouped by destination: count, prefix, fill.
  ws.payload_offsets.assign(np + 1, 0);
  for (const i64 pos : changed_pos) {
    const i64 d = ws.dest_of[static_cast<std::size_t>(pos)];
    CHAOS_CHECK(d >= 0, "apply_remap_delta: changed position never shipped");
    ws.payload_offsets[static_cast<std::size_t>(d) + 1] += 2;
  }
  for (std::size_t d = 0; d < np; ++d) {
    ws.payload_offsets[d + 1] += ws.payload_offsets[d];
  }
  ws.payload.resize(static_cast<std::size_t>(ws.payload_offsets[np]));
  ws.counts_scratch.assign(np, 0);  // per-dest fill cursor
  for (std::size_t i = 0; i < changed_pos.size(); ++i) {
    const auto pos = static_cast<std::size_t>(changed_pos[i]);
    const auto d = static_cast<std::size_t>(ws.dest_of[pos]);
    const auto at = static_cast<std::size_t>(ws.payload_offsets[d] +
                                             ws.counts_scratch[d]);
    ws.payload[at] = ws.ord_of[pos];
    ws.payload[at + 1] = changed_val[i];
    ws.counts_scratch[d] += 2;
  }
  rt::exchange_csr<i64>(p, ws.payload, ws.payload_offsets, ws.recv_payload,
                        ws.recv_offsets, ws.counts_scratch);
  // Place: arriving (ordinal, value) pairs land where apply_remap would
  // have put the s-th source's ordinal-th element.
  for (std::size_t s = 0; s < np; ++s) {
    for (i64 k = ws.recv_offsets[s]; k < ws.recv_offsets[s + 1]; k += 2) {
      const auto ord = static_cast<std::size_t>(
          ws.recv_payload[static_cast<std::size_t>(k)]);
      CHAOS_CHECK(ord < plan.place_pos[s].size(),
                  "apply_remap_delta: peer sent an out-of-range ordinal");
      target[static_cast<std::size_t>(plan.place_pos[s][ord])] =
          ws.recv_payload[static_cast<std::size_t>(k) + 1];
    }
  }
  p.clock().charge_ops(static_cast<i64>(changed_pos.size()) +
                           (ws.recv_offsets[np] / 2),
                       p.params().mem_us_per_word);
}

template <typename T>
[[nodiscard]] std::vector<T> apply_remap(rt::Process& p, const RemapPlan& plan,
                                         std::span<const T> src) {
  CHAOS_CHECK(static_cast<i64>(src.size()) == plan.nlocal_from,
              "apply_remap: plan is stale (source segment length changed)");
  std::vector<std::vector<T>> outgoing(plan.send_pos.size());
  i64 packed = 0;
  for (std::size_t d = 0; d < plan.send_pos.size(); ++d) {
    outgoing[d].reserve(plan.send_pos[d].size());
    for (i64 pos : plan.send_pos[d]) {
      outgoing[d].push_back(src[static_cast<std::size_t>(pos)]);
      ++packed;
    }
  }
  const auto incoming = rt::alltoallv(p, outgoing);
  std::vector<T> out(static_cast<std::size_t>(plan.nlocal_to));
  for (std::size_t s = 0; s < incoming.size(); ++s) {
    CHAOS_CHECK(incoming[s].size() == plan.place_pos[s].size(),
                "apply_remap: peer sent unexpected element count");
    for (std::size_t k = 0; k < incoming[s].size(); ++k) {
      out[static_cast<std::size_t>(plan.place_pos[s][k])] = incoming[s][k];
    }
  }
  p.clock().charge_ops(packed + plan.nlocal_to, p.params().mem_us_per_word);
  return out;
}

}  // namespace chaos::dist
