// Distributed-array descriptors (DADs). A DAD is the identity of one
// distribution *instance*: its kind, extent, process count, layout parameter
// and a machine-wide unique incarnation number minted collectively at
// construction. Two BLOCK distributions of the same array shape still carry
// different incarnations — that is what lets the Section 3 reuse guard detect
// REDISTRIBUTE (a remapped array gets a fresh DAD) with one integer compare
// instead of comparing ownership tables.
#pragma once

#include "rt/types.hpp"

namespace chaos::dist {

enum class DistKind : u8 { Block, Cyclic, BlockCyclic, Irregular };

[[nodiscard]] constexpr const char* to_string(DistKind k) {
  switch (k) {
    case DistKind::Block: return "Block";
    case DistKind::Cyclic: return "Cyclic";
    case DistKind::BlockCyclic: return "BlockCyclic";
    case DistKind::Irregular: return "Irregular";
  }
  return "?";
}

namespace detail {
/// splitmix64 finalizer: full-avalanche mixing at ~3 multiplies, so DAD keys
/// spread uniformly in the reuse registry's hash table.
[[nodiscard]] constexpr u64 mix64(u64 h) {
  h += 0x9e3779b97f4a7c15ull;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
  return h ^ (h >> 31);
}
}  // namespace detail

struct Dad {
  DistKind kind = DistKind::Block;
  i64 size = 0;         ///< global extent of the index space
  i32 nprocs = 0;       ///< process count the layout was built for
  i64 param = 0;        ///< block size (BLOCK/BLOCK_CYCLIC) or page size
  u64 incarnation = 0;  ///< machine-wide unique id of this instance

  /// Hash key for registry maps. Incarnations are machine-unique, so mixing
  /// them dominates; the remaining fields guard against hand-built DADs that
  /// share an incarnation (as the unit tests do).
  [[nodiscard]] u64 key() const {
    u64 h = detail::mix64(incarnation);
    h = detail::mix64(h ^ static_cast<u64>(size));
    h = detail::mix64(h ^ (static_cast<u64>(param) << 8) ^
                      (static_cast<u64>(nprocs) << 2) ^
                      static_cast<u64>(kind));
    return h;
  }

  friend bool operator==(const Dad&, const Dad&) = default;
};

}  // namespace chaos::dist
