#include "dist/distribution.hpp"

#include <algorithm>

#include "rt/collectives.hpp"

namespace chaos::dist {

std::shared_ptr<const Distribution> Distribution::block(rt::Process& p,
                                                        i64 n) {
  CHAOS_CHECK(n >= 0, "BLOCK: negative extent");
  auto d = std::shared_ptr<Distribution>(new Distribution());
  const i64 bs = n == 0 ? 1 : (n + p.nprocs() - 1) / p.nprocs();
  d->dad_ = Dad{DistKind::Block, n, p.nprocs(), bs, rt::collective_counter(p)};
  d->my_rank_ = p.rank();
  return d;
}

std::shared_ptr<const Distribution> Distribution::cyclic(rt::Process& p,
                                                         i64 n) {
  CHAOS_CHECK(n >= 0, "CYCLIC: negative extent");
  auto d = std::shared_ptr<Distribution>(new Distribution());
  d->dad_ = Dad{DistKind::Cyclic, n, p.nprocs(), 1, rt::collective_counter(p)};
  d->my_rank_ = p.rank();
  return d;
}

std::shared_ptr<const Distribution> Distribution::block_cyclic(
    rt::Process& p, i64 n, i64 block_size) {
  CHAOS_CHECK(n >= 0, "BLOCK_CYCLIC: negative extent");
  CHAOS_CHECK(block_size >= 1, "BLOCK_CYCLIC: block size must be >= 1");
  auto d = std::shared_ptr<Distribution>(new Distribution());
  d->dad_ = Dad{DistKind::BlockCyclic, n, p.nprocs(), block_size,
                rt::collective_counter(p)};
  d->my_rank_ = p.rank();
  return d;
}

std::shared_ptr<const Distribution> Distribution::irregular_from_map(
    rt::Process& p, std::span<const i64> map_slice,
    const Distribution& map_dist, i64 page_size, bool replicated) {
  CHAOS_CHECK(static_cast<i64>(map_slice.size()) == map_dist.my_local_size(),
              "irregular_from_map: map slice not aligned with the map "
              "distribution");
  const i64 n = map_dist.size();

  // Route each global to its assigned owner in one exchange.
  std::vector<std::vector<i64>> outgoing(static_cast<std::size_t>(p.nprocs()));
  for (std::size_t l = 0; l < map_slice.size(); ++l) {
    const i64 owner = map_slice[l];
    CHAOS_CHECK(owner >= 0 && owner < p.nprocs(),
                "irregular_from_map: map names process " +
                    std::to_string(owner) + " outside the machine");
    outgoing[static_cast<std::size_t>(owner)].push_back(
        map_dist.my_global_of(static_cast<i64>(l)));
  }
  const auto incoming = rt::alltoallv(p, outgoing);

  auto d = std::shared_ptr<Distribution>(new Distribution());
  d->my_rank_ = p.rank();
  for (const auto& block : incoming) {
    d->my_globals_.insert(d->my_globals_.end(), block.begin(), block.end());
  }
  std::sort(d->my_globals_.begin(), d->my_globals_.end());
  p.clock().charge_ops(static_cast<i64>(d->my_globals_.size()),
                       p.params().mem_us_per_word);

  d->local_sizes_ = rt::allgather(p, static_cast<i64>(d->my_globals_.size()));
  d->table_ =
      TranslationTable::build(p, n, d->my_globals_, page_size, replicated);
  d->dad_ = Dad{DistKind::Irregular, n, p.nprocs(), page_size,
                rt::collective_counter(p)};
  return d;
}

i64 Distribution::local_size(int rank) const {
  CHAOS_CHECK(rank >= 0 && rank < dad_.nprocs, "local_size: bad rank");
  const i64 n = dad_.size;
  const i64 P = dad_.nprocs;
  const i64 r = rank;
  switch (dad_.kind) {
    case DistKind::Block: {
      const i64 bs = dad_.param;
      return std::clamp<i64>(n - r * bs, 0, bs);
    }
    case DistKind::Cyclic:
      return r < n ? (n - r + P - 1) / P : 0;
    case DistKind::BlockCyclic: {
      const i64 b = dad_.param;
      const i64 nb = (n + b - 1) / b;  // total bricks (last may be partial)
      if (r >= nb) return 0;
      const i64 bricks = (nb - 1 - r) / P + 1;
      const i64 last_brick = nb - 1;
      if (last_brick % P == r) {
        return (bricks - 1) * b + (n - last_brick * b);
      }
      return bricks * b;
    }
    case DistKind::Irregular:
      return local_sizes_[static_cast<std::size_t>(rank)];
  }
  return 0;
}

std::vector<i64> Distribution::my_globals() const {
  if (dad_.kind == DistKind::Irregular) return my_globals_;
  std::vector<i64> out(static_cast<std::size_t>(my_local_size()));
  for (std::size_t l = 0; l < out.size(); ++l) {
    out[l] = global_of(my_rank_, static_cast<i64>(l));
  }
  return out;
}

i64 Distribution::global_of(int rank, i64 l) const {
  const i64 P = dad_.nprocs;
  switch (dad_.kind) {
    case DistKind::Block: return rank * dad_.param + l;
    case DistKind::Cyclic: return l * P + rank;
    case DistKind::BlockCyclic: {
      const i64 b = dad_.param;
      const i64 brick = (l / b) * P + rank;
      return brick * b + l % b;
    }
    case DistKind::Irregular:
      CHAOS_CHECK(rank == my_rank_,
                  "global_of: irregular ownership is materialized only for "
                  "this process");
      return my_globals_[static_cast<std::size_t>(l)];
  }
  return -1;
}

i64 Distribution::owner_of(i64 g) const {
  CHAOS_CHECK(g >= 0 && g < dad_.size, "owner_of: index out of range");
  switch (dad_.kind) {
    case DistKind::Block: return g / dad_.param;
    case DistKind::Cyclic: return g % dad_.nprocs;
    case DistKind::BlockCyclic: return (g / dad_.param) % dad_.nprocs;
    case DistKind::Irregular: break;
  }
  throw ChaosError(
      "owner_of: no closed form for IRREGULAR distributions — use locate()");
}

i64 Distribution::local_index_of(i64 g) const {
  CHAOS_CHECK(g >= 0 && g < dad_.size, "local_index_of: index out of range");
  switch (dad_.kind) {
    case DistKind::Block: return g % dad_.param;
    case DistKind::Cyclic: return g / dad_.nprocs;
    case DistKind::BlockCyclic: {
      const i64 b = dad_.param;
      return (g / b / dad_.nprocs) * b + g % b;
    }
    case DistKind::Irregular: break;
  }
  throw ChaosError(
      "local_index_of: no closed form for IRREGULAR distributions — use "
      "locate()");
}

std::vector<Entry> Distribution::locate(rt::Process& p,
                                        std::span<const i64> queries) const {
  std::vector<Entry> out;
  locate_into(p, queries, out);
  return out;
}

void Distribution::locate_into(rt::Process& p, std::span<const i64> queries,
                               std::vector<Entry>& out,
                               i64 extra_charged_queries) const {
  if (dad_.kind == DistKind::Irregular) {
    out = table_->dereference(p, queries, extra_charged_queries);
    return;
  }
  out.resize(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const i64 g = queries[i];
    out[i] = Entry{static_cast<i32>(owner_of(g)), local_index_of(g)};
  }
  p.clock().charge_ops(static_cast<i64>(queries.size()) +
                           extra_charged_queries,
                       p.params().mem_us_per_word);
}

void Distribution::locate_flat_into(rt::Process& p,
                                    std::span<const i64> queries,
                                    std::vector<Entry>& out,
                                    DereferenceWorkspace& ws,
                                    i64 extra_charged_queries) const {
  if (dad_.kind == DistKind::Irregular) {
    table_->dereference_flat(p, queries, out, ws, extra_charged_queries);
    return;
  }
  locate_into(p, queries, out, extra_charged_queries);
}

}  // namespace chaos::dist
