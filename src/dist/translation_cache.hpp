// Persistent software translation cache (CHAOS: "software caching of
// dereferenced addresses"). A per-process, bounded, open-addressing table
// mapping global index -> (owning process, local offset) for ONE distribution
// instance, kept alive across inspector invocations. Repeated inspections
// over overlapping index sets resolve cached globals locally and only ship
// the misses through the translation table's locate round — when every rank
// hits for every distinct reference, the round is skipped entirely.
//
// Invalidation protocol (DESIGN.md §8): the cache is *bound* to a DAD
// incarnation plus a ReuseRegistry nmod stamp. REDISTRIBUTE mints a new DAD
// and bumps nmod, so rebinding after a remap flushes every entry in O(1)
// (epoch tag). Using a cache still bound to the pre-remap incarnation is a
// hard error, never a stale hit: the inspector checks the binding before the
// first probe and throws ChaosError.
#pragma once

#include <vector>

#include "dist/dad.hpp"
#include "dist/translation_table.hpp"

namespace chaos::dist {

class TranslationCache {
 public:
  struct Stats {
    i64 hits = 0;
    i64 misses = 0;
    i64 insertions = 0;
    i64 evictions = 0;  ///< inserts that displaced a live entry (table full)
    i64 flushes = 0;    ///< rebinds/invalidations that dropped all entries
  };

  /// @p capacity is rounded up to a power of two (minimum 16) and fixed for
  /// the cache's lifetime: all storage is allocated here, so probes and
  /// inserts never touch the heap.
  explicit TranslationCache(i64 capacity = 1 << 16);

  /// Binds the cache to distribution instance @p dad with modification stamp
  /// @p stamp (callers with a ReuseRegistry pass reg.last_mod(dad); 0 is fine
  /// for immutable distributions). Rebinding with the same (incarnation,
  /// stamp) keeps every entry; any change flushes first — the conservative
  /// direction, mirroring the Section 3 reuse guard.
  void bind(const Dad& dad, u64 stamp = 0);

  [[nodiscard]] bool bound() const { return bound_; }
  /// True iff the cache is bound to exactly this distribution instance.
  [[nodiscard]] bool accepts(const Dad& dad) const {
    return bound_ && dad_ == dad;
  }
  [[nodiscard]] u64 bound_stamp() const { return stamp_; }

  /// Drops every entry (O(1), epoch bump) and the binding.
  void invalidate();

  /// Probe for @p g; fills @p out and counts a hit, or counts a miss.
  [[nodiscard]] bool try_get(i64 g, Entry& out);

  /// Inserts (or refreshes) @p g. Bounded: probing is capped, and a full
  /// neighborhood evicts the home slot instead of growing the table.
  void put(i64 g, const Entry& e);

  [[nodiscard]] i64 capacity() const { return static_cast<i64>(mask_ + 1); }
  [[nodiscard]] i64 size() const { return size_; }
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  static constexpr int kProbeLimit = 8;

  [[nodiscard]] std::size_t home_slot(i64 g) const {
    return static_cast<std::size_t>(detail::mix64(static_cast<u64>(g))) &
           mask_;
  }
  [[nodiscard]] bool live(std::size_t s) const {
    return slot_epoch_[s] == epoch_;
  }

  std::size_t mask_ = 0;
  u64 epoch_ = 1;  ///< slots with a different epoch tag are logically empty
  std::vector<i64> slot_key_;
  std::vector<Entry> slot_val_;
  std::vector<u64> slot_epoch_;
  i64 size_ = 0;

  bool bound_ = false;
  Dad dad_;
  u64 stamp_ = 0;

  Stats stats_;
};

}  // namespace chaos::dist
