// Persistent software translation cache (CHAOS: "software caching of
// dereferenced addresses"). A per-process, bounded, open-addressing table
// mapping global index -> (owning process, local offset) for ONE distribution
// instance, kept alive across inspector invocations. Repeated inspections
// over overlapping index sets resolve cached globals locally and only ship
// the misses through the translation table's locate round — when every rank
// hits for every distinct reference, the round is skipped entirely.
//
// Invalidation protocol (DESIGN.md §8): the cache is *bound* to a DAD
// incarnation plus a ReuseRegistry nmod stamp. REDISTRIBUTE mints a new DAD
// and bumps nmod, so rebinding after a remap flushes every entry in O(1)
// (epoch tag). Using a cache still bound to the pre-remap incarnation is a
// hard error, never a stale hit: the inspector checks the binding before the
// first probe and throws ChaosError.
#pragma once

#include <span>
#include <vector>

#include "dist/dad.hpp"
#include "dist/translation_table.hpp"

namespace chaos::dist {

class TranslationCache {
 public:
  struct Stats {
    i64 hits = 0;
    i64 misses = 0;
    i64 insertions = 0;
    i64 evictions = 0;  ///< inserts that displaced a live entry (table full)
    i64 flushes = 0;    ///< rebinds/invalidations that dropped all entries
    i64 staged_commits = 0;   ///< staged entries published by commit_staged
    i64 staged_discards = 0;  ///< staged entries dropped by discard_staged
  };

  /// @p capacity is rounded up to a power of two (minimum 16) and fixed for
  /// the cache's lifetime: all storage is allocated here, so probes and
  /// inserts never touch the heap.
  explicit TranslationCache(i64 capacity = 1 << 16);

  /// Binds the cache to distribution instance @p dad with modification stamp
  /// @p stamp (callers with a ReuseRegistry pass reg.last_mod(dad); 0 is fine
  /// for immutable distributions). Rebinding with the same (incarnation,
  /// stamp) keeps every entry; any change flushes first — the conservative
  /// direction, mirroring the Section 3 reuse guard.
  void bind(const Dad& dad, u64 stamp = 0);

  [[nodiscard]] bool bound() const { return bound_; }
  /// True iff the cache is bound to exactly this distribution instance.
  [[nodiscard]] bool accepts(const Dad& dad) const {
    return bound_ && dad_ == dad;
  }
  [[nodiscard]] u64 bound_stamp() const { return stamp_; }

  /// Drops every entry (O(1), epoch bump) and the binding.
  void invalidate();

  /// Probe for @p g; fills @p out and counts a hit, or counts a miss.
  [[nodiscard]] bool try_get(i64 g, Entry& out);

  /// Delta-locate entry point (incremental schedule repair, DESIGN.md §14):
  /// probes @p globals[ids[k]] for every ordinal in @p ids, writing hits
  /// into @p entries_out[ids[k]] and appending the misses — ordinal and
  /// global — to @p miss_ids / @p miss_globals (cleared first). The repair
  /// path hands this its novel-global ordinals so only cache misses reach
  /// the translation-table locate round; the full inspector uses it over
  /// every distinct ordinal. Returns the miss count. Allocation-free once
  /// the output vectors are warm.
  i64 probe_batch(std::span<const i64> ids, std::span<const i64> globals,
                  std::span<Entry> entries_out, std::vector<i64>& miss_ids,
                  std::vector<i64>& miss_globals);

  /// Inserts (or refreshes) @p g. Bounded: probing is capped, and a full
  /// neighborhood evicts the home slot instead of growing the table.
  void put(i64 g, const Entry& e);

  // --- attempt quarantine (DESIGN.md §11) ----------------------------------
  // A retried inspection must not see insertions from the aborted attempt:
  // a pre-warmed cache would change the miss vote and the locate round, so
  // the successful retry's modeled clocks would diverge from a clean run.
  // The inspector therefore STAGES insertions during localization and
  // publishes them only after the schedule validates.

  /// Appends (g, e) to the staging area without touching the table. The
  /// staging vectors keep their capacity across clears, so warm attempts
  /// stage without allocating.
  void stage_put(i64 g, const Entry& e);
  /// Publishes every staged entry through put() and empties the staging
  /// area. Call after the attempt's product is known-good.
  void commit_staged();
  /// Drops every staged entry (the aborted attempt's quarantine).
  void discard_staged();
  [[nodiscard]] i64 staged() const {
    return static_cast<i64>(staged_keys_.size());
  }

  [[nodiscard]] i64 capacity() const { return static_cast<i64>(mask_ + 1); }
  [[nodiscard]] i64 size() const { return size_; }
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  static constexpr int kProbeLimit = 8;

  [[nodiscard]] std::size_t home_slot(i64 g) const {
    return static_cast<std::size_t>(detail::mix64(static_cast<u64>(g))) &
           mask_;
  }
  [[nodiscard]] bool live(std::size_t s) const {
    return slot_epoch_[s] == epoch_;
  }

  std::size_t mask_ = 0;
  u64 epoch_ = 1;  ///< slots with a different epoch tag are logically empty
  std::vector<i64> slot_key_;
  std::vector<Entry> slot_val_;
  std::vector<u64> slot_epoch_;
  i64 size_ = 0;

  bool bound_ = false;
  Dad dad_;
  u64 stamp_ = 0;

  std::vector<i64> staged_keys_;    // clear-not-shrink: warm staging is
  std::vector<Entry> staged_vals_;  // allocation-free
  Stats stats_;
};

}  // namespace chaos::dist
