// Distributions of a 1-D global index space over the machine's processes.
// The three regular kinds (HPF conventions) are pure closed forms: owner_of /
// local_index_of / global_of are O(1) arithmetic and locate() never
// communicates. IRREGULAR distributions carry an explicit translation table
// (paged or replicated, see dist/translation_table.hpp); their locate() is
// one batched collective dereference.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "dist/dad.hpp"
#include "dist/translation_table.hpp"
#include "rt/machine.hpp"

namespace chaos::dist {

class Distribution {
 public:
  /// BLOCK: contiguous chunks of ceil(n/P), process r owns
  /// [r*bs, min(n, (r+1)*bs)).
  [[nodiscard]] static std::shared_ptr<const Distribution> block(
      rt::Process& p, i64 n);

  /// CYCLIC: process r owns globals g with g % P == r, local index g / P.
  [[nodiscard]] static std::shared_ptr<const Distribution> cyclic(
      rt::Process& p, i64 n);

  /// BLOCK_CYCLIC(b): bricks of b consecutive globals dealt round-robin.
  [[nodiscard]] static std::shared_ptr<const Distribution> block_cyclic(
      rt::Process& p, i64 n, i64 block_size);

  /// IRREGULAR from the paper's map array: map_slice[l] names the process
  /// that shall own global map_dist.global_of(rank, l). Collective. Each
  /// owner stores its globals in ascending order; ownership is recorded in a
  /// translation table (paged unless @p replicated).
  [[nodiscard]] static std::shared_ptr<const Distribution> irregular_from_map(
      rt::Process& p, std::span<const i64> map_slice,
      const Distribution& map_dist, i64 page_size = 4096,
      bool replicated = false);

  [[nodiscard]] DistKind kind() const { return dad_.kind; }
  [[nodiscard]] i64 size() const { return dad_.size; }
  [[nodiscard]] const Dad& dad() const { return dad_; }
  [[nodiscard]] int nprocs() const { return dad_.nprocs; }

  /// Number of elements process @p rank owns. O(1) for every kind.
  [[nodiscard]] i64 local_size(int rank) const;
  [[nodiscard]] i64 my_local_size() const { return local_size(my_rank_); }

  /// This process's owned globals, in local-index order (ascending for
  /// IRREGULAR by construction; regular kinds follow their closed form).
  [[nodiscard]] std::vector<i64> my_globals() const;

  /// Global index of local element @p l on process @p rank. For IRREGULAR
  /// only this process's own slice is materialized, so rank must be mine.
  [[nodiscard]] i64 global_of(int rank, i64 l) const;
  [[nodiscard]] i64 my_global_of(i64 l) const {
    return global_of(my_rank_, l);
  }

  /// Closed-form owner / local offset; throws for IRREGULAR (use locate).
  [[nodiscard]] i64 owner_of(i64 g) const;
  [[nodiscard]] i64 local_index_of(i64 g) const;

  /// Collective. Resolves a batch of global indices to (owner, local)
  /// entries. Regular kinds answer locally with pure arithmetic; IRREGULAR
  /// forwards to the translation table (one exchange round when paged, none
  /// when replicated).
  [[nodiscard]] std::vector<Entry> locate(rt::Process& p,
                                          std::span<const i64> queries) const;

  /// Collective, allocation-aware variant: resolves into @p out (resized in
  /// place, so a caller reusing one buffer across calls pays zero heap
  /// allocations for regular kinds; IRREGULAR still allocates inside the
  /// table dereference). Same answers and identical modeled charges as
  /// locate(). @p extra_charged_queries is model compensation folded into
  /// the SAME clock charge as the real queries (one fused charge keeps the
  /// virtual clock bit-identical to a single locate over queries + extras):
  /// the dedup-first inspector passes the collapsed duplicates here.
  void locate_into(rt::Process& p, std::span<const i64> queries,
                   std::vector<Entry>& out,
                   i64 extra_charged_queries = 0) const;

  /// Collective, zero-allocation variant: IRREGULAR distributions resolve
  /// through TranslationTable::dereference_flat staged in @p ws (0 heap
  /// allocations on a warm repeat call), regular kinds answer with the same
  /// closed-form arithmetic — and identical charge — as locate_into. Answers
  /// always match locate_into; the IRREGULAR modeled charge does NOT (3
  /// collectives vs 2, see dereference_flat), which is why this is a
  /// separate opt-in entry point.
  void locate_flat_into(rt::Process& p, std::span<const i64> queries,
                        std::vector<Entry>& out, DereferenceWorkspace& ws,
                        i64 extra_charged_queries = 0) const;

  /// The backing translation table (IRREGULAR only; nullptr otherwise).
  [[nodiscard]] const TranslationTable* table() const { return table_.get(); }

 private:
  Distribution() = default;

  Dad dad_;
  int my_rank_ = 0;
  std::vector<i64> local_sizes_;  ///< IRREGULAR: per-rank owned counts
  std::vector<i64> my_globals_;   ///< IRREGULAR: my globals, ascending
  std::shared_ptr<const TranslationTable> table_;
};

}  // namespace chaos::dist
