#include "dist/remap.hpp"

namespace chaos::dist {

RemapPlan build_remap(rt::Process& p, const Distribution& from,
                      const Distribution& to) {
  CHAOS_CHECK(from.size() == to.size(),
              "REDISTRIBUTE: distributions differ in global size (" +
                  std::to_string(from.size()) + " vs " +
                  std::to_string(to.size()) + ")");
  RemapPlan plan;
  plan.size = from.size();
  plan.nlocal_from = from.my_local_size();
  plan.nlocal_to = to.my_local_size();
  plan.from_incarnation = from.dad().incarnation;
  plan.to_incarnation = to.dad().incarnation;
  plan.send_pos.resize(static_cast<std::size_t>(p.nprocs()));

  // One batched locate of every source global against the target layout.
  const auto globals = from.my_globals();
  const auto entries = to.locate(p, globals);

  // Sender side: source positions per destination (ascending by position, so
  // the receiver's placement list below is deterministically aligned).
  std::vector<std::vector<i64>> dest_local(
      static_cast<std::size_t>(p.nprocs()));
  i64 moved = 0;
  for (std::size_t l = 0; l < entries.size(); ++l) {
    const auto dest = static_cast<std::size_t>(entries[l].proc);
    plan.send_pos[dest].push_back(static_cast<i64>(l));
    dest_local[dest].push_back(entries[l].local);
    if (static_cast<int>(dest) != p.rank()) ++moved;
  }
  p.clock().charge_ops(static_cast<i64>(entries.size()),
                       p.params().mem_us_per_word);

  // Receiver side: learn where each arriving value lands in my target
  // segment (the senders know the target local indices from locate).
  plan.place_pos = rt::alltoallv(p, dest_local);
  plan.moved_elements = rt::allreduce_sum(p, moved);
  return plan;
}

}  // namespace chaos::dist
