#include <cctype>
#include <cstdlib>

#include "lang/token.hpp"

namespace chaos::lang {

std::vector<Token> tokenize_line(const std::string& line, int line_no) {
  std::vector<Token> out;
  std::size_t i = 0;
  const auto n = line.size();
  auto push = [&](Tok kind, std::string text, std::size_t col) {
    Token t;
    t.kind = kind;
    t.text = std::move(text);
    t.line = line_no;
    t.column = static_cast<int>(col) + 1;
    out.push_back(std::move(t));
  };

  while (i < n) {
    const char c = line[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '!') break;  // trailing comment
    const std::size_t start = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string ident;
      while (i < n && (std::isalnum(static_cast<unsigned char>(line[i])) ||
                       line[i] == '_' || line[i] == '$')) {
        ident.push_back(static_cast<char>(
            std::toupper(static_cast<unsigned char>(line[i]))));
        ++i;
      }
      // REAL*8 is one declaration keyword: glue the "*8" suffix on.
      if (ident == "REAL" && i + 1 < n && line[i] == '*' &&
          std::isdigit(static_cast<unsigned char>(line[i + 1]))) {
        ident.push_back('*');
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(line[i]))) {
          ident.push_back(line[i]);
          ++i;
        }
      }
      push(Tok::Ident, std::move(ident), start);
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(line[i + 1])))) {
      std::size_t j = i;
      while (j < n && (std::isdigit(static_cast<unsigned char>(line[j])) ||
                       line[j] == '.')) {
        ++j;
      }
      // Exponent part: 1.5e-3, 2E+10, 1d0 (Fortran double exponent).
      if (j < n && (line[j] == 'e' || line[j] == 'E' || line[j] == 'd' ||
                    line[j] == 'D')) {
        std::size_t k = j + 1;
        if (k < n && (line[k] == '+' || line[k] == '-')) ++k;
        if (k < n && std::isdigit(static_cast<unsigned char>(line[k]))) {
          j = k;
          while (j < n && std::isdigit(static_cast<unsigned char>(line[j]))) {
            ++j;
          }
        }
      }
      std::string text = line.substr(i, j - i);
      for (auto& ch : text) {
        if (ch == 'd' || ch == 'D') ch = 'e';  // Fortran double exponent
      }
      Token t;
      t.kind = Tok::Number;
      t.text = text;
      t.number = std::strtod(text.c_str(), nullptr);
      t.line = line_no;
      t.column = static_cast<int>(start) + 1;
      out.push_back(std::move(t));
      i = j;
      continue;
    }
    switch (c) {
      case '(': push(Tok::LParen, "(", start); ++i; break;
      case ')': push(Tok::RParen, ")", start); ++i; break;
      case ',': push(Tok::Comma, ",", start); ++i; break;
      case '=': push(Tok::Assign, "=", start); ++i; break;
      case '+': push(Tok::Plus, "+", start); ++i; break;
      case '-': push(Tok::Minus, "-", start); ++i; break;
      case '*':
        if (i + 1 < n && line[i + 1] == '*') {
          push(Tok::Power, "**", start);
          i += 2;
        } else {
          push(Tok::Star, "*", start);
          ++i;
        }
        break;
      case '/': push(Tok::Slash, "/", start); ++i; break;
      default:
        throw LangError(std::string("unexpected character '") + c + "'",
                        line_no, static_cast<int>(start) + 1);
    }
  }
  Token end;
  end.kind = Tok::End;
  end.line = line_no;
  end.column = static_cast<int>(n) + 1;
  out.push_back(end);
  return out;
}

}  // namespace chaos::lang
