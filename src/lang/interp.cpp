#include "lang/interp.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <set>
#include <unordered_map>

#include "dist/remap.hpp"
#include "lang/token.hpp"
#include "rt/collectives.hpp"

namespace chaos::lang {

namespace {

[[noreturn]] void sema_fail(const std::string& msg, int line) {
  throw LangError(msg, line);
}

}  // namespace

// ---------------------------------------------------------------------------
// Runtime state
// ---------------------------------------------------------------------------

struct ArrayInfo {
  ElemType type = ElemType::Real8;
  i64 size = -1;
  std::string decomp;
  int decl_line = 0;
  std::unique_ptr<dist::DistributedArray<f64>> real;
  std::unique_ptr<dist::DistributedArray<i64>> integer;

  [[nodiscard]] bool materialized() const {
    return real != nullptr || integer != nullptr;
  }
  [[nodiscard]] const dist::Distribution& dist() const {
    return real ? real->dist() : integer->dist();
  }
  [[nodiscard]] std::shared_ptr<const dist::Distribution> dist_ptr() const {
    return real ? real->dist_ptr() : integer->dist_ptr();
  }
  [[nodiscard]] const dist::Dad& dad() const { return dist().dad(); }
};

struct DecompInfo {
  i64 size = -1;
  int decl_line = 0;
  std::shared_ptr<const dist::Distribution> dist;
  std::vector<std::string> aligned;
};

/// Inspector product of one FORALL (cached under the Section 3 guard).
struct LoopPlan {
  std::shared_ptr<const dist::Distribution> iter_space;
  std::shared_ptr<const dist::Distribution> data_dist;  // may be null
  core::IterationPartition iters;
  std::vector<i64> iter_ids;  ///< my 0-based iteration ids, local order

  std::vector<std::string> ind_names;
  std::vector<std::vector<i64>> ind_values;  ///< remapped, 0-based
  core::LocalizedMany data_loc;              ///< one batch per ind array
  /// One inspector workspace per localized distribution (data_dist vs
  /// iter_space), so an attached translation cache binds to one DAD.
  core::InspectorWorkspace iws;         ///< localizes against data_dist
  core::InspectorWorkspace direct_iws;  ///< localizes against iter_space

  bool has_direct = false;
  core::Localized direct_loc;  ///< batch = iter_ids against iter_space

  /// How each statement's target is addressed.
  struct WriteInfo {
    LoopReduceOp op = LoopReduceOp::Assign;
    std::string array;
    int refs_group = 0;    ///< 0: data_loc batch, 1: direct_loc, 2: own assign
    int batch = -1;        ///< data_loc batch index (group 0)
    int assign_slot = -1;  ///< index into assign_loc (group 2)
    int acc_slot = -1;     ///< accumulator (reduce ops)
  };
  std::vector<WriteInfo> writes;            ///< parallel to the FORALL body
  std::vector<core::Localized> assign_loc;  ///< private schedules for assigns

  struct AccInfo {
    std::string array;
    core::ReduceOp op = core::ReduceOp::Add;
    int refs_group = 0;  ///< 0 = data group, 1 = direct group
  };
  std::vector<AccInfo> accs;

  /// Runtime compilation of the FORALL body: each statement's expression is
  /// flattened into stack-machine bytecode with operand slots resolved at
  /// inspector time — the "runtime compilation" the paper's title refers to
  /// taken one step further than tree-walking.
  struct OperandSpec {
    int group = 0;  ///< 0: data_loc batch, 1: direct_loc
    int batch = -1;
    const ArrayInfo* array = nullptr;
    int ghost_slot = -1;  ///< index into ghost_data / ghost_direct
  };
  enum class Op : u8 {
    Imm, Scalar, IterVal, Load, Neg, Add, Sub, Mul, Div, Pow,
    Sqrt, Abs, Sin, Cos, Exp, Min2, Max2, Mod2,
  };
  struct Instr {
    Op op = Op::Imm;
    i32 slot = -1;          ///< operand-table slot (Load)
    f64 imm = 0.0;          ///< literal (Imm)
    const i64* scalar = nullptr;  ///< bound scalar storage (Scalar)
  };
  std::vector<OperandSpec> operands;
  std::vector<std::vector<Instr>> code;  ///< one program per body statement
  int max_stack = 0;

  std::vector<const ArrayInfo*> reads_data;    ///< gathered via data_loc
  std::vector<const ArrayInfo*> reads_direct;  ///< gathered via direct_loc
  /// Ghost scratch per read array (index-aligned with reads_*).
  std::vector<std::vector<f64>> ghost_data;
  std::vector<std::vector<f64>> ghost_direct;
  /// Executor staging shared by every gather/scatter through this plan
  /// (staging() re-slices per schedule), plus reusable accumulator scratch —
  /// all sized on the first sweep so later sweeps allocate nothing.
  core::ExecutorWorkspace<f64> ws;
  std::vector<std::vector<f64>> acc_scratch;     ///< parallel to accs
  std::vector<std::vector<f64>> assign_scratch;  ///< parallel to assign_loc

  i64 expr_flops_per_iter = 0;
  i64 mem_refs_per_iter = 0;
  /// Build validity stamp: a failed (thrown-through) build_loop_plan leaves
  /// the plan not ready and execute_loop refuses it (DESIGN.md §11).
  core::PlanBuildState build;
};

struct Instance::State {
  std::map<std::string, ArrayInfo> arrays;
  std::map<std::string, DecompInfo> decomps;
  std::map<std::string, std::shared_ptr<const core::GeoCol>> geocols;
  std::map<std::string, std::shared_ptr<const dist::Distribution>> dists;
  std::map<std::string, i64> scalars;
  core::ReuseRegistry registry;
  core::InspectorCache cache;
  /// Section 3 applied to the mapper coupler: cached GeoCoL graphs and
  /// partitioner outputs, guarded by the DADs / last_mod of their source
  /// arrays, so an unchanged CONSTRUCT + SET inside a time-step loop costs
  /// one guard check instead of a graph assembly and a repartition.
  core::InspectorCache mapper_cache;
  std::map<std::string, std::vector<dist::Dad>> geocol_sources;
};

namespace {
/// Cached products of the mapper-coupler directives.
struct GeoColProduct {
  std::shared_ptr<const core::GeoCol> geocol;
};
struct DistProduct {
  std::shared_ptr<const dist::Distribution> dist;
};
}  // namespace

// ---------------------------------------------------------------------------
// Instance plumbing
// ---------------------------------------------------------------------------

Instance::Instance(const Program& program) : program_(&program) {}
Instance::~Instance() = default;

void Instance::set_param(const std::string& name, i64 value) {
  std::string key = name;
  std::transform(key.begin(), key.end(), key.begin(), ::toupper);
  host_params_[key] = value;
}

void Instance::bind_real(const std::string& array,
                         std::vector<f64> global_values) {
  std::string key = array;
  std::transform(key.begin(), key.end(), key.begin(), ::toupper);
  real_bindings_[key] = std::move(global_values);
}

void Instance::bind_int(const std::string& array,
                        std::vector<i64> global_values) {
  std::string key = array;
  std::transform(key.begin(), key.end(), key.begin(), ::toupper);
  int_bindings_[key] = std::move(global_values);
}

const core::InspectorCache::Stats& Instance::cache_stats() const {
  CHAOS_CHECK(state_ != nullptr, "cache_stats: program has not executed");
  return state_->cache.stats();
}

const core::InspectorCache::Stats& Instance::mapper_cache_stats() const {
  CHAOS_CHECK(state_ != nullptr,
              "mapper_cache_stats: program has not executed");
  return state_->mapper_cache.stats();
}

const core::ReuseRegistry& Instance::reuse_registry() const {
  CHAOS_CHECK(state_ != nullptr, "reuse_registry: program has not executed");
  return state_->registry;
}

namespace {

i64 resolve_size(const SizeExpr& s, const std::map<std::string, i64>& scalars) {
  if (s.literal >= 0) return s.literal;
  const auto it = scalars.find(s.param);
  if (it == scalars.end()) {
    sema_fail("unbound parameter '" + s.param +
                  "' (host must call set_param)",
              s.line);
  }
  return it->second;
}

}  // namespace

// ---------------------------------------------------------------------------
// FORALL: analysis, inspection, execution
// ---------------------------------------------------------------------------

namespace {

struct ForallContext {
  rt::Process* p;
  Instance::State* st;
  const Forall* f;
  i64 n = 0;  // iteration count
};

/// Walks an expression collecting indirection-array names, read arrays, and
/// cost estimates.
struct ExprScan {
  std::vector<std::string> ind_names;
  std::set<std::string> read_data;    // arrays read via indirection
  std::set<std::string> read_direct;  // arrays read as a(i)
  i64 flops = 0;
  i64 mem_refs = 0;

  void note_index(const IndexRef& idx) {
    if (!idx.direct) {
      if (std::find(ind_names.begin(), ind_names.end(), idx.ind_array) ==
          ind_names.end()) {
        ind_names.push_back(idx.ind_array);
      }
      ++mem_refs;
    }
  }

  void scan(const Expr& e) {
    ++flops;
    if (const auto* a = std::get_if<Expr::ArrayRef>(&e.node)) {
      if (!a->array.empty()) {
        note_index(a->index);
        // Compiler-generated addressing: a guarded local/ghost select per
        // reference on top of the load itself.
        ++flops;
        ++mem_refs;
        (a->index.direct ? read_direct : read_data).insert(a->array);
      }
      return;
    }
    if (const auto* u = std::get_if<Expr::Unary>(&e.node)) {
      scan(*u->operand);
      return;
    }
    if (const auto* b = std::get_if<Expr::Binary>(&e.node)) {
      scan(*b->lhs);
      scan(*b->rhs);
      return;
    }
    if (const auto* c = std::get_if<Expr::Call>(&e.node)) {
      flops += 8;  // intrinsics cost more than one op
      for (const auto& arg : c->args) scan(*arg);
      return;
    }
  }
};

ArrayInfo& lookup_array(Instance::State& st, const std::string& name,
                        int line) {
  const auto it = st.arrays.find(name);
  if (it == st.arrays.end()) sema_fail("unknown array '" + name + "'", line);
  if (!it->second.materialized()) {
    sema_fail("array '" + name +
                  "' is not materialized (missing ALIGN or DISTRIBUTE)",
              line);
  }
  return it->second;
}

/// Flattens one expression into postfix stack-machine bytecode, resolving
/// every array reference to an operand-table slot. Returns the stack depth
/// the emitted code needs.
class ExprCompiler {
 public:
  ExprCompiler(LoopPlan& plan, Instance::State& st,
               const std::map<std::string, int>& batch_of,
               const std::map<std::string, int>& ghost_data_slot,
               const std::map<std::string, int>& ghost_direct_slot)
      : plan_(plan),
        st_(st),
        batch_of_(batch_of),
        ghost_data_slot_(ghost_data_slot),
        ghost_direct_slot_(ghost_direct_slot) {}

  int compile(const Expr& e, std::vector<LoopPlan::Instr>& out) {
    using Op = LoopPlan::Op;
    if (const auto* num = std::get_if<Expr::Num>(&e.node)) {
      out.push_back({Op::Imm, -1, num->value, nullptr});
      return 1;
    }
    if (const auto* s = std::get_if<Expr::Scalar>(&e.node)) {
      const auto it = st_.scalars.find(s->name);
      if (it == st_.scalars.end()) {
        sema_fail("unbound scalar '" + s->name + "'", e.line);
      }
      // std::map nodes are address-stable: bind the storage directly.
      out.push_back({Op::Scalar, -1, 0.0, &it->second});
      return 1;
    }
    if (const auto* a = std::get_if<Expr::ArrayRef>(&e.node)) {
      if (a->array.empty()) {
        out.push_back({Op::IterVal, -1, 0.0, nullptr});
        return 1;
      }
      LoopPlan::OperandSpec spec;
      spec.array = &lookup_array(st_, a->array, e.line);
      if (a->index.direct) {
        spec.group = 1;
        spec.ghost_slot = ghost_direct_slot_.at(a->array);
      } else {
        spec.group = 0;
        spec.batch = batch_of_.at(a->index.ind_array);
        spec.ghost_slot = ghost_data_slot_.at(a->array);
      }
      // Deduplicate identical operand specs.
      i32 slot = -1;
      for (std::size_t k = 0; k < plan_.operands.size(); ++k) {
        const auto& o = plan_.operands[k];
        if (o.group == spec.group && o.batch == spec.batch &&
            o.array == spec.array) {
          slot = static_cast<i32>(k);
          break;
        }
      }
      if (slot < 0) {
        slot = static_cast<i32>(plan_.operands.size());
        plan_.operands.push_back(spec);
      }
      out.push_back({Op::Load, slot, 0.0, nullptr});
      return 1;
    }
    if (const auto* u = std::get_if<Expr::Unary>(&e.node)) {
      const int d = compile(*u->operand, out);
      out.push_back({Op::Neg, -1, 0.0, nullptr});
      return d;
    }
    if (const auto* b = std::get_if<Expr::Binary>(&e.node)) {
      const int dl = compile(*b->lhs, out);
      const int dr = compile(*b->rhs, out);
      switch (b->op) {
        case BinOp::Add: out.push_back({Op::Add, -1, 0.0, nullptr}); break;
        case BinOp::Sub: out.push_back({Op::Sub, -1, 0.0, nullptr}); break;
        case BinOp::Mul: out.push_back({Op::Mul, -1, 0.0, nullptr}); break;
        case BinOp::Div: out.push_back({Op::Div, -1, 0.0, nullptr}); break;
        case BinOp::Pow: out.push_back({Op::Pow, -1, 0.0, nullptr}); break;
      }
      return std::max(dl, dr + 1);
    }
    if (const auto* c = std::get_if<Expr::Call>(&e.node)) {
      int depth = compile(*c->args[0], out);
      if (c->args.size() == 2) {
        depth = std::max(depth, compile(*c->args[1], out) + 1);
      }
      switch (c->fn) {
        case Intrinsic::Sqrt: out.push_back({Op::Sqrt, -1, 0.0, nullptr}); break;
        case Intrinsic::Abs: out.push_back({Op::Abs, -1, 0.0, nullptr}); break;
        case Intrinsic::Sin: out.push_back({Op::Sin, -1, 0.0, nullptr}); break;
        case Intrinsic::Cos: out.push_back({Op::Cos, -1, 0.0, nullptr}); break;
        case Intrinsic::Exp: out.push_back({Op::Exp, -1, 0.0, nullptr}); break;
        case Intrinsic::Min: out.push_back({Op::Min2, -1, 0.0, nullptr}); break;
        case Intrinsic::Max: out.push_back({Op::Max2, -1, 0.0, nullptr}); break;
        case Intrinsic::Mod: out.push_back({Op::Mod2, -1, 0.0, nullptr}); break;
      }
      return depth;
    }
    CHAOS_CHECK(false, "corrupt expression node");
    return 0;
  }

 private:
  LoopPlan& plan_;
  Instance::State& st_;
  const std::map<std::string, int>& batch_of_;
  const std::map<std::string, int>& ghost_data_slot_;
  const std::map<std::string, int>& ghost_direct_slot_;
};

/// Builds the inspector product for one FORALL. Collective. The caller
/// attributes virtual time of the sub-phases to PhaseTimes.
std::shared_ptr<LoopPlan> build_loop_plan(ForallContext& ctx,
                                          PhaseTimes& phases) {
  rt::Process& p = *ctx.p;
  Instance::State& st = *ctx.st;
  const Forall& f = *ctx.f;
  auto plan = std::make_shared<LoopPlan>();
  plan->build.begin_build();

  // ---- analysis ------------------------------------------------------------
  ExprScan scan;
  std::set<std::string> written;
  std::set<std::string> read_any;
  for (const auto& stmt : f.body) {
    scan.note_index(stmt.target_index);
    scan.scan(*stmt.value);
    written.insert(stmt.target_array);
    ++scan.mem_refs;  // the store
  }
  for (const auto& a : scan.read_data) read_any.insert(a);
  for (const auto& a : scan.read_direct) read_any.insert(a);
  for (const auto& w : written) {
    if (read_any.count(w)) {
      sema_fail("array '" + w +
                    "' is both read and written in one FORALL; only "
                    "left-hand-side reductions may carry dependences",
                f.line);
    }
  }
  plan->expr_flops_per_iter = scan.flops;
  plan->mem_refs_per_iter = scan.mem_refs;
  plan->ind_names = scan.ind_names;

  // ---- classify arrays, find the two anchor distributions -------------------
  // Indirection arrays: INTEGER, aligned with the iteration space.
  for (const auto& name : plan->ind_names) {
    ArrayInfo& a = lookup_array(st, name, f.line);
    if (a.type != ElemType::Integer) {
      sema_fail("indirection array '" + name + "' must be INTEGER", f.line);
    }
    if (!plan->iter_space) {
      plan->iter_space = a.dist_ptr();
    } else if (!(plan->iter_space->dad() == a.dad())) {
      sema_fail("indirection arrays of one FORALL must share a distribution",
                f.line);
    }
  }
  // Data arrays (via indirection): REAL*8, one common distribution.
  std::set<std::string> data_arrays = scan.read_data;
  std::set<std::string> direct_arrays = scan.read_direct;
  for (const auto& stmt : f.body) {
    (stmt.target_index.direct ? direct_arrays : data_arrays)
        .insert(stmt.target_array);
  }
  for (const auto& name : data_arrays) {
    ArrayInfo& a = lookup_array(st, name, f.line);
    if (a.type != ElemType::Real8) {
      sema_fail("data array '" + name + "' must be REAL*8", f.line);
    }
    if (!plan->data_dist) {
      plan->data_dist = a.dist_ptr();
    } else if (!(plan->data_dist->dad() == a.dad())) {
      sema_fail("data arrays of one FORALL must be aligned to one "
                "distribution",
                f.line);
    }
  }
  for (const auto& name : direct_arrays) {
    ArrayInfo& a = lookup_array(st, name, f.line);
    if (a.type != ElemType::Real8) {
      sema_fail("data array '" + name + "' must be REAL*8", f.line);
    }
    if (!plan->iter_space) {
      plan->iter_space = a.dist_ptr();
    } else if (!(plan->iter_space->dad() == a.dad())) {
      sema_fail("directly indexed arrays must be aligned with the "
                "iteration space",
                f.line);
    }
  }
  if (!plan->iter_space) {
    sema_fail("FORALL body references no distributed arrays", f.line);
  }
  if (plan->iter_space->size() != ctx.n) {
    sema_fail("FORALL bound does not match the iteration-space extent (" +
                  std::to_string(plan->iter_space->size()) + " vs " +
                  std::to_string(ctx.n) + ")",
              f.line);
  }

  // ---- phase B/C: iteration partition + indirection remap (remap time) -----
  {
    rt::ClockSection section(p.clock());
    std::vector<std::vector<i64>> ind_slices;  // 0-based data indices
    for (const auto& name : plan->ind_names) {
      ArrayInfo& a = st.arrays.at(name);
      std::vector<i64> vals(a.integer->local().begin(),
                            a.integer->local().end());
      for (auto& v : vals) {
        if (v < 1 || v > plan->data_dist->size()) {
          sema_fail("indirection array '" + name + "' holds index " +
                        std::to_string(v) + " outside 1.." +
                        std::to_string(plan->data_dist->size()),
                    f.line);
        }
        v -= 1;  // Fortran subscripts are 1-based
      }
      ind_slices.push_back(std::move(vals));
    }
    if (!plan->ind_names.empty()) {
      std::vector<std::span<const i64>> batches(ind_slices.begin(),
                                                ind_slices.end());
      plan->iters = core::partition_iterations(p, *plan->iter_space,
                                               *plan->data_dist, batches);
      for (auto& slice : ind_slices) {
        plan->ind_values.push_back(
            dist::apply_remap<i64>(p, plan->iters.remap, slice));
      }
    } else {
      // No indirection: iterations stay home.
      plan->iters.iter_dist = plan->iter_space;
      plan->iters.remap = dist::build_remap(p, *plan->iter_space,
                                            *plan->iter_space);
      plan->iters.moved_iterations = 0;
    }
    plan->iter_ids = plan->iters.iter_dist->my_globals();
    phases.remap += section.elapsed_sec();
  }

  // ---- phase D: localize (inspector time) -----------------------------------
  {
    rt::ClockSection section(p.clock());
    if (!plan->ind_values.empty()) {
      std::vector<std::span<const i64>> batches(plan->ind_values.begin(),
                                                plan->ind_values.end());
      core::localize_many(p, *plan->data_dist, batches, plan->iws,
                          plan->data_loc);
    }
    plan->has_direct = !direct_arrays.empty();
    if (plan->has_direct) {
      core::localize(p, *plan->iter_space, plan->iter_ids, plan->direct_iws,
                     plan->direct_loc);
    }

    // Ghost scratch per read array, then compile the body to bytecode with
    // every operand slot resolved against the freshly built schedules.
    std::map<std::string, int> batch_of;
    for (std::size_t k = 0; k < plan->ind_names.size(); ++k) {
      batch_of[plan->ind_names[k]] = static_cast<int>(k);
    }
    std::map<std::string, int> ghost_data_slot, ghost_direct_slot;
    for (const auto& name : scan.read_data) {
      ghost_data_slot[name] = static_cast<int>(plan->reads_data.size());
      plan->reads_data.push_back(&st.arrays.at(name));
    }
    for (const auto& name : scan.read_direct) {
      ghost_direct_slot[name] = static_cast<int>(plan->reads_direct.size());
      plan->reads_direct.push_back(&st.arrays.at(name));
    }
    plan->ghost_data.resize(plan->reads_data.size());
    plan->ghost_direct.resize(plan->reads_direct.size());

    ExprCompiler compiler(*plan, st, batch_of, ghost_data_slot,
                          ghost_direct_slot);
    plan->code.resize(f.body.size());
    for (std::size_t si = 0; si < f.body.size(); ++si) {
      plan->max_stack = std::max(
          plan->max_stack,
          compiler.compile(*f.body[si].value,
                           plan->code[si]));
    }
    CHAOS_CHECK(plan->max_stack <= 64, "FORALL expression too deep");

    // Resolve writes: reduces share the read groups' schedules; assigns get
    // private schedules so Replace never touches unwritten elements.
    std::map<std::pair<std::string, int>, int> acc_of;  // (array, group)
    for (std::size_t si = 0; si < f.body.size(); ++si) {
      const auto& stmt = f.body[si];
      LoopPlan::WriteInfo w;
      w.op = stmt.op;
      w.array = stmt.target_array;
      const bool direct = stmt.target_index.direct;
      if (stmt.op == LoopReduceOp::Assign) {
        w.refs_group = 2;
        w.assign_slot = static_cast<int>(plan->assign_loc.size());
        const dist::Distribution& target_dist =
            direct ? *plan->iter_space : *plan->data_dist;
        plan->assign_loc.emplace_back();
        if (direct) {
          core::localize(p, target_dist, plan->iter_ids, plan->direct_iws,
                         plan->assign_loc.back());
        } else {
          const int b = batch_of.at(stmt.target_index.ind_array);
          core::localize(p, target_dist,
                         plan->ind_values[static_cast<std::size_t>(b)],
                         plan->iws, plan->assign_loc.back());
        }
      } else {
        w.refs_group = direct ? 1 : 0;
        if (!direct) w.batch = batch_of.at(stmt.target_index.ind_array);
        const core::ReduceOp rop = stmt.op == LoopReduceOp::Add
                                       ? core::ReduceOp::Add
                                       : stmt.op == LoopReduceOp::Max
                                             ? core::ReduceOp::Max
                                             : core::ReduceOp::Min;
        const auto key = std::make_pair(stmt.target_array, w.refs_group);
        auto it = acc_of.find(key);
        if (it == acc_of.end()) {
          it = acc_of.emplace(key, static_cast<int>(plan->accs.size())).first;
          plan->accs.push_back(
              LoopPlan::AccInfo{stmt.target_array, rop, w.refs_group});
        } else if (plan->accs[static_cast<std::size_t>(it->second)].op !=
                   rop) {
          sema_fail("mixed reduction operators on array '" +
                        stmt.target_array + "' in one FORALL",
                    stmt.line);
        }
        w.acc_slot = it->second;
      }
      plan->writes.push_back(std::move(w));
    }
    phases.inspector += section.elapsed_sec();
  }
  plan->build.mark_built();
  return plan;
}

/// Resolved runtime operand for the bytecode evaluator: set up once per
/// executor invocation, read per iteration.
struct RuntimeOperand {
  const i64* refs = nullptr;    // localized index per local iteration
  const f64* local = nullptr;   // owned segment of the array
  i64 nlocal = 0;
  const f64* ghost = nullptr;   // gathered off-process copies
};

/// Runs one statement's bytecode for local iteration @p l.
f64 eval_code(const std::vector<LoopPlan::Instr>& code,
              const std::vector<RuntimeOperand>& ops, i64 l, f64 iter_value,
              f64* stack) {
  using Op = LoopPlan::Op;
  int sp = 0;
  for (const auto& ins : code) {
    switch (ins.op) {
      case Op::Imm: stack[sp++] = ins.imm; break;
      case Op::Scalar: stack[sp++] = static_cast<f64>(*ins.scalar); break;
      case Op::IterVal: stack[sp++] = iter_value; break;
      case Op::Load: {
        const RuntimeOperand& o = ops[static_cast<std::size_t>(ins.slot)];
        const i64 idx = o.refs[l];
        stack[sp++] = idx < o.nlocal
                          ? o.local[idx]
                          : o.ghost[idx - o.nlocal];
        break;
      }
      case Op::Neg: stack[sp - 1] = -stack[sp - 1]; break;
      case Op::Add: --sp; stack[sp - 1] += stack[sp]; break;
      case Op::Sub: --sp; stack[sp - 1] -= stack[sp]; break;
      case Op::Mul: --sp; stack[sp - 1] *= stack[sp]; break;
      case Op::Div: --sp; stack[sp - 1] /= stack[sp]; break;
      case Op::Pow:
        --sp;
        stack[sp - 1] = std::pow(stack[sp - 1], stack[sp]);
        break;
      case Op::Sqrt: stack[sp - 1] = std::sqrt(stack[sp - 1]); break;
      case Op::Abs: stack[sp - 1] = std::abs(stack[sp - 1]); break;
      case Op::Sin: stack[sp - 1] = std::sin(stack[sp - 1]); break;
      case Op::Cos: stack[sp - 1] = std::cos(stack[sp - 1]); break;
      case Op::Exp: stack[sp - 1] = std::exp(stack[sp - 1]); break;
      case Op::Min2:
        --sp;
        stack[sp - 1] = std::min(stack[sp - 1], stack[sp]);
        break;
      case Op::Max2:
        --sp;
        stack[sp - 1] = std::max(stack[sp - 1], stack[sp]);
        break;
      case Op::Mod2:
        --sp;
        stack[sp - 1] = std::fmod(stack[sp - 1], stack[sp]);
        break;
    }
  }
  return stack[0];
}

/// Executes one FORALL through its plan (phase E). Collective.
void execute_loop(rt::Process& p, const Forall& f, LoopPlan& plan,
                  Instance::State& st) {
  CHAOS_CHECK(plan.build.ready(),
              "execute_loop: plan build incomplete — a failed inspection "
              "must be retried before executing");
  // Gather ghosts for every read array.
  for (std::size_t k = 0; k < plan.reads_data.size(); ++k) {
    auto* a = const_cast<ArrayInfo*>(plan.reads_data[k]);
    plan.ghost_data[k].resize(
        static_cast<std::size_t>(plan.data_loc.schedule.nghost));
    core::gather_ghosts<f64>(p, plan.data_loc.schedule, a->real->local(),
                             plan.ghost_data[k], plan.ws);
  }
  for (std::size_t k = 0; k < plan.reads_direct.size(); ++k) {
    auto* a = const_cast<ArrayInfo*>(plan.reads_direct[k]);
    plan.ghost_direct[k].resize(
        static_cast<std::size_t>(plan.direct_loc.schedule.nghost));
    core::gather_ghosts<f64>(p, plan.direct_loc.schedule, a->real->local(),
                             plan.ghost_direct[k], plan.ws);
  }

  // Reduction accumulators: [0, nlocal + nghost) of the group's schedule.
  // Plan-owned scratch: assign() keeps capacity, so sweeps after the first
  // reuse the same heap blocks.
  plan.acc_scratch.resize(plan.accs.size());
  std::vector<std::vector<f64>>& acc = plan.acc_scratch;
  for (std::size_t k = 0; k < plan.accs.size(); ++k) {
    const auto& info = plan.accs[k];
    const auto& sched =
        info.refs_group == 0 ? plan.data_loc.schedule : plan.direct_loc.schedule;
    acc[k].assign(
        static_cast<std::size_t>(sched.nlocal_at_build + sched.nghost),
        core::reduce_identity<f64>(info.op));
  }
  // Assign staging: ghost region of each private schedule.
  plan.assign_scratch.resize(plan.assign_loc.size());
  std::vector<std::vector<f64>>& assign_ghost = plan.assign_scratch;
  for (std::size_t k = 0; k < plan.assign_loc.size(); ++k) {
    assign_ghost[k].assign(
        static_cast<std::size_t>(plan.assign_loc[k].schedule.nghost), 0.0);
  }

  // Resolve operand slots against current storage (pointers may move after
  // a redistribute, but that invalidates the plan anyway; the gathers above
  // have already sized the ghost vectors).
  std::vector<RuntimeOperand> ops(plan.operands.size());
  for (std::size_t k = 0; k < plan.operands.size(); ++k) {
    const auto& spec = plan.operands[k];
    RuntimeOperand& o = ops[k];
    if (spec.group == 0) {
      o.refs = plan.data_loc.refs[static_cast<std::size_t>(spec.batch)].data();
      o.ghost = plan.ghost_data[static_cast<std::size_t>(spec.ghost_slot)].data();
    } else {
      o.refs = plan.direct_loc.refs.data();
      o.ghost =
          plan.ghost_direct[static_cast<std::size_t>(spec.ghost_slot)].data();
    }
    o.local = spec.array->real->local().data();
    o.nlocal = spec.array->real->nlocal();
  }
  // Per-statement write routing, resolved outside the hot loop.
  struct WriteSlot {
    const LoopPlan::WriteInfo* w;
    const std::vector<LoopPlan::Instr>* code;
    const i64* refs;     // target localized indices
    f64* local;          // assign: target local segment
    f64* staging;        // assign: ghost staging / reduce: accumulator
    i64 nlocal;          // assign boundary (-1 for reduces)
    core::ReduceOp rop;  // reduce op
  };
  std::vector<WriteSlot> slots(f.body.size());
  for (std::size_t si = 0; si < f.body.size(); ++si) {
    const auto& w = plan.writes[si];
    WriteSlot& slot = slots[si];
    slot.w = &w;
    slot.code = &plan.code[si];
    slot.rop = core::ReduceOp::Add;
    ArrayInfo& target = st.arrays.at(w.array);
    if (w.refs_group == 2) {
      const auto& loc = plan.assign_loc[static_cast<std::size_t>(w.assign_slot)];
      slot.refs = loc.refs.data();
      slot.local = target.real->local().data();
      slot.staging = assign_ghost[static_cast<std::size_t>(w.assign_slot)].data();
      slot.nlocal = loc.schedule.nlocal_at_build;
    } else {
      slot.refs = w.refs_group == 0
                      ? plan.data_loc.refs[static_cast<std::size_t>(w.batch)].data()
                      : plan.direct_loc.refs.data();
      slot.local = nullptr;
      slot.staging = acc[static_cast<std::size_t>(w.acc_slot)].data();
      slot.rop = plan.accs[static_cast<std::size_t>(w.acc_slot)].op;
      slot.nlocal = -1;
    }
  }

  // The sweep (runtime-compiled bytecode per statement).
  const i64 niter = static_cast<i64>(plan.iter_ids.size());
  f64 stack[64];
  for (i64 l = 0; l < niter; ++l) {
    const f64 iter_value =
        static_cast<f64>(plan.iter_ids[static_cast<std::size_t>(l)] + 1);
    for (auto& slot : slots) {
      const f64 v = eval_code(*slot.code, ops, l, iter_value, stack);
      const i64 ref = slot.refs[l];
      if (slot.w->refs_group == 2) {
        if (ref < slot.nlocal) {
          slot.local[ref] = v;
        } else {
          slot.staging[ref - slot.nlocal] = v;
        }
      } else {
        slot.staging[ref] = core::apply_reduce(slot.rop, slot.staging[ref], v);
      }
    }
  }
  p.clock().charge_ops(niter,
                       p.params().flop_us *
                               static_cast<f64>(plan.expr_flops_per_iter) +
                           p.params().mem_us_per_word *
                               static_cast<f64>(plan.mem_refs_per_iter));

  // Fold reductions: local part with the op, ghost part via scatter.
  for (std::size_t k = 0; k < plan.accs.size(); ++k) {
    const auto& info = plan.accs[k];
    ArrayInfo& target = st.arrays.at(info.array);
    const auto& sched = info.refs_group == 0 ? plan.data_loc.schedule
                                             : plan.direct_loc.schedule;
    auto local = target.real->local();
    for (i64 j = 0; j < sched.nlocal_at_build; ++j) {
      local[static_cast<std::size_t>(j)] = core::apply_reduce(
          info.op, local[static_cast<std::size_t>(j)],
          acc[k][static_cast<std::size_t>(j)]);
    }
    p.clock().charge_ops(sched.nlocal_at_build, p.params().flop_us);
    core::scatter_reduce<f64>(
        p, sched, local,
        std::span<const f64>(acc[k]).subspan(
            static_cast<std::size_t>(sched.nlocal_at_build)),
        info.op, plan.ws);
  }
  for (std::size_t k = 0; k < plan.assign_loc.size(); ++k) {
    ArrayInfo* target = nullptr;
    for (std::size_t si = 0; si < plan.writes.size(); ++si) {
      if (plan.writes[si].refs_group == 2 &&
          plan.writes[si].assign_slot == static_cast<int>(k)) {
        target = &st.arrays.at(plan.writes[si].array);
      }
    }
    CHAOS_CHECK(target != nullptr, "orphan assign schedule");
    core::scatter_assign<f64>(p, plan.assign_loc[k].schedule,
                              target->real->local(), assign_ghost[k],
                              plan.ws);
  }

  // The loop modified its targets: record it (once per written array; this
  // is the "once per loop, not per element" property of nmod).
  std::set<std::string> written;
  for (const auto& w : plan.writes) written.insert(w.array);
  for (const auto& name : written) {
    st.registry.note_write(st.arrays.at(name).dad());
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Statement dispatch
// ---------------------------------------------------------------------------

void Instance::run_statement(rt::Process& p, const Statement& s) {
  State& st = *state_;

  if (const auto* d = std::get_if<DeclArrays>(&s.node)) {
    for (const auto& [name, size] : d->arrays) {
      if (st.arrays.count(name)) sema_fail("array '" + name + "' redeclared",
                                           size.line);
      ArrayInfo info;
      info.type = d->type;
      info.size = resolve_size(size, st.scalars);
      info.decl_line = size.line;
      st.arrays.emplace(name, std::move(info));
    }
    return;
  }
  if (const auto* d = std::get_if<DeclDecomps>(&s.node)) {
    for (const auto& [name, size] : d->decomps) {
      if (st.decomps.count(name)) {
        sema_fail("decomposition '" + name + "' redeclared", size.line);
      }
      DecompInfo info;
      info.size = resolve_size(size, st.scalars);
      info.decl_line = size.line;
      st.decomps.emplace(name, std::move(info));
    }
    return;
  }
  if (const auto* d = std::get_if<Distribute>(&s.node)) {
    auto it = st.decomps.find(d->decomp);
    if (it == st.decomps.end()) {
      sema_fail("DISTRIBUTE of unknown decomposition '" + d->decomp + "'",
                d->line);
    }
    DecompInfo& dec = it->second;
    if (d->format == "BLOCK") {
      dec.dist = dist::Distribution::block(p, dec.size);
    } else if (d->format == "CYCLIC") {
      dec.dist = dist::Distribution::cyclic(p, dec.size);
    } else {
      const auto dit = st.dists.find(d->format);
      if (dit == st.dists.end()) {
        sema_fail("unknown distribution format '" + d->format + "'", d->line);
      }
      dec.dist = dit->second;
    }
    return;
  }
  if (const auto* a = std::get_if<Align>(&s.node)) {
    auto dit = st.decomps.find(a->decomp);
    if (dit == st.decomps.end()) {
      sema_fail("ALIGN with unknown decomposition '" + a->decomp + "'",
                a->line);
    }
    DecompInfo& dec = dit->second;
    if (!dec.dist) {
      sema_fail("ALIGN before DISTRIBUTE of '" + a->decomp + "'", a->line);
    }
    for (const auto& name : a->arrays) {
      auto ait = st.arrays.find(name);
      if (ait == st.arrays.end()) {
        sema_fail("ALIGN of unknown array '" + name + "'", a->line);
      }
      ArrayInfo& arr = ait->second;
      if (arr.size != dec.size) {
        sema_fail("array '" + name + "' and decomposition '" + a->decomp +
                      "' differ in extent",
                  a->line);
      }
      arr.decomp = a->decomp;
      dec.aligned.push_back(name);
      // Materialize storage and pick up the host binding.
      if (arr.type == ElemType::Real8) {
        arr.real = std::make_unique<dist::DistributedArray<f64>>(p, dec.dist);
        const auto bit = real_bindings_.find(name);
        if (bit != real_bindings_.end()) {
          CHAOS_CHECK(static_cast<i64>(bit->second.size()) == arr.size,
                      "binding for " + name + " has wrong length");
          const auto& vals = bit->second;
          arr.real->fill_by_global(
              [&vals](i64 g) { return vals[static_cast<std::size_t>(g)]; });
        }
      } else {
        arr.integer =
            std::make_unique<dist::DistributedArray<i64>>(p, dec.dist);
        const auto bit = int_bindings_.find(name);
        if (bit != int_bindings_.end()) {
          CHAOS_CHECK(static_cast<i64>(bit->second.size()) == arr.size,
                      "binding for " + name + " has wrong length");
          const auto& vals = bit->second;
          arr.integer->fill_by_global(
              [&vals](i64 g) { return vals[static_cast<std::size_t>(g)]; });
        }
      }
      st.registry.note_write(arr.dad());  // initialization is a write
    }
    return;
  }
  if (const auto* c = std::get_if<Construct>(&s.node)) {
    rt::ClockSection section(p.clock());
    const i64 nverts = resolve_size(c->nverts, st.scalars);
    // The vertex distribution: the decomposition of the geometry/load
    // arrays if given, else any distributed decomposition of extent nverts.
    std::shared_ptr<const dist::Distribution> vdist;
    auto adopt = [&](const std::string& array_name) {
      ArrayInfo& a = lookup_array(st, array_name, c->line);
      if (!vdist) {
        vdist = a.dist_ptr();
      } else if (!(vdist->dad() == a.dad())) {
        sema_fail("CONSTRUCT per-vertex arrays must share a distribution",
                  c->line);
      }
    };
    for (const auto& g : c->geometry_arrays) adopt(g);
    if (!c->load_array.empty()) adopt(c->load_array);
    if (!vdist) {
      for (const auto& [name, dec] : st.decomps) {
        if (dec.size == nverts && dec.dist) {
          vdist = dec.dist;
          break;
        }
      }
    }
    if (!vdist) {
      sema_fail("CONSTRUCT: no distributed decomposition of extent " +
                    std::to_string(nverts),
                c->line);
    }
    if (vdist->size() != nverts) {
      sema_fail("CONSTRUCT: vertex count mismatch", c->line);
    }

    // Guard DADs: every array the GeoCoL is built from. If none changed
    // (and none may have been written) since the last CONSTRUCT here, the
    // cached graph is reused — the paper's mapper-level application of the
    // Section 3 method.
    std::vector<dist::Dad> source_dads;
    for (const auto& g : c->geometry_arrays) {
      source_dads.push_back(lookup_array(st, g, c->line).dad());
    }
    if (!c->load_array.empty()) {
      source_dads.push_back(lookup_array(st, c->load_array, c->line).dad());
    }
    for (const auto& [uname, vname] : c->links) {
      source_dads.push_back(lookup_array(st, uname, c->line).dad());
      source_dads.push_back(lookup_array(st, vname, c->line).dad());
    }
    st.geocol_sources[c->name] = source_dads;

    auto build_geocol = [&] {
      core::GeoColBuilder builder(p, vdist);
      std::vector<std::span<const f64>> coords;
      for (const auto& g : c->geometry_arrays) {
        ArrayInfo& a = lookup_array(st, g, c->line);
        if (a.type != ElemType::Real8) {
          sema_fail("GEOMETRY array '" + g + "' must be REAL*8", c->line);
        }
        coords.push_back(a.real->local());
      }
      if (!coords.empty()) builder.geometry(coords);
      if (!c->load_array.empty()) {
        ArrayInfo& a = lookup_array(st, c->load_array, c->line);
        if (a.type != ElemType::Real8) {
          sema_fail("LOAD array must be REAL*8", c->line);
        }
        builder.load(a.real->local());
      }
      for (const auto& [uname, vname] : c->links) {
        ArrayInfo& ua = lookup_array(st, uname, c->line);
        ArrayInfo& va = lookup_array(st, vname, c->line);
        if (ua.type != ElemType::Integer || va.type != ElemType::Integer) {
          sema_fail("LINK arrays must be INTEGER", c->line);
        }
        const i64 declared = resolve_size(c->link_size, st.scalars);
        if (ua.size != declared || va.size != declared) {
          sema_fail("LINK arrays do not match the declared edge count",
                    c->line);
        }
        // Convert the 1-based endpoints to 0-based vertex ids.
        std::vector<i64> u0(ua.integer->local().begin(),
                            ua.integer->local().end());
        std::vector<i64> v0(va.integer->local().begin(),
                            va.integer->local().end());
        for (auto& x : u0) x -= 1;
        for (auto& x : v0) x -= 1;
        builder.link(u0, v0);
      }
      return std::make_shared<GeoColProduct>(GeoColProduct{builder.build()});
    };
    if (reuse_enabled_) {
      const auto key = reinterpret_cast<chaos::u64>(c);
      auto product = st.mapper_cache.get_or_build<GeoColProduct>(
          key, st.registry, {}, source_dads, build_geocol);
      st.geocols[c->name] = product->geocol;
    } else {
      st.geocols[c->name] = build_geocol()->geocol;
    }
    phases_.graph_gen += section.elapsed_sec();
    return;
  }
  if (const auto* sp = std::get_if<SetPartition>(&s.node)) {
    rt::ClockSection section(p.clock());
    const auto git = st.geocols.find(sp->geocol);
    if (git == st.geocols.end()) {
      sema_fail("SET: unknown GeoCoL '" + sp->geocol + "'", sp->line);
    }
    auto build_dist = [&] {
      return std::make_shared<DistProduct>(DistProduct{
          core::set_by_partitioning(p, *git->second, sp->partitioner)});
    };
    if (reuse_enabled_) {
      // Guarded by the same source arrays that fed the GeoCoL: unchanged
      // sources mean an unchanged graph, so the old partition stands.
      const auto sit = st.geocol_sources.find(sp->geocol);
      const std::vector<dist::Dad> guard =
          sit != st.geocol_sources.end() ? sit->second
                                         : std::vector<dist::Dad>{};
      const auto key = reinterpret_cast<chaos::u64>(sp);
      auto product = st.mapper_cache.get_or_build<DistProduct>(
          key, st.registry, {}, guard, build_dist);
      st.dists[sp->dist_name] = product->dist;
    } else {
      st.dists[sp->dist_name] = build_dist()->dist;
    }
    phases_.partition += section.elapsed_sec();
    return;
  }
  if (const auto* r = std::get_if<Redistribute>(&s.node)) {
    rt::ClockSection section(p.clock());
    auto dit = st.decomps.find(r->decomp);
    if (dit == st.decomps.end()) {
      sema_fail("REDISTRIBUTE of unknown decomposition '" + r->decomp + "'",
                r->line);
    }
    const auto fit = st.dists.find(r->dist_name);
    if (fit == st.dists.end()) {
      sema_fail("REDISTRIBUTE with unknown distribution '" + r->dist_name +
                    "'",
                r->line);
    }
    DecompInfo& dec = dit->second;
    if (dec.size != fit->second->size()) {
      sema_fail("REDISTRIBUTE: extent mismatch", r->line);
    }
    core::Redistributor rd(&st.registry);
    for (const auto& name : dec.aligned) {
      ArrayInfo& a = st.arrays.at(name);
      if (a.real) rd.add(*a.real);
      if (a.integer) rd.add(*a.integer);
    }
    rd.apply(p, fit->second);
    dec.dist = fit->second;
    phases_.remap += section.elapsed_sec();
    return;
  }
  if (const auto* loop = std::get_if<DoLoop>(&s.node)) {
    const i64 lo = resolve_size(loop->lo, st.scalars);
    const i64 hi = resolve_size(loop->hi, st.scalars);
    for (i64 v = lo; v <= hi; ++v) {
      st.scalars[loop->var] = v;
      for (const auto& inner : loop->body) run_statement(p, inner);
    }
    return;
  }
  if (const auto* f = std::get_if<Forall>(&s.node)) {
    ForallContext ctx{&p, &st, f, 0};
    const i64 lo = resolve_size(f->lo, st.scalars);
    if (lo != 1) sema_fail("FORALL lower bound must be 1", f->line);
    ctx.n = resolve_size(f->hi, st.scalars);

    std::shared_ptr<LoopPlan> plan;
    if (reuse_enabled_) {
      // Assemble the guard DADs: data arrays and indirection arrays (the
      // iteration space's DAD rides along with the indirection guards).
      ExprScan scan;
      std::set<std::string> all_arrays;
      for (const auto& stmt : f->body) {
        scan.note_index(stmt.target_index);
        scan.scan(*stmt.value);
        all_arrays.insert(stmt.target_array);
      }
      for (const auto& a : scan.read_data) all_arrays.insert(a);
      for (const auto& a : scan.read_direct) all_arrays.insert(a);
      std::vector<dist::Dad> data_dads;
      for (const auto& name : all_arrays) {
        data_dads.push_back(lookup_array(st, name, f->line).dad());
      }
      std::vector<dist::Dad> ind_dads;
      for (const auto& name : scan.ind_names) {
        ind_dads.push_back(lookup_array(st, name, f->line).dad());
      }
      plan = st.cache.get_or_build<LoopPlan>(
          f->loop_id, st.registry, std::move(data_dads), std::move(ind_dads),
          [&] { return build_loop_plan(ctx, phases_); });
    } else {
      plan = build_loop_plan(ctx, phases_);
    }

    rt::ClockSection section(p.clock());
    execute_loop(p, *f, *plan, st);
    phases_.executor += section.elapsed_sec();
    return;
  }
  CHAOS_CHECK(false, "unhandled statement kind");
}

void Instance::execute(rt::Process& p) {
  state_ = std::make_unique<State>();
  phases_ = PhaseTimes{};
  for (const auto& [name, value] : host_params_) {
    state_->scalars[name] = value;
  }
  // Every parameter the parser collected must be bound.
  for (const auto& name : program_->params) {
    if (!state_->scalars.count(name)) {
      throw LangError("parameter '" + name + "' is not bound by the host", 0);
    }
  }
  for (const auto& s : program_->statements) run_statement(p, s);
}

std::vector<f64> Instance::fetch_real(rt::Process& p,
                                      const std::string& array) {
  CHAOS_CHECK(state_ != nullptr, "fetch before execute");
  std::string key = array;
  std::transform(key.begin(), key.end(), key.begin(), ::toupper);
  ArrayInfo& a = lookup_array(*state_, key, 0);
  CHAOS_CHECK(a.type == ElemType::Real8, "fetch_real of INTEGER array");
  return a.real->to_global(p);
}

std::vector<i64> Instance::fetch_int(rt::Process& p,
                                     const std::string& array) {
  CHAOS_CHECK(state_ != nullptr, "fetch before execute");
  std::string key = array;
  std::transform(key.begin(), key.end(), key.begin(), ::toupper);
  ArrayInfo& a = lookup_array(*state_, key, 0);
  CHAOS_CHECK(a.type == ElemType::Integer, "fetch_int of REAL*8 array");
  return a.integer->to_global(p);
}

void Instance::overwrite_int(rt::Process& p, const std::string& array,
                             const std::vector<i64>& global_values) {
  CHAOS_CHECK(state_ != nullptr, "overwrite before execute");
  std::string key = array;
  std::transform(key.begin(), key.end(), key.begin(), ::toupper);
  ArrayInfo& a = lookup_array(*state_, key, 0);
  CHAOS_CHECK(a.type == ElemType::Integer, "overwrite_int of REAL*8 array");
  CHAOS_CHECK(static_cast<i64>(global_values.size()) == a.size,
              "overwrite_int: wrong length");
  a.integer->fill_by_global(
      [&](i64 g) { return global_values[static_cast<std::size_t>(g)]; });
  state_->registry.note_write(a.dad());
  rt::barrier(p);
}

}  // namespace chaos::lang
