#include "lang/interp.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <set>
#include <span>
#include <unordered_map>
#include <utility>

#include "dist/remap.hpp"
#include "lang/bytecode.hpp"
#include "lang/token.hpp"
#include "rt/collectives.hpp"

namespace chaos::lang {

namespace {

[[noreturn]] void sema_fail(const std::string& msg, int line) {
  throw LangError(msg, line);
}

}  // namespace

// ---------------------------------------------------------------------------
// Runtime state
// ---------------------------------------------------------------------------

struct ArrayInfo {
  ElemType type = ElemType::Real8;
  i64 size = -1;
  std::string decomp;
  int decl_line = 0;
  std::unique_ptr<dist::DistributedArray<f64>> real;
  std::unique_ptr<dist::DistributedArray<i64>> integer;

  [[nodiscard]] bool materialized() const {
    return real != nullptr || integer != nullptr;
  }
  [[nodiscard]] const dist::Distribution& dist() const {
    return real ? real->dist() : integer->dist();
  }
  [[nodiscard]] std::shared_ptr<const dist::Distribution> dist_ptr() const {
    return real ? real->dist_ptr() : integer->dist_ptr();
  }
  [[nodiscard]] const dist::Dad& dad() const { return dist().dad(); }
};

struct DecompInfo {
  i64 size = -1;
  int decl_line = 0;
  std::shared_ptr<const dist::Distribution> dist;
  std::vector<std::string> aligned;
};

/// Resolved runtime operand for the bytecode evaluator: set up once per
/// executor invocation, read per iteration.
struct RuntimeOperand {
  const i64* refs = nullptr;    // localized index per local iteration
  const f64* local = nullptr;   // owned segment of the array
  i64 nlocal = 0;
  const f64* ghost = nullptr;   // gathered off-process copies
};

/// Per-statement write routing, resolved against current storage at the top
/// of every COMPUTE (array storage can move between sweeps, the plan's
/// symbolic routing cannot).
struct WriteSlot {
  int refs_group = 0;  ///< 0: data_loc batch, 1: direct_loc, 2: own assign
  const std::vector<StackInstr>* code = nullptr;
  const i64* refs = nullptr;  // target localized indices
  f64* local = nullptr;       // assign: target local segment
  f64* staging = nullptr;     // assign: ghost staging / reduce: accumulator
  i64 nlocal = -1;            // assign boundary (-1 for reduces)
  core::ReduceOp rop = core::ReduceOp::Add;
};

/// Inspector product of one FORALL (cached under the Section 3 guard). Built
/// from the statement's lowered ForallMeta — never from the AST — so the
/// tree-walk oracle and the VM construct byte-identical plans.
struct LoopPlan {
  const ForallMeta* meta = nullptr;  ///< borrowed from the ProgramPlan

  std::shared_ptr<const dist::Distribution> iter_space;
  std::shared_ptr<const dist::Distribution> data_dist;  // may be null
  core::IterationPartition iters;
  std::vector<i64> iter_ids;  ///< my 0-based iteration ids, local order

  std::vector<std::vector<i64>> ind_values;  ///< remapped, 0-based
  /// Pre-remap 0-based indirection slices at the last build/repair: the
  /// repair path diffs fresh slices against these so only changed values
  /// ride the remap (DESIGN.md §14).
  std::vector<std::vector<i64>> src_ind_values;
  core::LocalizedMany data_loc;              ///< one batch per ind array
  /// Repair baselines: the shared data schedule's, plus one per private
  /// assign schedule (unused entries stay invalid for direct assigns, whose
  /// iter_ids references never change under an indirection rewrite).
  core::LocalizeSnapshot data_snap;
  std::vector<core::LocalizeSnapshot> assign_snaps;
  std::vector<int> assign_batch;  ///< ind batch per assign slot; -1 = direct
  /// One inspector workspace per localized distribution (data_dist vs
  /// iter_space), so an attached translation cache binds to one DAD.
  core::InspectorWorkspace iws;         ///< localizes against data_dist
  core::InspectorWorkspace direct_iws;  ///< localizes against iter_space
  /// Delta-remap staging + diff scratch for the repair path.
  dist::RemapDeltaWorkspace remap_ws;
  std::vector<i64> delta_pos, delta_val, slice_scratch;

  bool has_direct = false;
  core::Localized direct_loc;  ///< batch = iter_ids against iter_space

  /// How each statement's target is addressed.
  struct WriteInfo {
    LoopReduceOp op = LoopReduceOp::Assign;
    ArrayInfo* target = nullptr;
    int refs_group = 0;    ///< 0: data_loc batch, 1: direct_loc, 2: own assign
    int batch = -1;        ///< data_loc batch index (group 0)
    int assign_slot = -1;  ///< index into assign_loc (group 2)
    int acc_slot = -1;     ///< accumulator (reduce ops)
  };
  std::vector<WriteInfo> writes;            ///< parallel to the FORALL body
  std::vector<core::Localized> assign_loc;  ///< private schedules for assigns
  std::vector<ArrayInfo*> assign_targets;   ///< parallel to assign_loc

  struct AccInfo {
    ArrayInfo* target = nullptr;
    core::ReduceOp op = core::ReduceOp::Add;
    int refs_group = 0;  ///< 0 = data group, 1 = direct group
  };
  std::vector<AccInfo> accs;

  /// The meta's symbolic operand table resolved to runtime storage.
  struct OperandRt {
    int group = 0;  ///< 0: data_loc batch, 1: direct_loc
    int batch = -1;
    const ArrayInfo* array = nullptr;
    int ghost_slot = -1;  ///< index into ghost_data / ghost_direct
  };
  std::vector<OperandRt> operands;
  /// Scalar slots bound to std::map node storage (address-stable), in the
  /// meta's first-occurrence order.
  std::vector<const i64*> scalar_ptrs;

  std::vector<ArrayInfo*> reads_data;    ///< gathered via data_loc
  std::vector<ArrayInfo*> reads_direct;  ///< gathered via direct_loc
  /// Ghost scratch per read array (index-aligned with reads_*).
  std::vector<std::vector<f64>> ghost_data;
  std::vector<std::vector<f64>> ghost_direct;
  /// Executor staging shared by every gather/scatter through this plan
  /// (staging() re-slices per schedule), plus reusable accumulator scratch —
  /// all sized on the first sweep so later sweeps allocate nothing.
  core::ExecutorWorkspace<f64> ws;
  std::vector<std::vector<f64>> acc_scratch;     ///< parallel to accs
  std::vector<std::vector<f64>> assign_scratch;  ///< parallel to assign_loc
  std::vector<ArrayInfo*> written_targets;       ///< note_write order (sorted)

  /// Plan-owned per-sweep scratch: resize() keeps capacity, so every sweep
  /// after the first resolves its slots with zero heap allocations.
  std::vector<RuntimeOperand> runtime_ops;
  std::vector<WriteSlot> write_slots;

  i64 expr_flops_per_iter = 0;
  i64 mem_refs_per_iter = 0;
  /// Build validity stamp: a failed (thrown-through) plan build leaves the
  /// plan not ready and EXEC_BEGIN refuses it (DESIGN.md §11).
  core::PlanBuildState build;
};

/// Per-FORALL VM register file: the live plan between CHECK_INCARNATION and
/// EXEC_END, the resolved trip count, and the guard-DAD scratch (vectors
/// retain capacity across sweeps, keeping the warm path allocation-free).
struct ForallRt {
  std::shared_ptr<LoopPlan> plan;
  i64 n = 0;  ///< iteration count this execution
  std::vector<dist::Dad> guard_data, guard_ind;
  std::span<f64> stage;  ///< PACK -> EXCHANGE handoff
  std::optional<rt::ClockSection> exec_section;
};

struct Instance::State {
  std::map<std::string, ArrayInfo> arrays;
  std::map<std::string, DecompInfo> decomps;
  std::map<std::string, std::shared_ptr<const core::GeoCol>> geocols;
  std::map<std::string, std::shared_ptr<const dist::Distribution>> dists;
  std::map<std::string, i64> scalars;
  core::ReuseRegistry registry;
  /// Section 3 guard for the tree-walk oracle (one slot per loop id).
  core::InspectorCache cache;
  /// Section 3 guard for the VM: plans keyed by (statement id, DAD
  /// incarnation set), probed by CHECK_INCARNATION.
  core::PlanCache plan_cache;
  std::vector<ForallRt> frt;  ///< indexed by ProgramPlan forall id
  /// Section 3 applied to the mapper coupler: cached GeoCoL graphs and
  /// partitioner outputs, guarded by the DADs / last_mod of their source
  /// arrays, so an unchanged CONSTRUCT + SET inside a time-step loop costs
  /// one guard check instead of a graph assembly and a repartition.
  core::InspectorCache mapper_cache;
  std::map<std::string, std::vector<dist::Dad>> geocol_sources;
};

namespace {
/// Cached products of the mapper-coupler directives.
struct GeoColProduct {
  std::shared_ptr<const core::GeoCol> geocol;
};
struct DistProduct {
  std::shared_ptr<const dist::Distribution> dist;
};
}  // namespace

// ---------------------------------------------------------------------------
// Instance plumbing
// ---------------------------------------------------------------------------

Instance::Instance(const Program& program)
    : program_(&program),
      plan_(std::make_unique<const ProgramPlan>(lower(program))) {}
Instance::~Instance() = default;

void Instance::set_param(const std::string& name, i64 value) {
  std::string key = name;
  std::transform(key.begin(), key.end(), key.begin(), ::toupper);
  host_params_[key] = value;
}

void Instance::bind_real(const std::string& array,
                         std::vector<f64> global_values) {
  std::string key = array;
  std::transform(key.begin(), key.end(), key.begin(), ::toupper);
  real_bindings_[key] = std::move(global_values);
}

void Instance::bind_int(const std::string& array,
                        std::vector<i64> global_values) {
  std::string key = array;
  std::transform(key.begin(), key.end(), key.begin(), ::toupper);
  int_bindings_[key] = std::move(global_values);
}

const core::InspectorCache::Stats& Instance::cache_stats() const {
  static const core::InspectorCache::Stats kZero{};
  if (!state_) return kZero;
  return tree_walk_ ? state_->cache.stats() : state_->plan_cache.stats();
}

const core::InspectorCache::Stats& Instance::mapper_cache_stats() const {
  static const core::InspectorCache::Stats kZero{};
  if (!state_) return kZero;
  return state_->mapper_cache.stats();
}

const core::ReuseRegistry& Instance::reuse_registry() const {
  static const core::ReuseRegistry kEmpty;
  return state_ ? state_->registry : kEmpty;
}

namespace {

i64 resolve_size(const SizeExpr& s, const std::map<std::string, i64>& scalars) {
  if (s.literal >= 0) return s.literal;
  const auto it = scalars.find(s.param);
  if (it == scalars.end()) {
    sema_fail("unbound parameter '" + s.param +
                  "' (host must call set_param)",
              s.line);
  }
  return it->second;
}

ArrayInfo& lookup_array(Instance::State& st, const std::string& name,
                        int line) {
  const auto it = st.arrays.find(name);
  if (it == st.arrays.end()) sema_fail("unknown array '" + name + "'", line);
  if (!it->second.materialized()) {
    sema_fail("array '" + name +
                  "' is not materialized (missing ALIGN or DISTRIBUTE)",
              line);
  }
  return it->second;
}

// ---------------------------------------------------------------------------
// FORALL: plan build (PARTITION + LOCALIZE), shared by both execution modes
// ---------------------------------------------------------------------------

/// PARTITION: semantic classification against current array state, then the
/// iteration partition + indirection remap (remap time). Every check the
/// tree-walker made per build is re-issued here from the lowered metadata,
/// in its exact order, so diagnostics are mode-independent.
void plan_partition(rt::Process& p, Instance::State& st, const ForallMeta& m,
                    i64 n, LoopPlan& plan, PhaseTimes& phases) {
  if (!m.conflict_array.empty()) {
    sema_fail("array '" + m.conflict_array +
                  "' is both read and written in one FORALL; only "
                  "left-hand-side reductions may carry dependences",
              m.line);
  }
  plan.expr_flops_per_iter = m.expr_flops_per_iter;
  plan.mem_refs_per_iter = m.mem_refs_per_iter;

  // ---- classify arrays, find the two anchor distributions -------------------
  // Indirection arrays: INTEGER, aligned with the iteration space.
  for (const auto& name : m.ind_names) {
    ArrayInfo& a = lookup_array(st, name, m.line);
    if (a.type != ElemType::Integer) {
      sema_fail("indirection array '" + name + "' must be INTEGER", m.line);
    }
    if (!plan.iter_space) {
      plan.iter_space = a.dist_ptr();
    } else if (!(plan.iter_space->dad() == a.dad())) {
      sema_fail("indirection arrays of one FORALL must share a distribution",
                m.line);
    }
  }
  // Data arrays (via indirection): REAL*8, one common distribution.
  for (const auto& name : m.data_arrays) {
    ArrayInfo& a = lookup_array(st, name, m.line);
    if (a.type != ElemType::Real8) {
      sema_fail("data array '" + name + "' must be REAL*8", m.line);
    }
    if (!plan.data_dist) {
      plan.data_dist = a.dist_ptr();
    } else if (!(plan.data_dist->dad() == a.dad())) {
      sema_fail("data arrays of one FORALL must be aligned to one "
                "distribution",
                m.line);
    }
  }
  for (const auto& name : m.direct_arrays) {
    ArrayInfo& a = lookup_array(st, name, m.line);
    if (a.type != ElemType::Real8) {
      sema_fail("data array '" + name + "' must be REAL*8", m.line);
    }
    if (!plan.iter_space) {
      plan.iter_space = a.dist_ptr();
    } else if (!(plan.iter_space->dad() == a.dad())) {
      sema_fail("directly indexed arrays must be aligned with the "
                "iteration space",
                m.line);
    }
  }
  if (!plan.iter_space) {
    sema_fail("FORALL body references no distributed arrays", m.line);
  }
  if (plan.iter_space->size() != n) {
    sema_fail("FORALL bound does not match the iteration-space extent (" +
                  std::to_string(plan.iter_space->size()) + " vs " +
                  std::to_string(n) + ")",
              m.line);
  }

  // ---- phase B/C: iteration partition + indirection remap (remap time) -----
  {
    rt::ClockSection section(p.clock());
    std::vector<std::vector<i64>> ind_slices;  // 0-based data indices
    for (const auto& name : m.ind_names) {
      ArrayInfo& a = st.arrays.at(name);
      std::vector<i64> vals(a.integer->local().begin(),
                            a.integer->local().end());
      for (auto& v : vals) {
        if (v < 1 || v > plan.data_dist->size()) {
          sema_fail("indirection array '" + name + "' holds index " +
                        std::to_string(v) + " outside 1.." +
                        std::to_string(plan.data_dist->size()),
                    m.line);
        }
        v -= 1;  // Fortran subscripts are 1-based
      }
      ind_slices.push_back(std::move(vals));
    }
    if (!m.ind_names.empty()) {
      std::vector<std::span<const i64>> batches(ind_slices.begin(),
                                                ind_slices.end());
      plan.iters = core::partition_iterations(p, *plan.iter_space,
                                              *plan.data_dist, batches);
      for (auto& slice : ind_slices) {
        plan.ind_values.push_back(
            dist::apply_remap<i64>(p, plan.iters.remap, slice));
        // Keep the pre-remap slice: the repair-path diff baseline.
        plan.src_ind_values.push_back(std::move(slice));
      }
    } else {
      // No indirection: iterations stay home.
      plan.iters.iter_dist = plan.iter_space;
      plan.iters.remap = dist::build_remap(p, *plan.iter_space,
                                           *plan.iter_space);
      plan.iters.moved_iterations = 0;
    }
    plan.iter_ids = plan.iters.iter_dist->my_globals();
    phases.remap += section.elapsed_sec();
  }
}

/// LOCALIZE: builds the communication schedules and resolves the meta's
/// symbolic slot tables — operands, scalars, writes — against runtime state
/// (inspector time).
void plan_localize(rt::Process& p, Instance::State& st, const ForallMeta& m,
                   LoopPlan& plan, PhaseTimes& phases) {
  rt::ClockSection section(p.clock());
  if (!plan.ind_values.empty()) {
    std::vector<std::span<const i64>> batches(plan.ind_values.begin(),
                                              plan.ind_values.end());
    core::localize_many(p, *plan.data_dist, batches, plan.iws, plan.data_loc);
    plan.iws.capture(plan.data_snap);
  }
  plan.has_direct = !m.direct_arrays.empty();
  if (plan.has_direct) {
    core::localize(p, *plan.iter_space, plan.iter_ids, plan.direct_iws,
                   plan.direct_loc);
  }

  for (const auto& name : m.read_data) {
    plan.reads_data.push_back(&st.arrays.at(name));
  }
  for (const auto& name : m.read_direct) {
    plan.reads_direct.push_back(&st.arrays.at(name));
  }
  plan.ghost_data.resize(plan.reads_data.size());
  plan.ghost_direct.resize(plan.reads_direct.size());

  // Scalar slots, in the meta's first-occurrence order: the first unbound
  // one reported here is the first the tree-walker's expression compiler
  // would have hit. std::map nodes are address-stable: bind storage directly.
  plan.scalar_ptrs.reserve(m.scalars.size());
  for (const auto& sym : m.scalars) {
    const auto it = st.scalars.find(sym.name);
    if (it == st.scalars.end()) {
      sema_fail("unbound scalar '" + sym.name + "'", sym.line);
    }
    plan.scalar_ptrs.push_back(&it->second);
  }
  plan.operands.reserve(m.operands.size());
  for (const auto& o : m.operands) {
    plan.operands.push_back(
        {o.group, o.batch, &st.arrays.at(o.array), o.ghost_slot});
  }
  CHAOS_CHECK(m.max_stack <= 64, "FORALL expression too deep");

  // Resolve writes: reduces share the read groups' schedules; assigns get
  // private schedules so Replace never touches unwritten elements.
  const auto batch_index = [&m](const std::string& ind_array) {
    return static_cast<int>(
        std::find(m.ind_names.begin(), m.ind_names.end(), ind_array) -
        m.ind_names.begin());
  };
  std::map<std::pair<std::string, int>, int> acc_of;  // (array, group)
  for (std::size_t si = 0; si < m.body.size(); ++si) {
    const auto& stmt = m.body[si];
    LoopPlan::WriteInfo w;
    w.op = stmt.op;
    w.target = &st.arrays.at(stmt.target);
    const bool direct = stmt.direct;
    if (stmt.op == LoopReduceOp::Assign) {
      w.refs_group = 2;
      w.assign_slot = static_cast<int>(plan.assign_loc.size());
      plan.assign_targets.push_back(w.target);
      const dist::Distribution& target_dist =
          direct ? *plan.iter_space : *plan.data_dist;
      plan.assign_loc.emplace_back();
      plan.assign_snaps.emplace_back();
      if (direct) {
        plan.assign_batch.push_back(-1);
        core::localize(p, target_dist, plan.iter_ids, plan.direct_iws,
                       plan.assign_loc.back());
      } else {
        const int b = batch_index(stmt.ind_array);
        plan.assign_batch.push_back(b);
        core::localize(p, target_dist,
                       plan.ind_values[static_cast<std::size_t>(b)],
                       plan.iws, plan.assign_loc.back());
        plan.iws.capture(plan.assign_snaps.back());
      }
    } else {
      w.refs_group = direct ? 1 : 0;
      if (!direct) w.batch = batch_index(stmt.ind_array);
      const core::ReduceOp rop = stmt.op == LoopReduceOp::Add
                                     ? core::ReduceOp::Add
                                     : stmt.op == LoopReduceOp::Max
                                           ? core::ReduceOp::Max
                                           : core::ReduceOp::Min;
      const auto key = std::make_pair(stmt.target, w.refs_group);
      auto it = acc_of.find(key);
      if (it == acc_of.end()) {
        it = acc_of.emplace(key, static_cast<int>(plan.accs.size())).first;
        plan.accs.push_back(LoopPlan::AccInfo{w.target, rop, w.refs_group});
      } else if (plan.accs[static_cast<std::size_t>(it->second)].op != rop) {
        sema_fail("mixed reduction operators on array '" + stmt.target +
                      "' in one FORALL",
                  stmt.line);
      }
      w.acc_slot = it->second;
    }
    plan.writes.push_back(std::move(w));
  }
  for (const auto& name : m.written) {
    plan.written_targets.push_back(&st.arrays.at(name));
  }
  phases.inspector += section.elapsed_sec();
}

/// Builds the full inspector product for one FORALL (the tree-walk oracle's
/// miss path; the VM runs the same two helpers from its PARTITION and
/// LOCALIZE ops). Collective.
std::shared_ptr<LoopPlan> build_plan(rt::Process& p, Instance::State& st,
                                     const ForallMeta& m, i64 n,
                                     const core::PlanOptions& opts,
                                     PhaseTimes& phases) {
  auto plan = std::make_shared<LoopPlan>();
  plan->build.begin_build();
  plan->meta = &m;
  plan->iws.configure(opts);
  plan->direct_iws.configure(opts);
  plan_partition(p, st, m, n, *plan, phases);
  plan_localize(p, st, m, *plan, phases);
  plan->build.mark_built();
  return plan;
}

/// Incremental repair of a cached LoopPlan whose guard failed ONLY the
/// last_mod stamp (an indirection array was rewritten in place; every DAD
/// unchanged). Keeps the iteration partition, ships only changed indirection
/// values through the remap, and splices the data + non-direct assign
/// schedules; direct schedules localize iter_ids, which an indirection
/// rewrite cannot change. Collective; returns false (machine-uniform) when
/// any vote rejects, leaving the plan NOT ready so the caller's full rebuild
/// path takes over (DESIGN.md §14).
bool repair_plan(rt::Process& p, Instance::State& st, const ForallMeta& m,
                 i64 n, LoopPlan& plan, PhaseTimes& phases) {
  bool ok = plan.build.ready() && plan.meta == &m && !m.ind_names.empty() &&
            plan.iws.options().repair_enabled() &&
            plan.iter_space->size() == n &&
            plan.src_ind_values.size() == m.ind_names.size();

  // Phase C': re-extract the indirection slices (same sema checks as the
  // build path), diff against the pre-remap baselines, and push only the
  // changed values through the remap. Remap time, like the build's phase C.
  {
    rt::ClockSection section(p.clock());
    if (ok) {
      for (std::size_t j = 0; j < m.ind_names.size(); ++j) {
        const ArrayInfo& a = st.arrays.at(m.ind_names[j]);
        if (a.integer == nullptr ||
            a.integer->local().size() != plan.src_ind_values[j].size()) {
          ok = false;
          break;
        }
      }
    }
    if (rt::allreduce_max(p, ok ? i64{0} : i64{1}) != 0) {
      ++p.stats().repair_fallbacks;
      return false;
    }
    plan.build.begin_build();  // mutating: not ready until the splice lands
    for (std::size_t j = 0; j < m.ind_names.size(); ++j) {
      const ArrayInfo& a = st.arrays.at(m.ind_names[j]);
      const auto seg = a.integer->local();
      plan.slice_scratch.resize(seg.size());
      for (std::size_t i = 0; i < seg.size(); ++i) {
        const i64 v = seg[i];
        if (v < 1 || v > plan.data_dist->size()) {
          sema_fail("indirection array '" + m.ind_names[j] +
                        "' holds index " + std::to_string(v) +
                        " outside 1.." +
                        std::to_string(plan.data_dist->size()),
                    m.line);
        }
        plan.slice_scratch[i] = v - 1;
      }
      plan.delta_pos.clear();
      plan.delta_val.clear();
      std::vector<i64>& base = plan.src_ind_values[j];
      for (std::size_t i = 0; i < plan.slice_scratch.size(); ++i) {
        if (plan.slice_scratch[i] != base[i]) {
          plan.delta_pos.push_back(static_cast<i64>(i));
          plan.delta_val.push_back(plan.slice_scratch[i]);
          base[i] = plan.slice_scratch[i];
        }
      }
      dist::apply_remap_delta(p, plan.iters.remap, plan.delta_pos,
                              plan.delta_val, plan.ind_values[j],
                              plan.remap_ws);
      // The diff scan touches every slice element once.
      p.clock().charge_ops(static_cast<i64>(seg.size()),
                           p.params().mem_us_per_word);
    }
    phases.remap += section.elapsed_sec();
  }

  // Phase D': splice the shared data schedule, then each non-direct assign
  // schedule, against their snapshots. Inspector time.
  {
    rt::ClockSection section(p.clock());
    std::vector<std::span<const i64>> batches(plan.ind_values.begin(),
                                              plan.ind_values.end());
    if (!core::repair_localize_many(p, *plan.data_dist, batches, plan.iws,
                                    plan.data_snap, plan.data_loc)) {
      phases.inspector += section.elapsed_sec();
      return false;
    }
    plan.iws.capture(plan.data_snap);
    for (std::size_t slot = 0; slot < plan.assign_loc.size(); ++slot) {
      const int b = plan.assign_batch[slot];
      if (b < 0) continue;  // direct assign: iter_ids references unchanged
      if (!core::repair_localize(p, *plan.data_dist,
                                 plan.ind_values[static_cast<std::size_t>(b)],
                                 plan.iws, plan.assign_snaps[slot],
                                 plan.assign_loc[slot])) {
        phases.inspector += section.elapsed_sec();
        return false;
      }
      plan.iws.capture(plan.assign_snaps[slot]);
    }
    phases.inspector += section.elapsed_sec();
  }
  plan.build.mark_built();
  return true;
}

// ---------------------------------------------------------------------------
// FORALL: execution ops, shared by both execution modes
// ---------------------------------------------------------------------------

/// Runs one statement's bytecode for local iteration @p l.
f64 eval_code(const std::vector<StackInstr>& code,
              const std::vector<RuntimeOperand>& ops,
              const std::vector<const i64*>& scalars, i64 l, f64 iter_value,
              f64* stack) {
  int sp = 0;
  for (const auto& ins : code) {
    switch (ins.op) {
      case StackOp::Imm: stack[sp++] = ins.imm; break;
      case StackOp::Scalar:
        stack[sp++] =
            static_cast<f64>(*scalars[static_cast<std::size_t>(ins.slot)]);
        break;
      case StackOp::IterVal: stack[sp++] = iter_value; break;
      case StackOp::Load: {
        const RuntimeOperand& o = ops[static_cast<std::size_t>(ins.slot)];
        const i64 idx = o.refs[l];
        stack[sp++] = idx < o.nlocal
                          ? o.local[idx]
                          : o.ghost[idx - o.nlocal];
        break;
      }
      case StackOp::Neg: stack[sp - 1] = -stack[sp - 1]; break;
      case StackOp::Add: --sp; stack[sp - 1] += stack[sp]; break;
      case StackOp::Sub: --sp; stack[sp - 1] -= stack[sp]; break;
      case StackOp::Mul: --sp; stack[sp - 1] *= stack[sp]; break;
      case StackOp::Div: --sp; stack[sp - 1] /= stack[sp]; break;
      case StackOp::Pow:
        --sp;
        stack[sp - 1] = std::pow(stack[sp - 1], stack[sp]);
        break;
      case StackOp::Sqrt: stack[sp - 1] = std::sqrt(stack[sp - 1]); break;
      case StackOp::Abs: stack[sp - 1] = std::abs(stack[sp - 1]); break;
      case StackOp::Sin: stack[sp - 1] = std::sin(stack[sp - 1]); break;
      case StackOp::Cos: stack[sp - 1] = std::cos(stack[sp - 1]); break;
      case StackOp::Exp: stack[sp - 1] = std::exp(stack[sp - 1]); break;
      case StackOp::Min2:
        --sp;
        stack[sp - 1] = std::min(stack[sp - 1], stack[sp]);
        break;
      case StackOp::Max2:
        --sp;
        stack[sp - 1] = std::max(stack[sp - 1], stack[sp]);
        break;
      case StackOp::Mod2:
        --sp;
        stack[sp - 1] = std::fmod(stack[sp - 1], stack[sp]);
        break;
    }
  }
  return stack[0];
}

/// PACK: sizes the read array's ghost buffer and copies requested owned
/// elements into the plan's staging buffer. Returns the staged span for the
/// EXCHANGE that must follow.
std::span<f64> exec_pack(LoopPlan& plan, i32 group, i32 k) {
  ArrayInfo* a = group == 0 ? plan.reads_data[static_cast<std::size_t>(k)]
                            : plan.reads_direct[static_cast<std::size_t>(k)];
  std::vector<f64>& ghost = group == 0
                                ? plan.ghost_data[static_cast<std::size_t>(k)]
                                : plan.ghost_direct[static_cast<std::size_t>(k)];
  const core::CommSchedule& sched =
      group == 0 ? plan.data_loc.schedule : plan.direct_loc.schedule;
  ghost.resize(static_cast<std::size_t>(sched.nghost));
  return core::gather_pack<f64>(sched, a->real->local(),
                                std::span<f64>(ghost), plan.ws);
}

/// EXCHANGE: the collective all-to-all into the ghost buffer.
void exec_exchange(rt::Process& p, LoopPlan& plan, i32 group, i32 k,
                   std::span<const f64> stage) {
  std::vector<f64>& ghost = group == 0
                                ? plan.ghost_data[static_cast<std::size_t>(k)]
                                : plan.ghost_direct[static_cast<std::size_t>(k)];
  const core::CommSchedule& sched =
      group == 0 ? plan.data_loc.schedule : plan.direct_loc.schedule;
  core::gather_exchange<f64>(p, sched, stage, std::span<f64>(ghost));
}

/// UNPACK: the gather's modeled memory charge.
void exec_unpack(rt::Process& p, LoopPlan& plan, i32 group) {
  const core::CommSchedule& sched =
      group == 0 ? plan.data_loc.schedule : plan.direct_loc.schedule;
  core::gather_unpack(p, sched);
}

/// COMPUTE: resolves operand and write slots against current storage, runs
/// the sweep, and charges the modeled per-iteration cost.
void exec_compute(rt::Process& p, LoopPlan& plan) {
  const ForallMeta& m = *plan.meta;

  // Reduction accumulators: [0, nlocal + nghost) of the group's schedule.
  // Plan-owned scratch: assign() keeps capacity, so sweeps after the first
  // reuse the same heap blocks.
  plan.acc_scratch.resize(plan.accs.size());
  for (std::size_t k = 0; k < plan.accs.size(); ++k) {
    const auto& info = plan.accs[k];
    const auto& sched = info.refs_group == 0 ? plan.data_loc.schedule
                                             : plan.direct_loc.schedule;
    plan.acc_scratch[k].assign(
        static_cast<std::size_t>(sched.nlocal_at_build + sched.nghost),
        core::reduce_identity<f64>(info.op));
  }
  // Assign staging: ghost region of each private schedule.
  plan.assign_scratch.resize(plan.assign_loc.size());
  for (std::size_t k = 0; k < plan.assign_loc.size(); ++k) {
    plan.assign_scratch[k].assign(
        static_cast<std::size_t>(plan.assign_loc[k].schedule.nghost), 0.0);
  }

  // Resolve operand slots against current storage (pointers may move after
  // a redistribute, but that invalidates the plan anyway; the PACKs above
  // have already sized the ghost vectors).
  plan.runtime_ops.resize(plan.operands.size());
  for (std::size_t k = 0; k < plan.operands.size(); ++k) {
    const auto& spec = plan.operands[k];
    RuntimeOperand& o = plan.runtime_ops[k];
    if (spec.group == 0) {
      o.refs = plan.data_loc.refs[static_cast<std::size_t>(spec.batch)].data();
      o.ghost =
          plan.ghost_data[static_cast<std::size_t>(spec.ghost_slot)].data();
    } else {
      o.refs = plan.direct_loc.refs.data();
      o.ghost =
          plan.ghost_direct[static_cast<std::size_t>(spec.ghost_slot)].data();
    }
    o.local = spec.array->real->local().data();
    o.nlocal = spec.array->real->nlocal();
  }
  plan.write_slots.resize(m.body.size());
  for (std::size_t si = 0; si < m.body.size(); ++si) {
    const auto& w = plan.writes[si];
    WriteSlot& slot = plan.write_slots[si];
    slot.refs_group = w.refs_group;
    slot.code = &m.code[si];
    slot.rop = core::ReduceOp::Add;
    if (w.refs_group == 2) {
      const auto& loc =
          plan.assign_loc[static_cast<std::size_t>(w.assign_slot)];
      slot.refs = loc.refs.data();
      slot.local = w.target->real->local().data();
      slot.staging =
          plan.assign_scratch[static_cast<std::size_t>(w.assign_slot)].data();
      slot.nlocal = loc.schedule.nlocal_at_build;
    } else {
      slot.refs =
          w.refs_group == 0
              ? plan.data_loc.refs[static_cast<std::size_t>(w.batch)].data()
              : plan.direct_loc.refs.data();
      slot.local = nullptr;
      slot.staging =
          plan.acc_scratch[static_cast<std::size_t>(w.acc_slot)].data();
      slot.rop = plan.accs[static_cast<std::size_t>(w.acc_slot)].op;
      slot.nlocal = -1;
    }
  }

  // The sweep (statically compiled bytecode per statement).
  const i64 niter = static_cast<i64>(plan.iter_ids.size());
  f64 stack[64];
  for (i64 l = 0; l < niter; ++l) {
    const f64 iter_value =
        static_cast<f64>(plan.iter_ids[static_cast<std::size_t>(l)] + 1);
    for (auto& slot : plan.write_slots) {
      const f64 v = eval_code(*slot.code, plan.runtime_ops, plan.scalar_ptrs,
                              l, iter_value, stack);
      const i64 ref = slot.refs[l];
      if (slot.refs_group == 2) {
        if (ref < slot.nlocal) {
          slot.local[ref] = v;
        } else {
          slot.staging[ref - slot.nlocal] = v;
        }
      } else {
        slot.staging[ref] = core::apply_reduce(slot.rop, slot.staging[ref], v);
      }
    }
  }
  p.clock().charge_ops(niter,
                       p.params().flop_us *
                               static_cast<f64>(plan.expr_flops_per_iter) +
                           p.params().mem_us_per_word *
                               static_cast<f64>(plan.mem_refs_per_iter));
}

/// FOLD_SCATTER: folds one accumulator's local part with the op and pushes
/// its ghost part back to the owners.
void exec_fold_scatter(rt::Process& p, LoopPlan& plan, i32 k) {
  const auto& info = plan.accs[static_cast<std::size_t>(k)];
  const std::vector<f64>& acc = plan.acc_scratch[static_cast<std::size_t>(k)];
  const auto& sched = info.refs_group == 0 ? plan.data_loc.schedule
                                           : plan.direct_loc.schedule;
  auto local = info.target->real->local();
  for (i64 j = 0; j < sched.nlocal_at_build; ++j) {
    local[static_cast<std::size_t>(j)] = core::apply_reduce(
        info.op, local[static_cast<std::size_t>(j)],
        acc[static_cast<std::size_t>(j)]);
  }
  p.clock().charge_ops(sched.nlocal_at_build, p.params().flop_us);
  core::scatter_reduce<f64>(
      p, sched, local,
      std::span<const f64>(acc).subspan(
          static_cast<std::size_t>(sched.nlocal_at_build)),
      info.op, plan.ws);
}

/// SCATTER_ASSIGN: writes one private schedule's ghost values into the
/// owners' elements.
void exec_scatter_assign(rt::Process& p, LoopPlan& plan, i32 k) {
  core::scatter_assign<f64>(
      p, plan.assign_loc[static_cast<std::size_t>(k)].schedule,
      plan.assign_targets[static_cast<std::size_t>(k)]->real->local(),
      plan.assign_scratch[static_cast<std::size_t>(k)], plan.ws);
}

/// NOTE_WRITES: the loop modified its targets — record it (once per written
/// array; this is the "once per loop, not per element" property of nmod).
void exec_note_writes(LoopPlan& plan, core::ReuseRegistry& reg) {
  for (ArrayInfo* target : plan.written_targets) {
    reg.note_write(target->dad());
  }
}

/// Executes one FORALL through its plan (phase E) — the tree-walk oracle's
/// executor, composed of the same ops the VM dispatches one by one, so both
/// modes charge the virtual clock in the same sequence. Collective.
void execute_loop(rt::Process& p, LoopPlan& plan, core::ReuseRegistry& reg) {
  CHAOS_CHECK(plan.build.ready(),
              "execute_loop: plan build incomplete — a failed inspection "
              "must be retried before executing");
  for (i32 k = 0; k < static_cast<i32>(plan.reads_data.size()); ++k) {
    const std::span<f64> stage = exec_pack(plan, 0, k);
    exec_exchange(p, plan, 0, k, stage);
    exec_unpack(p, plan, 0);
  }
  for (i32 k = 0; k < static_cast<i32>(plan.reads_direct.size()); ++k) {
    const std::span<f64> stage = exec_pack(plan, 1, k);
    exec_exchange(p, plan, 1, k, stage);
    exec_unpack(p, plan, 1);
  }
  exec_compute(p, plan);
  for (i32 k = 0; k < static_cast<i32>(plan.accs.size()); ++k) {
    exec_fold_scatter(p, plan, k);
  }
  for (i32 k = 0; k < static_cast<i32>(plan.assign_loc.size()); ++k) {
    exec_scatter_assign(p, plan, k);
  }
  exec_note_writes(plan, reg);
}

}  // namespace

// ---------------------------------------------------------------------------
// Statement dispatch: the tree-walk oracle
// ---------------------------------------------------------------------------

void Instance::run_statement(rt::Process& p, const Statement& s) {
  State& st = *state_;

  if (const auto* loop = std::get_if<DoLoop>(&s.node)) {
    const i64 lo = resolve_size(loop->lo, st.scalars);
    const i64 hi = resolve_size(loop->hi, st.scalars);
    for (i64 v = lo; v <= hi; ++v) {
      st.scalars[loop->var] = v;
      for (const auto& inner : loop->body) run_statement(p, inner);
    }
    return;
  }
  if (const auto* f = std::get_if<Forall>(&s.node)) {
    const ForallMeta* meta = nullptr;
    for (const auto& fm : plan_->foralls) {
      if (fm.loop_id == f->loop_id) {
        meta = &fm;
        break;
      }
    }
    CHAOS_CHECK(meta != nullptr, "tree walk: FORALL missing from PlanIR");
    const i64 lo = resolve_size(f->lo, st.scalars);
    if (lo != 1) sema_fail("FORALL lower bound must be 1", f->line);
    const i64 n = resolve_size(f->hi, st.scalars);

    std::shared_ptr<LoopPlan> plan;
    if (reuse_enabled_) {
      // Assemble the guard DADs from a fresh AST scan — the tree walker's
      // per-sweep overhead the VM's CHECK_INCARNATION replaces. (The
      // iteration space's DAD rides along with the indirection guards.)
      ExprScan scan;
      std::set<std::string> all_arrays;
      for (const auto& stmt : f->body) {
        scan.note_index(stmt.target_index);
        scan.scan(*stmt.value);
        all_arrays.insert(stmt.target_array);
      }
      for (const auto& a : scan.read_data) all_arrays.insert(a);
      for (const auto& a : scan.read_direct) all_arrays.insert(a);
      std::vector<dist::Dad> data_dads;
      for (const auto& name : all_arrays) {
        data_dads.push_back(lookup_array(st, name, f->line).dad());
      }
      std::vector<dist::Dad> ind_dads;
      for (const auto& name : scan.ind_names) {
        ind_dads.push_back(lookup_array(st, name, f->line).dad());
      }
      auto build = [&] {
        return build_plan(p, st, *meta, n, plan_opts_, phases_);
      };
      if (plan_opts_.repair_enabled()) {
        plan = st.cache.get_or_build<LoopPlan>(
            f->loop_id, st.registry, std::move(data_dads),
            std::move(ind_dads), build,
            [&](const std::shared_ptr<LoopPlan>& cand) {
              return repair_plan(p, st, *meta, n, *cand, phases_);
            });
      } else {
        // SPMD-uniform short-circuit: with repair off, the plain overload —
        // no vote collectives, no fallback counting, stats bit-identical to
        // the VM's two-way probe.
        plan = st.cache.get_or_build<LoopPlan>(
            f->loop_id, st.registry, std::move(data_dads),
            std::move(ind_dads), build);
      }
    } else {
      plan = build_plan(p, st, *meta, n, plan_opts_, phases_);
    }

    rt::ClockSection section(p.clock());
    execute_loop(p, *plan, st.registry);
    phases_.executor += section.elapsed_sec();
    return;
  }
  run_directive(p, s);
}

// ---------------------------------------------------------------------------
// Directives (shared: the VM's DIRECTIVE op and the tree walk both land here)
// ---------------------------------------------------------------------------

void Instance::run_directive(rt::Process& p, const Statement& s) {
  State& st = *state_;

  if (const auto* d = std::get_if<DeclArrays>(&s.node)) {
    for (const auto& [name, size] : d->arrays) {
      if (st.arrays.count(name)) sema_fail("array '" + name + "' redeclared",
                                           size.line);
      ArrayInfo info;
      info.type = d->type;
      info.size = resolve_size(size, st.scalars);
      info.decl_line = size.line;
      st.arrays.emplace(name, std::move(info));
    }
    return;
  }
  if (const auto* d = std::get_if<DeclDecomps>(&s.node)) {
    for (const auto& [name, size] : d->decomps) {
      if (st.decomps.count(name)) {
        sema_fail("decomposition '" + name + "' redeclared", size.line);
      }
      DecompInfo info;
      info.size = resolve_size(size, st.scalars);
      info.decl_line = size.line;
      st.decomps.emplace(name, std::move(info));
    }
    return;
  }
  if (const auto* d = std::get_if<Distribute>(&s.node)) {
    auto it = st.decomps.find(d->decomp);
    if (it == st.decomps.end()) {
      sema_fail("DISTRIBUTE of unknown decomposition '" + d->decomp + "'",
                d->line);
    }
    DecompInfo& dec = it->second;
    if (d->format == "BLOCK") {
      dec.dist = dist::Distribution::block(p, dec.size);
    } else if (d->format == "CYCLIC") {
      dec.dist = dist::Distribution::cyclic(p, dec.size);
    } else {
      const auto dit = st.dists.find(d->format);
      if (dit == st.dists.end()) {
        sema_fail("unknown distribution format '" + d->format + "'", d->line);
      }
      dec.dist = dit->second;
    }
    return;
  }
  if (const auto* a = std::get_if<Align>(&s.node)) {
    auto dit = st.decomps.find(a->decomp);
    if (dit == st.decomps.end()) {
      sema_fail("ALIGN with unknown decomposition '" + a->decomp + "'",
                a->line);
    }
    DecompInfo& dec = dit->second;
    if (!dec.dist) {
      sema_fail("ALIGN before DISTRIBUTE of '" + a->decomp + "'", a->line);
    }
    for (const auto& name : a->arrays) {
      auto ait = st.arrays.find(name);
      if (ait == st.arrays.end()) {
        sema_fail("ALIGN of unknown array '" + name + "'", a->line);
      }
      ArrayInfo& arr = ait->second;
      if (arr.size != dec.size) {
        sema_fail("array '" + name + "' and decomposition '" + a->decomp +
                      "' differ in extent",
                  a->line);
      }
      arr.decomp = a->decomp;
      dec.aligned.push_back(name);
      // Materialize storage and pick up the host binding.
      if (arr.type == ElemType::Real8) {
        arr.real = std::make_unique<dist::DistributedArray<f64>>(p, dec.dist);
        const auto bit = real_bindings_.find(name);
        if (bit != real_bindings_.end()) {
          CHAOS_CHECK(static_cast<i64>(bit->second.size()) == arr.size,
                      "binding for " + name + " has wrong length");
          const auto& vals = bit->second;
          arr.real->fill_by_global(
              [&vals](i64 g) { return vals[static_cast<std::size_t>(g)]; });
        }
      } else {
        arr.integer =
            std::make_unique<dist::DistributedArray<i64>>(p, dec.dist);
        const auto bit = int_bindings_.find(name);
        if (bit != int_bindings_.end()) {
          CHAOS_CHECK(static_cast<i64>(bit->second.size()) == arr.size,
                      "binding for " + name + " has wrong length");
          const auto& vals = bit->second;
          arr.integer->fill_by_global(
              [&vals](i64 g) { return vals[static_cast<std::size_t>(g)]; });
        }
      }
      st.registry.note_write(arr.dad());  // initialization is a write
    }
    return;
  }
  if (const auto* c = std::get_if<Construct>(&s.node)) {
    rt::ClockSection section(p.clock());
    const i64 nverts = resolve_size(c->nverts, st.scalars);
    // The vertex distribution: the decomposition of the geometry/load
    // arrays if given, else any distributed decomposition of extent nverts.
    std::shared_ptr<const dist::Distribution> vdist;
    auto adopt = [&](const std::string& array_name) {
      ArrayInfo& a = lookup_array(st, array_name, c->line);
      if (!vdist) {
        vdist = a.dist_ptr();
      } else if (!(vdist->dad() == a.dad())) {
        sema_fail("CONSTRUCT per-vertex arrays must share a distribution",
                  c->line);
      }
    };
    for (const auto& g : c->geometry_arrays) adopt(g);
    if (!c->load_array.empty()) adopt(c->load_array);
    if (!vdist) {
      for (const auto& [name, dec] : st.decomps) {
        if (dec.size == nverts && dec.dist) {
          vdist = dec.dist;
          break;
        }
      }
    }
    if (!vdist) {
      sema_fail("CONSTRUCT: no distributed decomposition of extent " +
                    std::to_string(nverts),
                c->line);
    }
    if (vdist->size() != nverts) {
      sema_fail("CONSTRUCT: vertex count mismatch", c->line);
    }

    // Guard DADs: every array the GeoCoL is built from. If none changed
    // (and none may have been written) since the last CONSTRUCT here, the
    // cached graph is reused — the paper's mapper-level application of the
    // Section 3 method.
    std::vector<dist::Dad> source_dads;
    for (const auto& g : c->geometry_arrays) {
      source_dads.push_back(lookup_array(st, g, c->line).dad());
    }
    if (!c->load_array.empty()) {
      source_dads.push_back(lookup_array(st, c->load_array, c->line).dad());
    }
    for (const auto& [uname, vname] : c->links) {
      source_dads.push_back(lookup_array(st, uname, c->line).dad());
      source_dads.push_back(lookup_array(st, vname, c->line).dad());
    }
    st.geocol_sources[c->name] = source_dads;

    auto build_geocol = [&] {
      core::GeoColBuilder builder(p, vdist);
      std::vector<std::span<const f64>> coords;
      for (const auto& g : c->geometry_arrays) {
        ArrayInfo& a = lookup_array(st, g, c->line);
        if (a.type != ElemType::Real8) {
          sema_fail("GEOMETRY array '" + g + "' must be REAL*8", c->line);
        }
        coords.push_back(a.real->local());
      }
      if (!coords.empty()) builder.geometry(coords);
      if (!c->load_array.empty()) {
        ArrayInfo& a = lookup_array(st, c->load_array, c->line);
        if (a.type != ElemType::Real8) {
          sema_fail("LOAD array must be REAL*8", c->line);
        }
        builder.load(a.real->local());
      }
      for (const auto& [uname, vname] : c->links) {
        ArrayInfo& ua = lookup_array(st, uname, c->line);
        ArrayInfo& va = lookup_array(st, vname, c->line);
        if (ua.type != ElemType::Integer || va.type != ElemType::Integer) {
          sema_fail("LINK arrays must be INTEGER", c->line);
        }
        const i64 declared = resolve_size(c->link_size, st.scalars);
        if (ua.size != declared || va.size != declared) {
          sema_fail("LINK arrays do not match the declared edge count",
                    c->line);
        }
        // Convert the 1-based endpoints to 0-based vertex ids.
        std::vector<i64> u0(ua.integer->local().begin(),
                            ua.integer->local().end());
        std::vector<i64> v0(va.integer->local().begin(),
                            va.integer->local().end());
        for (auto& x : u0) x -= 1;
        for (auto& x : v0) x -= 1;
        builder.link(u0, v0);
      }
      return std::make_shared<GeoColProduct>(GeoColProduct{builder.build()});
    };
    if (reuse_enabled_) {
      const auto key = reinterpret_cast<chaos::u64>(c);
      auto product = st.mapper_cache.get_or_build<GeoColProduct>(
          key, st.registry, {}, source_dads, build_geocol);
      st.geocols[c->name] = product->geocol;
    } else {
      st.geocols[c->name] = build_geocol()->geocol;
    }
    phases_.graph_gen += section.elapsed_sec();
    return;
  }
  if (const auto* sp = std::get_if<SetPartition>(&s.node)) {
    rt::ClockSection section(p.clock());
    const auto git = st.geocols.find(sp->geocol);
    if (git == st.geocols.end()) {
      sema_fail("SET: unknown GeoCoL '" + sp->geocol + "'", sp->line);
    }
    auto build_dist = [&] {
      return std::make_shared<DistProduct>(DistProduct{
          core::set_by_partitioning(p, *git->second, sp->partitioner)});
    };
    if (reuse_enabled_) {
      // Guarded by the same source arrays that fed the GeoCoL: unchanged
      // sources mean an unchanged graph, so the old partition stands.
      const auto sit = st.geocol_sources.find(sp->geocol);
      const std::vector<dist::Dad> guard =
          sit != st.geocol_sources.end() ? sit->second
                                         : std::vector<dist::Dad>{};
      const auto key = reinterpret_cast<chaos::u64>(sp);
      auto product = st.mapper_cache.get_or_build<DistProduct>(
          key, st.registry, {}, guard, build_dist);
      st.dists[sp->dist_name] = product->dist;
    } else {
      st.dists[sp->dist_name] = build_dist()->dist;
    }
    phases_.partition += section.elapsed_sec();
    return;
  }
  if (const auto* r = std::get_if<Redistribute>(&s.node)) {
    rt::ClockSection section(p.clock());
    auto dit = st.decomps.find(r->decomp);
    if (dit == st.decomps.end()) {
      sema_fail("REDISTRIBUTE of unknown decomposition '" + r->decomp + "'",
                r->line);
    }
    const auto fit = st.dists.find(r->dist_name);
    if (fit == st.dists.end()) {
      sema_fail("REDISTRIBUTE with unknown distribution '" + r->dist_name +
                    "'",
                r->line);
    }
    DecompInfo& dec = dit->second;
    if (dec.size != fit->second->size()) {
      sema_fail("REDISTRIBUTE: extent mismatch", r->line);
    }
    core::Redistributor rd(&st.registry);
    for (const auto& name : dec.aligned) {
      ArrayInfo& a = st.arrays.at(name);
      if (a.real) rd.add(*a.real);
      if (a.integer) rd.add(*a.integer);
    }
    rd.apply(p, fit->second);
    dec.dist = fit->second;
    phases_.remap += section.elapsed_sec();
    return;
  }
  CHAOS_CHECK(false, "unhandled statement kind");
}

// ---------------------------------------------------------------------------
// The VM: a dispatch loop over PlanIR
// ---------------------------------------------------------------------------

void Instance::run_vm(rt::Process& p) {
  State& st = *state_;
  const ProgramPlan& prog = *plan_;
  st.frt.resize(prog.foralls.size());

  /// DO-loop activation record (bounds resolved once at LOOP_BEGIN).
  struct Frame {
    i64 cur;
    i64 hi;
    i32 body_pc;
    const std::string* var;
  };
  std::vector<Frame> frames;

  i32 pc = 0;
  const i32 end = static_cast<i32>(prog.code.size());
  while (pc < end) {
    const PlanInstr ins = prog.code[static_cast<std::size_t>(pc)];
    switch (ins.op) {
      case PlanOp::Directive: {
        run_directive(p, *prog.directives[static_cast<std::size_t>(ins.a)]);
        ++pc;
        break;
      }
      case PlanOp::LoopBegin: {
        const LoopMeta& lm = prog.loops[static_cast<std::size_t>(ins.a)];
        const i64 lo = resolve_size(lm.lo, st.scalars);
        const i64 hi = resolve_size(lm.hi, st.scalars);
        if (lo > hi) {
          pc = ins.b;  // empty loop: the variable is never assigned
          break;
        }
        st.scalars[lm.var] = lo;
        frames.push_back({lo, hi, pc + 1, &lm.var});
        ++pc;
        break;
      }
      case PlanOp::LoopEnd: {
        Frame& fr = frames.back();
        if (++fr.cur <= fr.hi) {
          st.scalars[*fr.var] = fr.cur;
          pc = fr.body_pc;
        } else {
          frames.pop_back();  // the variable keeps its final value
          ++pc;
        }
        break;
      }
      case PlanOp::CheckIncarnation: {
        const ForallMeta& m = prog.foralls[static_cast<std::size_t>(ins.a)];
        ForallRt& fx = st.frt[static_cast<std::size_t>(ins.a)];
        const i64 lo = resolve_size(m.lo, st.scalars);
        if (lo != 1) sema_fail("FORALL lower bound must be 1", m.line);
        fx.n = resolve_size(m.hi, st.scalars);
        fx.plan = nullptr;
        if (reuse_enabled_) {
          fx.guard_data.clear();
          for (const auto& name : m.guard_arrays) {
            fx.guard_data.push_back(lookup_array(st, name, m.line).dad());
          }
          fx.guard_ind.clear();
          for (const auto& name : m.ind_names) {
            fx.guard_ind.push_back(lookup_array(st, name, m.line).dad());
          }
          if (!plan_opts_.repair_enabled()) {
            // Two-way probe: hit or plain miss, the pre-repair protocol.
            if (auto hit = st.plan_cache.probe(m.loop_id, st.registry,
                                               fx.guard_data, fx.guard_ind)) {
              fx.plan = std::static_pointer_cast<LoopPlan>(std::move(hit));
              pc = ins.b;  // warm entry: straight to EXEC_BEGIN
              break;
            }
          } else {
            // Three-way probe (DESIGN.md §14): hit, repair candidate (DADs
            // match, only the indirection stamp is stale — try the splice
            // before paying a full re-inspection), or miss.
            auto pr = st.plan_cache.probe_ex(m.loop_id, st.registry,
                                             fx.guard_data, fx.guard_ind);
            if (pr.outcome == core::PlanCache::ProbeOutcome::Hit) {
              fx.plan = std::static_pointer_cast<LoopPlan>(
                  std::move(pr.product));
              pc = ins.b;
              break;
            }
            if (pr.outcome == core::PlanCache::ProbeOutcome::RepairCandidate) {
              auto cand =
                  std::static_pointer_cast<LoopPlan>(std::move(pr.product));
              if (repair_plan(p, st, m, fx.n, *cand, phases_)) {
                st.plan_cache.note_repaired(m.loop_id, st.registry,
                                            fx.guard_data, fx.guard_ind);
                fx.plan = std::move(cand);
                pc = ins.b;  // repaired entry: straight to EXEC_BEGIN
                break;
              }
              st.plan_cache.note_repair_fallback();
            }
          }
        }
        ++pc;  // cold: fall through to PARTITION / LOCALIZE / STORE_PLAN
        break;
      }
      case PlanOp::Partition: {
        const ForallMeta& m = prog.foralls[static_cast<std::size_t>(ins.a)];
        ForallRt& fx = st.frt[static_cast<std::size_t>(ins.a)];
        fx.plan = std::make_shared<LoopPlan>();
        fx.plan->build.begin_build();
        fx.plan->meta = &m;
        fx.plan->iws.configure(plan_opts_);
        fx.plan->direct_iws.configure(plan_opts_);
        plan_partition(p, st, m, fx.n, *fx.plan, phases_);
        ++pc;
        break;
      }
      case PlanOp::Localize: {
        const ForallMeta& m = prog.foralls[static_cast<std::size_t>(ins.a)];
        ForallRt& fx = st.frt[static_cast<std::size_t>(ins.a)];
        plan_localize(p, st, m, *fx.plan, phases_);
        fx.plan->build.mark_built();
        ++pc;
        break;
      }
      case PlanOp::StorePlan: {
        const ForallMeta& m = prog.foralls[static_cast<std::size_t>(ins.a)];
        ForallRt& fx = st.frt[static_cast<std::size_t>(ins.a)];
        if (reuse_enabled_) {
          st.plan_cache.store(m.loop_id, st.registry, fx.guard_data,
                              fx.guard_ind, fx.plan);
        }
        ++pc;
        break;
      }
      case PlanOp::ExecBegin: {
        ForallRt& fx = st.frt[static_cast<std::size_t>(ins.a)];
        CHAOS_CHECK(fx.plan && fx.plan->build.ready(),
                    "execute_loop: plan build incomplete — a failed "
                    "inspection must be retried before executing");
        fx.exec_section.emplace(p.clock());
        ++pc;
        break;
      }
      case PlanOp::Pack: {
        ForallRt& fx = st.frt[static_cast<std::size_t>(ins.a)];
        fx.stage = exec_pack(*fx.plan, ins.b, ins.c);
        ++pc;
        break;
      }
      case PlanOp::Exchange: {
        ForallRt& fx = st.frt[static_cast<std::size_t>(ins.a)];
        exec_exchange(p, *fx.plan, ins.b, ins.c, fx.stage);
        ++pc;
        break;
      }
      case PlanOp::Unpack: {
        ForallRt& fx = st.frt[static_cast<std::size_t>(ins.a)];
        exec_unpack(p, *fx.plan, ins.b);
        ++pc;
        break;
      }
      case PlanOp::Compute: {
        ForallRt& fx = st.frt[static_cast<std::size_t>(ins.a)];
        exec_compute(p, *fx.plan);
        ++pc;
        break;
      }
      case PlanOp::FoldScatter: {
        ForallRt& fx = st.frt[static_cast<std::size_t>(ins.a)];
        exec_fold_scatter(p, *fx.plan, ins.c);
        ++pc;
        break;
      }
      case PlanOp::ScatterAssign: {
        ForallRt& fx = st.frt[static_cast<std::size_t>(ins.a)];
        exec_scatter_assign(p, *fx.plan, ins.c);
        ++pc;
        break;
      }
      case PlanOp::NoteWrites: {
        ForallRt& fx = st.frt[static_cast<std::size_t>(ins.a)];
        exec_note_writes(*fx.plan, st.registry);
        ++pc;
        break;
      }
      case PlanOp::ExecEnd: {
        ForallRt& fx = st.frt[static_cast<std::size_t>(ins.a)];
        phases_.executor += fx.exec_section->elapsed_sec();
        fx.exec_section.reset();
        ++pc;
        break;
      }
    }
  }
}

void Instance::execute(rt::Process& p) {
  state_ = std::make_unique<State>();
  phases_ = PhaseTimes{};
  for (const auto& [name, value] : host_params_) {
    state_->scalars[name] = value;
  }
  // Every parameter the parser collected must be bound.
  for (const auto& name : program_->params) {
    if (!state_->scalars.count(name)) {
      throw LangError("parameter '" + name + "' is not bound by the host", 0);
    }
  }
  if (tree_walk_) {
    for (const auto& s : program_->statements) run_statement(p, s);
  } else {
    run_vm(p);
  }
}

std::vector<f64> Instance::fetch_real(rt::Process& p,
                                      const std::string& array) {
  CHAOS_CHECK(state_ != nullptr, "fetch before execute");
  std::string key = array;
  std::transform(key.begin(), key.end(), key.begin(), ::toupper);
  ArrayInfo& a = lookup_array(*state_, key, 0);
  CHAOS_CHECK(a.type == ElemType::Real8, "fetch_real of INTEGER array");
  return a.real->to_global(p);
}

std::vector<i64> Instance::fetch_int(rt::Process& p,
                                     const std::string& array) {
  CHAOS_CHECK(state_ != nullptr, "fetch before execute");
  std::string key = array;
  std::transform(key.begin(), key.end(), key.begin(), ::toupper);
  ArrayInfo& a = lookup_array(*state_, key, 0);
  CHAOS_CHECK(a.type == ElemType::Integer, "fetch_int of REAL*8 array");
  return a.integer->to_global(p);
}

void Instance::overwrite_int(rt::Process& p, const std::string& array,
                             const std::vector<i64>& global_values) {
  CHAOS_CHECK(state_ != nullptr, "overwrite before execute");
  std::string key = array;
  std::transform(key.begin(), key.end(), key.begin(), ::toupper);
  ArrayInfo& a = lookup_array(*state_, key, 0);
  CHAOS_CHECK(a.type == ElemType::Integer, "overwrite_int of REAL*8 array");
  CHAOS_CHECK(static_cast<i64>(global_values.size()) == a.size,
              "overwrite_int: wrong length");
  a.integer->fill_by_global(
      [&](i64 g) { return global_values[static_cast<std::size_t>(g)]; });
  state_->registry.note_write(a.dad());
  rt::barrier(p);
}

}  // namespace chaos::lang
