#include "lang/parser.hpp"

#include <algorithm>
#include <optional>
#include <set>
#include <sstream>

#include "lang/token.hpp"

namespace chaos::lang {

namespace {

struct Line {
  std::vector<Token> tokens;
  int number;
};

/// Splits the source into directive/statement lines, dropping comments and
/// stripping the "C$" directive prefix.
std::vector<Line> logical_lines(const std::string& source) {
  std::vector<Line> out;
  std::istringstream in(source);
  std::string raw;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    std::string text = raw;
    // Fixed-form comment: 'C' or '*' in column 1 (but "C$" is a directive).
    if (!text.empty() && (text[0] == 'C' || text[0] == 'c' || text[0] == '*')) {
      if (text.size() >= 2 && text[1] == '$') {
        // Blank the sentinel instead of stripping it so token columns keep
        // pointing at the raw source line in diagnostics.
        text[0] = ' ';
        text[1] = ' ';
      } else {
        continue;
      }
    }
    // Blank / pure-comment lines vanish.
    auto tokens = tokenize_line(text, line_no);
    if (tokens.size() <= 1) continue;
    out.push_back(Line{std::move(tokens), line_no});
  }
  return out;
}

class Parser {
 public:
  explicit Parser(std::vector<Line> lines) : lines_(std::move(lines)) {}

  Program parse() {
    Program prog;
    while (cursor_ < lines_.size()) {
      prog.statements.push_back(parse_statement(prog));
      for (auto& s : pending_) prog.statements.push_back(std::move(s));
      pending_.clear();
    }
    prog.params.assign(params_.begin(), params_.end());
    return prog;
  }

 private:
  // --- line-level helpers ---------------------------------------------------

  const Line& line() const { return lines_[cursor_]; }

  [[noreturn]] void fail(const std::string& msg, const Token& t) const {
    throw LangError(msg, t.line, t.column);
  }

  struct Cursor {
    const std::vector<Token>* toks;
    std::size_t i = 0;
    const Token& peek() const { return (*toks)[i]; }
    const Token& next() { return (*toks)[i++]; }
  };

  static bool is_ident(const Token& t, const char* kw) {
    return t.kind == Tok::Ident && t.text == kw;
  }

  Token expect(Cursor& c, Tok kind, const char* what) {
    if (c.peek().kind != kind) fail(std::string("expected ") + what, c.peek());
    return c.next();
  }

  std::string expect_name(Cursor& c, const char* what) {
    return expect(c, Tok::Ident, what).text;
  }

  void expect_kw(Cursor& c, const char* kw) {
    const Token& t = c.next();
    if (t.kind != Tok::Ident || t.text != kw) {
      fail(std::string("expected keyword ") + kw, t);
    }
  }

  void expect_eol(Cursor& c) {
    if (c.peek().kind != Tok::End) fail("unexpected trailing tokens", c.peek());
  }

  SizeExpr parse_size(Cursor& c) {
    SizeExpr s;
    s.line = c.peek().line;
    s.column = c.peek().column;
    if (c.peek().kind == Tok::Number) {
      const Token t = c.next();
      s.literal = static_cast<i64>(t.number);
      if (static_cast<f64>(s.literal) != t.number || s.literal < 0) {
        fail("extent must be a non-negative integer", t);
      }
    } else {
      s.param = expect_name(c, "extent (literal or parameter name)");
      params_.insert(s.param);
    }
    return s;
  }

  // --- statements -----------------------------------------------------------

  Statement parse_statement(Program& prog) {
    Cursor c{&line().tokens};
    const Token head = c.peek();
    if (head.kind != Tok::Ident) fail("expected a statement keyword", head);

    if (head.text == "REAL*8" || head.text == "REAL" ||
        head.text == "INTEGER") {
      return Statement{parse_decl_arrays(c)};
    }
    if (head.text == "DYNAMIC" || head.text == "DECOMPOSITION") {
      return Statement{parse_decl_decomps(c)};
    }
    if (head.text == "DISTRIBUTE") return Statement{parse_distribute(c)};
    if (head.text == "ALIGN") return Statement{parse_align(c)};
    if (head.text == "CONSTRUCT") return Statement{parse_construct(c)};
    if (head.text == "SET") return Statement{parse_set(c)};
    if (head.text == "REDISTRIBUTE") return Statement{parse_redistribute(c)};
    if (head.text == "FORALL") return Statement{parse_forall(c, prog)};
    if (head.text == "DO") return Statement{parse_do(c, prog)};
    fail("unknown statement '" + head.text + "'", head);
  }

  DeclArrays parse_decl_arrays(Cursor& c) {
    DeclArrays d;
    const Token head = c.next();
    d.type = head.text == "INTEGER" ? ElemType::Integer : ElemType::Real8;
    while (true) {
      const std::string name = expect_name(c, "array name");
      expect(c, Tok::LParen, "'('");
      SizeExpr size = parse_size(c);
      expect(c, Tok::RParen, "')'");
      d.arrays.emplace_back(name, std::move(size));
      if (c.peek().kind != Tok::Comma) break;
      c.next();
    }
    expect_eol(c);
    ++cursor_;
    return d;
  }

  DeclDecomps parse_decl_decomps(Cursor& c) {
    if (is_ident(c.peek(), "DYNAMIC")) {
      c.next();
      if (c.peek().kind == Tok::Comma) c.next();
      expect_kw(c, "DECOMPOSITION");
    } else {
      expect_kw(c, "DECOMPOSITION");
    }
    DeclDecomps d;
    while (true) {
      const std::string name = expect_name(c, "decomposition name");
      expect(c, Tok::LParen, "'('");
      SizeExpr size = parse_size(c);
      expect(c, Tok::RParen, "')'");
      d.decomps.emplace_back(name, std::move(size));
      if (c.peek().kind != Tok::Comma) break;
      c.next();
    }
    expect_eol(c);
    ++cursor_;
    return d;
  }

  Distribute parse_distribute(Cursor& c) {
    const int col = c.peek().column;
    expect_kw(c, "DISTRIBUTE");
    Distribute d;
    d.line = line().number;
    d.column = col;
    d.decomp = expect_name(c, "decomposition name");
    expect(c, Tok::LParen, "'('");
    d.format = expect_name(c, "distribution format");
    expect(c, Tok::RParen, "')'");
    // The paper writes "DISTRIBUTE reg(BLOCK), reg2(BLOCK)": accept the
    // multi-target form by splitting into chained statements is overkill —
    // instead allow extra pairs and keep them in extras_.
    while (c.peek().kind == Tok::Comma) {
      c.next();
      Distribute more;
      more.line = d.line;
      more.column = c.peek().column;
      more.decomp = expect_name(c, "decomposition name");
      expect(c, Tok::LParen, "'('");
      more.format = expect_name(c, "distribution format");
      expect(c, Tok::RParen, "')'");
      pending_.push_back(Statement{std::move(more)});
    }
    expect_eol(c);
    ++cursor_;
    return d;
  }

  Align parse_align(Cursor& c) {
    const int col = c.peek().column;
    expect_kw(c, "ALIGN");
    Align a;
    a.line = line().number;
    a.column = col;
    while (true) {
      a.arrays.push_back(expect_name(c, "array name"));
      if (c.peek().kind != Tok::Comma) break;
      c.next();
    }
    expect_kw(c, "WITH");
    a.decomp = expect_name(c, "decomposition name");
    expect_eol(c);
    ++cursor_;
    return a;
  }

  Construct parse_construct(Cursor& c) {
    const int col = c.peek().column;
    expect_kw(c, "CONSTRUCT");
    Construct g;
    g.line = line().number;
    g.column = col;
    g.name = expect_name(c, "GeoCoL name");
    expect(c, Tok::LParen, "'('");
    g.nverts = parse_size(c);
    while (c.peek().kind == Tok::Comma) {
      c.next();
      const std::string clause = expect_name(c, "GEOMETRY, LINK or LOAD");
      expect(c, Tok::LParen, "'('");
      if (clause == "GEOMETRY") {
        const Token dims = expect(c, Tok::Number, "dimension count");
        g.geometry_dims = static_cast<int>(dims.number);
        if (g.geometry_dims < 1 || g.geometry_dims > 3) {
          fail("GEOMETRY dimensionality must be 1..3", dims);
        }
        for (int d = 0; d < g.geometry_dims; ++d) {
          expect(c, Tok::Comma, "','");
          g.geometry_arrays.push_back(expect_name(c, "coordinate array"));
        }
      } else if (clause == "LINK") {
        g.link_size = parse_size(c);
        expect(c, Tok::Comma, "','");
        const std::string u = expect_name(c, "edge array");
        expect(c, Tok::Comma, "','");
        const std::string v = expect_name(c, "edge array");
        g.links.emplace_back(u, v);
      } else if (clause == "LOAD") {
        g.load_array = expect_name(c, "weight array");
      } else {
        fail("unknown CONSTRUCT clause '" + clause + "'", c.peek());
      }
      expect(c, Tok::RParen, "')'");
    }
    expect(c, Tok::RParen, "')'");
    expect_eol(c);
    ++cursor_;
    return g;
  }

  SetPartition parse_set(Cursor& c) {
    const int col = c.peek().column;
    expect_kw(c, "SET");
    SetPartition s;
    s.line = line().number;
    s.column = col;
    s.dist_name = expect_name(c, "distribution name");
    expect_kw(c, "BY");
    expect_kw(c, "PARTITIONING");
    s.geocol = expect_name(c, "GeoCoL name");
    expect_kw(c, "USING");
    s.partitioner = expect_name(c, "partitioner name");
    // Registered partitioner names may contain '+' ("RCB+KL").
    if (c.peek().kind == Tok::Plus) {
      c.next();
      s.partitioner += "+" + expect_name(c, "partitioner suffix");
    }
    expect_eol(c);
    ++cursor_;
    return s;
  }

  Redistribute parse_redistribute(Cursor& c) {
    const int col = c.peek().column;
    expect_kw(c, "REDISTRIBUTE");
    Redistribute r;
    r.line = line().number;
    r.column = col;
    r.decomp = expect_name(c, "decomposition name");
    expect(c, Tok::LParen, "'('");
    r.dist_name = expect_name(c, "distribution name");
    expect(c, Tok::RParen, "')'");
    expect_eol(c);
    ++cursor_;
    return r;
  }

  DoLoop parse_do(Cursor& c, Program& prog) {
    const int col = c.peek().column;
    expect_kw(c, "DO");
    DoLoop loop;
    loop.line = line().number;
    loop.column = col;
    loop.var = expect_name(c, "loop variable");
    expect(c, Tok::Assign, "'='");
    loop.lo = parse_size(c);
    // The DO variable must not be mistaken for a host parameter.
    params_.erase(loop.var);
    do_vars_.insert(loop.var);
    expect(c, Tok::Comma, "','");
    loop.hi = parse_size(c);
    expect_eol(c);
    ++cursor_;
    while (true) {
      if (cursor_ >= lines_.size()) {
        throw LangError("DO without END DO", loop.line, loop.column);
      }
      Cursor probe{&line().tokens};
      if (is_ident(probe.peek(), "END")) {
        probe.next();
        expect_kw(probe, "DO");
        expect_eol(probe);
        ++cursor_;
        break;
      }
      if (is_ident(probe.peek(), "ENDDO")) {
        probe.next();
        expect_eol(probe);
        ++cursor_;
        break;
      }
      loop.body.push_back(parse_statement(prog));
      // Flush multi-target DISTRIBUTE extras into the block.
      for (auto& s : pending_) loop.body.push_back(std::move(s));
      pending_.clear();
    }
    return loop;
  }

  Forall parse_forall(Cursor& c, Program& prog) {
    const int col = c.peek().column;
    expect_kw(c, "FORALL");
    Forall f;
    f.line = line().number;
    f.column = col;
    f.loop_id = ++prog.forall_count;
    f.loop_var = expect_name(c, "loop variable");
    expect(c, Tok::Assign, "'='");
    f.lo = parse_size(c);
    params_.erase(f.loop_var);
    expect(c, Tok::Comma, "','");
    f.hi = parse_size(c);
    expect_eol(c);
    ++cursor_;

    while (true) {
      if (cursor_ >= lines_.size()) {
        throw LangError("FORALL without END FORALL", f.line, f.column);
      }
      Cursor b{&line().tokens};
      if (is_ident(b.peek(), "END")) {
        b.next();
        expect_kw(b, "FORALL");
        expect_eol(b);
        ++cursor_;
        break;
      }
      f.body.push_back(parse_loop_statement(b, f.loop_var));
      ++cursor_;
    }
    if (f.body.empty()) {
      throw LangError("empty FORALL body", f.line, f.column);
    }
    return f;
  }

  LoopStatement parse_loop_statement(Cursor& c, const std::string& loop_var) {
    LoopStatement s;
    s.line = line().number;
    s.column = c.peek().column;
    if (is_ident(c.peek(), "REDUCE")) {
      c.next();
      expect(c, Tok::LParen, "'('");
      const std::string op = expect_name(c, "ADD, MAX or MIN");
      if (op == "ADD") {
        s.op = LoopReduceOp::Add;
      } else if (op == "MAX") {
        s.op = LoopReduceOp::Max;
      } else if (op == "MIN") {
        s.op = LoopReduceOp::Min;
      } else {
        fail("unknown reduction '" + op + "'", c.peek());
      }
      expect(c, Tok::Comma, "','");
      s.target_array = expect_name(c, "target array");
      expect(c, Tok::LParen, "'('");
      s.target_index = parse_index(c, loop_var);
      expect(c, Tok::RParen, "')'");
      expect(c, Tok::Comma, "','");
      s.value = parse_expr(c, loop_var);
      expect(c, Tok::RParen, "')'");
      expect_eol(c);
      return s;
    }
    // Plain assignment: a(index) = expr.
    s.op = LoopReduceOp::Assign;
    s.target_array = expect_name(c, "target array");
    expect(c, Tok::LParen, "'('");
    s.target_index = parse_index(c, loop_var);
    expect(c, Tok::RParen, "')'");
    expect(c, Tok::Assign, "'='");
    s.value = parse_expr(c, loop_var);
    expect_eol(c);
    return s;
  }

  // --- expressions ----------------------------------------------------------

  IndexRef parse_index(Cursor& c, const std::string& loop_var) {
    IndexRef idx;
    idx.line = c.peek().line;
    idx.column = c.peek().column;
    const std::string name = expect_name(c, "loop variable or ind(i)");
    if (name == loop_var) {
      idx.direct = true;
      return idx;
    }
    idx.direct = false;
    idx.ind_array = name;
    expect(c, Tok::LParen, "'(' — single level of indirection: a(ind(i))");
    const std::string inner = expect_name(c, "loop variable");
    if (inner != loop_var) {
      fail("indirection arrays must be indexed by the loop variable "
           "(the paper's single-level-of-indirection model)",
           c.peek());
    }
    expect(c, Tok::RParen, "')'");
    return idx;
  }

  static std::optional<Intrinsic> intrinsic_of(const std::string& name) {
    if (name == "SQRT") return Intrinsic::Sqrt;
    if (name == "ABS") return Intrinsic::Abs;
    if (name == "SIN") return Intrinsic::Sin;
    if (name == "COS") return Intrinsic::Cos;
    if (name == "EXP") return Intrinsic::Exp;
    if (name == "MIN") return Intrinsic::Min;
    if (name == "MAX") return Intrinsic::Max;
    if (name == "MOD") return Intrinsic::Mod;
    return std::nullopt;
  }

  ExprPtr parse_expr(Cursor& c, const std::string& loop_var) {
    ExprPtr lhs = parse_term(c, loop_var);
    while (c.peek().kind == Tok::Plus || c.peek().kind == Tok::Minus) {
      const BinOp op = c.next().kind == Tok::Plus ? BinOp::Add : BinOp::Sub;
      ExprPtr rhs = parse_term(c, loop_var);
      auto e = std::make_unique<Expr>();
      e->line = lhs->line;
      e->column = lhs->column;
      e->node = Expr::Binary{op, std::move(lhs), std::move(rhs)};
      lhs = std::move(e);
    }
    return lhs;
  }

  ExprPtr parse_term(Cursor& c, const std::string& loop_var) {
    ExprPtr lhs = parse_factor(c, loop_var);
    while (c.peek().kind == Tok::Star || c.peek().kind == Tok::Slash) {
      const BinOp op = c.next().kind == Tok::Star ? BinOp::Mul : BinOp::Div;
      ExprPtr rhs = parse_factor(c, loop_var);
      auto e = std::make_unique<Expr>();
      e->line = lhs->line;
      e->column = lhs->column;
      e->node = Expr::Binary{op, std::move(lhs), std::move(rhs)};
      lhs = std::move(e);
    }
    return lhs;
  }

  ExprPtr parse_factor(Cursor& c, const std::string& loop_var) {
    if (c.peek().kind == Tok::Minus || c.peek().kind == Tok::Plus) {
      const bool negate = c.next().kind == Tok::Minus;
      ExprPtr operand = parse_factor(c, loop_var);
      if (!negate) return operand;
      auto e = std::make_unique<Expr>();
      e->line = operand->line;
      e->column = operand->column;
      e->node = Expr::Unary{true, std::move(operand)};
      return e;
    }
    ExprPtr base = parse_primary(c, loop_var);
    if (c.peek().kind == Tok::Power) {
      c.next();
      ExprPtr exponent = parse_factor(c, loop_var);  // right associative
      auto e = std::make_unique<Expr>();
      e->line = base->line;
      e->column = base->column;
      e->node = Expr::Binary{BinOp::Pow, std::move(base), std::move(exponent)};
      return e;
    }
    return base;
  }

  ExprPtr parse_primary(Cursor& c, const std::string& loop_var) {
    const Token t = c.peek();
    auto e = std::make_unique<Expr>();
    e->line = t.line;
    e->column = t.column;
    if (t.kind == Tok::Number) {
      c.next();
      e->node = Expr::Num{t.number};
      return e;
    }
    if (t.kind == Tok::LParen) {
      c.next();
      ExprPtr inner = parse_expr(c, loop_var);
      expect(c, Tok::RParen, "')'");
      return inner;
    }
    if (t.kind != Tok::Ident) fail("expected an operand", t);
    c.next();
    if (c.peek().kind != Tok::LParen) {
      // Bare identifier: the loop variable (its value as a number) or a
      // scalar parameter / DO variable.
      if (t.text == loop_var) {
        IndexRef idx;
        idx.direct = true;
        idx.line = t.line;
        e->node = Expr::ArrayRef{"", idx};  // empty array = "value of i"
        return e;
      }
      if (do_vars_.count(t.text) == 0) params_.insert(t.text);
      e->node = Expr::Scalar{t.text};
      return e;
    }
    // name(...): intrinsic call or array reference.
    if (auto fn = intrinsic_of(t.text)) {
      c.next();  // '('
      Expr::Call call;
      call.fn = *fn;
      call.args.push_back(parse_expr(c, loop_var));
      while (c.peek().kind == Tok::Comma) {
        c.next();
        call.args.push_back(parse_expr(c, loop_var));
      }
      expect(c, Tok::RParen, "')'");
      const std::size_t want =
          (*fn == Intrinsic::Min || *fn == Intrinsic::Max ||
           *fn == Intrinsic::Mod)
              ? 2
              : 1;
      if (call.args.size() != want) {
        fail("wrong argument count for intrinsic " + t.text, t);
      }
      e->node = std::move(call);
      return e;
    }
    c.next();  // '('
    Expr::ArrayRef ref;
    ref.array = t.text;
    ref.index = parse_index(c, loop_var);
    expect(c, Tok::RParen, "')'");
    e->node = std::move(ref);
    return e;
  }

  std::vector<Line> lines_;
  std::size_t cursor_ = 0;
  std::vector<Statement> pending_;  // extra targets of multi-DISTRIBUTE
  std::set<std::string> params_;
  std::set<std::string> do_vars_;
};

}  // namespace

Program compile(const std::string& source) {
  Parser parser(logical_lines(source));
  // Parser::parse handles top-level pending flushing via a small shim: we
  // re-run the loop here so multi-target DISTRIBUTE works at top level too.
  return parser.parse();
}

}  // namespace chaos::lang
