// The lowering pass: Program AST -> PlanIR (see bytecode.hpp). One walk per
// program, at Instance construction. Anything that can fail — unknown
// arrays, type mismatches, unbound scalars, read/write conflicts — is only
// *recorded* here (names, lines, precomputed conflict markers) and checked
// at plan-build time, so a program whose faulty FORALL is never reached
// behaves exactly as it did under the tree-walker.
#include <map>
#include <set>
#include <utility>
#include <variant>

#include "lang/bytecode.hpp"

namespace chaos::lang {

namespace {

/// Flattens one expression into symbolic stack bytecode, assigning operand
/// and scalar slots in first-occurrence order (the same order the
/// tree-walker's ExprCompiler registered them, so plan-build resolution
/// reproduces its first-error behavior). Returns the needed stack depth.
class SymbolicCompiler {
 public:
  SymbolicCompiler(ForallMeta& meta, const std::map<std::string, int>& batch_of,
                   const std::map<std::string, int>& ghost_data_slot,
                   const std::map<std::string, int>& ghost_direct_slot)
      : meta_(meta),
        batch_of_(batch_of),
        ghost_data_slot_(ghost_data_slot),
        ghost_direct_slot_(ghost_direct_slot) {}

  int compile(const Expr& e, std::vector<StackInstr>& out) {
    if (const auto* num = std::get_if<Expr::Num>(&e.node)) {
      out.push_back({StackOp::Imm, -1, num->value});
      return 1;
    }
    if (const auto* s = std::get_if<Expr::Scalar>(&e.node)) {
      i32 slot = -1;
      for (std::size_t k = 0; k < meta_.scalars.size(); ++k) {
        if (meta_.scalars[k].name == s->name) {
          slot = static_cast<i32>(k);
          break;
        }
      }
      if (slot < 0) {
        slot = static_cast<i32>(meta_.scalars.size());
        meta_.scalars.push_back({s->name, e.line, e.column});
      }
      out.push_back({StackOp::Scalar, slot, 0.0});
      return 1;
    }
    if (const auto* a = std::get_if<Expr::ArrayRef>(&e.node)) {
      if (a->array.empty()) {
        out.push_back({StackOp::IterVal, -1, 0.0});
        return 1;
      }
      OperandSym spec;
      spec.array = a->array;
      if (a->index.direct) {
        spec.group = 1;
        spec.ghost_slot = ghost_direct_slot_.at(a->array);
      } else {
        spec.group = 0;
        spec.batch = batch_of_.at(a->index.ind_array);
        spec.ghost_slot = ghost_data_slot_.at(a->array);
      }
      // Deduplicate identical operand specs (same key as the tree-walker:
      // group, batch, array).
      i32 slot = -1;
      for (std::size_t k = 0; k < meta_.operands.size(); ++k) {
        const auto& o = meta_.operands[k];
        if (o.group == spec.group && o.batch == spec.batch &&
            o.array == spec.array) {
          slot = static_cast<i32>(k);
          break;
        }
      }
      if (slot < 0) {
        slot = static_cast<i32>(meta_.operands.size());
        meta_.operands.push_back(std::move(spec));
      }
      out.push_back({StackOp::Load, slot, 0.0});
      return 1;
    }
    if (const auto* u = std::get_if<Expr::Unary>(&e.node)) {
      const int d = compile(*u->operand, out);
      out.push_back({StackOp::Neg, -1, 0.0});
      return d;
    }
    if (const auto* b = std::get_if<Expr::Binary>(&e.node)) {
      const int dl = compile(*b->lhs, out);
      const int dr = compile(*b->rhs, out);
      StackOp op = StackOp::Add;
      switch (b->op) {
        case BinOp::Add: op = StackOp::Add; break;
        case BinOp::Sub: op = StackOp::Sub; break;
        case BinOp::Mul: op = StackOp::Mul; break;
        case BinOp::Div: op = StackOp::Div; break;
        case BinOp::Pow: op = StackOp::Pow; break;
      }
      out.push_back({op, -1, 0.0});
      return dl > dr + 1 ? dl : dr + 1;
    }
    const auto* c = std::get_if<Expr::Call>(&e.node);
    int depth = compile(*c->args[0], out);
    if (c->args.size() == 2) {
      const int d2 = compile(*c->args[1], out) + 1;
      depth = depth > d2 ? depth : d2;
    }
    StackOp op = StackOp::Sqrt;
    switch (c->fn) {
      case Intrinsic::Sqrt: op = StackOp::Sqrt; break;
      case Intrinsic::Abs: op = StackOp::Abs; break;
      case Intrinsic::Sin: op = StackOp::Sin; break;
      case Intrinsic::Cos: op = StackOp::Cos; break;
      case Intrinsic::Exp: op = StackOp::Exp; break;
      case Intrinsic::Min: op = StackOp::Min2; break;
      case Intrinsic::Max: op = StackOp::Max2; break;
      case Intrinsic::Mod: op = StackOp::Mod2; break;
    }
    out.push_back({op, -1, 0.0});
    return depth;
  }

 private:
  ForallMeta& meta_;
  const std::map<std::string, int>& batch_of_;
  const std::map<std::string, int>& ghost_data_slot_;
  const std::map<std::string, int>& ghost_direct_slot_;
};

struct Lowerer {
  ProgramPlan plan;

  void lower_statements(const std::vector<Statement>& statements) {
    for (const auto& s : statements) {
      if (const auto* loop = std::get_if<DoLoop>(&s.node)) {
        const i32 li = static_cast<i32>(plan.loops.size());
        plan.loops.push_back({loop->var, loop->lo, loop->hi, loop->line});
        const i32 begin_pc = static_cast<i32>(plan.code.size());
        plan.code.push_back({PlanOp::LoopBegin, li, -1, -1});
        lower_statements(loop->body);
        plan.code.push_back({PlanOp::LoopEnd, li, -1, -1});
        plan.code[static_cast<std::size_t>(begin_pc)].b =
            static_cast<i32>(plan.code.size());
      } else if (const auto* f = std::get_if<Forall>(&s.node)) {
        lower_forall(*f);
      } else {
        const i32 di = static_cast<i32>(plan.directives.size());
        plan.directives.push_back(&s);
        plan.code.push_back({PlanOp::Directive, di, -1, -1});
      }
    }
  }

  void lower_forall(const Forall& f) {
    ForallMeta m;
    m.loop_id = f.loop_id;
    m.line = f.line;
    m.column = f.column;
    m.loop_var = f.loop_var;
    m.lo = f.lo;
    m.hi = f.hi;
    m.src = &f;

    // ---- analysis (the tree-walker's per-build ExprScan, hoisted) ----------
    ExprScan scan;
    std::set<std::string> written;
    for (const auto& stmt : f.body) {
      scan.note_index(stmt.target_index);
      scan.scan(*stmt.value);
      written.insert(stmt.target_array);
      ++scan.mem_refs;  // the store
    }
    std::set<std::string> read_any = scan.read_data;
    read_any.insert(scan.read_direct.begin(), scan.read_direct.end());
    for (const auto& w : written) {
      if (read_any.count(w)) {
        m.conflict_array = w;
        break;
      }
    }
    m.expr_flops_per_iter = scan.flops;
    m.mem_refs_per_iter = scan.mem_refs;
    m.ind_names = scan.ind_names;
    m.read_data.assign(scan.read_data.begin(), scan.read_data.end());
    m.read_direct.assign(scan.read_direct.begin(), scan.read_direct.end());

    std::set<std::string> data_arrays = scan.read_data;
    std::set<std::string> direct_arrays = scan.read_direct;
    for (const auto& stmt : f.body) {
      (stmt.target_index.direct ? direct_arrays : data_arrays)
          .insert(stmt.target_array);
    }
    m.data_arrays.assign(data_arrays.begin(), data_arrays.end());
    m.direct_arrays.assign(direct_arrays.begin(), direct_arrays.end());
    std::set<std::string> guard = read_any;
    guard.insert(written.begin(), written.end());
    m.guard_arrays.assign(guard.begin(), guard.end());
    m.written.assign(written.begin(), written.end());

    // ---- body statements + expression bytecode ------------------------------
    std::map<std::string, int> batch_of;
    for (std::size_t k = 0; k < m.ind_names.size(); ++k) {
      batch_of[m.ind_names[k]] = static_cast<int>(k);
    }
    std::map<std::string, int> ghost_data_slot, ghost_direct_slot;
    for (const auto& name : m.read_data) {
      ghost_data_slot[name] = static_cast<int>(ghost_data_slot.size());
    }
    for (const auto& name : m.read_direct) {
      ghost_direct_slot[name] = static_cast<int>(ghost_direct_slot.size());
    }
    SymbolicCompiler compiler(m, batch_of, ghost_data_slot, ghost_direct_slot);
    m.code.resize(f.body.size());
    for (std::size_t si = 0; si < f.body.size(); ++si) {
      const auto& stmt = f.body[si];
      BodySym b;
      b.op = stmt.op;
      b.target = stmt.target_array;
      b.direct = stmt.target_index.direct;
      b.ind_array = stmt.target_index.ind_array;
      b.line = stmt.line;
      b.column = stmt.column;
      m.body.push_back(std::move(b));
      const int depth = compiler.compile(*stmt.value, m.code[si]);
      if (depth > m.max_stack) m.max_stack = depth;
    }

    // ---- slot counts for instruction emission -------------------------------
    // Same (array, group) dedup the plan build performs; a mixed-operator
    // conflict is diagnosed there, before any emitted slot op can run.
    std::set<std::pair<std::string, int>> acc_keys;
    for (const auto& b : m.body) {
      if (b.op == LoopReduceOp::Assign) {
        ++m.n_assigns;
      } else {
        acc_keys.insert({b.target, b.direct ? 1 : 0});
      }
    }
    m.n_accs = static_cast<int>(acc_keys.size());

    // ---- emit ---------------------------------------------------------------
    const i32 fi = static_cast<i32>(plan.foralls.size());
    const i32 check_pc = static_cast<i32>(plan.code.size());
    plan.code.push_back({PlanOp::CheckIncarnation, fi, -1, -1});
    plan.code.push_back({PlanOp::Partition, fi, -1, -1});
    plan.code.push_back({PlanOp::Localize, fi, -1, -1});
    plan.code.push_back({PlanOp::StorePlan, fi, -1, -1});
    plan.code[static_cast<std::size_t>(check_pc)].b =
        static_cast<i32>(plan.code.size());  // warm entry
    plan.code.push_back({PlanOp::ExecBegin, fi, -1, -1});
    for (i32 k = 0; k < static_cast<i32>(m.read_data.size()); ++k) {
      plan.code.push_back({PlanOp::Pack, fi, 0, k});
      plan.code.push_back({PlanOp::Exchange, fi, 0, k});
      plan.code.push_back({PlanOp::Unpack, fi, 0, k});
    }
    for (i32 k = 0; k < static_cast<i32>(m.read_direct.size()); ++k) {
      plan.code.push_back({PlanOp::Pack, fi, 1, k});
      plan.code.push_back({PlanOp::Exchange, fi, 1, k});
      plan.code.push_back({PlanOp::Unpack, fi, 1, k});
    }
    plan.code.push_back({PlanOp::Compute, fi, -1, -1});
    for (i32 k = 0; k < static_cast<i32>(m.n_accs); ++k) {
      plan.code.push_back({PlanOp::FoldScatter, fi, -1, k});
    }
    for (i32 k = 0; k < static_cast<i32>(m.n_assigns); ++k) {
      plan.code.push_back({PlanOp::ScatterAssign, fi, -1, k});
    }
    plan.code.push_back({PlanOp::NoteWrites, fi, -1, -1});
    plan.code.push_back({PlanOp::ExecEnd, fi, -1, -1});
    plan.foralls.push_back(std::move(m));
  }
};

}  // namespace

ProgramPlan lower(const Program& program) {
  Lowerer lw;
  lw.lower_statements(program.statements);
  return std::move(lw.plan);
}

}  // namespace chaos::lang
