// Token stream for the miniature Fortran-90D front end (see lang/parser.hpp
// for the accepted grammar).
#pragma once

#include <string>
#include <vector>

#include "rt/types.hpp"

namespace chaos::lang {

enum class Tok : u8 {
  Ident,    // identifiers and keywords (case-insensitive, stored upper)
  Number,   // integer or floating literal
  LParen,
  RParen,
  Comma,
  Assign,   // =
  Plus,
  Minus,
  Star,
  Slash,
  Power,    // **
  End,      // end of line
};

struct Token {
  Tok kind = Tok::End;
  std::string text;   // upper-cased for Ident
  f64 number = 0.0;
  int line = 0;
  int column = 0;
};

/// Syntax or semantic error with source position.
class LangError : public ChaosError {
 public:
  LangError(const std::string& msg, int line, int column = 0)
      : ChaosError("line " + std::to_string(line) +
                   (column > 0 ? ":" + std::to_string(column) : "") + ": " +
                   msg),
        line_(line) {}
  [[nodiscard]] int line() const { return line_; }

 private:
  int line_;
};

/// Tokenizes one logical source line. @p line_no is 1-based for diagnostics.
[[nodiscard]] std::vector<Token> tokenize_line(const std::string& line,
                                               int line_no);

}  // namespace chaos::lang
