// SPMD interpreter for compiled mini-Fortran-90D programs: the stand-in for
// the paper's Fortran 90D compiler back end. Each directive lowers onto the
// same CHAOS runtime calls the compiler transformation of Figure 6 emits
// (K1..K4), and every FORALL is executed through the inspector/executor
// pipeline with the Section 3 schedule-reuse guard inserted automatically.
//
// Execution is a dispatch loop over PlanIR bytecode (bytecode.hpp): the AST
// is lowered once at Instance construction, and warm FORALL re-executions
// ride a program-level plan cache keyed by (statement id, DAD incarnation
// set) — zero AST visits, zero inspector invocations. The original
// tree-walking interpreter is kept behind set_tree_walk(true) as a debug
// oracle; both modes produce bit-identical modeled times and results.
//
// Usage (identical on every process):
//   auto prog = lang::compile(source);
//   lang::Instance inst(prog);
//   inst.set_param("NNODE", n); inst.bind_real("X", x0); ...
//   inst.execute(p);                       // collective
//   auto y = inst.fetch_real(p, "Y");      // collective
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/forall.hpp"
#include "core/geocol.hpp"
#include "core/mapper.hpp"
#include "core/reuse.hpp"
#include "lang/ast.hpp"

namespace chaos::lang {

struct ProgramPlan;  // lowered bytecode (bytecode.hpp)

/// Virtual-time spent per pipeline phase (seconds), matching the row labels
/// of the paper's Tables 2-4.
struct PhaseTimes {
  f64 graph_gen = 0.0;   ///< CONSTRUCT (GeoCoL assembly)
  f64 partition = 0.0;   ///< SET ... BY PARTITIONING
  f64 remap = 0.0;       ///< REDISTRIBUTE + iteration remaps
  f64 inspector = 0.0;   ///< FORALL preprocessing (localize, schedules)
  f64 executor = 0.0;    ///< FORALL sweeps + gathers/scatters

  [[nodiscard]] f64 total() const {
    return graph_gen + partition + remap + inspector + executor;
  }
};

class Instance {
 public:
  struct State;  // SPMD runtime state (internal; defined in interp.cpp)

  /// @p program must outlive the Instance (it is shared by every process's
  /// Instance, mirroring compiled code shared by all SPMD ranks).
  explicit Instance(const Program& program);
  ~Instance();

  Instance(const Instance&) = delete;
  Instance& operator=(const Instance&) = delete;

  // --- host bindings (set before execute; identical on every process) ------

  void set_param(const std::string& name, i64 value);
  /// Initial global contents of a REAL*8 array (picked up when the array is
  /// materialized by ALIGN).
  void bind_real(const std::string& array, std::vector<f64> global_values);
  /// Initial global contents of an INTEGER array. Values that are used as
  /// subscripts are 1-based, as in Fortran.
  void bind_int(const std::string& array, std::vector<i64> global_values);

  /// Disables schedule reuse (every FORALL re-runs its inspector) — the
  /// "without schedule reuse" configuration of Table 1.
  void set_schedule_reuse(bool enabled) { reuse_enabled_ = enabled; }

  /// Debug oracle: interpret the AST directly (the pre-VM tree walk, with
  /// its per-sweep guard scan) instead of dispatching the lowered PlanIR.
  /// Results, modeled times, and cache statistics are bit-identical to the
  /// VM on programs that never revisit an earlier DAD incarnation set.
  void set_tree_walk(bool enabled) { tree_walk_ = enabled; }

  /// Installs the unified plan-construction options every FORALL inspector
  /// workspace is configured with (flat locate protocol, repair policy and
  /// threshold; the translation-cache pointer is ignored here — the VM's
  /// per-plan caches are owned internally). SPMD discipline: identical on
  /// every rank. Defaults keep existing modeled baselines bit-identical.
  void set_options(const core::PlanOptions& opts) { plan_opts_ = opts; }
  [[nodiscard]] const core::PlanOptions& options() const { return plan_opts_; }

  /// DEPRECATED forwarder (pre-PlanOptions API): prefer
  /// set_options(PlanOptions{.flat_locate = enabled}).
  void set_flat_locate(bool enabled) { plan_opts_.flat_locate = enabled; }

  // --- execution ------------------------------------------------------------

  /// Collective: runs the whole program.
  void execute(rt::Process& p);

  /// Collective: fetches a distributed array's full global contents.
  [[nodiscard]] std::vector<f64> fetch_real(rt::Process& p,
                                            const std::string& array);
  [[nodiscard]] std::vector<i64> fetch_int(rt::Process& p,
                                           const std::string& array);

  /// Collective: overwrites a distributed INTEGER array in place, modelling
  /// a host/phase boundary write (e.g. an adapted mesh). Bumps the reuse
  /// registry exactly like a Fortran 90D statement writing the array would.
  void overwrite_int(rt::Process& p, const std::string& array,
                     const std::vector<i64>& global_values);

  // --- introspection ---------------------------------------------------------

  [[nodiscard]] const PhaseTimes& phases() const { return phases_; }
  /// Hit/miss counts of the FORALL reuse guard: the plan cache (VM mode) or
  /// the inspector cache (tree-walk mode). Safe before the first execute —
  /// returns zeroed stats.
  [[nodiscard]] const core::InspectorCache::Stats& cache_stats() const;
  /// Hit/miss counts of the mapper-coupler cache (CONSTRUCT / SET reuse).
  /// Safe before the first execute — returns zeroed stats.
  [[nodiscard]] const core::InspectorCache::Stats& mapper_cache_stats() const;
  /// Safe before the first execute — returns an empty registry.
  [[nodiscard]] const core::ReuseRegistry& reuse_registry() const;

 private:
  void run_statement(rt::Process& p, const Statement& s);
  void run_directive(rt::Process& p, const Statement& s);
  void run_vm(rt::Process& p);

  const Program* program_;
  bool reuse_enabled_ = true;
  bool tree_walk_ = false;
  core::PlanOptions plan_opts_;
  PhaseTimes phases_;
  std::unique_ptr<const ProgramPlan> plan_;
  std::map<std::string, i64> host_params_;
  std::map<std::string, std::vector<f64>> real_bindings_;
  std::map<std::string, std::vector<i64>> int_bindings_;
  std::unique_ptr<State> state_;
};

}  // namespace chaos::lang
