// Parser for the miniature Fortran 90D dialect (grammar in lang/ast.hpp).
// Line-oriented like Fortran: directives may carry the classic "C$" prefix
// (Figure 4 of the paper) or appear bare; comment lines start with 'C ',
// '*', or '!'.
#pragma once

#include <string>

#include "lang/ast.hpp"

namespace chaos::lang {

/// Compiles @p source into a Program. Throws LangError with a line number on
/// any syntax violation.
[[nodiscard]] Program compile(const std::string& source);

}  // namespace chaos::lang
