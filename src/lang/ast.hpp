// AST of the miniature Fortran 90D dialect. The accepted surface covers
// exactly the constructs of the paper's Figures 1 and 4/5:
//
//   REAL*8 x(n), y(n)                  INTEGER ia(m)
//   DECOMPOSITION reg(n) [, ...]       (DYNAMIC, DECOMPOSITION ... accepted)
//   DISTRIBUTE reg(BLOCK|CYCLIC)
//   ALIGN a, b WITH reg
//   CONSTRUCT G (n, GEOMETRY(d, c...), LINK(m, u, v), LOAD(w))
//   SET fmt BY PARTITIONING G USING NAME
//   REDISTRIBUTE reg(fmt)
//   DO v = lo, hi ... END DO
//   FORALL i = 1, n
//     a(ind(i)) = expr | a(i) = expr
//     REDUCE(ADD|MAX|MIN, a(ind(i)), expr)
//   END FORALL
#pragma once

#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "rt/types.hpp"

namespace chaos::lang {

// --- expressions ------------------------------------------------------------

enum class BinOp : u8 { Add, Sub, Mul, Div, Pow };
enum class Intrinsic : u8 { Sqrt, Abs, Sin, Cos, Exp, Min, Max, Mod };

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// Index of an array reference inside a FORALL: either the loop variable
/// directly (a(i)) or a single level of indirection (a(ind(i))) — the
/// paper's stated model.
struct IndexRef {
  bool direct = true;        ///< a(i) if true, a(ind(i)) otherwise
  std::string ind_array;     ///< indirection array name (when !direct)
  int line = 0;
  int column = 0;
};

struct Expr {
  struct Num {
    f64 value;
  };
  struct Scalar {  // PARAMETER or DO variable
    std::string name;
  };
  struct ArrayRef {
    std::string array;
    IndexRef index;
  };
  struct Unary {
    bool negate;
    ExprPtr operand;
  };
  struct Binary {
    BinOp op;
    ExprPtr lhs, rhs;
  };
  struct Call {
    Intrinsic fn;
    std::vector<ExprPtr> args;
  };

  std::variant<Num, Scalar, ArrayRef, Unary, Binary, Call> node;
  int line = 0;
  int column = 0;
};

// --- FORALL bodies ----------------------------------------------------------

enum class LoopReduceOp : u8 { Assign, Add, Max, Min };

struct LoopStatement {
  LoopReduceOp op = LoopReduceOp::Assign;
  std::string target_array;
  IndexRef target_index;
  ExprPtr value;
  int line = 0;
  int column = 0;
};

// --- top-level statements ---------------------------------------------------

/// A size is either a literal or a host-bound PARAMETER name.
struct SizeExpr {
  i64 literal = -1;
  std::string param;  // used when literal < 0
  int line = 0;
  int column = 0;
};

enum class ElemType : u8 { Real8, Integer };

struct DeclArrays {
  ElemType type;
  std::vector<std::pair<std::string, SizeExpr>> arrays;  // name, extent
};

struct DeclDecomps {
  std::vector<std::pair<std::string, SizeExpr>> decomps;
};

struct Distribute {
  std::string decomp;
  std::string format;  // BLOCK, CYCLIC, or a named SET result
  int line = 0;
  int column = 0;
};

struct Align {
  std::vector<std::string> arrays;
  std::string decomp;
  int line = 0;
  int column = 0;
};

struct Construct {
  std::string name;
  SizeExpr nverts;
  int geometry_dims = 0;                      // 0 = no GEOMETRY clause
  std::vector<std::string> geometry_arrays;   // dims entries
  std::vector<std::pair<std::string, std::string>> links;  // (u, v) pairs
  SizeExpr link_size;                         // declared E (checked)
  std::string load_array;                     // empty = no LOAD clause
  int line = 0;
  int column = 0;
};

struct SetPartition {
  std::string dist_name;
  std::string geocol;
  std::string partitioner;
  int line = 0;
  int column = 0;
};

struct Redistribute {
  std::string decomp;
  std::string dist_name;
  int line = 0;
  int column = 0;
};

struct Forall {
  std::string loop_var;
  SizeExpr lo, hi;
  std::vector<LoopStatement> body;
  u64 loop_id = 0;  ///< stable id used as the plan-cache statement key
  int line = 0;
  int column = 0;
};

struct Statement;

struct DoLoop {
  std::string var;
  SizeExpr lo, hi;
  std::vector<Statement> body;  // vector of incomplete type: OK since C++17
  int line = 0;
  int column = 0;
};

struct Statement {
  std::variant<DeclArrays, DeclDecomps, Distribute, Align, Construct,
               SetPartition, Redistribute, Forall, DoLoop>
      node;
};

/// A compiled program: the statement list plus symbol metadata collected by
/// the parser's semantic pass.
struct Program {
  std::vector<Statement> statements;
  std::vector<std::string> params;  ///< names the host must bind
  u64 forall_count = 0;
};

}  // namespace chaos::lang
