// PlanIR: the flat bytecode a lang/ Program is lowered to, once, before the
// first execution. The lowering pass (compile.cpp) walks the semantically
// analyzed AST exactly one time and hoists every decision the tree-walking
// interpreter used to make per sweep — indirection/read/write classification,
// operand-slot assignment, body-expression flattening, and (crucially) the
// Section 3 inspector-reuse guard, which becomes an explicit
// CHECK_INCARNATION instruction — so a warm re-execution of a FORALL touches
// no AST node and invokes no inspector.
//
// Lowering is pure analysis: it never throws, never charges the virtual
// clock, and needs no runtime state (arrays are not even materialized yet).
// Every semantic check keeps its original failure site by being re-issued at
// plan-build time from the precomputed metadata, in the tree-walker's exact
// order, so diagnostics and modeled virtual times stay bit-identical between
// the two execution modes.
#pragma once

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "lang/ast.hpp"

namespace chaos::lang {

// --- FORALL body stack machine ---------------------------------------------

/// Ops of the per-statement expression bytecode (the "runtime compilation"
/// the paper's title refers to, emitted statically by the lowering pass).
enum class StackOp : u8 {
  Imm, Scalar, IterVal, Load, Neg, Add, Sub, Mul, Div, Pow,
  Sqrt, Abs, Sin, Cos, Exp, Min2, Max2, Mod2,
};

/// One stack instruction. @c slot indexes ForallMeta::operands for Load and
/// ForallMeta::scalars for Scalar; the plan-build step resolves both tables
/// to raw pointers so the evaluator never consults a map.
struct StackInstr {
  StackOp op = StackOp::Imm;
  i32 slot = -1;
  f64 imm = 0.0;
};

// --- symbolic operand tables ------------------------------------------------

/// A deduplicated array operand of a FORALL body. Purely symbolic — the
/// inspector resolves it to storage pointers and a localized-reference slice
/// when the plan is built.
struct OperandSym {
  int group = 0;          ///< 0: indirection batch, 1: direct (iteration space)
  int batch = -1;         ///< index into ForallMeta::ind_names (group 0)
  std::string array;
  int ghost_slot = -1;    ///< index into read_data (group 0) / read_direct (1)
};

/// A scalar reference (PARAMETER or DO variable), recorded at its first
/// occurrence so plan-build resolution reports "unbound scalar" for the same
/// source position the tree-walker would.
struct ScalarSym {
  std::string name;
  int line = 0;
  int column = 0;
};

/// One FORALL body statement, pre-classified.
struct BodySym {
  LoopReduceOp op = LoopReduceOp::Assign;
  std::string target;
  bool direct = true;       ///< target indexed a(i) vs a(ind(i))
  std::string ind_array;    ///< indirection array of the target (!direct)
  int line = 0;
  int column = 0;
};

// --- per-statement metadata --------------------------------------------------

/// Everything the tree-walking interpreter derived from a Forall AST node,
/// computed once. The name lists keep the walker's exact orders — they are
/// semantic contracts, not conveniences:
///   * ind_names: first-occurrence order (batch indices, remap order);
///   * read_data / read_direct: sorted (ghost-slot and gather order);
///   * data_arrays / direct_arrays: sorted (anchor-distribution checks);
///   * guard_arrays / written: sorted (reuse-guard DADs, note_write order).
struct ForallMeta {
  u64 loop_id = 0;
  int line = 0;
  int column = 0;
  std::string loop_var;
  SizeExpr lo, hi;

  std::vector<BodySym> body;
  std::vector<std::vector<StackInstr>> code;  ///< one program per body stmt
  std::vector<OperandSym> operands;
  std::vector<ScalarSym> scalars;
  int max_stack = 0;

  std::vector<std::string> ind_names;
  std::vector<std::string> read_data;
  std::vector<std::string> read_direct;
  std::vector<std::string> data_arrays;    ///< read_data + indirect targets
  std::vector<std::string> direct_arrays;  ///< read_direct + direct targets
  std::vector<std::string> guard_arrays;   ///< every referenced data array
  std::vector<std::string> written;        ///< unique target arrays

  /// First array (sorted order) that is both read and written — the
  /// tree-walker's read/write-conflict diagnostic, precomputed; empty = ok.
  std::string conflict_array;

  i64 expr_flops_per_iter = 0;
  i64 mem_refs_per_iter = 0;
  /// Slot counts, so the lowering pass can emit one FOLD_SCATTER /
  /// SCATTER_ASSIGN instruction per slot before any plan exists.
  int n_accs = 0;
  int n_assigns = 0;

  const Forall* src = nullptr;  ///< diagnostics + the tree-walk oracle
};

/// DO-loop header (bounds resolved once at LOOP_BEGIN, like the walker).
struct LoopMeta {
  std::string var;
  SizeExpr lo, hi;
  int line = 0;
};

// --- the instruction set -----------------------------------------------------

/// Program-level ops. Operand a = metadata index (forall / loop / directive
/// table); b, c are op-specific (documented per op). DESIGN.md §12 holds the
/// full table.
enum class PlanOp : u8 {
  Directive,         ///< a: directives[] index — run one mapper/decl directive
  LoopBegin,         ///< a: loops[] index, b: pc past the matching LoopEnd
  LoopEnd,           ///< a: loops[] index
  CheckIncarnation,  ///< a: forall, b: warm-entry pc (its ExecBegin)
  Partition,         ///< a: forall — classify + iteration remap (miss path)
  Localize,          ///< a: forall — build schedules, resolve slots
  StorePlan,         ///< a: forall — record plan under the probe-time guard
  ExecBegin,         ///< a: forall — open the executor clock section
  Pack,              ///< a: forall, b: group (0 data / 1 direct), c: read slot
  Exchange,          ///< a, b, c as Pack — the collective all-to-all
  Unpack,            ///< a, b, c as Pack — modeled unpack charge
  Compute,           ///< a: forall — run the body sweep, charge the model
  FoldScatter,       ///< a: forall, c: accumulator slot
  ScatterAssign,     ///< a: forall, c: assign slot
  NoteWrites,        ///< a: forall — bump the reuse registry per written array
  ExecEnd,           ///< a: forall — close the executor clock section
};

struct PlanInstr {
  PlanOp op = PlanOp::Directive;
  i32 a = -1;
  i32 b = -1;
  i32 c = -1;
};

/// The lowered program. Directive statements stay AST-borne (they run once
/// per execution and their cost is all collectives); loops and FORALLs are
/// fully described by their metadata tables. Borrows the Program's AST — the
/// Program must outlive the plan (same contract as lang::Instance).
struct ProgramPlan {
  std::vector<PlanInstr> code;
  std::vector<ForallMeta> foralls;
  std::vector<LoopMeta> loops;
  std::vector<const Statement*> directives;
};

/// Lowers a compiled program to PlanIR. Pure, non-throwing, charge-free:
/// safe to run at Instance construction on every rank.
[[nodiscard]] ProgramPlan lower(const Program& program);

// --- shared AST scan ---------------------------------------------------------

/// Walks an expression collecting indirection-array names, read arrays, and
/// cost estimates. Used by the lowering pass (once per program) and by the
/// tree-walk oracle's per-sweep guard assembly (its defining overhead, which
/// the VM's CHECK_INCARNATION removes).
struct ExprScan {
  std::vector<std::string> ind_names;
  std::set<std::string> read_data;    // arrays read via indirection
  std::set<std::string> read_direct;  // arrays read as a(i)
  i64 flops = 0;
  i64 mem_refs = 0;

  void note_index(const IndexRef& idx) {
    if (!idx.direct) {
      if (std::find(ind_names.begin(), ind_names.end(), idx.ind_array) ==
          ind_names.end()) {
        ind_names.push_back(idx.ind_array);
      }
      ++mem_refs;
    }
  }

  void scan(const Expr& e) {
    ++flops;
    if (const auto* a = std::get_if<Expr::ArrayRef>(&e.node)) {
      if (!a->array.empty()) {
        note_index(a->index);
        // Compiler-generated addressing: a guarded local/ghost select per
        // reference on top of the load itself.
        ++flops;
        ++mem_refs;
        (a->index.direct ? read_direct : read_data).insert(a->array);
      }
      return;
    }
    if (const auto* u = std::get_if<Expr::Unary>(&e.node)) {
      scan(*u->operand);
      return;
    }
    if (const auto* b = std::get_if<Expr::Binary>(&e.node)) {
      scan(*b->lhs);
      scan(*b->rhs);
      return;
    }
    if (const auto* c = std::get_if<Expr::Call>(&e.node)) {
      flops += 8;  // intrinsics cost more than one op
      for (const auto& arg : c->args) scan(*arg);
      return;
    }
  }
};

}  // namespace chaos::lang
