// Recursive spectral bisection (Simon 1991): split by the median of the
// Fiedler vector (the Laplacian eigenvector for the smallest nonzero
// eigenvalue), recursively. The Fiedler vector is computed with Lanczos
// iteration (full reorthogonalization, constant-vector deflation) followed
// by a dense Jacobi solve of the projected tridiagonal problem — the same
// algorithm family as the "parallelized version of Simon's eigenvalue
// partitioner" the paper used. The eigenproblem runs at the root over the
// gathered GeoCoL graph while the virtual clock is charged per flop,
// reproducing RSB's signature cost profile: far more expensive than RCB,
// slightly better cuts (Table 2). See DESIGN.md §2.
#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "partition/partitioner.hpp"
#include "rt/collectives.hpp"

namespace chaos::part {

namespace {

struct SerialGraph {
  i64 n = 0;
  std::vector<i64> xadj;    // n+1
  std::vector<i64> adjncy;  // global ids
  std::vector<f64> weights;
};

/// Smallest eigenpair of a symmetric tridiagonal matrix (diag, off) via
/// cyclic Jacobi on the dense form. m is tiny (<= kLanczosSteps), so the
/// O(m^3) cost is irrelevant; robustness is what matters.
void smallest_tridiag_eigvec(const std::vector<f64>& diag,
                             const std::vector<f64>& off,
                             std::vector<f64>& eigvec) {
  const std::size_t m = diag.size();
  std::vector<f64> a(m * m, 0.0);  // matrix, row-major
  std::vector<f64> v(m * m, 0.0);  // eigenvectors
  for (std::size_t i = 0; i < m; ++i) {
    a[i * m + i] = diag[i];
    v[i * m + i] = 1.0;
    if (i + 1 < m) {
      a[i * m + i + 1] = off[i];
      a[(i + 1) * m + i] = off[i];
    }
  }
  for (int sweep = 0; sweep < 60; ++sweep) {
    f64 offnorm = 0.0;
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = i + 1; j < m; ++j) offnorm += a[i * m + j] * a[i * m + j];
    }
    if (offnorm < 1e-24) break;
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = i + 1; j < m; ++j) {
        const f64 apq = a[i * m + j];
        if (std::abs(apq) < 1e-18) continue;
        const f64 app = a[i * m + i], aqq = a[j * m + j];
        const f64 theta = (aqq - app) / (2.0 * apq);
        const f64 t = (theta >= 0 ? 1.0 : -1.0) /
                      (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const f64 c = 1.0 / std::sqrt(t * t + 1.0);
        const f64 s = t * c;
        for (std::size_t k = 0; k < m; ++k) {
          const f64 aik = a[i * m + k], ajk = a[j * m + k];
          a[i * m + k] = c * aik - s * ajk;
          a[j * m + k] = s * aik + c * ajk;
        }
        for (std::size_t k = 0; k < m; ++k) {
          const f64 aki = a[k * m + i], akj = a[k * m + j];
          a[k * m + i] = c * aki - s * akj;
          a[k * m + j] = s * aki + c * akj;
          const f64 vki = v[k * m + i], vkj = v[k * m + j];
          v[k * m + i] = c * vki - s * vkj;
          v[k * m + j] = s * vki + c * vkj;
        }
      }
    }
  }
  std::size_t best = 0;
  for (std::size_t i = 1; i < m; ++i) {
    if (a[i * m + i] < a[best * m + best]) best = i;
  }
  eigvec.resize(m);
  for (std::size_t k = 0; k < m; ++k) eigvec[k] = v[k * m + best];
}

constexpr int kLanczosSteps = 45;

/// Approximate Fiedler vector of the Laplacian of the subgraph induced by
/// `verts` via Lanczos with full reorthogonalization and deflation of the
/// constant vector. Accumulates the flop count into @p flops.
std::vector<f64> fiedler_vector(const SerialGraph& g,
                                const std::vector<i64>& verts,
                                const std::vector<i64>& slot_of, i64& flops) {
  const i64 m = static_cast<i64>(verts.size());
  if (m <= 2) {
    std::vector<f64> v(static_cast<std::size_t>(m));
    for (i64 i = 0; i < m; ++i) {
      v[static_cast<std::size_t>(i)] =
          static_cast<f64>(verts[static_cast<std::size_t>(i)]);
    }
    return v;
  }

  std::vector<f64> deg(static_cast<std::size_t>(m), 0.0);
  i64 nnz_sub = 0;
  for (i64 i = 0; i < m; ++i) {
    const i64 u = verts[static_cast<std::size_t>(i)];
    for (i64 k = g.xadj[static_cast<std::size_t>(u)];
         k < g.xadj[static_cast<std::size_t>(u) + 1]; ++k) {
      if (slot_of[static_cast<std::size_t>(
              g.adjncy[static_cast<std::size_t>(k)])] >= 0) {
        deg[static_cast<std::size_t>(i)] += 1.0;
        ++nnz_sub;
      }
    }
  }

  const int steps = static_cast<int>(std::min<i64>(kLanczosSteps, m - 1));
  std::vector<std::vector<f64>> basis;
  basis.reserve(static_cast<std::size_t>(steps) + 1);
  std::vector<f64> alphas, betas;

  auto deflate_and_reorth = [&](std::vector<f64>& w) {
    // Project out the constant vector (the trivial eigenpair)...
    f64 mean = std::accumulate(w.begin(), w.end(), 0.0) / static_cast<f64>(m);
    for (auto& x : w) x -= mean;
    // ...and re-orthogonalize against the full Lanczos basis.
    for (const auto& b : basis) {
      f64 dot = 0.0;
      for (i64 i = 0; i < m; ++i) {
        dot += w[static_cast<std::size_t>(i)] * b[static_cast<std::size_t>(i)];
      }
      for (i64 i = 0; i < m; ++i) {
        w[static_cast<std::size_t>(i)] -= dot * b[static_cast<std::size_t>(i)];
      }
      flops += 4 * m;
    }
    flops += 2 * m;
  };

  // Deterministic start vector, deflated and normalized.
  std::vector<f64> v0(static_cast<std::size_t>(m));
  for (i64 i = 0; i < m; ++i) {
    v0[static_cast<std::size_t>(i)] =
        std::sin(static_cast<f64>(verts[static_cast<std::size_t>(i)]) * 0.7 +
                 1.0);
  }
  deflate_and_reorth(v0);
  f64 norm = std::sqrt(std::inner_product(v0.begin(), v0.end(), v0.begin(), 0.0));
  if (norm < 1e-30) {
    for (i64 i = 0; i < m; ++i) {
      v0[static_cast<std::size_t>(i)] = static_cast<f64>(i) - 0.5 * static_cast<f64>(m);
    }
    norm = std::sqrt(std::inner_product(v0.begin(), v0.end(), v0.begin(), 0.0));
  }
  for (auto& x : v0) x /= norm;
  basis.push_back(std::move(v0));

  std::vector<f64> w(static_cast<std::size_t>(m));
  for (int j = 0; j < steps; ++j) {
    const auto& vj = basis[static_cast<std::size_t>(j)];
    // w = L vj (within the subgraph).
    for (i64 i = 0; i < m; ++i) {
      const i64 u = verts[static_cast<std::size_t>(i)];
      f64 acc = deg[static_cast<std::size_t>(i)] * vj[static_cast<std::size_t>(i)];
      for (i64 k = g.xadj[static_cast<std::size_t>(u)];
           k < g.xadj[static_cast<std::size_t>(u) + 1]; ++k) {
        const i64 slot = slot_of[static_cast<std::size_t>(
            g.adjncy[static_cast<std::size_t>(k)])];
        if (slot >= 0) acc -= vj[static_cast<std::size_t>(slot)];
      }
      w[static_cast<std::size_t>(i)] = acc;
    }
    flops += 2 * nnz_sub + 2 * m;

    f64 alpha = 0.0;
    for (i64 i = 0; i < m; ++i) {
      alpha += w[static_cast<std::size_t>(i)] * vj[static_cast<std::size_t>(i)];
    }
    alphas.push_back(alpha);
    deflate_and_reorth(w);
    const f64 beta =
        std::sqrt(std::inner_product(w.begin(), w.end(), w.begin(), 0.0));
    flops += 4 * m;
    if (beta < 1e-12) break;  // invariant subspace reached
    betas.push_back(beta);
    std::vector<f64> next(w);
    for (auto& x : next) x /= beta;
    basis.push_back(std::move(next));
  }
  if (static_cast<std::size_t>(basis.size()) > alphas.size()) {
    basis.resize(alphas.size());  // keep basis and T consistent
  }
  betas.resize(alphas.size() > 0 ? alphas.size() - 1 : 0);

  // Ritz vector for the smallest Ritz value of the projected problem.
  std::vector<f64> y;
  smallest_tridiag_eigvec(alphas, betas, y);
  std::vector<f64> fiedler(static_cast<std::size_t>(m), 0.0);
  for (std::size_t k = 0; k < basis.size(); ++k) {
    for (i64 i = 0; i < m; ++i) {
      fiedler[static_cast<std::size_t>(i)] +=
          y[k] * basis[k][static_cast<std::size_t>(i)];
    }
  }
  flops += static_cast<i64>(basis.size()) * 2 * m;
  return fiedler;
}

void bisect(const SerialGraph& g, std::vector<i64>& verts, i64 part_lo,
            i64 part_hi, std::vector<i64>& parts, std::vector<i64>& slot_of,
            i64& flops) {
  if (part_hi - part_lo <= 1) {
    for (i64 u : verts) parts[static_cast<std::size_t>(u)] = part_lo;
    return;
  }
  for (std::size_t i = 0; i < verts.size(); ++i) {
    slot_of[static_cast<std::size_t>(verts[i])] = static_cast<i64>(i);
  }
  const std::vector<f64> f = fiedler_vector(g, verts, slot_of, flops);
  for (i64 u : verts) slot_of[static_cast<std::size_t>(u)] = -1;

  // Order by Fiedler value (ties broken by vertex id for determinism) and
  // split at the weighted target so part sizes stay proportional.
  std::vector<i64> order(verts.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](i64 a, i64 b) {
    const f64 fa = f[static_cast<std::size_t>(a)];
    const f64 fb = f[static_cast<std::size_t>(b)];
    if (fa != fb) return fa < fb;
    return verts[static_cast<std::size_t>(a)] < verts[static_cast<std::size_t>(b)];
  });
  flops += static_cast<i64>(verts.size()) * 8;  // sort ~ n log n, coarse

  f64 total_w = 0.0;
  for (i64 u : verts) total_w += g.weights[static_cast<std::size_t>(u)];
  const i64 mid = (part_lo + part_hi) / 2;
  const f64 target = total_w * static_cast<f64>(mid - part_lo) /
                     static_cast<f64>(part_hi - part_lo);

  std::vector<i64> left, right;
  f64 acc = 0.0;
  for (i64 idx : order) {
    const i64 u = verts[static_cast<std::size_t>(idx)];
    if (acc < target) {
      left.push_back(u);
      acc += g.weights[static_cast<std::size_t>(u)];
    } else {
      right.push_back(u);
    }
  }
  verts.clear();
  verts.shrink_to_fit();
  bisect(g, left, part_lo, mid, parts, slot_of, flops);
  bisect(g, right, mid, part_hi, parts, slot_of, flops);
}

}  // namespace

std::vector<i64> partition_rsb(rt::Process& p, const GeoColView& g,
                               int nparts) {
  CHAOS_CHECK(nparts >= 1, "partition: nparts must be positive");
  CHAOS_CHECK(g.has_connectivity(),
              "RSB requires LINK connectivity in the GeoCoL");

  // Gather the distributed CSR at the root, keyed by global vertex id.
  const auto my_globals = g.vdist->my_globals();
  auto all_globals = rt::allgatherv<i64>(p, my_globals);
  std::vector<i64> degrees(static_cast<std::size_t>(g.nlocal()));
  for (i64 l = 0; l < g.nlocal(); ++l) {
    degrees[static_cast<std::size_t>(l)] =
        g.xadj[static_cast<std::size_t>(l) + 1] -
        g.xadj[static_cast<std::size_t>(l)];
  }
  auto all_degrees = rt::gatherv<i64>(p, degrees, 0);
  auto all_adjncy = rt::gatherv<i64>(p, g.adjncy, 0);
  std::vector<f64> local_w(static_cast<std::size_t>(g.nlocal()));
  for (i64 l = 0; l < g.nlocal(); ++l) {
    local_w[static_cast<std::size_t>(l)] = g.weight_of(l);
  }
  auto all_weights = rt::gatherv<f64>(p, local_w, 0);

  const i64 n = g.nglobal();
  std::vector<i64> parts_global(static_cast<std::size_t>(n), 0);
  if (p.is_root()) {
    SerialGraph sg;
    sg.n = n;
    sg.xadj.assign(static_cast<std::size_t>(n) + 1, 0);
    sg.adjncy.resize(all_adjncy.size());
    sg.weights.assign(static_cast<std::size_t>(n), 1.0);
    std::vector<i64> deg_of(static_cast<std::size_t>(n), 0);
    for (std::size_t k = 0; k < all_globals.size(); ++k) {
      deg_of[static_cast<std::size_t>(all_globals[k])] = all_degrees[k];
      sg.weights[static_cast<std::size_t>(all_globals[k])] = all_weights[k];
    }
    for (i64 u = 0; u < n; ++u) {
      sg.xadj[static_cast<std::size_t>(u) + 1] =
          sg.xadj[static_cast<std::size_t>(u)] +
          deg_of[static_cast<std::size_t>(u)];
    }
    std::vector<i64> cursor = sg.xadj;
    std::size_t pos = 0;
    for (std::size_t k = 0; k < all_globals.size(); ++k) {
      const i64 u = all_globals[k];
      for (i64 d = 0; d < all_degrees[k]; ++d) {
        sg.adjncy[static_cast<std::size_t>(
            cursor[static_cast<std::size_t>(u)]++)] = all_adjncy[pos++];
      }
    }

    std::vector<i64> verts(static_cast<std::size_t>(n));
    std::iota(verts.begin(), verts.end(), 0);
    std::vector<i64> slot_of(static_cast<std::size_t>(n), -1);
    i64 flops = 0;
    bisect(sg, verts, 0, nparts, parts_global, slot_of, flops);
    // Charge the modeled partitioner time at the root; the closing
    // broadcast's clock synchronization propagates it to every process.
    p.clock().charge_ops(flops, p.params().flop_us);
  }

  parts_global = rt::broadcast_vec(p, parts_global, 0);
  std::vector<i64> parts(static_cast<std::size_t>(g.nlocal()));
  for (std::size_t l = 0; l < parts.size(); ++l) {
    parts[l] = parts_global[static_cast<std::size_t>(my_globals[l])];
  }
  return parts;
}

}  // namespace chaos::part
