#include "partition/partitioner.hpp"

#include <algorithm>

namespace chaos::part {

namespace {

u64 splitmix64(u64 x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

PartitionerRegistry& PartitionerRegistry::instance() {
  static PartitionerRegistry registry;
  return registry;
}

PartitionerRegistry::PartitionerRegistry() {
  add("BLOCK", partition_block);
  add("CYCLIC", partition_cyclic);
  add("RANDOM", partition_random);
  add("RCB", partition_rcb);
  add("INERTIAL", partition_inertial);
  add("RSB", partition_rsb);
  add("GREEDY", partition_greedy);
  add("RCB+KL", [](rt::Process& p, const GeoColView& g, int nparts) {
    return refine_kl(p, g, nparts, partition_rcb(p, g, nparts));
  });
  add("RSB+KL", [](rt::Process& p, const GeoColView& g, int nparts) {
    return refine_kl(p, g, nparts, partition_rsb(p, g, nparts));
  });
}

void PartitionerRegistry::add(const std::string& name, PartitionFn fn) {
  CHAOS_CHECK(!name.empty(), "partitioner name must not be empty");
  for (auto& [n, f] : entries_) {
    if (n == name) {
      f = std::move(fn);
      return;
    }
  }
  entries_.emplace_back(name, std::move(fn));
}

bool PartitionerRegistry::contains(const std::string& name) const {
  for (const auto& [n, f] : entries_) {
    if (n == name) return true;
  }
  return false;
}

const PartitionFn& PartitionerRegistry::get(const std::string& name) const {
  for (const auto& [n, f] : entries_) {
    if (n == name) return f;
  }
  CHAOS_CHECK(false, "unknown partitioner: " + name +
                         " (register it via PartitionerRegistry::add)");
  static PartitionFn dummy;
  return dummy;
}

std::vector<std::string> PartitionerRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [n, f] : entries_) out.push_back(n);
  return out;
}

std::vector<i64> partition_block(rt::Process& p, const GeoColView& g,
                                 int nparts) {
  CHAOS_CHECK(nparts >= 1, "partition: nparts must be positive");
  const i64 b = std::max<i64>((g.nglobal() + nparts - 1) / nparts, 1);
  std::vector<i64> parts(static_cast<std::size_t>(g.nlocal()));
  const auto globals = g.vdist->my_globals();
  for (std::size_t l = 0; l < parts.size(); ++l) parts[l] = globals[l] / b;
  p.clock().charge_ops(g.nlocal(), p.params().mem_us_per_word * 0.25);
  return parts;
}

std::vector<i64> partition_cyclic(rt::Process& p, const GeoColView& g,
                                  int nparts) {
  CHAOS_CHECK(nparts >= 1, "partition: nparts must be positive");
  std::vector<i64> parts(static_cast<std::size_t>(g.nlocal()));
  const auto globals = g.vdist->my_globals();
  for (std::size_t l = 0; l < parts.size(); ++l) parts[l] = globals[l] % nparts;
  p.clock().charge_ops(g.nlocal(), p.params().mem_us_per_word * 0.25);
  return parts;
}

std::vector<i64> partition_random(rt::Process& p, const GeoColView& g,
                                  int nparts) {
  CHAOS_CHECK(nparts >= 1, "partition: nparts must be positive");
  std::vector<i64> parts(static_cast<std::size_t>(g.nlocal()));
  const auto globals = g.vdist->my_globals();
  for (std::size_t l = 0; l < parts.size(); ++l) {
    parts[l] = static_cast<i64>(splitmix64(static_cast<u64>(globals[l])) %
                                static_cast<u64>(nparts));
  }
  p.clock().charge_ops(g.nlocal(), p.params().mem_us_per_word * 0.5);
  return parts;
}

}  // namespace chaos::part
