// Level-parallel recursive geometric bisection: the shared engine behind RCB
// (longest-axis cuts) and inertial bisection (principal-axis cuts). All
// active groups of one recursion level are processed together, so the number
// of collectives per level is constant regardless of how many groups exist.
#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <vector>

#include "partition/partitioner.hpp"
#include "rt/collectives.hpp"

namespace chaos::part {

namespace {

constexpr int kMedianIterations = 40;
constexpr f64 kDegenerateExtent = 1e-12;
// A group whose final bisection window still holds more than this fraction
// of its weight has a tie cluster sitting on the cut (coincident or
// duplicate coordinates); its window members are re-split by global id.
// Calibration: structured grids routinely park a whole coordinate plane
// (a few percent of the group) on the cut and have always been split
// whole-plane; the threshold only fires on macroscopic clusters, bounding
// the worst untreated imbalance at ~1.2 while leaving grid cuts untouched.
constexpr f64 kTieWeightFraction = 0.10;

struct Group {
  i64 part_lo;  // this group will end up holding parts [part_lo, part_hi)
  i64 part_hi;
};

/// Axis chooser: given per-group aggregate geometry, produce for each group a
/// unit direction; vertices are then ordered by their projection onto it.
/// `mins/maxs` are 3 values per group; `moments` carries [w, wx, wy, wz,
/// wxx, wyy, wzz, wxy, wxz, wyz] per group (only filled for inertial).
using AxisFn = std::function<std::array<f64, 3>(
    int dims, const std::array<f64, 3>& mins, const std::array<f64, 3>& maxs,
    std::span<const f64> moments)>;

std::array<f64, 3> longest_axis(int dims, const std::array<f64, 3>& mins,
                                const std::array<f64, 3>& maxs,
                                std::span<const f64> /*moments*/) {
  int best = 0;
  f64 best_extent = -1.0;
  for (int d = 0; d < dims; ++d) {
    const f64 e = maxs[static_cast<std::size_t>(d)] -
                  mins[static_cast<std::size_t>(d)];
    if (e > best_extent) {
      best_extent = e;
      best = d;
    }
  }
  std::array<f64, 3> axis{0.0, 0.0, 0.0};
  axis[static_cast<std::size_t>(best)] = 1.0;
  return axis;
}

std::array<f64, 3> principal_axis(int dims, const std::array<f64, 3>& mins,
                                  const std::array<f64, 3>& maxs,
                                  std::span<const f64> moments) {
  const f64 w = moments[0];
  if (w <= 0.0) return longest_axis(dims, mins, maxs, moments);
  const f64 cx = moments[1] / w, cy = moments[2] / w, cz = moments[3] / w;
  // Central second moments (covariance * w).
  f64 m[3][3] = {{moments[4] - w * cx * cx, moments[7] - w * cx * cy,
                  moments[8] - w * cx * cz},
                 {moments[7] - w * cx * cy, moments[5] - w * cy * cy,
                  moments[9] - w * cy * cz},
                 {moments[8] - w * cx * cz, moments[9] - w * cy * cz,
                  moments[6] - w * cz * cz}};
  // Deterministic power iteration for the dominant eigenvector.
  std::array<f64, 3> v{1.0, 0.577, 0.333};
  for (int d = dims; d < 3; ++d) v[static_cast<std::size_t>(d)] = 0.0;
  for (int it = 0; it < 64; ++it) {
    std::array<f64, 3> nv{0.0, 0.0, 0.0};
    for (int r = 0; r < dims; ++r) {
      for (int c = 0; c < dims; ++c) {
        nv[static_cast<std::size_t>(r)] +=
            m[r][c] * v[static_cast<std::size_t>(c)];
      }
    }
    f64 norm = std::sqrt(nv[0] * nv[0] + nv[1] * nv[1] + nv[2] * nv[2]);
    if (norm < 1e-30) return longest_axis(dims, mins, maxs, moments);
    for (auto& x : nv) x /= norm;
    v = nv;
  }
  return v;
}

/// The engine. Returns part ids aligned with g.vdist.
std::vector<i64> recursive_bisection(rt::Process& p, const GeoColView& g,
                                     int nparts, const AxisFn& choose_axis,
                                     bool need_moments) {
  CHAOS_CHECK(nparts >= 1, "partition: nparts must be positive");
  CHAOS_CHECK(g.has_geometry(),
              "geometric partitioner requires GEOMETRY in the GeoCoL");
  const i64 n = g.nlocal();
  const auto globals = g.vdist->my_globals();

  std::vector<i64> group_of(static_cast<std::size_t>(n), 0);
  std::vector<Group> groups{{0, nparts}};

  while (true) {
    // Collect the groups that still need splitting.
    std::vector<int> active;
    for (std::size_t gi = 0; gi < groups.size(); ++gi) {
      if (groups[gi].part_hi - groups[gi].part_lo > 1) {
        active.push_back(static_cast<int>(gi));
      }
    }
    if (active.empty()) break;
    const std::size_t na = active.size();
    std::vector<i64> slot_of_group(groups.size(), -1);
    for (std::size_t s = 0; s < na; ++s) {
      slot_of_group[static_cast<std::size_t>(active[s])] = static_cast<i64>(s);
    }

    // Aggregate geometry per active group: bounding box and, when the axis
    // chooser needs them, the first/second weighted moments.
    constexpr f64 kInf = std::numeric_limits<f64>::infinity();
    std::vector<f64> mins(3 * na, kInf), maxs(3 * na, -kInf);
    std::vector<f64> moments(need_moments ? 10 * na : 0, 0.0);
    for (i64 l = 0; l < n; ++l) {
      const i64 slot = slot_of_group[static_cast<std::size_t>(group_of[
          static_cast<std::size_t>(l)])];
      if (slot < 0) continue;
      const f64 w = g.weight_of(l);
      std::array<f64, 3> x{0.0, 0.0, 0.0};
      for (int d = 0; d < g.dims; ++d) {
        x[static_cast<std::size_t>(d)] =
            g.coords[static_cast<std::size_t>(d)][static_cast<std::size_t>(l)];
        auto& mn = mins[static_cast<std::size_t>(3 * slot + d)];
        auto& mx = maxs[static_cast<std::size_t>(3 * slot + d)];
        mn = std::min(mn, x[static_cast<std::size_t>(d)]);
        mx = std::max(mx, x[static_cast<std::size_t>(d)]);
      }
      if (need_moments) {
        f64* mo = &moments[static_cast<std::size_t>(10 * slot)];
        mo[0] += w;
        mo[1] += w * x[0];
        mo[2] += w * x[1];
        mo[3] += w * x[2];
        mo[4] += w * x[0] * x[0];
        mo[5] += w * x[1] * x[1];
        mo[6] += w * x[2] * x[2];
        mo[7] += w * x[0] * x[1];
        mo[8] += w * x[0] * x[2];
        mo[9] += w * x[1] * x[2];
      }
    }
    p.clock().charge_ops(n, p.params().mem_us_per_word);
    mins = rt::allreduce_vec(p, mins,
                             [](f64 a, f64 b) { return std::min(a, b); });
    maxs = rt::allreduce_vec(p, maxs,
                             [](f64 a, f64 b) { return std::max(a, b); });
    if (need_moments) moments = rt::allreduce_vec(p, moments, std::plus<>{});

    // Choose one axis per group and project every member onto it. Degenerate
    // groups (all points coincident) fall back to splitting by global id so
    // the recursion always terminates with balanced parts.
    std::vector<std::array<f64, 3>> axes(na);
    std::vector<bool> degenerate(na, false);
    for (std::size_t s = 0; s < na; ++s) {
      std::array<f64, 3> mn{}, mx{};
      f64 extent = 0.0;
      for (int d = 0; d < 3; ++d) {
        mn[static_cast<std::size_t>(d)] = mins[3 * s + static_cast<std::size_t>(d)];
        mx[static_cast<std::size_t>(d)] = maxs[3 * s + static_cast<std::size_t>(d)];
        if (d < g.dims && mx[static_cast<std::size_t>(d)] >= mn[static_cast<std::size_t>(d)]) {
          extent = std::max(
              extent, mx[static_cast<std::size_t>(d)] - mn[static_cast<std::size_t>(d)]);
        }
      }
      degenerate[s] = extent < kDegenerateExtent;
      std::span<const f64> mo =
          need_moments ? std::span<const f64>(&moments[10 * s], 10)
                       : std::span<const f64>{};
      axes[s] = choose_axis(g.dims, mn, mx, mo);
    }

    std::vector<f64> proj(static_cast<std::size_t>(n), 0.0);
    std::vector<f64> proj_min(na, kInf), proj_max(na, -kInf);
    for (i64 l = 0; l < n; ++l) {
      const i64 slot = slot_of_group[static_cast<std::size_t>(group_of[
          static_cast<std::size_t>(l)])];
      if (slot < 0) continue;
      const std::size_t s = static_cast<std::size_t>(slot);
      f64 t;
      if (degenerate[s]) {
        t = static_cast<f64>(globals[static_cast<std::size_t>(l)]);
      } else {
        t = 0.0;
        for (int d = 0; d < g.dims; ++d) {
          t += axes[s][static_cast<std::size_t>(d)] *
               g.coords[static_cast<std::size_t>(d)][static_cast<std::size_t>(l)];
        }
      }
      proj[static_cast<std::size_t>(l)] = t;
      proj_min[s] = std::min(proj_min[s], t);
      proj_max[s] = std::max(proj_max[s], t);
    }
    p.clock().charge_ops(n, p.params().flop_us * 3);
    proj_min = rt::allreduce_vec(p, proj_min,
                                 [](f64 a, f64 b) { return std::min(a, b); });
    proj_max = rt::allreduce_vec(p, proj_max,
                                 [](f64 a, f64 b) { return std::max(a, b); });

    // Total weight and target left-fraction per group.
    std::vector<f64> total_w(na, 0.0);
    for (i64 l = 0; l < n; ++l) {
      const i64 slot = slot_of_group[static_cast<std::size_t>(group_of[
          static_cast<std::size_t>(l)])];
      if (slot >= 0) total_w[static_cast<std::size_t>(slot)] += g.weight_of(l);
    }
    total_w = rt::allreduce_vec(p, total_w, std::plus<>{});
    std::vector<f64> target(na);
    for (std::size_t s = 0; s < na; ++s) {
      const Group& gr = groups[static_cast<std::size_t>(active[s])];
      const i64 mid = (gr.part_lo + gr.part_hi) / 2;
      target[s] = total_w[s] * static_cast<f64>(mid - gr.part_lo) /
                  static_cast<f64>(gr.part_hi - gr.part_lo);
    }

    // Weighted-median search: synchronized interval bisection, all groups at
    // once (one vector allreduce per iteration). w_lo/w_hi track the exact
    // weight strictly below each interval endpoint as it moves — free
    // byproducts of the loop's own reductions, consumed by tie detection.
    std::vector<f64> lo = proj_min, hi = proj_max, cut(na);
    std::vector<f64> w_lo(na, 0.0), w_hi = total_w;
    for (int it = 0; it < kMedianIterations; ++it) {
      for (std::size_t s = 0; s < na; ++s) cut[s] = 0.5 * (lo[s] + hi[s]);
      std::vector<f64> below(na, 0.0);
      for (i64 l = 0; l < n; ++l) {
        const i64 slot = slot_of_group[static_cast<std::size_t>(group_of[
            static_cast<std::size_t>(l)])];
        if (slot < 0) continue;
        const std::size_t s = static_cast<std::size_t>(slot);
        if (proj[static_cast<std::size_t>(l)] < cut[s]) {
          below[s] += g.weight_of(l);
        }
      }
      p.clock().charge_ops(n, p.params().flop_us);
      below = rt::allreduce_vec(p, below, std::plus<>{});
      for (std::size_t s = 0; s < na; ++s) {
        if (below[s] < target[s]) {
          lo[s] = cut[s];
          w_lo[s] = below[s];
        } else {
          hi[s] = cut[s];
          w_hi[s] = below[s];
        }
      }
    }

    // Tie-splitting: duplicate coordinates make the below-weight jump
    // discontinuously, so the bisection stalls with the whole tie cluster
    // inside the final window [lo, hi] — the plain "proj < cut" assignment
    // would dump all of it on one side, however unbalanced. For any group
    // whose window still holds a macroscopic share of its weight, bisect a
    // global-id threshold over the window members so that
    // weight{proj < lo} + weight{window, gid < id_cut} hits the target.
    // Global ids are unique, so this always lands within one point of the
    // target, deterministically and identically on every rank. Groups with
    // no tie skip this entirely (no extra collectives, bit-identical cuts).
    std::vector<char> tied(na, 0);
    std::vector<i64> id_cut(na, 0);
    bool any_tie = false;
    for (std::size_t s = 0; s < na; ++s) {
      if (total_w[s] > 0.0 &&
          w_hi[s] - w_lo[s] > kTieWeightFraction * total_w[s]) {
        tied[s] = 1;
        any_tie = true;  // replicated decision: inputs are allreduced values
      }
    }
    if (any_tie) {
      const i64 id_limit = g.nglobal();
      std::vector<i64> id_lo(na, 0), id_hi(na, id_limit);
      int id_iters = 1;
      while ((i64{1} << id_iters) < id_limit) ++id_iters;
      std::vector<f64> below_id(na, 0.0);
      for (int it = 0; it <= id_iters; ++it) {
        for (std::size_t s = 0; s < na; ++s) {
          id_cut[s] = id_lo[s] + (id_hi[s] - id_lo[s]) / 2;
        }
        std::fill(below_id.begin(), below_id.end(), 0.0);
        for (i64 l = 0; l < n; ++l) {
          const i64 slot = slot_of_group[static_cast<std::size_t>(group_of[
              static_cast<std::size_t>(l)])];
          if (slot < 0 || !tied[static_cast<std::size_t>(slot)]) continue;
          const std::size_t s = static_cast<std::size_t>(slot);
          const f64 t = proj[static_cast<std::size_t>(l)];
          if (t >= lo[s] && t <= hi[s] &&
              globals[static_cast<std::size_t>(l)] < id_cut[s]) {
            below_id[s] += g.weight_of(l);
          }
        }
        p.clock().charge_ops(n, p.params().flop_us);
        below_id = rt::allreduce_vec(p, below_id, std::plus<>{});
        for (std::size_t s = 0; s < na; ++s) {
          if (!tied[s]) continue;
          if (w_lo[s] + below_id[s] < target[s]) {
            id_lo[s] = id_cut[s];
          } else {
            id_hi[s] = id_cut[s];
          }
        }
      }
      // weight{left}(id_hi) >= target by invariant, overshoot <= one point.
      for (std::size_t s = 0; s < na; ++s) id_cut[s] = id_hi[s];
    }

    // Split the groups and reassign members.
    std::vector<i64> left_child(groups.size(), -1), right_child(groups.size(), -1);
    for (std::size_t s = 0; s < na; ++s) {
      Group& gr = groups[static_cast<std::size_t>(active[s])];
      const i64 mid = (gr.part_lo + gr.part_hi) / 2;
      const Group left{gr.part_lo, mid};
      const Group right{mid, gr.part_hi};
      left_child[static_cast<std::size_t>(active[s])] =
          static_cast<i64>(groups.size());
      groups.push_back(left);
      right_child[static_cast<std::size_t>(active[s])] =
          static_cast<i64>(groups.size());
      groups.push_back(right);
      gr.part_hi = gr.part_lo;  // mark the parent as exhausted
    }
    for (i64 l = 0; l < n; ++l) {
      const i64 old = group_of[static_cast<std::size_t>(l)];
      const i64 slot = slot_of_group[static_cast<std::size_t>(old)];
      if (slot < 0) continue;
      const std::size_t s = static_cast<std::size_t>(slot);
      const f64 t = proj[static_cast<std::size_t>(l)];
      bool left;
      if (tied[s]) {
        left = t < lo[s] ||
               (t <= hi[s] && globals[static_cast<std::size_t>(l)] < id_cut[s]);
      } else {
        left = t < 0.5 * (lo[s] + hi[s]);
      }
      group_of[static_cast<std::size_t>(l)] =
          left ? left_child[static_cast<std::size_t>(old)]
               : right_child[static_cast<std::size_t>(old)];
    }
    p.clock().charge_ops(n, p.params().mem_us_per_word);
  }

  std::vector<i64> parts(static_cast<std::size_t>(n));
  for (i64 l = 0; l < n; ++l) {
    const Group& gr = groups[static_cast<std::size_t>(group_of[
        static_cast<std::size_t>(l)])];
    parts[static_cast<std::size_t>(l)] = gr.part_lo;
  }
  return parts;
}

}  // namespace

std::vector<i64> partition_rcb(rt::Process& p, const GeoColView& g,
                               int nparts) {
  return recursive_bisection(p, g, nparts, longest_axis,
                             /*need_moments=*/false);
}

std::vector<i64> partition_inertial(rt::Process& p, const GeoColView& g,
                                    int nparts) {
  return recursive_bisection(p, g, nparts, principal_axis,
                             /*need_moments=*/true);
}

}  // namespace chaos::part
