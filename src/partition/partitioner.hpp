// Partitioner registry: the paper's "library of commonly available
// partitioners" from which the SET ... USING <name> directive picks, plus
// the hook for user-supplied partitioners ("the user can link a customized
// partitioner as long as the calling sequence matches").
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "partition/geocol_view.hpp"
#include "rt/machine.hpp"

namespace chaos::part {

/// A partitioner is a collective function: every process passes its local
/// GeoCoL view and receives the part id (0..nparts-1) of each owned vertex,
/// aligned with the view's vertex distribution.
using PartitionFn =
    std::function<std::vector<i64>(rt::Process&, const GeoColView&, int nparts)>;

class PartitionerRegistry {
 public:
  static PartitionerRegistry& instance();

  /// Registers (or replaces) a partitioner under @p name (case-sensitive,
  /// conventionally upper-case: "RCB", "RSB", ...).
  void add(const std::string& name, PartitionFn fn);

  [[nodiscard]] bool contains(const std::string& name) const;
  [[nodiscard]] const PartitionFn& get(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> names() const;

 private:
  PartitionerRegistry();
  std::vector<std::pair<std::string, PartitionFn>> entries_;
};

// --- built-in partitioners (also self-registered in the registry) ----------

/// Naive baselines (need nothing from the GeoCoL beyond the vertex count).
std::vector<i64> partition_block(rt::Process& p, const GeoColView& g, int nparts);
std::vector<i64> partition_cyclic(rt::Process& p, const GeoColView& g, int nparts);
std::vector<i64> partition_random(rt::Process& p, const GeoColView& g, int nparts);

/// Recursive coordinate bisection (Berger–Bokhari): weighted median cuts
/// along the longest axis. Needs GEOMETRY (uses LOAD if present).
std::vector<i64> partition_rcb(rt::Process& p, const GeoColView& g, int nparts);

/// Inertial bisection: cuts along the principal axis of the point cloud.
/// Needs GEOMETRY (uses LOAD if present).
std::vector<i64> partition_inertial(rt::Process& p, const GeoColView& g,
                                    int nparts);

/// Recursive spectral bisection (Simon): Fiedler-vector median cuts.
/// Needs LINK connectivity (uses LOAD if present for balance).
std::vector<i64> partition_rsb(rt::Process& p, const GeoColView& g, int nparts);

/// Greedy/BFS partitioner (Farhat): grow parts breadth-first from peripheral
/// seeds until each reaches its weight target. Needs LINK connectivity.
std::vector<i64> partition_greedy(rt::Process& p, const GeoColView& g,
                                  int nparts);

/// Greedy KL/FM-style boundary refinement applied to an existing assignment;
/// needs LINK connectivity. Exposed as "RCB+KL" / "RSB+KL" in the registry.
std::vector<i64> refine_kl(rt::Process& p, const GeoColView& g, int nparts,
                           std::vector<i64> parts, int max_passes = 4);

}  // namespace chaos::part
