// Greedy Kernighan–Lin/Fiduccia–Mattheyses-style boundary refinement: moves
// boundary vertices to the adjacent part with the highest cut gain, subject
// to a balance constraint. Runs at the root on the gathered graph (the same
// substitution as RSB; cost is charged to the virtual clock).
#include <algorithm>
#include <numeric>
#include <vector>

#include "partition/partitioner.hpp"
#include "rt/collectives.hpp"

namespace chaos::part {

std::vector<i64> refine_kl(rt::Process& p, const GeoColView& g, int nparts,
                           std::vector<i64> parts, int max_passes) {
  CHAOS_CHECK(nparts >= 1, "refine: nparts must be positive");
  CHAOS_CHECK(g.has_connectivity(), "KL refinement requires LINK connectivity");
  CHAOS_CHECK(static_cast<i64>(parts.size()) == g.nlocal(),
              "refine: parts not aligned with the vertex distribution");

  const auto my_globals = g.vdist->my_globals();
  auto all_globals = rt::allgatherv<i64>(p, my_globals);
  std::vector<i64> degrees(static_cast<std::size_t>(g.nlocal()));
  for (i64 l = 0; l < g.nlocal(); ++l) {
    degrees[static_cast<std::size_t>(l)] =
        g.xadj[static_cast<std::size_t>(l) + 1] -
        g.xadj[static_cast<std::size_t>(l)];
  }
  auto all_degrees = rt::gatherv<i64>(p, degrees, 0);
  auto all_adjncy = rt::gatherv<i64>(p, g.adjncy, 0);
  auto all_parts = rt::gatherv<i64>(p, parts, 0);
  std::vector<f64> local_w(static_cast<std::size_t>(g.nlocal()));
  for (i64 l = 0; l < g.nlocal(); ++l) {
    local_w[static_cast<std::size_t>(l)] = g.weight_of(l);
  }
  auto all_weights = rt::gatherv<f64>(p, local_w, 0);

  const i64 n = g.nglobal();
  std::vector<i64> part_global(static_cast<std::size_t>(n), 0);
  if (p.is_root()) {
    // Rebuild the global CSR in global vertex order.
    std::vector<i64> xadj(static_cast<std::size_t>(n) + 1, 0);
    std::vector<i64> adjncy(all_adjncy.size());
    std::vector<f64> weight(static_cast<std::size_t>(n), 1.0);
    std::vector<i64> deg_of(static_cast<std::size_t>(n), 0);
    for (std::size_t k = 0; k < all_globals.size(); ++k) {
      const i64 u = all_globals[k];
      deg_of[static_cast<std::size_t>(u)] = all_degrees[k];
      weight[static_cast<std::size_t>(u)] = all_weights[k];
      part_global[static_cast<std::size_t>(u)] = all_parts[k];
    }
    for (i64 u = 0; u < n; ++u) {
      xadj[static_cast<std::size_t>(u) + 1] =
          xadj[static_cast<std::size_t>(u)] + deg_of[static_cast<std::size_t>(u)];
    }
    std::vector<i64> cursor = xadj;
    std::size_t pos = 0;
    for (std::size_t k = 0; k < all_globals.size(); ++k) {
      const i64 u = all_globals[k];
      for (i64 d = 0; d < all_degrees[k]; ++d) {
        adjncy[static_cast<std::size_t>(cursor[static_cast<std::size_t>(u)]++)] =
            all_adjncy[pos++];
      }
    }

    std::vector<f64> part_weight(static_cast<std::size_t>(nparts), 0.0);
    f64 total_weight = 0.0;
    for (i64 u = 0; u < n; ++u) {
      part_weight[static_cast<std::size_t>(part_global[
          static_cast<std::size_t>(u)])] += weight[static_cast<std::size_t>(u)];
      total_weight += weight[static_cast<std::size_t>(u)];
    }
    const f64 max_allowed =
        1.05 * total_weight / static_cast<f64>(nparts) + 1e-9;

    i64 flops = 0;
    std::vector<i64> affinity(static_cast<std::size_t>(nparts), 0);
    for (int pass = 0; pass < max_passes; ++pass) {
      i64 moves = 0;
      for (i64 u = 0; u < n; ++u) {
        const i64 pu = part_global[static_cast<std::size_t>(u)];
        // Count neighbors per part (sparse touch-and-reset).
        std::vector<i64> touched;
        for (i64 k = xadj[static_cast<std::size_t>(u)];
             k < xadj[static_cast<std::size_t>(u) + 1]; ++k) {
          const i64 pv = part_global[static_cast<std::size_t>(
              adjncy[static_cast<std::size_t>(k)])];
          if (affinity[static_cast<std::size_t>(pv)] == 0) touched.push_back(pv);
          ++affinity[static_cast<std::size_t>(pv)];
          ++flops;
        }
        i64 best_part = pu;
        i64 best_gain = 0;
        for (i64 cand : touched) {
          if (cand == pu) continue;
          const i64 gain = affinity[static_cast<std::size_t>(cand)] -
                           affinity[static_cast<std::size_t>(pu)];
          const bool balanced =
              part_weight[static_cast<std::size_t>(cand)] +
                  weight[static_cast<std::size_t>(u)] <=
              max_allowed;
          if (gain > best_gain && balanced) {
            best_gain = gain;
            best_part = cand;
          }
        }
        for (i64 t : touched) affinity[static_cast<std::size_t>(t)] = 0;
        if (best_part != pu) {
          part_weight[static_cast<std::size_t>(pu)] -=
              weight[static_cast<std::size_t>(u)];
          part_weight[static_cast<std::size_t>(best_part)] +=
              weight[static_cast<std::size_t>(u)];
          part_global[static_cast<std::size_t>(u)] = best_part;
          ++moves;
        }
      }
      if (moves == 0) break;
    }
    p.clock().charge_ops(flops, p.params().flop_us);
  }

  part_global = rt::broadcast_vec(p, part_global, 0);
  std::vector<i64> out(static_cast<std::size_t>(g.nlocal()));
  for (std::size_t l = 0; l < out.size(); ++l) {
    out[l] = part_global[static_cast<std::size_t>(my_globals[l])];
  }
  return out;
}

}  // namespace chaos::part
