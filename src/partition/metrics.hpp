// Partition quality metrics: edge cut, load imbalance, boundary size. Used
// by the ablation benches and by tests asserting that the smart partitioners
// actually beat the naive ones on mesh-like graphs.
#pragma once

#include <span>

#include "partition/geocol_view.hpp"
#include "rt/machine.hpp"

namespace chaos::part {

struct PartitionQuality {
  i64 edge_cut = 0;           ///< edges with endpoints in different parts
  i64 total_edges = 0;        ///< undirected edge count of the graph
  i64 boundary_vertices = 0;  ///< vertices with at least one cut edge
  f64 imbalance = 0.0;        ///< max part weight / average part weight
  f64 max_part_weight = 0.0;
  i64 nonempty_parts = 0;

  [[nodiscard]] f64 cut_fraction() const {
    return total_edges == 0
               ? 0.0
               : static_cast<f64>(edge_cut) / static_cast<f64>(total_edges);
  }
};

/// Collective: evaluates @p parts (aligned with g.vdist) against the GeoCoL
/// connectivity. Requires LINK; weights default to 1.
[[nodiscard]] PartitionQuality evaluate_partition(rt::Process& p,
                                                  const GeoColView& g,
                                                  std::span<const i64> parts,
                                                  int nparts);

}  // namespace chaos::part
