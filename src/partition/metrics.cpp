#include "partition/metrics.hpp"

#include <algorithm>

#include "rt/collectives.hpp"

namespace chaos::part {

PartitionQuality evaluate_partition(rt::Process& p, const GeoColView& g,
                                    std::span<const i64> parts, int nparts) {
  CHAOS_CHECK(g.has_connectivity(),
              "evaluate_partition requires LINK connectivity");
  CHAOS_CHECK(static_cast<i64>(parts.size()) == g.nlocal(),
              "evaluate_partition: parts not aligned with vertices");
  CHAOS_CHECK(nparts >= 1, "evaluate_partition: nparts must be positive");

  const auto my_globals = g.vdist->my_globals();

  // Learn the part of every remote neighbor: query the owner of each
  // distinct neighbor id under the vertex distribution.
  std::vector<i64> neighbor_ids(g.adjncy.begin(), g.adjncy.end());
  std::sort(neighbor_ids.begin(), neighbor_ids.end());
  neighbor_ids.erase(std::unique(neighbor_ids.begin(), neighbor_ids.end()),
                     neighbor_ids.end());
  const auto entries = g.vdist->locate(p, neighbor_ids);

  std::vector<std::vector<i64>> asked(static_cast<std::size_t>(p.nprocs()));
  for (std::size_t k = 0; k < neighbor_ids.size(); ++k) {
    asked[static_cast<std::size_t>(entries[k].proc)].push_back(
        entries[k].local);
  }
  auto to_answer = rt::alltoallv(p, asked);
  std::vector<std::vector<i64>> answers(static_cast<std::size_t>(p.nprocs()));
  for (int r = 0; r < p.nprocs(); ++r) {
    auto& reply = answers[static_cast<std::size_t>(r)];
    reply.reserve(to_answer[static_cast<std::size_t>(r)].size());
    for (i64 l : to_answer[static_cast<std::size_t>(r)]) {
      CHAOS_CHECK(l >= 0 && l < g.nlocal(), "evaluate_partition: bad query");
      reply.push_back(parts[static_cast<std::size_t>(l)]);
    }
  }
  auto got = rt::alltoallv(p, answers);

  // part_of_neighbor[k] matches neighbor_ids[k].
  std::vector<i64> part_of_neighbor(neighbor_ids.size());
  {
    std::vector<std::size_t> cursor(static_cast<std::size_t>(p.nprocs()), 0);
    for (std::size_t k = 0; k < neighbor_ids.size(); ++k) {
      const auto owner = static_cast<std::size_t>(entries[k].proc);
      part_of_neighbor[k] = got[owner][cursor[owner]++];
    }
  }
  auto lookup_part = [&](i64 global) {
    const auto it = std::lower_bound(neighbor_ids.begin(), neighbor_ids.end(),
                                     global);
    CHAOS_CHECK(it != neighbor_ids.end() && *it == global,
                "evaluate_partition: neighbor lookup miss");
    return part_of_neighbor[static_cast<std::size_t>(
        it - neighbor_ids.begin())];
  };

  PartitionQuality q;
  std::vector<f64> part_weight(static_cast<std::size_t>(nparts), 0.0);
  for (i64 l = 0; l < g.nlocal(); ++l) {
    const i64 mypart = parts[static_cast<std::size_t>(l)];
    CHAOS_CHECK(mypart >= 0 && mypart < nparts,
                "evaluate_partition: part id out of range");
    part_weight[static_cast<std::size_t>(mypart)] += g.weight_of(l);
    const i64 u = my_globals[static_cast<std::size_t>(l)];
    bool on_boundary = false;
    for (i64 k = g.xadj[static_cast<std::size_t>(l)];
         k < g.xadj[static_cast<std::size_t>(l) + 1]; ++k) {
      const i64 v = g.adjncy[static_cast<std::size_t>(k)];
      const i64 vpart = lookup_part(v);
      if (vpart != mypart) on_boundary = true;
      if (u < v) {  // count each undirected edge once
        ++q.total_edges;
        if (vpart != mypart) ++q.edge_cut;
      }
    }
    if (on_boundary) ++q.boundary_vertices;
  }

  q.edge_cut = rt::allreduce_sum(p, q.edge_cut);
  q.total_edges = rt::allreduce_sum(p, q.total_edges);
  q.boundary_vertices = rt::allreduce_sum(p, q.boundary_vertices);
  part_weight = rt::allreduce_vec(p, part_weight, std::plus<>{});

  f64 total_weight = 0.0;
  for (f64 w : part_weight) {
    total_weight += w;
    q.max_part_weight = std::max(q.max_part_weight, w);
    if (w > 0.0) ++q.nonempty_parts;
  }
  const f64 avg = total_weight / static_cast<f64>(nparts);
  q.imbalance = avg > 0.0 ? q.max_part_weight / avg : 0.0;
  return q;
}

}  // namespace chaos::part
