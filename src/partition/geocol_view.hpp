// The standardized partitioner interface data structure (Section 4.1.1 of
// the paper): a read-only view of the GeoCoL graph — Geometry (vertex
// coordinates), Connectivity (local CSR rows with global column ids) and
// Load (vertex weights) — aligned with a vertex distribution. Partitioners
// consume this view and nothing else, which is precisely what decouples them
// from applications.
#pragma once

#include <array>
#include <span>

#include "dist/distribution.hpp"

namespace chaos::part {

struct GeoColView {
  /// Distribution of the vertex set; every per-vertex span below is the
  /// calling process's slice under this distribution.
  const dist::Distribution* vdist = nullptr;

  /// Geometry: dims in {0,1,2,3}; coords[d] has vdist->my_local_size() slots.
  int dims = 0;
  std::array<std::span<const f64>, 3> coords{};

  /// Load: optional per-vertex weights (empty means unit weights).
  std::span<const f64> weights{};

  /// Connectivity: optional local CSR over owned vertices; adjncy holds
  /// *global* vertex ids. xadj has my_local_size()+1 entries when present.
  std::span<const i64> xadj{};
  std::span<const i64> adjncy{};

  [[nodiscard]] bool has_geometry() const { return dims > 0; }
  [[nodiscard]] bool has_connectivity() const { return !xadj.empty(); }
  [[nodiscard]] bool has_load() const { return !weights.empty(); }

  [[nodiscard]] i64 nlocal() const { return vdist->my_local_size(); }
  [[nodiscard]] i64 nglobal() const { return vdist->size(); }

  [[nodiscard]] f64 weight_of(i64 l) const {
    return has_load() ? weights[static_cast<std::size_t>(l)] : 1.0;
  }
};

}  // namespace chaos::part
