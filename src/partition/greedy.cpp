// Greedy/BFS partitioner (Farhat-style, the era's standard cheap
// connectivity heuristic): grow each part by breadth-first search from a
// peripheral seed until it reaches its weight target, then reseed from the
// frontier. Costs one BFS over the graph — far cheaper than RSB, usually a
// worse cut, much better than BLOCK. Runs at the root over the gathered
// GeoCoL (same substitution as RSB; modeled time charged per operation).
#include <algorithm>
#include <deque>
#include <numeric>
#include <vector>

#include "partition/partitioner.hpp"
#include "rt/collectives.hpp"

namespace chaos::part {

std::vector<i64> partition_greedy(rt::Process& p, const GeoColView& g,
                                  int nparts) {
  CHAOS_CHECK(nparts >= 1, "partition: nparts must be positive");
  CHAOS_CHECK(g.has_connectivity(),
              "GREEDY requires LINK connectivity in the GeoCoL");

  const auto my_globals = g.vdist->my_globals();
  auto all_globals = rt::allgatherv<i64>(p, my_globals);
  std::vector<i64> degrees(static_cast<std::size_t>(g.nlocal()));
  for (i64 l = 0; l < g.nlocal(); ++l) {
    degrees[static_cast<std::size_t>(l)] =
        g.xadj[static_cast<std::size_t>(l) + 1] -
        g.xadj[static_cast<std::size_t>(l)];
  }
  auto all_degrees = rt::gatherv<i64>(p, degrees, 0);
  auto all_adjncy = rt::gatherv<i64>(p, g.adjncy, 0);
  std::vector<f64> local_w(static_cast<std::size_t>(g.nlocal()));
  for (i64 l = 0; l < g.nlocal(); ++l) {
    local_w[static_cast<std::size_t>(l)] = g.weight_of(l);
  }
  auto all_weights = rt::gatherv<f64>(p, local_w, 0);

  const i64 n = g.nglobal();
  std::vector<i64> parts_global(static_cast<std::size_t>(n), 0);
  if (p.is_root()) {
    // Global CSR in vertex order.
    std::vector<i64> xadj(static_cast<std::size_t>(n) + 1, 0);
    std::vector<i64> adjncy(all_adjncy.size());
    std::vector<f64> weight(static_cast<std::size_t>(n), 1.0);
    std::vector<i64> deg_of(static_cast<std::size_t>(n), 0);
    for (std::size_t k = 0; k < all_globals.size(); ++k) {
      deg_of[static_cast<std::size_t>(all_globals[k])] = all_degrees[k];
      weight[static_cast<std::size_t>(all_globals[k])] = all_weights[k];
    }
    for (i64 u = 0; u < n; ++u) {
      xadj[static_cast<std::size_t>(u) + 1] =
          xadj[static_cast<std::size_t>(u)] + deg_of[static_cast<std::size_t>(u)];
    }
    std::vector<i64> cursor = xadj;
    std::size_t pos = 0;
    for (std::size_t k = 0; k < all_globals.size(); ++k) {
      const i64 u = all_globals[k];
      for (i64 d = 0; d < all_degrees[k]; ++d) {
        adjncy[static_cast<std::size_t>(cursor[static_cast<std::size_t>(u)]++)] =
            all_adjncy[pos++];
      }
    }

    f64 total_weight = 0.0;
    for (f64 w : weight) total_weight += w;

    std::vector<i64> part(static_cast<std::size_t>(n), -1);
    std::deque<i64> frontier;
    i64 assigned = 0;
    i64 ops = 0;

    // Seed heuristic: lowest-degree unassigned vertex (peripheral vertices
    // have low degree in mesh graphs).
    auto next_seed = [&]() -> i64 {
      i64 best = -1;
      for (i64 u = 0; u < n; ++u) {
        if (part[static_cast<std::size_t>(u)] == -1 &&
            (best == -1 || deg_of[static_cast<std::size_t>(u)] <
                               deg_of[static_cast<std::size_t>(best)])) {
          best = u;
        }
        ++ops;
      }
      return best;
    };

    for (int k = 0; k < nparts && assigned < n; ++k) {
      const f64 target = total_weight * static_cast<f64>(k + 1) /
                         static_cast<f64>(nparts);
      f64 running = 0.0;
      for (i64 u = 0; u < n; ++u) {
        if (part[static_cast<std::size_t>(u)] >= 0) {
          running += weight[static_cast<std::size_t>(u)];
        }
      }
      // Each part grows compactly from a single seed: the first unassigned
      // vertex of the previous part's frontier (so parts tile the mesh), or
      // a fresh peripheral seed for the first part / disconnected pieces.
      if (k > 0) {
        i64 seed = -1;
        while (!frontier.empty()) {
          const i64 cand = frontier.front();
          frontier.pop_front();
          if (part[static_cast<std::size_t>(cand)] == -1) {
            seed = cand;
            break;
          }
        }
        frontier.clear();
        if (seed != -1) frontier.push_back(seed);
      }
      while (running < target - 1e-9 && assigned < n) {
        i64 u = -1;
        while (!frontier.empty()) {
          const i64 cand = frontier.front();
          frontier.pop_front();
          if (part[static_cast<std::size_t>(cand)] == -1) {
            u = cand;
            break;
          }
        }
        if (u == -1) u = next_seed();
        if (u == -1) break;
        part[static_cast<std::size_t>(u)] = k;
        running += weight[static_cast<std::size_t>(u)];
        ++assigned;
        for (i64 e = xadj[static_cast<std::size_t>(u)];
             e < xadj[static_cast<std::size_t>(u) + 1]; ++e) {
          const i64 v = adjncy[static_cast<std::size_t>(e)];
          if (part[static_cast<std::size_t>(v)] == -1) frontier.push_back(v);
          ++ops;
        }
      }
    }
    // Anything left (numerical slack on the last target) goes to the last part.
    for (i64 u = 0; u < n; ++u) {
      if (part[static_cast<std::size_t>(u)] == -1) {
        part[static_cast<std::size_t>(u)] = nparts - 1;
      }
    }
    parts_global.assign(part.begin(), part.end());
    p.clock().charge_ops(ops + 4 * n, p.params().flop_us);
  }

  parts_global = rt::broadcast_vec(p, parts_global, 0);
  std::vector<i64> parts(static_cast<std::size_t>(g.nlocal()));
  for (std::size_t l = 0; l < parts.size(); ++l) {
    parts[l] = parts_global[static_cast<std::size_t>(my_globals[l])];
  }
  return parts;
}

}  // namespace chaos::part
