// Pipeline phase supervision: bounded retry of failed SPMD phases on a
// recovered Machine (DESIGN.md §11).
//
// A Supervisor wraps each pipeline phase (partition → inspect → execute) in
// a run/classify/recover/backoff loop. The contract that makes retry sound
// is split across the layers: Machine::recover() certifies no message or
// epoch state leaks between attempts (rt/), the workspaces and plans are
// exception-safe so a half-finished attempt can be thrown away (core/,
// dist/), and phase bodies are written idempotent — each attempt rebuilds
// its outputs from the previous phase's, never from its own partial state.
// Backoff burns wall-clock only; the modeled virtual clock of the
// successful attempt is byte-identical to a clean run (gated by
// bench/ablation_recovery.cpp).
#pragma once

#include <functional>

#include "rt/machine.hpp"
#include "rt/retry.hpp"

namespace chaos::core {

/// Counters accumulated across every run_phase call on one Supervisor.
/// attempts - phases == total retries; recoveries counts phases that
/// failed at least once and then succeeded.
struct SupervisorStats {
  i64 phases = 0;           ///< run_phase calls completed successfully
  i64 attempts = 0;         ///< Machine::run invocations (>= phases)
  i64 retries = 0;          ///< attempts beyond each phase's first
  i64 recoveries = 0;       ///< phases that succeeded after >= 1 failure
  i64 gave_up = 0;          ///< phases rethrown (exhausted or fatal)
  i64 messages_drained = 0; ///< undelivered messages Machine::recover dropped
  f64 backoff_wall_ms = 0.0;  ///< wall-clock slept between attempts

  [[nodiscard]] bool clean() const {
    return retries == 0 && gave_up == 0 && messages_drained == 0;
  }
};

/// Runs SPMD phase bodies on one Machine under a RetryPolicy. Not
/// thread-safe; drive it from the host thread that owns the machine.
class Supervisor {
 public:
  explicit Supervisor(rt::Machine& machine, rt::RetryPolicy policy = {});

  /// Runs @p body via Machine::run. On a retryable failure (rt::
  /// is_retryable) with attempts remaining: recovers the machine, sleeps
  /// the policy's backoff (wall-clock only), and retries. Rethrows the
  /// last error when attempts are exhausted or the error is fatal —
  /// after recovering the machine, so a caller that catches can keep
  /// using it. @p phase_name labels nothing but future diagnostics; it is
  /// not stored per-phase.
  void run_phase(const char* phase_name,
                 const std::function<void(rt::Process&)>& body);

  [[nodiscard]] const SupervisorStats& stats() const { return stats_; }
  [[nodiscard]] const rt::RetryPolicy& policy() const { return policy_; }
  [[nodiscard]] rt::Machine& machine() { return *machine_; }
  void reset_stats() { stats_ = SupervisorStats{}; }

 private:
  rt::Machine* machine_;
  rt::RetryPolicy policy_;
  SupervisorStats stats_;
};

}  // namespace chaos::core
