// Pipeline phase supervision: bounded retry of failed SPMD phases on a
// recovered Machine (DESIGN.md §11).
//
// A Supervisor wraps each pipeline phase (partition → inspect → execute) in
// a run/classify/recover/backoff loop. The contract that makes retry sound
// is split across the layers: Machine::recover() certifies no message or
// epoch state leaks between attempts (rt/), the workspaces and plans are
// exception-safe so a half-finished attempt can be thrown away (core/,
// dist/), and phase bodies are written idempotent — each attempt rebuilds
// its outputs from the previous phase's, never from its own partial state.
// Backoff burns wall-clock only; the modeled virtual clock of the
// successful attempt is byte-identical to a clean run (gated by
// bench/ablation_recovery.cpp).
#pragma once

#include <functional>

#include "rt/machine.hpp"
#include "rt/retry.hpp"

namespace chaos::core {

/// Counters accumulated across every run_phase call on one Supervisor.
/// attempts - phases == total retries; recoveries counts phases that
/// failed at least once and then succeeded.
struct SupervisorStats {
  i64 phases = 0;           ///< run_phase calls completed successfully
  i64 attempts = 0;         ///< Machine::run invocations (>= phases)
  i64 retries = 0;          ///< attempts beyond each phase's first
  i64 recoveries = 0;       ///< phases that succeeded after >= 1 failure
  i64 gave_up = 0;          ///< phases escalated or rethrown (exhausted/fatal)
  i64 messages_drained = 0; ///< undelivered messages Machine::recover dropped
  i64 dirty_shards = 0;     ///< (dest, source) mailbox shards found dirty
  f64 backoff_wall_ms = 0.0;  ///< wall-clock slept between attempts

  [[nodiscard]] bool clean() const {
    return retries == 0 && gave_up == 0 && messages_drained == 0 &&
           dirty_shards == 0;
  }
};

/// Runs SPMD phase bodies on one Machine under a RetryPolicy. Not
/// thread-safe; drive it from the host thread that owns the machine.
class Supervisor {
 public:
  explicit Supervisor(rt::Machine& machine, rt::RetryPolicy policy = {});

  /// Runs @p body via Machine::run. On a retryable failure (rt::
  /// is_retryable) with attempts remaining: recovers the machine, sleeps
  /// the policy's backoff (wall-clock only), and retries. A FATAL error
  /// (CHAOS_CHECK violation, logic bug) is rethrown as-is — retrying
  /// deterministic breakage is meaningless and so is blaming a rank. A
  /// RETRYABLE error that survives the whole retry budget is escalated:
  /// the transient-fault hypothesis is falsified, so run_phase throws a
  /// typed chaos::PermanentFault naming the presumed-dead rank (from the
  /// FaultInjected's detonation rank or a MachineTimeout's first missing
  /// rank) and the fault site, and the caller is expected to degrade
  /// (DESIGN.md §13). Either way the machine is recovered first, so a
  /// catching caller can keep using it. @p phase_name labels the
  /// escalation message and future diagnostics; it is not stored.
  void run_phase(const char* phase_name,
                 const std::function<void(rt::Process&)>& body);

  [[nodiscard]] const SupervisorStats& stats() const { return stats_; }
  /// Per-shard breakdown of the most recent failed attempt's drained
  /// mailboxes (empty if every attempt so far was clean): which
  /// (dest, source) pairs were mid-flight when the failure hit.
  [[nodiscard]] const std::vector<rt::ShardDrain>& last_dirty_shards() const {
    return last_dirty_shards_;
  }
  [[nodiscard]] const rt::RetryPolicy& policy() const { return policy_; }
  [[nodiscard]] rt::Machine& machine() { return *machine_; }
  void reset_stats() {
    stats_ = SupervisorStats{};
    last_dirty_shards_.clear();
  }

 private:
  rt::Machine* machine_;
  rt::RetryPolicy policy_;
  SupervisorStats stats_;
  std::vector<rt::ShardDrain> last_dirty_shards_;
};

}  // namespace chaos::core
