// Communication schedule (PARTI/CHAOS): the inspector's central product. A
// CommSchedule records, for one (loop, distribution) pair, which of my local
// elements other processes need (send side) and how many ghost values arrive
// from each process (receive side). The ghost buffer is laid out by source
// rank ascending, within rank in request order — so the executor's gather is
// a pack / all-to-all / contiguous-unpack with no per-element addressing.
//
// Layout: both sides are CSR. The send side is one flat index array sliced
// by a P+1 prefix (no per-destination heap blocks, so the executor's pack
// loop streams through one contiguous buffer), and the receive side keeps
// its prefix precomputed, making recv_offset() O(1) in the hot path.
#pragma once

#include <span>
#include <vector>

#include "rt/types.hpp"

namespace chaos::core {

struct CommSchedule {
  /// Flat CSR values: my local element indices peers asked for, grouped by
  /// destination rank ascending. Segment [send_offsets[d], send_offsets[d+1])
  /// is packed for rank d, in the order rank d requested.
  std::vector<i64> send_indices;
  /// P+1 prefix slicing send_indices by destination rank.
  std::vector<i64> send_offsets;
  /// P+1 prefix over ghost slots by source rank: source s fills ghost slots
  /// [recv_offsets[s], recv_offsets[s+1]).
  std::vector<i64> recv_offsets;
  /// Total ghost slots (== recv_offsets.back()).
  i64 nghost = 0;
  /// Local segment size when the schedule was built (staleness guard).
  i64 nlocal_at_build = 0;

  [[nodiscard]] int nprocs() const {
    return static_cast<int>(send_offsets.empty() ? 0 : send_offsets.size() - 1);
  }

  /// O(1): first ghost slot filled by @p src (was an O(P) prefix sum per
  /// call in the nested-vector layout).
  [[nodiscard]] i64 recv_offset(int src) const {
    return recv_offsets[static_cast<std::size_t>(src)];
  }
  [[nodiscard]] i64 recv_count(int src) const {
    return recv_offsets[static_cast<std::size_t>(src) + 1] -
           recv_offsets[static_cast<std::size_t>(src)];
  }
  [[nodiscard]] i64 send_count(int dest) const {
    return send_offsets[static_cast<std::size_t>(dest) + 1] -
           send_offsets[static_cast<std::size_t>(dest)];
  }
  /// The local indices packed for @p dest, as a view into the flat array.
  [[nodiscard]] std::span<const i64> send_to(int dest) const {
    return std::span<const i64>(send_indices)
        .subspan(static_cast<std::size_t>(
                     send_offsets[static_cast<std::size_t>(dest)]),
                 static_cast<std::size_t>(send_count(dest)));
  }
  /// Total elements this process packs per gather (all destinations).
  [[nodiscard]] i64 total_send() const {
    return send_offsets.empty() ? 0 : send_offsets[send_offsets.size() - 1];
  }

  /// Number of point-to-point messages a gather through this schedule costs
  /// this process (sends plus receives, self excluded by construction).
  /// One O(P) scan of the cached prefixes.
  [[nodiscard]] i64 messages(int my_rank) const {
    i64 m = 0;
    for (int r = 0; r < nprocs(); ++r) {
      if (r == my_rank) continue;
      if (send_count(r) > 0) ++m;
      if (recv_count(r) > 0) ++m;
    }
    return m;
  }

  /// Words moved off-process by one gather (send direction).
  [[nodiscard]] i64 send_volume(int my_rank) const {
    i64 v = total_send();
    if (my_rank >= 0 && my_rank < nprocs()) v -= send_count(my_rank);
    return v;
  }

  /// Full structural consistency check: monotone prefixes, cached nghost
  /// matching the receive prefix, and every send index inside the local
  /// segment. O(P + total_send); executors run it in debug builds only —
  /// the hot path stays check-free in Release.
  [[nodiscard]] bool validate() const {
    if (send_offsets.size() != recv_offsets.size()) return false;
    if (send_offsets.empty()) return nghost == 0 && send_indices.empty();
    if (send_offsets[0] != 0 || recv_offsets[0] != 0) return false;
    for (std::size_t r = 1; r < send_offsets.size(); ++r) {
      if (send_offsets[r] < send_offsets[r - 1]) return false;
      if (recv_offsets[r] < recv_offsets[r - 1]) return false;
    }
    if (nghost != recv_offsets[recv_offsets.size() - 1]) return false;
    if (static_cast<i64>(send_indices.size()) != total_send()) return false;
    for (i64 l : send_indices) {
      if (l < 0 || l >= nlocal_at_build) return false;
    }
    return true;
  }
};

}  // namespace chaos::core
