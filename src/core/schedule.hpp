// Communication schedule (PARTI/CHAOS): the inspector's central product. A
// CommSchedule records, for one (loop, distribution) pair, which of my local
// elements other processes need (send side) and how many ghost values arrive
// from each process (receive side). The ghost buffer is laid out by source
// rank ascending, within rank in request order — so the executor's gather is
// a pack / all-to-all / contiguous-unpack with no per-element addressing.
#pragma once

#include <numeric>
#include <vector>

#include "rt/types.hpp"

namespace chaos::core {

struct CommSchedule {
  /// send_local[d] = my local element indices process d asked for.
  std::vector<std::vector<i64>> send_local;
  /// recv_counts[s] = number of ghost values process s will send me. Ghost
  /// slot ranges per source are contiguous: source s fills
  /// [recv_offset(s), recv_offset(s)+recv_counts[s]).
  std::vector<i64> recv_counts;
  /// Total ghost slots (== sum of recv_counts).
  i64 nghost = 0;
  /// Local segment size when the schedule was built (staleness guard).
  i64 nlocal_at_build = 0;

  [[nodiscard]] i64 recv_offset(int src) const {
    i64 off = 0;
    for (int s = 0; s < src; ++s) off += recv_counts[static_cast<std::size_t>(s)];
    return off;
  }

  /// Number of point-to-point messages a gather through this schedule costs
  /// this process (sends plus receives, self excluded by construction).
  [[nodiscard]] i64 messages(int my_rank) const {
    i64 m = 0;
    for (std::size_t d = 0; d < send_local.size(); ++d) {
      if (static_cast<int>(d) != my_rank && !send_local[d].empty()) ++m;
    }
    for (std::size_t s = 0; s < recv_counts.size(); ++s) {
      if (static_cast<int>(s) != my_rank && recv_counts[s] > 0) ++m;
    }
    return m;
  }

  /// Words moved off-process by one gather (send direction).
  [[nodiscard]] i64 send_volume(int my_rank) const {
    i64 v = 0;
    for (std::size_t d = 0; d < send_local.size(); ++d) {
      if (static_cast<int>(d) != my_rank) v += static_cast<i64>(send_local[d].size());
    }
    return v;
  }
};

}  // namespace chaos::core
