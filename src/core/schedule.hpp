// Communication schedule (PARTI/CHAOS): the inspector's central product. A
// CommSchedule records, for one (loop, distribution) pair, which of my local
// elements other processes need (send side) and how many ghost values arrive
// from each process (receive side). The ghost buffer is laid out by source
// rank ascending, within rank in request order — so the executor's gather is
// a pack / all-to-all / contiguous-unpack with no per-element addressing.
//
// Layout: both sides are CSR. The send side is one flat index array sliced
// by a P+1 prefix (no per-destination heap blocks, so the executor's pack
// loop streams through one contiguous buffer), and the receive side keeps
// its prefix precomputed, making recv_offset() O(1) in the hot path.
#pragma once

#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "rt/types.hpp"

namespace chaos::core {

/// Typed outcome of CommSchedule validation. Schedules are long-lived and —
/// in the multi-tenant arc — may arrive from a cache or another tenant, so
/// a corrupted or stale plan must map to a named rejection rather than UB
/// in the executor's unchecked pack loop.
enum class ScheduleErrorCode : u8 {
  Ok = 0,
  PrefixShapeMismatch,  ///< send/recv prefixes disagree in length (P-consistency)
  PrefixNotZeroBased,   ///< a prefix does not start at 0
  PrefixNonMonotone,    ///< an offset decreases (negative segment count)
  GhostCountMismatch,   ///< cached nghost != receive prefix total
  IndexCountMismatch,   ///< send_indices length != send prefix total
  IndexOutOfBounds,     ///< a send index falls outside [0, nlocal_at_build)
};

[[nodiscard]] constexpr const char* to_string(ScheduleErrorCode code) {
  switch (code) {
    case ScheduleErrorCode::Ok: return "ok";
    case ScheduleErrorCode::PrefixShapeMismatch:
      return "send/recv offset prefixes disagree in length";
    case ScheduleErrorCode::PrefixNotZeroBased:
      return "offset prefix does not start at zero";
    case ScheduleErrorCode::PrefixNonMonotone:
      return "offset prefix is not monotone (negative segment count)";
    case ScheduleErrorCode::GhostCountMismatch:
      return "cached nghost does not match the receive prefix";
    case ScheduleErrorCode::IndexCountMismatch:
      return "send_indices length does not match the send prefix";
    case ScheduleErrorCode::IndexOutOfBounds:
      return "send index outside the local segment at build time";
  }
  return "unknown schedule error";
}

/// Thrown by CommSchedule::validate_or_throw on the first violated
/// invariant; carries the typed code plus where it tripped.
class ScheduleInvalid : public ChaosError {
 public:
  ScheduleInvalid(const std::string& what, ScheduleErrorCode code,
                  i64 position)
      : ChaosError(what), code(code), position(position) {}

  ScheduleErrorCode code;
  i64 position;  ///< offending rank for prefix errors, flat index otherwise
};

/// Generation/validity stamp carried by every inspector plan
/// (EdgeLoopPlan / SingleStatementPlan / lang LoopPlan). A build that
/// throws partway — a fault mid-exchange, a timeout — leaves the plan NOT
/// ready: begin_build() clears the bit before any schedule state is
/// touched and only a completed build sets it back. Executors refuse a
/// not-ready plan with a typed error, so a recovered attempt is forced to
/// re-inspect instead of sweeping through a half-built CommSchedule
/// (DESIGN.md §11). The generation counter exists for diagnostics and
/// cache-coherency tests: it counts build ATTEMPTS, not successes.
struct PlanBuildState {
  u64 generation = 0;
  bool complete = false;

  void begin_build() {
    complete = false;
    ++generation;
  }
  void mark_built() { complete = true; }
  [[nodiscard]] bool ready() const { return complete; }
};

struct CommSchedule {
  /// Flat CSR values: my local element indices peers asked for, grouped by
  /// destination rank ascending. Segment [send_offsets[d], send_offsets[d+1])
  /// is packed for rank d, in the order rank d requested.
  std::vector<i64> send_indices;
  /// P+1 prefix slicing send_indices by destination rank.
  std::vector<i64> send_offsets;
  /// P+1 prefix over ghost slots by source rank: source s fills ghost slots
  /// [recv_offsets[s], recv_offsets[s+1]).
  std::vector<i64> recv_offsets;
  /// Total ghost slots (== recv_offsets.back()).
  i64 nghost = 0;
  /// Local segment size when the schedule was built (staleness guard).
  i64 nlocal_at_build = 0;

  [[nodiscard]] int nprocs() const {
    return static_cast<int>(send_offsets.empty() ? 0 : send_offsets.size() - 1);
  }

  /// O(1): first ghost slot filled by @p src (was an O(P) prefix sum per
  /// call in the nested-vector layout).
  [[nodiscard]] i64 recv_offset(int src) const {
    return recv_offsets[static_cast<std::size_t>(src)];
  }
  [[nodiscard]] i64 recv_count(int src) const {
    return recv_offsets[static_cast<std::size_t>(src) + 1] -
           recv_offsets[static_cast<std::size_t>(src)];
  }
  [[nodiscard]] i64 send_count(int dest) const {
    return send_offsets[static_cast<std::size_t>(dest) + 1] -
           send_offsets[static_cast<std::size_t>(dest)];
  }
  /// The local indices packed for @p dest, as a view into the flat array.
  [[nodiscard]] std::span<const i64> send_to(int dest) const {
    return std::span<const i64>(send_indices)
        .subspan(static_cast<std::size_t>(
                     send_offsets[static_cast<std::size_t>(dest)]),
                 static_cast<std::size_t>(send_count(dest)));
  }
  /// Total elements this process packs per gather (all destinations).
  [[nodiscard]] i64 total_send() const {
    return send_offsets.empty() ? 0 : send_offsets[send_offsets.size() - 1];
  }

  /// Number of point-to-point messages a gather through this schedule costs
  /// this process (sends plus receives, self excluded by construction).
  /// One O(P) scan of the cached prefixes.
  [[nodiscard]] i64 messages(int my_rank) const {
    i64 m = 0;
    for (int r = 0; r < nprocs(); ++r) {
      if (r == my_rank) continue;
      if (send_count(r) > 0) ++m;
      if (recv_count(r) > 0) ++m;
    }
    return m;
  }

  /// Words moved off-process by one gather (send direction).
  [[nodiscard]] i64 send_volume(int my_rank) const {
    i64 v = total_send();
    if (my_rank >= 0 && my_rank < nprocs()) v -= send_count(my_rank);
    return v;
  }

  /// Outcome of check(): the first violated invariant plus where.
  struct CheckResult {
    ScheduleErrorCode code = ScheduleErrorCode::Ok;
    i64 position = -1;  ///< rank for prefix errors, flat index otherwise
    [[nodiscard]] bool ok() const { return code == ScheduleErrorCode::Ok; }
  };

  /// Full structural consistency check, always compiled in: offset
  /// monotonicity, zero-based prefixes, P-consistency of the two prefixes,
  /// cached nghost vs the receive prefix, and every send index inside the
  /// local segment at build time. O(P + total_send) — cheap enough to run
  /// once per plan build or on any schedule that crosses a trust boundary
  /// (cache hit, deserialized plan, another tenant); executors keep the
  /// per-sweep call debug-only so the hot path stays check-free in Release.
  [[nodiscard]] CheckResult check() const {
    if (send_offsets.size() != recv_offsets.size()) {
      return {ScheduleErrorCode::PrefixShapeMismatch, 0};
    }
    if (send_offsets.empty()) {
      if (nghost != 0) return {ScheduleErrorCode::GhostCountMismatch, 0};
      if (!send_indices.empty()) {
        return {ScheduleErrorCode::IndexCountMismatch, 0};
      }
      return {};
    }
    if (send_offsets[0] != 0 || recv_offsets[0] != 0) {
      return {ScheduleErrorCode::PrefixNotZeroBased, 0};
    }
    for (std::size_t r = 1; r < send_offsets.size(); ++r) {
      if (send_offsets[r] < send_offsets[r - 1] ||
          recv_offsets[r] < recv_offsets[r - 1]) {
        return {ScheduleErrorCode::PrefixNonMonotone,
                static_cast<i64>(r) - 1};
      }
    }
    if (nghost != recv_offsets[recv_offsets.size() - 1]) {
      return {ScheduleErrorCode::GhostCountMismatch, nghost};
    }
    if (static_cast<i64>(send_indices.size()) != total_send()) {
      return {ScheduleErrorCode::IndexCountMismatch,
              static_cast<i64>(send_indices.size())};
    }
    for (std::size_t k = 0; k < send_indices.size(); ++k) {
      if (send_indices[k] < 0 || send_indices[k] >= nlocal_at_build) {
        return {ScheduleErrorCode::IndexOutOfBounds, static_cast<i64>(k)};
      }
    }
    return {};
  }

  /// Boolean convenience over check().
  [[nodiscard]] bool validate() const { return check().ok(); }

  /// Rejects an untrusted/corrupted schedule with a typed ScheduleInvalid
  /// naming the violated invariant; @p who labels the caller in the message.
  void validate_or_throw(const char* who) const {
    const CheckResult r = check();
    if (r.ok()) return;
    std::ostringstream os;
    os << who << ": invalid communication schedule — " << to_string(r.code)
       << " (at " << r.position << ")";
    throw ScheduleInvalid(os.str(), r.code, r.position);
  }
};

}  // namespace chaos::core
