// Communication schedule (PARTI/CHAOS): the inspector's central product. A
// CommSchedule records, for one (loop, distribution) pair, which of my local
// elements other processes need (send side) and how many ghost values arrive
// from each process (receive side). The ghost buffer is laid out by source
// rank ascending, within rank in request order — so the executor's gather is
// a pack / all-to-all / contiguous-unpack with no per-element addressing.
//
// Layout: both sides are CSR. The send side is one flat index array sliced
// by a P+1 prefix (no per-destination heap blocks, so the executor's pack
// loop streams through one contiguous buffer), and the receive side keeps
// its prefix precomputed, making recv_offset() O(1) in the hot path.
#pragma once

#include <algorithm>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "rt/types.hpp"

namespace chaos::core {

/// Typed outcome of CommSchedule validation. Schedules are long-lived and —
/// in the multi-tenant arc — may arrive from a cache or another tenant, so
/// a corrupted or stale plan must map to a named rejection rather than UB
/// in the executor's unchecked pack loop.
enum class ScheduleErrorCode : u8 {
  Ok = 0,
  PrefixShapeMismatch,  ///< send/recv prefixes disagree in length (P-consistency)
  PrefixNotZeroBased,   ///< a prefix does not start at 0
  PrefixNonMonotone,    ///< an offset decreases (negative segment count)
  GhostCountMismatch,   ///< cached nghost != receive prefix total
  IndexCountMismatch,   ///< send_indices length != send prefix total
  IndexOutOfBounds,     ///< a send index falls outside [0, nlocal_at_build)
  SpliceMismatch,       ///< a repair script disagrees with the live send side
};

[[nodiscard]] constexpr const char* to_string(ScheduleErrorCode code) {
  switch (code) {
    case ScheduleErrorCode::Ok: return "ok";
    case ScheduleErrorCode::PrefixShapeMismatch:
      return "send/recv offset prefixes disagree in length";
    case ScheduleErrorCode::PrefixNotZeroBased:
      return "offset prefix does not start at zero";
    case ScheduleErrorCode::PrefixNonMonotone:
      return "offset prefix is not monotone (negative segment count)";
    case ScheduleErrorCode::GhostCountMismatch:
      return "cached nghost does not match the receive prefix";
    case ScheduleErrorCode::IndexCountMismatch:
      return "send_indices length does not match the send prefix";
    case ScheduleErrorCode::IndexOutOfBounds:
      return "send index outside the local segment at build time";
    case ScheduleErrorCode::SpliceMismatch:
      return "repair splice script does not match the live send side";
  }
  return "unknown schedule error";
}

/// Thrown by CommSchedule::validate_or_throw on the first violated
/// invariant; carries the typed code plus where it tripped.
class ScheduleInvalid : public ChaosError {
 public:
  ScheduleInvalid(const std::string& what, ScheduleErrorCode code,
                  i64 position)
      : ChaosError(what), code(code), position(position) {}

  ScheduleErrorCode code;
  i64 position;  ///< offending rank for prefix errors, flat index otherwise
};

/// Generation/validity stamp carried by every inspector plan
/// (EdgeLoopPlan / SingleStatementPlan / lang LoopPlan). A build that
/// throws partway — a fault mid-exchange, a timeout — leaves the plan NOT
/// ready: begin_build() clears the bit before any schedule state is
/// touched and only a completed build sets it back. Executors refuse a
/// not-ready plan with a typed error, so a recovered attempt is forced to
/// re-inspect instead of sweeping through a half-built CommSchedule
/// (DESIGN.md §11). The generation counter exists for diagnostics and
/// cache-coherency tests: it counts build ATTEMPTS, not successes.
struct PlanBuildState {
  u64 generation = 0;
  bool complete = false;

  void begin_build() {
    complete = false;
    ++generation;
  }
  void mark_built() { complete = true; }
  [[nodiscard]] bool ready() const { return complete; }
};

struct CommSchedule {
  /// Flat CSR values: my local element indices peers asked for, grouped by
  /// destination rank ascending. Segment [send_offsets[d], send_offsets[d+1])
  /// is packed for rank d, in the order rank d requested.
  std::vector<i64> send_indices;
  /// P+1 prefix slicing send_indices by destination rank.
  std::vector<i64> send_offsets;
  /// P+1 prefix over ghost slots by source rank: source s fills ghost slots
  /// [recv_offsets[s], recv_offsets[s+1]).
  std::vector<i64> recv_offsets;
  /// Total ghost slots (== recv_offsets.back()).
  i64 nghost = 0;
  /// Local segment size when the schedule was built (staleness guard).
  i64 nlocal_at_build = 0;

  [[nodiscard]] int nprocs() const {
    return static_cast<int>(send_offsets.empty() ? 0 : send_offsets.size() - 1);
  }

  /// O(1): first ghost slot filled by @p src (was an O(P) prefix sum per
  /// call in the nested-vector layout).
  [[nodiscard]] i64 recv_offset(int src) const {
    return recv_offsets[static_cast<std::size_t>(src)];
  }
  [[nodiscard]] i64 recv_count(int src) const {
    return recv_offsets[static_cast<std::size_t>(src) + 1] -
           recv_offsets[static_cast<std::size_t>(src)];
  }
  [[nodiscard]] i64 send_count(int dest) const {
    return send_offsets[static_cast<std::size_t>(dest) + 1] -
           send_offsets[static_cast<std::size_t>(dest)];
  }
  /// The local indices packed for @p dest, as a view into the flat array.
  [[nodiscard]] std::span<const i64> send_to(int dest) const {
    return std::span<const i64>(send_indices)
        .subspan(static_cast<std::size_t>(
                     send_offsets[static_cast<std::size_t>(dest)]),
                 static_cast<std::size_t>(send_count(dest)));
  }
  /// Total elements this process packs per gather (all destinations).
  [[nodiscard]] i64 total_send() const {
    return send_offsets.empty() ? 0 : send_offsets[send_offsets.size() - 1];
  }

  /// Number of point-to-point messages a gather through this schedule costs
  /// this process (sends plus receives, self excluded by construction).
  /// One O(P) scan of the cached prefixes.
  [[nodiscard]] i64 messages(int my_rank) const {
    i64 m = 0;
    for (int r = 0; r < nprocs(); ++r) {
      if (r == my_rank) continue;
      if (send_count(r) > 0) ++m;
      if (recv_count(r) > 0) ++m;
    }
    return m;
  }

  /// Words moved off-process by one gather (send direction).
  [[nodiscard]] i64 send_volume(int my_rank) const {
    i64 v = total_send();
    if (my_rank >= 0 && my_rank < nprocs()) v -= send_count(my_rank);
    return v;
  }

  /// Outcome of check(): the first violated invariant plus where.
  struct CheckResult {
    ScheduleErrorCode code = ScheduleErrorCode::Ok;
    i64 position = -1;  ///< rank for prefix errors, flat index otherwise
    [[nodiscard]] bool ok() const { return code == ScheduleErrorCode::Ok; }
  };

  /// Full structural consistency check, always compiled in: offset
  /// monotonicity, zero-based prefixes, P-consistency of the two prefixes,
  /// cached nghost vs the receive prefix, and every send index inside the
  /// local segment at build time. O(P + total_send) — cheap enough to run
  /// once per plan build or on any schedule that crosses a trust boundary
  /// (cache hit, deserialized plan, another tenant); executors keep the
  /// per-sweep call debug-only so the hot path stays check-free in Release.
  [[nodiscard]] CheckResult check() const {
    if (send_offsets.size() != recv_offsets.size()) {
      return {ScheduleErrorCode::PrefixShapeMismatch, 0};
    }
    if (send_offsets.empty()) {
      if (nghost != 0) return {ScheduleErrorCode::GhostCountMismatch, 0};
      if (!send_indices.empty()) {
        return {ScheduleErrorCode::IndexCountMismatch, 0};
      }
      return {};
    }
    if (send_offsets[0] != 0 || recv_offsets[0] != 0) {
      return {ScheduleErrorCode::PrefixNotZeroBased, 0};
    }
    for (std::size_t r = 1; r < send_offsets.size(); ++r) {
      if (send_offsets[r] < send_offsets[r - 1] ||
          recv_offsets[r] < recv_offsets[r - 1]) {
        return {ScheduleErrorCode::PrefixNonMonotone,
                static_cast<i64>(r) - 1};
      }
    }
    if (nghost != recv_offsets[recv_offsets.size() - 1]) {
      return {ScheduleErrorCode::GhostCountMismatch, nghost};
    }
    if (static_cast<i64>(send_indices.size()) != total_send()) {
      return {ScheduleErrorCode::IndexCountMismatch,
              static_cast<i64>(send_indices.size())};
    }
    for (std::size_t k = 0; k < send_indices.size(); ++k) {
      if (send_indices[k] < 0 || send_indices[k] >= nlocal_at_build) {
        return {ScheduleErrorCode::IndexOutOfBounds, static_cast<i64>(k)};
      }
    }
    return {};
  }

  /// In-place send-side splice (incremental schedule repair, DESIGN.md §14).
  /// @p script_payload / @p script_offsets is one repair script per
  /// destination rank in flat CSR form — exactly what the repairing
  /// requester shipped through exchange_csr. Per destination the script is
  ///   [ntomb, tombstoned locals... , nins, (position, local) pairs...]
  /// where tombstones name departed ghost elements by VALUE (a request list
  /// holds distinct locals, so values identify entries) and insertions name
  /// the final position of each novel element in the destination's NEW
  /// request order. Because ghost order is per-owner canonical (sorted by
  /// global), surviving entries keep their relative order and the spliced
  /// segment reproduces a full rebuild bit for bit. The rebuild stages
  /// through @p scratch_indices / @p scratch_tombs (caller-owned, grow-only:
  /// warm repairs allocate nothing) and swaps into place; offsets are
  /// recomputed from the per-segment length deltas. Throws ScheduleInvalid
  /// (SpliceMismatch) if a script disagrees with the live send side; call
  /// validate_or_throw afterwards for the full structural re-check.
  void splice_send(std::span<const i64> script_payload,
                   std::span<const i64> script_offsets,
                   std::vector<i64>& scratch_indices,
                   std::vector<i64>& scratch_tombs) {
    const std::size_t np = send_offsets.empty() ? 0 : send_offsets.size() - 1;
    if (script_offsets.size() != np + 1) {
      throw ScheduleInvalid(
          "splice_send: script prefix does not match the schedule width",
          ScheduleErrorCode::SpliceMismatch, 0);
    }
    scratch_indices.clear();
    i64 old_begin = 0;  // offsets are rewritten in place; track the old ones
    for (std::size_t d = 0; d < np; ++d) {
      const i64* s = script_payload.data() + script_offsets[d];
      const i64* const s_end = script_payload.data() + script_offsets[d + 1];
      const i64 old_end = send_offsets[d + 1];
      const std::span<const i64> old_seg =
          std::span<const i64>(send_indices)
              .subspan(static_cast<std::size_t>(old_begin),
                       static_cast<std::size_t>(old_end - old_begin));
      old_begin = old_end;
      if (s == s_end) {  // untouched destination: segment copies through
        scratch_indices.insert(scratch_indices.end(), old_seg.begin(),
                               old_seg.end());
        send_offsets[d + 1] = static_cast<i64>(scratch_indices.size());
        continue;
      }
      const i64 ntomb = *s++;
      if (s + ntomb > s_end) {
        throw ScheduleInvalid("splice_send: truncated tombstone list",
                              ScheduleErrorCode::SpliceMismatch,
                              static_cast<i64>(d));
      }
      scratch_tombs.assign(s, s + ntomb);
      std::sort(scratch_tombs.begin(), scratch_tombs.end());
      s += ntomb;
      const i64 nins = *s++;
      if (s + 2 * nins != s_end) {
        throw ScheduleInvalid("splice_send: truncated insertion list",
                              ScheduleErrorCode::SpliceMismatch,
                              static_cast<i64>(d));
      }
      const i64 new_len = static_cast<i64>(old_seg.size()) - ntomb + nins;
      const std::size_t base = scratch_indices.size();
      scratch_indices.resize(base + static_cast<std::size_t>(new_len));
      // One merge pass over final positions: take the next insertion when
      // its position matches, else the next surviving old entry.
      std::size_t old_k = 0;
      i64 ins_k = 0, removed = 0;
      for (i64 pos = 0; pos < new_len; ++pos) {
        if (ins_k < nins && s[2 * ins_k] == pos) {
          scratch_indices[base + static_cast<std::size_t>(pos)] =
              s[2 * ins_k + 1];
          ++ins_k;
          continue;
        }
        while (old_k < old_seg.size() &&
               std::binary_search(scratch_tombs.begin(), scratch_tombs.end(),
                                  old_seg[old_k])) {
          ++old_k;
          ++removed;
        }
        if (old_k >= old_seg.size()) {
          throw ScheduleInvalid(
              "splice_send: script consumed the old segment early",
              ScheduleErrorCode::SpliceMismatch, static_cast<i64>(d));
        }
        scratch_indices[base + static_cast<std::size_t>(pos)] =
            old_seg[old_k++];
      }
      while (old_k < old_seg.size() &&
             std::binary_search(scratch_tombs.begin(), scratch_tombs.end(),
                                old_seg[old_k])) {
        ++old_k;
        ++removed;
      }
      if (ins_k != nins || removed != ntomb || old_k != old_seg.size()) {
        throw ScheduleInvalid(
            "splice_send: script and segment disagree on the edit set",
            ScheduleErrorCode::SpliceMismatch, static_cast<i64>(d));
      }
      send_offsets[d + 1] = static_cast<i64>(scratch_indices.size());
    }
    send_indices.swap(scratch_indices);
  }

  /// Boolean convenience over check().
  [[nodiscard]] bool validate() const { return check().ok(); }

  /// Rejects an untrusted/corrupted schedule with a typed ScheduleInvalid
  /// naming the violated invariant; @p who labels the caller in the message.
  void validate_or_throw(const char* who) const {
    const CheckResult r = check();
    if (r.ok()) return;
    std::ostringstream os;
    os << who << ": invalid communication schedule — " << to_string(r.code)
       << " (at " << r.position << ")";
    throw ScheduleInvalid(os.str(), r.code, r.position);
  }
};

}  // namespace chaos::core
