// Loop iteration partitioning (Section 4.3): after the data arrays have been
// (re)distributed, each loop iteration is assigned to one process under the
// "almost owner computes" rule — by default the process that owns the
// largest number of the iteration's distributed-array references (ties go to
// the lowest rank). The alternative classic owner-computes rule (execute on
// the owner of the first left-hand side) is provided for the ablation bench.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "dist/distribution.hpp"
#include "dist/remap.hpp"
#include "rt/machine.hpp"

namespace chaos::core {

enum class IterRule : u8 {
  MostLocalReferences,  ///< paper's default ("almost owner computes")
  OwnerComputes,        ///< owner of the first reference batch's element
};

struct IterationPartition {
  /// Irregular distribution of the iteration space (who runs which
  /// iteration).
  std::shared_ptr<const dist::Distribution> iter_dist;
  /// Remap plan from the initial iteration layout to iter_dist; apply it to
  /// every iteration-aligned array (indirection arrays first of all).
  dist::RemapPlan remap;
  /// Iterations that changed process.
  i64 moved_iterations = 0;
};

/// Collective. @p iter_space is the current (usually BLOCK) distribution of
/// the iteration index set; @p ref_batches holds, per indirection array, this
/// process's slice of global data-array indices (aligned with iter_space,
/// one value per local iteration); @p data_dist is the distribution of the
/// data arrays those indices point into.
[[nodiscard]] IterationPartition partition_iterations(
    rt::Process& p, const dist::Distribution& iter_space,
    const dist::Distribution& data_dist,
    std::span<const std::span<const i64>> ref_batches,
    IterRule rule = IterRule::MostLocalReferences, i64 page_size = 4096);

}  // namespace chaos::core
