#include "core/reuse.hpp"

namespace chaos::core {

bool reuse_valid(const ReuseRegistry& reg, const InspectorRecord& rec,
                 std::span<const dist::Dad> cur_data_dads,
                 std::span<const dist::Dad> cur_ind_dads) {
  // Condition 1: DAD(x_i) == L.DAD(x_i) for every data array.
  if (cur_data_dads.size() != rec.data_dads.size()) return false;
  for (std::size_t i = 0; i < cur_data_dads.size(); ++i) {
    if (!(cur_data_dads[i] == rec.data_dads[i])) return false;
  }
  // Condition 2: DAD(ind_j) == L.DAD(ind_j) for every indirection array.
  if (cur_ind_dads.size() != rec.ind_dads.size()) return false;
  for (std::size_t j = 0; j < cur_ind_dads.size(); ++j) {
    if (!(cur_ind_dads[j] == rec.ind_dads[j])) return false;
  }
  // Condition 3: last_mod(DAD(ind_j)) == L.last_mod(L.DAD(ind_j)).
  for (std::size_t j = 0; j < cur_ind_dads.size(); ++j) {
    if (reg.last_mod(cur_ind_dads[j]) != rec.ind_last_mod[j]) return false;
  }
  return true;
}

bool dads_match(const InspectorRecord& rec,
                std::span<const dist::Dad> cur_data_dads,
                std::span<const dist::Dad> cur_ind_dads) {
  if (cur_data_dads.size() != rec.data_dads.size()) return false;
  for (std::size_t i = 0; i < cur_data_dads.size(); ++i) {
    if (!(cur_data_dads[i] == rec.data_dads[i])) return false;
  }
  if (cur_ind_dads.size() != rec.ind_dads.size()) return false;
  for (std::size_t j = 0; j < cur_ind_dads.size(); ++j) {
    if (!(cur_ind_dads[j] == rec.ind_dads[j])) return false;
  }
  return true;
}

}  // namespace chaos::core
