// Communication-schedule reuse (Section 3 of the paper — the first of its
// two contributions). The compiler-generated code maintains:
//
//   nmod      — a global timestamp: the cumulative number of code blocks
//               (loops, intrinsics, statements) that modified ANY
//               distributed array;
//   last_mod  — a map DAD -> nmod value at the DAD's latest modification
//               (remapping an array changes its DAD and bumps nmod).
//
// An inspector for loop L stores the DADs of L's data arrays, the DADs of
// its indirection arrays, and last_mod of the indirection DADs. Before a
// subsequent execution of L the saved results are reused iff
//   (1) every data-array DAD is unchanged,
//   (2) every indirection-array DAD is unchanged, and
//   (3) no indirection array may have been modified since (last_mod equal).
// The method is conservative: a false invalidation costs a redundant
// inspector; stale reuse would be a correctness bug and must never happen.
#pragma once

#include <memory>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "dist/dad.hpp"

namespace chaos::core {

/// Per-process (SPMD-replicated) modification record. All processes execute
/// the same statement sequence, so their registries stay identical without
/// communication — exactly how the compiler-generated code works.
class ReuseRegistry {
 public:
  /// Called once per loop / array intrinsic / statement that writes to a
  /// distributed array with descriptor @p dad.
  void note_write(const dist::Dad& dad) { last_mod_[dad.key()] = ++nmod_; }

  /// Called when an array is remapped: the paper increments nmod and stamps
  /// the *new* DAD (the old DAD can never be referenced again).
  void note_remap(const dist::Dad& new_dad) { note_write(new_dad); }

  /// Timestamp of the last possible modification of arrays with @p dad
  /// (0 = never modified since creation).
  [[nodiscard]] u64 last_mod(const dist::Dad& dad) const {
    const auto it = last_mod_.find(dad.key());
    return it == last_mod_.end() ? 0 : it->second;
  }

  [[nodiscard]] u64 nmod() const { return nmod_; }
  void clear() {
    nmod_ = 0;
    last_mod_.clear();
  }

 private:
  u64 nmod_ = 0;
  std::unordered_map<u64, u64> last_mod_;
};

/// What loop L's inspector saved: L.DAD(x_i), L.DAD(ind_j),
/// L.last_mod(DAD(ind_j)) in the paper's notation.
struct InspectorRecord {
  std::vector<dist::Dad> data_dads;
  std::vector<dist::Dad> ind_dads;
  std::vector<u64> ind_last_mod;
};

/// The three reuse conditions from Section 3.
[[nodiscard]] bool reuse_valid(const ReuseRegistry& reg,
                               const InspectorRecord& rec,
                               std::span<const dist::Dad> cur_data_dads,
                               std::span<const dist::Dad> cur_ind_dads);

/// Conditions 1 and 2 only (DAD spans unchanged, last_mod ignored): the
/// repair-eligibility predicate. A record that passes this but fails
/// reuse_valid is stale ONLY because an indirection array's values changed
/// in place — exactly the case an incremental splice (DESIGN.md §14) can
/// fix. A failed DAD compare (REDISTRIBUTE, remap, shrink) is never
/// repairable and must take the full-miss path.
[[nodiscard]] bool dads_match(const InspectorRecord& rec,
                              std::span<const dist::Dad> cur_data_dads,
                              std::span<const dist::Dad> cur_ind_dads);

/// Cache of inspector products keyed by loop id. The product type is opaque
/// (schedules, iteration partitions, localized references — whatever the
/// loop's inspector builds); the cache only owns the guard logic.
class InspectorCache {
 public:
  struct Stats {
    i64 hits = 0;
    i64 misses = 0;
    /// Third outcome beside hit/miss (DESIGN.md §14): stale slots whose
    /// DADs still matched and were spliced in place, and repair attempts
    /// that fell back to a full rebuild (threshold vote or repair-off).
    i64 repairs = 0;
    i64 repair_fallbacks = 0;
  };

  /// Returns the cached product for @p loop_id if the Section 3 conditions
  /// hold, otherwise runs @p build (which must return
  /// std::shared_ptr<Product>) and records the new guard state. Never
  /// attempts repair and never counts a repair fallback: a stale slot is an
  /// ordinary miss, exactly the pre-§14 behavior.
  template <typename Product, typename BuildFn>
  std::shared_ptr<Product> get_or_build(
      u64 loop_id, const ReuseRegistry& reg,
      std::vector<dist::Dad> cur_data_dads,
      std::vector<dist::Dad> cur_ind_dads, BuildFn&& build) {
    return get_or_build_impl<Product>(
        /*offer_repair=*/false, loop_id, reg, std::move(cur_data_dads),
        std::move(cur_ind_dads), std::forward<BuildFn>(build),
        [](const std::shared_ptr<Product>&) { return false; });
  }

  /// Repair-aware overload: when the slot fails ONLY the last_mod stamp
  /// check (both DAD spans equal — an indirection array's values changed in
  /// place, never a REDISTRIBUTE), @p repair is offered the cached product
  /// first. It returns true to accept the splice — the guard stamps are
  /// refreshed and the SAME product is returned (a third outcome beside
  /// hit/miss) — or false to decline, which falls through to the ordinary
  /// miss path. A DAD mismatch never reaches @p repair: a fresh incarnation
  /// always rebuilds.
  template <typename Product, typename BuildFn, typename RepairFn>
  std::shared_ptr<Product> get_or_build(
      u64 loop_id, const ReuseRegistry& reg,
      std::vector<dist::Dad> cur_data_dads,
      std::vector<dist::Dad> cur_ind_dads, BuildFn&& build,
      RepairFn&& repair) {
    return get_or_build_impl<Product>(
        /*offer_repair=*/true, loop_id, reg, std::move(cur_data_dads),
        std::move(cur_ind_dads), std::forward<BuildFn>(build),
        std::forward<RepairFn>(repair));
  }

  /// Drops one loop's cached product (or everything).
  void invalidate(u64 loop_id) { slots_.erase(loop_id); }
  void clear() { slots_.clear(); }

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] std::size_t size() const { return slots_.size(); }

 private:
  struct Slot {
    InspectorRecord record;
    std::shared_ptr<void> product;
  };

  template <typename Product, typename BuildFn, typename RepairFn>
  std::shared_ptr<Product> get_or_build_impl(
      bool offer_repair, u64 loop_id, const ReuseRegistry& reg,
      std::vector<dist::Dad> cur_data_dads,
      std::vector<dist::Dad> cur_ind_dads, BuildFn&& build,
      RepairFn&& repair) {
    auto it = slots_.find(loop_id);
    if (it != slots_.end()) {
      if (reuse_valid(reg, it->second.record, cur_data_dads, cur_ind_dads)) {
        ++stats_.hits;
        return std::static_pointer_cast<Product>(it->second.product);
      }
      if (offer_repair &&
          dads_match(it->second.record, cur_data_dads, cur_ind_dads)) {
        auto cached = std::static_pointer_cast<Product>(it->second.product);
        if (repair(cached)) {
          ++stats_.repairs;
          refresh_stamps(it->second.record, reg);
          return cached;
        }
        ++stats_.repair_fallbacks;
      }
    }
    ++stats_.misses;
    std::shared_ptr<Product> product = build();
    Slot slot;
    slot.record.data_dads = std::move(cur_data_dads);
    slot.record.ind_dads = std::move(cur_ind_dads);
    slot.record.ind_last_mod.reserve(slot.record.ind_dads.size());
    for (const auto& dad : slot.record.ind_dads) {
      slot.record.ind_last_mod.push_back(reg.last_mod(dad));
    }
    slot.product = product;
    slots_[loop_id] = std::move(slot);
    return product;
  }

  /// Re-stamps a repaired slot's guard: the splice consumed the indirection
  /// arrays' CURRENT values, so the record's last_mod must advance to now or
  /// the very next probe would re-repair an already-current plan.
  static void refresh_stamps(InspectorRecord& rec, const ReuseRegistry& reg) {
    rec.ind_last_mod.clear();
    for (const auto& dad : rec.ind_dads) {
      rec.ind_last_mod.push_back(reg.last_mod(dad));
    }
  }

  std::unordered_map<u64, Slot> slots_;
  Stats stats_;
};

/// Program-level plan cache: the InspectorCache generalized for the bytecode
/// VM. Where InspectorCache holds one slot per loop id, PlanCache keys each
/// slot by (statement id, DAD incarnation set), so plans built against
/// different incarnation sets of the same statement coexist instead of
/// evicting each other — a program alternating between two distributions
/// pays two inspector runs total, not one per switch. The Section 3 guard
/// still applies on every probe: identical DADs hash to the same slot, and
/// reuse_valid re-checks conditions 1–3 (last_mod of the indirection arrays
/// cannot be part of the key — a write leaves the DAD, and thus the key,
/// unchanged).
///
/// The probe path is allocation-free: span-based guards, no vector copies.
/// Only store() (the cache-miss path, which just ran a full inspector)
/// allocates.
class PlanCache {
 public:
  using Stats = InspectorCache::Stats;

  /// Composite key: statement id mixed with every guard DAD's key, in guard
  /// order. Full-avalanche mixing per component keeps the composite
  /// order-sensitive and uniformly spread.
  [[nodiscard]] static u64 key_of(u64 stmt_id,
                                  std::span<const dist::Dad> data_dads,
                                  std::span<const dist::Dad> ind_dads) {
    u64 h = dist::detail::mix64(stmt_id ^ 0x7c15bf58476d1ce4ull);
    for (const auto& d : data_dads) h = dist::detail::mix64(h ^ d.key());
    for (const auto& d : ind_dads) h = dist::detail::mix64(h ^ ~d.key());
    return h;
  }

  /// CHECK_INCARNATION: returns the cached plan for @p stmt_id under the
  /// current DAD incarnation set iff the Section 3 conditions hold, else
  /// null. Counts one hit or one miss (a miss is expected to be followed by
  /// store() once the plan is rebuilt, mirroring InspectorCache's
  /// get_or_build accounting).
  [[nodiscard]] std::shared_ptr<void> probe(
      u64 stmt_id, const ReuseRegistry& reg,
      std::span<const dist::Dad> data_dads,
      std::span<const dist::Dad> ind_dads) {
    const auto it = slots_.find(key_of(stmt_id, data_dads, ind_dads));
    if (it != slots_.end() &&
        reuse_valid(reg, it->second.record, data_dads, ind_dads)) {
      ++stats_.hits;
      return it->second.product;
    }
    ++stats_.misses;
    return nullptr;
  }

  /// Three-way probe outcome (DESIGN.md §14): Hit and Miss mirror probe();
  /// RepairCandidate means the slot exists, the DAD incarnation sets still
  /// match, and only the last_mod stamp is stale — the VM's CHECK_INCARNATION
  /// may attempt an in-place splice of the cached plan before paying a full
  /// re-inspection.
  enum class ProbeOutcome : u8 { Miss = 0, Hit, RepairCandidate };
  struct ProbeResult {
    ProbeOutcome outcome = ProbeOutcome::Miss;
    std::shared_ptr<void> product;  ///< set for Hit AND RepairCandidate
  };

  /// probe() extended with the repair candidacy test. A RepairCandidate is
  /// NOT yet counted — the caller resolves it with note_repaired() (counts a
  /// repair, refreshes the slot's stamps) or note_repair_fallback() (counts
  /// a fallback plus the miss its full rebuild implies, followed by the
  /// usual store()). Callers that never repair should keep using probe(),
  /// where a stale-stamp slot is an ordinary miss.
  [[nodiscard]] ProbeResult probe_ex(u64 stmt_id, const ReuseRegistry& reg,
                                     std::span<const dist::Dad> data_dads,
                                     std::span<const dist::Dad> ind_dads) {
    const auto it = slots_.find(key_of(stmt_id, data_dads, ind_dads));
    if (it == slots_.end()) {
      ++stats_.misses;
      return {};
    }
    if (reuse_valid(reg, it->second.record, data_dads, ind_dads)) {
      ++stats_.hits;
      return {ProbeOutcome::Hit, it->second.product};
    }
    if (dads_match(it->second.record, data_dads, ind_dads)) {
      return {ProbeOutcome::RepairCandidate, it->second.product};
    }
    ++stats_.misses;
    return {};
  }

  /// Resolves a RepairCandidate whose splice succeeded: counts the repair
  /// and advances the slot's guard stamps to the indirection arrays'
  /// current last_mod (the splice consumed their current values).
  void note_repaired(u64 stmt_id, const ReuseRegistry& reg,
                     std::span<const dist::Dad> data_dads,
                     std::span<const dist::Dad> ind_dads) {
    ++stats_.repairs;
    const auto it = slots_.find(key_of(stmt_id, data_dads, ind_dads));
    if (it == slots_.end()) return;
    it->second.record.ind_last_mod.clear();
    for (const auto& dad : it->second.record.ind_dads) {
      it->second.record.ind_last_mod.push_back(reg.last_mod(dad));
    }
  }

  /// Resolves a RepairCandidate that declined or failed the vote: one
  /// fallback plus the full-rebuild miss it implies.
  void note_repair_fallback() {
    ++stats_.repair_fallbacks;
    ++stats_.misses;
  }

  /// Records a freshly built plan under the probe-time guard state.
  void store(u64 stmt_id, const ReuseRegistry& reg,
             std::span<const dist::Dad> data_dads,
             std::span<const dist::Dad> ind_dads,
             std::shared_ptr<void> product) {
    Slot slot;
    slot.record.data_dads.assign(data_dads.begin(), data_dads.end());
    slot.record.ind_dads.assign(ind_dads.begin(), ind_dads.end());
    slot.record.ind_last_mod.reserve(ind_dads.size());
    for (const auto& dad : ind_dads) {
      slot.record.ind_last_mod.push_back(reg.last_mod(dad));
    }
    slot.product = std::move(product);
    slots_[key_of(stmt_id, data_dads, ind_dads)] = std::move(slot);
  }

  void clear() { slots_.clear(); }

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] std::size_t size() const { return slots_.size(); }

 private:
  struct Slot {
    InspectorRecord record;
    std::shared_ptr<void> product;
  };
  std::unordered_map<u64, Slot> slots_;
  Stats stats_;
};

}  // namespace chaos::core
