// Executor-phase data movers (Phase E of Figure 2): gather off-process
// copies into the ghost region before a loop, and push ghost contributions
// back to their owners after a reduction loop. All are collective and reuse
// a CommSchedule built once by the inspector — the object whose reuse
// Section 3 of the paper is about.
//
// The executor runs every timestep while the inspector is amortized, so the
// movers here are written to be allocation-free in steady state: each is one
// fused pack → alltoallv_flat → contiguous-unpack pass over the schedule's
// CSR arrays, staging through a reusable ExecutorWorkspace. The ghost buffer
// layout (source rank ascending, request order within rank) is exactly the
// flat exchange's receive layout, so a gather needs no unpack copy at all
// and a scatter needs no pack copy.
#pragma once

#include <algorithm>
#include <limits>
#include <span>
#include <vector>

#include "core/schedule.hpp"
#include "dist/darray.hpp"
#include "rt/collectives.hpp"

namespace chaos::core {

/// Reduction kinds supported in FORALL left-hand sides (paper: "the only
/// loop carried dependencies allowed are left hand side reductions").
enum class ReduceOp : u8 { Add, Max, Min, Replace };

template <typename T>
constexpr T apply_reduce(ReduceOp op, T current, T incoming) {
  switch (op) {
    case ReduceOp::Add: return current + incoming;
    case ReduceOp::Max: return incoming > current ? incoming : current;
    case ReduceOp::Min: return incoming < current ? incoming : current;
    case ReduceOp::Replace: return incoming;
  }
  return current;
}

/// Identity element so ghost accumulators start neutral.
template <typename T>
constexpr T reduce_identity(ReduceOp op) {
  switch (op) {
    case ReduceOp::Add: return T{};
    case ReduceOp::Max: return std::numeric_limits<T>::lowest();
    case ReduceOp::Min: return std::numeric_limits<T>::max();
    case ReduceOp::Replace: return T{};
  }
  return T{};
}

/// Reusable staging memory for the schedule-driven movers. Buffers grow
/// monotonically and are sized once from the schedule, so every call after
/// the first performs zero heap allocations. Plans own one workspace per
/// loop; the span-based compatibility overloads fall back to a private
/// throwaway instance.
template <typename T>
class ExecutorWorkspace {
 public:
  /// Pack staging for a gather / unpack staging for a scatter: one flat
  /// buffer of schedule.total_send() elements.
  [[nodiscard]] std::span<T> staging(const CommSchedule& schedule) {
    const auto need = static_cast<std::size_t>(schedule.total_send());
    if (stage_.size() < need) stage_.resize(need);
    return std::span<T>(stage_.data(), need);
  }

  /// Ghost accumulator scratch (size schedule.nghost), refilled with @p init
  /// on every call; the fill touches memory but allocates nothing once the
  /// buffer has grown to the schedule's size.
  [[nodiscard]] std::span<T> ghost_accumulator(const CommSchedule& schedule,
                                               T init) {
    const auto need = static_cast<std::size_t>(schedule.nghost);
    if (ghost_.size() < need) ghost_.resize(need);
    const std::span<T> out(ghost_.data(), need);
    std::fill(out.begin(), out.end(), init);
    return out;
  }

 private:
  std::vector<T> stage_;
  std::vector<T> ghost_;
};

namespace detail {
inline void check_schedule(const CommSchedule& schedule, i64 nlocal,
                           i64 nghost, const char* who) {
  CHAOS_CHECK(nlocal == schedule.nlocal_at_build,
              std::string(who) + ": schedule is stale (local size changed)");
  CHAOS_CHECK(nghost == schedule.nghost,
              std::string(who) +
                  ": ghost buffer size does not match schedule");
#ifndef NDEBUG
  // Typed full validation (ScheduleInvalid names the violated invariant);
  // per-sweep, so debug builds only — plan-build and trust boundaries run
  // it always via validate_or_throw.
  schedule.validate_or_throw(who);
#endif
}
}  // namespace detail

/// Gather, phase 1 of 3 (PACK): validates the schedule and copies my owned
/// elements that peers requested into the workspace staging buffer, in the
/// schedule's flat CSR send order. Local memory traffic only; the modeled
/// charge for the whole gather is applied by gather_unpack so the fused
/// routine and the split VM ops produce bit-identical clocks.
template <typename T>
std::span<T> gather_pack(const CommSchedule& schedule, std::span<const T> local,
                         std::span<T> ghost, ExecutorWorkspace<T>& ws) {
  detail::check_schedule(schedule, static_cast<i64>(local.size()),
                         static_cast<i64>(ghost.size()), "gather");
  const std::span<T> stage = ws.staging(schedule);
  const i64* idx = schedule.send_indices.data();
  const i64 packed = schedule.total_send();
  for (i64 k = 0; k < packed; ++k) {
    stage[static_cast<std::size_t>(k)] =
        local[static_cast<std::size_t>(idx[k])];
  }
  return stage;
}

/// Gather, phase 2 of 3 (EXCHANGE): the collective flat all-to-all. The
/// receive side lands directly in @p ghost (the ghost layout IS the
/// exchange's receive layout), so there is no unpack copy.
template <typename T>
void gather_exchange(rt::Process& p, const CommSchedule& schedule,
                     std::span<const T> stage, std::span<T> ghost) {
  rt::alltoallv_flat<T>(p, stage, schedule.send_offsets, ghost,
                        schedule.recv_offsets);
}

/// Gather, phase 3 of 3 (UNPACK): charges the gather's modeled memory
/// traffic (pack reads + ghost writes). No data motion — see gather_exchange.
inline void gather_unpack(rt::Process& p, const CommSchedule& schedule) {
  p.clock().charge_ops(schedule.total_send() + schedule.nghost,
                       p.params().mem_us_per_word);
}

/// Collective gather: fills @p ghost (size schedule.nghost) with copies of
/// the off-process elements the inspector recorded, reading my owned
/// elements from @p local for peers that requested them. Fused pack →
/// exchange pass; composed from the three split phases above so the tree-walk
/// interpreter and the bytecode VM's PACK/EXCHANGE/UNPACK ops share one
/// implementation (and therefore one modeled-charge sequence).
template <typename T>
void gather_ghosts(rt::Process& p, const CommSchedule& schedule,
                   std::span<const T> local, std::span<T> ghost,
                   ExecutorWorkspace<T>& ws) {
  const std::span<T> stage = gather_pack<T>(schedule, local, ghost, ws);
  gather_exchange<T>(p, schedule, stage, ghost);
  gather_unpack(p, schedule);
}

/// Span-based compatibility overload: stages through a private workspace
/// (one allocation per call — use the workspace overload in hot loops).
template <typename T>
void gather_ghosts(rt::Process& p, const CommSchedule& schedule,
                   std::span<const T> local, std::span<T> ghost) {
  ExecutorWorkspace<T> ws;
  gather_ghosts<T>(p, schedule, local, ghost, ws);
}

/// Convenience overloads operating on a DistributedArray (resize its ghost
/// region to fit the schedule).
template <typename T>
void gather_ghosts(rt::Process& p, const CommSchedule& schedule,
                   dist::DistributedArray<T>& a, ExecutorWorkspace<T>& ws) {
  if (a.nghost() != schedule.nghost) a.resize_ghost(schedule.nghost);
  gather_ghosts<T>(p, schedule, a.local(), a.ghost(), ws);
}

template <typename T>
void gather_ghosts(rt::Process& p, const CommSchedule& schedule,
                   dist::DistributedArray<T>& a) {
  ExecutorWorkspace<T> ws;
  gather_ghosts<T>(p, schedule, a, ws);
}

/// Collective scatter-reduce: sends each ghost slot's accumulated value back
/// to the owner, which folds it into its local element with @p op. Used
/// after reduction loops that wrote into ghost accumulators. Reverse of
/// gather: the ghost region is already sliced by source rank, so it is the
/// exchange's flat send buffer verbatim; the unpack folds straight from the
/// staging buffer through the flat send-index array.
template <typename T>
void scatter_reduce(rt::Process& p, const CommSchedule& schedule,
                    std::span<T> local, std::span<const T> ghost, ReduceOp op,
                    ExecutorWorkspace<T>& ws) {
  detail::check_schedule(schedule, static_cast<i64>(local.size()),
                         static_cast<i64>(ghost.size()), "scatter");
  const std::span<T> stage = ws.staging(schedule);
  rt::alltoallv_flat<T>(p, ghost, schedule.recv_offsets, stage,
                        schedule.send_offsets);
  const i64* idx = schedule.send_indices.data();
  const i64 applied = schedule.total_send();
  for (i64 k = 0; k < applied; ++k) {
    T& dst = local[static_cast<std::size_t>(idx[k])];
    dst = apply_reduce(op, dst, stage[static_cast<std::size_t>(k)]);
  }
  p.clock().charge_ops(schedule.nghost + applied, p.params().mem_us_per_word);
  p.clock().charge_ops(applied, p.params().flop_us);
}

template <typename T>
void scatter_reduce(rt::Process& p, const CommSchedule& schedule,
                    std::span<T> local, std::span<const T> ghost,
                    ReduceOp op) {
  ExecutorWorkspace<T> ws;
  scatter_reduce<T>(p, schedule, local, ghost, op, ws);
}

template <typename T>
void scatter_reduce(rt::Process& p, const CommSchedule& schedule,
                    dist::DistributedArray<T>& a, ReduceOp op) {
  scatter_reduce<T>(p, schedule, a.local(), a.ghost(), op);
}

/// Collective scatter-assign: writes ghost values into the owners' elements
/// (off-process left-hand sides of dependence-free FORALL assignments, loop
/// L1). The caller guarantees no two iterations write the same element.
template <typename T>
void scatter_assign(rt::Process& p, const CommSchedule& schedule,
                    std::span<T> local, std::span<const T> ghost,
                    ExecutorWorkspace<T>& ws) {
  scatter_reduce<T>(p, schedule, local, ghost, ReduceOp::Replace, ws);
}

template <typename T>
void scatter_assign(rt::Process& p, const CommSchedule& schedule,
                    std::span<T> local, std::span<const T> ghost) {
  ExecutorWorkspace<T> ws;
  scatter_assign<T>(p, schedule, local, ghost, ws);
}

}  // namespace chaos::core
