// Executor-phase data movers (Phase E of Figure 2): gather off-process
// copies into the ghost region before a loop, and push ghost contributions
// back to their owners after a reduction loop. All are collective and reuse
// a CommSchedule built once by the inspector — the object whose reuse
// Section 3 of the paper is about.
#pragma once

#include <limits>
#include <span>

#include "core/schedule.hpp"
#include "dist/darray.hpp"
#include "rt/collectives.hpp"

namespace chaos::core {

/// Reduction kinds supported in FORALL left-hand sides (paper: "the only
/// loop carried dependencies allowed are left hand side reductions").
enum class ReduceOp : u8 { Add, Max, Min, Replace };

template <typename T>
constexpr T apply_reduce(ReduceOp op, T current, T incoming) {
  switch (op) {
    case ReduceOp::Add: return current + incoming;
    case ReduceOp::Max: return incoming > current ? incoming : current;
    case ReduceOp::Min: return incoming < current ? incoming : current;
    case ReduceOp::Replace: return incoming;
  }
  return current;
}

/// Identity element so ghost accumulators start neutral.
template <typename T>
constexpr T reduce_identity(ReduceOp op) {
  switch (op) {
    case ReduceOp::Add: return T{};
    case ReduceOp::Max: return std::numeric_limits<T>::lowest();
    case ReduceOp::Min: return std::numeric_limits<T>::max();
    case ReduceOp::Replace: return T{};
  }
  return T{};
}

/// Collective gather: fills @p ghost (size schedule.nghost) with copies of
/// the off-process elements the inspector recorded, reading my owned
/// elements from @p local for peers that requested them.
template <typename T>
void gather_ghosts(rt::Process& p, const CommSchedule& schedule,
                   std::span<const T> local, std::span<T> ghost) {
  CHAOS_CHECK(static_cast<i64>(local.size()) == schedule.nlocal_at_build,
              "gather: schedule is stale (local size changed)");
  CHAOS_CHECK(static_cast<i64>(ghost.size()) == schedule.nghost,
              "gather: ghost buffer size does not match schedule");
  std::vector<std::vector<T>> outgoing(schedule.send_local.size());
  i64 packed = 0;
  for (std::size_t d = 0; d < schedule.send_local.size(); ++d) {
    outgoing[d].reserve(schedule.send_local[d].size());
    for (i64 l : schedule.send_local[d]) {
      outgoing[d].push_back(local[static_cast<std::size_t>(l)]);
      ++packed;
    }
  }
  auto incoming = rt::alltoallv(p, outgoing);
  i64 slot = 0;
  for (std::size_t s = 0; s < incoming.size(); ++s) {
    CHAOS_CHECK(static_cast<i64>(incoming[s].size()) ==
                    schedule.recv_counts[s],
                "gather: peer sent unexpected element count");
    for (const T& v : incoming[s]) {
      ghost[static_cast<std::size_t>(slot++)] = v;
    }
  }
  p.clock().charge_ops(packed + slot, p.params().mem_us_per_word);
}

/// Convenience overload operating on a DistributedArray (resizes its ghost
/// region to fit the schedule).
template <typename T>
void gather_ghosts(rt::Process& p, const CommSchedule& schedule,
                   dist::DistributedArray<T>& a) {
  if (a.nghost() != schedule.nghost) a.resize_ghost(schedule.nghost);
  gather_ghosts<T>(p, schedule, a.local(), a.ghost());
}

/// Collective scatter-reduce: sends each ghost slot's accumulated value back
/// to the owner, which folds it into its local element with @p op. Used
/// after reduction loops that wrote into ghost accumulators.
template <typename T>
void scatter_reduce(rt::Process& p, const CommSchedule& schedule,
                    std::span<T> local, std::span<const T> ghost,
                    ReduceOp op) {
  CHAOS_CHECK(static_cast<i64>(local.size()) == schedule.nlocal_at_build,
              "scatter: schedule is stale (local size changed)");
  CHAOS_CHECK(static_cast<i64>(ghost.size()) == schedule.nghost,
              "scatter: ghost buffer size does not match schedule");
  // Reverse of gather: my ghost region, sliced by source rank, goes back.
  std::vector<std::vector<T>> outgoing(schedule.recv_counts.size());
  i64 slot = 0;
  for (std::size_t s = 0; s < schedule.recv_counts.size(); ++s) {
    outgoing[s].reserve(static_cast<std::size_t>(schedule.recv_counts[s]));
    for (i64 k = 0; k < schedule.recv_counts[s]; ++k) {
      outgoing[s].push_back(ghost[static_cast<std::size_t>(slot++)]);
    }
  }
  auto incoming = rt::alltoallv(p, outgoing);
  i64 applied = 0;
  for (std::size_t d = 0; d < schedule.send_local.size(); ++d) {
    CHAOS_CHECK(incoming[d].size() == schedule.send_local[d].size(),
                "scatter: peer sent unexpected element count");
    for (std::size_t k = 0; k < incoming[d].size(); ++k) {
      T& dst = local[static_cast<std::size_t>(schedule.send_local[d][k])];
      dst = apply_reduce(op, dst, incoming[d][k]);
      ++applied;
    }
  }
  p.clock().charge_ops(slot + applied, p.params().mem_us_per_word);
  p.clock().charge_ops(applied, p.params().flop_us);
}

template <typename T>
void scatter_reduce(rt::Process& p, const CommSchedule& schedule,
                    dist::DistributedArray<T>& a, ReduceOp op) {
  scatter_reduce<T>(p, schedule, a.local(), a.ghost(), op);
}

/// Collective scatter-assign: writes ghost values into the owners' elements
/// (off-process left-hand sides of dependence-free FORALL assignments, loop
/// L1). The caller guarantees no two iterations write the same element.
template <typename T>
void scatter_assign(rt::Process& p, const CommSchedule& schedule,
                    std::span<T> local, std::span<const T> ghost) {
  scatter_reduce<T>(p, schedule, local, ghost, ReduceOp::Replace);
}

}  // namespace chaos::core
