// GeoCoL (Section 4.1): the standardized GEOmetry / COnnectivity / Load data
// structure the CONSTRUCT directive builds at runtime to link partitioners
// with programs. Assembled collectively from distributed program arrays:
//
//   C$ CONSTRUCT G (N, GEOMETRY(3, xc, yc, zc),
//                      LINK(E, edge1, edge2), LOAD(w))
//
// Geometry and load slices are aligned with the vertex decomposition; edge
// slices may live under any distribution — assembly routes each edge to both
// endpoint owners to build the local CSR rows partitioners consume.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "dist/distribution.hpp"
#include "partition/geocol_view.hpp"
#include "rt/machine.hpp"

namespace chaos::core {

class GeoCol {
 public:
  [[nodiscard]] const std::shared_ptr<const dist::Distribution>& vdist() const {
    return vdist_;
  }
  [[nodiscard]] i64 nverts() const { return vdist_->size(); }
  [[nodiscard]] int dims() const { return dims_; }
  [[nodiscard]] bool has_geometry() const { return dims_ > 0; }
  [[nodiscard]] bool has_connectivity() const { return !xadj_.empty(); }
  [[nodiscard]] bool has_load() const { return !weights_.empty(); }
  [[nodiscard]] i64 nedges_global() const { return nedges_global_; }

  /// The partitioner-facing view (spans into this GeoCoL; keep it alive).
  [[nodiscard]] part::GeoColView view() const;

 private:
  friend class GeoColBuilder;
  std::shared_ptr<const dist::Distribution> vdist_;
  int dims_ = 0;
  std::array<std::vector<f64>, 3> coords_{};
  std::vector<f64> weights_;
  std::vector<i64> xadj_, adjncy_;  // local CSR, global column ids
  i64 nedges_global_ = 0;
};

/// Builder implementing the CONSTRUCT directive. All methods take this
/// process's slices; build() is collective.
class GeoColBuilder {
 public:
  /// @p vdist is the decomposition the vertex-aligned inputs live under
  /// (the paper aligns xc/yc/zc and weights with the data arrays' current —
  /// initially BLOCK — decomposition).
  GeoColBuilder(rt::Process& p, std::shared_ptr<const dist::Distribution> vdist);

  /// GEOMETRY(dims, c0 [, c1 [, c2]]): one coordinate slice per dimension,
  /// aligned with the vertex distribution.
  GeoColBuilder& geometry(std::span<const std::span<const f64>> coord_slices);

  /// LOAD(w): per-vertex computational weight, aligned with the vertices.
  GeoColBuilder& load(std::span<const f64> weights);

  /// LINK(E, u, v): this process's slice of the edge arrays (global vertex
  /// ids). May be called several times; edges accumulate (e.g. one CONSTRUCT
  /// with several LINK clauses).
  GeoColBuilder& link(std::span<const i64> u, std::span<const i64> v);

  /// Collective: assembles CSR connectivity (deduplicated, symmetrized,
  /// self-loops dropped) and freezes the GeoCoL.
  [[nodiscard]] std::shared_ptr<const GeoCol> build();

 private:
  rt::Process* p_;
  std::shared_ptr<GeoCol> g_;
  std::vector<i64> edge_u_, edge_v_;
};

}  // namespace chaos::core
