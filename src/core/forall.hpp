// FORALL loop drivers: the code shapes the paper's compiler generates for
// its two canonical irregular loops (Figure 1), packaged as inspector
// (collective, produces a reusable plan) + executor (collective, runs the
// computation through the plan's schedules).
//
//   EdgeReductionLoop  — loop L2:  FORALL i = 1,N
//                                    REDUCE(ADD, y(e1(i)), f(x(e1),x(e2)))
//                                    REDUCE(ADD, y(e2(i)), g(x(e1),x(e2)))
//   SingleStatementLoop — loop L1: FORALL i = 1,N
//                                    y(ia(i)) = f(x(ib(i)), x(ic(i)))
//
// Plans are shared_ptr products designed to live in an InspectorCache keyed
// by loop id, guarded by the Section 3 reuse conditions.
#pragma once

#include <memory>
#include <span>

#include "core/executor.hpp"
#include "core/inspector.hpp"
#include "core/iter_partition.hpp"
#include "core/plan_options.hpp"
#include "dist/darray.hpp"
#include "dist/remap.hpp"

namespace chaos::core {

/// Inspector product for an L2-style edge reduction sweep.
struct EdgeLoopPlan {
  IterationPartition iters;
  /// Indirection values remapped onto the executing processes (one value per
  /// local iteration of iters.iter_dist).
  std::vector<i64> end1, end2;
  /// Pre-remap indirection slices as of the last successful build or repair
  /// (this rank's segments of the caller's ept1/ept2). The repair path diffs
  /// the caller's NEW slices against these so only changed endpoints ride
  /// the remap — communication ∝ delta, not mesh.
  std::vector<i64> src1, src2;
  /// Localized references of end1/end2 against the data distribution, with
  /// the shared communication schedule.
  LocalizedMany loc;
  /// Repair baseline: the distinct set + entries the schedule was last
  /// built/spliced from (DESIGN.md §14).
  LocalizeSnapshot snap;
  /// Executor staging, sized once from the schedule on the first sweep so
  /// repeated execute() calls through this plan allocate nothing. Mutable:
  /// scratch identity, not part of the plan's logical state.
  mutable ExecutorWorkspace<f64> ws;
  /// Inspector staging (dedup table, distinct arena, request CSR). Callers
  /// that rebuild a plan in place — the no-reuse pipelines re-running the
  /// inspector every sweep — re-localize through warm buffers; attach a
  /// dist::TranslationCache (via PlanOptions) to also skip warm locates.
  InspectorWorkspace iws;
  /// Delta-remap staging (inverse placement map + payload CSR), grow-only.
  dist::RemapDeltaWorkspace remap_ws;
  std::vector<i64> delta_pos, delta_val;  ///< changed-slice diff scratch
  /// Build validity stamp: a failed (thrown-through) inspection leaves the
  /// plan not ready and execute() refuses it (DESIGN.md §11).
  PlanBuildState build;

  [[nodiscard]] i64 my_iterations() const {
    return static_cast<i64>(end1.size());
  }
  [[nodiscard]] const PlanOptions& options() const { return iws.options(); }
};

class EdgeReductionLoop {
 public:
  /// Collective inspector (phases B+D of Figure 2): partitions the loop
  /// iterations against @p data_dist, remaps the indirection slices, and
  /// localizes them. @p opts is the unified plan-construction surface
  /// (cache, locate protocol, repair policy) — SPMD-identical on all ranks.
  [[nodiscard]] static std::shared_ptr<EdgeLoopPlan> inspect(
      rt::Process& p, const dist::Distribution& edge_dist,
      std::span<const i64> ept1, std::span<const i64> ept2,
      const dist::Distribution& data_dist,
      IterRule rule = IterRule::MostLocalReferences,
      const PlanOptions& opts = {});

  /// Collective incremental repair (DESIGN.md §14): updates @p plan in
  /// place for CHANGED indirection values — same edge and data
  /// distributions, same iteration partition, new ept1/ept2 contents. Ships
  /// only changed endpoints through the remap, locates only novel globals,
  /// and splices the schedule; on success the plan is bit-identical to a
  /// full inspect() of the same inputs. Returns false when the machine-wide
  /// vote rejects (delta over threshold, repair off, or hard
  /// ineligibility) — the plan is then left NOT ready and the caller must
  /// run a full inspect(). Every rank calls together.
  [[nodiscard]] static bool repair(rt::Process& p, EdgeLoopPlan& plan,
                                   std::span<const i64> ept1,
                                   std::span<const i64> ept2,
                                   const dist::Distribution& data_dist);

  /// Collective executor (phase E): gathers x ghosts, sweeps local
  /// iterations computing y(e1) += f(x1,x2) and y(e2) += g(x1,x2) into local
  /// or ghost accumulators, then scatter-adds the ghost contributions back.
  /// @p flops_per_edge models the cost of one f+g evaluation pair.
  template <typename F, typename G>
  static void execute(rt::Process& p, const EdgeLoopPlan& plan,
                      dist::DistributedArray<f64>& x,
                      dist::DistributedArray<f64>& y, F&& f, G&& g,
                      f64 flops_per_edge = 30.0) {
    CHAOS_CHECK(plan.build.ready(),
                "EdgeReductionLoop::execute: plan build incomplete — a "
                "failed inspection must be retried before executing");
    gather_ghosts(p, plan.loc.schedule, x, plan.ws);
    const std::span<f64> y_ghost_acc =
        plan.ws.ghost_accumulator(plan.loc.schedule, 0.0);
    const i64 nlocal = plan.loc.schedule.nlocal_at_build;
    auto deposit = [&](i64 ref, f64 v) {
      if (ref < nlocal) {
        y.local()[static_cast<std::size_t>(ref)] += v;
      } else {
        y_ghost_acc[static_cast<std::size_t>(ref - nlocal)] += v;
      }
    };
    const i64 n = plan.my_iterations();
    for (i64 i = 0; i < n; ++i) {
      const i64 r1 = plan.loc.refs[0][static_cast<std::size_t>(i)];
      const i64 r2 = plan.loc.refs[1][static_cast<std::size_t>(i)];
      const f64 x1 = x.localized(r1);
      const f64 x2 = x.localized(r2);
      deposit(r1, f(x1, x2));
      deposit(r2, g(x1, x2));
    }
    p.clock().charge_ops(n, p.params().flop_us * flops_per_edge +
                                p.params().mem_us_per_word * 4);
    scatter_reduce<f64>(p, plan.loc.schedule, y.local(), y_ghost_acc,
                        ReduceOp::Add, plan.ws);
  }
};

/// Inspector product for an L1-style independent assignment loop.
struct SingleStatementPlan {
  IterationPartition iters;
  std::vector<i64> ia, ib, ic;  ///< remapped indirection values
  /// Pre-remap slices at the last build/repair (see EdgeLoopPlan::src1).
  std::vector<i64> src_ia, src_ib, src_ic;
  Localized lhs;                ///< ia against the y distribution
  LocalizedMany rhs;            ///< ib, ic against the x distribution
  /// Repair baselines, one per localized distribution (DESIGN.md §14).
  LocalizeSnapshot lhs_snap;
  LocalizeSnapshot rhs_snap;
  /// Shared executor staging for both schedules (staging() re-slices per
  /// schedule; buffers grow to the larger one once), so repeated execute()
  /// calls allocate nothing.
  mutable ExecutorWorkspace<f64> ws;
  /// Inspector staging — one workspace per localized distribution (rhs
  /// against x, lhs against y), so a translation cache attached to either
  /// stays bound to exactly one DAD even when x and y are distributed
  /// differently.
  InspectorWorkspace iws;
  InspectorWorkspace lhs_iws;
  /// Delta-remap staging shared by the three indirection slices.
  dist::RemapDeltaWorkspace remap_ws;
  std::vector<i64> delta_pos, delta_val;
  /// Build validity stamp (see EdgeLoopPlan::build).
  PlanBuildState build;

  [[nodiscard]] i64 my_iterations() const {
    return static_cast<i64>(ia.size());
  }
  [[nodiscard]] const PlanOptions& options() const { return iws.options(); }
};

class SingleStatementLoop {
 public:
  [[nodiscard]] static std::shared_ptr<SingleStatementPlan> inspect(
      rt::Process& p, const dist::Distribution& iter_dist,
      std::span<const i64> ia, std::span<const i64> ib,
      std::span<const i64> ic, const dist::Distribution& y_dist,
      const dist::Distribution& x_dist,
      IterRule rule = IterRule::MostLocalReferences,
      const PlanOptions& opts = {});

  /// Collective incremental repair of both schedules (lhs against y, rhs
  /// against x) for changed ia/ib/ic values — see EdgeReductionLoop::repair
  /// for the contract. Both splices must win their votes; a fallback on
  /// either leaves the plan NOT ready and returns false.
  [[nodiscard]] static bool repair(rt::Process& p, SingleStatementPlan& plan,
                                   std::span<const i64> ia,
                                   std::span<const i64> ib,
                                   std::span<const i64> ic,
                                   const dist::Distribution& y_dist,
                                   const dist::Distribution& x_dist);

  /// y(ia(i)) = f(x(ib(i)), x(ic(i))). FORALL semantics: distinct iterations
  /// must write distinct elements (checked only by construction).
  template <typename F>
  static void execute(rt::Process& p, const SingleStatementPlan& plan,
                      dist::DistributedArray<f64>& y,
                      dist::DistributedArray<f64>& x, F&& f,
                      f64 flops_per_iter = 10.0) {
    CHAOS_CHECK(plan.build.ready(),
                "SingleStatementLoop::execute: plan build incomplete — a "
                "failed inspection must be retried before executing");
    gather_ghosts(p, plan.rhs.schedule, x, plan.ws);
    const std::span<f64> y_ghost =
        plan.ws.ghost_accumulator(plan.lhs.schedule, 0.0);
    const i64 y_nlocal = plan.lhs.schedule.nlocal_at_build;
    const i64 n = plan.my_iterations();
    for (i64 i = 0; i < n; ++i) {
      const f64 v = f(x.localized(plan.rhs.refs[0][static_cast<std::size_t>(i)]),
                      x.localized(plan.rhs.refs[1][static_cast<std::size_t>(i)]));
      const i64 ref = plan.lhs.refs[static_cast<std::size_t>(i)];
      if (ref < y_nlocal) {
        y.local()[static_cast<std::size_t>(ref)] = v;
      } else {
        y_ghost[static_cast<std::size_t>(ref - y_nlocal)] = v;
      }
    }
    p.clock().charge_ops(n, p.params().flop_us * flops_per_iter +
                                p.params().mem_us_per_word * 3);
    scatter_assign<f64>(p, plan.lhs.schedule, y.local(), y_ghost, plan.ws);
  }
};

}  // namespace chaos::core
