// Shrink-remap recovery from a permanent rank failure (DESIGN.md §13).
//
// When core::Supervisor escalates to chaos::PermanentFault, the driver
// declares the named rank dead, narrows the machine to the survivors
// (Machine::shrink_to), and calls restore_shrunk collectively on the
// shrunken machine. Each survivor re-adopts its own snapshot from the
// rt::CheckpointStore; the dead rank's snapshot is read by its BUDDY
// (partner placement guarantees the buddy survives any single failure), and
// the dead rank's elements are dealt round-robin across the survivors.
// Every restored array is then materialized under a FRESH irregular
// distribution built through Distribution::irregular_from_map and moved
// into place by the remap engine — so new DAD incarnations are minted as a
// side effect, which is exactly what makes the rest of the system correct
// for free: CHECK_INCARNATION guards, TranslationCache bindings, PlanCache
// entries, and Section-3 reuse records keyed to the dead-width
// distributions all invalidate themselves.
//
// Rank renumbering: the machine stays dense — surviving old rank r becomes
// new rank (r < dead ? r : r - 1); ShrinkMap holds the arithmetic.
#pragma once

#include <cstring>
#include <memory>
#include <span>
#include <vector>

#include "dist/darray.hpp"
#include "rt/checkpoint.hpp"

namespace chaos::core {

/// The old-width <-> new-width rank renumbering after one rank dies.
struct ShrinkMap {
  int old_nprocs = 0;
  int dead_rank = -1;

  [[nodiscard]] int new_nprocs() const { return old_nprocs - 1; }
  /// Old logical rank of surviving new rank @p nr.
  [[nodiscard]] int old_of(int nr) const {
    return nr < dead_rank ? nr : nr + 1;
  }
  /// New logical rank of old rank @p old (-1 for the dead rank).
  [[nodiscard]] int new_of(int old) const {
    if (old == dead_rank) return -1;
    return old < dead_rank ? old : old - 1;
  }
  /// Old rank of the buddy holding the dead rank's snapshot.
  [[nodiscard]] int buddy_old_rank() const {
    return rt::CheckpointStore::partner_of(dead_rank, old_nprocs);
  }
};

/// One array restored by restore_shrunk: the fresh survivor-width
/// distribution (a NEW incarnation) plus this rank's owned values in
/// distribution order, still as raw bytes (elem_size-wide each). Metadata
/// is carried through from the snapshot so callers can re-register and
/// re-stamp without any pre-failure state.
struct RestoredSegment {
  u64 array_id = 0;
  u64 old_incarnation = 0;  ///< dead-width incarnation (now invalid)
  u64 nmod = 0;             ///< ReuseRegistry stamp the snapshot carried
  i64 elem_size = 0;
  std::shared_ptr<const dist::Distribution> dist;
  std::vector<std::byte> values;
};

/// Collective on the SHRUNKEN machine (p.nprocs() == map.new_nprocs()).
/// Rebuilds every checkpointed array onto the survivors and returns the
/// segments in capture registration order. The store must hold a committed
/// checkpoint taken at map.old_nprocs width. Restore traffic (ownership
/// announcements, the irregular map build, and the remap exchange) all go
/// through charged collectives, and the adopted payload is tallied into
/// MessageStats::restored_segments / restored_bytes.
[[nodiscard]] std::vector<RestoredSegment> restore_shrunk(
    rt::Process& p, const rt::CheckpointStore& store, const ShrinkMap& map,
    i64 page_size = 4096);

/// Builds the capture-time view of one typed array for
/// rt::CheckpointStore::capture. @p globals must be the array's
/// dist().my_globals() (cached by the caller — capture happens every epoch
/// and my_globals() allocates) and must outlive the capture call.
template <typename T>
[[nodiscard]] rt::SegmentView make_segment_view(
    u64 array_id, const dist::DistributedArray<T>& a,
    std::span<const i64> globals, u64 nmod) {
  rt::SegmentView v;
  v.array_id = array_id;
  v.incarnation = a.dad().incarnation;
  v.nmod = nmod;
  v.global_size = a.dist().size();
  v.elem_size = static_cast<i64>(sizeof(T));
  v.globals = globals;
  v.values = std::as_bytes(a.local());
  return v;
}

/// Materializes a typed DistributedArray from one restored segment
/// (collective — the array constructor is). Bit-exact: the value bytes are
/// adopted verbatim.
template <typename T>
[[nodiscard]] dist::DistributedArray<T> restored_array(
    rt::Process& p, const RestoredSegment& seg) {
  CHAOS_CHECK(seg.elem_size == static_cast<i64>(sizeof(T)),
              "restored_array: element size does not match T");
  dist::DistributedArray<T> a(p, seg.dist);
  std::vector<T> vals(seg.values.size() / sizeof(T));
  if (!vals.empty()) {
    std::memcpy(vals.data(), seg.values.data(), seg.values.size());
  }
  a.assign_local(std::move(vals));
  return a;
}

}  // namespace chaos::core
