#include "core/mapper.hpp"

#include "dist/remap.hpp"

namespace chaos::core {

std::shared_ptr<const dist::Distribution> set_by_partitioning(
    rt::Process& p, const GeoCol& g, const std::string& partitioner,
    i64 page_size) {
  const auto& fn = part::PartitionerRegistry::instance().get(partitioner);
  const std::vector<i64> parts = fn(p, g.view(), p.nprocs());
  CHAOS_CHECK(static_cast<i64>(parts.size()) == g.vdist()->my_local_size(),
              "partitioner returned misaligned part vector");
  return dist::Distribution::irregular_from_map(p, parts, *g.vdist(),
                                                page_size);
}

void Redistributor::apply(rt::Process& p,
                          std::shared_ptr<const dist::Distribution> to) {
  CHAOS_CHECK(to != nullptr, "REDISTRIBUTE: null target distribution");
  // Redistributing onto the distribution the arrays already have is a
  // no-op: nothing moves and no DAD changes, so inspectors stay valid.
  // This is what makes a REDISTRIBUTE inside a time-step loop free when the
  // partitioner's output did not change (Section 3 applied to the mapper).
  bool all_same = true;
  for (auto* a : arrays_f64_) all_same = all_same && a->dad() == to->dad();
  for (auto* a : arrays_i64_) all_same = all_same && a->dad() == to->dad();
  if (all_same && (!arrays_f64_.empty() || !arrays_i64_.empty())) {
    rt::barrier(p);
    return;
  }
  const dist::Distribution* from = nullptr;
  for (auto* a : arrays_f64_) from = from ? from : &a->dist();
  for (auto* a : arrays_i64_) from = from ? from : &a->dist();
  CHAOS_CHECK(from != nullptr, "REDISTRIBUTE: no arrays added");
  for (auto* a : arrays_f64_) {
    CHAOS_CHECK(a->dad() == from->dad(),
                "REDISTRIBUTE: arrays are not aligned to one distribution");
  }
  for (auto* a : arrays_i64_) {
    CHAOS_CHECK(a->dad() == from->dad(),
                "REDISTRIBUTE: arrays are not aligned to one distribution");
  }

  const auto plan = dist::build_remap(p, *from, *to);
  for (auto* a : arrays_f64_) a->redistribute(p, plan, to);
  for (auto* a : arrays_i64_) a->redistribute(p, plan, to);
  if (registry_ != nullptr) registry_->note_remap(to->dad());
}

}  // namespace chaos::core
