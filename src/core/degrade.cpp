#include "core/degrade.hpp"

#include <cstdint>
#include <cstring>

#include "dist/remap.hpp"
#include "rt/collectives.hpp"

namespace chaos::core {

namespace {

using dist::Distribution;
using dist::RemapPlan;
using rt::Process;
using rt::SegmentSnapshot;

/// Scatters (global, owner) claims to the block-owners of a map space and
/// assembles each rank's slice of the paper's map array: map_slice[l] =
/// claimed owner of map_dist.global_of(rank, l). Every global in [0, N)
/// must be claimed exactly once across the machine — the checkpoint
/// partitions the index space, so a hole or a duplicate means snapshots
/// from different epochs were mixed.
std::vector<i64> owner_map_from_claims(
    Process& p, const Distribution& map_dist,
    const std::vector<std::vector<i64>>& claims /* per dest, (g, owner)* */) {
  const auto incoming = rt::alltoallv<i64>(p, claims);
  std::vector<i64> map_slice(
      static_cast<std::size_t>(map_dist.my_local_size()), -1);
  const i64 base = map_dist.my_local_size() > 0
                       ? map_dist.global_of(p.rank(), 0)
                       : 0;
  for (const auto& from : incoming) {
    CHAOS_CHECK(from.size() % 2 == 0,
                "restore_shrunk: malformed ownership claim batch");
    for (std::size_t k = 0; k < from.size(); k += 2) {
      const i64 g = from[k];
      const i64 owner = from[k + 1];
      const i64 l = g - base;
      CHAOS_CHECK(l >= 0 && l < static_cast<i64>(map_slice.size()),
                  "restore_shrunk: ownership claim outside my map slice");
      CHAOS_CHECK(map_slice[static_cast<std::size_t>(l)] == -1,
                  "restore_shrunk: global claimed twice — checkpoint mixes "
                  "epochs");
      map_slice[static_cast<std::size_t>(l)] = owner;
    }
  }
  for (const i64 owner : map_slice) {
    CHAOS_CHECK(owner >= 0,
                "restore_shrunk: unclaimed global — checkpoint incomplete");
  }
  return map_slice;
}

/// apply_remap over raw bytes, dispatched on the element width so f64/i64
/// payloads move as u64 (bit-exact — no float formatting or arithmetic
/// anywhere near the values).
template <typename U>
std::vector<std::byte> remap_bytes_as(Process& p, const RemapPlan& plan,
                                      std::span<const std::byte> src) {
  std::vector<U> typed(src.size() / sizeof(U));
  if (!typed.empty()) std::memcpy(typed.data(), src.data(), src.size());
  const std::vector<U> moved =
      dist::apply_remap<U>(p, plan, std::span<const U>(typed));
  std::vector<std::byte> out(moved.size() * sizeof(U));
  if (!out.empty()) std::memcpy(out.data(), moved.data(), out.size());
  return out;
}

std::vector<std::byte> remap_bytes(Process& p, const RemapPlan& plan,
                                   std::span<const std::byte> src,
                                   i64 elem_size) {
  switch (elem_size) {
    case 1: return remap_bytes_as<std::uint8_t>(p, plan, src);
    case 2: return remap_bytes_as<std::uint16_t>(p, plan, src);
    case 4: return remap_bytes_as<std::uint32_t>(p, plan, src);
    case 8: return remap_bytes_as<std::uint64_t>(p, plan, src);
    default:
      CHAOS_CHECK(false, "restore_shrunk: unsupported element size");
      return {};
  }
}

}  // namespace

std::vector<RestoredSegment> restore_shrunk(Process& p,
                                            const rt::CheckpointStore& store,
                                            const ShrinkMap& map,
                                            i64 page_size) {
  CHAOS_CHECK(map.old_nprocs >= 2, "restore_shrunk: nothing to shrink from");
  CHAOS_CHECK(map.dead_rank >= 0 && map.dead_rank < map.old_nprocs,
              "restore_shrunk: dead rank outside the old width");
  const int new_p = p.nprocs();
  CHAOS_CHECK(new_p == map.new_nprocs(),
              "restore_shrunk: machine is not at the shrunken width");
  CHAOS_CHECK(store.has_committed(),
              "restore_shrunk: no committed checkpoint to restore from");
  CHAOS_CHECK(store.width() == map.old_nprocs,
              "restore_shrunk: checkpoint was taken at a different width");

  const int my_old = map.old_of(p.rank());
  const rt::RankCheckpoint& mine = store.of(my_old);
  // Partner placement guarantees the buddy of the dead rank survives any
  // single failure (it is a different rank for every P >= 2); that survivor
  // holds — and reads locally, no charge — the dead rank's snapshot, then
  // the remap exchange below pays for moving it onto the survivors.
  const bool holder = my_old == map.buddy_old_rank();
  const rt::RankCheckpoint* dead_ck =
      holder ? &store.of(map.dead_rank) : nullptr;
  const std::size_t nseg = mine.segments.size();
  if (holder) {
    CHAOS_CHECK(dead_ck->segments.size() == nseg,
                "restore_shrunk: buddy snapshot has a different segment "
                "count — checkpoint mixes epochs");
  }

  std::vector<RestoredSegment> out(nseg);
  std::vector<char> grouped(nseg, 0);
  i64 adopted_bytes = 0;
  // Arrays aligned to one distribution (same old incarnation) share one
  // staging map, one target map, and one remap plan — the REDISTRIBUTE
  // contract. Groups are visited in first-appearance order, identical on
  // every rank (SPMD registration order), keeping the collectives aligned.
  for (std::size_t lead = 0; lead < nseg; ++lead) {
    if (grouped[lead]) continue;
    const SegmentSnapshot& ref = mine.segments[lead];
    std::vector<std::size_t> group;
    for (std::size_t j = lead; j < nseg; ++j) {
      if (!grouped[j] && mine.segments[j].incarnation == ref.incarnation) {
        grouped[j] = 1;
        group.push_back(j);
      }
    }
    const i64 n = ref.global_size;
    const SegmentSnapshot* dead_ref =
        holder ? &dead_ck->segments[lead] : nullptr;
    if (holder) {
      CHAOS_CHECK(dead_ref->incarnation == ref.incarnation &&
                      dead_ref->global_size == n && dead_ref->nmod == ref.nmod,
                  "restore_shrunk: buddy snapshot disagrees on array "
                  "identity — checkpoint mixes epochs");
    }

    // The map space the ownership claims are scattered over.
    const auto map_dist = Distribution::block(p, n);

    // STAGING distribution = who HOLDS each global right now: survivors
    // hold their own snapshot, the buddy additionally holds the dead
    // rank's. TARGET distribution = where each global SHALL live: survivors
    // keep their own, the dead rank's elements are dealt round-robin across
    // all survivors (balanced, deterministic).
    std::vector<std::vector<i64>> staging_claims(
        static_cast<std::size_t>(new_p));
    std::vector<std::vector<i64>> target_claims(
        static_cast<std::size_t>(new_p));
    auto claim = [&](std::vector<std::vector<i64>>& claims, i64 g,
                     i64 owner) {
      auto& dest =
          claims[static_cast<std::size_t>(map_dist->owner_of(g))];
      dest.push_back(g);
      dest.push_back(owner);
    };
    const i64 me = static_cast<i64>(p.rank());
    for (const i64 g : ref.globals) {
      claim(staging_claims, g, me);
      claim(target_claims, g, me);
    }
    if (holder) {
      i64 k = 0;
      for (const i64 g : dead_ref->globals) {
        claim(staging_claims, g, me);
        claim(target_claims, g, k % new_p);
        ++k;
      }
    }
    const auto staging_map = owner_map_from_claims(p, *map_dist,
                                                   staging_claims);
    const auto staging = Distribution::irregular_from_map(
        p, staging_map, *map_dist, page_size);
    const auto target_map = owner_map_from_claims(p, *map_dist,
                                                  target_claims);
    const auto target = Distribution::irregular_from_map(
        p, target_map, *map_dist, page_size);
    const RemapPlan plan = dist::build_remap(p, *staging, *target);

    // My held values in STAGING order: staging globals are the ascending
    // merge of my own snapshot's globals (already ascending) with the dead
    // rank's (holder only). src_of[l] indexes the concatenated own+dead
    // value arrays.
    const auto staging_globals = staging->my_globals();
    const i64 nown = static_cast<i64>(ref.globals.size());
    const i64 ndead =
        holder ? static_cast<i64>(dead_ref->globals.size()) : 0;
    CHAOS_CHECK(static_cast<i64>(staging_globals.size()) == nown + ndead,
                "restore_shrunk: staging distribution lost elements");
    std::vector<i64> src_of(staging_globals.size());
    {
      i64 i = 0;
      i64 k = 0;
      for (std::size_t l = 0; l < staging_globals.size(); ++l) {
        const bool take_own =
            i < nown && (k >= ndead ||
                         ref.globals[static_cast<std::size_t>(i)] <
                             dead_ref->globals[static_cast<std::size_t>(k)]);
        const i64 g = take_own
                          ? ref.globals[static_cast<std::size_t>(i)]
                          : dead_ref->globals[static_cast<std::size_t>(k)];
        CHAOS_CHECK(g == staging_globals[l],
                    "restore_shrunk: staging order does not match held "
                    "snapshots");
        src_of[l] = take_own ? i++ : nown + k++;
      }
    }

    for (const std::size_t j : group) {
      const SegmentSnapshot& own = mine.segments[j];
      const SegmentSnapshot* dead_seg =
          holder ? &dead_ck->segments[j] : nullptr;
      CHAOS_CHECK(own.global_size == n &&
                      static_cast<i64>(own.globals.size()) == nown,
                  "restore_shrunk: aligned arrays disagree on extent");
      const i64 es = own.elem_size;
      std::vector<std::byte> staged_bytes(
          static_cast<std::size_t>((nown + ndead) * es));
      for (std::size_t l = 0; l < src_of.size(); ++l) {
        const i64 s = src_of[l];
        const std::byte* from =
            s < nown ? own.values.data() + s * es
                     : dead_seg->values.data() + (s - nown) * es;
        std::memcpy(staged_bytes.data() + static_cast<i64>(l) * es, from,
                    static_cast<std::size_t>(es));
      }
      RestoredSegment& r = out[j];
      r.array_id = own.array_id;
      r.old_incarnation = own.incarnation;
      r.nmod = own.nmod;
      r.elem_size = es;
      r.dist = target;
      r.values = remap_bytes(p, plan, staged_bytes, es);
      adopted_bytes += static_cast<i64>(r.values.size());
    }
  }
  p.stats().note_restore(static_cast<i64>(nseg), adopted_bytes);
  return out;
}

}  // namespace chaos::core
