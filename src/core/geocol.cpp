#include "core/geocol.hpp"

#include <algorithm>

#include "core/inspector.hpp"
#include "rt/collectives.hpp"

namespace chaos::core {

part::GeoColView GeoCol::view() const {
  part::GeoColView v;
  v.vdist = vdist_.get();
  v.dims = dims_;
  for (int d = 0; d < dims_; ++d) {
    v.coords[static_cast<std::size_t>(d)] = coords_[static_cast<std::size_t>(d)];
  }
  v.weights = weights_;
  v.xadj = xadj_;
  v.adjncy = adjncy_;
  return v;
}

GeoColBuilder::GeoColBuilder(rt::Process& p,
                             std::shared_ptr<const dist::Distribution> vdist)
    : p_(&p), g_(std::make_shared<GeoCol>()) {
  CHAOS_CHECK(vdist != nullptr, "CONSTRUCT: null vertex distribution");
  g_->vdist_ = std::move(vdist);
}

GeoColBuilder& GeoColBuilder::geometry(
    std::span<const std::span<const f64>> coord_slices) {
  CHAOS_CHECK(!coord_slices.empty() && coord_slices.size() <= 3,
              "GEOMETRY: dims must be 1..3");
  const i64 nlocal = g_->vdist_->my_local_size();
  g_->dims_ = static_cast<int>(coord_slices.size());
  for (std::size_t d = 0; d < coord_slices.size(); ++d) {
    CHAOS_CHECK(static_cast<i64>(coord_slices[d].size()) == nlocal,
                "GEOMETRY: coordinate slice not aligned with the vertex "
                "decomposition");
    g_->coords_[d].assign(coord_slices[d].begin(), coord_slices[d].end());
  }
  return *this;
}

GeoColBuilder& GeoColBuilder::load(std::span<const f64> weights) {
  CHAOS_CHECK(static_cast<i64>(weights.size()) == g_->vdist_->my_local_size(),
              "LOAD: weight slice not aligned with the vertex decomposition");
  g_->weights_.assign(weights.begin(), weights.end());
  return *this;
}

GeoColBuilder& GeoColBuilder::link(std::span<const i64> u,
                                   std::span<const i64> v) {
  CHAOS_CHECK(u.size() == v.size(), "LINK: edge arrays differ in length");
  edge_u_.insert(edge_u_.end(), u.begin(), u.end());
  edge_v_.insert(edge_v_.end(), v.begin(), v.end());
  return *this;
}

std::shared_ptr<const GeoCol> GeoColBuilder::build() {
  rt::Process& p = *p_;
  const i64 nverts = g_->nverts();
  const i64 local_edges = static_cast<i64>(edge_u_.size());
  g_->nedges_global_ = rt::allreduce_sum(p, local_edges);

  if (g_->nedges_global_ > 0) {
    // Route each edge to the owners of both endpoints (vertex distribution
    // is regular in the paper's pipeline — initial BLOCK — so owner lookups
    // are closed form via locate()).
    struct HalfEdge {
      i64 u, v;  // u is the endpoint owned by the receiver
    };
    std::vector<i64> endpoints;
    endpoints.reserve(static_cast<std::size_t>(2 * local_edges));
    for (i64 e = 0; e < local_edges; ++e) {
      CHAOS_CHECK(edge_u_[static_cast<std::size_t>(e)] >= 0 &&
                      edge_u_[static_cast<std::size_t>(e)] < nverts &&
                      edge_v_[static_cast<std::size_t>(e)] >= 0 &&
                      edge_v_[static_cast<std::size_t>(e)] < nverts,
                  "LINK: edge endpoint out of vertex range");
      endpoints.push_back(edge_u_[static_cast<std::size_t>(e)]);
      endpoints.push_back(edge_v_[static_cast<std::size_t>(e)]);
    }
    const auto owners = g_->vdist_->locate(p, endpoints);

    // Route each half-edge to its endpoint's owner: count per destination,
    // prefix, fill one destination-ordered flat buffer, then hand the CSR to
    // the inspector's shared exchange_csr — the same counts + flat-payload
    // exchange that forms communication schedules, so graph assembly and
    // localize stay on one exchange code path.
    const auto np = static_cast<std::size_t>(p.nprocs());
    std::vector<i64> send_offsets(np + 1, 0);
    for (i64 e = 0; e < local_edges; ++e) {
      if (edge_u_[static_cast<std::size_t>(e)] ==
          edge_v_[static_cast<std::size_t>(e)]) {
        continue;  // drop self-loops
      }
      ++send_offsets[static_cast<std::size_t>(
          owners[static_cast<std::size_t>(2 * e)].proc) + 1];
      ++send_offsets[static_cast<std::size_t>(
          owners[static_cast<std::size_t>(2 * e + 1)].proc) + 1];
    }
    for (std::size_t r = 0; r < np; ++r) {
      send_offsets[r + 1] += send_offsets[r];
    }
    std::vector<HalfEdge> send_buf(
        static_cast<std::size_t>(send_offsets[np]));
    std::vector<i64> cursor(send_offsets.begin(), send_offsets.end() - 1);
    for (i64 e = 0; e < local_edges; ++e) {
      const i64 u = edge_u_[static_cast<std::size_t>(e)];
      const i64 v = edge_v_[static_cast<std::size_t>(e)];
      if (u == v) continue;
      const auto ou = static_cast<std::size_t>(
          owners[static_cast<std::size_t>(2 * e)].proc);
      const auto ov = static_cast<std::size_t>(
          owners[static_cast<std::size_t>(2 * e + 1)].proc);
      send_buf[static_cast<std::size_t>(cursor[ou]++)] = HalfEdge{u, v};
      send_buf[static_cast<std::size_t>(cursor[ov]++)] = HalfEdge{v, u};
    }
    std::vector<HalfEdge> incoming;
    std::vector<i64> recv_offsets;
    std::vector<i64> counts_scratch;
    exchange_csr<HalfEdge>(p, send_buf, send_offsets, incoming, recv_offsets,
                           counts_scratch);

    // Build per-vertex neighbor lists (dedup via sort+unique).
    const i64 nlocal = g_->vdist_->my_local_size();
    std::vector<std::pair<i64, i64>> pairs;  // (local vertex, global nbr)
    pairs.reserve(incoming.size());
    for (const auto& he : incoming) {
      // he.u is owned here; find its local index. For regular vdist this
      // is closed form; irregular vertex distributions would need a
      // locate, which the paper's pipeline never requires at this point.
      pairs.emplace_back(g_->vdist_->local_index_of(he.u), he.v);
    }
    std::sort(pairs.begin(), pairs.end());
    pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
    p.clock().charge_ops(static_cast<i64>(pairs.size()) * 2,
                         p.params().mem_us_per_word);

    g_->xadj_.assign(static_cast<std::size_t>(nlocal) + 1, 0);
    g_->adjncy_.resize(pairs.size());
    for (const auto& [l, nbr] : pairs) {
      ++g_->xadj_[static_cast<std::size_t>(l) + 1];
    }
    for (i64 l = 0; l < nlocal; ++l) {
      g_->xadj_[static_cast<std::size_t>(l) + 1] +=
          g_->xadj_[static_cast<std::size_t>(l)];
    }
    for (std::size_t k = 0; k < pairs.size(); ++k) {
      g_->adjncy_[k] = pairs[k].second;
    }
  }

  edge_u_.clear();
  edge_v_.clear();
  return g_;
}

}  // namespace chaos::core
