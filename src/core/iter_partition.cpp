#include "core/iter_partition.hpp"

#include <algorithm>

#include "core/inspector.hpp"
#include "rt/collectives.hpp"

namespace chaos::core {

IterationPartition partition_iterations(
    rt::Process& p, const dist::Distribution& iter_space,
    const dist::Distribution& data_dist,
    std::span<const std::span<const i64>> ref_batches, IterRule rule,
    i64 page_size) {
  const i64 niter = iter_space.my_local_size();
  for (const auto& b : ref_batches) {
    CHAOS_CHECK(static_cast<i64>(b.size()) == niter,
                "partition_iterations: reference batch not aligned with "
                "iteration space");
  }
  const auto nbatches = static_cast<i64>(ref_batches.size());
  CHAOS_CHECK(nbatches >= 1, "partition_iterations: need at least one batch");

  // Owners of every reference: duplicates are collapsed through the
  // inspector's dedup table BEFORE the locate (the same dedup-first move
  // localize makes), so the translation table sees each distinct global
  // once. The collapsed duplicates ride the locate's clock charge as model
  // compensation — the same fused charge a locate over all niter*nbatches
  // references would have paid — and the nested dereference already
  // dedups per home on the wire, so modeled virtual times are unchanged;
  // only the host-side sort/scan work shrinks by the duplicate multiplicity.
  InspectorWorkspace ws;
  const i64 total = niter * nbatches;
  const i64 distinct = detail::dedup_batches(ws, ref_batches);
  std::vector<dist::Entry> entries;
  data_dist.locate_into(p, ws.distinct_globals(), entries, total - distinct);
  const std::span<const i64> ordinals = ws.pos_ordinals();

  // Vote per iteration. Reference k of iteration i for batch b sits at
  // position b*niter + i in batch-major order; its owner is the entry of
  // that position's distinct ordinal.
  std::vector<i64> home(static_cast<std::size_t>(niter), 0);
  std::vector<i32> votes;  // scratch: owner per reference of one iteration
  votes.resize(static_cast<std::size_t>(nbatches));
  for (i64 i = 0; i < niter; ++i) {
    if (rule == IterRule::OwnerComputes) {
      home[static_cast<std::size_t>(i)] =
          entries[static_cast<std::size_t>(ordinals[static_cast<std::size_t>(i)])]
              .proc;
      continue;
    }
    for (i64 b = 0; b < nbatches; ++b) {
      votes[static_cast<std::size_t>(b)] =
          entries[static_cast<std::size_t>(
                      ordinals[static_cast<std::size_t>(b * niter + i)])]
              .proc;
    }
    std::sort(votes.begin(), votes.end());
    // Longest run wins; ties resolve to the smallest rank because the runs
    // are scanned in ascending order with a strict improvement test.
    i32 best_proc = votes[0];
    i64 best_count = 0;
    i64 run = 0;
    for (std::size_t k = 0; k < votes.size(); ++k) {
      run = (k > 0 && votes[k] == votes[k - 1]) ? run + 1 : 1;
      if (run > best_count) {
        best_count = run;
        best_proc = votes[k];
      }
    }
    home[static_cast<std::size_t>(i)] = best_proc;
  }
  p.clock().charge_ops(niter * nbatches, p.params().mem_us_per_word);

  IterationPartition out;
  out.iter_dist = dist::Distribution::irregular_from_map(
      p, home, iter_space, page_size);
  out.remap = dist::build_remap(p, iter_space, *out.iter_dist);
  for (i64 i = 0; i < niter; ++i) {
    if (home[static_cast<std::size_t>(i)] != p.rank()) ++out.moved_iterations;
  }
  out.moved_iterations = rt::allreduce_sum(p, out.moved_iterations);
  return out;
}

}  // namespace chaos::core
