// The inspector's "localize" step (Phase D of Figure 2): translate global
// references through the distribution, remove duplicate off-process
// references with a hash table, assign ghost-buffer slots, and exchange
// request lists to form the communication schedule.
#pragma once

#include <span>
#include <vector>

#include "core/schedule.hpp"
#include "dist/distribution.hpp"
#include "rt/machine.hpp"

namespace chaos::core {

/// Result of localizing one batch of global references against one
/// distribution. refs[i] is the localized index of global_refs[i]:
/// < nlocal → owned element; >= nlocal → ghost slot (nlocal + slot).
struct Localized {
  std::vector<i64> refs;
  CommSchedule schedule;
  i64 off_process_refs = 0;  ///< before duplicate removal
};

/// Collective. Localizes @p global_refs (indices into an array distributed
/// by @p d). All processes must call together; lists may differ in length.
[[nodiscard]] Localized localize(rt::Process& p, const dist::Distribution& d,
                                 std::span<const i64> global_refs);

/// Collective. Localizes several reference batches against the same
/// distribution with a *shared* duplicate-removal table and one schedule
/// (CHAOS builds one ghost index space per loop per distribution, shared by
/// every data array aligned to it). Outputs one refs vector per batch.
struct LocalizedMany {
  std::vector<std::vector<i64>> refs;
  CommSchedule schedule;
  i64 off_process_refs = 0;
};
[[nodiscard]] LocalizedMany localize_many(
    rt::Process& p, const dist::Distribution& d,
    std::span<const std::span<const i64>> batches);

}  // namespace chaos::core
