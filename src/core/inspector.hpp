// The inspector's "localize" step (Phase D of Figure 2), rebuilt dedup-first:
// duplicate *global* references are collapsed through a flat open-addressing
// table BEFORE the distribution locate, so the translation table only ever
// sees each distinct global once (mesh indirection arrays reference each node
// ~6.7x — that factor comes straight off the locate query volume). The
// distinct entries are then split owned/off-process and ghost slots assigned
// per-owner CANONICALLY — owners ascending, within an owner sorted by global
// index ascending — so the schedule's content is a pure function of the ghost
// SET. That canonical order is what makes incremental repair (DESIGN.md §14)
// exact: splicing a delta into an existing schedule lands bit-identical to a
// full rebuild, because surviving entries keep their sorted relative order.
//
// All scratch lives in a reusable InspectorWorkspace (the inspector-side
// sibling of ExecutorWorkspace): buffers grow monotonically, the dedup table
// resets by epoch tag, and the workspace overloads below write into
// caller-owned results — so a re-run inspector performs zero heap
// allocations after warmup (for IRREGULAR distributions this additionally
// needs a warm TranslationCache to keep the locate round miss-free).
#pragma once

#include <span>
#include <vector>

#include "core/plan_options.hpp"
#include "core/schedule.hpp"
#include "dist/dereference_workspace.hpp"
#include "dist/distribution.hpp"
#include "dist/translation_cache.hpp"
#include "rt/collectives.hpp"
#include "rt/machine.hpp"

namespace chaos::core {

/// Result of localizing one batch of global references against one
/// distribution. refs[i] is the localized index of global_refs[i]:
/// < nlocal → owned element; >= nlocal → ghost slot (nlocal + slot).
struct Localized {
  std::vector<i64> refs;
  CommSchedule schedule;
  i64 off_process_refs = 0;  ///< before duplicate removal
};

/// Several reference batches localized against the same distribution with a
/// *shared* duplicate-removal table and one schedule (CHAOS builds one ghost
/// index space per loop per distribution, shared by every data array aligned
/// to it). One refs vector per batch.
struct LocalizedMany {
  std::vector<std::vector<i64>> refs;
  CommSchedule schedule;
  i64 off_process_refs = 0;
};

/// What incremental repair diffs against: the distinct globals and resolved
/// (owner, local) entries of one schedule's last successful localize, plus
/// the distribution identity they were translated under. Captured by copy
/// (InspectorWorkspace::capture) after every successful localize or repair;
/// plans hold one per schedule. A snapshot against a different DAD key or
/// local segment length is hard-ineligible — repair then votes fallback
/// machine-wide, so REDISTRIBUTE can never be papered over with a stale
/// splice.
struct LocalizeSnapshot {
  bool valid = false;
  u64 dad_key = 0;  ///< dist::Dad::key() of the localized distribution
  i64 nlocal = 0;   ///< my local segment length at localize time
  std::vector<i64> distinct;         ///< distinct globals (dedup order)
  std::vector<dist::Entry> entries;  ///< resolved entry per distinct global
};

class InspectorWorkspace;

namespace detail {
void localize_into(rt::Process& p, const dist::Distribution& d,
                   std::span<const std::span<const i64>> batches,
                   std::span<std::vector<i64>* const> refs_out,
                   CommSchedule& schedule, i64& off_process_refs,
                   InspectorWorkspace& ws);

bool repair_into(rt::Process& p, const dist::Distribution& d,
                 std::span<const std::span<const i64>> batches,
                 std::span<std::vector<i64>* const> refs_out,
                 CommSchedule& schedule, i64& off_process_refs,
                 InspectorWorkspace& ws, const LocalizeSnapshot& snap);

/// Collapses duplicate globals across @p batches through the workspace's
/// dedup table: fills the per-position ordinal map and the distinct arena
/// (first-occurrence order) and returns the distinct count. The shared front
/// half of localize, also used by partition_iterations to dedup its
/// reference batches before the owner locate.
i64 dedup_batches(InspectorWorkspace& ws,
                  std::span<const std::span<const i64>> batches);

/// The canonical ghost-slot assignment shared by the full build and the
/// repair path: counts distinct off-process entries per owner into the
/// schedule's receive prefix, then assigns ghost slots per-owner sorted by
/// global ascending, filling the workspace's localized-value arena and flat
/// per-owner request list. Pure local (no communication, no clock charge).
void assign_ghost_slots(InspectorWorkspace& ws, std::size_t np, i32 my_rank,
                        i64 nlocal, CommSchedule& schedule);
}  // namespace detail

/// Reusable inspector scratch: the dedup table, the distinct-reference
/// arena, per-owner request staging, and the PlanOptions governing cache /
/// locate-protocol / repair behavior. One workspace serves any number of
/// sequential localize calls; plans own one per loop.
class InspectorWorkspace {
 public:
  /// Installs the plan options this workspace localizes under. SPMD
  /// discipline: every rank of the machine configures identically — the
  /// cached path adds one collective vote per localize, the flat protocol
  /// changes the collective count, and the repair vote is machine-wide.
  /// The translation cache only engages for IRREGULAR distributions
  /// (regular locates are closed-form arithmetic and need no caching); it
  /// must be unbound or bound to the localized distribution's DAD, otherwise
  /// localize throws (stale binding after a REDISTRIBUTE is an error, never
  /// a silent stale hit). A cache therefore serves ONE distribution
  /// instance: use one workspace per localized distribution when attaching
  /// caches (as the loop plans do); a cache-free workspace can serve any
  /// mix of distributions.
  void configure(const PlanOptions& opts) { opts_ = opts; }
  [[nodiscard]] const PlanOptions& options() const { return opts_; }

  /// DEPRECATED forwarder (pre-PlanOptions API): prefer
  /// configure(PlanOptions{.translation_cache = cache}).
  void attach_cache(dist::TranslationCache* cache) {
    opts_.translation_cache = cache;
  }
  [[nodiscard]] dist::TranslationCache* cache() const {
    return opts_.translation_cache;
  }

  /// DEPRECATED forwarder (pre-PlanOptions API): prefer
  /// configure(PlanOptions{.flat_locate = true}).
  void set_flat_locate(bool on) { opts_.flat_locate = on; }
  [[nodiscard]] bool flat_locate() const { return opts_.flat_locate; }

  /// Reference counts of the most recent localize through this workspace
  /// (the bench layer checks locate volume against these).
  [[nodiscard]] i64 last_total_refs() const { return last_total_; }
  [[nodiscard]] i64 last_distinct_refs() const { return last_distinct_; }

  /// Read-only views of the most recent dedup pass (valid until the next
  /// begin): the distinct globals in first-occurrence order, and the
  /// distinct ordinal of every reference position in batch-major order.
  [[nodiscard]] std::span<const i64> distinct_globals() const {
    return {distinct_.data(), static_cast<std::size_t>(last_distinct_)};
  }
  [[nodiscard]] std::span<const i64> pos_ordinals() const {
    return {pos_ids_.data(), static_cast<std::size_t>(last_total_)};
  }

  /// Copies the most recent successful localize/repair's distinct set,
  /// resolved entries, and distribution identity into @p snap — the state
  /// the next repair diffs against. Grow-only with headroom, so captures
  /// under a slowly drifting distinct count stay allocation-free.
  void capture(LocalizeSnapshot& snap) const {
    const auto n = static_cast<std::size_t>(last_distinct_);
    if (snap.distinct.capacity() < n) {
      snap.distinct.reserve(2 * n);
      snap.entries.reserve(2 * n);
    }
    snap.distinct.assign(distinct_.begin(),
                         distinct_.begin() + static_cast<std::ptrdiff_t>(n));
    snap.entries.assign(entries_.begin(),
                        entries_.begin() + static_cast<std::ptrdiff_t>(n));
    snap.dad_key = last_dad_key_;
    snap.nlocal = last_nlocal_;
    snap.valid = true;
  }

 private:
  friend void detail::localize_into(rt::Process&, const dist::Distribution&,
                                    std::span<const std::span<const i64>>,
                                    std::span<std::vector<i64>* const>,
                                    CommSchedule&, i64&, InspectorWorkspace&);
  friend bool detail::repair_into(rt::Process&, const dist::Distribution&,
                                  std::span<const std::span<const i64>>,
                                  std::span<std::vector<i64>* const>,
                                  CommSchedule&, i64&, InspectorWorkspace&,
                                  const LocalizeSnapshot&);
  friend i64 detail::dedup_batches(InspectorWorkspace&,
                                   std::span<const std::span<const i64>>);
  friend void detail::assign_ghost_slots(InspectorWorkspace&, std::size_t,
                                         i32, i64, CommSchedule&);
  friend void localize_many(rt::Process&, const dist::Distribution&,
                            std::span<const std::span<const i64>>,
                            InspectorWorkspace&, LocalizedMany&);
  friend bool repair_localize_many(rt::Process&, const dist::Distribution&,
                                   std::span<const std::span<const i64>>,
                                   InspectorWorkspace&,
                                   const LocalizeSnapshot&, LocalizedMany&);

  /// Starts a localize over @p total references: bumps the dedup epoch and
  /// (re)sizes the table to load factor <= 1/2. Allocates only on growth.
  void begin(std::size_t total) {
    std::size_t cap = slot_key_.size();
    if (cap < 2 * total || cap == 0) {
      cap = 16;
      while (cap < 2 * total) cap <<= 1;
      slot_key_.resize(cap);
      slot_id_.resize(cap);
      slot_epoch_.resize(cap, 0);
    }
    mask_ = cap - 1;
    ++epoch_;
    distinct_.clear();
    distinct_.reserve(total);
    pos_ids_.resize(total);
    last_total_ = static_cast<i64>(total);
    last_distinct_ = 0;
  }

  /// Distinct ordinal of global @p g, minting one (first-occurrence order)
  /// on the first sighting this epoch.
  [[nodiscard]] i64 dedup_id(i64 g) {
    std::size_t s =
        static_cast<std::size_t>(dist::detail::mix64(static_cast<u64>(g))) &
        mask_;
    while (true) {
      if (slot_epoch_[s] != epoch_) {
        slot_epoch_[s] = epoch_;
        slot_key_[s] = g;
        const i64 id = static_cast<i64>(distinct_.size());
        slot_id_[s] = id;
        distinct_.push_back(g);
        return id;
      }
      if (slot_key_[s] == g) return slot_id_[s];
      s = (s + 1) & mask_;
    }
  }

  /// (Re)builds the repair diff table over @p prev_globals (the snapshot's
  /// distinct set). Same epoch-tagged open-addressing shape as the dedup
  /// table, kept separate so a repair never perturbs dedup state.
  void build_prev_table(std::span<const i64> prev_globals) {
    std::size_t cap = prev_key_.size();
    if (cap < 2 * prev_globals.size() || cap == 0) {
      cap = 16;
      while (cap < 2 * prev_globals.size()) cap <<= 1;
      prev_key_.resize(cap);
      prev_id_.resize(cap);
      prev_epoch_.resize(cap, 0);
    }
    prev_mask_ = cap - 1;
    ++prev_gen_;
    for (std::size_t q = 0; q < prev_globals.size(); ++q) {
      std::size_t s = static_cast<std::size_t>(dist::detail::mix64(
                          static_cast<u64>(prev_globals[q]))) &
                      prev_mask_;
      while (prev_epoch_[s] == prev_gen_) s = (s + 1) & prev_mask_;
      prev_epoch_[s] = prev_gen_;
      prev_key_[s] = prev_globals[q];
      prev_id_[s] = static_cast<i64>(q);
    }
  }

  /// Snapshot ordinal of @p g, or -1 if the global is novel.
  [[nodiscard]] i64 prev_lookup(i64 g) const {
    std::size_t s =
        static_cast<std::size_t>(dist::detail::mix64(static_cast<u64>(g))) &
        prev_mask_;
    while (prev_epoch_[s] == prev_gen_) {
      if (prev_key_[s] == g) return prev_id_[s];
      s = (s + 1) & prev_mask_;
    }
    return -1;
  }

  // Dedup table: open addressing, splitmix64 probing, epoch-tagged slots so
  // a reset is one counter bump instead of an O(capacity) clear.
  std::vector<i64> slot_key_;
  std::vector<i64> slot_id_;
  std::vector<u64> slot_epoch_;
  std::size_t mask_ = 0;
  u64 epoch_ = 0;

  std::vector<i64> pos_ids_;    ///< distinct ordinal per reference position
  std::vector<i64> distinct_;   ///< distinct globals, first-occurrence order
  std::vector<dist::Entry> entries_;  ///< resolved entry per distinct global
  std::vector<i64> loc_val_;    ///< localized index per distinct global
  std::vector<i64> all_ids_;    ///< iota over distinct (cache probe_batch)
  std::vector<i64> miss_ids_;   ///< cache misses: ordinal into distinct_
  std::vector<i64> miss_globals_;
  std::vector<dist::Entry> miss_entries_;
  std::vector<i64> ghost_ord_;      ///< distinct ordinal per ghost slot
  std::vector<i64> owner_cursor_;   ///< P: next request slot per owner
  std::vector<i64> req_local_;      ///< flat per-owner request CSR values
  std::vector<i64> counts_scratch_; ///< 2P: exchange_csr count staging
  std::vector<std::vector<i64>*> refs_ptrs_;  ///< localize_many staging

  // Repair scratch (detail::repair_into): the snapshot diff table, the
  // novel/departed classification, the per-owner splice-script CSR, and the
  // splice staging handed to CommSchedule::splice_send. All grow-only.
  std::vector<i64> prev_key_;
  std::vector<i64> prev_id_;
  std::vector<u64> prev_epoch_;
  std::size_t prev_mask_ = 0;
  u64 prev_gen_ = 0;
  std::vector<u8> prev_matched_;  ///< per snapshot ordinal: survived?
  std::vector<u8> is_novel_;      ///< per new distinct ordinal
  std::vector<i64> novel_ids_;    ///< novel ordinals into distinct_
  std::vector<i64> novel_globals_;
  std::vector<dist::Entry> novel_entries_;
  std::vector<i64> script_payload_;  ///< outgoing splice scripts, CSR
  std::vector<i64> script_offsets_;
  std::vector<i64> script_cursor_;   ///< P: per-owner script fill cursor
  std::vector<i64> script_recv_;     ///< arriving scripts for my send side
  std::vector<i64> script_recv_offsets_;
  std::vector<i64> splice_scratch_;  ///< splice_send rebuild staging
  std::vector<i64> tomb_scratch_;    ///< splice_send sorted-tombstone staging

  PlanOptions opts_;
  dist::DereferenceWorkspace deref_ws_;  ///< flat cold-path locate scratch
  i64 last_total_ = 0;
  i64 last_distinct_ = 0;
  u64 last_dad_key_ = 0;  ///< distribution identity of the last localize
  i64 last_nlocal_ = 0;
};

/// Collective. Localizes @p global_refs (indices into an array distributed
/// by @p d). All processes must call together; lists may differ in length.
[[nodiscard]] Localized localize(rt::Process& p, const dist::Distribution& d,
                                 std::span<const i64> global_refs);

[[nodiscard]] LocalizedMany localize_many(
    rt::Process& p, const dist::Distribution& d,
    std::span<const std::span<const i64>> batches);

/// Workspace overloads: same semantics, but every buffer of @p out is
/// reused in place — a warm re-localize of same-shaped batches performs
/// zero heap allocations (see file comment for the IRREGULAR caveat).
void localize(rt::Process& p, const dist::Distribution& d,
              std::span<const i64> global_refs, InspectorWorkspace& ws,
              Localized& out);

void localize_many(rt::Process& p, const dist::Distribution& d,
                   std::span<const std::span<const i64>> batches,
                   InspectorWorkspace& ws, LocalizedMany& out);

/// Collective. Attempts an incremental repair of @p out's existing schedule
/// against the NEW reference set in @p global_refs, diffing it against
/// @p snap (the state captured after the schedule's last build): only novel
/// globals are located (warm cache hits make that nearly free), departed
/// entries are tombstoned and novel ones merged on the owners via an
/// exchanged splice script, and the refs are rewritten in full. Returns
/// true on success — @p out is then bit-identical to what a full localize
/// of the same refs would produce, at delta-proportional communication
/// cost. Returns false when the machine-wide vote rejects the repair (a
/// hard-ineligible snapshot anywhere, or the voted delta fraction over
/// PlanOptions::effective_threshold()); @p out is untouched and the caller
/// must fall back to a full localize. Every rank must call together and
/// agrees on the outcome by construction.
[[nodiscard]] bool repair_localize(rt::Process& p, const dist::Distribution& d,
                                   std::span<const i64> global_refs,
                                   InspectorWorkspace& ws,
                                   const LocalizeSnapshot& snap,
                                   Localized& out);

[[nodiscard]] bool repair_localize_many(
    rt::Process& p, const dist::Distribution& d,
    std::span<const std::span<const i64>> batches, InspectorWorkspace& ws,
    const LocalizeSnapshot& snap, LocalizedMany& out);

/// THE schedule-forming exchange (now hosted in rt/collectives.hpp so the
/// dist layer's flat dereference can drive it too): localize routes its
/// ghost requests through it, geocol its half-edges, and
/// TranslationTable::dereference_flat its request round — one CSR exchange
/// implementation in the tree.
using rt::exchange_csr;

}  // namespace chaos::core
