// The inspector's "localize" step (Phase D of Figure 2), rebuilt dedup-first:
// duplicate *global* references are collapsed through a flat open-addressing
// table BEFORE the distribution locate, so the translation table only ever
// sees each distinct global once (mesh indirection arrays reference each node
// ~6.7x — that factor comes straight off the locate query volume). The
// distinct entries are then split owned/off-process, ghost slots assigned
// per-owner in first-occurrence order, and request lists exchanged to form
// the communication schedule. Outputs are bit-identical to the historical
// translate-everything-first pipeline; only the work to produce them changed.
//
// All scratch lives in a reusable InspectorWorkspace (the inspector-side
// sibling of ExecutorWorkspace): buffers grow monotonically, the dedup table
// resets by epoch tag, and the workspace overloads below write into
// caller-owned results — so a re-run inspector performs zero heap
// allocations after warmup (for IRREGULAR distributions this additionally
// needs a warm TranslationCache to keep the locate round miss-free).
#pragma once

#include <span>
#include <vector>

#include "core/schedule.hpp"
#include "dist/dereference_workspace.hpp"
#include "dist/distribution.hpp"
#include "dist/translation_cache.hpp"
#include "rt/collectives.hpp"
#include "rt/machine.hpp"

namespace chaos::core {

/// Result of localizing one batch of global references against one
/// distribution. refs[i] is the localized index of global_refs[i]:
/// < nlocal → owned element; >= nlocal → ghost slot (nlocal + slot).
struct Localized {
  std::vector<i64> refs;
  CommSchedule schedule;
  i64 off_process_refs = 0;  ///< before duplicate removal
};

/// Several reference batches localized against the same distribution with a
/// *shared* duplicate-removal table and one schedule (CHAOS builds one ghost
/// index space per loop per distribution, shared by every data array aligned
/// to it). One refs vector per batch.
struct LocalizedMany {
  std::vector<std::vector<i64>> refs;
  CommSchedule schedule;
  i64 off_process_refs = 0;
};

class InspectorWorkspace;

namespace detail {
void localize_into(rt::Process& p, const dist::Distribution& d,
                   std::span<const std::span<const i64>> batches,
                   std::span<std::vector<i64>* const> refs_out,
                   CommSchedule& schedule, i64& off_process_refs,
                   InspectorWorkspace& ws);

/// Collapses duplicate globals across @p batches through the workspace's
/// dedup table: fills the per-position ordinal map and the distinct arena
/// (first-occurrence order) and returns the distinct count. The shared front
/// half of localize, also used by partition_iterations to dedup its
/// reference batches before the owner locate.
i64 dedup_batches(InspectorWorkspace& ws,
                  std::span<const std::span<const i64>> batches);
}  // namespace detail

/// Reusable inspector scratch: the dedup table, the distinct-reference
/// arena, per-owner request staging, and (optionally) a handle to a
/// persistent translation cache. One workspace serves any number of
/// sequential localize calls; plans own one per loop.
class InspectorWorkspace {
 public:
  /// Attaches a persistent translation cache (nullptr detaches). SPMD
  /// discipline: every rank of the machine must attach a cache or none —
  /// the cached path adds one collective vote per localize. The cache only
  /// engages for IRREGULAR distributions (regular locates are closed-form
  /// arithmetic and need no caching); it must be unbound or bound to the
  /// localized distribution's DAD, otherwise localize throws (stale binding
  /// after a REDISTRIBUTE is an error, never a silent stale hit). A cache
  /// therefore serves ONE distribution instance: use one workspace per
  /// localized distribution when attaching caches (as the loop plans do);
  /// a cache-free workspace can serve any mix of distributions.
  void attach_cache(dist::TranslationCache* cache) { cache_ = cache; }
  [[nodiscard]] dist::TranslationCache* cache() const { return cache_; }

  /// Opts the cold-path lookup into the flat CSR dereference: IRREGULAR
  /// locate rounds (all distinct globals without a cache; just the misses
  /// with one) run through Distribution::locate_flat_into staged in this
  /// workspace's DereferenceWorkspace — zero heap allocations on a warm
  /// repeat, composing with warm cache hits. SPMD discipline: every rank
  /// flips the flag together (the flat protocol's collective count differs),
  /// and because that count differs (3 rounds vs 2), the default stays OFF
  /// so existing modeled virtual times remain bit-identical.
  void set_flat_locate(bool on) { flat_locate_ = on; }
  [[nodiscard]] bool flat_locate() const { return flat_locate_; }

  /// Reference counts of the most recent localize through this workspace
  /// (the bench layer checks locate volume against these).
  [[nodiscard]] i64 last_total_refs() const { return last_total_; }
  [[nodiscard]] i64 last_distinct_refs() const { return last_distinct_; }

  /// Read-only views of the most recent dedup pass (valid until the next
  /// begin): the distinct globals in first-occurrence order, and the
  /// distinct ordinal of every reference position in batch-major order.
  [[nodiscard]] std::span<const i64> distinct_globals() const {
    return {distinct_.data(), static_cast<std::size_t>(last_distinct_)};
  }
  [[nodiscard]] std::span<const i64> pos_ordinals() const {
    return {pos_ids_.data(), static_cast<std::size_t>(last_total_)};
  }

 private:
  friend void detail::localize_into(rt::Process&, const dist::Distribution&,
                                    std::span<const std::span<const i64>>,
                                    std::span<std::vector<i64>* const>,
                                    CommSchedule&, i64&, InspectorWorkspace&);
  friend i64 detail::dedup_batches(InspectorWorkspace&,
                                   std::span<const std::span<const i64>>);
  friend void localize_many(rt::Process&, const dist::Distribution&,
                            std::span<const std::span<const i64>>,
                            InspectorWorkspace&, LocalizedMany&);

  /// Starts a localize over @p total references: bumps the dedup epoch and
  /// (re)sizes the table to load factor <= 1/2. Allocates only on growth.
  void begin(std::size_t total) {
    std::size_t cap = slot_key_.size();
    if (cap < 2 * total || cap == 0) {
      cap = 16;
      while (cap < 2 * total) cap <<= 1;
      slot_key_.resize(cap);
      slot_id_.resize(cap);
      slot_epoch_.resize(cap, 0);
    }
    mask_ = cap - 1;
    ++epoch_;
    distinct_.clear();
    distinct_.reserve(total);
    pos_ids_.resize(total);
    last_total_ = static_cast<i64>(total);
    last_distinct_ = 0;
  }

  /// Distinct ordinal of global @p g, minting one (first-occurrence order)
  /// on the first sighting this epoch.
  [[nodiscard]] i64 dedup_id(i64 g) {
    std::size_t s =
        static_cast<std::size_t>(dist::detail::mix64(static_cast<u64>(g))) &
        mask_;
    while (true) {
      if (slot_epoch_[s] != epoch_) {
        slot_epoch_[s] = epoch_;
        slot_key_[s] = g;
        const i64 id = static_cast<i64>(distinct_.size());
        slot_id_[s] = id;
        distinct_.push_back(g);
        return id;
      }
      if (slot_key_[s] == g) return slot_id_[s];
      s = (s + 1) & mask_;
    }
  }

  // Dedup table: open addressing, splitmix64 probing, epoch-tagged slots so
  // a reset is one counter bump instead of an O(capacity) clear.
  std::vector<i64> slot_key_;
  std::vector<i64> slot_id_;
  std::vector<u64> slot_epoch_;
  std::size_t mask_ = 0;
  u64 epoch_ = 0;

  std::vector<i64> pos_ids_;    ///< distinct ordinal per reference position
  std::vector<i64> distinct_;   ///< distinct globals, first-occurrence order
  std::vector<dist::Entry> entries_;  ///< resolved entry per distinct global
  std::vector<i64> loc_val_;    ///< localized index per distinct global
  std::vector<i64> miss_ids_;   ///< cache misses: ordinal into distinct_
  std::vector<i64> miss_globals_;
  std::vector<dist::Entry> miss_entries_;
  std::vector<i64> owner_cursor_;   ///< P: next request slot per owner
  std::vector<i64> req_local_;      ///< flat per-owner request CSR values
  std::vector<i64> counts_scratch_; ///< 2P: exchange_csr count staging
  std::vector<std::vector<i64>*> refs_ptrs_;  ///< localize_many staging

  dist::TranslationCache* cache_ = nullptr;
  bool flat_locate_ = false;
  dist::DereferenceWorkspace deref_ws_;  ///< flat cold-path locate scratch
  i64 last_total_ = 0;
  i64 last_distinct_ = 0;
};

/// Collective. Localizes @p global_refs (indices into an array distributed
/// by @p d). All processes must call together; lists may differ in length.
[[nodiscard]] Localized localize(rt::Process& p, const dist::Distribution& d,
                                 std::span<const i64> global_refs);

[[nodiscard]] LocalizedMany localize_many(
    rt::Process& p, const dist::Distribution& d,
    std::span<const std::span<const i64>> batches);

/// Workspace overloads: same semantics, but every buffer of @p out is
/// reused in place — a warm re-localize of same-shaped batches performs
/// zero heap allocations (see file comment for the IRREGULAR caveat).
void localize(rt::Process& p, const dist::Distribution& d,
              std::span<const i64> global_refs, InspectorWorkspace& ws,
              Localized& out);

void localize_many(rt::Process& p, const dist::Distribution& d,
                   std::span<const std::span<const i64>> batches,
                   InspectorWorkspace& ws, LocalizedMany& out);

/// THE schedule-forming exchange (now hosted in rt/collectives.hpp so the
/// dist layer's flat dereference can drive it too): localize routes its
/// ghost requests through it, geocol its half-edges, and
/// TranslationTable::dereference_flat its request round — one CSR exchange
/// implementation in the tree.
using rt::exchange_csr;

}  // namespace chaos::core
