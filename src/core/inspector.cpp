#include "core/inspector.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

namespace chaos::core {

namespace detail {

i64 dedup_batches(InspectorWorkspace& ws,
                  std::span<const std::span<const i64>> batches) {
  std::size_t total = 0;
  for (const auto& b : batches) total += b.size();
  ws.begin(total);
  std::size_t cursor = 0;
  for (const auto& b : batches) {
    for (const i64 g : b) {
      ws.pos_ids_[cursor++] = ws.dedup_id(g);
    }
  }
  ws.last_distinct_ = static_cast<i64>(ws.distinct_.size());
  return ws.last_distinct_;
}

// Ghost slots are per-owner contiguous, owners ascending, within an owner
// SORTED BY GLOBAL ascending — the canonical order that makes the schedule a
// pure function of the ghost set (DESIGN.md §14). Counting distinct
// off-process entries per owner and prefixing them yields the schedule's
// receive-side CSR; a cursor pass gathers each owner's ordinals, an in-place
// per-segment sort canonicalizes them, and one final pass assigns slots AND
// fills the flat request list. The sort adds no virtual-clock charge, so
// modeled times are unchanged from the first-occurrence era.
void assign_ghost_slots(InspectorWorkspace& ws, std::size_t np, i32 my_rank,
                        i64 nlocal, CommSchedule& schedule) {
  const i64 distinct = ws.last_distinct_;
  schedule.recv_offsets.resize(np + 1);
  std::fill(schedule.recv_offsets.begin(), schedule.recv_offsets.end(), 0);
  for (i64 k = 0; k < distinct; ++k) {
    const auto& e = ws.entries_[static_cast<std::size_t>(k)];
    if (e.proc != my_rank) {
      ++schedule.recv_offsets[static_cast<std::size_t>(e.proc) + 1];
    }
  }
  for (std::size_t r = 0; r < np; ++r) {
    schedule.recv_offsets[r + 1] += schedule.recv_offsets[r];
  }
  const i64 total_ghost = schedule.recv_offsets[np];
  ws.owner_cursor_.resize(np);
  std::copy(schedule.recv_offsets.begin(), schedule.recv_offsets.end() - 1,
            ws.owner_cursor_.begin());
  ws.ghost_ord_.resize(static_cast<std::size_t>(total_ghost));
  ws.loc_val_.resize(static_cast<std::size_t>(distinct));
  for (i64 k = 0; k < distinct; ++k) {
    const auto& e = ws.entries_[static_cast<std::size_t>(k)];
    if (e.proc == my_rank) {
      ws.loc_val_[static_cast<std::size_t>(k)] = e.local;
    } else {
      const i64 slot = ws.owner_cursor_[static_cast<std::size_t>(e.proc)]++;
      ws.ghost_ord_[static_cast<std::size_t>(slot)] = k;
    }
  }
  for (std::size_t r = 0; r < np; ++r) {
    std::sort(ws.ghost_ord_.begin() + schedule.recv_offsets[r],
              ws.ghost_ord_.begin() + schedule.recv_offsets[r + 1],
              [&ws](i64 a, i64 b) {
                return ws.distinct_[static_cast<std::size_t>(a)] <
                       ws.distinct_[static_cast<std::size_t>(b)];
              });
  }
  ws.req_local_.resize(static_cast<std::size_t>(total_ghost));
  for (i64 s = 0; s < total_ghost; ++s) {
    const auto k = static_cast<std::size_t>(ws.ghost_ord_[s]);
    ws.loc_val_[k] = nlocal + s;
    ws.req_local_[static_cast<std::size_t>(s)] = ws.entries_[k].local;
  }
}

// The dedup-first pipeline. Modeled virtual-clock charges are bit-identical
// to the historical translate-everything-first implementation when no cache
// is attached; the cached path replaces the saved locate traffic with one
// scalar allreduce vote, so its (smaller) modeled time reflects
// communication actually saved.
void localize_into(rt::Process& p, const dist::Distribution& d,
                   std::span<const std::span<const i64>> batches,
                   std::span<std::vector<i64>* const> refs_out,
                   CommSchedule& schedule, i64& off_process_refs,
                   InspectorWorkspace& ws) {
  const auto np = static_cast<std::size_t>(p.nprocs());
  const auto my_rank = static_cast<i32>(p.rank());
  const i64 nlocal = d.my_local_size();

  // Phase 1: collapse duplicate globals. Batches are walked directly — no
  // flattening copy for any batch count, single-batch included — and each
  // position records the distinct ordinal of its global.
  const i64 distinct = dedup_batches(ws, batches);
  const auto total = static_cast<std::size_t>(ws.last_total_);

  // Phase 2: resolve the distinct globals to (owner, local) entries — ONE
  // batched table dereference over distinct globals only. With a persistent
  // cache attached (irregular distributions), cached globals skip the locate
  // round; a machine-wide vote skips the round entirely when every rank is
  // fully warm.
  dist::TranslationCache* cache =
      (ws.opts_.translation_cache != nullptr &&
       d.kind() == dist::DistKind::Irregular)
          ? ws.opts_.translation_cache
          : nullptr;
  if (cache != nullptr) {
    if (!cache->bound()) {
      // Stamp 0 = "never modified"; callers tracking a ReuseRegistry bind
      // explicitly with reg.last_mod(dad) instead.
      cache->bind(d.dad(), 0);
    }
    CHAOS_CHECK(cache->accepts(d.dad()),
                "inspector: translation cache is bound to a different "
                "distribution instance — rebind after REDISTRIBUTE");
    // Attempt quarantine: insertions from a previous localize that threw
    // mid-exchange are still staged — drop them, so a retried attempt sees
    // exactly the committed (pre-failure) cache state and its miss vote,
    // locate round, and modeled clocks match a clean run bit for bit.
    cache->discard_staged();
    ws.entries_.resize(static_cast<std::size_t>(distinct));
    ws.all_ids_.resize(static_cast<std::size_t>(distinct));
    std::iota(ws.all_ids_.begin(), ws.all_ids_.end(), i64{0});
    const i64 nmiss =
        cache->probe_batch(ws.all_ids_, ws.distinct_, ws.entries_,
                           ws.miss_ids_, ws.miss_globals_);
    p.stats().tcache_hits += distinct - nmiss;
    p.stats().tcache_misses += nmiss;
    // One probe per distinct global.
    p.clock().charge_ops(distinct, p.params().mem_us_per_word);
    if (rt::allreduce_sum(p, nmiss) > 0) {
      if (ws.opts_.flat_locate) {
        d.locate_flat_into(p, ws.miss_globals_, ws.miss_entries_,
                           ws.deref_ws_);
      } else {
        d.locate_into(p, ws.miss_globals_, ws.miss_entries_);
      }
      for (std::size_t j = 0; j < ws.miss_ids_.size(); ++j) {
        const auto k = static_cast<std::size_t>(ws.miss_ids_[j]);
        ws.entries_[k] = ws.miss_entries_[j];
        // Staged, not put: published only after the schedule validates at
        // the end of this localize (commit below), so an aborted attempt
        // cannot pre-warm the cache.
        cache->stage_put(ws.distinct_[k], ws.miss_entries_[j]);
      }
    }
  } else {
    // Model compensation: the translate-first pipeline dereferenced every
    // reference, duplicates included. The collapsed duplicates ride the
    // locate's own (single, fused) clock charge, so modeled times stay
    // bit-identical — same integer operand, same one rounding step — while
    // the host does ~1/multiplicity of the work. The flat variant keeps the
    // same compensation but pays its own (3-round) collective bill.
    if (ws.opts_.flat_locate) {
      d.locate_flat_into(p, ws.distinct_, ws.entries_, ws.deref_ws_,
                         static_cast<i64>(total) - distinct);
    } else {
      d.locate_into(p, ws.distinct_, ws.entries_,
                    static_cast<i64>(total) - distinct);
    }
  }

  // Phase 3: canonical ghost-slot assignment (shared with the repair path).
  assign_ghost_slots(ws, np, my_rank, nlocal, schedule);
  const i64 total_ghost = schedule.recv_offsets[np];

  // Phase 4: write every batch's localized references through the distinct
  // ordinals, counting off-process references with multiplicity (a ghost
  // value is >= nlocal by construction).
  off_process_refs = 0;
  std::size_t cursor = 0;
  for (std::size_t b = 0; b < batches.size(); ++b) {
    std::vector<i64>& refs = *refs_out[b];
    refs.resize(batches[b].size());
    for (std::size_t i = 0; i < refs.size(); ++i) {
      const i64 v =
          ws.loc_val_[static_cast<std::size_t>(ws.pos_ids_[cursor++])];
      refs[i] = v;
      off_process_refs += static_cast<i64>(v >= nlocal);
    }
  }
  // Hash construction + lookups: ~2 memory ops per off-process reference,
  // plus one translate touch per reference — the historical dedup model.
  p.clock().charge_ops(static_cast<i64>(total) + 2 * off_process_refs,
                       p.params().mem_us_per_word);

  // Phase 5: exchange request lists; what arrives is my send side, built
  // directly in CSR form through the shared exchange (counts alltoall + one
  // flat payload alltoallv — no nested vectors anywhere).
  exchange_csr<i64>(p, ws.req_local_, schedule.recv_offsets,
                    schedule.send_indices, schedule.send_offsets,
                    ws.counts_scratch_);
  schedule.nghost = total_ghost;
  schedule.nlocal_at_build = nlocal;
  // Always-on structural validation of the freshly built plan: a peer
  // requesting an element outside my segment (or a broken prefix) surfaces
  // here as a typed ScheduleInvalid instead of UB in the executor.
  schedule.validate_or_throw("inspector");
  // The attempt is known-good: publish this localize's staged cache
  // insertions (no-op without a cache or when everything hit).
  if (cache != nullptr) cache->commit_staged();
  ws.last_dad_key_ = d.dad().key();
  ws.last_nlocal_ = nlocal;
}

// The delta path (DESIGN.md §14). Communication is proportional to the
// DELTA, not the mesh: one scalar vote, a locate over novel globals only
// (nothing at all when a warm cache absorbs them), and one splice-script
// exchange of two-ish words per changed ghost. Everything else — diff,
// slot assignment, refs rewrite — is local. The refs rewrite keeps the full
// Phase-4 charge (every position is re-resolved), an honest floor that still
// leaves repair far below a rebuild's locate + full request exchange.
bool repair_into(rt::Process& p, const dist::Distribution& d,
                 std::span<const std::span<const i64>> batches,
                 std::span<std::vector<i64>* const> refs_out,
                 CommSchedule& schedule, i64& off_process_refs,
                 InspectorWorkspace& ws, const LocalizeSnapshot& snap) {
  const auto np = static_cast<std::size_t>(p.nprocs());
  const auto my_rank = static_cast<i32>(p.rank());
  const i64 nlocal = d.my_local_size();

  // Phase R1: dedup the NEW reference set (identical front half).
  const i64 distinct = dedup_batches(ws, batches);
  const auto total = static_cast<std::size_t>(ws.last_total_);

  // Phase R2: hard eligibility, checked per rank. A snapshot from another
  // distribution instance (REDISTRIBUTE minted a fresh DAD), a resized
  // local segment, or a schedule of the wrong width can never be spliced —
  // the vote below turns any rank's ineligibility into a machine-wide
  // fallback, keeping every rank on the same path.
  const bool eligible = snap.valid && snap.dad_key == d.dad().key() &&
                        snap.nlocal == nlocal &&
                        schedule.nlocal_at_build == nlocal &&
                        static_cast<std::size_t>(schedule.nprocs()) == np;

  // Phase R3: diff the new distinct set against the snapshot. Retained
  // globals inherit their resolved entry for free; the rest are novel.
  i64 novel = 0;
  i64 departed = 0;
  if (eligible) {
    ws.build_prev_table(snap.distinct);
    ws.prev_matched_.assign(snap.distinct.size(), 0);
    ws.entries_.resize(static_cast<std::size_t>(distinct));
    ws.is_novel_.assign(static_cast<std::size_t>(distinct), 0);
    ws.novel_ids_.clear();
    for (i64 k = 0; k < distinct; ++k) {
      const i64 g = ws.distinct_[static_cast<std::size_t>(k)];
      const i64 q = ws.prev_lookup(g);
      if (q >= 0) {
        ws.entries_[static_cast<std::size_t>(k)] =
            snap.entries[static_cast<std::size_t>(q)];
        ws.prev_matched_[static_cast<std::size_t>(q)] = 1;
      } else {
        ws.is_novel_[static_cast<std::size_t>(k)] = 1;
        ws.novel_ids_.push_back(k);
      }
    }
    novel = static_cast<i64>(ws.novel_ids_.size());
    departed = static_cast<i64>(snap.distinct.size()) - (distinct - novel);
  }

  // Phase R4: the machine-wide repair vote — one scalar allreduce. Every
  // rank compares the worst delta fraction against the same threshold, so
  // all ranks take the same branch (repair or fallback) by construction.
  const f64 score =
      eligible ? static_cast<f64>(novel + departed) /
                     static_cast<f64>(std::max<i64>(i64{1}, distinct))
               : std::numeric_limits<f64>::infinity();
  if (rt::allreduce_max(p, score) > ws.opts_.effective_threshold()) {
    ++p.stats().repair_fallbacks;
    return false;
  }
  // Diff pass: one hash touch per distinct global (mirrors the cache-probe
  // charge of the full path).
  p.clock().charge_ops(distinct, p.params().mem_us_per_word);

  // Phase R5: locate the NOVEL globals only. Warm cache hits make this
  // free; misses (or the cache-free path) ship just the novel set through
  // the translation round, voted so empty machine-wide deltas skip it.
  dist::TranslationCache* cache =
      (ws.opts_.translation_cache != nullptr &&
       d.kind() == dist::DistKind::Irregular)
          ? ws.opts_.translation_cache
          : nullptr;
  if (cache != nullptr) {
    CHAOS_CHECK(cache->accepts(d.dad()),
                "repair: translation cache is bound to a different "
                "distribution instance — rebind after REDISTRIBUTE");
    cache->discard_staged();
    const i64 nmiss = cache->probe_batch(ws.novel_ids_, ws.distinct_,
                                         ws.entries_, ws.miss_ids_,
                                         ws.miss_globals_);
    p.stats().tcache_hits += novel - nmiss;
    p.stats().tcache_misses += nmiss;
    if (rt::allreduce_sum(p, nmiss) > 0) {
      if (ws.opts_.flat_locate) {
        d.locate_flat_into(p, ws.miss_globals_, ws.miss_entries_,
                           ws.deref_ws_);
      } else {
        d.locate_into(p, ws.miss_globals_, ws.miss_entries_);
      }
      for (std::size_t j = 0; j < ws.miss_ids_.size(); ++j) {
        const auto k = static_cast<std::size_t>(ws.miss_ids_[j]);
        ws.entries_[k] = ws.miss_entries_[j];
        cache->stage_put(ws.distinct_[k], ws.miss_entries_[j]);
      }
    }
  } else if (rt::allreduce_sum(p, novel) > 0) {
    ws.novel_globals_.clear();
    for (const i64 k : ws.novel_ids_) {
      ws.novel_globals_.push_back(ws.distinct_[static_cast<std::size_t>(k)]);
    }
    if (ws.opts_.flat_locate) {
      d.locate_flat_into(p, ws.novel_globals_, ws.novel_entries_,
                         ws.deref_ws_);
    } else {
      d.locate_into(p, ws.novel_globals_, ws.novel_entries_);
    }
    for (std::size_t j = 0; j < ws.novel_ids_.size(); ++j) {
      ws.entries_[static_cast<std::size_t>(ws.novel_ids_[j])] =
          ws.novel_entries_[j];
    }
  }

  // Phase R6: rebuild MY receive side from scratch, locally — canonical
  // sorted order makes it exactly what a full build would produce.
  assign_ghost_slots(ws, np, my_rank, nlocal, schedule);
  const i64 total_ghost = schedule.recv_offsets[np];

  // Phase R7: build one splice script per owner. Tombstones name departed
  // entries by owner-local index (request lists hold distinct locals, so
  // values identify entries); insertions carry (final position within the
  // owner's new segment, owner-local index), emitted position-ascending by
  // walking the sorted ghost order.
  ws.script_offsets_.assign(np + 1, 0);
  for (std::size_t q = 0; q < snap.distinct.size(); ++q) {
    if (ws.prev_matched_[q]) continue;
    const auto& e = snap.entries[q];
    if (e.proc != my_rank) {
      ws.script_offsets_[static_cast<std::size_t>(e.proc) + 1] += 1;
    }
  }
  for (const i64 k : ws.novel_ids_) {
    const auto& e = ws.entries_[static_cast<std::size_t>(k)];
    if (e.proc != my_rank) {
      ws.script_offsets_[static_cast<std::size_t>(e.proc) + 1] += 2;
    }
  }
  for (std::size_t r = 0; r < np; ++r) {
    // Two header words (ntomb, nins) for any owner with edits.
    if (ws.script_offsets_[r + 1] > 0) ws.script_offsets_[r + 1] += 2;
    ws.script_offsets_[r + 1] += ws.script_offsets_[r];
  }
  ws.script_payload_.resize(
      static_cast<std::size_t>(ws.script_offsets_[np]));
  ws.script_cursor_.assign(np, 0);
  // Tombstone sub-pass: count per owner first, then lay out each owner's
  // script as [ntomb, tombs..., nins, pairs...].
  for (std::size_t r = 0; r < np; ++r) {
    if (ws.script_offsets_[r + 1] > ws.script_offsets_[r]) {
      ws.script_cursor_[r] = ws.script_offsets_[r] + 1;  // after ntomb slot
    }
  }
  for (std::size_t q = 0; q < snap.distinct.size(); ++q) {
    if (ws.prev_matched_[q]) continue;
    const auto& e = snap.entries[q];
    if (e.proc == my_rank) continue;
    const auto r = static_cast<std::size_t>(e.proc);
    ws.script_payload_[static_cast<std::size_t>(ws.script_cursor_[r]++)] =
        e.local;
  }
  for (std::size_t r = 0; r < np; ++r) {
    if (ws.script_offsets_[r + 1] == ws.script_offsets_[r]) continue;
    const i64 base = ws.script_offsets_[r];
    ws.script_payload_[static_cast<std::size_t>(base)] =
        ws.script_cursor_[r] - base - 1;           // ntomb
    ++ws.script_cursor_[r];                        // reserve the nins slot
  }
  // Insertion sub-pass: slots ascending within each owner segment, so
  // positions arrive ascending as splice_send's merge requires.
  for (i64 s = 0; s < total_ghost; ++s) {
    const auto k = static_cast<std::size_t>(ws.ghost_ord_[s]);
    if (!ws.is_novel_[k]) continue;
    const auto& e = ws.entries_[k];
    const auto r = static_cast<std::size_t>(e.proc);
    const i64 pos = s - schedule.recv_offsets[r];
    ws.script_payload_[static_cast<std::size_t>(ws.script_cursor_[r]++)] =
        pos;
    ws.script_payload_[static_cast<std::size_t>(ws.script_cursor_[r]++)] =
        e.local;
  }
  for (std::size_t r = 0; r < np; ++r) {
    if (ws.script_offsets_[r + 1] == ws.script_offsets_[r]) continue;
    const i64 base = ws.script_offsets_[r];
    const i64 ntomb = ws.script_payload_[static_cast<std::size_t>(base)];
    const i64 nins_slot = base + 1 + ntomb;
    ws.script_payload_[static_cast<std::size_t>(nins_slot)] =
        (ws.script_cursor_[r] - nins_slot - 1) / 2;  // nins
  }

  // Phase R8: ship the scripts (requester d's script arrives as segment d
  // of my receive CSR — exactly the segment of my send side it edits) and
  // splice my send side in place. Then the full structural re-check.
  exchange_csr<i64>(p, ws.script_payload_, ws.script_offsets_,
                    ws.script_recv_, ws.script_recv_offsets_,
                    ws.counts_scratch_);
  schedule.splice_send(ws.script_recv_, ws.script_recv_offsets_,
                       ws.splice_scratch_, ws.tomb_scratch_);
  schedule.nghost = total_ghost;
  schedule.validate_or_throw("repair");

  // Phase R9: rewrite every batch's refs through the new localized values —
  // same shape and same charge as the full path's Phase 4.
  off_process_refs = 0;
  std::size_t cursor = 0;
  for (std::size_t b = 0; b < batches.size(); ++b) {
    std::vector<i64>& refs = *refs_out[b];
    refs.resize(batches[b].size());
    for (std::size_t i = 0; i < refs.size(); ++i) {
      const i64 v =
          ws.loc_val_[static_cast<std::size_t>(ws.pos_ids_[cursor++])];
      refs[i] = v;
      off_process_refs += static_cast<i64>(v >= nlocal);
    }
  }
  p.clock().charge_ops(static_cast<i64>(total) + 2 * off_process_refs,
                       p.params().mem_us_per_word);
  if (cache != nullptr) cache->commit_staged();
  ++p.stats().schedule_repairs;
  ws.last_dad_key_ = d.dad().key();
  ws.last_nlocal_ = nlocal;
  return true;
}

}  // namespace detail

Localized localize(rt::Process& p, const dist::Distribution& d,
                   std::span<const i64> global_refs) {
  InspectorWorkspace ws;
  Localized out;
  localize(p, d, global_refs, ws, out);
  return out;
}

LocalizedMany localize_many(rt::Process& p, const dist::Distribution& d,
                            std::span<const std::span<const i64>> batches) {
  InspectorWorkspace ws;
  LocalizedMany out;
  localize_many(p, d, batches, ws, out);
  return out;
}

void localize(rt::Process& p, const dist::Distribution& d,
              std::span<const i64> global_refs, InspectorWorkspace& ws,
              Localized& out) {
  const std::span<const i64> one[] = {global_refs};
  std::vector<i64>* const refs_out[] = {&out.refs};
  detail::localize_into(p, d, one, refs_out, out.schedule,
                        out.off_process_refs, ws);
}

void localize_many(rt::Process& p, const dist::Distribution& d,
                   std::span<const std::span<const i64>> batches,
                   InspectorWorkspace& ws, LocalizedMany& out) {
  out.refs.resize(batches.size());
  ws.refs_ptrs_.resize(batches.size());
  for (std::size_t b = 0; b < batches.size(); ++b) {
    ws.refs_ptrs_[b] = &out.refs[b];
  }
  detail::localize_into(p, d, batches, ws.refs_ptrs_, out.schedule,
                        out.off_process_refs, ws);
}

bool repair_localize(rt::Process& p, const dist::Distribution& d,
                     std::span<const i64> global_refs, InspectorWorkspace& ws,
                     const LocalizeSnapshot& snap, Localized& out) {
  const std::span<const i64> one[] = {global_refs};
  std::vector<i64>* const refs_out[] = {&out.refs};
  return detail::repair_into(p, d, one, refs_out, out.schedule,
                             out.off_process_refs, ws, snap);
}

bool repair_localize_many(rt::Process& p, const dist::Distribution& d,
                          std::span<const std::span<const i64>> batches,
                          InspectorWorkspace& ws, const LocalizeSnapshot& snap,
                          LocalizedMany& out) {
  out.refs.resize(batches.size());
  ws.refs_ptrs_.resize(batches.size());
  for (std::size_t b = 0; b < batches.size(); ++b) {
    ws.refs_ptrs_[b] = &out.refs[b];
  }
  return detail::repair_into(p, d, batches, ws.refs_ptrs_, out.schedule,
                             out.off_process_refs, ws, snap);
}

}  // namespace chaos::core
