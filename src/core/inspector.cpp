#include "core/inspector.hpp"

namespace chaos::core {

namespace detail {

i64 dedup_batches(InspectorWorkspace& ws,
                  std::span<const std::span<const i64>> batches) {
  std::size_t total = 0;
  for (const auto& b : batches) total += b.size();
  ws.begin(total);
  std::size_t cursor = 0;
  for (const auto& b : batches) {
    for (const i64 g : b) {
      ws.pos_ids_[cursor++] = ws.dedup_id(g);
    }
  }
  ws.last_distinct_ = static_cast<i64>(ws.distinct_.size());
  return ws.last_distinct_;
}

// The dedup-first pipeline. Outputs (refs, schedule, off_process_refs) and
// modeled virtual-clock charges are bit-identical to the historical
// translate-everything-first implementation when no cache is attached; the
// cached path replaces the saved locate traffic with one scalar allreduce
// vote, so its (smaller) modeled time reflects communication actually saved.
void localize_into(rt::Process& p, const dist::Distribution& d,
                   std::span<const std::span<const i64>> batches,
                   std::span<std::vector<i64>* const> refs_out,
                   CommSchedule& schedule, i64& off_process_refs,
                   InspectorWorkspace& ws) {
  const auto np = static_cast<std::size_t>(p.nprocs());
  const auto my_rank = static_cast<i32>(p.rank());
  const i64 nlocal = d.my_local_size();

  // Phase 1: collapse duplicate globals. Batches are walked directly — no
  // flattening copy for any batch count, single-batch included — and each
  // position records the distinct ordinal of its global (first-occurrence
  // order, which keeps every downstream ordering bit-identical to the
  // translate-first pipeline).
  const i64 distinct = dedup_batches(ws, batches);
  const auto total = static_cast<std::size_t>(ws.last_total_);

  // Phase 2: resolve the distinct globals to (owner, local) entries — ONE
  // batched table dereference over distinct globals only. With a persistent
  // cache attached (irregular distributions), cached globals skip the locate
  // round; a machine-wide vote skips the round entirely when every rank is
  // fully warm.
  dist::TranslationCache* cache =
      (ws.cache_ != nullptr && d.kind() == dist::DistKind::Irregular)
          ? ws.cache_
          : nullptr;
  if (cache != nullptr) {
    if (!cache->bound()) {
      // Stamp 0 = "never modified"; callers tracking a ReuseRegistry bind
      // explicitly with reg.last_mod(dad) instead.
      cache->bind(d.dad(), 0);
    }
    CHAOS_CHECK(cache->accepts(d.dad()),
                "inspector: translation cache is bound to a different "
                "distribution instance — rebind after REDISTRIBUTE");
    // Attempt quarantine: insertions from a previous localize that threw
    // mid-exchange are still staged — drop them, so a retried attempt sees
    // exactly the committed (pre-failure) cache state and its miss vote,
    // locate round, and modeled clocks match a clean run bit for bit.
    cache->discard_staged();
    ws.entries_.resize(static_cast<std::size_t>(distinct));
    ws.miss_ids_.clear();
    ws.miss_globals_.clear();
    for (i64 k = 0; k < distinct; ++k) {
      const i64 g = ws.distinct_[static_cast<std::size_t>(k)];
      if (!cache->try_get(g, ws.entries_[static_cast<std::size_t>(k)])) {
        ws.miss_ids_.push_back(k);
        ws.miss_globals_.push_back(g);
      }
    }
    const auto nmiss = static_cast<i64>(ws.miss_ids_.size());
    p.stats().tcache_hits += distinct - nmiss;
    p.stats().tcache_misses += nmiss;
    // One probe per distinct global.
    p.clock().charge_ops(distinct, p.params().mem_us_per_word);
    if (rt::allreduce_sum(p, nmiss) > 0) {
      if (ws.flat_locate_) {
        d.locate_flat_into(p, ws.miss_globals_, ws.miss_entries_,
                           ws.deref_ws_);
      } else {
        d.locate_into(p, ws.miss_globals_, ws.miss_entries_);
      }
      for (std::size_t j = 0; j < ws.miss_ids_.size(); ++j) {
        const auto k = static_cast<std::size_t>(ws.miss_ids_[j]);
        ws.entries_[k] = ws.miss_entries_[j];
        // Staged, not put: published only after the schedule validates at
        // the end of this localize (commit below), so an aborted attempt
        // cannot pre-warm the cache.
        cache->stage_put(ws.distinct_[k], ws.miss_entries_[j]);
      }
    }
  } else {
    // Model compensation: the translate-first pipeline dereferenced every
    // reference, duplicates included. The collapsed duplicates ride the
    // locate's own (single, fused) clock charge, so modeled times stay
    // bit-identical — same integer operand, same one rounding step — while
    // the host does ~1/multiplicity of the work. The flat variant keeps the
    // same compensation but pays its own (3-round) collective bill.
    if (ws.flat_locate_) {
      d.locate_flat_into(p, ws.distinct_, ws.entries_, ws.deref_ws_,
                         static_cast<i64>(total) - distinct);
    } else {
      d.locate_into(p, ws.distinct_, ws.entries_,
                    static_cast<i64>(total) - distinct);
    }
  }

  // Phase 3: ghost slots are per-owner contiguous, owners ascending, within
  // an owner in first-occurrence order — so counting distinct off-process
  // entries per owner and prefixing them yields the schedule's receive-side
  // CSR, and one stable cursor pass assigns slots AND fills the flat request
  // list in place.
  schedule.recv_offsets.resize(np + 1);
  std::fill(schedule.recv_offsets.begin(), schedule.recv_offsets.end(), 0);
  for (i64 k = 0; k < distinct; ++k) {
    const auto& e = ws.entries_[static_cast<std::size_t>(k)];
    if (e.proc != my_rank) {
      ++schedule.recv_offsets[static_cast<std::size_t>(e.proc) + 1];
    }
  }
  for (std::size_t r = 0; r < np; ++r) {
    schedule.recv_offsets[r + 1] += schedule.recv_offsets[r];
  }
  const i64 total_ghost = schedule.recv_offsets[np];
  ws.owner_cursor_.resize(np);
  std::copy(schedule.recv_offsets.begin(), schedule.recv_offsets.end() - 1,
            ws.owner_cursor_.begin());
  ws.req_local_.resize(static_cast<std::size_t>(total_ghost));
  ws.loc_val_.resize(static_cast<std::size_t>(distinct));
  for (i64 k = 0; k < distinct; ++k) {
    const auto& e = ws.entries_[static_cast<std::size_t>(k)];
    if (e.proc == my_rank) {
      ws.loc_val_[static_cast<std::size_t>(k)] = e.local;
    } else {
      const i64 slot = ws.owner_cursor_[static_cast<std::size_t>(e.proc)]++;
      ws.loc_val_[static_cast<std::size_t>(k)] = nlocal + slot;
      ws.req_local_[static_cast<std::size_t>(slot)] = e.local;
    }
  }

  // Phase 4: write every batch's localized references through the distinct
  // ordinals, counting off-process references with multiplicity (a ghost
  // value is >= nlocal by construction).
  off_process_refs = 0;
  std::size_t cursor = 0;
  for (std::size_t b = 0; b < batches.size(); ++b) {
    std::vector<i64>& refs = *refs_out[b];
    refs.resize(batches[b].size());
    for (std::size_t i = 0; i < refs.size(); ++i) {
      const i64 v =
          ws.loc_val_[static_cast<std::size_t>(ws.pos_ids_[cursor++])];
      refs[i] = v;
      off_process_refs += static_cast<i64>(v >= nlocal);
    }
  }
  // Hash construction + lookups: ~2 memory ops per off-process reference,
  // plus one translate touch per reference — the historical dedup model.
  p.clock().charge_ops(static_cast<i64>(total) + 2 * off_process_refs,
                       p.params().mem_us_per_word);

  // Phase 5: exchange request lists; what arrives is my send side, built
  // directly in CSR form through the shared exchange (counts alltoall + one
  // flat payload alltoallv — no nested vectors anywhere).
  exchange_csr<i64>(p, ws.req_local_, schedule.recv_offsets,
                    schedule.send_indices, schedule.send_offsets,
                    ws.counts_scratch_);
  schedule.nghost = total_ghost;
  schedule.nlocal_at_build = nlocal;
  // Always-on structural validation of the freshly built plan: a peer
  // requesting an element outside my segment (or a broken prefix) surfaces
  // here as a typed ScheduleInvalid instead of UB in the executor.
  schedule.validate_or_throw("inspector");
  // The attempt is known-good: publish this localize's staged cache
  // insertions (no-op without a cache or when everything hit).
  if (cache != nullptr) cache->commit_staged();
}

}  // namespace detail

Localized localize(rt::Process& p, const dist::Distribution& d,
                   std::span<const i64> global_refs) {
  InspectorWorkspace ws;
  Localized out;
  localize(p, d, global_refs, ws, out);
  return out;
}

LocalizedMany localize_many(rt::Process& p, const dist::Distribution& d,
                            std::span<const std::span<const i64>> batches) {
  InspectorWorkspace ws;
  LocalizedMany out;
  localize_many(p, d, batches, ws, out);
  return out;
}

void localize(rt::Process& p, const dist::Distribution& d,
              std::span<const i64> global_refs, InspectorWorkspace& ws,
              Localized& out) {
  const std::span<const i64> one[] = {global_refs};
  std::vector<i64>* const refs_out[] = {&out.refs};
  detail::localize_into(p, d, one, refs_out, out.schedule,
                        out.off_process_refs, ws);
}

void localize_many(rt::Process& p, const dist::Distribution& d,
                   std::span<const std::span<const i64>> batches,
                   InspectorWorkspace& ws, LocalizedMany& out) {
  out.refs.resize(batches.size());
  ws.refs_ptrs_.resize(batches.size());
  for (std::size_t b = 0; b < batches.size(); ++b) {
    ws.refs_ptrs_[b] = &out.refs[b];
  }
  detail::localize_into(p, d, batches, ws.refs_ptrs_, out.schedule,
                        out.off_process_refs, ws);
}

}  // namespace chaos::core
