#include "core/inspector.hpp"

#include <unordered_map>

#include "rt/collectives.hpp"

namespace chaos::core {

namespace {

/// Key for the duplicate-removal hash: (owner, remote local index).
/// splitmix64 finalization — full avalanche, so sequential local indices
/// (the common case after a remap) spread across buckets instead of
/// clustering in one probe chain.
struct PairHash {
  std::size_t operator()(const std::pair<i32, i64>& k) const {
    return static_cast<std::size_t>(dist::detail::mix64(
        (static_cast<u64>(static_cast<u32>(k.first)) << 40) ^
        static_cast<u64>(k.second)));
  }
};

LocalizedMany localize_impl(rt::Process& p, const dist::Distribution& d,
                            std::span<const std::span<const i64>> batches) {
  LocalizedMany out;
  out.refs.resize(batches.size());

  // Phase 1: translate every reference (one batched table dereference).
  std::size_t total = 0;
  for (const auto& b : batches) total += b.size();
  std::vector<i64> flat;
  flat.reserve(total);
  for (const auto& b : batches) flat.insert(flat.end(), b.begin(), b.end());
  const auto entries = d.locate(p, flat);

  // Phase 2: split into owned / off-process; hash-dedup the off-process
  // references and assign each distinct one a per-owner ordinal.
  const i64 nlocal = d.my_local_size();
  std::unordered_map<std::pair<i32, i64>, i64, PairHash> ordinal_of;
  // Sizing both tables to the batch up front removes every rehash/realloc
  // from the dedup loop (worst case: all references off-process, distinct).
  ordinal_of.reserve(total);
  std::vector<std::vector<i64>> requests(static_cast<std::size_t>(p.nprocs()));
  struct Pending {
    std::size_t batch;
    std::size_t pos;
    i32 owner;
    i64 ordinal;
  };
  std::vector<Pending> pending;
  pending.reserve(total);

  std::size_t cursor = 0;
  for (std::size_t b = 0; b < batches.size(); ++b) {
    out.refs[b].resize(batches[b].size());
    for (std::size_t i = 0; i < batches[b].size(); ++i, ++cursor) {
      const auto& e = entries[cursor];
      if (e.proc == p.rank()) {
        out.refs[b][i] = e.local;
        continue;
      }
      ++out.off_process_refs;
      auto [it, inserted] = ordinal_of.try_emplace(
          {e.proc, e.local},
          static_cast<i64>(requests[static_cast<std::size_t>(e.proc)].size()));
      if (inserted) {
        requests[static_cast<std::size_t>(e.proc)].push_back(e.local);
      }
      pending.push_back(Pending{b, i, e.proc, it->second});
    }
  }
  // Hash construction + lookups: ~2 memory ops per off-process reference.
  p.clock().charge_ops(static_cast<i64>(total) +
                           2 * out.off_process_refs,
                       p.params().mem_us_per_word);

  // Phase 3: ghost slots are per-owner contiguous, owners ascending — the
  // prefix over my request counts IS the schedule's receive-side CSR.
  std::vector<i64> recv_offsets(static_cast<std::size_t>(p.nprocs()) + 1, 0);
  for (int r = 0; r < p.nprocs(); ++r) {
    recv_offsets[static_cast<std::size_t>(r) + 1] =
        recv_offsets[static_cast<std::size_t>(r)] +
        static_cast<i64>(requests[static_cast<std::size_t>(r)].size());
  }
  for (const auto& pe : pending) {
    out.refs[pe.batch][pe.pos] =
        nlocal + recv_offsets[static_cast<std::size_t>(pe.owner)] + pe.ordinal;
  }

  // Phase 4: exchange request lists; what arrives is my send side, built
  // directly in CSR form with exact pre-sized allocations. First a counts
  // exchange fixes the send-side prefix, then one flat exchange fills the
  // flat index array — no nested vectors anywhere.
  std::vector<i64> req_counts(static_cast<std::size_t>(p.nprocs()));
  for (int r = 0; r < p.nprocs(); ++r) {
    req_counts[static_cast<std::size_t>(r)] =
        recv_offsets[static_cast<std::size_t>(r) + 1] -
        recv_offsets[static_cast<std::size_t>(r)];
  }
  std::vector<i64> send_counts(static_cast<std::size_t>(p.nprocs()));
  rt::alltoall<i64>(p, req_counts, send_counts);

  std::vector<i64> send_offsets(static_cast<std::size_t>(p.nprocs()) + 1, 0);
  for (int r = 0; r < p.nprocs(); ++r) {
    send_offsets[static_cast<std::size_t>(r) + 1] =
        send_offsets[static_cast<std::size_t>(r)] +
        send_counts[static_cast<std::size_t>(r)];
  }

  const i64 total_ghost = recv_offsets[static_cast<std::size_t>(p.nprocs())];
  std::vector<i64> flat_requests;
  flat_requests.reserve(static_cast<std::size_t>(total_ghost));
  for (const auto& r : requests) {
    flat_requests.insert(flat_requests.end(), r.begin(), r.end());
  }
  std::vector<i64> send_indices(static_cast<std::size_t>(
      send_offsets[static_cast<std::size_t>(p.nprocs())]));
  rt::alltoallv_flat<i64>(p, flat_requests, recv_offsets, send_indices,
                          send_offsets);

  out.schedule.send_indices = std::move(send_indices);
  out.schedule.send_offsets = std::move(send_offsets);
  out.schedule.recv_offsets = std::move(recv_offsets);
  out.schedule.nghost = total_ghost;
  out.schedule.nlocal_at_build = nlocal;
  CHAOS_CHECK(out.schedule.validate(),
              "inspector: peer requested an element I do not own");
  return out;
}

}  // namespace

Localized localize(rt::Process& p, const dist::Distribution& d,
                   std::span<const i64> global_refs) {
  const std::span<const i64> one[] = {global_refs};
  auto many = localize_impl(p, d, one);
  Localized out;
  out.refs = std::move(many.refs[0]);
  out.schedule = std::move(many.schedule);
  out.off_process_refs = many.off_process_refs;
  return out;
}

LocalizedMany localize_many(rt::Process& p, const dist::Distribution& d,
                            std::span<const std::span<const i64>> batches) {
  return localize_impl(p, d, batches);
}

}  // namespace chaos::core
