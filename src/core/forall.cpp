#include "core/forall.hpp"

namespace chaos::core {

std::shared_ptr<EdgeLoopPlan> EdgeReductionLoop::inspect(
    rt::Process& p, const dist::Distribution& edge_dist,
    std::span<const i64> ept1, std::span<const i64> ept2,
    const dist::Distribution& data_dist, IterRule rule) {
  auto plan = std::make_shared<EdgeLoopPlan>();
  plan->build.begin_build();

  // Phase B: iteration partition from the references' homes.
  const std::span<const i64> batches[] = {ept1, ept2};
  plan->iters = partition_iterations(p, edge_dist, data_dist, batches, rule);

  // Phase C (iteration side): remap the indirection slices so each process
  // holds the endpoints of the iterations it will execute.
  plan->end1 = dist::apply_remap<i64>(p, plan->iters.remap, ept1);
  plan->end2 = dist::apply_remap<i64>(p, plan->iters.remap, ept2);

  // Phase D: localize (dedup + translate + schedule) through the plan's
  // workspace.
  const std::span<const i64> remapped[] = {plan->end1, plan->end2};
  localize_many(p, data_dist, remapped, plan->iws, plan->loc);
  plan->build.mark_built();
  return plan;
}

std::shared_ptr<SingleStatementPlan> SingleStatementLoop::inspect(
    rt::Process& p, const dist::Distribution& iter_dist,
    std::span<const i64> ia, std::span<const i64> ib, std::span<const i64> ic,
    const dist::Distribution& y_dist, const dist::Distribution& x_dist,
    IterRule rule) {
  auto plan = std::make_shared<SingleStatementPlan>();
  plan->build.begin_build();

  // Vote with every reference of the iteration: the LHS against y's
  // distribution contributes one vote, the RHS references against x's.
  // When x and y are aligned (the common case) this is exactly the paper's
  // most-local-references rule over all three references.
  const std::span<const i64> batches[] = {ia, ib, ic};
  plan->iters = partition_iterations(p, iter_dist, x_dist, batches, rule);

  plan->ia = dist::apply_remap<i64>(p, plan->iters.remap, ia);
  plan->ib = dist::apply_remap<i64>(p, plan->iters.remap, ib);
  plan->ic = dist::apply_remap<i64>(p, plan->iters.remap, ic);

  localize(p, y_dist, plan->ia, plan->lhs_iws, plan->lhs);
  const std::span<const i64> rhs[] = {plan->ib, plan->ic};
  localize_many(p, x_dist, rhs, plan->iws, plan->rhs);
  plan->build.mark_built();
  return plan;
}

}  // namespace chaos::core
