#include "core/forall.hpp"

namespace chaos::core {

namespace {

/// Diffs @p fresh against @p baseline into (pos, val) pairs — the sparse
/// input apply_remap_delta ships — then refreshes the baseline at the
/// changed positions only. Pure local; returns the local changed count.
i64 diff_slice(std::span<const i64> fresh, std::vector<i64>& baseline,
               std::vector<i64>& pos, std::vector<i64>& val) {
  pos.clear();
  val.clear();
  for (std::size_t i = 0; i < fresh.size(); ++i) {
    if (fresh[i] != baseline[i]) {
      pos.push_back(static_cast<i64>(i));
      val.push_back(fresh[i]);
      baseline[i] = fresh[i];
    }
  }
  return static_cast<i64>(pos.size());
}

}  // namespace

std::shared_ptr<EdgeLoopPlan> EdgeReductionLoop::inspect(
    rt::Process& p, const dist::Distribution& edge_dist,
    std::span<const i64> ept1, std::span<const i64> ept2,
    const dist::Distribution& data_dist, IterRule rule,
    const PlanOptions& opts) {
  auto plan = std::make_shared<EdgeLoopPlan>();
  plan->iws.configure(opts);
  plan->build.begin_build();

  // Phase B: iteration partition from the references' homes.
  const std::span<const i64> batches[] = {ept1, ept2};
  plan->iters = partition_iterations(p, edge_dist, data_dist, batches, rule);

  // Phase C (iteration side): remap the indirection slices so each process
  // holds the endpoints of the iterations it will execute.
  plan->end1 = dist::apply_remap<i64>(p, plan->iters.remap, ept1);
  plan->end2 = dist::apply_remap<i64>(p, plan->iters.remap, ept2);
  plan->src1.assign(ept1.begin(), ept1.end());
  plan->src2.assign(ept2.begin(), ept2.end());

  // Phase D: localize (dedup + translate + schedule) through the plan's
  // workspace; the snapshot is the baseline the next repair diffs against.
  const std::span<const i64> remapped[] = {plan->end1, plan->end2};
  localize_many(p, data_dist, remapped, plan->iws, plan->loc);
  plan->iws.capture(plan->snap);
  plan->build.mark_built();
  return plan;
}

bool EdgeReductionLoop::repair(rt::Process& p, EdgeLoopPlan& plan,
                               std::span<const i64> ept1,
                               std::span<const i64> ept2,
                               const dist::Distribution& data_dist) {
  // Hard eligibility, voted BEFORE any mutation so every rank takes the
  // same path and an ineligible plan is left untouched (and still ready).
  const bool ok =
      plan.build.ready() && plan.options().repair_enabled() &&
      static_cast<i64>(ept1.size()) == plan.iters.remap.nlocal_from &&
      ept1.size() == plan.src1.size() && ept2.size() == plan.src2.size();
  if (rt::allreduce_max(p, ok ? i64{0} : i64{1}) != 0) {
    ++p.stats().repair_fallbacks;
    return false;
  }

  // From here the plan mutates: not-ready until the splice lands, so a
  // voted-out or thrown-through attempt forces a full re-inspect instead of
  // executing half-updated state (DESIGN.md §11).
  plan.build.begin_build();

  // Phase C': ship only the CHANGED endpoints through the remap.
  diff_slice(ept1, plan.src1, plan.delta_pos, plan.delta_val);
  dist::apply_remap_delta(p, plan.iters.remap, plan.delta_pos, plan.delta_val,
                          plan.end1, plan.remap_ws);
  diff_slice(ept2, plan.src2, plan.delta_pos, plan.delta_val);
  dist::apply_remap_delta(p, plan.iters.remap, plan.delta_pos, plan.delta_val,
                          plan.end2, plan.remap_ws);
  // The diff scan touches every slice element once.
  p.clock().charge_ops(static_cast<i64>(ept1.size() + ept2.size()),
                       p.params().mem_us_per_word);

  // Phase D': splice the schedule for the delta.
  const std::span<const i64> remapped[] = {plan.end1, plan.end2};
  if (!repair_localize_many(p, data_dist, remapped, plan.iws, plan.snap,
                            plan.loc)) {
    return false;
  }
  plan.iws.capture(plan.snap);
  plan.build.mark_built();
  return true;
}

std::shared_ptr<SingleStatementPlan> SingleStatementLoop::inspect(
    rt::Process& p, const dist::Distribution& iter_dist,
    std::span<const i64> ia, std::span<const i64> ib, std::span<const i64> ic,
    const dist::Distribution& y_dist, const dist::Distribution& x_dist,
    IterRule rule, const PlanOptions& opts) {
  auto plan = std::make_shared<SingleStatementPlan>();
  plan->iws.configure(opts);
  plan->lhs_iws.configure(opts);
  plan->build.begin_build();

  // Vote with every reference of the iteration: the LHS against y's
  // distribution contributes one vote, the RHS references against x's.
  // When x and y are aligned (the common case) this is exactly the paper's
  // most-local-references rule over all three references.
  const std::span<const i64> batches[] = {ia, ib, ic};
  plan->iters = partition_iterations(p, iter_dist, x_dist, batches, rule);

  plan->ia = dist::apply_remap<i64>(p, plan->iters.remap, ia);
  plan->ib = dist::apply_remap<i64>(p, plan->iters.remap, ib);
  plan->ic = dist::apply_remap<i64>(p, plan->iters.remap, ic);
  plan->src_ia.assign(ia.begin(), ia.end());
  plan->src_ib.assign(ib.begin(), ib.end());
  plan->src_ic.assign(ic.begin(), ic.end());

  localize(p, y_dist, plan->ia, plan->lhs_iws, plan->lhs);
  plan->lhs_iws.capture(plan->lhs_snap);
  const std::span<const i64> rhs[] = {plan->ib, plan->ic};
  localize_many(p, x_dist, rhs, plan->iws, plan->rhs);
  plan->iws.capture(plan->rhs_snap);
  plan->build.mark_built();
  return plan;
}

bool SingleStatementLoop::repair(rt::Process& p, SingleStatementPlan& plan,
                                 std::span<const i64> ia,
                                 std::span<const i64> ib,
                                 std::span<const i64> ic,
                                 const dist::Distribution& y_dist,
                                 const dist::Distribution& x_dist) {
  const bool ok =
      plan.build.ready() && plan.options().repair_enabled() &&
      static_cast<i64>(ia.size()) == plan.iters.remap.nlocal_from &&
      ia.size() == plan.src_ia.size() && ib.size() == plan.src_ib.size() &&
      ic.size() == plan.src_ic.size();
  if (rt::allreduce_max(p, ok ? i64{0} : i64{1}) != 0) {
    ++p.stats().repair_fallbacks;
    return false;
  }

  plan.build.begin_build();

  diff_slice(ia, plan.src_ia, plan.delta_pos, plan.delta_val);
  dist::apply_remap_delta(p, plan.iters.remap, plan.delta_pos, plan.delta_val,
                          plan.ia, plan.remap_ws);
  diff_slice(ib, plan.src_ib, plan.delta_pos, plan.delta_val);
  dist::apply_remap_delta(p, plan.iters.remap, plan.delta_pos, plan.delta_val,
                          plan.ib, plan.remap_ws);
  diff_slice(ic, plan.src_ic, plan.delta_pos, plan.delta_val);
  dist::apply_remap_delta(p, plan.iters.remap, plan.delta_pos, plan.delta_val,
                          plan.ic, plan.remap_ws);
  p.clock().charge_ops(static_cast<i64>(ia.size() + ib.size() + ic.size()),
                       p.params().mem_us_per_word);

  if (!repair_localize(p, y_dist, plan.ia, plan.lhs_iws, plan.lhs_snap,
                       plan.lhs)) {
    return false;
  }
  plan.lhs_iws.capture(plan.lhs_snap);
  const std::span<const i64> rhs[] = {plan.ib, plan.ic};
  if (!repair_localize_many(p, x_dist, rhs, plan.iws, plan.rhs_snap,
                            plan.rhs)) {
    return false;
  }
  plan.iws.capture(plan.rhs_snap);
  plan.build.mark_built();
  return true;
}

}  // namespace chaos::core
