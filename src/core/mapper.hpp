// The mapper coupler (Section 4.2): implements
//
//   C$ SET distfmt BY PARTITIONING G USING <partitioner>
//   C$ REDISTRIBUTE reg(distfmt)
//
// SET hands the GeoCoL to a registry-selected partitioner and converts the
// resulting part assignment into an IRREGULAR distribution. REDISTRIBUTE is
// dist::build_remap + DistributedArray::redistribute with one shared plan,
// and the reuse registry is told that the remapped arrays have new DADs.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/geocol.hpp"
#include "core/reuse.hpp"
#include "dist/darray.hpp"
#include "partition/partitioner.hpp"

namespace chaos::core {

/// Collective: partitions @p g into p.nprocs() parts with the named
/// partitioner and returns the corresponding IRREGULAR distribution over the
/// GeoCoL's vertex set (part id == owning process — the paper's map array).
[[nodiscard]] std::shared_ptr<const dist::Distribution> set_by_partitioning(
    rt::Process& p, const GeoCol& g, const std::string& partitioner,
    i64 page_size = 4096);

/// REDISTRIBUTE: moves every added array onto the target distribution with
/// one shared remap plan. All added arrays must share the source
/// distribution (be "aligned" in Fortran D terms).
class Redistributor {
 public:
  explicit Redistributor(ReuseRegistry* registry = nullptr)
      : registry_(registry) {}

  Redistributor& add(dist::DistributedArray<f64>& a) {
    arrays_f64_.push_back(&a);
    return *this;
  }
  Redistributor& add(dist::DistributedArray<i64>& a) {
    arrays_i64_.push_back(&a);
    return *this;
  }

  /// Collective: applies the redistribution and notes the remap in the
  /// reuse registry (new DAD, bumped nmod) if one was attached.
  void apply(rt::Process& p, std::shared_ptr<const dist::Distribution> to);

 private:
  ReuseRegistry* registry_;
  std::vector<dist::DistributedArray<f64>*> arrays_f64_;
  std::vector<dist::DistributedArray<i64>*> arrays_i64_;
};

}  // namespace chaos::core
