#include "core/supervisor.hpp"

#include <chrono>
#include <thread>

namespace chaos::core {

Supervisor::Supervisor(rt::Machine& machine, rt::RetryPolicy policy)
    : machine_(&machine), policy_(policy) {
  CHAOS_CHECK(policy_.max_attempts >= 1,
              "supervisor: policy needs at least one attempt");
}

void Supervisor::run_phase(const char* phase_name,
                           const std::function<void(rt::Process&)>& body) {
  (void)phase_name;
  int failed = 0;
  while (true) {
    ++stats_.attempts;
    try {
      machine_->run(body);
      ++stats_.phases;
      if (failed > 0) ++stats_.recoveries;
      return;
    } catch (...) {
      const std::exception_ptr error = std::current_exception();
      ++failed;
      // Always recover: even on the rethrow path the caller gets back a
      // certified-clean machine, and the drained-message count of every
      // failed attempt is recorded.
      stats_.messages_drained += machine_->recover();
      if (!rt::is_retryable(error) || failed >= policy_.max_attempts) {
        ++stats_.gave_up;
        std::rethrow_exception(error);
      }
      ++stats_.retries;
      const f64 ms = policy_.backoff_ms(failed);
      stats_.backoff_wall_ms += ms;
      if (ms > 0.0) {
        std::this_thread::sleep_for(
            std::chrono::duration<f64, std::milli>(ms));
      }
    }
  }
}

}  // namespace chaos::core
