#include "core/supervisor.hpp"

#include <chrono>
#include <sstream>
#include <thread>

namespace chaos::core {

namespace {

/// Builds the typed escalation for a phase whose retryable failure outlived
/// the retry budget: name the rank the evidence points at (the injected
/// fault's detonation rank, or the first rank a watchdog reported missing)
/// and the fault site if one is known.
[[noreturn]] void throw_permanent(const char* phase_name,
                                  const std::exception_ptr& error,
                                  int attempts) {
  int rank = -1;
  int site = -1;
  std::string cause = "unknown error";
  try {
    std::rethrow_exception(error);
  } catch (const FaultInjected& f) {
    rank = f.rank;
    site = f.site;
    cause = f.what();
  } catch (const MachineTimeout& t) {
    if (!t.missing_ranks.empty()) rank = t.missing_ranks.front();
    cause = t.what();
  } catch (const std::exception& e) {
    cause = e.what();
  } catch (...) {
  }
  std::ostringstream os;
  os << "permanent fault: phase '" << phase_name << "' failed " << attempts
     << " attempt" << (attempts == 1 ? "" : "s") << "; classifying rank "
     << rank << " as permanently dead (last error: " << cause << ")";
  throw PermanentFault(os.str(), rank, site);
}

}  // namespace

Supervisor::Supervisor(rt::Machine& machine, rt::RetryPolicy policy)
    : machine_(&machine), policy_(policy) {
  CHAOS_CHECK(policy_.max_attempts >= 1,
              "supervisor: policy needs at least one attempt");
}

void Supervisor::run_phase(const char* phase_name,
                           const std::function<void(rt::Process&)>& body) {
  int failed = 0;
  while (true) {
    ++stats_.attempts;
    try {
      machine_->run(body);
      ++stats_.phases;
      if (failed > 0) ++stats_.recoveries;
      return;
    } catch (...) {
      const std::exception_ptr error = std::current_exception();
      ++failed;
      // Always recover: even on the escalation path the caller gets back a
      // certified-clean machine, and both the drained-message total and the
      // per-shard topology of every failed attempt are recorded.
      const rt::RecoverReport report = machine_->recover_report();
      stats_.messages_drained += report.messages_drained;
      stats_.dirty_shards += static_cast<i64>(report.dirty_shards.size());
      if (!report.dirty_shards.empty()) {
        last_dirty_shards_ = report.dirty_shards;
      }
      if (!rt::is_retryable(error)) {
        // Deterministic breakage (CHAOS_CHECK, logic bug) — no rank to
        // blame, nothing to degrade. Rethrown untyped, as before.
        ++stats_.gave_up;
        std::rethrow_exception(error);
      }
      if (failed >= policy_.max_attempts) {
        // The retry budget falsified the transient hypothesis: escalate to
        // the typed permanent classification instead of a bare rethrow, so
        // the caller can shrink around the named rank (DESIGN.md §13).
        ++stats_.gave_up;
        throw_permanent(phase_name, error, failed);
      }
      ++stats_.retries;
      const f64 ms = policy_.backoff_ms(failed);
      stats_.backoff_wall_ms += ms;
      if (ms > 0.0) {
        std::this_thread::sleep_for(
            std::chrono::duration<f64, std::milli>(ms));
      }
    }
  }
}

}  // namespace chaos::core
