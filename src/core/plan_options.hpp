// Unified plan-construction options (the PR-10 API consolidation). Five PRs
// of opt-in knobs — flat locate, persistent translation caches, and now the
// incremental schedule-repair path — accreted as scattered setters on
// workspaces, plans, and pipeline configs. PlanOptions is the single struct
// every plan-construction surface consumes: core::EdgeLoopPlan /
// SingleStatementPlan inspectors, the lang Instance, and
// bench::PipelineConfig all take one of these; the legacy setters
// (InspectorWorkspace::set_flat_locate / attach_cache,
// Instance::set_flat_locate, PipelineConfig::translation_cache) survive as
// thin deprecated forwarders into it.
#pragma once

#include "rt/types.hpp"

namespace chaos::dist {
class TranslationCache;
}  // namespace chaos::dist

namespace chaos::core {

/// Incremental schedule repair policy (DESIGN.md §14).
enum class RepairMode : u8 {
  /// Attempt a delta splice when a cached plan fails only the last_mod
  /// stamp check (DADs unchanged), falling back to full re-inspection when
  /// the voted delta fraction exceeds repair_threshold.
  Auto = 0,
  /// Always splice an eligible plan, whatever the delta fraction (the
  /// threshold fallback is disabled; hard ineligibility — a fresh DAD
  /// incarnation or a changed local segment — still forces a rebuild).
  On,
  /// Never attempt repair: every stale plan pays a full re-inspection.
  Off,
};

[[nodiscard]] constexpr const char* to_string(RepairMode m) {
  switch (m) {
    case RepairMode::Auto: return "auto";
    case RepairMode::On: return "on";
    case RepairMode::Off: return "off";
  }
  return "?";
}

/// The one configuration struct for plan construction. Value semantics; the
/// translation cache is a non-owning attach (SPMD discipline: every rank of
/// the machine passes a cache or none, see InspectorWorkspace::attach_cache).
struct PlanOptions {
  /// Flat (paged) translation-lookup protocol for IRREGULAR locate rounds
  /// (Distribution::locate_flat_into). Off by default so library modeled
  /// times stay bit-identical; the bench pipelines flip it on.
  bool flat_locate = false;
  /// Persistent dist::TranslationCache attached to the plan's inspector
  /// workspace(s); nullptr = no cache.
  dist::TranslationCache* translation_cache = nullptr;
  /// Incremental schedule repair policy (DESIGN.md §14).
  RepairMode repair = RepairMode::Auto;
  /// Auto-mode fallback threshold: the machine-max delta fraction
  /// (novel + departed distinct globals over the new distinct count) above
  /// which a splice stops paying off and the plan is rebuilt instead.
  f64 repair_threshold = 0.5;

  [[nodiscard]] bool repair_enabled() const {
    return repair != RepairMode::Off;
  }
  /// The threshold the repair vote actually compares against: Auto uses the
  /// configured fraction, On never falls back on size, Off never repairs.
  [[nodiscard]] f64 effective_threshold() const {
    switch (repair) {
      case RepairMode::Auto: return repair_threshold;
      case RepairMode::On: return 1e300;  // any finite delta splices
      case RepairMode::Off: return -1.0;
    }
    return repair_threshold;
  }
};

}  // namespace chaos::core
