// Deterministic fault injection for the rt/ substrate (DESIGN.md §10).
//
// A FaultPlan is a seeded, immutable-once-installed list of FaultSpecs; the
// Machine carries an atomic pointer to at most one plan. Every named
// injection site in the runtime calls Machine::inject_point, which is a
// single relaxed pointer load plus a null test when no plan is installed —
// the modeled virtual clocks are untouched in every configuration (faults
// burn wall-clock, never modeled time), so all existing benches stay
// byte-identical whether or not a plan is armed (gated by ablation_faults).
//
// Determinism: a site fires on the Nth visit of a given rank to that site.
// Visit sequences are program-order facts of the SPMD body, so the same
// (body, plan, seed) always detonates at the same instruction; the only
// randomness is the seeded delay duration, derived from splitmix64(seed,
// site, rank) — identical across runs and hosts.
#pragma once

#include <atomic>
#include <vector>

#include "rt/types.hpp"

namespace chaos::rt {

class Machine;

/// The named instrumentation points of the substrate. Each is visited by
/// exactly one rank per call (the rank passed to inject_point).
enum class FaultSite : u8 {
  BarrierArrive = 0,   ///< Machine::barrier_reduce_max entry (every phase)
  BlackboardPublish,   ///< detail::bb_publish_ptr (pointer-mode collectives)
  MailboxPut,          ///< Process::send, before the mailbox deposit
  MailboxRecv,         ///< Process::recv/recv_deadline, before the take
  Alltoall,            ///< rt::alltoall entry (the counts round)
  AlltoallvFlat,       ///< rt::alltoallv_flat entry (the payload round)
};
inline constexpr int kFaultSiteCount = 6;
[[nodiscard]] const char* fault_site_name(FaultSite site);

enum class FaultKind : u8 {
  Throw = 0,  ///< throw FaultInjected at the site
  Delay,      ///< sleep wall-clock ms at the site, then continue
  AllocFail,  ///< fail the next allocation at the site (std::bad_alloc)
  Stall,      ///< never return: park until the machine is poisoned
  Permanent,  ///< throw FaultInjected on EVERY visit from nth_visit onward —
              ///< the rank is broken for good; retry cannot outrun it and a
              ///< supervisor must escalate to chaos::PermanentFault
};
inline constexpr int kFaultKindCount = 5;
[[nodiscard]] const char* fault_kind_name(FaultKind kind);

/// One armed fault: fire @p kind when @p rank makes its @p nth_visit-th
/// visit to @p site (Permanent: every visit from the nth onward). rank -1
/// arms every rank (each fires on its own Nth visit). delay_ms <= 0 asks
/// Delay for a seeded duration in [0.5, 2) ms.
struct FaultSpec {
  FaultSite site = FaultSite::BarrierArrive;
  FaultKind kind = FaultKind::Throw;
  int rank = -1;
  u64 nth_visit = 1;
  f64 delay_ms = 0.0;
};

/// Seeded, deterministic fault schedule. Thread-safe for concurrent
/// inject_point calls from all ranks (per-(site,rank) atomic visit
/// counters); add() must not race a running SPMD body — build the plan,
/// install it, then run.
class FaultPlan {
 public:
  explicit FaultPlan(int nprocs, u64 seed = 0x9e3779b97f4a7c15ull);

  FaultPlan& add(const FaultSpec& spec);

  /// Counts the visit and fires every matching spec. Called by
  /// Machine::inject_point only when this plan is installed. May throw
  /// (Throw/AllocFail), sleep (Delay), or block until poison (Stall).
  /// AllocFail specs only ARM during the spec loop; the allocator probe
  /// runs once at the end of the visit under a scope guard that disarms
  /// the thread-local flag on every exit — a Throw firing at the same
  /// visit can never leak an armed AllocFail into later allocations.
  void on_visit(Machine& m, FaultSite site, int rank);

  /// Clears visit counters and the fired tally (not the specs); makes one
  /// plan reusable across back-to-back Machine::run calls.
  void reset();

  [[nodiscard]] i64 fired() const {
    return fired_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] u64 visits(FaultSite site, int rank) const;
  [[nodiscard]] int nprocs() const { return nprocs_; }
  [[nodiscard]] u64 seed() const { return seed_; }

 private:
  /// Per-rank visit counters for all sites, padded so two ranks' counters
  /// never share a cache line (the sweep hammers these from every rank).
  struct alignas(64) RankVisits {
    std::atomic<u64> per_site[kFaultSiteCount];
  };

  void fire(Machine& m, const FaultSpec& spec, int rank, u64 visit);

  int nprocs_;
  u64 seed_;
  std::vector<FaultSpec> specs_;
  std::vector<RankVisits> visits_;
  std::atomic<i64> fired_{0};
};

/// True while an AllocFail fault is armed on this thread. A test binary may
/// hook global operator new (the ablation-bench counting hook, PR 5) and
/// consume the flag to throw std::bad_alloc from the allocator itself; if
/// nothing consumes it, the injection site throws bad_alloc directly.
[[nodiscard]] bool fault_alloc_fail_armed();
/// Consumes the armed flag; returns whether it was set.
[[nodiscard]] bool fault_consume_alloc_fail();

}  // namespace chaos::rt
