// The virtual distributed-memory machine. Machine::run launches P logical
// SPMD processes (one std::thread each); each receives a Process& handle that
// exposes rank/size, typed point-to-point messaging, a shared blackboard used
// by the collective templates in rt/collectives.hpp, a VirtualClock, and
// traffic statistics. This substrate substitutes for the paper's Intel
// iPSC/860 hypercube (DESIGN.md §2).
#pragma once

#include <algorithm>
#include <cstring>
#include <functional>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

#include "rt/cost_model.hpp"
#include "rt/mailbox.hpp"
#include "rt/stats.hpp"
#include "rt/types.hpp"

namespace chaos::rt {

class Process;

/// Owns the shared state of one SPMD execution: mailboxes, the central
/// barrier, blackboard slots for collectives, and cost parameters.
class Machine {
 public:
  explicit Machine(int nprocs, CostParams params = {});
  ~Machine();

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  /// Runs @p body as rank 0..nprocs-1 concurrently; returns when all ranks
  /// finish. The first exception thrown by any rank is rethrown here (other
  /// ranks may deadlock in that case, so the machine releases them via a
  /// poisoned barrier).
  void run(const std::function<void(Process&)>& body);

  /// One-shot convenience: construct, run, tear down.
  static void run(int nprocs, const std::function<void(Process&)>& body,
                  CostParams params = {});

  [[nodiscard]] int nprocs() const { return nprocs_; }
  [[nodiscard]] const CostParams& params() const { return params_; }

  /// Aggregated per-process statistics of the last run().
  [[nodiscard]] MessageStats total_stats() const;
  [[nodiscard]] const MessageStats& stats_of(int rank) const;
  /// Maximum virtual time over all processes at the end of the last run().
  [[nodiscard]] f64 max_virtual_time_us() const;

  // --- internals shared with Process / collectives -------------------------

  /// Central sense-reversing barrier over all logical processes.
  void barrier_wait();

  /// Blackboard: a per-rank pointer slot published between two barriers.
  void bb_put(int rank, const void* p) { bb_slots_[rank] = p; }
  [[nodiscard]] const void* bb_get(int rank) const { return bb_slots_[rank]; }

  /// Per-rank double slot (used for virtual-clock max-synchronization).
  void clock_put(int rank, f64 v) { clock_slots_[rank] = v; }
  [[nodiscard]] f64 clock_get(int rank) const { return clock_slots_[rank]; }

  /// Max over all published clock slots. Collectives call this once per
  /// superstep between barriers instead of each scanning the slots in their
  /// own loop.
  [[nodiscard]] f64 clock_slot_max() const {
    f64 m = 0.0;
    for (f64 v : clock_slots_) m = std::max(m, v);
    return m;
  }

  Mailbox& mailbox(int rank) { return *mailboxes_[rank]; }

  /// Monotonic counter advanced collectively (rank 0 bumps, all observe);
  /// used to mint machine-wide unique ids such as DAD incarnations.
  u64 bump_counter() { return ++counter_; }

 private:
  int nprocs_;
  CostParams params_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::vector<const void*> bb_slots_;
  std::vector<f64> clock_slots_;
  std::vector<MessageStats> stats_;
  std::vector<f64> final_clock_us_;
  u64 counter_ = 0;

  // Sense-reversing barrier state.
  std::mutex barrier_mutex_;
  std::condition_variable barrier_cv_;
  int barrier_arrived_ = 0;
  bool barrier_sense_ = false;
  bool poisoned_ = false;

  friend class Process;
};

/// Per-rank handle passed to SPMD bodies. Not thread-safe across ranks; each
/// rank uses only its own Process.
class Process {
 public:
  Process(Machine& machine, int rank)
      : machine_(&machine), rank_(rank) {}

  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int nprocs() const { return machine_->nprocs(); }
  [[nodiscard]] bool is_root() const { return rank_ == 0; }
  [[nodiscard]] Machine& machine() { return *machine_; }
  [[nodiscard]] const CostParams& params() const { return machine_->params(); }

  VirtualClock& clock() { return clock_; }
  [[nodiscard]] const VirtualClock& clock() const { return clock_; }
  MessageStats& stats() { return stats_; }

  /// Sends @p data to @p dest with matching @p tag. T must be trivially
  /// copyable (messages cross logical address spaces by value).
  template <typename T>
  void send(int dest, int tag, std::span<const T> data) {
    static_assert(std::is_trivially_copyable_v<T>);
    CHAOS_CHECK(dest >= 0 && dest < nprocs(), "send: bad destination rank");
    const i64 bytes = static_cast<i64>(data.size_bytes());
    clock_.charge(params().send_us(bytes));
    stats_.note_send(bytes);
    RawMessage msg;
    msg.source = rank_;
    msg.tag = tag;
    msg.ready_time_us = clock_.now_us();
    msg.payload.resize(data.size_bytes());
    if (!data.empty()) {
      std::memcpy(msg.payload.data(), data.data(), data.size_bytes());
    }
    machine_->mailbox(dest).put(std::move(msg));
  }

  template <typename T>
  void send_value(int dest, int tag, const T& value) {
    send<T>(dest, tag, std::span<const T>(&value, 1));
  }

  /// Blocking matched receive of a whole message from @p source.
  template <typename T>
  std::vector<T> recv(int source, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    CHAOS_CHECK(source >= 0 && source < nprocs(), "recv: bad source rank");
    RawMessage msg = machine_->mailbox(rank_).take(source, tag);
    CHAOS_CHECK(msg.payload.size() % sizeof(T) == 0,
                "recv: payload size does not match element type");
    const i64 bytes = static_cast<i64>(msg.payload.size());
    clock_.advance_to(msg.ready_time_us);
    clock_.charge(params().recv_us(bytes));
    stats_.note_recv(bytes);
    std::vector<T> out(msg.payload.size() / sizeof(T));
    if (!out.empty()) {
      std::memcpy(out.data(), msg.payload.data(), msg.payload.size());
    }
    return out;
  }

  template <typename T>
  T recv_value(int source, int tag) {
    auto v = recv<T>(source, tag);
    CHAOS_CHECK(v.size() == 1, "recv_value: expected single-element message");
    return v.front();
  }

  /// Raw synchronization barrier with no clock charge (building block for
  /// the collectives; user code should call collectives::barrier instead).
  void barrier_sync_only() {
    ++stats_.barriers;
    machine_->barrier_wait();
  }

 private:
  Machine* machine_;
  int rank_;
  VirtualClock clock_;
  MessageStats stats_;
};

}  // namespace chaos::rt
