// The virtual distributed-memory machine. A Machine owns a persistent pool
// of parked worker threads (one per logical process beyond rank 0);
// Machine::run dispatches the SPMD body into the pool and executes rank 0
// inline, so back-to-back runs reuse the same threads instead of paying a
// spawn/join per call. Each rank receives a Process& handle that exposes
// rank/size, typed point-to-point messaging, a parity double-buffered
// blackboard used by the collective templates in rt/collectives.hpp, a
// VirtualClock, and traffic statistics. Synchronization is an atomics-based
// combining barrier with the virtual-clock max-reduction fused into its
// arrival fold — no mutex anywhere on the fast path, spin-then-yield-then-
// futex waiting, and a single one-word release broadcast per pass. This
// substrate substitutes for the paper's Intel iPSC/860 hypercube
// (DESIGN.md §2, §7).
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstring>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <type_traits>
#include <vector>

#include "rt/cost_model.hpp"
#include "rt/fault.hpp"
#include "rt/mailbox.hpp"
#include "rt/stats.hpp"
#include "rt/types.hpp"

namespace chaos::rt {

class Process;

/// One dirty mailbox shard found by Machine::recover_report: @p messages
/// undelivered messages from @p source were still queued at @p dest when the
/// failed run was cleaned up.
struct ShardDrain {
  int dest = -1;
  int source = -1;
  i64 messages = 0;
};

/// What Machine::recover_report swept up after a failed run. A clean run
/// leaves dirty_shards empty; the table benches assert exactly that.
struct RecoverReport {
  i64 messages_drained = 0;        ///< total undelivered messages dropped
  std::vector<ShardDrain> dirty_shards;  ///< every nonempty (dest, source)
};

/// Owns the shared state of one SPMD execution: the worker pool, mailboxes,
/// the combining barrier, blackboard slots for collectives, and cost
/// parameters. Reusable: run() may be called any number of times; stats,
/// clocks, poison state, and mailboxes are reset between runs.
class Machine {
 public:
  explicit Machine(int nprocs, CostParams params = {});
  ~Machine();

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  /// Runs @p body as rank 0..nprocs-1 concurrently; returns when all ranks
  /// finish. The first exception thrown by any rank is rethrown here; the
  /// machine poisons the barrier AND every mailbox, so ranks blocked in
  /// collectives or in recv are released with MachinePoisoned instead of
  /// deadlocking.
  void run(const std::function<void(Process&)>& body);

  /// One-shot convenience: construct, run, tear down.
  static void run(int nprocs, const std::function<void(Process&)>& body,
                  CostParams params = {});

  /// Restores a poisoned or timed-out machine to a runnable state: drains
  /// every mailbox shard (returning the number of undelivered in-flight
  /// messages dropped), resets barrier epochs, arrival cells, release words
  /// and blackboard bytes, and clears the poison flag plus the stored first
  /// error. Callable only between runs (workers parked). run() performs the
  /// same reset on entry, so recover() is about OBSERVABILITY and intent:
  /// a supervisor calls it to count what a failed attempt left behind and
  /// to certify the machine clean before retrying. It does NOT touch the
  /// installed fault plan, the deadline, the monotonic counter, or the
  /// previous run's stats/clocks (still readable for post-mortem until the
  /// next run()).
  i64 recover() { return recover_report().messages_drained; }

  /// As recover(), but returns the full per-shard breakdown: which
  /// (destination, source) mailbox shards were dirty and how many messages
  /// each held. recover()'s bare total silently hid the topology of a
  /// failure — a supervisor deciding whether a rank is dead wants to know
  /// WHO was mid-send to whom, and a clean-run bench wants to assert that
  /// no shard at all was dirty, not just that the sum was zero.
  RecoverReport recover_report();

  [[nodiscard]] int nprocs() const { return nprocs_; }

  // --- graceful degradation: the shrunken active-rank view -----------------

  /// Number of ranks the next run() will execute. Starts at nprocs() and is
  /// narrowed by shrink_to() after a permanent rank failure; every Process
  /// reports this as its nprocs(), so collectives, mailbox bounds checks,
  /// and barrier arithmetic all operate on the dense surviving set
  /// [0, active_nprocs) without reconstructing the machine.
  [[nodiscard]] int active_nprocs() const {
    return active_nprocs_.load(std::memory_order_relaxed);
  }

  /// Declares ranks [n, active_nprocs) dead: subsequent runs execute only
  /// the n survivors (their worker threads stay parked; dispatch wakes them
  /// and inactive ranks immediately report done). Callable only between
  /// runs. Survivor state (mailboxes, blackboard, barrier cells) is indexed
  /// by logical rank and the surviving set stays dense, so nothing is
  /// reallocated. Does NOT touch the installed fault plan — a plan keyed to
  /// the old logical rank numbering is the caller's to uninstall first (the
  /// degrade drivers do exactly that on PermanentFault).
  void shrink_to(int n);

  /// Undoes every shrink: the next run executes all nprocs() ranks again.
  /// For pooled machines that outlive one degraded pipeline.
  void restore_full_width();

  /// Machine-lifetime count of width-narrowing shrink_to() calls (never
  /// reset by run()); the robustness footers report it.
  [[nodiscard]] i64 shrink_count() const {
    return shrink_count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const CostParams& params() const { return params_; }

  /// Aggregated per-process statistics of the last run(), including the
  /// machine-level fault/timeout/poisoned-wait counters (DESIGN.md §10).
  [[nodiscard]] MessageStats total_stats() const;
  [[nodiscard]] const MessageStats& stats_of(int rank) const;
  /// Maximum virtual time over all processes at the end of the last run().
  [[nodiscard]] f64 max_virtual_time_us() const;

  // --- robustness: fault injection and deadlines ---------------------------

  /// Installs (or, with nullptr, removes) a fault plan. The plan must
  /// outlive its installation and must not be mutated while a run is
  /// active; it is NOT cleared between runs, so a multi-run bench can keep
  /// one armed plan. With no plan installed every injection site is a
  /// relaxed load + null test — modeled clocks are byte-identical either
  /// way, since faults never charge virtual time.
  void install_fault_plan(FaultPlan* plan) {
    fault_plan_.store(plan, std::memory_order_release);
  }
  [[nodiscard]] FaultPlan* fault_plan() const {
    return fault_plan_.load(std::memory_order_acquire);
  }

  /// The substrate's instrumentation hook: every named FaultSite funnels
  /// through here. No-op (one relaxed pointer load) unless a plan is
  /// installed; otherwise may throw, sleep, or stall per the plan.
  void inject_point(FaultSite site, int rank) {
    FaultPlan* plan = fault_plan_.load(std::memory_order_relaxed);
    if (plan == nullptr) [[likely]] return;
    plan->on_visit(*this, site, rank);
  }

  /// Arms the watchdog: a barrier arrival or a default-deadline recv that
  /// waits longer than @p seconds of wall-clock throws MachineTimeout
  /// naming the missing ranks, barrier epoch, and virtual clock; the
  /// timeout then poisons the siblings exactly like MachinePoisoned.
  /// 0 (the default) disables all deadlines — the substrate waits forever
  /// and the futex fast path is byte-for-byte the pre-watchdog one.
  void set_deadline_sec(f64 seconds) {
    deadline_sec_.store(seconds, std::memory_order_relaxed);
  }
  [[nodiscard]] f64 deadline_sec() const {
    return deadline_sec_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] bool is_poisoned() const {
    return poisoned_.load(std::memory_order_acquire);
  }
  void note_fault_injected() {
    faults_injected_.fetch_add(1, std::memory_order_relaxed);
  }
  void note_timeout() { timeouts_.fetch_add(1, std::memory_order_relaxed); }
  void note_poisoned_wait() {
    poisoned_waits_.fetch_add(1, std::memory_order_relaxed);
  }

  // --- internals shared with Process / collectives -------------------------

  /// One fused combining pass: blocks until all ranks arrive, max-reduces
  /// @p value (non-negative, an IEEE trick folds it as integer bits) across
  /// them, and returns the global max on every rank. Arrivals CAS-fold the
  /// value into one cell and fetch_add one counter — a radix-P combining
  /// tree; a deeper tree would shed cacheline contention, but an arrival
  /// RMW costs ~100ns while every extra tree level costs a wakeup chain
  /// (a scheduler quantum when ranks outnumber cores), so flat wins for
  /// P <= 64. The last arriver publishes the fold through a single
  /// epoch-stamped release word — one notify_all per pass, with none of the
  /// condvar herd's serialized mutex re-acquisition. Doubles as the
  /// machine's memory fence — the release sequence through the counter's
  /// RMW chain into the release word orders every pre-barrier write
  /// (blackboard deposits included) before every post-barrier read on every
  /// rank, which is what lets the blackboard slots stay plain bytes and
  /// still run TSan-clean. Throws MachinePoisoned if a sibling rank failed,
  /// MachineTimeout if a deadline is set and peers fail to arrive in time.
  /// @p now_us is the caller's virtual clock, used only to stamp timeout
  /// reports (never to decide anything).
  f64 barrier_reduce_max(int rank, f64 value, f64 now_us = 0.0);

  /// Byte capacity of one inline blackboard slot; values up to this size are
  /// exchanged by copy (one barrier phase), larger payloads by pointer plus
  /// a read-done phase.
  static constexpr std::size_t kBlackboardBytes = 64;

  /// Blackboard slot of @p rank for collective sequence number @p seq. Slots
  /// are double-buffered on seq parity: a rank can be at most one collective
  /// ahead of a peer that is still reading (completing collective n+1
  /// requires every rank to have entered it, hence to have finished reading
  /// collective n), so the writer of seq+2 can never clobber an unread slot.
  void* bb_slot(int rank, u64 seq) {
    return bb_[static_cast<std::size_t>(rank) * 2 + (seq & 1)].buf;
  }
  [[nodiscard]] const void* bb_slot(int rank, u64 seq) const {
    return bb_[static_cast<std::size_t>(rank) * 2 + (seq & 1)].buf;
  }

  Mailbox& mailbox(int rank) {
    return *mailboxes_[static_cast<std::size_t>(rank)];
  }

  /// Monotonic counter advanced collectively (rank 0 bumps, all observe via
  /// broadcast); used to mint machine-wide unique ids such as DAD
  /// incarnations. Atomic so cross-run reuse needs no external ordering.
  u64 bump_counter() {
    return counter_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

 private:
  /// Arrival state of one barrier pass: ranks CAS the bit pattern of their
  /// non-negative clock value into `max_bits` (IEEE doubles >= 0 order as
  /// unsigned integers) and then count themselves in with `arrived`.
  /// Parity-indexed (pass & 1): the last arriver of pass n resets the cells
  /// before publishing the release word, and no rank can reach pass n+2 —
  /// the next user of this parity — without having observed release n+1,
  /// hence the reset.
  struct alignas(64) ArrivalCell {
    std::atomic<u64> max_bits{0};
    std::atomic<int> arrived{0};
  };

  /// Release word of one barrier pass: the last arriver writes the folded
  /// max to `value`, release-stores the pass number to `epoch`, and wakes
  /// all waiters; everyone else acquire-waits on epoch >= n. The epoch is
  /// 32-bit on purpose: that is the size std::atomic::wait can hand to the
  /// futex directly, skipping the library's proxy-wait path. Pass numbers
  /// reset to 0 every run(), so wraparound would need 2^32 barriers in one
  /// SPMD region.
  struct alignas(64) BarrierSlot {
    std::atomic<u32> epoch{0};
    f64 value = 0.0;
  };

  struct alignas(64) BlackboardSlot {
    std::byte buf[kBlackboardBytes];
  };

  /// Per-rank barrier pass counter; only its owning rank advances it
  /// (relaxed — it carries no ordering), padded so neighbors do not
  /// false-share. Atomic so the watchdog of a timing-out peer can read
  /// every rank's arrival progress to name the stragglers.
  struct alignas(64) RankState {
    std::atomic<u32> barrier_epoch{0};
  };

  /// Acquire-waits until @p epoch reaches @p target: a short pause-spin for
  /// the runs-on-its-own-core case, a few yields, then a futex-backed
  /// atomic wait so oversubscribed hosts (64 logical ranks on a handful of
  /// cores) sleep instead of thrashing the scheduler. Checks the poison
  /// flag throughout. With a machine deadline set, the futex sleep becomes
  /// a bounded poll and expiry throws MachineTimeout naming every rank
  /// whose barrier_epoch has not reached @p target (@p rank / @p now_us
  /// stamp the report).
  void wait_epoch(std::atomic<u32>& epoch, u32 target, int rank, f64 now_us);

  void worker_loop(int rank);
  /// Runs @p body as @p rank, records stats/clock, and on exception stores
  /// the first error and poisons barrier + mailboxes.
  void execute(int rank, const std::function<void(Process&)>& body);
  void poison();
  void reset_for_run();

  int nprocs_;
  int spin_limit_;   ///< pause-spins before yielding; 0 when oversubscribed
  int yield_limit_;  ///< yields before the futex sleep; 0 when oversubscribed
  CostParams params_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  ArrivalCell arrival_[2];                   // combining cells, [parity]
  BarrierSlot release_[2];                   // broadcast words, [parity]
  std::vector<BlackboardSlot> bb_;           // [rank][parity]
  std::vector<RankState> rank_state_;        // [rank]
  std::vector<MessageStats> stats_;
  std::vector<f64> final_clock_us_;
  /// The degradation view (relaxed: written only between runs from the host
  /// thread; the run-dispatch pool_mutex_ handshake orders it against every
  /// worker read, and atomicity keeps concurrent relaxed reads from
  /// watchdog/timeout paths well-defined).
  std::atomic<int> active_nprocs_;
  std::atomic<i64> shrink_count_{0};
  std::atomic<u64> counter_{0};
  std::atomic<bool> poisoned_{false};
  std::atomic<FaultPlan*> fault_plan_{nullptr};
  std::atomic<f64> deadline_sec_{0.0};
  std::atomic<i64> faults_injected_{0};
  std::atomic<i64> timeouts_{0};
  std::atomic<i64> poisoned_waits_{0};

  std::exception_ptr first_error_;
  std::mutex error_mutex_;

  // Worker pool: parked threads for ranks 1..P-1 (rank 0 runs inline in
  // run()). The pool mutex/condvar are touched once per run() dispatch and
  // completion, never per barrier.
  std::vector<std::thread> workers_;
  std::mutex pool_mutex_;
  std::condition_variable pool_cv_;  ///< signals a new run (or shutdown)
  std::condition_variable done_cv_;  ///< signals all workers finished
  const std::function<void(Process&)>* body_ = nullptr;
  u64 run_generation_ = 0;
  int running_ = 0;
  bool stop_ = false;

  friend class Process;
};

/// Per-rank handle passed to SPMD bodies. Not thread-safe across ranks; each
/// rank uses only its own Process.
class Process {
 public:
  Process(Machine& machine, int rank)
      : machine_(&machine), rank_(rank) {}

  [[nodiscard]] int rank() const { return rank_; }
  /// The ACTIVE machine width: after a shrink this is the surviving count,
  /// so every collective, send/recv bounds check, and distribution built
  /// from this handle automatically spans only the dense surviving set.
  [[nodiscard]] int nprocs() const { return machine_->active_nprocs(); }
  [[nodiscard]] bool is_root() const { return rank_ == 0; }
  [[nodiscard]] Machine& machine() { return *machine_; }
  [[nodiscard]] const CostParams& params() const { return machine_->params(); }

  VirtualClock& clock() { return clock_; }
  [[nodiscard]] const VirtualClock& clock() const { return clock_; }
  MessageStats& stats() { return stats_; }

  /// Sends @p data to @p dest with matching @p tag. T must be trivially
  /// copyable (messages cross logical address spaces by value).
  template <typename T>
  void send(int dest, int tag, std::span<const T> data) {
    static_assert(std::is_trivially_copyable_v<T>);
    CHAOS_CHECK(dest >= 0 && dest < nprocs(), "send: bad destination rank");
    machine_->inject_point(FaultSite::MailboxPut, rank_);
    const i64 bytes = static_cast<i64>(data.size_bytes());
    clock_.charge(params().send_us(bytes));
    stats_.note_send(bytes);
    RawMessage msg;
    msg.source = rank_;
    msg.tag = tag;
    msg.ready_time_us = clock_.now_us();
    msg.payload.resize(data.size_bytes());
    if (!data.empty()) {
      std::memcpy(msg.payload.data(), data.data(), data.size_bytes());
    }
    machine_->mailbox(dest).put(std::move(msg));
  }

  template <typename T>
  void send_value(int dest, int tag, const T& value) {
    send<T>(dest, tag, std::span<const T>(&value, 1));
  }

  /// Blocking matched receive of a whole message from @p source. Honors the
  /// machine's default deadline (Machine::set_deadline_sec); with none set,
  /// waits forever.
  template <typename T>
  std::vector<T> recv(int source, int tag) {
    return recv_deadline<T>(source, tag, machine_->deadline_sec());
  }

  /// As recv(), but gives up after @p deadline_sec wall seconds with a
  /// typed MachineTimeout (missing rank = @p source, epoch 0, this rank's
  /// virtual clock). The timeout propagates out of the SPMD body and
  /// poisons the siblings exactly like MachinePoisoned, so a service can
  /// bound how long a lost message stalls the fleet. deadline_sec <= 0
  /// waits forever.
  template <typename T>
  std::vector<T> recv_deadline(int source, int tag, f64 deadline_sec) {
    static_assert(std::is_trivially_copyable_v<T>);
    CHAOS_CHECK(source >= 0 && source < nprocs(), "recv: bad source rank");
    machine_->inject_point(FaultSite::MailboxRecv, rank_);
    RawMessage msg;
    if (!machine_->mailbox(rank_).take_deadline(source, tag, deadline_sec,
                                                msg)) {
      machine_->note_timeout();
      std::ostringstream os;
      os << "recv deadline expired: rank " << rank_ << " waited "
         << deadline_sec << "s for a message from rank " << source
         << " (tag " << tag << ", virtual clock " << clock_.now_us()
         << "us)";
      throw MachineTimeout(os.str(), {source}, /*epoch=*/0, clock_.now_us());
    }
    CHAOS_CHECK(msg.payload.size() % sizeof(T) == 0,
                "recv: payload size does not match element type");
    const i64 bytes = static_cast<i64>(msg.payload.size());
    clock_.advance_to(msg.ready_time_us);
    clock_.charge(params().recv_us(bytes));
    stats_.note_recv(bytes);
    std::vector<T> out(msg.payload.size() / sizeof(T));
    if (!out.empty()) {
      std::memcpy(out.data(), msg.payload.data(), msg.payload.size());
    }
    return out;
  }

  template <typename T>
  T recv_value(int source, int tag) {
    auto v = recv<T>(source, tag);
    CHAOS_CHECK(v.size() == 1, "recv_value: expected single-element message");
    return v.front();
  }

  /// Raw synchronization phase with no clock effect (building block for the
  /// collectives' read-done fences; user code should call
  /// collectives::barrier instead).
  void barrier_sync_only() {
    ++stats_.barriers;
    (void)machine_->barrier_reduce_max(rank_, 0.0, clock_.now_us());
  }

  /// Fused synchronization phase: publishes this rank's virtual clock into
  /// the barrier's reduction and returns the global maximum — the BSP
  /// "equalize entering clocks" step in a single combining pass.
  [[nodiscard]] f64 barrier_clock_max() {
    ++stats_.barriers;
    return machine_->barrier_reduce_max(rank_, clock_.now_us(),
                                        clock_.now_us());
  }

  /// Collective sequence number, advanced once per blackboard collective.
  /// All ranks execute the same collective sequence (SPMD), so the numbers
  /// agree machine-wide and index the parity double-buffered slots.
  u64 next_bb_seq() { return bb_seq_++; }

 private:
  Machine* machine_;
  int rank_;
  VirtualClock clock_;
  MessageStats stats_;
  u64 bb_seq_ = 0;
};

}  // namespace chaos::rt
