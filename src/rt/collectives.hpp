// Collective operations over all logical processes of a Machine.
//
// Implementation: shared-memory blackboard over the machine's parity
// double-buffered slots. Every collective pays ONE fused tree pass
// (Process::barrier_clock_max) that simultaneously synchronizes the ranks
// and max-reduces their entering virtual clocks — the BSP "equalize, then
// charge" step rides the barrier's tree rounds instead of costing two extra
// phases. Values up to Machine::kBlackboardBytes are copied into the
// machine-owned slot, so the collective completes in that single phase (the
// epoch/parity protocol makes a later overwrite of an unread slot
// impossible; see Machine::bb_slot). Larger payloads are published by
// pointer into the caller's memory and guarded by one trailing read-done
// phase — two phases total, the maximum any collective costs.
//
// Timing: BSP-style superstep charging — entering clocks are equalized to
// the maximum, then each process is charged for the messages a real
// hypercube implementation would send/receive (see rt/cost_model.hpp). This
// keeps virtual times deterministic, independent of host scheduling, and
// bit-identical to the seed's central-barrier implementation.
#pragma once

#include <algorithm>
#include <cstring>
#include <numeric>
#include <span>
#include <vector>

#include "rt/machine.hpp"

namespace chaos::rt {

namespace detail {

/// One fused pass: full synchronization, clock equalization to the global
/// max, plus @p extra_us of modeled collective cost.
inline void fused_sync(Process& p, f64 extra_us) {
  p.clock().advance_to(p.barrier_clock_max());
  p.clock().charge(extra_us);
}

/// Publishes a pointer through the rank's inline slot (pointer mode, for
/// payloads that do not fit kBlackboardBytes). A named fault-injection
/// site: a plan can kill or stall a rank at the instant it exposes caller
/// memory to its peers.
inline void bb_publish_ptr(Machine& m, int rank, u64 seq, const void* ptr) {
  m.inject_point(FaultSite::BlackboardPublish, rank);
  std::memcpy(m.bb_slot(rank, seq), &ptr, sizeof(ptr));
}

inline const void* bb_fetch_ptr(const Machine& m, int rank, u64 seq) {
  const void* ptr = nullptr;
  std::memcpy(&ptr, m.bb_slot(rank, seq), sizeof(ptr));
  return ptr;
}

template <typename T>
inline constexpr bool fits_inline_v =
    sizeof(T) <= Machine::kBlackboardBytes;

}  // namespace detail

/// Synchronization barrier; charges the modeled hypercube barrier cost.
/// One raw phase.
inline void barrier(Process& p) {
  ++p.stats().collectives;
  detail::fused_sync(p, p.params().barrier_us(p.nprocs()));
}

/// Broadcast a trivially-copyable value from @p root to all processes.
/// One phase when T fits an inline slot, two otherwise.
template <typename T>
T broadcast(Process& p, const T& value, int root = 0) {
  static_assert(std::is_trivially_copyable_v<T>);
  ++p.stats().collectives;
  Machine& m = p.machine();
  const u64 seq = p.next_bb_seq();
  const f64 cost = p.params().small_collective_us(
      p.nprocs(), static_cast<i64>(sizeof(T)));
  if constexpr (detail::fits_inline_v<T>) {
    if (p.rank() == root) {
      std::memcpy(m.bb_slot(root, seq), &value, sizeof(T));
    }
    detail::fused_sync(p, cost);
    T out;
    std::memcpy(&out, m.bb_slot(root, seq), sizeof(T));
    return out;
  } else {
    if (p.rank() == root) detail::bb_publish_ptr(m, root, seq, &value);
    detail::fused_sync(p, cost);
    T out = *static_cast<const T*>(detail::bb_fetch_ptr(m, root, seq));
    p.barrier_sync_only();  // read-done: root's value must outlive all reads
    return out;
  }
}

/// Broadcast a whole vector from @p root (payload charged per byte).
template <typename T>
std::vector<T> broadcast_vec(Process& p, const std::vector<T>& value,
                             int root = 0) {
  static_assert(std::is_trivially_copyable_v<T>);
  ++p.stats().collectives;
  Machine& m = p.machine();
  const u64 seq = p.next_bb_seq();
  if (p.rank() == root) detail::bb_publish_ptr(m, root, seq, &value);
  detail::fused_sync(p, 0.0);
  std::vector<T> out =
      *static_cast<const std::vector<T>*>(detail::bb_fetch_ptr(m, root, seq));
  p.clock().charge(p.params().small_collective_us(
      p.nprocs(), static_cast<i64>(out.size() * sizeof(T))));
  p.barrier_sync_only();
  return out;
}

/// All-reduce with an arbitrary associative @p op (e.g. std::plus<>{}).
/// One phase when T fits an inline slot, two otherwise.
template <typename T, typename BinaryOp>
T allreduce(Process& p, const T& value, BinaryOp op) {
  static_assert(std::is_trivially_copyable_v<T>);
  ++p.stats().collectives;
  Machine& m = p.machine();
  const u64 seq = p.next_bb_seq();
  const f64 cost = p.params().small_collective_us(
      p.nprocs(), static_cast<i64>(sizeof(T)));
  if constexpr (detail::fits_inline_v<T>) {
    std::memcpy(m.bb_slot(p.rank(), seq), &value, sizeof(T));
    detail::fused_sync(p, cost);
    T acc;
    std::memcpy(&acc, m.bb_slot(0, seq), sizeof(T));
    for (int r = 1; r < p.nprocs(); ++r) {
      T v;
      std::memcpy(&v, m.bb_slot(r, seq), sizeof(T));
      acc = op(acc, v);
    }
    return acc;
  } else {
    detail::bb_publish_ptr(m, p.rank(), seq, &value);
    detail::fused_sync(p, cost);
    T acc = *static_cast<const T*>(detail::bb_fetch_ptr(m, 0, seq));
    for (int r = 1; r < p.nprocs(); ++r) {
      acc = op(acc, *static_cast<const T*>(detail::bb_fetch_ptr(m, r, seq)));
    }
    p.barrier_sync_only();
    return acc;
  }
}

template <typename T>
T allreduce_sum(Process& p, const T& v) {
  return allreduce(p, v, std::plus<>{});
}
template <typename T>
T allreduce_max(Process& p, const T& v) {
  return allreduce(p, v, [](const T& a, const T& b) { return std::max(a, b); });
}
template <typename T>
T allreduce_min(Process& p, const T& v) {
  return allreduce(p, v, [](const T& a, const T& b) { return std::min(a, b); });
}

/// Element-wise all-reduce of equal-length vectors (one slot per work group;
/// used by the level-parallel bisection partitioners).
template <typename T, typename BinaryOp>
std::vector<T> allreduce_vec(Process& p, const std::vector<T>& value,
                             BinaryOp op) {
  static_assert(std::is_trivially_copyable_v<T>);
  ++p.stats().collectives;
  Machine& m = p.machine();
  const u64 seq = p.next_bb_seq();
  detail::bb_publish_ptr(m, p.rank(), seq, &value);
  detail::fused_sync(p, 0.0);
  std::vector<T> acc =
      *static_cast<const std::vector<T>*>(detail::bb_fetch_ptr(m, 0, seq));
  for (int r = 1; r < p.nprocs(); ++r) {
    const auto& other =
        *static_cast<const std::vector<T>*>(detail::bb_fetch_ptr(m, r, seq));
    CHAOS_CHECK(other.size() == acc.size(),
                "allreduce_vec: ranks disagree on vector length");
    for (std::size_t i = 0; i < acc.size(); ++i) acc[i] = op(acc[i], other[i]);
  }
  p.clock().charge(p.params().small_collective_us(
      p.nprocs(), static_cast<i64>(acc.size() * sizeof(T))));
  p.barrier_sync_only();
  return acc;
}

/// Exclusive prefix sum over ranks (rank r receives sum of values 0..r-1).
template <typename T>
T exscan_sum(Process& p, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  ++p.stats().collectives;
  Machine& m = p.machine();
  const u64 seq = p.next_bb_seq();
  const f64 cost = p.params().small_collective_us(
      p.nprocs(), static_cast<i64>(sizeof(T)));
  if constexpr (detail::fits_inline_v<T>) {
    std::memcpy(m.bb_slot(p.rank(), seq), &value, sizeof(T));
    detail::fused_sync(p, cost);
    T acc{};
    for (int r = 0; r < p.rank(); ++r) {
      T v;
      std::memcpy(&v, m.bb_slot(r, seq), sizeof(T));
      acc = acc + v;
    }
    return acc;
  } else {
    detail::bb_publish_ptr(m, p.rank(), seq, &value);
    detail::fused_sync(p, cost);
    T acc{};
    for (int r = 0; r < p.rank(); ++r) {
      acc = acc + *static_cast<const T*>(detail::bb_fetch_ptr(m, r, seq));
    }
    p.barrier_sync_only();
    return acc;
  }
}

/// Gather one value from every rank; every rank receives the full array.
template <typename T>
std::vector<T> allgather(Process& p, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  ++p.stats().collectives;
  Machine& m = p.machine();
  const u64 seq = p.next_bb_seq();
  const f64 cost = p.params().small_collective_us(
      p.nprocs(),
      static_cast<i64>(p.nprocs()) * static_cast<i64>(sizeof(T)));
  std::vector<T> out;
  out.reserve(static_cast<std::size_t>(p.nprocs()));
  if constexpr (detail::fits_inline_v<T>) {
    std::memcpy(m.bb_slot(p.rank(), seq), &value, sizeof(T));
    detail::fused_sync(p, cost);
    for (int r = 0; r < p.nprocs(); ++r) {
      T v;
      std::memcpy(&v, m.bb_slot(r, seq), sizeof(T));
      out.push_back(v);
    }
    return out;
  } else {
    detail::bb_publish_ptr(m, p.rank(), seq, &value);
    detail::fused_sync(p, cost);
    for (int r = 0; r < p.nprocs(); ++r) {
      out.push_back(*static_cast<const T*>(detail::bb_fetch_ptr(m, r, seq)));
    }
    p.barrier_sync_only();
    return out;
  }
}

/// Variable-length allgather: concatenates every rank's span in rank order.
/// @p offsets_out (optional) receives the start offset of each rank's block.
template <typename T>
std::vector<T> allgatherv(Process& p, std::span<const T> local,
                          std::vector<i64>* offsets_out = nullptr) {
  static_assert(std::is_trivially_copyable_v<T>);
  ++p.stats().collectives;
  Machine& m = p.machine();
  const u64 seq = p.next_bb_seq();
  // A span is 16 trivially-copyable bytes: deposit the view itself inline;
  // the trailing phase still guards the caller-owned payload it points at.
  std::memcpy(m.bb_slot(p.rank(), seq), &local, sizeof(local));
  detail::fused_sync(p, 0.0);
  std::vector<T> out;
  std::vector<i64> offsets(static_cast<std::size_t>(p.nprocs()) + 1, 0);
  for (int r = 0; r < p.nprocs(); ++r) {
    std::span<const T> sp;
    std::memcpy(&sp, m.bb_slot(r, seq), sizeof(sp));
    offsets[static_cast<std::size_t>(r) + 1] =
        offsets[static_cast<std::size_t>(r)] + static_cast<i64>(sp.size());
    out.insert(out.end(), sp.begin(), sp.end());
  }
  p.clock().charge(p.params().small_collective_us(
      p.nprocs(), static_cast<i64>(out.size() * sizeof(T))));
  p.barrier_sync_only();
  if (offsets_out) *offsets_out = std::move(offsets);
  return out;
}

/// Personalized all-to-all: @p send[d] goes to rank d; the result's slot [s]
/// holds what rank s sent here. The workhorse of every CHAOS exchange.
template <typename T>
std::vector<std::vector<T>> alltoallv(Process& p,
                                      const std::vector<std::vector<T>>& send) {
  static_assert(std::is_trivially_copyable_v<T>);
  CHAOS_CHECK(static_cast<int>(send.size()) == p.nprocs(),
              "alltoallv: send buffer list must have one entry per rank");
  ++p.stats().collectives;
  Machine& m = p.machine();
  const u64 seq = p.next_bb_seq();
  detail::bb_publish_ptr(m, p.rank(), seq, &send);
  detail::fused_sync(p, 0.0);
  std::vector<std::vector<T>> out(static_cast<std::size_t>(p.nprocs()));
  for (int s = 0; s < p.nprocs(); ++s) {
    const auto& sb = *static_cast<const std::vector<std::vector<T>>*>(
        detail::bb_fetch_ptr(m, s, seq));
    out[static_cast<std::size_t>(s)] = sb[static_cast<std::size_t>(p.rank())];
  }
  p.barrier_sync_only();

  // BSP superstep charge: clocks were equalized by the fused pass; now pay
  // per nonempty message each way.
  const CostParams& c = p.params();
  i64 off_process_bytes = 0;
  for (int d = 0; d < p.nprocs(); ++d) {
    if (d == p.rank()) continue;
    const i64 bytes =
        static_cast<i64>(send[static_cast<std::size_t>(d)].size() * sizeof(T));
    if (bytes > 0 || !send[static_cast<std::size_t>(d)].empty()) {
      p.clock().charge(c.send_us(bytes));
      p.stats().note_send(bytes);
      off_process_bytes += bytes;
    }
  }
  for (int s = 0; s < p.nprocs(); ++s) {
    if (s == p.rank()) continue;
    const i64 bytes =
        static_cast<i64>(out[static_cast<std::size_t>(s)].size() * sizeof(T));
    if (bytes > 0) {
      p.clock().charge(c.recv_us(bytes));
      p.stats().note_recv(bytes);
    }
  }
  p.stats().note_alltoallv(off_process_bytes);
  return out;
}

/// Fixed-size personalized exchange: @p send holds exactly one element per
/// destination rank, @p recv receives one element per source rank. Allocates
/// nothing — both buffers are caller-provided. Used to exchange CSR segment
/// counts before an alltoallv_flat.
template <typename T>
void alltoall(Process& p, std::span<const T> send, std::span<T> recv) {
  static_assert(std::is_trivially_copyable_v<T>);
  CHAOS_CHECK(static_cast<int>(send.size()) == p.nprocs() &&
                  static_cast<int>(recv.size()) == p.nprocs(),
              "alltoall: need exactly one slot per rank on both sides");
  p.machine().inject_point(FaultSite::Alltoall, p.rank());
  ++p.stats().collectives;
  Machine& m = p.machine();
  const u64 seq = p.next_bb_seq();
  detail::bb_publish_ptr(m, p.rank(), seq, send.data());
  detail::fused_sync(
      p, p.params().small_collective_us(
             p.nprocs(),
             static_cast<i64>(p.nprocs()) * static_cast<i64>(sizeof(T))));
  for (int s = 0; s < p.nprocs(); ++s) {
    recv[static_cast<std::size_t>(s)] =
        static_cast<const T*>(detail::bb_fetch_ptr(m, s, seq))[p.rank()];
  }
  p.barrier_sync_only();
  // Traffic accounting matches alltoallv: one message of one T each way per
  // off-process peer, so the counts round a flat exchange needs stays
  // visible to MessageStats.
  for (int r = 0; r < p.nprocs(); ++r) {
    if (r == p.rank()) continue;
    p.stats().note_send(static_cast<i64>(sizeof(T)));
    p.stats().note_recv(static_cast<i64>(sizeof(T)));
  }
}

namespace detail {
/// Blackboard view one rank publishes during an alltoallv_flat: its whole
/// flat send buffer plus the P+1 prefix that slices it by destination.
/// Trivially copyable, 16 bytes — deposited inline into the rank's slot.
template <typename T>
struct FlatSendView {
  const T* data;
  const i64* offsets;
};
}  // namespace detail

/// Flat personalized all-to-all over CSR-sliced buffers: the segment
/// send[send_offsets[d], send_offsets[d+1]) goes to rank d, and the segment
/// from source s lands at recv[recv_offsets[s], recv_offsets[s+1]). Both
/// prefix arrays have nprocs()+1 entries; peers must agree pairwise on
/// segment lengths (checked). The executor's hot path: unlike alltoallv this
/// performs ZERO heap allocations — pack buffers, receive buffers, and both
/// prefixes are caller-owned, so a schedule-driven gather/scatter can run
/// allocation-free every timestep.
template <typename T>
void alltoallv_flat(Process& p, std::span<const T> send,
                    std::span<const i64> send_offsets, std::span<T> recv,
                    std::span<const i64> recv_offsets) {
  static_assert(std::is_trivially_copyable_v<T>);
  CHAOS_CHECK(static_cast<int>(send_offsets.size()) == p.nprocs() + 1 &&
                  static_cast<int>(recv_offsets.size()) == p.nprocs() + 1,
              "alltoallv_flat: offset arrays must have nprocs+1 entries");
  CHAOS_CHECK(static_cast<i64>(send.size()) >= send_offsets[send_offsets.size() - 1] &&
                  static_cast<i64>(recv.size()) >= recv_offsets[recv_offsets.size() - 1],
              "alltoallv_flat: buffer smaller than its offset prefix claims");
  p.machine().inject_point(FaultSite::AlltoallvFlat, p.rank());
  ++p.stats().collectives;
  Machine& m = p.machine();
  const u64 seq = p.next_bb_seq();
  const detail::FlatSendView<T> view{send.data(), send_offsets.data()};
  static_assert(sizeof(view) <= Machine::kBlackboardBytes);
  std::memcpy(m.bb_slot(p.rank(), seq), &view, sizeof(view));
  detail::fused_sync(p, 0.0);
  const auto me = static_cast<std::size_t>(p.rank());
  for (int s = 0; s < p.nprocs(); ++s) {
    detail::FlatSendView<T> sv;
    std::memcpy(&sv, m.bb_slot(s, seq), sizeof(sv));
    const i64 lo = sv.offsets[me];
    const i64 n = sv.offsets[me + 1] - lo;
    CHAOS_CHECK(n == recv_offsets[static_cast<std::size_t>(s) + 1] -
                         recv_offsets[static_cast<std::size_t>(s)],
                "alltoallv_flat: peer segment length disagrees with my "
                "receive prefix");
    if (n > 0) {
      std::memcpy(recv.data() + recv_offsets[static_cast<std::size_t>(s)],
                  sv.data + lo, static_cast<std::size_t>(n) * sizeof(T));
    }
  }
  p.barrier_sync_only();

  const CostParams& c = p.params();
  i64 off_process_bytes = 0;
  for (int d = 0; d < p.nprocs(); ++d) {
    if (d == p.rank()) continue;
    const i64 bytes = (send_offsets[static_cast<std::size_t>(d) + 1] -
                       send_offsets[static_cast<std::size_t>(d)]) *
                      static_cast<i64>(sizeof(T));
    if (bytes > 0) {
      p.clock().charge(c.send_us(bytes));
      p.stats().note_send(bytes);
      off_process_bytes += bytes;
    }
  }
  for (int s = 0; s < p.nprocs(); ++s) {
    if (s == p.rank()) continue;
    const i64 bytes = (recv_offsets[static_cast<std::size_t>(s) + 1] -
                       recv_offsets[static_cast<std::size_t>(s)]) *
                      static_cast<i64>(sizeof(T));
    if (bytes > 0) {
      p.clock().charge(c.recv_us(bytes));
      p.stats().note_recv(bytes);
    }
  }
  p.stats().note_alltoallv(off_process_bytes);
}

/// Gather variable-length blocks to @p root (others receive an empty vector;
/// @p offsets_out is filled on the root only).
template <typename T>
std::vector<T> gatherv(Process& p, std::span<const T> local, int root = 0,
                       std::vector<i64>* offsets_out = nullptr) {
  static_assert(std::is_trivially_copyable_v<T>);
  ++p.stats().collectives;
  Machine& m = p.machine();
  const u64 seq = p.next_bb_seq();
  std::memcpy(m.bb_slot(p.rank(), seq), &local, sizeof(local));
  detail::fused_sync(p, 0.0);
  std::vector<T> out;
  if (p.rank() == root) {
    std::vector<i64> offsets(static_cast<std::size_t>(p.nprocs()) + 1, 0);
    for (int r = 0; r < p.nprocs(); ++r) {
      std::span<const T> sp;
      std::memcpy(&sp, m.bb_slot(r, seq), sizeof(sp));
      offsets[static_cast<std::size_t>(r) + 1] =
          offsets[static_cast<std::size_t>(r)] + static_cast<i64>(sp.size());
      out.insert(out.end(), sp.begin(), sp.end());
    }
    if (offsets_out) *offsets_out = std::move(offsets);
  }
  const CostParams& c = p.params();
  const i64 my_bytes = static_cast<i64>(local.size_bytes());
  if (p.rank() != root) {
    p.clock().charge(c.send_us(my_bytes));
    p.stats().note_send(my_bytes);
  } else {
    for (int r = 0; r < p.nprocs(); ++r) {
      if (r == root) continue;
      std::span<const T> sp;
      std::memcpy(&sp, m.bb_slot(r, seq), sizeof(sp));
      const i64 bytes = static_cast<i64>(sp.size_bytes());
      p.clock().charge(c.recv_us(bytes));
      p.stats().note_recv(bytes);
    }
  }
  p.barrier_sync_only();
  return out;
}

/// Scatter variable-length blocks from @p root: rank r receives blocks[r].
template <typename T>
std::vector<T> scatterv(Process& p, const std::vector<std::vector<T>>& blocks,
                        int root = 0) {
  static_assert(std::is_trivially_copyable_v<T>);
  ++p.stats().collectives;
  Machine& m = p.machine();
  const u64 seq = p.next_bb_seq();
  if (p.rank() == root) {
    CHAOS_CHECK(static_cast<int>(blocks.size()) == p.nprocs(),
                "scatterv: need one block per rank");
    detail::bb_publish_ptr(m, root, seq, &blocks);
  }
  detail::fused_sync(p, 0.0);
  const auto& all = *static_cast<const std::vector<std::vector<T>>*>(
      detail::bb_fetch_ptr(m, root, seq));
  std::vector<T> out = all[static_cast<std::size_t>(p.rank())];
  const CostParams& c = p.params();
  const i64 bytes = static_cast<i64>(out.size() * sizeof(T));
  if (p.rank() == root) {
    for (int r = 0; r < p.nprocs(); ++r) {
      if (r == root) continue;
      const i64 b =
          static_cast<i64>(all[static_cast<std::size_t>(r)].size() * sizeof(T));
      p.clock().charge(c.send_us(b));
      p.stats().note_send(b);
    }
  } else {
    p.clock().charge(c.recv_us(bytes));
    p.stats().note_recv(bytes);
  }
  p.barrier_sync_only();
  return out;
}

/// Collective. Exchanges one CSR of trivially-copyable items: a counts
/// alltoall fixes the receive prefix, then one flat alltoallv moves the
/// payload. @p recv / @p recv_offsets are resized in place (no allocation
/// once grown); @p counts_scratch needs no sizing by the caller. This is THE
/// CSR-forming exchange of the tree — the inspector's ghost requests,
/// geocol's half-edges, and the flat dereference's request round all drive
/// it, so the counts+payload protocol exists exactly once.
///
/// Exception safety (DESIGN.md §11): a throw anywhere mid-collective — a
/// poisoned sibling, a deadline timeout, an injected fault in the counts or
/// payload round — leaves the caller-owned output CSR explicitly INVALID:
/// @p recv and @p recv_offsets are cleared before the rethrow (capacity
/// retained, so the warm path stays allocation-free). The outputs are never
/// half-written; on return they are either the complete exchanged CSR or
/// empty. @p counts_scratch is scratch and carries no contract.
template <typename T>
void exchange_csr(Process& p, std::span<const T> send,
                  std::span<const i64> send_offsets, std::vector<T>& recv,
                  std::vector<i64>& recv_offsets,
                  std::vector<i64>& counts_scratch) {
  const auto np = static_cast<std::size_t>(p.nprocs());
  counts_scratch.resize(2 * np);
  const std::span<i64> my_counts(counts_scratch.data(), np);
  const std::span<i64> peer_counts(counts_scratch.data() + np, np);
  for (std::size_t r = 0; r < np; ++r) {
    my_counts[r] = send_offsets[r + 1] - send_offsets[r];
    // Always-on (O(P), trivial next to the exchange itself): a non-monotone
    // caller prefix would otherwise become a negative resize below.
    CHAOS_CHECK(my_counts[r] >= 0,
                "exchange_csr: negative send count — send_offsets prefix is "
                "not monotone");
  }
  try {
    alltoall<i64>(p, my_counts, peer_counts);
    recv_offsets.resize(np + 1);
    recv_offsets[0] = 0;
    for (std::size_t r = 0; r < np; ++r) {
      // The counts round carries peer-controlled input: reject negative
      // counts and a prefix sum that would wrap i64 before they become an
      // out-of-bounds receive buffer.
      CHAOS_CHECK(peer_counts[r] >= 0,
                  "exchange_csr: peer sent a negative segment count");
      CHAOS_CHECK(!__builtin_add_overflow(recv_offsets[r], peer_counts[r],
                                          &recv_offsets[r + 1]),
                  "exchange_csr: receive prefix sum overflows i64");
    }
    recv.resize(static_cast<std::size_t>(recv_offsets[np]));
    alltoallv_flat<T>(p, send, send_offsets, recv, recv_offsets);
  } catch (...) {
    // Mark the outputs invalid rather than half-written: the payload round
    // may have deposited some peers' segments before the throw.
    recv.clear();
    recv_offsets.clear();
    throw;
  }
}

/// Mints a machine-wide unique id, identical on every rank (rank 0 bumps the
/// machine counter and broadcasts). Used for DAD incarnations and loop ids.
inline u64 collective_counter(Process& p) {
  u64 v = 0;
  if (p.is_root()) v = p.machine().bump_counter();
  return broadcast(p, v, 0);
}

}  // namespace chaos::rt
