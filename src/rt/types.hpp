// Common fixed-width aliases and error-checking helpers shared by every
// chaos-rt module.
#pragma once

#include <cstdint>
#include <source_location>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace chaos {

using i8 = std::int8_t;
using i32 = std::int32_t;
using i64 = std::int64_t;
using u8 = std::uint8_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using f64 = double;

/// Thrown on any violated runtime-library precondition or internal invariant.
class ChaosError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown out of blocked barrier and mailbox waits when a sibling logical
/// process of the same Machine has thrown: instead of deadlocking, every
/// waiter is released with this error and Machine::run rethrows the
/// sibling's original exception.
class MachinePoisoned : public ChaosError {
 public:
  using ChaosError::ChaosError;
};

/// Thrown when a blocked wait (barrier arrival watchdog, deadline-bearing
/// recv) exceeds the machine's configured deadline: some sibling rank is
/// stuck, too slow, or never going to send. Carries which ranks were still
/// missing, the barrier pass (0 for point-to-point waits), and the waiting
/// rank's virtual clock, so a long-running service can report exactly who
/// stalled instead of hanging. Peers are subsequently poisoned exactly as
/// for MachinePoisoned (the timeout propagates out of the SPMD body and
/// Machine::execute poisons barrier + mailboxes).
class MachineTimeout : public ChaosError {
 public:
  MachineTimeout(const std::string& what, std::vector<int> missing_ranks,
                 u32 epoch, f64 virtual_time_us)
      : ChaosError(what),
        missing_ranks(std::move(missing_ranks)),
        epoch(epoch),
        virtual_time_us(virtual_time_us) {}

  std::vector<int> missing_ranks;  ///< ranks that had not arrived / sent
  u32 epoch = 0;                   ///< barrier pass number (0: not a barrier)
  f64 virtual_time_us = 0.0;       ///< waiter's virtual clock at the timeout
};

/// Thrown by an armed FaultPlan Throw/Permanent fault at its injection site;
/// tests use the distinct type to tell the injected failure from collateral
/// poisoning. Carries which rank detonated and at which site (numeric
/// rt::FaultSite; -1 when unknown) so a supervisor that gives up can name
/// the failed rank in its PermanentFault classification.
class FaultInjected : public ChaosError {
 public:
  explicit FaultInjected(const std::string& what, int rank = -1, int site = -1)
      : ChaosError(what), rank(rank), site(site) {}

  int rank = -1;  ///< logical rank that hit the armed site
  int site = -1;  ///< numeric rt::FaultSite, -1 unknown
};

/// Thrown by core::Supervisor when a retryable failure survives the whole
/// retry budget: the fault is reclassified from transient to permanent, the
/// named rank is presumed dead, and the caller is expected to degrade —
/// shrink the machine to the survivors and restore from the last partner
/// checkpoint (DESIGN.md §13) — rather than retry again. Deliberately NOT
/// rt::is_retryable: a nested supervisor must propagate it, not spin on it.
class PermanentFault : public ChaosError {
 public:
  PermanentFault(const std::string& what, int rank, int site)
      : ChaosError(what), rank(rank), site(site) {}

  int rank = -1;  ///< presumed-dead logical rank, -1 if unattributable
  int site = -1;  ///< numeric rt::FaultSite of the last failure, -1 unknown
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const std::string& msg,
                                      const std::source_location& loc) {
  std::ostringstream os;
  os << loc.file_name() << ':' << loc.line() << ": check failed: " << expr;
  if (!msg.empty()) os << " — " << msg;
  throw ChaosError(os.str());
}
}  // namespace detail

/// Always-on invariant check (irregular-access bookkeeping bugs corrupt data
/// silently; the cost of these branches is negligible next to communication).
#define CHAOS_CHECK(expr, ...)                                           \
  do {                                                                   \
    if (!(expr)) {                                                       \
      ::chaos::detail::check_failed(#expr, ::std::string{__VA_ARGS__},   \
                                    ::std::source_location::current());  \
    }                                                                    \
  } while (0)

}  // namespace chaos
