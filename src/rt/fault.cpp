#include "rt/fault.hpp"

#include <chrono>
#include <new>
#include <sstream>
#include <thread>

#include "rt/machine.hpp"

namespace chaos::rt {

namespace {

thread_local bool t_alloc_fail_armed = false;

/// splitmix64 — the repo's standard cheap mixer (inspector dedup, rng.hpp).
u64 splitmix64(u64 x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

const char* fault_site_name(FaultSite site) {
  switch (site) {
    case FaultSite::BarrierArrive: return "barrier_arrive";
    case FaultSite::BlackboardPublish: return "blackboard_publish";
    case FaultSite::MailboxPut: return "mailbox_put";
    case FaultSite::MailboxRecv: return "mailbox_recv";
    case FaultSite::Alltoall: return "alltoall";
    case FaultSite::AlltoallvFlat: return "alltoallv_flat";
  }
  return "unknown_site";
}

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::Throw: return "throw";
    case FaultKind::Delay: return "delay";
    case FaultKind::AllocFail: return "alloc_fail";
    case FaultKind::Stall: return "stall";
    case FaultKind::Permanent: return "permanent";
  }
  return "unknown_kind";
}

bool fault_alloc_fail_armed() { return t_alloc_fail_armed; }

bool fault_consume_alloc_fail() {
  if (!t_alloc_fail_armed) return false;
  t_alloc_fail_armed = false;
  return true;
}

FaultPlan::FaultPlan(int nprocs, u64 seed)
    : nprocs_(nprocs), seed_(seed),
      visits_(static_cast<std::size_t>(nprocs)) {
  CHAOS_CHECK(nprocs >= 1, "fault plan needs at least one rank");
  reset();
}

FaultPlan& FaultPlan::add(const FaultSpec& spec) {
  CHAOS_CHECK(spec.rank >= -1 && spec.rank < nprocs_,
              "fault spec: rank out of range");
  CHAOS_CHECK(spec.nth_visit >= 1, "fault spec: nth_visit is 1-based");
  specs_.push_back(spec);
  return *this;
}

void FaultPlan::reset() {
  for (auto& rv : visits_) {
    for (auto& v : rv.per_site) v.store(0, std::memory_order_relaxed);
  }
  fired_.store(0, std::memory_order_relaxed);
}

u64 FaultPlan::visits(FaultSite site, int rank) const {
  return visits_[static_cast<std::size_t>(rank)]
      .per_site[static_cast<int>(site)]
      .load(std::memory_order_relaxed);
}

void FaultPlan::on_visit(Machine& m, FaultSite site, int rank) {
  const u64 visit =
      visits_[static_cast<std::size_t>(rank)]
          .per_site[static_cast<int>(site)]
          .fetch_add(1, std::memory_order_relaxed) +
      1;
  // The armed flag must not survive ANY exit from this visit — in
  // particular a Throw spec firing after an AllocFail spec armed would
  // otherwise leave the flag set and fail an unrelated later allocation on
  // this thread (e.g. inside a catch block building its error report).
  struct DisarmGuard {
    ~DisarmGuard() { t_alloc_fail_armed = false; }
  } disarm_on_exit;
  for (const FaultSpec& s : specs_) {
    if (s.site != site) continue;
    if (s.rank >= 0 && s.rank != rank) continue;
    // Transient kinds detonate on exactly the Nth visit; a Permanent fault
    // keeps firing on every visit from the Nth onward — the rank is broken
    // for good, so no amount of retrying can sneak a clean pass through.
    const bool match = s.kind == FaultKind::Permanent ? visit >= s.nth_visit
                                                      : visit == s.nth_visit;
    if (!match) continue;
    fire(m, s, rank, visit);
  }
  if (t_alloc_fail_armed) {
    // Probe the allocator: a binary that hooks operator new (the PR 5
    // counting-hook idiom) consumes the flag and throws bad_alloc from
    // inside the allocator; a plain binary leaves the flag set and we
    // model the failed allocation ourselves.
    void* probe = ::operator new(1);
    ::operator delete(probe);
    if (fault_consume_alloc_fail()) throw std::bad_alloc();
  }
}

void FaultPlan::fire(Machine& m, const FaultSpec& spec, int rank, u64 visit) {
  fired_.fetch_add(1, std::memory_order_relaxed);
  m.note_fault_injected();
  switch (spec.kind) {
    case FaultKind::Throw:
    case FaultKind::Permanent: {
      std::ostringstream os;
      os << "injected fault: " << fault_kind_name(spec.kind) << " at "
         << fault_site_name(spec.site) << " on rank " << rank << " (visit "
         << visit << ")";
      throw FaultInjected(os.str(), rank, static_cast<int>(spec.site));
    }
    case FaultKind::Delay: {
      f64 ms = spec.delay_ms;
      if (ms <= 0.0) {
        // Seeded duration in [0.5, 2) ms — deterministic per (seed, site,
        // rank), independent of host scheduling.
        const u64 h = splitmix64(seed_ ^ (static_cast<u64>(spec.site) << 8) ^
                                 static_cast<u64>(rank));
        ms = 0.5 + 1.5 * (static_cast<f64>(h >> 11) /
                          static_cast<f64>(1ull << 53));
      }
      std::this_thread::sleep_for(std::chrono::duration<f64, std::milli>(ms));
      return;
    }
    case FaultKind::AllocFail: {
      // Only ARM here; the probe (and the bad_alloc) happens at the end of
      // on_visit, under its scope guard, after every spec for this visit
      // has had its chance to fire. Splitting arm from probe is what makes
      // the guard meaningful: no unwind path can leak the armed flag.
      t_alloc_fail_armed = true;
      return;
    }
    case FaultKind::Stall: {
      // Park until a sibling's watchdog times out and poisons the machine,
      // then surface the poison like any released waiter — the stalled rank
      // must not hold Machine::run open forever.
      while (!m.is_poisoned()) {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
      }
      m.note_poisoned_wait();
      throw MachinePoisoned(
          "machine poisoned: this rank was stalled by an injected fault");
    }
  }
}

}  // namespace chaos::rt
