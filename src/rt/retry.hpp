// Retry policy for supervised re-execution of failed SPMD phases
// (DESIGN.md §11).
//
// Two orthogonal pieces live here. RetryPolicy is pure arithmetic: given a
// failed-attempt count it yields a deterministic exponential backoff with
// splitmix64-seeded jitter — wall-clock milliseconds only, never modeled
// time, so the virtual clock of the eventually-successful attempt is
// byte-identical to a clean run. is_retryable is the classification: the
// typed transients the fault layer can produce (an injected fault, a
// deadline timeout, a sibling's poison, allocation exhaustion) are worth a
// fresh attempt on a recovered machine; everything else — logic errors,
// CHAOS_CHECK violations, ScheduleInvalid — means the retry would fail the
// same way, so the supervisor rethrows immediately.
#pragma once

#include <exception>

#include "rt/types.hpp"

namespace chaos::rt {

/// Bounded exponential backoff with deterministic jitter. max_attempts
/// counts TOTAL tries (1 = no retry, today's default pipeline behavior).
struct RetryPolicy {
  int max_attempts = 3;
  f64 base_backoff_ms = 1.0;    ///< backoff after the first failure
  f64 multiplier = 2.0;         ///< growth per further failure
  f64 max_backoff_ms = 250.0;   ///< cap before jitter is applied
  u64 jitter_seed = 0x9e3779b97f4a7c15ull;

  /// Wall-clock milliseconds to sleep after @p failed_attempts failures
  /// (1-based): min(base * multiplier^(n-1), cap) scaled by a jitter
  /// factor in [0.5, 1.5) derived from splitmix64(jitter_seed, n) —
  /// identical across runs and hosts for the same policy.
  [[nodiscard]] f64 backoff_ms(int failed_attempts) const;
};

/// True when @p error is a transient worth retrying on a recovered
/// machine: FaultInjected, MachineTimeout, MachinePoisoned, or
/// std::bad_alloc. Logic errors (any other ChaosError, std::exception, or
/// foreign exception) return false — retrying deterministic breakage only
/// burns attempts.
[[nodiscard]] bool is_retryable(const std::exception_ptr& error);

}  // namespace chaos::rt
