// Epoch-stamped in-memory partner checkpoints (DESIGN.md §13).
//
// A CheckpointStore holds, per logical rank, a serialized snapshot of every
// registered distributed-array segment together with the identity that makes
// it restorable: the owning DAD's incarnation, the ReuseRegistry nmod stamp
// it was taken under, the global array extent, and the owned global indices
// themselves. Snapshots are self-describing on purpose — after a permanent
// rank failure the dead rank's segment must be reconstructible from its
// buddy's copy alone, with no access to the dead rank's distribution object.
//
// Placement is the classic partner scheme: rank r's snapshot lives on rank
// (r+1) mod P (its buddy), shipped through the existing flat CSR exchange so
// the capture carries an honest modeled collective charge and passes through
// the same fault-injection sites (Alltoall, AlltoallvFlat) as any other
// collective. The store itself is host memory shared by all ranks of one
// Machine: "on the buddy" is a placement/modeling statement (the buddy pays
// the receive charge and performs the deposit), and it is what makes the
// restore story honest — the data provably crossed a rank boundary before
// the failure.
//
// Capture is two-phase. The collective capture() deposits into a STAGING
// area (one writer per slot: the buddy of each source rank); the host-side
// commit() — called only after the supervised checkpoint phase returned
// cleanly — atomically promotes staging to the committed checkpoint and
// frees the superseded epoch (the GC). A capture that faults mid-exchange
// unwinds before commit, so the previous committed checkpoint always
// survives a failed attempt.
#pragma once

#include <mutex>
#include <span>
#include <vector>

#include "rt/machine.hpp"
#include "rt/types.hpp"

namespace chaos::rt {

/// Caller-supplied view of one registered segment at capture time. Spans
/// must stay valid for the duration of the capture call only.
struct SegmentView {
  u64 array_id = 0;      ///< caller's stable id (registration order index)
  u64 incarnation = 0;   ///< owning distribution's DAD incarnation
  u64 nmod = 0;          ///< ReuseRegistry modification stamp at capture
  i64 global_size = 0;   ///< global extent of the array
  i64 elem_size = 0;     ///< sizeof one element (trivially copyable)
  std::span<const i64> globals;        ///< owned globals, local-index order
  std::span<const std::byte> values;   ///< owned values, same order
};

/// Deserialized snapshot of one segment, as deposited on the buddy.
struct SegmentSnapshot {
  u64 array_id = 0;
  u64 incarnation = 0;
  u64 nmod = 0;
  i64 global_size = 0;
  i64 elem_size = 0;
  std::vector<i64> globals;
  std::vector<std::byte> values;
};

/// One rank's full checkpoint: every registered segment at one epoch.
struct RankCheckpoint {
  u64 epoch = 0;
  int rank = -1;   ///< source logical rank (at capture-time numbering)
  int width = 0;   ///< active machine width when the capture ran
  std::vector<SegmentSnapshot> segments;
};

/// Partner-mirrored, epoch-stamped checkpoint store for one Machine.
/// capture() is collective (call from every active rank of a run);
/// commit()/discard_staged()/accessors are host-side, between runs.
class CheckpointStore {
 public:
  explicit CheckpointStore(int max_nprocs);

  /// The buddy that holds @p rank's snapshot at machine width @p nprocs.
  [[nodiscard]] static int partner_of(int rank, int nprocs) {
    return (rank + 1) % nprocs;
  }

  /// Collective. Serializes this rank's @p segments, ships the blob to the
  /// buddy through exchange_csr (modeled charge + fault-injection sites),
  /// and stages the received snapshot. Every active rank must pass the same
  /// @p epoch and the same number of segments in the same registration
  /// order (SPMD). Throws — without corrupting the committed checkpoint —
  /// if the underlying exchange faults.
  void capture(Process& p, u64 epoch, std::span<const SegmentView> segments);

  /// Host-side, after the capture phase succeeded: promotes staging to the
  /// committed checkpoint and frees the superseded epoch's payloads.
  /// Throws if staging is absent or incomplete (a failed capture phase was
  /// never a commit candidate — call discard_staged() instead).
  void commit();

  /// Host-side: drops whatever a failed capture attempt staged. The
  /// committed checkpoint is untouched. Safe to call with nothing staged.
  void discard_staged();

  [[nodiscard]] bool has_committed() const;
  /// Epoch / capture-time machine width of the committed checkpoint.
  [[nodiscard]] u64 epoch() const;
  [[nodiscard]] int width() const;
  /// Committed snapshot of @p rank (0 <= rank < width()).
  [[nodiscard]] const RankCheckpoint& of(int rank) const;

  /// Number of commit() promotions over the store's lifetime.
  [[nodiscard]] i64 commits() const;
  /// Serialized payload bytes held by the committed checkpoint (the live
  /// memory cost; superseded epochs are freed on commit, which the GC test
  /// asserts through this number).
  [[nodiscard]] i64 committed_bytes() const;

  [[nodiscard]] int max_nprocs() const { return max_nprocs_; }

 private:
  void deposit(RankCheckpoint&& ck);

  int max_nprocs_;
  mutable std::mutex mutex_;
  std::vector<RankCheckpoint> staged_;     // [source rank]
  std::vector<u8> staged_ok_;              // slot deposited this round
  int staged_count_ = 0;
  u64 staged_epoch_ = 0;
  int staged_width_ = 0;
  std::vector<RankCheckpoint> committed_;  // [source rank]
  bool has_committed_ = false;
  u64 committed_epoch_ = 0;
  int committed_width_ = 0;
  i64 commits_ = 0;
};

}  // namespace chaos::rt
