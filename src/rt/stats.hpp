// Message-traffic counters, kept per logical process and aggregated by the
// Machine. Used by benches to report message counts / volumes alongside
// modeled times.
#pragma once

#include "rt/types.hpp"

namespace chaos::rt {

/// Plain per-process counters (each process only touches its own instance, so
/// no atomics are needed; aggregation happens after the SPMD region joins).
struct MessageStats {
  i64 messages_sent = 0;
  i64 bytes_sent = 0;
  i64 messages_received = 0;
  i64 bytes_received = 0;
  i64 collectives = 0;
  i64 barriers = 0;
  /// Personalized all-to-all exchanges (nested or flat) and the off-process
  /// payload they carried in the send direction. Lets BENCH files report the
  /// modeled volume of one executor sweep without re-deriving it from the
  /// schedule.
  i64 alltoallv_calls = 0;
  i64 alltoallv_bytes = 0;
  /// Inspector translation-cache outcome counters (dist::TranslationCache
  /// probes made by localize): hits resolve locally, misses go through the
  /// translation-table locate round.
  i64 tcache_hits = 0;
  i64 tcache_misses = 0;
  /// Flat-dereference traffic (dist::TranslationTable::dereference_flat):
  /// calls made and post-dedup request words shipped. Separate from the
  /// nested counters so benches can gate each protocol independently.
  i64 ttable_flat_calls = 0;
  i64 ttable_flat_wire_queries = 0;
  /// Robustness counters (DESIGN.md §10), machine-level: faults fired by an
  /// installed FaultPlan, deadline expiries that raised MachineTimeout, and
  /// blocked waits released by poison instead of completing. Table runs must
  /// show all three at zero by construction; the fault sweep shows them
  /// nonzero. Aggregated into total_stats() only (the events happen inside
  /// Machine/Mailbox waits, below the per-Process stats objects).
  i64 faults_injected = 0;
  i64 timeouts = 0;
  i64 poisoned_waits = 0;
  /// Degradation counters (DESIGN.md §13): partner-checkpoint captures made
  /// by rt::CheckpointStore (and the serialized snapshot bytes shipped to
  /// the buddy rank), plus segments adopted back — and their payload bytes —
  /// by core::restore_shrunk after a permanent rank failure. All zero on a
  /// healthy run; the table benches fold them into the robustness footer.
  i64 checkpoint_captures = 0;
  i64 checkpoint_bytes = 0;
  i64 restored_segments = 0;
  i64 restored_bytes = 0;
  /// Incremental schedule repair (DESIGN.md §14): schedules spliced in
  /// place by the delta path, and repair attempts that fell back to a full
  /// re-inspection (voted delta fraction over threshold, or a hard
  /// ineligibility). Both zero on any non-adaptive run — the bench footer
  /// asserts it.
  i64 schedule_repairs = 0;
  i64 repair_fallbacks = 0;

  void note_send(i64 bytes) {
    ++messages_sent;
    bytes_sent += bytes;
  }
  void note_recv(i64 bytes) {
    ++messages_received;
    bytes_received += bytes;
  }
  void note_alltoallv(i64 bytes_off_process) {
    ++alltoallv_calls;
    alltoallv_bytes += bytes_off_process;
  }
  void note_checkpoint(i64 snapshot_bytes) {
    ++checkpoint_captures;
    checkpoint_bytes += snapshot_bytes;
  }
  void note_restore(i64 segments, i64 bytes) {
    restored_segments += segments;
    restored_bytes += bytes;
  }

  MessageStats& operator+=(const MessageStats& o) {
    messages_sent += o.messages_sent;
    bytes_sent += o.bytes_sent;
    messages_received += o.messages_received;
    bytes_received += o.bytes_received;
    collectives += o.collectives;
    barriers += o.barriers;
    alltoallv_calls += o.alltoallv_calls;
    alltoallv_bytes += o.alltoallv_bytes;
    tcache_hits += o.tcache_hits;
    tcache_misses += o.tcache_misses;
    ttable_flat_calls += o.ttable_flat_calls;
    ttable_flat_wire_queries += o.ttable_flat_wire_queries;
    faults_injected += o.faults_injected;
    timeouts += o.timeouts;
    poisoned_waits += o.poisoned_waits;
    checkpoint_captures += o.checkpoint_captures;
    checkpoint_bytes += o.checkpoint_bytes;
    restored_segments += o.restored_segments;
    restored_bytes += o.restored_bytes;
    schedule_repairs += o.schedule_repairs;
    repair_fallbacks += o.repair_fallbacks;
    return *this;
  }
};

}  // namespace chaos::rt
