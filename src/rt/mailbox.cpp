#include "rt/mailbox.hpp"

namespace chaos::rt {

void Mailbox::put(RawMessage msg) {
  {
    std::lock_guard lock(mutex_);
    queues_[{msg.source, msg.tag}].push_back(std::move(msg));
  }
  cv_.notify_all();
}

RawMessage Mailbox::take(int source, int tag) {
  std::unique_lock lock(mutex_);
  const Key key{source, tag};
  cv_.wait(lock, [&] {
    auto it = queues_.find(key);
    return it != queues_.end() && !it->second.empty();
  });
  auto it = queues_.find(key);
  RawMessage msg = std::move(it->second.front());
  it->second.pop_front();
  if (it->second.empty()) queues_.erase(it);
  return msg;
}

bool Mailbox::try_take(int source, int tag, RawMessage& out) {
  std::lock_guard lock(mutex_);
  auto it = queues_.find({source, tag});
  if (it == queues_.end() || it->second.empty()) return false;
  out = std::move(it->second.front());
  it->second.pop_front();
  if (it->second.empty()) queues_.erase(it);
  return true;
}

std::size_t Mailbox::pending() const {
  std::lock_guard lock(mutex_);
  std::size_t n = 0;
  for (const auto& [key, q] : queues_) n += q.size();
  return n;
}

}  // namespace chaos::rt
