#include "rt/mailbox.hpp"

#include <chrono>

namespace chaos::rt {

Mailbox::Mailbox(int nprocs, const std::atomic<bool>& poisoned,
                 std::atomic<i64>& poisoned_waits)
    : poisoned_(&poisoned), poisoned_waits_(&poisoned_waits) {
  CHAOS_CHECK(nprocs >= 1, "mailbox needs at least one source slot");
  slots_.reserve(static_cast<std::size_t>(nprocs));
  for (int s = 0; s < nprocs; ++s) slots_.push_back(std::make_unique<Slot>());
}

void Mailbox::put(RawMessage msg) {
  CHAOS_CHECK(msg.source >= 0 &&
                  msg.source < static_cast<int>(slots_.size()),
              "mailbox put: bad source rank");
  Slot& slot = *slots_[static_cast<std::size_t>(msg.source)];
  {
    std::lock_guard lock(slot.mutex);
    slot.queues[msg.tag].push_back(std::move(msg));
  }
  // The owner is the only thread that ever waits on this mailbox, so one
  // wakeup suffices; unrelated receives on other sources are untouched.
  slot.cv.notify_one();
}

RawMessage Mailbox::take(int source, int tag) {
  RawMessage msg;
  // deadline <= 0 waits forever, so take_deadline can only return true here.
  (void)take_deadline(source, tag, 0.0, msg);
  return msg;
}

bool Mailbox::take_deadline(int source, int tag, f64 deadline_sec,
                            RawMessage& out) {
  CHAOS_CHECK(source >= 0 && source < static_cast<int>(slots_.size()),
              "mailbox take: bad source rank");
  Slot& slot = *slots_[static_cast<std::size_t>(source)];
  std::unique_lock lock(slot.mutex);
  auto matched = [&]() -> std::deque<RawMessage>* {
    auto it = slot.queues.find(tag);
    return it != slot.queues.end() && !it->second.empty() ? &it->second
                                                         : nullptr;
  };
  const bool bounded = deadline_sec > 0.0;
  const auto expiry =
      bounded ? std::chrono::steady_clock::now() +
                    std::chrono::duration_cast<std::chrono::steady_clock::
                                                   duration>(
                        std::chrono::duration<f64>(deadline_sec))
              : std::chrono::steady_clock::time_point::max();
  std::deque<RawMessage>* q = nullptr;
  while ((q = matched()) == nullptr) {
    if (poisoned_->load(std::memory_order_acquire)) {
      poisoned_waits_->fetch_add(1, std::memory_order_relaxed);
      throw MachinePoisoned(
          "machine poisoned: a sibling rank threw while this rank was "
          "blocked in recv");
    }
    if (!bounded) {
      slot.cv.wait(lock);
    } else if (slot.cv.wait_until(lock, expiry) ==
                   std::cv_status::timeout &&
               matched() == nullptr &&
               !poisoned_->load(std::memory_order_acquire)) {
      return false;  // deadline expired with no matching message
    }
  }
  out = std::move(q->front());
  q->pop_front();
  if (q->empty()) slot.queues.erase(tag);
  return true;
}

bool Mailbox::try_take(int source, int tag, RawMessage& out) {
  CHAOS_CHECK(source >= 0 && source < static_cast<int>(slots_.size()),
              "mailbox try_take: bad source rank");
  Slot& slot = *slots_[static_cast<std::size_t>(source)];
  std::lock_guard lock(slot.mutex);
  auto it = slot.queues.find(tag);
  if (it == slot.queues.end() || it->second.empty()) return false;
  out = std::move(it->second.front());
  it->second.pop_front();
  if (it->second.empty()) slot.queues.erase(it);
  return true;
}

std::size_t Mailbox::pending() const {
  std::size_t n = 0;
  for (const auto& slot : slots_) {
    std::lock_guard lock(slot->mutex);
    for (const auto& [tag, q] : slot->queues) n += q.size();
  }
  return n;
}

std::size_t Mailbox::pending_from(int source) const {
  CHAOS_CHECK(source >= 0 && source < static_cast<int>(slots_.size()),
              "mailbox pending_from: bad source rank");
  const Slot& slot = *slots_[static_cast<std::size_t>(source)];
  std::lock_guard lock(slot.mutex);
  std::size_t n = 0;
  for (const auto& [tag, q] : slot.queues) n += q.size();
  return n;
}

void Mailbox::poison_wake() {
  // Lock each slot so the wakeup cannot slip between a waiter's poison
  // check and its wait(): the flag store (already published by the caller)
  // is observed on the next iteration of every take() loop.
  for (const auto& slot : slots_) {
    std::lock_guard lock(slot->mutex);
    slot->cv.notify_all();
  }
}

i64 Mailbox::drain(std::span<i64> per_source) {
  CHAOS_CHECK(per_source.empty() || per_source.size() == slots_.size(),
              "mailbox drain: per-source output has wrong slot count");
  i64 dropped = 0;
  for (std::size_t s = 0; s < slots_.size(); ++s) {
    Slot& slot = *slots_[s];
    std::lock_guard lock(slot.mutex);
    i64 here = 0;
    for (const auto& [tag, q] : slot.queues) here += static_cast<i64>(q.size());
    slot.queues.clear();
    if (!per_source.empty()) per_source[s] = here;
    dropped += here;
  }
  return dropped;
}

}  // namespace chaos::rt
