// Deterministic cost model standing in for the Intel iPSC/860 hypercube used
// in the paper's evaluation (see DESIGN.md §2). Each logical process carries a
// VirtualClock; runtime operations charge it with modeled microseconds.
#pragma once

#include <algorithm>
#include <cmath>

#include "rt/types.hpp"

namespace chaos::rt {

/// Machine parameters of the simulated target. Defaults approximate an Intel
/// iPSC/860 node: ~136 us message startup, ~2.8 MB/s sustained channel
/// bandwidth, and an effective irregular-kernel compute rate of ~5 MFLOPS
/// (the i860 sustained far below peak on gather/scatter codes).
struct CostParams {
  f64 alpha_send_us = 136.0;   ///< per-message startup cost on the sender
  f64 alpha_recv_us = 68.0;    ///< per-message overhead on the receiver
  f64 beta_us_per_byte = 0.36; ///< per-byte transfer cost (~2.8 MB/s)
  f64 flop_us = 0.2;           ///< one floating-point op in irregular code
  f64 mem_us_per_word = 0.06;  ///< one indirect (gather/scatter) word access
  f64 barrier_hop_us = 150.0;  ///< per-hypercube-dimension barrier cost

  /// Cost of a barrier among @p nprocs processes (log2 hops on a hypercube).
  [[nodiscard]] f64 barrier_us(int nprocs) const {
    return barrier_hop_us * hops(nprocs);
  }

  /// Cost of one point-to-point message of @p bytes as seen by the sender.
  [[nodiscard]] f64 send_us(i64 bytes) const {
    return alpha_send_us + beta_us_per_byte * static_cast<f64>(bytes);
  }

  /// Cost of receiving one message of @p bytes.
  [[nodiscard]] f64 recv_us(i64 bytes) const {
    return alpha_recv_us + beta_us_per_byte * static_cast<f64>(bytes);
  }

  /// Cost of a small-payload recursive-doubling collective (allreduce,
  /// small broadcast): one message exchange per hypercube dimension.
  [[nodiscard]] f64 small_collective_us(int nprocs, i64 bytes) const {
    return hops(nprocs) * (alpha_send_us + alpha_recv_us +
                           beta_us_per_byte * static_cast<f64>(bytes));
  }

  static f64 hops(int nprocs) {
    return nprocs <= 1 ? 0.0 : std::ceil(std::log2(static_cast<f64>(nprocs)));
  }
};

/// Per-process virtual time. Deterministic: advanced only by explicit charges
/// derived from message sizes and operation counts, never by wall-clock.
class VirtualClock {
 public:
  /// Adds @p us of modeled local work or communication time.
  void charge(f64 us) { now_us_ += us; }

  /// Charges @p n operations at @p per_op_us each.
  void charge_ops(i64 n, f64 per_op_us) {
    now_us_ += static_cast<f64>(n) * per_op_us;
  }

  /// Ensures the clock is at least @p us (message-arrival coupling).
  void advance_to(f64 us) { now_us_ = std::max(now_us_, us); }

  [[nodiscard]] f64 now_us() const { return now_us_; }
  [[nodiscard]] f64 now_sec() const { return now_us_ * 1e-6; }
  void reset() { now_us_ = 0.0; }

 private:
  f64 now_us_ = 0.0;
};

/// A labelled interval of virtual time; used by benches to attribute cost to
/// pipeline phases (partitioner / inspector / remap / executor).
class ClockSection {
 public:
  explicit ClockSection(const VirtualClock& clock)
      : clock_(&clock), start_us_(clock.now_us()) {}

  /// Virtual microseconds elapsed since construction.
  [[nodiscard]] f64 elapsed_us() const { return clock_->now_us() - start_us_; }
  [[nodiscard]] f64 elapsed_sec() const { return elapsed_us() * 1e-6; }

 private:
  const VirtualClock* clock_;
  f64 start_us_;
};

}  // namespace chaos::rt
