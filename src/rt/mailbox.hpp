// Point-to-point message queues backing the virtual distributed machine.
// One Mailbox per logical process; senders deposit, the owner blocks on
// (source, tag) matched receives. Per-(source, tag) FIFO order is preserved,
// which makes message matching deterministic for deterministic senders.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <map>
#include <mutex>
#include <utility>
#include <vector>

#include "rt/types.hpp"

namespace chaos::rt {

/// An untyped in-flight message. @c ready_time_us is the sender's virtual
/// time at which the message is fully on the wire; receivers advance their
/// clock to at least this value, modeling sender/receiver time coupling.
struct RawMessage {
  int source = -1;
  int tag = 0;
  f64 ready_time_us = 0.0;
  std::vector<std::byte> payload;
};

/// Thread-safe matched-receive queue for one logical process.
class Mailbox {
 public:
  /// Deposits a message; wakes any receiver blocked on its (source, tag).
  void put(RawMessage msg);

  /// Blocks until a message from @p source with @p tag is available and
  /// removes it from the queue.
  RawMessage take(int source, int tag);

  /// Non-blocking variant; returns false if no matching message is queued.
  bool try_take(int source, int tag, RawMessage& out);

  /// Number of queued messages across all (source, tag) keys.
  [[nodiscard]] std::size_t pending() const;

 private:
  using Key = std::pair<int, int>;  // (source, tag)

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::map<Key, std::deque<RawMessage>> queues_;
};

}  // namespace chaos::rt
