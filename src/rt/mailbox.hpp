// Point-to-point message queues backing the virtual distributed machine.
// One Mailbox per logical process, sharded into one slot per source rank:
// a sender only ever locks its own slot of the destination mailbox, so
// concurrent puts from different sources never contend, and a wakeup only
// reaches the receiver when its matched source actually delivered.
// Per-(source, tag) FIFO order is preserved, which makes message matching
// deterministic for deterministic senders.
//
// Poison protocol: the owning Machine points every mailbox at its poisoned
// flag. When a sibling rank throws, the machine sets the flag and calls
// poison_wake(); any receiver blocked in take() is released with
// MachinePoisoned instead of waiting for a message that will never come.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "rt/types.hpp"

namespace chaos::rt {

/// An untyped in-flight message. @c ready_time_us is the sender's virtual
/// time at which the message is fully on the wire; receivers advance their
/// clock to at least this value, modeling sender/receiver time coupling.
struct RawMessage {
  int source = -1;
  int tag = 0;
  f64 ready_time_us = 0.0;
  std::vector<std::byte> payload;
};

/// Thread-safe matched-receive queue for one logical process, sharded by
/// source rank.
class Mailbox {
 public:
  /// @p poisoned is the owning machine's poison flag; take() rechecks it on
  /// every wakeup so a poisoned machine cannot leave a receiver blocked.
  /// @p poisoned_waits is the machine's released-by-poison tally, bumped
  /// whenever a blocked take is cut short by poison.
  Mailbox(int nprocs, const std::atomic<bool>& poisoned,
          std::atomic<i64>& poisoned_waits);

  /// Deposits a message; wakes a receiver blocked on its source slot. Only
  /// the slot of msg.source is locked.
  void put(RawMessage msg);

  /// Blocks until a message from @p source with @p tag is available and
  /// removes it from the queue. Throws MachinePoisoned if a sibling rank
  /// failed while we were (or would be) waiting.
  RawMessage take(int source, int tag);

  /// As take(), but gives up after @p deadline_sec wall seconds of waiting:
  /// returns true with the message in @p out, or false on expiry (the
  /// caller — Process::recv_deadline — owns raising the typed
  /// MachineTimeout, since it knows the virtual clock). deadline_sec <= 0
  /// waits forever, identical to take(). Still throws MachinePoisoned when
  /// a sibling failed.
  [[nodiscard]] bool take_deadline(int source, int tag, f64 deadline_sec,
                                   RawMessage& out);

  /// Non-blocking variant; returns false if no matching message is queued.
  bool try_take(int source, int tag, RawMessage& out);

  /// Number of queued messages across all (source, tag) keys.
  [[nodiscard]] std::size_t pending() const;

  /// Number of queued messages in the shard of @p source alone — lets a
  /// recovery test assert every shard individually drained, not just the
  /// aggregate.
  [[nodiscard]] std::size_t pending_from(int source) const;

  /// Wakes every blocked receiver so it can observe the poison flag.
  void poison_wake();

  /// Drops all queued messages, shard by shard, and returns how many were
  /// dropped — the count of undelivered in-flight messages a failed run
  /// left behind. Machine::recover() sums this across ranks. When
  /// @p per_source is non-empty it must have one element per source slot
  /// and receives each shard's individual drop count, so a supervisor can
  /// report exactly WHICH sender/receiver pairs were mid-flight instead of
  /// one opaque total (Machine::recover_report).
  i64 drain(std::span<i64> per_source = {});

  /// Drops all queued messages (between two runs of a reused Machine).
  void clear() { (void)drain(); }

 private:
  struct Slot {
    mutable std::mutex mutex;
    std::condition_variable cv;
    std::map<int, std::deque<RawMessage>> queues;  // tag -> FIFO
  };

  std::vector<std::unique_ptr<Slot>> slots_;  // one per source rank
  const std::atomic<bool>* poisoned_;
  std::atomic<i64>* poisoned_waits_;
};

}  // namespace chaos::rt
