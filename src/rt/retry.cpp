#include "rt/retry.hpp"

#include <algorithm>
#include <new>

namespace chaos::rt {

namespace {

/// splitmix64 — the repo's standard cheap mixer (inspector dedup, rng.hpp,
/// fault delays).
u64 splitmix64(u64 x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

f64 RetryPolicy::backoff_ms(int failed_attempts) const {
  if (failed_attempts < 1) return 0.0;
  f64 ms = base_backoff_ms;
  for (int i = 1; i < failed_attempts; ++i) {
    ms *= multiplier;
    if (ms >= max_backoff_ms) break;  // saturated; stop before overflow
  }
  ms = std::min(std::max(ms, 0.0), max_backoff_ms);
  const u64 h = splitmix64(jitter_seed ^ static_cast<u64>(failed_attempts));
  const f64 unit =
      static_cast<f64>(h >> 11) / static_cast<f64>(1ull << 53);  // [0, 1)
  return ms * (0.5 + unit);
}

bool is_retryable(const std::exception_ptr& error) {
  if (!error) return false;
  // Order matters: the retryable ChaosError subclasses must be caught
  // before the ChaosError base, which is NOT retryable (CHAOS_CHECK
  // violations, ScheduleInvalid — deterministic breakage).
  try {
    std::rethrow_exception(error);
  } catch (const FaultInjected&) {
    return true;
  } catch (const MachineTimeout&) {
    return true;
  } catch (const MachinePoisoned&) {
    return true;
  } catch (const std::bad_alloc&) {
    return true;
  } catch (...) {
    return false;
  }
}

}  // namespace chaos::rt
