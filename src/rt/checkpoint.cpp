#include "rt/checkpoint.hpp"

#include <cstring>

#include "rt/collectives.hpp"

namespace chaos::rt {

namespace {

/// Fixed-width per-segment header, memcpy'd in and out of the blob (the
/// wire format must not depend on struct padding, so it is all 8-byte
/// fields and trivially copyable).
struct SegmentHeader {
  u64 array_id;
  u64 incarnation;
  u64 nmod;
  i64 global_size;
  i64 elem_size;
  i64 count;  ///< owned elements in this segment
};
static_assert(sizeof(SegmentHeader) == 48);

i64 pad8(i64 n) { return (n + 7) & ~i64{7}; }

void append_bytes(std::vector<std::byte>& blob, const void* src, i64 n) {
  const auto old = blob.size();
  blob.resize(old + static_cast<std::size_t>(n));
  if (n > 0) std::memcpy(blob.data() + old, src, static_cast<std::size_t>(n));
}

}  // namespace

CheckpointStore::CheckpointStore(int max_nprocs)
    : max_nprocs_(max_nprocs),
      staged_(static_cast<std::size_t>(max_nprocs)),
      staged_ok_(static_cast<std::size_t>(max_nprocs), 0),
      committed_(static_cast<std::size_t>(max_nprocs)) {
  CHAOS_CHECK(max_nprocs >= 1, "checkpoint store needs at least one rank");
}

void CheckpointStore::capture(Process& p, u64 epoch,
                              std::span<const SegmentView> segments) {
  const int np = p.nprocs();
  CHAOS_CHECK(np <= max_nprocs_,
              "checkpoint capture: machine wider than the store");
  // Serialize my segments: header, globals, values, each padded to 8 bytes
  // so every header lands naturally aligned for the memcpy decode.
  std::vector<std::byte> blob;
  i64 total = 0;
  for (const SegmentView& v : segments) {
    CHAOS_CHECK(v.elem_size > 0, "checkpoint capture: bad element size");
    CHAOS_CHECK(static_cast<i64>(v.values.size()) ==
                    static_cast<i64>(v.globals.size()) * v.elem_size,
                "checkpoint capture: globals/values length mismatch");
    total += static_cast<i64>(sizeof(SegmentHeader)) +
             static_cast<i64>(v.globals.size_bytes()) +
             pad8(static_cast<i64>(v.values.size()));
  }
  blob.reserve(static_cast<std::size_t>(total));
  for (const SegmentView& v : segments) {
    SegmentHeader h{v.array_id, v.incarnation,         v.nmod,
                    v.global_size, v.elem_size,
                    static_cast<i64>(v.globals.size())};
    append_bytes(blob, &h, sizeof(h));
    append_bytes(blob, v.globals.data(),
                 static_cast<i64>(v.globals.size_bytes()));
    append_bytes(blob, v.values.data(), static_cast<i64>(v.values.size()));
    const i64 pad = pad8(static_cast<i64>(v.values.size())) -
                    static_cast<i64>(v.values.size());
    for (i64 k = 0; k < pad; ++k) blob.push_back(std::byte{0});
  }

  // Ship the whole blob to my buddy through the flat CSR exchange: one
  // honest modeled collective (counts round + payload round), passing the
  // same fault-injection sites as any production exchange.
  const int partner = partner_of(p.rank(), np);
  std::vector<i64> send_offsets(static_cast<std::size_t>(np) + 1, 0);
  for (int r = 0; r <= np; ++r) {
    send_offsets[static_cast<std::size_t>(r)] =
        r > partner ? static_cast<i64>(blob.size()) : 0;
  }
  std::vector<std::byte> recv;
  std::vector<i64> recv_offsets;
  std::vector<i64> counts_scratch;
  exchange_csr<std::byte>(p, blob, send_offsets, recv, recv_offsets,
                          counts_scratch);
  p.stats().note_checkpoint(static_cast<i64>(blob.size()));

  // Deserialize the snapshot I now hold for my source (the rank whose buddy
  // I am) and stage it. Exactly one rank deposits into each staging slot.
  const int src = (p.rank() - 1 + np) % np;
  const std::byte* cur = recv.data() + recv_offsets[static_cast<std::size_t>(src)];
  const std::byte* end =
      recv.data() + recv_offsets[static_cast<std::size_t>(src) + 1];
  RankCheckpoint ck;
  ck.epoch = epoch;
  ck.rank = src;
  ck.width = np;
  ck.segments.reserve(segments.size());
  while (cur < end) {
    CHAOS_CHECK(end - cur >= static_cast<std::ptrdiff_t>(sizeof(SegmentHeader)),
                "checkpoint capture: truncated snapshot header");
    SegmentHeader h;
    std::memcpy(&h, cur, sizeof(h));
    cur += sizeof(h);
    CHAOS_CHECK(h.count >= 0 && h.elem_size > 0,
                "checkpoint capture: corrupt snapshot header");
    const i64 gbytes = h.count * static_cast<i64>(sizeof(i64));
    const i64 vbytes = h.count * h.elem_size;
    CHAOS_CHECK(end - cur >= gbytes + pad8(vbytes),
                "checkpoint capture: truncated snapshot payload");
    SegmentSnapshot s;
    s.array_id = h.array_id;
    s.incarnation = h.incarnation;
    s.nmod = h.nmod;
    s.global_size = h.global_size;
    s.elem_size = h.elem_size;
    s.globals.resize(static_cast<std::size_t>(h.count));
    if (gbytes > 0) std::memcpy(s.globals.data(), cur, static_cast<std::size_t>(gbytes));
    cur += gbytes;
    s.values.resize(static_cast<std::size_t>(vbytes));
    if (vbytes > 0) std::memcpy(s.values.data(), cur, static_cast<std::size_t>(vbytes));
    cur += pad8(vbytes);
    ck.segments.push_back(std::move(s));
  }
  CHAOS_CHECK(ck.segments.size() == segments.size(),
              "checkpoint capture: peer snapshot has wrong segment count");
  deposit(std::move(ck));
}

void CheckpointStore::deposit(RankCheckpoint&& ck) {
  std::lock_guard lock(mutex_);
  if (staged_count_ == 0 || staged_epoch_ != ck.epoch ||
      staged_width_ != ck.width) {
    // First deposit of a new capture round: supersede stale staging from an
    // abandoned earlier round (different epoch or width). A RETRIED round
    // keeps the matching slots — they are simply overwritten below.
    for (auto& f : staged_ok_) f = 0;
    staged_count_ = 0;
    staged_epoch_ = ck.epoch;
    staged_width_ = ck.width;
  }
  const auto slot = static_cast<std::size_t>(ck.rank);
  if (!staged_ok_[slot]) {
    staged_ok_[slot] = 1;
    ++staged_count_;
  }
  staged_[slot] = std::move(ck);
}

void CheckpointStore::commit() {
  std::lock_guard lock(mutex_);
  CHAOS_CHECK(staged_count_ > 0, "checkpoint commit: nothing staged");
  CHAOS_CHECK(staged_count_ == staged_width_,
              "checkpoint commit: capture incomplete — a failed phase must "
              "be discarded, not committed");
  for (int r = 0; r < staged_width_; ++r) {
    // Move-assign frees the superseded epoch's payload slot by slot — this
    // IS the garbage collection of old snapshots.
    committed_[static_cast<std::size_t>(r)] =
        std::move(staged_[static_cast<std::size_t>(r)]);
    staged_ok_[static_cast<std::size_t>(r)] = 0;
  }
  for (int r = staged_width_; r < max_nprocs_; ++r) {
    committed_[static_cast<std::size_t>(r)] = RankCheckpoint{};
  }
  committed_epoch_ = staged_epoch_;
  committed_width_ = staged_width_;
  has_committed_ = true;
  ++commits_;
  staged_count_ = 0;
}

void CheckpointStore::discard_staged() {
  std::lock_guard lock(mutex_);
  for (int r = 0; r < max_nprocs_; ++r) {
    if (staged_ok_[static_cast<std::size_t>(r)]) {
      staged_[static_cast<std::size_t>(r)] = RankCheckpoint{};
      staged_ok_[static_cast<std::size_t>(r)] = 0;
    }
  }
  staged_count_ = 0;
}

bool CheckpointStore::has_committed() const {
  std::lock_guard lock(mutex_);
  return has_committed_;
}

u64 CheckpointStore::epoch() const {
  std::lock_guard lock(mutex_);
  CHAOS_CHECK(has_committed_, "checkpoint epoch: nothing committed");
  return committed_epoch_;
}

int CheckpointStore::width() const {
  std::lock_guard lock(mutex_);
  CHAOS_CHECK(has_committed_, "checkpoint width: nothing committed");
  return committed_width_;
}

const RankCheckpoint& CheckpointStore::of(int rank) const {
  std::lock_guard lock(mutex_);
  CHAOS_CHECK(has_committed_, "checkpoint of: nothing committed");
  CHAOS_CHECK(rank >= 0 && rank < committed_width_,
              "checkpoint of: rank outside the committed width");
  return committed_[static_cast<std::size_t>(rank)];
}

i64 CheckpointStore::commits() const {
  std::lock_guard lock(mutex_);
  return commits_;
}

i64 CheckpointStore::committed_bytes() const {
  std::lock_guard lock(mutex_);
  i64 bytes = 0;
  for (int r = 0; r < committed_width_; ++r) {
    for (const SegmentSnapshot& s :
         committed_[static_cast<std::size_t>(r)].segments) {
      bytes += static_cast<i64>(s.globals.size() * sizeof(i64)) +
               static_cast<i64>(s.values.size());
    }
  }
  return bytes;
}

}  // namespace chaos::rt
