#include "rt/machine.hpp"

#include <bit>
#include <chrono>

namespace chaos::rt {

namespace {

/// Pause instruction for the short pre-yield spin window.
inline void cpu_pause() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__) || defined(__arm__)
  asm volatile("yield");
#endif
}


/// Sentinel stored into the release words by poison(): larger than any real
/// pass number, it releases every waiter regardless of its target epoch.
constexpr chaos::u32 kPoisonEpoch = 0xffffffffu;

}  // namespace

Machine::Machine(int nprocs, CostParams params)
    : nprocs_(nprocs),
      // With a core per rank, spinning rides out the whole barrier; when
      // oversubscribed the ranks we wait for are not even running, so every
      // spin or yield only delays them — go straight to the futex sleep.
      spin_limit_(static_cast<int>(std::thread::hardware_concurrency()) >=
                          nprocs
                      ? 4096
                      : 0),
      yield_limit_(static_cast<int>(std::thread::hardware_concurrency()) >=
                           nprocs
                       ? 32
                       : 0),
      params_(params),
      bb_(static_cast<std::size_t>(nprocs) * 2),
      rank_state_(static_cast<std::size_t>(nprocs)),
      stats_(static_cast<std::size_t>(nprocs)),
      final_clock_us_(static_cast<std::size_t>(nprocs), 0.0),
      active_nprocs_(nprocs) {
  CHAOS_CHECK(nprocs >= 1, "machine needs at least one process");
  mailboxes_.reserve(static_cast<std::size_t>(nprocs));
  for (int r = 0; r < nprocs; ++r) {
    mailboxes_.push_back(
        std::make_unique<Mailbox>(nprocs, poisoned_, poisoned_waits_));
  }
  workers_.reserve(static_cast<std::size_t>(nprocs > 1 ? nprocs - 1 : 0));
  for (int r = 1; r < nprocs; ++r) {
    workers_.emplace_back(&Machine::worker_loop, this, r);
  }
}

Machine::~Machine() {
  {
    std::lock_guard lock(pool_mutex_);
    stop_ = true;
  }
  pool_cv_.notify_all();
  for (auto& t : workers_) t.join();
}

void Machine::wait_epoch(std::atomic<u32>& epoch, u32 target, int rank,
                         f64 now_us) {
  // Snapshot the deadline once per wait: 0 keeps the futex fast path
  // byte-for-byte (no clock reads, no extra state); a positive deadline
  // swaps only the terminal futex sleep for a bounded poll — spins and
  // yields are unchanged, so the uncontended latency is identical.
  const f64 deadline = deadline_sec_.load(std::memory_order_relaxed);
  std::chrono::steady_clock::time_point wait_start{};
  bool timing = false;
  int spins = 0;
  int yields = 0;
  u32 seen;
  while ((seen = epoch.load(std::memory_order_acquire)) < target) {
    if (poisoned_.load(std::memory_order_acquire)) break;
    if (spins < spin_limit_) {
      ++spins;
      cpu_pause();
    } else if (yields < yield_limit_) {
      ++yields;
      std::this_thread::yield();
    } else if (deadline <= 0.0) {
      // Futex sleep until the cell changes. poison() cannot just notify —
      // a notify between our poison check and this wait would be missed —
      // so it also stores a sentinel epoch into the cell, changing the
      // waited-on value itself.
      epoch.wait(seen, std::memory_order_acquire);
    } else {
      // Watchdog mode: std::atomic::wait has no timeout, so poll on a
      // short sleep and raise the typed timeout when the deadline passes.
      const auto now = std::chrono::steady_clock::now();
      if (!timing) {
        wait_start = now;
        timing = true;
      } else if (std::chrono::duration<f64>(now - wait_start).count() >=
                 deadline) {
        // Name the stragglers: every ACTIVE rank whose own pass counter has
        // not reached this pass never arrived (arrivals bump the counter
        // before folding, so waiting peers all read >= target). Ranks
        // beyond the shrunken view never run, so scanning them would
        // accuse the already-declared-dead.
        std::vector<int> missing;
        const int active = active_nprocs_.load(std::memory_order_relaxed);
        for (int r = 0; r < active; ++r) {
          if (rank_state_[static_cast<std::size_t>(r)].barrier_epoch.load(
                  std::memory_order_relaxed) < target) {
            missing.push_back(r);
          }
        }
        note_timeout();
        std::ostringstream os;
        os << "barrier watchdog: rank " << rank << " waited " << deadline
           << "s at epoch " << target << " (virtual clock " << now_us
           << "us); missing ranks:";
        for (int r : missing) os << ' ' << r;
        throw MachineTimeout(os.str(), std::move(missing), target, now_us);
      }
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  }
  // Checked on EVERY exit, fast path included: the poison sentinel
  // satisfies any epoch target, and a rank must never mistake a poisoned
  // release for a completed reduction.
  if (poisoned_.load(std::memory_order_acquire)) {
    note_poisoned_wait();
    throw MachinePoisoned("machine poisoned: a sibling rank threw");
  }
}

f64 Machine::barrier_reduce_max(int rank, f64 value, f64 now_us) {
  inject_point(FaultSite::BarrierArrive, rank);
  // The barrier spans the ACTIVE view: after a shrink only the survivors
  // run, so they alone must arrive. Relaxed is safe — the value changes
  // only between runs, ordered by the dispatch handshake.
  const int active = active_nprocs_.load(std::memory_order_relaxed);
  if (active == 1) return value;
  if (poisoned_.load(std::memory_order_acquire)) {
    throw MachinePoisoned("machine poisoned: a sibling rank threw");
  }
  RankState& me = rank_state_[static_cast<std::size_t>(rank)];
  const u32 n = me.barrier_epoch.load(std::memory_order_relaxed) + 1;
  me.barrier_epoch.store(n, std::memory_order_relaxed);
  const std::size_t parity = n & 1;
  ArrivalCell& cell = arrival_[parity];
  BarrierSlot& rel = release_[parity];
  // Fold my value: non-negative IEEE doubles order as unsigned integers, so
  // a CAS-max over the bit pattern is the whole reduction. Relaxed is
  // enough — the counter's RMW chain below carries the ordering.
  const u64 bits = std::bit_cast<u64>(value);
  u64 seen = cell.max_bits.load(std::memory_order_relaxed);
  while (bits > seen && !cell.max_bits.compare_exchange_weak(
                            seen, bits, std::memory_order_relaxed,
                            std::memory_order_relaxed)) {
  }
  // Count myself in. acq_rel makes the chain of arrival RMWs a release
  // sequence: the last arriver's view includes every rank's pre-barrier
  // writes, and its release word hands that view to everyone.
  if (cell.arrived.fetch_add(1, std::memory_order_acq_rel) + 1 == active) {
    // Reset the cells for this parity's next user (pass n+2 — unreachable
    // until release n+1, hence until this release, has been observed).
    const u64 folded = cell.max_bits.exchange(0, std::memory_order_relaxed);
    cell.arrived.store(0, std::memory_order_relaxed);
    rel.value = std::bit_cast<f64>(folded);
    rel.epoch.store(n, std::memory_order_release);
    rel.epoch.notify_all();
    return rel.value;
  }
  wait_epoch(rel.epoch, n, rank, now_us);
  return rel.value;
}

void Machine::poison() {
  poisoned_.store(true, std::memory_order_release);
  // Wake every possible waiter so it can observe the flag. Barrier waiters
  // futex-sleep on the release words, so poison must change the waited-on
  // values themselves (a bare notify racing a waiter about to sleep would
  // be missed); the sentinel satisfies any epoch target and wait_epoch
  // rechecks the flag on return. Mailbox waiters sit on condvars.
  release_[0].epoch.store(kPoisonEpoch, std::memory_order_release);
  release_[1].epoch.store(kPoisonEpoch, std::memory_order_release);
  release_[0].epoch.notify_all();
  release_[1].epoch.notify_all();
  for (auto& mb : mailboxes_) mb->poison_wake();
}

void Machine::execute(int rank, const std::function<void(Process&)>& body) {
  Process proc(*this, rank);
  try {
    body(proc);
  } catch (...) {
    {
      std::lock_guard lock(error_mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    poison();
  }
  stats_[static_cast<std::size_t>(rank)] = proc.stats();
  final_clock_us_[static_cast<std::size_t>(rank)] = proc.clock().now_us();
}

void Machine::worker_loop(int rank) {
  u64 seen_generation = 0;
  while (true) {
    const std::function<void(Process&)>* body = nullptr;
    {
      std::unique_lock lock(pool_mutex_);
      pool_cv_.wait(lock, [&] {
        return stop_ || run_generation_ > seen_generation;
      });
      if (stop_) return;
      seen_generation = run_generation_;
      body = body_;
    }
    // Ranks beyond the shrunken active view are declared dead: they wake
    // with everyone (one pool condvar), skip the body, and report done.
    // Keeping them in the dispatch handshake (rather than special-casing
    // the wake) means shrink/restore never touches pool bookkeeping.
    if (rank < active_nprocs_.load(std::memory_order_relaxed)) {
      execute(rank, *body);
    }
    {
      std::lock_guard lock(pool_mutex_);
      if (--running_ == 0) done_cv_.notify_all();
    }
  }
}

RecoverReport Machine::recover_report() {
  // Workers are parked (the previous run's completion handshake went
  // through pool_mutex_), so plain writes here are ordered before their
  // next dispatch by the same mutex. Everything a failed run can leave
  // dirty is reset: mailbox shards (counted per (dest, source) — these are
  // the undelivered in-flight messages), barrier pass counters and cells
  // (a poisoned run abandons passes mid-fold), the sentinel-stamped
  // release words, the blackboard bytes (a thrower may have deposited into
  // a slot no one read), and the poison flag + stored first error.
  RecoverReport report;
  std::vector<i64> per_source(static_cast<std::size_t>(nprocs_), 0);
  for (int dest = 0; dest < nprocs_; ++dest) {
    report.messages_drained +=
        mailboxes_[static_cast<std::size_t>(dest)]->drain(per_source);
    for (int src = 0; src < nprocs_; ++src) {
      const i64 n = per_source[static_cast<std::size_t>(src)];
      if (n > 0) report.dirty_shards.push_back({dest, src, n});
    }
  }
  for (auto& rs : rank_state_) {
    rs.barrier_epoch.store(0, std::memory_order_relaxed);
  }
  for (auto& cell : arrival_) {
    cell.max_bits.store(0, std::memory_order_relaxed);
    cell.arrived.store(0, std::memory_order_relaxed);
  }
  release_[0].epoch.store(0, std::memory_order_relaxed);
  release_[1].epoch.store(0, std::memory_order_relaxed);
  release_[0].value = 0.0;
  release_[1].value = 0.0;
  for (auto& slot : bb_) std::memset(slot.buf, 0, sizeof(slot.buf));
  {
    std::lock_guard lock(error_mutex_);
    first_error_ = nullptr;
  }
  poisoned_.store(false, std::memory_order_relaxed);
  return report;
}

void Machine::shrink_to(int n) {
  const int active = active_nprocs_.load(std::memory_order_relaxed);
  CHAOS_CHECK(n >= 1 && n <= active,
              "shrink_to: target width must be in [1, active_nprocs]");
  if (n == active) return;
  active_nprocs_.store(n, std::memory_order_relaxed);
  shrink_count_.fetch_add(1, std::memory_order_relaxed);
}

void Machine::restore_full_width() {
  active_nprocs_.store(nprocs_, std::memory_order_relaxed);
}

void Machine::reset_for_run() {
  (void)recover();
  faults_injected_.store(0, std::memory_order_relaxed);
  timeouts_.store(0, std::memory_order_relaxed);
  poisoned_waits_.store(0, std::memory_order_relaxed);
  for (auto& s : stats_) s = MessageStats{};
  for (auto& c : final_clock_us_) c = 0.0;
}

void Machine::run(const std::function<void(Process&)>& body) {
  reset_for_run();
  if (active_nprocs_.load(std::memory_order_relaxed) == 1) {
    // Single active rank (P=1 machine, or a fleet shrunk to its last
    // survivor): no dispatch, no worker wakeups — rank 0 runs inline.
    execute(0, body);
  } else {
    {
      std::lock_guard lock(pool_mutex_);
      body_ = &body;
      running_ = nprocs_ - 1;
      ++run_generation_;
    }
    pool_cv_.notify_all();
    execute(0, body);
    std::unique_lock lock(pool_mutex_);
    done_cv_.wait(lock, [&] { return running_ == 0; });
    body_ = nullptr;
  }
  if (first_error_) {
    std::exception_ptr e = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(e);
  }
}

void Machine::run(int nprocs, const std::function<void(Process&)>& body,
                  CostParams params) {
  Machine machine(nprocs, params);
  machine.run(body);
}

MessageStats Machine::total_stats() const {
  MessageStats total;
  for (const auto& s : stats_) total += s;
  // The robustness events fire inside Machine/Mailbox waits, below the
  // per-Process stats objects, so they are tracked machine-wide and folded
  // into the aggregate here.
  total.faults_injected = faults_injected_.load(std::memory_order_relaxed);
  total.timeouts = timeouts_.load(std::memory_order_relaxed);
  total.poisoned_waits = poisoned_waits_.load(std::memory_order_relaxed);
  return total;
}

const MessageStats& Machine::stats_of(int rank) const {
  CHAOS_CHECK(rank >= 0 && rank < nprocs_, "stats_of: bad rank");
  return stats_[static_cast<std::size_t>(rank)];
}

f64 Machine::max_virtual_time_us() const {
  f64 t = 0.0;
  for (f64 c : final_clock_us_) t = std::max(t, c);
  return t;
}

}  // namespace chaos::rt
