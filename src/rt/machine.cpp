#include "rt/machine.hpp"

#include <exception>
#include <thread>

namespace chaos::rt {

Machine::Machine(int nprocs, CostParams params)
    : nprocs_(nprocs),
      params_(params),
      bb_slots_(static_cast<std::size_t>(nprocs), nullptr),
      clock_slots_(static_cast<std::size_t>(nprocs), 0.0),
      stats_(static_cast<std::size_t>(nprocs)),
      final_clock_us_(static_cast<std::size_t>(nprocs), 0.0) {
  CHAOS_CHECK(nprocs >= 1, "machine needs at least one process");
  mailboxes_.reserve(static_cast<std::size_t>(nprocs));
  for (int r = 0; r < nprocs; ++r) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
}

Machine::~Machine() = default;

void Machine::barrier_wait() {
  std::unique_lock lock(barrier_mutex_);
  if (poisoned_) throw ChaosError("machine poisoned: a sibling rank threw");
  const bool my_sense = barrier_sense_;
  if (++barrier_arrived_ == nprocs_) {
    barrier_arrived_ = 0;
    barrier_sense_ = !barrier_sense_;
    barrier_cv_.notify_all();
    return;
  }
  barrier_cv_.wait(lock,
                   [&] { return barrier_sense_ != my_sense || poisoned_; });
  if (poisoned_) throw ChaosError("machine poisoned: a sibling rank threw");
}

void Machine::run(const std::function<void(Process&)>& body) {
  // Reset shared state so a Machine can host several SPMD regions.
  barrier_arrived_ = 0;
  barrier_sense_ = false;
  poisoned_ = false;
  for (auto& s : stats_) s = MessageStats{};
  for (auto& c : final_clock_us_) c = 0.0;

  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto worker = [&](int rank) {
    Process proc(*this, rank);
    try {
      body(proc);
    } catch (...) {
      {
        std::lock_guard lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
      // Release ranks blocked in the barrier so run() can return.
      std::lock_guard lock(barrier_mutex_);
      poisoned_ = true;
      barrier_cv_.notify_all();
    }
    stats_[static_cast<std::size_t>(rank)] = proc.stats();
    final_clock_us_[static_cast<std::size_t>(rank)] = proc.clock().now_us();
  };

  if (nprocs_ == 1) {
    worker(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(nprocs_));
    for (int r = 0; r < nprocs_; ++r) threads.emplace_back(worker, r);
    for (auto& t : threads) t.join();
  }
  if (first_error) std::rethrow_exception(first_error);
}

void Machine::run(int nprocs, const std::function<void(Process&)>& body,
                  CostParams params) {
  Machine machine(nprocs, params);
  machine.run(body);
}

MessageStats Machine::total_stats() const {
  MessageStats total;
  for (const auto& s : stats_) total += s;
  return total;
}

const MessageStats& Machine::stats_of(int rank) const {
  CHAOS_CHECK(rank >= 0 && rank < nprocs_, "stats_of: bad rank");
  return stats_[static_cast<std::size_t>(rank)];
}

f64 Machine::max_virtual_time_us() const {
  f64 t = 0.0;
  for (f64 c : final_clock_us_) t = std::max(t, c);
  return t;
}

}  // namespace chaos::rt
