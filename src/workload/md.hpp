// Synthetic molecular-dynamics workload standing in for the paper's CHARMM
// 648-atom water simulation: a 216-molecule (648-atom) water box with a
// cutoff neighbor pair list. The electrostatic force loop sweeps the pair
// list exactly like loop L2 sweeps mesh edges.
#pragma once

#include <vector>

#include "rt/types.hpp"

namespace chaos::wl {

struct MdSystem {
  i64 natoms = 0;
  i64 npairs = 0;
  std::vector<f64> x, y, z;      ///< atom coordinates (Angstrom)
  std::vector<f64> charge;       ///< partial charges (e)
  std::vector<i64> pair1, pair2; ///< neighbor list (global atom ids)
  f64 box = 0.0;                 ///< cubic box edge length
  f64 cutoff = 0.0;
};

/// Builds an n×n×n-molecule water box (3 atoms per molecule) with the given
/// cutoff (Angstrom). Defaults model the paper's 648-atom system: 6×6×6
/// molecules at liquid-water density with an 8 A cutoff.
[[nodiscard]] MdSystem make_water_box(i64 molecules_per_side = 6,
                                      f64 cutoff = 8.0, u64 seed = 99);

}  // namespace chaos::wl
