#include "workload/mesh.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "workload/rng.hpp"

namespace chaos::wl {

namespace {

/// Fisher–Yates with our deterministic RNG.
std::vector<i64> random_permutation(i64 n, Rng& rng) {
  std::vector<i64> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), 0);
  for (i64 i = n - 1; i > 0; --i) {
    const i64 j = rng.below(i + 1);
    std::swap(perm[static_cast<std::size_t>(i)],
              perm[static_cast<std::size_t>(j)]);
  }
  return perm;
}

}  // namespace

Mesh make_tet_mesh(i64 nx, i64 ny, i64 nz, u64 seed, f64 jitter,
                   bool renumber) {
  CHAOS_CHECK(nx >= 2 && ny >= 2 && nz >= 2, "mesh: need at least 2^3 nodes");
  Mesh m;
  m.nnodes = nx * ny * nz;
  m.x.resize(static_cast<std::size_t>(m.nnodes));
  m.y.resize(static_cast<std::size_t>(m.nnodes));
  m.z.resize(static_cast<std::size_t>(m.nnodes));

  Rng rng(seed);
  auto node = [&](i64 i, i64 j, i64 k) { return (k * ny + j) * nx + i; };

  // Real unstructured meshes are not axis-aligned: rotate the jittered grid
  // by a fixed generic rotation (30 deg about z, then 25 deg about y) so the
  // coordinate axes carry no special relationship to the connectivity.
  constexpr f64 kA = 30.0 * M_PI / 180.0;
  constexpr f64 kB = 25.0 * M_PI / 180.0;
  const f64 ca = std::cos(kA), sa = std::sin(kA);
  const f64 cb = std::cos(kB), sb = std::sin(kB);
  for (i64 k = 0; k < nz; ++k) {
    for (i64 j = 0; j < ny; ++j) {
      for (i64 i = 0; i < nx; ++i) {
        const auto id = static_cast<std::size_t>(node(i, j, k));
        const f64 gx = static_cast<f64>(i) + rng.uniform(-jitter, jitter);
        const f64 gy = static_cast<f64>(j) + rng.uniform(-jitter, jitter);
        const f64 gz = static_cast<f64>(k) + rng.uniform(-jitter, jitter);
        const f64 rx = ca * gx - sa * gy;
        const f64 ry = sa * gx + ca * gy;
        m.x[id] = cb * rx + sb * gz;
        m.y[id] = ry;
        m.z[id] = -sb * rx + cb * gz;
      }
    }
  }

  // Kuhn subdivision of each grid cell into six tetrahedra around the main
  // diagonal. The resulting undirected edge set per cell is: the three axis
  // edges, the three face diagonals through the main-diagonal corner pair,
  // and the main diagonal itself. Emitting the seven "positive" offsets per
  // node (clipped at the boundary) produces exactly that union with no
  // duplicates.
  constexpr i64 kOffsets[7][3] = {{1, 0, 0}, {0, 1, 0}, {0, 0, 1}, {1, 1, 0},
                                  {0, 1, 1}, {1, 0, 1}, {1, 1, 1}};
  for (i64 k = 0; k < nz; ++k) {
    for (i64 j = 0; j < ny; ++j) {
      for (i64 i = 0; i < nx; ++i) {
        for (const auto& off : kOffsets) {
          const i64 ii = i + off[0], jj = j + off[1], kk = k + off[2];
          if (ii >= nx || jj >= ny || kk >= nz) continue;
          m.edge1.push_back(node(i, j, k));
          m.edge2.push_back(node(ii, jj, kk));
        }
      }
    }
  }
  m.nedges = static_cast<i64>(m.edge1.size());

  if (renumber) {
    const auto perm = random_permutation(m.nnodes, rng);
    std::vector<f64> nx_(m.x.size()), ny_(m.y.size()), nz_(m.z.size());
    for (i64 old = 0; old < m.nnodes; ++old) {
      const auto fresh = static_cast<std::size_t>(perm[static_cast<std::size_t>(old)]);
      nx_[fresh] = m.x[static_cast<std::size_t>(old)];
      ny_[fresh] = m.y[static_cast<std::size_t>(old)];
      nz_[fresh] = m.z[static_cast<std::size_t>(old)];
    }
    m.x = std::move(nx_);
    m.y = std::move(ny_);
    m.z = std::move(nz_);
    for (auto& e : m.edge1) e = perm[static_cast<std::size_t>(e)];
    for (auto& e : m.edge2) e = perm[static_cast<std::size_t>(e)];
    // Shuffle the edge order too: iteration order should not accidentally
    // correlate with locality either.
    for (i64 e = m.nedges - 1; e > 0; --e) {
      const i64 f = rng.below(e + 1);
      std::swap(m.edge1[static_cast<std::size_t>(e)],
                m.edge1[static_cast<std::size_t>(f)]);
      std::swap(m.edge2[static_cast<std::size_t>(e)],
                m.edge2[static_cast<std::size_t>(f)]);
    }
  }
  return m;
}

Mesh mesh_10k(u64 seed) { return make_tet_mesh(22, 22, 22, seed); }

Mesh mesh_53k(u64 seed) { return make_tet_mesh(38, 38, 37, seed); }

Mesh mesh_tiny(u64 seed) { return make_tet_mesh(5, 4, 3, seed); }

}  // namespace chaos::wl
