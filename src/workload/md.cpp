#include "workload/md.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "workload/rng.hpp"

namespace chaos::wl {

MdSystem make_water_box(i64 molecules_per_side, f64 cutoff, u64 seed) {
  CHAOS_CHECK(molecules_per_side >= 1, "md: need at least one molecule");
  CHAOS_CHECK(cutoff > 0.0, "md: cutoff must be positive");

  MdSystem s;
  const i64 nmol = molecules_per_side * molecules_per_side * molecules_per_side;
  s.natoms = 3 * nmol;
  s.cutoff = cutoff;
  // Liquid water: one molecule per ~(3.104 A)^3.
  constexpr f64 kSpacing = 3.104;
  s.box = kSpacing * static_cast<f64>(molecules_per_side);

  s.x.reserve(static_cast<std::size_t>(s.natoms));
  s.y.reserve(static_cast<std::size_t>(s.natoms));
  s.z.reserve(static_cast<std::size_t>(s.natoms));
  s.charge.reserve(static_cast<std::size_t>(s.natoms));

  Rng rng(seed);
  constexpr f64 kOH = 0.9572;       // O-H bond length (A)
  constexpr f64 kQO = -0.834;       // TIP3P charges
  constexpr f64 kQH = 0.417;

  auto wrap = [&](f64 v) {
    while (v < 0.0) v += s.box;
    while (v >= s.box) v -= s.box;
    return v;
  };

  for (i64 k = 0; k < molecules_per_side; ++k) {
    for (i64 j = 0; j < molecules_per_side; ++j) {
      for (i64 i = 0; i < molecules_per_side; ++i) {
        const f64 ox = wrap((static_cast<f64>(i) + 0.5) * kSpacing +
                            rng.uniform(-0.35, 0.35));
        const f64 oy = wrap((static_cast<f64>(j) + 0.5) * kSpacing +
                            rng.uniform(-0.35, 0.35));
        const f64 oz = wrap((static_cast<f64>(k) + 0.5) * kSpacing +
                            rng.uniform(-0.35, 0.35));
        // Random molecular orientation: two H at the water bond angle.
        const f64 theta = rng.uniform(0.0, 2.0 * M_PI);
        const f64 phi = std::acos(rng.uniform(-1.0, 1.0));
        const f64 ax = std::sin(phi) * std::cos(theta);
        const f64 ay = std::sin(phi) * std::sin(theta);
        const f64 az = std::cos(phi);
        // A second direction at ~104.5 degrees from the first, in the plane
        // spanned with a random helper vector.
        const f64 psi = rng.uniform(0.0, 2.0 * M_PI);
        f64 hx = std::cos(psi), hy = std::sin(psi), hz = 0.13;
        // Gram-Schmidt the helper against the first axis.
        const f64 dot = hx * ax + hy * ay + hz * az;
        hx -= dot * ax;
        hy -= dot * ay;
        hz -= dot * az;
        const f64 hn = std::sqrt(hx * hx + hy * hy + hz * hz);
        hx /= hn;
        hy /= hn;
        hz /= hn;
        constexpr f64 kHalfAngle = 104.52 * M_PI / 180.0 / 2.0;
        const f64 c = std::cos(kHalfAngle), sn = std::sin(kHalfAngle);

        s.x.push_back(ox);
        s.y.push_back(oy);
        s.z.push_back(oz);
        s.charge.push_back(kQO);
        s.x.push_back(wrap(ox + kOH * (c * ax + sn * hx)));
        s.y.push_back(wrap(oy + kOH * (c * ay + sn * hy)));
        s.z.push_back(wrap(oz + kOH * (c * az + sn * hz)));
        s.charge.push_back(kQH);
        s.x.push_back(wrap(ox + kOH * (c * ax - sn * hx)));
        s.y.push_back(wrap(oy + kOH * (c * ay - sn * hy)));
        s.z.push_back(wrap(oz + kOH * (c * az - sn * hz)));
        s.charge.push_back(kQH);
      }
    }
  }

  // Cutoff neighbor list with minimum-image periodic distances, excluding
  // intramolecular pairs (atoms 3m, 3m+1, 3m+2 belong to molecule m).
  const f64 rc2 = cutoff * cutoff;
  auto min_image = [&](f64 d) {
    if (d > 0.5 * s.box) d -= s.box;
    if (d < -0.5 * s.box) d += s.box;
    return d;
  };
  auto near = [&](i64 a, i64 b) {
    if (a / 3 == b / 3) return false;
    const f64 dx = min_image(s.x[static_cast<std::size_t>(a)] -
                             s.x[static_cast<std::size_t>(b)]);
    const f64 dy = min_image(s.y[static_cast<std::size_t>(a)] -
                             s.y[static_cast<std::size_t>(b)]);
    const f64 dz = min_image(s.z[static_cast<std::size_t>(a)] -
                             s.z[static_cast<std::size_t>(b)]);
    return dx * dx + dy * dy + dz * dz < rc2;
  };

  // Periodic cell list when at least 3 cells of width >= cutoff fit per
  // side: O(natoms * local density) instead of the all-pairs O(natoms^2)
  // scan. Candidate pairs are collected then sorted (a, b)-lexicographic —
  // the exact emission order of the all-pairs loop — so the generated
  // workload is bit-identical either way (the pair shuffle below draws from
  // the same rng state).
  const i64 cells_per_side = static_cast<i64>(s.box / cutoff);
  std::vector<std::pair<i64, i64>> found;
  if (cells_per_side >= 3) {
    const f64 cell_width = s.box / static_cast<f64>(cells_per_side);
    auto cell_of = [&](f64 v) {
      return std::min(cells_per_side - 1,
                      static_cast<i64>(v / cell_width));
    };
    const i64 ncells = cells_per_side * cells_per_side * cells_per_side;
    std::vector<std::vector<i64>> bucket(static_cast<std::size_t>(ncells));
    std::vector<i64> cell(static_cast<std::size_t>(s.natoms));
    for (i64 a = 0; a < s.natoms; ++a) {
      const i64 c = (cell_of(s.z[static_cast<std::size_t>(a)]) *
                         cells_per_side +
                     cell_of(s.y[static_cast<std::size_t>(a)])) *
                        cells_per_side +
                    cell_of(s.x[static_cast<std::size_t>(a)]);
      cell[static_cast<std::size_t>(a)] = c;
      bucket[static_cast<std::size_t>(c)].push_back(a);
    }
    auto wrap_cell = [&](i64 c) {
      return (c % cells_per_side + cells_per_side) % cells_per_side;
    };
    for (i64 a = 0; a < s.natoms; ++a) {
      const i64 c = cell[static_cast<std::size_t>(a)];
      const i64 cxa = c % cells_per_side;
      const i64 cya = (c / cells_per_side) % cells_per_side;
      const i64 cza = c / (cells_per_side * cells_per_side);
      for (i64 dz = -1; dz <= 1; ++dz) {
        for (i64 dy = -1; dy <= 1; ++dy) {
          for (i64 dx = -1; dx <= 1; ++dx) {
            const i64 nc = (wrap_cell(cza + dz) * cells_per_side +
                            wrap_cell(cya + dy)) *
                               cells_per_side +
                           wrap_cell(cxa + dx);
            for (i64 b : bucket[static_cast<std::size_t>(nc)]) {
              if (b > a && near(a, b)) found.emplace_back(a, b);
            }
          }
        }
      }
    }
    std::sort(found.begin(), found.end());
  } else {
    for (i64 a = 0; a < s.natoms; ++a) {
      for (i64 b = a + 1; b < s.natoms; ++b) {
        if (near(a, b)) found.emplace_back(a, b);
      }
    }
  }
  s.pair1.reserve(found.size());
  s.pair2.reserve(found.size());
  for (const auto& [a, b] : found) {
    s.pair1.push_back(a);
    s.pair2.push_back(b);
  }
  s.npairs = static_cast<i64>(s.pair1.size());

  // Shuffle the pair list: neighbor-list order in real MD codes does not
  // follow atom numbering.
  for (i64 e = s.npairs - 1; e > 0; --e) {
    const i64 f = rng.below(e + 1);
    std::swap(s.pair1[static_cast<std::size_t>(e)],
              s.pair1[static_cast<std::size_t>(f)]);
    std::swap(s.pair2[static_cast<std::size_t>(e)],
              s.pair2[static_cast<std::size_t>(f)]);
  }
  return s;
}

}  // namespace chaos::wl
