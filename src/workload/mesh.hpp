// Synthetic 3-D unstructured tetrahedral mesh generator standing in for the
// Mavriplis Euler-solver meshes (10K / 53K mesh points) used in the paper's
// evaluation. A jittered structured grid is tetrahedralized (Kuhn
// subdivision, ~14 neighbors per interior node like a real tet mesh) and the
// node numbering is randomly permuted, reproducing the paper's observation
// that "the way the nodes of an irregular mesh are numbered frequently does
// not have a useful correspondence to the connectivity pattern".
#pragma once

#include <vector>

#include "rt/types.hpp"

namespace chaos::wl {

struct Mesh {
  i64 nnodes = 0;
  i64 nedges = 0;
  std::vector<f64> x, y, z;        ///< node coordinates (global arrays)
  std::vector<i64> edge1, edge2;   ///< global node ids of each edge's endpoints
};

/// Generates the mesh on a (nx × ny × nz)-node grid. @p jitter is the
/// relative coordinate perturbation; @p renumber applies a random node
/// permutation (and shuffles the edge list order).
[[nodiscard]] Mesh make_tet_mesh(i64 nx, i64 ny, i64 nz, u64 seed = 1234,
                                 f64 jitter = 0.25, bool renumber = true);

/// The two evaluation meshes, sized to match the paper's "10K mesh" (22^3 =
/// 10,648 points) and "53K mesh" (38 x 38 x 37 = 53,428 points).
[[nodiscard]] Mesh mesh_10k(u64 seed = 1234);
[[nodiscard]] Mesh mesh_53k(u64 seed = 1234);

/// A small mesh for unit tests.
[[nodiscard]] Mesh mesh_tiny(u64 seed = 1234);

}  // namespace chaos::wl
