// Deterministic, seedable RNG (splitmix64) so every process can generate an
// identical workload without communication, and every run of a bench is
// reproducible.
#pragma once

#include "rt/types.hpp"

namespace chaos::wl {

constexpr u64 splitmix64(u64 x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

class Rng {
 public:
  explicit Rng(u64 seed) : state_(seed) {}

  u64 next_u64() {
    state_ += 0x9e3779b97f4a7c15ull;
    u64 z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, 1).
  f64 next_f64() {
    return static_cast<f64>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [lo, hi).
  f64 uniform(f64 lo, f64 hi) { return lo + (hi - lo) * next_f64(); }

  /// Uniform integer in [0, n).
  i64 below(i64 n) {
    return static_cast<i64>(next_u64() % static_cast<u64>(n));
  }

 private:
  u64 state_;
};

}  // namespace chaos::wl
