// Sparse iterative solver: the first application class the paper lists for
// CHAOS ("sparse matrix linear solvers"). Solves  A u = b  with conjugate
// gradients, where A is the graph Laplacian of an unstructured mesh plus a
// diagonal shift (symmetric positive definite). The sparse matrix-vector
// product is an inspector/executor kernel: the column indices of the local
// rows are localized ONCE, and every CG iteration reuses the same gather
// schedule — schedule reuse is what makes distributed CG viable.
//
// Usage: ./examples/sparse_cg [procs] [partitioner]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/executor.hpp"
#include "core/inspector.hpp"
#include "core/mapper.hpp"
#include "rt/collectives.hpp"
#include "workload/mesh.hpp"

namespace rt = chaos::rt;
namespace dist = chaos::dist;
namespace core = chaos::core;
namespace wl = chaos::wl;
using chaos::f64;
using chaos::i64;

namespace {

/// Local CSR rows of A = L + I (Laplacian + identity), rows = owned nodes,
/// column ids global.
struct LocalMatrix {
  std::vector<i64> xadj;
  std::vector<i64> cols;    // global column ids (off-diagonal)
  std::vector<f64> vals;    // -1 per edge
  std::vector<f64> diag;    // degree + 1
};

LocalMatrix build_local_laplacian(rt::Process& p, const wl::Mesh& mesh,
                                  const dist::Distribution& d) {
  // Route each edge to both endpoint owners.
  struct Half {
    i64 u, v;
  };
  auto edist = dist::Distribution::block(p, mesh.nedges);
  std::vector<i64> endpoints;
  for (i64 l = 0; l < edist->my_local_size(); ++l) {
    const i64 e = edist->global_of(p.rank(), l);
    endpoints.push_back(mesh.edge1[static_cast<std::size_t>(e)]);
    endpoints.push_back(mesh.edge2[static_cast<std::size_t>(e)]);
  }
  auto owners = d.locate(p, endpoints);
  std::vector<std::vector<Half>> outgoing(static_cast<std::size_t>(p.nprocs()));
  for (std::size_t k = 0; k < endpoints.size(); k += 2) {
    const i64 u = endpoints[k], v = endpoints[k + 1];
    outgoing[static_cast<std::size_t>(owners[k].proc)].push_back({u, v});
    outgoing[static_cast<std::size_t>(owners[k + 1].proc)].push_back({v, u});
  }
  auto incoming = rt::alltoallv(p, outgoing);

  const i64 nlocal = d.my_local_size();
  // Adjacency per local row.
  std::vector<std::vector<i64>> nb(static_cast<std::size_t>(nlocal));
  auto locals = d.my_globals();
  std::vector<std::pair<i64, i64>> gl;  // (global, local)
  for (std::size_t l = 0; l < locals.size(); ++l) {
    gl.emplace_back(locals[l], static_cast<i64>(l));
  }
  std::sort(gl.begin(), gl.end());
  auto local_of = [&](i64 g) {
    auto it = std::lower_bound(gl.begin(), gl.end(), std::make_pair(g, i64{0}));
    return it->second;
  };
  for (const auto& block : incoming) {
    for (const auto& h : block) {
      nb[static_cast<std::size_t>(local_of(h.u))].push_back(h.v);
    }
  }
  LocalMatrix m;
  m.xadj.assign(static_cast<std::size_t>(nlocal) + 1, 0);
  m.diag.assign(static_cast<std::size_t>(nlocal), 1.0);
  for (i64 r = 0; r < nlocal; ++r) {
    auto& row = nb[static_cast<std::size_t>(r)];
    std::sort(row.begin(), row.end());
    row.erase(std::unique(row.begin(), row.end()), row.end());
    m.xadj[static_cast<std::size_t>(r) + 1] =
        m.xadj[static_cast<std::size_t>(r)] + static_cast<i64>(row.size());
    m.diag[static_cast<std::size_t>(r)] += static_cast<f64>(row.size());
    for (i64 c : row) {
      m.cols.push_back(c);
      m.vals.push_back(-1.0);
    }
  }
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  const int procs = argc > 1 ? std::atoi(argv[1]) : 8;
  const std::string partitioner = argc > 2 ? argv[2] : "RCB";
  const auto mesh = wl::make_tet_mesh(16, 16, 16);
  std::printf("sparse_cg: A = Laplacian + I of a %lld-node tet mesh, "
              "%s partition, %d procs\n",
              static_cast<long long>(mesh.nnodes), partitioner.c_str(), procs);

  rt::Machine machine(procs);
  machine.run([&](rt::Process& p) {
    // Partition the nodes with the mapper coupler.
    auto reg = dist::Distribution::block(p, mesh.nnodes);
    std::vector<f64> xc, yc, zc;
    for (i64 l = 0; l < reg->my_local_size(); ++l) {
      const i64 g = reg->global_of(p.rank(), l);
      xc.push_back(mesh.x[static_cast<std::size_t>(g)]);
      yc.push_back(mesh.y[static_cast<std::size_t>(g)]);
      zc.push_back(mesh.z[static_cast<std::size_t>(g)]);
    }
    core::GeoColBuilder builder(p, reg);
    const std::span<const f64> coords[] = {xc, yc, zc};
    builder.geometry(coords);
    auto d = core::set_by_partitioning(p, *builder.build(), partitioner);

    // Assemble the local rows and localize the column indices ONCE, through
    // a workspace configured with the unified PlanOptions surface.
    const auto A = build_local_laplacian(p, mesh, *d);
    core::InspectorWorkspace iws;
    iws.configure(core::PlanOptions{});
    core::Localized loc;
    core::localize(p, *d, A.cols, iws, loc);
    const i64 nlocal = d->my_local_size();

    // SpMV through the reused schedule: ghost-gather x, then local rows.
    // One workspace hoisted above the solver loop keeps every gather after
    // the first allocation-free.
    std::vector<f64> ghost(static_cast<std::size_t>(loc.schedule.nghost));
    core::ExecutorWorkspace<f64> ws;
    auto spmv = [&](const std::vector<f64>& x, std::vector<f64>& y) {
      core::gather_ghosts<f64>(p, loc.schedule, std::span<const f64>(x),
                               ghost, ws);
      for (i64 r = 0; r < nlocal; ++r) {
        f64 acc = A.diag[static_cast<std::size_t>(r)] *
                  x[static_cast<std::size_t>(r)];
        for (i64 k = A.xadj[static_cast<std::size_t>(r)];
             k < A.xadj[static_cast<std::size_t>(r) + 1]; ++k) {
          const i64 ref = loc.refs[static_cast<std::size_t>(k)];
          const f64 xv = ref < nlocal
                             ? x[static_cast<std::size_t>(ref)]
                             : ghost[static_cast<std::size_t>(ref - nlocal)];
          acc += A.vals[static_cast<std::size_t>(k)] * xv;
        }
        y[static_cast<std::size_t>(r)] = acc;
      }
      p.clock().charge_ops(static_cast<i64>(A.vals.size()) * 2 + nlocal * 2,
                           p.params().flop_us);
    };
    auto dot = [&](const std::vector<f64>& a, const std::vector<f64>& b) {
      f64 s = 0.0;
      for (i64 r = 0; r < nlocal; ++r) {
        s += a[static_cast<std::size_t>(r)] * b[static_cast<std::size_t>(r)];
      }
      p.clock().charge_ops(nlocal * 2, p.params().flop_us);
      return rt::allreduce_sum(p, s);
    };

    // Manufactured solution: u*(g) = sin(g/100); b = A u*.
    std::vector<f64> u_star(static_cast<std::size_t>(nlocal));
    const auto globals = d->my_globals();
    for (i64 r = 0; r < nlocal; ++r) {
      u_star[static_cast<std::size_t>(r)] =
          std::sin(static_cast<f64>(globals[static_cast<std::size_t>(r)]) /
                   100.0);
    }
    std::vector<f64> b(static_cast<std::size_t>(nlocal));
    spmv(u_star, b);

    // Conjugate gradients.
    std::vector<f64> u(static_cast<std::size_t>(nlocal), 0.0);
    std::vector<f64> r = b, q(static_cast<std::size_t>(nlocal));
    std::vector<f64> pd = r;
    f64 rho = dot(r, r);
    const f64 rho0 = rho;
    int iters = 0;
    rt::ClockSection solve(p.clock());
    for (; iters < 200 && rho > 1e-20 * rho0; ++iters) {
      spmv(pd, q);
      const f64 alpha = rho / dot(pd, q);
      for (i64 k = 0; k < nlocal; ++k) {
        u[static_cast<std::size_t>(k)] += alpha * pd[static_cast<std::size_t>(k)];
        r[static_cast<std::size_t>(k)] -= alpha * q[static_cast<std::size_t>(k)];
      }
      const f64 rho_next = dot(r, r);
      const f64 beta = rho_next / rho;
      rho = rho_next;
      for (i64 k = 0; k < nlocal; ++k) {
        pd[static_cast<std::size_t>(k)] =
            r[static_cast<std::size_t>(k)] + beta * pd[static_cast<std::size_t>(k)];
      }
      p.clock().charge_ops(nlocal * 6, p.params().flop_us);
    }
    const f64 solve_sec = rt::allreduce_max(p, solve.elapsed_sec());

    f64 err = 0.0;
    for (i64 k = 0; k < nlocal; ++k) {
      const f64 e = u[static_cast<std::size_t>(k)] -
                    u_star[static_cast<std::size_t>(k)];
      err += e * e;
    }
    err = std::sqrt(rt::allreduce_sum(p, err));
    if (p.is_root()) {
      std::printf("  CG converged in %d iterations, ||u - u*|| = %.3e\n",
                  iters, err);
      std::printf("  one localize, %d schedule reuses (gathers), modeled "
                  "solve time %.3f s\n",
                  iters + 1, solve_sec);
      std::printf("  ghosts on rank 0: %lld of %lld local rows\n",
                  static_cast<long long>(loc.schedule.nghost),
                  static_cast<long long>(nlocal));
    }
  });
  return 0;
}
