// The paper's Figure 4, verbatim: a mini-Fortran-90D program compiled and
// executed by the chaos_lang front end. The compiler path generates exactly
// the runtime-call sequence of Figure 6 (K1: GeoCoL generation, K2/K3:
// partitioner invocation, K4: array remap), inserts the Section 3 schedule-
// reuse guard around the FORALL, and reports per-phase modeled times.
//
// Usage: ./examples/directive_demo [procs] [partitioner]
#include <cstdio>
#include <cstdlib>
#include <cmath>
#include <string>

#include "lang/interp.hpp"
#include "lang/parser.hpp"
#include "rt/machine.hpp"
#include "workload/mesh.hpp"

namespace rt = chaos::rt;
namespace core = chaos::core;
namespace lang = chaos::lang;
namespace wl = chaos::wl;
using chaos::f64;
using chaos::i64;

void run_demo(rt::Machine& machine, const lang::Program& program,
              const wl::Mesh& mesh, const std::vector<f64>& x0,
              const std::vector<i64>& e1, const std::vector<i64>& e2,
              const std::string& partitioner);

int main(int argc, char** argv) {
  const int procs = argc > 1 ? std::atoi(argv[1]) : 8;
  const std::string partitioner = argc > 2 ? argv[2] : "RSB";

  const std::string source = R"(
C     Figure 4: implicit mapping in Fortran 90D  (SC'93 paper)
      REAL*8 x(nnode), y(nnode)
      INTEGER end_pt1(nedge), end_pt2(nedge)
C$    DYNAMIC, DECOMPOSITION reg(nnode), reg2(nedge)
C$    DISTRIBUTE reg(BLOCK), reg2(BLOCK)
C$    ALIGN x, y WITH reg
C$    ALIGN end_pt1, end_pt2 WITH reg2
C$    CONSTRUCT G (nnode, LINK(nedge, end_pt1, end_pt2))
C$    SET distfmt BY PARTITIONING G USING )" + partitioner + R"(
C$    REDISTRIBUTE reg(distfmt)
C     Loop over edges involving x, y  (100 iterations, schedules reused)
      DO step = 1, 100
      FORALL i = 1, nedge
        REDUCE(ADD, y(end_pt1(i)), x(end_pt1(i)) * x(end_pt2(i)))
        REDUCE(ADD, y(end_pt2(i)), x(end_pt1(i)) - x(end_pt2(i)))
      END FORALL
      END DO
)";

  const wl::Mesh mesh = wl::mesh_tiny();
  std::vector<i64> e1 = mesh.edge1, e2 = mesh.edge2;
  for (auto& v : e1) v += 1;  // Fortran is 1-based
  for (auto& v : e2) v += 1;
  std::vector<f64> x0(static_cast<std::size_t>(mesh.nnodes));
  for (i64 g = 0; g < mesh.nnodes; ++g) {
    x0[static_cast<std::size_t>(g)] = std::cos(0.1 * static_cast<f64>(g));
  }

  std::printf("directive_demo: Figure 4 via the mini-Fortran-90D compiler\n");
  std::printf("  mesh: %lld nodes / %lld edges, %d procs, partitioner %s\n",
              static_cast<long long>(mesh.nnodes),
              static_cast<long long>(mesh.nedges), procs,
              partitioner.c_str());

  const auto program = lang::compile(source);
  rt::Machine machine(procs);
  try {
    run_demo(machine, program, mesh, x0, e1, e2, partitioner);
  } catch (const chaos::ChaosError& e) {
    std::fprintf(stderr, "directive_demo failed: %s\n", e.what());
    std::fprintf(stderr,
                 "(hint: this Figure 4 program only provides LINK "
                 "connectivity — use a connectivity partitioner such as RSB "
                 "or RSB+KL)\n");
    return 1;
  }
  return 0;
}

void run_demo(rt::Machine& machine, const lang::Program& program,
              const wl::Mesh& mesh, const std::vector<f64>& x0,
              const std::vector<i64>& e1, const std::vector<i64>& e2,
              const std::string& partitioner) {
  (void)partitioner;
  machine.run([&](rt::Process& p) {
    lang::Instance inst(program);
    inst.set_param("NNODE", mesh.nnodes);
    inst.set_param("NEDGE", mesh.nedges);
    inst.bind_real("X", x0);
    inst.bind_int("END_PT1", e1);
    inst.bind_int("END_PT2", e2);
    // Unified plan construction (PlanOptions): defaults keep this demo's
    // modeled times identical to the pre-PlanOptions output.
    inst.set_options(core::PlanOptions{});
    inst.execute(p);

    const auto y = inst.fetch_real(p, "Y");
    f64 checksum = 0.0;
    for (f64 v : y) checksum += v;
    if (p.is_root()) {
      const auto& ph = inst.phases();
      std::printf("  compiler-generated pipeline, modeled times (s):\n");
      std::printf("    graph generation : %8.4f\n", ph.graph_gen);
      std::printf("    partitioner      : %8.4f\n", ph.partition);
      std::printf("    remap            : %8.4f\n", ph.remap);
      std::printf("    inspector        : %8.4f\n", ph.inspector);
      std::printf("    executor (100x)  : %8.4f\n", ph.executor);
      std::printf("  schedule reuse: %lld inspector run(s), %lld reuse(s)\n",
                  static_cast<long long>(inst.cache_stats().misses),
                  static_cast<long long>(inst.cache_stats().hits));
      std::printf("  y checksum: %.6e\n", checksum);
    }
  });
}
