// Adaptive-mesh scenario: the reason Section 3's conservative tracking AND
// the §14 repair path exist. An adaptive CFD solver sweeps its edge list
// every time step, but occasionally ADAPTS the mesh: a refinement epoch
// rewires a SMALL FRACTION of the edges in place (same node count, same edge
// count, ~3% new endpoints). Schedules are reused across the unchanged steps;
// after each refinement the stale schedule is either rebuilt from scratch
// (repair off — the pre-§14 behavior) or spliced in place for just the
// changed endpoints (repair auto). This example runs the same 30-step loop
// under both modes and prints the hit/repair/miss ledger plus the
// virtual-time savings repair buys on the inspector phase.
//
// Usage: ./examples/adaptive_mesh [procs]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/forall.hpp"
#include "core/mapper.hpp"
#include "core/plan_options.hpp"
#include "core/reuse.hpp"
#include "rt/collectives.hpp"
#include "workload/mesh.hpp"

namespace rt = chaos::rt;
namespace dist = chaos::dist;
namespace core = chaos::core;
namespace wl = chaos::wl;
using chaos::f64;
using chaos::i64;

namespace {

struct ModeResult {
  f64 t_inspect = 0.0;  ///< modeled seconds in the guard + inspector/repair
  f64 t_execute = 0.0;
  i64 hits = 0;
  i64 misses = 0;
  i64 repairs = 0;
  i64 repair_fallbacks = 0;
  f64 checksum = 0.0;  ///< sum(y) after the run — must match across modes
};

}  // namespace

int main(int argc, char** argv) {
  const int procs = argc > 1 ? std::atoi(argv[1]) : 8;
  constexpr int kSteps = 30;
  constexpr int kAdaptEvery = 10;
  constexpr i64 kRefineStride = 33;  // rewires ~3% of the edges per epoch

  const wl::Mesh mesh = wl::make_tet_mesh(14, 14, 14, 1000);
  const i64 nnodes = mesh.nnodes;
  const i64 nedges = mesh.nedges;
  std::printf("adaptive_mesh: %lld nodes, %lld edges, %d procs, %d steps, "
              "refine ~%.1f%% of edges every %d steps\n",
              static_cast<long long>(nnodes), static_cast<long long>(nedges),
              procs, kSteps, 100.0 / static_cast<f64>(kRefineStride),
              kAdaptEvery);

  rt::Machine machine(procs);
  const core::RepairMode modes[] = {core::RepairMode::Off,
                                    core::RepairMode::Auto};
  ModeResult results[2];
  for (int m = 0; m < 2; ++m) {
    const core::PlanOptions opts{.repair = modes[m]};
    ModeResult& out = results[m];
    machine.run([&](rt::Process& p) {
      // Every rank replays the same refinement schedule on its own copy of
      // the global edge list — an SPMD-replicated "host mesh adapter".
      std::vector<i64> ge1 = mesh.edge1, ge2 = mesh.edge2;
      auto refine = [&](int epoch) {
        for (i64 e = epoch; e < nedges; e += kRefineStride) {
          auto& end = (e % 2 == 0) ? ge1 : ge2;
          end[static_cast<std::size_t>(e)] =
              (end[static_cast<std::size_t>(e)] + 1 + epoch) % nnodes;
        }
      };

      auto reg = dist::Distribution::block(p, nnodes);
      auto reg2 = dist::Distribution::block(p, nedges);
      dist::DistributedArray<f64> x(p, reg), y(p, reg, 0.0);
      // Small exact-representable values: every product and partial sum is
      // an integer, so the cross-mode checksum comparison below is immune to
      // floating-point reassociation (a rebuilt plan may legally partition
      // the iterations differently from a repaired one).
      x.fill_by_global([](i64 g) { return static_cast<f64>(1 + g % 7); });
      dist::DistributedArray<i64> e1(p, reg2), e2(p, reg2);

      core::ReuseRegistry registry;
      core::InspectorCache cache;
      const chaos::u64 loop_id = rt::collective_counter(p);

      auto load_mesh = [&] {
        // A Fortran 90D "read" into the edge arrays: a modifying statement.
        e1.fill_by_global(
            [&](i64 g) { return ge1[static_cast<std::size_t>(g)]; });
        e2.fill_by_global(
            [&](i64 g) { return ge2[static_cast<std::size_t>(g)]; });
        registry.note_write(e1.dad());  // e1/e2 share reg2's DAD: one slot
      };
      load_mesh();

      auto slice = [](const dist::DistributedArray<i64>& a) {
        return std::vector<i64>(a.local().begin(), a.local().end());
      };

      f64 t_inspect = 0.0, t_execute = 0.0;
      for (int step = 0; step < kSteps; ++step) {
        if (step > 0 && step % kAdaptEvery == 0) {
          refine(step / kAdaptEvery);
          load_mesh();
        }
        // The guard decides hit / repair / miss; repair splices the saved
        // schedule for the ~3% changed endpoints instead of rebuilding.
        // With repair off we probe through the plain overload — the ledger
        // stays pure hit/miss and no repair machinery (or vote) runs.
        rt::ClockSection ti(p.clock());
        auto build = [&] {
          const std::vector<i64> s1 = slice(e1), s2 = slice(e2);
          return core::EdgeReductionLoop::inspect(
              p, *reg2, s1, s2, *reg, core::IterRule::MostLocalReferences,
              opts);
        };
        auto plan =
            opts.repair_enabled()
                ? cache.get_or_build<core::EdgeLoopPlan>(
                      loop_id, registry, {x.dad(), y.dad()}, {e1.dad()}, build,
                      [&](const std::shared_ptr<core::EdgeLoopPlan>& cached) {
                        const std::vector<i64> s1 = slice(e1), s2 = slice(e2);
                        return core::EdgeReductionLoop::repair(p, *cached, s1,
                                                               s2, *reg);
                      })
                : cache.get_or_build<core::EdgeLoopPlan>(
                      loop_id, registry, {x.dad(), y.dad()}, {e1.dad()},
                      build);
        t_inspect += ti.elapsed_sec();

        rt::ClockSection te(p.clock());
        core::EdgeReductionLoop::execute(
            p, *plan, x, y, [](f64 a, f64 b) { return a * b; },
            [](f64 a, f64 b) { return a - b; });
        t_execute += te.elapsed_sec();
      }

      f64 local_sum = 0.0;
      for (const f64 v : y.local()) local_sum += v;
      const f64 sum = rt::allreduce_sum(p, local_sum);
      const f64 mi = rt::allreduce_max(p, t_inspect);
      const f64 me = rt::allreduce_max(p, t_execute);
      if (p.is_root()) {
        out.t_inspect = mi;
        out.t_execute = me;
        out.hits = cache.stats().hits;
        out.misses = cache.stats().misses;
        out.repairs = cache.stats().repairs;
        out.repair_fallbacks = cache.stats().repair_fallbacks;
        out.checksum = sum;
      }
    });
  }

  for (int m = 0; m < 2; ++m) {
    const ModeResult& r = results[m];
    std::printf("  repair=%-4s ledger: %lld hits, %lld repairs, %lld misses "
                "(%lld fallbacks) — inspector %.3f s, executor %.3f s\n",
                core::to_string(modes[m]), static_cast<long long>(r.hits),
                static_cast<long long>(r.repairs),
                static_cast<long long>(r.misses),
                static_cast<long long>(r.repair_fallbacks), r.t_inspect,
                r.t_execute);
  }
  const f64 off = results[0].t_inspect, rep = results[1].t_inspect;
  if (off > 0.0) {
    std::printf("  repair saves %.1f%% of inspector virtual time (%.3f s -> "
                "%.3f s); results agree exactly (checksum "
                "%.6g vs %.6g)\n",
                100.0 * (off - rep) / off, off, rep, results[0].checksum,
                results[1].checksum);
  }
  if (results[0].checksum != results[1].checksum) {
    std::printf("  ERROR: repaired run diverged from rebuilt run\n");
    return 1;
  }
  return 0;
}
