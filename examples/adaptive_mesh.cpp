// Adaptive-mesh scenario: the reason Section 3's conservative tracking
// exists. An adaptive CFD solver sweeps its edge list every time step, but
// occasionally ADAPTS the mesh (the edge list changes). Schedules must be
// reused across the unchanged steps and rebuilt — automatically — after
// every adaptation. This example runs 30 time steps with an adaptation every
// 10, and prints the inspector hit/miss ledger plus the virtual-time savings.
//
// Usage: ./examples/adaptive_mesh [procs]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/forall.hpp"
#include "core/mapper.hpp"
#include "core/reuse.hpp"
#include "rt/collectives.hpp"
#include "workload/mesh.hpp"

namespace rt = chaos::rt;
namespace dist = chaos::dist;
namespace core = chaos::core;
namespace wl = chaos::wl;
using chaos::f64;
using chaos::i64;

int main(int argc, char** argv) {
  const int procs = argc > 1 ? std::atoi(argv[1]) : 8;
  constexpr int kSteps = 30;
  constexpr int kAdaptEvery = 10;

  // "Adaptation" = regenerating the mesh with a different jitter seed: same
  // node count, different connectivity — exactly what refinement does to an
  // edge list.
  std::vector<wl::Mesh> meshes;
  for (int a = 0; a < kSteps / kAdaptEvery; ++a) {
    meshes.push_back(wl::make_tet_mesh(14, 14, 14, 1000 + static_cast<chaos::u64>(a)));
  }
  const i64 nnodes = meshes[0].nnodes;
  const i64 nedges = meshes[0].nedges;
  std::printf("adaptive_mesh: %lld nodes, ~%lld edges, %d procs, %d steps, "
              "adapt every %d\n",
              static_cast<long long>(nnodes), static_cast<long long>(nedges),
              procs, kSteps, kAdaptEvery);

  rt::Machine machine(procs);
  machine.run([&](rt::Process& p) {
    auto reg = dist::Distribution::block(p, nnodes);
    auto reg2 = dist::Distribution::block(p, nedges);
    dist::DistributedArray<f64> x(p, reg), y(p, reg, 0.0);
    x.fill_by_global([](i64 g) { return 1.0 / (1.0 + static_cast<f64>(g)); });
    dist::DistributedArray<i64> e1(p, reg2), e2(p, reg2);

    core::ReuseRegistry registry;
    core::InspectorCache cache;
    const chaos::u64 loop_id = rt::collective_counter(p);

    auto load_mesh = [&](const wl::Mesh& mesh) {
      // A Fortran 90D "read" into the edge arrays: a modifying statement.
      e1.fill_by_global([&](i64 g) {
        return mesh.edge1[static_cast<std::size_t>(g)];
      });
      e2.fill_by_global([&](i64 g) {
        return mesh.edge2[static_cast<std::size_t>(g)];
      });
      registry.note_write(e1.dad());  // e1 and e2 share reg2's DAD: one slot
    };

    f64 t_inspect = 0.0, t_execute = 0.0;
    for (int step = 0; step < kSteps; ++step) {
      if (step % kAdaptEvery == 0) {
        load_mesh(meshes[static_cast<std::size_t>(step / kAdaptEvery)]);
      }
      // The guard decides whether the saved schedule is still valid.
      rt::ClockSection ti(p.clock());
      auto plan = cache.get_or_build<core::EdgeLoopPlan>(
          loop_id, registry, {x.dad(), y.dad()}, {e1.dad()}, [&] {
            std::vector<i64> s1(e1.local().begin(), e1.local().end());
            std::vector<i64> s2(e2.local().begin(), e2.local().end());
            return core::EdgeReductionLoop::inspect(p, *reg2, s1, s2, *reg);
          });
      t_inspect += ti.elapsed_sec();

      rt::ClockSection te(p.clock());
      core::EdgeReductionLoop::execute(
          p, *plan, x, y, [](f64 a, f64 b) { return a * b; },
          [](f64 a, f64 b) { return a - b; });
      t_execute += te.elapsed_sec();
    }

    const f64 mi = rt::allreduce_max(p, t_inspect);
    const f64 me = rt::allreduce_max(p, t_execute);
    if (p.is_root()) {
      std::printf("  inspector runs: %lld (one per adaptation), schedule "
                  "reuses: %lld\n",
                  static_cast<long long>(cache.stats().misses),
                  static_cast<long long>(cache.stats().hits));
      std::printf("  modeled time — inspectors: %.3f s, executors: %.3f s\n",
                  mi, me);
      std::printf("  without reuse the inspector cost would be ~%.1fx "
                  "larger (%d runs instead of %lld)\n",
                  static_cast<f64>(kSteps) /
                      static_cast<f64>(cache.stats().misses),
                  kSteps, static_cast<long long>(cache.stats().misses));
    }
  });
  return 0;
}
