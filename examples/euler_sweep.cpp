// Unstructured-mesh Euler edge sweep: the paper's headline workload (a loop
// over the edges of a 3-D unstructured mesh, Mavriplis-style), run through
// the full five-phase pipeline of Figure 2:
//
//   A  CONSTRUCT the GeoCoL graph from the edge list
//   B  partition it (RCB / RSB / ... — pick on the command line)
//   C  REDISTRIBUTE the node arrays onto the new irregular distribution
//   D  inspector: partition iterations, build communication schedules
//   E  executor: sweep the edges for many timesteps, reusing the schedule
//
// Usage: ./examples/euler_sweep [partitioner] [procs] [steps]
//        partitioner in {BLOCK, CYCLIC, RANDOM, RCB, INERTIAL, RSB, RCB+KL}
#include <cstdio>
#include <cstdlib>
#include <cmath>
#include <string>
#include <vector>

#include "core/forall.hpp"
#include "core/mapper.hpp"
#include "partition/metrics.hpp"
#include "rt/collectives.hpp"
#include "workload/mesh.hpp"

namespace rt = chaos::rt;
namespace dist = chaos::dist;
namespace core = chaos::core;
namespace wl = chaos::wl;
using chaos::f64;
using chaos::i64;

int main(int argc, char** argv) {
  const std::string partitioner = argc > 1 ? argv[1] : "RCB";
  const int procs = argc > 2 ? std::atoi(argv[2]) : 8;
  const int steps = argc > 3 ? std::atoi(argv[3]) : 20;

  const wl::Mesh mesh = wl::mesh_10k();
  std::printf("euler_sweep: 10K mesh (%lld nodes, %lld edges), %s, %d procs, "
              "%d steps\n",
              static_cast<long long>(mesh.nnodes),
              static_cast<long long>(mesh.nedges), partitioner.c_str(), procs,
              steps);

  rt::Machine machine(procs);
  machine.run([&](rt::Process& p) {
    // Default decomposition (Figure 4, statements S1-S4).
    auto reg = dist::Distribution::block(p, mesh.nnodes);
    auto reg2 = dist::Distribution::block(p, mesh.nedges);
    dist::DistributedArray<f64> x(p, reg), y(p, reg, 0.0);
    x.fill_by_global([&](i64 g) {
      return std::sin(0.01 * static_cast<f64>(g));
    });

    std::vector<i64> e1, e2;
    std::vector<f64> xc, yc, zc;
    for (i64 l = 0; l < reg2->my_local_size(); ++l) {
      const i64 e = reg2->global_of(p.rank(), l);
      e1.push_back(mesh.edge1[static_cast<std::size_t>(e)]);
      e2.push_back(mesh.edge2[static_cast<std::size_t>(e)]);
    }
    for (i64 l = 0; l < reg->my_local_size(); ++l) {
      const i64 g = reg->global_of(p.rank(), l);
      xc.push_back(mesh.x[static_cast<std::size_t>(g)]);
      yc.push_back(mesh.y[static_cast<std::size_t>(g)]);
      zc.push_back(mesh.z[static_cast<std::size_t>(g)]);
    }

    // Phase A: CONSTRUCT G (nnode, GEOMETRY(3,...), LINK(nedge, e1, e2)).
    rt::ClockSection t_graph(p.clock());
    core::GeoColBuilder builder(p, reg);
    const std::span<const f64> coords[] = {xc, yc, zc};
    builder.geometry(coords).link(e1, e2);
    auto geocol = builder.build();
    const f64 graph_sec = t_graph.elapsed_sec();

    // Phase B: SET distfmt BY PARTITIONING G USING <partitioner>.
    rt::ClockSection t_part(p.clock());
    core::ReuseRegistry registry;
    auto distfmt = core::set_by_partitioning(p, *geocol, partitioner);
    const f64 part_sec = t_part.elapsed_sec();

    // Phase C: REDISTRIBUTE reg(distfmt).
    rt::ClockSection t_remap(p.clock());
    core::Redistributor rd(&registry);
    rd.add(x).add(y);
    rd.apply(p, distfmt);
    const f64 remap_sec = t_remap.elapsed_sec();

    // Phase D: inspector, constructed through the unified PlanOptions
    // surface (flat locate on: the paged protocol the bench baselines use).
    rt::ClockSection t_insp(p.clock());
    const core::PlanOptions opts{.flat_locate = true};
    auto plan = core::EdgeReductionLoop::inspect(
        p, *reg2, e1, e2, *distfmt, core::IterRule::MostLocalReferences,
        opts);
    const f64 insp_sec = t_insp.elapsed_sec();

    // Phase E: executor (flux-like kernel, ~30 flops per edge).
    rt::ClockSection t_exec(p.clock());
    for (int s = 0; s < steps; ++s) {
      core::EdgeReductionLoop::execute(
          p, *plan, x, y,
          [](f64 a, f64 b) { return (a - b) * (a + b) * 0.5; },
          [](f64 a, f64 b) { return (b - a) * (a + b) * 0.5; });
    }
    const f64 exec_sec = t_exec.elapsed_sec();

    const f64 checksum = rt::allreduce_sum(p, [&] {
      f64 s = 0.0;
      for (f64 v : y.local()) s += v;
      return s;
    }());
    const auto msgs = rt::allreduce_sum(p, plan->loc.schedule.messages(p.rank()));
    if (p.is_root()) {
      std::printf("  modeled phase times (virtual seconds, max over procs):\n");
      std::printf("    graph generation : %8.3f\n", graph_sec);
      std::printf("    partitioner      : %8.3f\n", part_sec);
      std::printf("    remap            : %8.3f\n", remap_sec);
      std::printf("    inspector        : %8.3f\n", insp_sec);
      std::printf("    executor (%3d x) : %8.3f\n", steps, exec_sec);
      std::printf("  gather messages per sweep (machine total): %lld\n",
                  static_cast<long long>(msgs));
      std::printf("  y checksum: %.6e\n", checksum);
    }
  });
  return 0;
}
