// Quickstart: the smallest complete CHAOS-RT program.
//
// Solves the paper's loop L2 (an edge sweep with reductions) over a random
// graph on 4 virtual processors:
//   1. distribute the node data (BLOCK) and the edge list (BLOCK),
//   2. run the INSPECTOR once (iteration partition + communication schedule),
//   3. run the EXECUTOR many times, reusing the schedule each time.
//
// Build & run:  ./examples/quickstart
#include <cstdio>
#include <vector>

#include "core/forall.hpp"
#include "rt/collectives.hpp"
#include "workload/rng.hpp"

namespace rt = chaos::rt;
namespace dist = chaos::dist;
namespace core = chaos::core;
using chaos::f64;
using chaos::i64;

int main() {
  constexpr i64 kNodes = 1000;
  constexpr i64 kEdges = 4000;
  constexpr int kProcs = 4;
  constexpr int kTimesteps = 10;

  // A reproducible random graph, generated identically on every process.
  chaos::wl::Rng rng(7);
  std::vector<i64> edge1(kEdges), edge2(kEdges);
  for (i64 e = 0; e < kEdges; ++e) {
    edge1[static_cast<std::size_t>(e)] = rng.below(kNodes);
    edge2[static_cast<std::size_t>(e)] = rng.below(kNodes);
  }

  rt::Machine machine(kProcs);
  machine.run([&](rt::Process& p) {
    // Phase 0: default BLOCK distributions for data and iterations.
    auto node_dist = dist::Distribution::block(p, kNodes);
    auto edge_dist = dist::Distribution::block(p, kEdges);

    dist::DistributedArray<f64> x(p, node_dist), y(p, node_dist, 0.0);
    x.fill_by_global([](i64 g) { return 1.0 / (1.0 + static_cast<f64>(g)); });

    // My slice of the edge arrays.
    std::vector<i64> e1, e2;
    for (i64 l = 0; l < edge_dist->my_local_size(); ++l) {
      const i64 e = edge_dist->global_of(p.rank(), l);
      e1.push_back(edge1[static_cast<std::size_t>(e)]);
      e2.push_back(edge2[static_cast<std::size_t>(e)]);
    }

    // INSPECTOR (collective, once): partitions iterations, builds the
    // communication schedule, assigns ghost-buffer slots. PlanOptions is the
    // unified construction surface (locate protocol, translation cache,
    // repair policy) — the defaults are right for a static mesh.
    const core::PlanOptions opts{};
    auto plan = core::EdgeReductionLoop::inspect(
        p, *edge_dist, e1, e2, *node_dist,
        core::IterRule::MostLocalReferences, opts);

    // EXECUTOR (collective, many times): the schedule is reused — this is
    // the paper's Section 3 payoff.
    for (int step = 0; step < kTimesteps; ++step) {
      core::EdgeReductionLoop::execute(
          p, *plan, x, y,
          [](f64 a, f64 b) { return a * b; },   // contribution to y(e1)
          [](f64 a, f64 b) { return a - b; });  // contribution to y(e2)
    }

    const f64 local_sum = [&] {
      f64 s = 0.0;
      for (f64 v : y.local()) s += v;
      return s;
    }();
    const f64 checksum = rt::allreduce_sum(p, local_sum);
    if (p.is_root()) {
      std::printf("quickstart: %d procs, %lld nodes, %lld edges\n", kProcs,
                  static_cast<long long>(kNodes),
                  static_cast<long long>(kEdges));
      std::printf("  iterations executed here: %lld (of %lld total)\n",
                  static_cast<long long>(plan->my_iterations()),
                  static_cast<long long>(kEdges));
      std::printf("  ghost slots on rank 0:    %lld\n",
                  static_cast<long long>(plan->loc.schedule.nghost));
      std::printf("  y checksum after %d steps: %.6f\n", kTimesteps,
                  checksum);
      std::printf("  modeled (virtual) time:   %.3f ms\n",
                  p.clock().now_us() / 1000.0);
    }
  });
  return 0;
}
