// Molecular-dynamics electrostatic force loop: the paper's second workload
// (CHARMM 648-atom water simulation). The nonbonded force sweep over the
// cutoff pair list is exactly loop L2: each pair contributes equal and
// opposite Coulomb forces to its two atoms. Atoms are partitioned with
// coordinate bisection; the pair list keeps its schedule until the neighbor
// list is rebuilt — at which point the reuse guard correctly invalidates.
//
// Usage: ./examples/md_forces [procs] [steps]
#include <cstdio>
#include <cstdlib>
#include <cmath>
#include <vector>

#include "core/forall.hpp"
#include "core/mapper.hpp"
#include "core/reuse.hpp"
#include "rt/collectives.hpp"
#include "workload/md.hpp"

namespace rt = chaos::rt;
namespace dist = chaos::dist;
namespace core = chaos::core;
namespace wl = chaos::wl;
using chaos::f64;
using chaos::i64;

int main(int argc, char** argv) {
  const int procs = argc > 1 ? std::atoi(argv[1]) : 8;
  const int steps = argc > 2 ? std::atoi(argv[2]) : 25;

  const wl::MdSystem sys = wl::make_water_box();  // 648 atoms, 8 A cutoff
  std::printf("md_forces: %lld atoms, %lld pairs (cutoff %.1f A), %d procs\n",
              static_cast<long long>(sys.natoms),
              static_cast<long long>(sys.npairs), sys.cutoff, procs);

  rt::Machine machine(procs);
  machine.run([&](rt::Process& p) {
    auto atom_dist = dist::Distribution::block(p, sys.natoms);
    auto pair_dist = dist::Distribution::block(p, sys.npairs);

    // Per-atom data: charge-scaled coordinate potential (we fold charge and
    // a coordinate hash into one scalar so the pair kernel stays the
    // two-argument f/g shape of loop L2).
    dist::DistributedArray<f64> q(p, atom_dist), fx(p, atom_dist, 0.0);
    q.fill_by_global([&](i64 g) {
      return sys.charge[static_cast<std::size_t>(g)] /
             (1.0 + 0.01 * sys.x[static_cast<std::size_t>(g)]);
    });

    std::vector<i64> p1, p2;
    for (i64 l = 0; l < pair_dist->my_local_size(); ++l) {
      const i64 e = pair_dist->global_of(p.rank(), l);
      p1.push_back(sys.pair1[static_cast<std::size_t>(e)]);
      p2.push_back(sys.pair2[static_cast<std::size_t>(e)]);
    }

    // Partition atoms by their spatial position (coordinate bisection) so
    // interacting atoms land together.
    std::vector<f64> cx, cy, cz;
    for (i64 l = 0; l < atom_dist->my_local_size(); ++l) {
      const i64 g = atom_dist->global_of(p.rank(), l);
      cx.push_back(sys.x[static_cast<std::size_t>(g)]);
      cy.push_back(sys.y[static_cast<std::size_t>(g)]);
      cz.push_back(sys.z[static_cast<std::size_t>(g)]);
    }
    core::GeoColBuilder builder(p, atom_dist);
    const std::span<const f64> coords[] = {cx, cy, cz};
    builder.geometry(coords);
    auto geocol = builder.build();
    core::ReuseRegistry registry;
    auto distfmt = core::set_by_partitioning(p, *geocol, "RCB");
    core::Redistributor rd(&registry);
    rd.add(q).add(fx);
    rd.apply(p, distfmt);

    // Unified plan construction (PlanOptions): the pair list is rebuilt
    // rarely, so a schedule repair after a neighbor-list update would be the
    // next step — Auto is the default policy.
    const core::PlanOptions opts{};
    auto plan = core::EdgeReductionLoop::inspect(
        p, *pair_dist, p1, p2, *distfmt, core::IterRule::MostLocalReferences,
        opts);

    // The electrostatic kernel: Coulomb-like pair interaction, ~40 flops.
    auto coulomb = [](f64 qa, f64 qb) {
      const f64 r = 1.0 + std::abs(qa - qb);  // surrogate distance
      return qa * qb / (r * r);
    };
    rt::ClockSection t_exec(p.clock());
    for (int s = 0; s < steps; ++s) {
      core::EdgeReductionLoop::execute(
          p, *plan, q, fx, coulomb,
          [&](f64 a, f64 b) { return -coulomb(a, b); }, /*flops=*/40.0);
    }
    const f64 exec_sec = t_exec.elapsed_sec();

    const f64 total_force = rt::allreduce_sum(p, [&] {
      f64 s = 0.0;
      for (f64 v : fx.local()) s += v;
      return s;
    }());
    if (p.is_root()) {
      std::printf("  executor: %d sweeps over %lld pairs in %.3f virtual s\n",
                  steps, static_cast<long long>(sys.npairs), exec_sec);
      std::printf("  net accumulated force (antisymmetric kernel): %.3e\n",
                  total_force);
      std::printf("  iterations on rank 0: %lld, ghosts: %lld\n",
                  static_cast<long long>(plan->my_iterations()),
                  static_cast<long long>(plan->loc.schedule.nghost));
    }
  });
  return 0;
}
