// Shared bench harness: workload construction, the hand-coded pipeline (the
// paper's "hand embedded" runtime calls), the compiler pipeline (through the
// chaos_lang front end), and paper-style table printing. All times reported
// are modeled virtual seconds on the simulated iPSC/860 (max over
// processes); see DESIGN.md §2 for the substitution argument.
#pragma once

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "core/forall.hpp"
#include "core/mapper.hpp"
#include "core/reuse.hpp"
#include "core/supervisor.hpp"
#include "lang/interp.hpp"
#include "lang/parser.hpp"
#include "rt/collectives.hpp"
#include "rt/retry.hpp"
#include "workload/md.hpp"
#include "workload/mesh.hpp"

namespace chaos::bench {

struct Workload {
  std::string name;
  i64 nnodes = 0;
  i64 nedges = 0;
  std::vector<i64> e1, e2;      // 0-based endpoint ids
  std::vector<f64> cx, cy, cz;  // node coordinates
  f64 flops_per_edge = 30.0;
};

[[nodiscard]] Workload workload_mesh_10k();
[[nodiscard]] Workload workload_mesh_53k();
[[nodiscard]] Workload workload_md_648();
[[nodiscard]] Workload workload_mesh_tiny();

struct PipelineConfig {
  /// Partitioner registry name, or "HPF-BLOCK" for the paper's naive
  /// baseline (keep the initial BLOCK distribution; no GeoCoL, no remap of
  /// the data arrays).
  std::string partitioner = "RCB";
  int iterations = 100;
  bool schedule_reuse = true;
  core::IterRule iter_rule = core::IterRule::MostLocalReferences;
  i64 ttable_page_size = 4096;
  bool ttable_replicated = false;
  /// Unified plan-construction options (DESIGN.md §14) applied to every plan
  /// the pipeline builds: flat locate protocol, translation cache, repair
  /// policy + threshold. Flat locate is on by default in the bench pipelines
  /// — the committed BENCH baselines are recorded with it — while library
  /// defaults stay off so unit-test modeled times are untouched. A non-null
  /// plan.translation_cache pointer is attached as-is (caller owns it).
  core::PlanOptions plan{.flat_locate = true};
  /// DEPRECATED (pre-PlanOptions knob): makes the pipeline construct and
  /// attach its own persistent dist::TranslationCache when plan's pointer is
  /// null. Pays one allreduce vote per localize and absorbs warm locate
  /// rounds, so it (correctly) LOWERS modeled times on no-reuse
  /// configurations — keep rows using it separate from paper-comparison
  /// rows. Prefer setting plan.translation_cache.
  bool translation_cache = false;
  /// DEPRECATED (pre-PlanOptions knob): still honored — ANDed with
  /// plan.flat_locate by effective_plan(). Prefer plan.flat_locate.
  bool flat_locate = true;

  /// The options every plan construction in the pipelines actually uses:
  /// `plan` with the deprecated bools merged in.
  [[nodiscard]] core::PlanOptions effective_plan() const {
    core::PlanOptions o = plan;
    o.flat_locate = plan.flat_locate && flat_locate;
    return o;
  }
  /// Supervision policy for the pipeline run (DESIGN.md §11): the whole
  /// body is one supervised phase, recovered + retried on transient
  /// failures. The default (max_attempts = 1) never retries, so every
  /// existing configuration behaves — and models — exactly as before.
  rt::RetryPolicy retry{.max_attempts = 1};
};

struct PhaseResult {
  f64 graph_gen = 0.0;
  f64 partitioner = 0.0;
  f64 inspector = 0.0;
  f64 remap = 0.0;
  f64 executor = 0.0;
  f64 wall_seconds = 0.0;   ///< host wall clock of the whole pipeline
  i64 gather_messages = 0;  ///< machine-total messages per executor sweep
  i64 gather_volume = 0;    ///< machine-total off-process words per sweep
  /// Modeled all-to-all traffic of the whole run (machine-total exchanges
  /// and off-process payload bytes, from rt::MessageStats).
  i64 alltoallv_calls = 0;
  i64 alltoallv_bytes = 0;
  /// Robustness counters (machine-total, DESIGN.md §10). All three are 0 on
  /// a healthy bench run; nonzero means a fault plan fired, a watchdog
  /// tripped, or a waiter was released by poison mid-pipeline. The machine
  /// counters reflect the FINAL attempt only (run() resets them), so a
  /// recovered run reads clean here and reports its history through the
  /// supervisor counters below.
  i64 faults_injected = 0;
  i64 timeouts = 0;
  i64 poisoned_waits = 0;
  /// Supervision counters (DESIGN.md §11), from the pipeline's Supervisor:
  /// attempts beyond the first, wall-clock backoff between them, and
  /// whether the run ultimately recovered. All zero on a clean run.
  i64 retries = 0;
  i64 recoveries = 0;
  f64 backoff_wall_ms = 0.0;
  /// Degradation counters (DESIGN.md §13): partner-checkpoint captures and
  /// their payload, segments/bytes re-adopted by shrink-remap restores, and
  /// machine width narrowings. All zero on a clean run.
  i64 checkpoint_captures = 0;
  i64 checkpoint_bytes = 0;
  i64 restored_segments = 0;
  i64 restored_bytes = 0;
  i64 shrinks = 0;
  /// Incremental schedule-repair counters (DESIGN.md §14), machine-total.
  /// Both zero on any non-adaptive run — the pipelines assert it on clean
  /// runs, since their indirection arrays never change after inspection.
  i64 schedule_repairs = 0;
  i64 repair_fallbacks = 0;

  [[nodiscard]] f64 total() const {
    return graph_gen + partitioner + inspector + remap + executor;
  }
};

/// The hand-coded path: direct CHAOS runtime calls, phases timed separately
/// (partition_iterations + indirection remap count as "remap"; localize as
/// "inspector" — matching the paper's row labels).
[[nodiscard]] PhaseResult run_hand_pipeline(int procs, const Workload& w,
                                            const PipelineConfig& cfg);

/// The compiler path: the same pipeline expressed as a mini-Fortran-90D
/// program executed by chaos_lang (Figure 4 + DO timestep loop).
[[nodiscard]] PhaseResult run_compiler_pipeline(int procs, const Workload& w,
                                                const PipelineConfig& cfg);

/// Process-lifetime pooled machine, one per process count: benches sweeping
/// many data points at the same P dispatch into the machine's parked worker
/// pool instead of constructing (and thus spawning threads for) a Machine
/// per point. run() resets stats/clocks/mailboxes, so results are identical
/// to a fresh machine.
[[nodiscard]] rt::Machine& pooled_machine(int procs);

// --- table printing ---------------------------------------------------------

/// Prints one table row: label then (measured, paper) column pairs.
void print_header(const std::string& title,
                  const std::vector<std::string>& columns);
void print_row(const std::string& label, const std::vector<f64>& measured,
               const std::vector<f64>& paper);
/// Table-wide robustness tally: fault/watchdog counters (§10) plus the
/// supervisor's retry counters (§11), aggregated over every run a table
/// made. All-zero is the healthy-bench signature.
struct RobustnessTally {
  i64 faults_injected = 0;
  i64 timeouts = 0;
  i64 poisoned_waits = 0;
  i64 retries = 0;
  i64 recoveries = 0;
  f64 backoff_wall_ms = 0.0;
  i64 checkpoint_captures = 0;
  i64 restored_segments = 0;
  i64 shrinks = 0;
  /// Schedule-repair activity (§14). Informational, not a health signal:
  /// adaptive benches repair on purpose, so clean() ignores these.
  i64 schedule_repairs = 0;
  i64 repair_fallbacks = 0;

  void add(const PhaseResult& r) {
    faults_injected += r.faults_injected;
    timeouts += r.timeouts;
    poisoned_waits += r.poisoned_waits;
    retries += r.retries;
    recoveries += r.recoveries;
    backoff_wall_ms += r.backoff_wall_ms;
    checkpoint_captures += r.checkpoint_captures;
    restored_segments += r.restored_segments;
    shrinks += r.shrinks;
    schedule_repairs += r.schedule_repairs;
    repair_fallbacks += r.repair_fallbacks;
  }
  [[nodiscard]] bool clean() const {
    return faults_injected == 0 && timeouts == 0 && poisoned_waits == 0 &&
           retries == 0 && recoveries == 0 && checkpoint_captures == 0 &&
           restored_segments == 0 && shrinks == 0;
  }
};

/// Prints the modeled-time note plus a robustness line (all-zero tally
/// prints as "clean run").
void print_footer(const RobustnessTally& tally = {});

}  // namespace chaos::bench
