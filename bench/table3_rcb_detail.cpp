// Table 3 of the paper: compiler-linked coordinate bisection (RCB)
// partitioner with schedule reuse — per-phase breakdown (partitioner,
// inspector, remap, executor x100, total) across all workload/processor
// configurations.
#include <cstdio>

#include "bench/common.hpp"

namespace bench = chaos::bench;
using chaos::f64;

namespace {

// Paper values; -1 marks entries illegible in the scanned table (the totals
// and the surrounding rows constrain them; see EXPERIMENTS.md).
// Machine-total robustness tally across every pipeline the table runs
// (printed by the footer; all-zero on a healthy bench).
chaos::bench::RobustnessTally g_tally;

struct PaperColumn {
  f64 partitioner, inspector, remap, executor, total;
};

void run_workload(const bench::Workload& w, const int (&procs)[3],
                  const PaperColumn (&paper)[3]) {
  std::vector<std::string> headers;
  std::vector<bench::PhaseResult> results;
  for (int k = 0; k < 3; ++k) {
    bench::PipelineConfig cfg;
    cfg.partitioner = "RCB";
    cfg.iterations = 100;
    cfg.schedule_reuse = true;
    results.push_back(bench::run_hand_pipeline(procs[k], w, cfg));
    g_tally.add(results.back());
    headers.push_back("P=" + std::to_string(procs[k]));
  }
  bench::print_header("Table 3 — " + w.name + " (RCB + schedule reuse)",
                      headers);
  auto row = [&](const char* label, auto measure, auto paperv) {
    std::vector<f64> m, pv;
    for (int k = 0; k < 3; ++k) {
      m.push_back(measure(results[static_cast<std::size_t>(k)]));
      pv.push_back(paperv(paper[k]));
    }
    bench::print_row(label, m, pv);
  };
  row("Partitioner",
      [](const bench::PhaseResult& r) { return r.partitioner + r.graph_gen; },
      [](const PaperColumn& c) { return c.partitioner; });
  row("Inspector",
      [](const bench::PhaseResult& r) { return r.inspector; },
      [](const PaperColumn& c) { return c.inspector; });
  row("Remap", [](const bench::PhaseResult& r) { return r.remap; },
      [](const PaperColumn& c) { return c.remap; });
  row("Executor (100x)",
      [](const bench::PhaseResult& r) { return r.executor; },
      [](const PaperColumn& c) { return c.executor; });
  row("Total", [](const bench::PhaseResult& r) { return r.total(); },
      [](const PaperColumn& c) { return c.total; });
  std::fflush(stdout);
}

}  // namespace

int main() {
  std::printf("Table 3: compiler-linked coordinate bisection with schedule "
              "reuse\n");

  const auto mesh10k = bench::workload_mesh_10k();
  const int p10k[3] = {4, 8, 16};
  const PaperColumn paper10k[3] = {{0.6, 1.2, 3.1, 12.7, 17.6},
                                   {0.6, 0.6, 1.6, 7.0, 10.8},
                                   {0.4, 0.4, 0.9, 6.0, 7.7}};
  run_workload(mesh10k, p10k, paper10k);

  const auto mesh53k = bench::workload_mesh_53k();
  const int p53k[3] = {16, 32, 64};
  const PaperColumn paper53k[3] = {{1.8, 2.0, 5.1, 21.5, 30.4},
                                   {1.6, 1.9, 3.0, 17.2, 23.0},
                                   {2.5, 0.7, 1.9, 12.3, 17.4}};
  run_workload(mesh53k, p53k, paper53k);

  const auto md = bench::workload_md_648();
  const int pmd[3] = {4, 8, 16};
  const PaperColumn papermd[3] = {{0.1, 2.2, 4.8, 8.1, 15.2},
                                  {0.1, 1.2, 2.6, 5.8, 9.7},
                                  {0.1, 0.7, 1.5, 5.7, 8.0}};
  run_workload(md, pmd, papermd);

  std::printf("\nshape check (paper): executor dominates the total; "
              "partitioner cost is small and roughly flat in P; inspector "
              "and remap shrink with P.\n");
  bench::print_footer(g_tally);
  return 0;
}
