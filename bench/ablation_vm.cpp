// Ablation F: bytecode VM vs tree-walking interpreter. The lang/ front end
// lowers every program to PlanIR once at Instance construction and executes
// through a flat dispatch loop with a program-level plan cache; the original
// tree walk survives behind set_tree_walk(true) as a debug oracle. This
// bench is the contract between them, on the paper's 10K mesh:
//   1. modeled virtual times are bit-identical between the two modes on
//      every configuration (the VM restructures host work only — it never
//      touches the virtual clock);
//   2. fetched result arrays and reuse-guard statistics are identical;
//   3. a warm VM re-execution is a pure plan-cache hit: K timesteps cost
//      exactly 1 inspector miss and K-1 CHECK_INCARNATION hits;
//   4. a warm VM sweep performs ZERO heap allocations per rank
//      (operator-new hook, two-point delta over timestep counts);
//   5. VM warm-sweep host wall time does not exceed the tree walk's (the
//      dispatch loop replaces AST visits + per-sweep guard scans).
// Results go to BENCH_vm.json.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "lang/interp.hpp"
#include "lang/parser.hpp"

// --- global allocation counter ----------------------------------------------

namespace {
std::atomic<long long> g_heap_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   (size + static_cast<std::size_t>(align) - 1) &
                                       ~(static_cast<std::size_t>(align) - 1))) {
    return p;
  }
  throw std::bad_alloc{};
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace bench = chaos::bench;
namespace rt = chaos::rt;
namespace lang = chaos::lang;
using chaos::f64;
using chaos::i64;

namespace {

constexpr int kProcs = 8;
constexpr int kStepsCold = 4;    // lower point of the two-point delta
constexpr int kStepsWarm = 52;   // upper point; also the reported run
constexpr int kWallRepeats = 5;  // min-of-N for the wall-time gate

/// The Figure-4 timestep pipeline with a parameterized partitioner prologue
/// and NSTEP timesteps.
std::string pipeline_source(bool partitioned) {
  std::string s = R"(
      REAL*8 x(nnode), y(nnode)
      INTEGER end_pt1(nedge), end_pt2(nedge)
C$    DYNAMIC, DECOMPOSITION reg(nnode), reg2(nedge)
C$    DISTRIBUTE reg(BLOCK), reg2(BLOCK)
C$    ALIGN x, y WITH reg
C$    ALIGN end_pt1, end_pt2 WITH reg2
)";
  if (partitioned) {
    s += R"(      REAL*8 cx(nnode), cy(nnode), cz(nnode)
C$    ALIGN cx, cy, cz WITH reg
C$    CONSTRUCT G (nnode, GEOMETRY(3, cx, cy, cz), LINK(nedge, end_pt1, end_pt2))
C$    SET distfmt BY PARTITIONING G USING RCB
C$    REDISTRIBUTE reg(distfmt)
)";
  }
  s += R"(      DO step = 1, nstep
      FORALL i = 1, nedge
        REDUCE(ADD, y(end_pt1(i)), x(end_pt1(i)) * x(end_pt2(i)))
        REDUCE(ADD, y(end_pt2(i)), x(end_pt1(i)) - x(end_pt2(i)))
      END FORALL
      END DO
)";
  return s;
}

struct Config {
  std::string name;
  bool partitioned = true;
  bool reuse = true;
  bool flat_locate = true;
};

struct ModeResult {
  std::string mode;  // "vm" or "tree_walk"
  lang::PhaseTimes phases;
  std::vector<f64> y;  // fetched result at kStepsWarm
  i64 cache_hits = 0, cache_misses = 0;
  f64 per_sweep_wall_us = 0.0;
  f64 allocs_per_sweep_per_rank = 0.0;
  f64 wall_seconds = 0.0;  // whole kStepsWarm pipeline, median
};

/// One full pipeline execution at @p nstep timesteps; returns the host wall
/// seconds of execute() itself (max over ranks, excluding worker-pool
/// dispatch) and fills the introspection fields when @p out is given.
f64 run_once(const lang::Program& prog, const bench::Workload& w,
             const Config& cfg, bool tree_walk, int nstep, ModeResult* out) {
  rt::Machine& machine = bench::pooled_machine(kProcs);
  f64 exec_wall = 0.0;
  machine.run([&](rt::Process& p) {
    lang::Instance inst(prog);
    inst.set_tree_walk(tree_walk);
    inst.set_schedule_reuse(cfg.reuse);
    inst.set_flat_locate(cfg.flat_locate);
    inst.set_param("NNODE", w.nnodes);
    inst.set_param("NEDGE", w.nedges);
    inst.set_param("NSTEP", nstep);
    std::vector<f64> x0(static_cast<std::size_t>(w.nnodes));
    for (i64 i = 0; i < w.nnodes; ++i) {
      x0[static_cast<std::size_t>(i)] =
          1.0 + static_cast<f64>(i % 17) * 0.25;
    }
    inst.bind_real("X", std::move(x0));
    auto to_1based = [](const std::vector<i64>& v) {
      std::vector<i64> r(v);
      for (auto& e : r) e += 1;
      return r;
    };
    inst.bind_int("END_PT1", to_1based(w.e1));
    inst.bind_int("END_PT2", to_1based(w.e2));
    if (cfg.partitioned) {
      inst.bind_real("CX", w.cx);
      inst.bind_real("CY", w.cy);
      inst.bind_real("CZ", w.cz);
    }
    rt::barrier(p);
    const auto w0 = std::chrono::steady_clock::now();
    inst.execute(p);
    const f64 mine =
        std::chrono::duration<f64>(std::chrono::steady_clock::now() - w0)
            .count();
    const f64 wall = rt::allreduce_max(p, mine);
    if (p.is_root()) exec_wall = wall;
    if (out != nullptr) {
      auto y = inst.fetch_real(p, "Y");
      if (p.is_root()) {
        out->phases = inst.phases();
        out->y = std::move(y);
        out->cache_hits = inst.cache_stats().hits;
        out->cache_misses = inst.cache_stats().misses;
      }
    }
  });
  return exec_wall;
}

ModeResult run_mode(const lang::Program& prog, const bench::Workload& w,
                    const Config& cfg, bool tree_walk) {
  ModeResult r;
  r.mode = tree_walk ? "tree_walk" : "vm";

  // Warmup: constructs the pooled machine and faults in allocator arenas so
  // neither shows up in the allocation delta below.
  run_once(prog, w, cfg, tree_walk, kStepsCold, nullptr);

  // Allocation delta: extra heap allocations of (kStepsWarm - kStepsCold)
  // warm sweeps; the cold build cancels out. One untimed run per point.
  const long long a0 = g_heap_allocs.load(std::memory_order_relaxed);
  run_once(prog, w, cfg, tree_walk, kStepsCold, nullptr);
  const long long a1 = g_heap_allocs.load(std::memory_order_relaxed);
  run_once(prog, w, cfg, tree_walk, kStepsWarm, nullptr);
  const long long a2 = g_heap_allocs.load(std::memory_order_relaxed);
  r.allocs_per_sweep_per_rank =
      static_cast<f64>((a2 - a1) - (a1 - a0)) /
      (static_cast<f64>(kStepsWarm - kStepsCold) * static_cast<f64>(kProcs));

  // The reported run: phases, results, counters at kStepsWarm.
  run_once(prog, w, cfg, tree_walk, kStepsWarm, &r);
  return r;
}

/// Fills both modes' wall-time fields. The four measured points (two modes x
/// two timestep counts) are interleaved inside each repetition so slow host
/// drift (frequency scaling, background load) hits them equally, and the
/// min over repetitions is kept — the run least disturbed by the scheduler.
void measure_walls(const lang::Program& prog, const bench::Workload& w,
                   const Config& cfg, ModeResult* vm, ModeResult* tw) {
  f64 wall[2][2];  // [mode][point], mode 0 = vm
  for (int rep = 0; rep < kWallRepeats; ++rep) {
    for (int mode = 0; mode < 2; ++mode) {
      for (int point = 0; point < 2; ++point) {
        const int nstep = point == 0 ? kStepsCold : kStepsWarm;
        const f64 v = run_once(prog, w, cfg, mode == 1, nstep, nullptr);
        if (rep == 0 || v < wall[mode][point]) wall[mode][point] = v;
      }
    }
  }
  for (int mode = 0; mode < 2; ++mode) {
    ModeResult* r = mode == 0 ? vm : tw;
    r->wall_seconds = wall[mode][1];
    r->per_sweep_wall_us = (wall[mode][1] - wall[mode][0]) /
                           static_cast<f64>(kStepsWarm - kStepsCold) * 1e6;
  }
}

struct ConfigResult {
  Config cfg;
  ModeResult vm, tw;
  bool phases_identical = false;
  bool results_identical = false;
  bool stats_identical = false;
};

ConfigResult run_config(const lang::Program& prog, const bench::Workload& w,
                        const Config& cfg) {
  ConfigResult r;
  r.cfg = cfg;
  r.vm = run_mode(prog, w, cfg, /*tree_walk=*/false);
  r.tw = run_mode(prog, w, cfg, /*tree_walk=*/true);
  measure_walls(prog, w, cfg, &r.vm, &r.tw);
  r.phases_identical = r.vm.phases.graph_gen == r.tw.phases.graph_gen &&
                       r.vm.phases.partition == r.tw.phases.partition &&
                       r.vm.phases.remap == r.tw.phases.remap &&
                       r.vm.phases.inspector == r.tw.phases.inspector &&
                       r.vm.phases.executor == r.tw.phases.executor;
  r.results_identical = r.vm.y == r.tw.y;
  r.stats_identical = r.vm.cache_hits == r.tw.cache_hits &&
                      r.vm.cache_misses == r.tw.cache_misses;
  return r;
}

bool write_json(const std::vector<ConfigResult>& results) {
  std::FILE* f = std::fopen("BENCH_vm.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open BENCH_vm.json for writing\n");
    return false;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"lang_vm\",\n");
  std::fprintf(f, "  \"procs\": %d,\n", kProcs);
  std::fprintf(f, "  \"timesteps\": %d,\n", kStepsWarm);
  std::fprintf(f, "  \"configs\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    std::fprintf(
        f,
        "    {\"config\": \"%s\", "
        "\"modeled_total_seconds\": %.6f, "
        "\"phases_identical\": %s, \"results_identical\": %s, "
        "\"stats_identical\": %s, "
        "\"vm\": {\"per_sweep_wall_us\": %.2f, "
        "\"allocs_per_sweep_per_rank\": %.2f, \"wall_seconds\": %.6f, "
        "\"cache_hits\": %lld, \"cache_misses\": %lld}, "
        "\"tree_walk\": {\"per_sweep_wall_us\": %.2f, "
        "\"allocs_per_sweep_per_rank\": %.2f, \"wall_seconds\": %.6f, "
        "\"cache_hits\": %lld, \"cache_misses\": %lld}}%s\n",
        r.cfg.name.c_str(), r.vm.phases.total(),
        r.phases_identical ? "true" : "false",
        r.results_identical ? "true" : "false",
        r.stats_identical ? "true" : "false", r.vm.per_sweep_wall_us,
        r.vm.allocs_per_sweep_per_rank, r.vm.wall_seconds,
        static_cast<long long>(r.vm.cache_hits),
        static_cast<long long>(r.vm.cache_misses), r.tw.per_sweep_wall_us,
        r.tw.allocs_per_sweep_per_rank, r.tw.wall_seconds,
        static_cast<long long>(r.tw.cache_hits),
        static_cast<long long>(r.tw.cache_misses),
        i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  return true;
}

void print_result(const ConfigResult& r) {
  std::printf("%-12s modeled %9.4f s  %s %s %s  vm %8.1f us/sweep "
              "%6.2f allocs  tw %8.1f us/sweep %6.2f allocs\n",
              r.cfg.name.c_str(), r.vm.phases.total(),
              r.phases_identical ? "phases=ok" : "phases=DIFF",
              r.results_identical ? "results=ok" : "results=DIFF",
              r.stats_identical ? "stats=ok" : "stats=DIFF",
              r.vm.per_sweep_wall_us, r.vm.allocs_per_sweep_per_rank,
              r.tw.per_sweep_wall_us, r.tw.allocs_per_sweep_per_rank);
  std::fflush(stdout);
}

}  // namespace

int main() {
  std::printf("Ablation F: PlanIR bytecode VM vs tree-walking interpreter "
              "(10K mesh, P=%d, %d timesteps)\n\n",
              kProcs, kStepsWarm);

  const auto w = bench::workload_mesh_10k();
  const std::vector<Config> configs = {
      {"rcb_reuse", /*partitioned=*/true, /*reuse=*/true, /*flat=*/true},
      {"block_reuse", /*partitioned=*/false, /*reuse=*/true, /*flat=*/true},
      {"block_noreuse", /*partitioned=*/false, /*reuse=*/false,
       /*flat=*/true},
      {"rcb_pagedoff", /*partitioned=*/true, /*reuse=*/true, /*flat=*/false},
  };

  std::vector<ConfigResult> results;
  for (const auto& cfg : configs) {
    const auto prog = lang::compile(pipeline_source(cfg.partitioned));
    results.push_back(run_config(prog, w, cfg));
    print_result(results.back());
  }

  if (write_json(results)) std::printf("\nwrote BENCH_vm.json\n");

  // Hard gates (checked here so CI smoke fails loudly).
  int rc = 0;
  for (const auto& r : results) {
    if (!r.phases_identical) {
      std::fprintf(stderr,
                   "FAIL: %s modeled phase times differ between VM and tree "
                   "walk\n",
                   r.cfg.name.c_str());
      rc = 1;
    }
    if (!r.results_identical) {
      std::fprintf(stderr, "FAIL: %s fetched arrays differ between modes\n",
                   r.cfg.name.c_str());
      rc = 1;
    }
    if (!r.stats_identical) {
      std::fprintf(stderr,
                   "FAIL: %s reuse-guard statistics differ between modes\n",
                   r.cfg.name.c_str());
      rc = 1;
    }
    if (r.cfg.reuse &&
        (r.vm.cache_misses != 1 || r.vm.cache_hits != kStepsWarm - 1)) {
      std::fprintf(stderr,
                   "FAIL: %s VM warm path is not pure plan-cache hits "
                   "(%lld misses / %lld hits, want 1 / %d)\n",
                   r.cfg.name.c_str(),
                   static_cast<long long>(r.vm.cache_misses),
                   static_cast<long long>(r.vm.cache_hits), kStepsWarm - 1);
      rc = 1;
    }
    if (r.cfg.reuse && r.vm.allocs_per_sweep_per_rank != 0.0) {
      std::fprintf(stderr,
                   "FAIL: %s VM performed %.2f heap allocations per warm "
                   "sweep per rank (want 0)\n",
                   r.cfg.name.c_str(), r.vm.allocs_per_sweep_per_rank);
      rc = 1;
    }
  }
  // Dispatch overhead: VM warm sweeps must not be slower than the tree
  // walk's. Per-config deltas of a sync-heavy ~1ms quantity carry +-100us
  // scheduler jitter either way, so the gate pools the reuse configs (the
  // noreuse config re-runs the inspector each sweep and measures that, not
  // dispatch); 10% + 20us/config headroom absorbs the residual noise
  // without weakening the claim.
  f64 vm_sum_us = 0.0, tw_sum_us = 0.0;
  int pooled = 0;
  for (const auto& r : results) {
    if (!r.cfg.reuse) continue;
    vm_sum_us += r.vm.per_sweep_wall_us;
    tw_sum_us += r.tw.per_sweep_wall_us;
    ++pooled;
  }
  if (vm_sum_us > tw_sum_us * 1.10 + 20.0 * static_cast<f64>(pooled)) {
    std::fprintf(stderr,
                 "FAIL: VM warm sweeps total %.1f us across %d reuse "
                 "configs, exceeding the tree walk's %.1f us\n",
                 vm_sum_us, pooled, tw_sum_us);
    rc = 1;
  }
  if (rc == 0) {
    std::printf("\nPASS: VM and tree walk are bit-identical in modeled time, "
                "results, and guard statistics; warm VM sweeps are pure "
                "plan-cache hits, allocation-free, and at or under tree-walk "
                "dispatch cost\n");
  }
  return rc;
}
