// Ablation D: inspector memory layout + translation caching. The inspector
// is the cost that schedule reuse amortizes (Section 3) — but workloads that
// invalidate reuse (adaptive meshes) re-run it, so its own constant matters.
// Two implementations of the same localize:
//   seed     — the historical layout: translate EVERY reference through the
//              distribution (duplicates included), then dedup off-process
//              references with std::unordered_map<pair> and build nested
//              per-peer request vectors; everything reallocated per call;
//   dedup_ws — this PR: duplicate globals collapsed through the
//              InspectorWorkspace's flat dedup table BEFORE the locate, a
//              persistent dist::TranslationCache absorbing warm locate
//              rounds, and every buffer reused — zero heap allocations per
//              warm re-inspection.
// Measured per config: reference throughput (machine-total localized
// references per host wall second), heap allocations per warm re-inspection
// per rank (operator-new hook; must be exactly 0), translation-table locate
// queries (must not exceed distinct refs + cache misses), and locate wire
// bytes (request+reply words actually exchanged; the cache must cut >= 3x).
// Results go to BENCH_inspector.json.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <new>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench/common.hpp"
#include "dist/translation_cache.hpp"
#include "workload/rng.hpp"

// --- global allocation counter ----------------------------------------------

namespace {
std::atomic<long long> g_heap_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   (size + static_cast<std::size_t>(align) - 1) &
                                       ~(static_cast<std::size_t>(align) - 1))) {
    return p;
  }
  throw std::bad_alloc{};
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace bench = chaos::bench;
namespace rt = chaos::rt;
namespace dist = chaos::dist;
namespace core = chaos::core;
using chaos::f64;
using chaos::i32;
using chaos::i64;
using chaos::u64;

namespace {

// --- the historical localize, kept verbatim as the baseline -----------------

struct SeedPairHash {
  std::size_t operator()(const std::pair<i32, i64>& k) const {
    return static_cast<std::size_t>(dist::detail::mix64(
        (static_cast<u64>(static_cast<chaos::u32>(k.first)) << 40) ^
        static_cast<u64>(k.second)));
  }
};

core::Localized seed_localize(rt::Process& p, const dist::Distribution& d,
                              std::span<const i64> global_refs) {
  core::Localized out;
  out.refs.resize(global_refs.size());

  // Translate every reference, duplicates included.
  const auto entries = d.locate(p, global_refs);

  const i64 nlocal = d.my_local_size();
  std::unordered_map<std::pair<i32, i64>, i64, SeedPairHash> ordinal_of;
  ordinal_of.reserve(global_refs.size());
  std::vector<std::vector<i64>> requests(static_cast<std::size_t>(p.nprocs()));
  struct Pending {
    std::size_t pos;
    i32 owner;
    i64 ordinal;
  };
  std::vector<Pending> pending;
  pending.reserve(global_refs.size());

  for (std::size_t i = 0; i < global_refs.size(); ++i) {
    const auto& e = entries[i];
    if (e.proc == p.rank()) {
      out.refs[i] = e.local;
      continue;
    }
    ++out.off_process_refs;
    auto [it, inserted] = ordinal_of.try_emplace(
        {e.proc, e.local},
        static_cast<i64>(requests[static_cast<std::size_t>(e.proc)].size()));
    if (inserted) {
      requests[static_cast<std::size_t>(e.proc)].push_back(e.local);
    }
    pending.push_back(Pending{i, e.proc, it->second});
  }
  p.clock().charge_ops(static_cast<i64>(global_refs.size()) +
                           2 * out.off_process_refs,
                       p.params().mem_us_per_word);

  std::vector<i64> recv_offsets(static_cast<std::size_t>(p.nprocs()) + 1, 0);
  for (int r = 0; r < p.nprocs(); ++r) {
    recv_offsets[static_cast<std::size_t>(r) + 1] =
        recv_offsets[static_cast<std::size_t>(r)] +
        static_cast<i64>(requests[static_cast<std::size_t>(r)].size());
  }
  for (const auto& pe : pending) {
    out.refs[pe.pos] =
        nlocal + recv_offsets[static_cast<std::size_t>(pe.owner)] + pe.ordinal;
  }

  std::vector<i64> req_counts(static_cast<std::size_t>(p.nprocs()));
  for (int r = 0; r < p.nprocs(); ++r) {
    req_counts[static_cast<std::size_t>(r)] =
        recv_offsets[static_cast<std::size_t>(r) + 1] -
        recv_offsets[static_cast<std::size_t>(r)];
  }
  std::vector<i64> send_counts(static_cast<std::size_t>(p.nprocs()));
  rt::alltoall<i64>(p, req_counts, send_counts);

  std::vector<i64> send_offsets(static_cast<std::size_t>(p.nprocs()) + 1, 0);
  for (int r = 0; r < p.nprocs(); ++r) {
    send_offsets[static_cast<std::size_t>(r) + 1] =
        send_offsets[static_cast<std::size_t>(r)] +
        send_counts[static_cast<std::size_t>(r)];
  }
  const i64 total_ghost = recv_offsets[static_cast<std::size_t>(p.nprocs())];
  std::vector<i64> flat_requests;
  flat_requests.reserve(static_cast<std::size_t>(total_ghost));
  for (const auto& r : requests) {
    flat_requests.insert(flat_requests.end(), r.begin(), r.end());
  }
  std::vector<i64> send_indices(static_cast<std::size_t>(
      send_offsets[static_cast<std::size_t>(p.nprocs())]));
  rt::alltoallv_flat<i64>(p, flat_requests, recv_offsets, send_indices,
                          send_offsets);

  out.schedule.send_indices = std::move(send_indices);
  out.schedule.send_offsets = std::move(send_offsets);
  out.schedule.recv_offsets = std::move(recv_offsets);
  out.schedule.nghost = total_ghost;
  out.schedule.nlocal_at_build = nlocal;
  return out;
}

// --- configs ----------------------------------------------------------------

struct ConfigResult {
  std::string workload;
  std::string layout;  // "seed" or "dedup_ws"
  int procs = 0;
  int sweeps = 0;
  i64 refs_total = 0;      // machine-total references per inspection
  i64 distinct_total = 0;  // machine-total distinct references
  i64 elements_total = 0;  // references localized over all measured sweeps
  f64 wall_seconds = 0.0;
  f64 refs_per_sec = 0.0;
  f64 allocs_per_inspection_per_rank = 0.0;  // warm sweeps only
  i64 locate_queries = 0;     // machine-total, warmup + measured window
  i64 locate_wire_bytes = 0;  // request+reply payload actually exchanged
  i64 tcache_hits = 0;
  i64 tcache_misses = 0;
  f64 modeled_seconds = 0.0;
};

constexpr int kWarmupSweeps = 2;
constexpr int kSweeps = 8;

/// One wire round trip per distinct remote target: 8-byte request global +
/// 16-byte (proc, local) reply entry.
constexpr i64 kWireBytesPerQuery =
    static_cast<i64>(sizeof(i64) + sizeof(dist::Entry));

template <typename MakeRefs>
ConfigResult run_config(const std::string& workload, const std::string& layout,
                        int procs, i64 nnodes, MakeRefs&& make_refs) {
  ConfigResult r;
  r.workload = workload;
  r.layout = layout;
  r.procs = procs;
  r.sweeps = kSweeps;
  const bool ws_layout = layout == "dedup_ws";

  rt::Machine& machine = bench::pooled_machine(procs);
  machine.run([&](rt::Process& p) {
    // Irregular (paged) node distribution: the locate is a real exchange
    // round, as after any partitioner-driven REDISTRIBUTE.
    auto md = dist::Distribution::block(p, nnodes);
    std::vector<i64> map_slice(static_cast<std::size_t>(md->my_local_size()));
    for (std::size_t l = 0; l < map_slice.size(); ++l) {
      const i64 g = md->global_of(p.rank(), static_cast<i64>(l));
      map_slice[l] = (g * 11 + 2) % p.nprocs();
    }
    auto d = dist::Distribution::irregular_from_map(p, map_slice, *md);
    const std::vector<i64> refs = make_refs(p);

    // The cache's fixed storage (2^18 slots) is only paid by the layout
    // that probes it.
    std::unique_ptr<dist::TranslationCache> cache;
    core::InspectorWorkspace ws;
    if (ws_layout) {
      cache = std::make_unique<dist::TranslationCache>(1 << 18);
      ws.attach_cache(cache.get());
    }
    core::Localized out;

    // Warmup: sizes every workspace buffer and fills the cache (dedup_ws) /
    // faults in the allocator arenas (seed).
    for (int sweep = 0; sweep < kWarmupSweeps; ++sweep) {
      if (ws_layout) {
        core::localize(p, *d, refs, ws, out);
      } else {
        out = seed_localize(p, *d, refs);
      }
    }
    const i64 distinct = ws_layout ? ws.last_distinct_refs() : 0;
    const i64 refs_total = rt::allreduce_sum(p, static_cast<i64>(refs.size()));
    const i64 distinct_total = rt::allreduce_sum(p, distinct);

    rt::barrier(p);
    const long long allocs0 = g_heap_allocs.load(std::memory_order_relaxed);
    const auto w0 = std::chrono::steady_clock::now();
    rt::ClockSection section(p.clock());
    for (int sweep = 0; sweep < kSweeps; ++sweep) {
      if (ws_layout) {
        core::localize(p, *d, refs, ws, out);
      } else {
        out = seed_localize(p, *d, refs);
      }
    }
    rt::barrier(p);
    const f64 modeled = rt::allreduce_max(p, section.elapsed_sec());
    const auto& ts = d->table()->stats();
    const i64 queries_total = rt::allreduce_sum(p, ts.queries);
    const i64 wire_total = rt::allreduce_sum(p, ts.wire_queries);
    const i64 hits_total = rt::allreduce_sum(p, p.stats().tcache_hits);
    const i64 misses_total = rt::allreduce_sum(p, p.stats().tcache_misses);

    // Per-rank gate, checked where the per-rank numbers live: the
    // translation table must never see more than the distinct reference set
    // plus the cache misses that had to re-locate.
    if (ws_layout) {
      CHAOS_CHECK(ts.queries <= distinct + cache->stats().misses,
                  "inspector bench: locate query volume exceeds distinct "
                  "refs + cache misses");
    }

    if (p.is_root()) {
      r.wall_seconds =
          std::chrono::duration<f64>(std::chrono::steady_clock::now() - w0)
              .count();
      const long long allocs1 = g_heap_allocs.load(std::memory_order_relaxed);
      r.allocs_per_inspection_per_rank =
          static_cast<f64>(allocs1 - allocs0) /
          (static_cast<f64>(kSweeps) * static_cast<f64>(procs));
      r.refs_total = refs_total;
      r.distinct_total = distinct_total;
      r.elements_total = refs_total * kSweeps;
      r.locate_queries = queries_total;
      r.locate_wire_bytes = wire_total * kWireBytesPerQuery;
      r.tcache_hits = hits_total;
      r.tcache_misses = misses_total;
      r.modeled_seconds = modeled;
    }
  });
  r.refs_per_sec = r.wall_seconds > 0
                       ? static_cast<f64>(r.elements_total) / r.wall_seconds
                       : 0.0;
  return r;
}

std::vector<i64> mesh_endpoint_refs(rt::Process& p, const bench::Workload& w) {
  auto edist = dist::Distribution::block(p, w.nedges);
  std::vector<i64> refs;
  refs.reserve(static_cast<std::size_t>(2 * edist->my_local_size()));
  for (i64 l = 0; l < edist->my_local_size(); ++l) {
    const i64 e = edist->global_of(p.rank(), l);
    refs.push_back(w.e1[static_cast<std::size_t>(e)]);
    refs.push_back(w.e2[static_cast<std::size_t>(e)]);
  }
  return refs;
}

const ConfigResult* find(const std::vector<ConfigResult>& results,
                         const std::string& workload,
                         const std::string& layout) {
  for (const auto& r : results) {
    if (r.workload == workload && r.layout == layout) return &r;
  }
  return nullptr;
}

bool write_json(const std::vector<ConfigResult>& results) {
  std::FILE* f = std::fopen("BENCH_inspector.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open BENCH_inspector.json for writing\n");
    return false;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"inspector_localize\",\n");
  std::fprintf(f, "  \"sweeps\": %d,\n", kSweeps);
  std::fprintf(f, "  \"configs\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    f64 speedup = 0.0;
    f64 wire_cut = 0.0;
    if (const auto* base = find(results, r.workload, "seed")) {
      if (base->refs_per_sec > 0) speedup = r.refs_per_sec / base->refs_per_sec;
      if (r.locate_wire_bytes > 0) {
        wire_cut = static_cast<f64>(base->locate_wire_bytes) /
                   static_cast<f64>(r.locate_wire_bytes);
      }
    }
    std::fprintf(f,
                 "    {\"workload\": \"%s\", \"layout\": \"%s\", "
                 "\"procs\": %d, \"refs_total\": %lld, "
                 "\"distinct_total\": %lld, \"wall_seconds\": %.6f, "
                 "\"refs_per_sec_wall\": %.0f, "
                 "\"allocs_per_inspection_per_rank\": %.2f, "
                 "\"locate_queries\": %lld, \"locate_wire_bytes\": %lld, "
                 "\"tcache_hits\": %lld, \"tcache_misses\": %lld, "
                 "\"modeled_seconds\": %.6f, "
                 "\"speedup_vs_seed\": %.3f, "
                 "\"wire_bytes_cut_vs_seed\": %.3f}%s\n",
                 r.workload.c_str(), r.layout.c_str(), r.procs,
                 static_cast<long long>(r.refs_total),
                 static_cast<long long>(r.distinct_total), r.wall_seconds,
                 r.refs_per_sec, r.allocs_per_inspection_per_rank,
                 static_cast<long long>(r.locate_queries),
                 static_cast<long long>(r.locate_wire_bytes),
                 static_cast<long long>(r.tcache_hits),
                 static_cast<long long>(r.tcache_misses), r.modeled_seconds,
                 speedup, wire_cut, i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  return true;
}

void print_result(const ConfigResult& r) {
  std::printf("%-14s %-9s P=%-3d %11lld refs %12.0f refs/s %8.2f "
              "allocs/insp/rank %10lld locate-wire-B %8.3f s wall\n",
              r.workload.c_str(), r.layout.c_str(), r.procs,
              static_cast<long long>(r.refs_total), r.refs_per_sec,
              r.allocs_per_inspection_per_rank,
              static_cast<long long>(r.locate_wire_bytes), r.wall_seconds);
  std::fflush(stdout);
}

}  // namespace

int main() {
  std::printf("Ablation D: inspector layout — translate-first unordered_map "
              "vs dedup-first workspace + translation cache\n");
  std::printf("%d warmup + %d measured re-inspections per config, "
              "barrier-fenced; heap allocations counted globally\n\n",
              kWarmupSweeps, kSweeps);

  std::vector<ConfigResult> results;

  // 53K mesh at P=16: the paper's large workload; endpoint references hit
  // each node with ~6.7x mean multiplicity.
  {
    const auto w = bench::workload_mesh_53k();
    for (const char* layout : {"seed", "dedup_ws"}) {
      results.push_back(run_config(
          "53k_mesh", layout, 16, w.nnodes,
          [&](rt::Process& p) { return mesh_endpoint_refs(p, w); }));
      print_result(results.back());
    }
  }

  // Synthetic P=64: uniform random references at high rank count.
  {
    constexpr i64 kNodes = 1 << 17;
    constexpr i64 kRefsPerRank = 24 * 1024;
    for (const char* layout : {"seed", "dedup_ws"}) {
      results.push_back(run_config(
          "synthetic_p64", layout, 64, kNodes, [&](rt::Process& p) {
            chaos::wl::Rng rng(911 + static_cast<chaos::u64>(p.rank()) * 131);
            std::vector<i64> refs(static_cast<std::size_t>(kRefsPerRank));
            for (auto& v : refs) v = rng.below(kNodes);
            return refs;
          }));
      print_result(results.back());
    }
  }

  if (write_json(results)) std::printf("\nwrote BENCH_inspector.json\n");

  // Hard gates this PR claims (checked here so CI smoke fails loudly).
  int rc = 0;
  for (const auto& r : results) {
    if (r.layout != "dedup_ws") continue;
    if (r.allocs_per_inspection_per_rank != 0.0) {
      std::fprintf(stderr,
                   "FAIL: %s dedup_ws performed %.2f heap allocations per "
                   "warm re-inspection per rank (want 0)\n",
                   r.workload.c_str(), r.allocs_per_inspection_per_rank);
      rc = 1;
    }
    const auto* base = find(results, r.workload, "seed");
    if (base == nullptr || base->refs_per_sec <= 0) continue;
    if (r.refs_per_sec < 2.0 * base->refs_per_sec) {
      std::fprintf(stderr,
                   "FAIL: %s dedup_ws throughput %.0f refs/s is under 2x the "
                   "seed baseline %.0f\n",
                   r.workload.c_str(), r.refs_per_sec, base->refs_per_sec);
      rc = 1;
    }
    if (r.workload == "53k_mesh" &&
        r.locate_wire_bytes * 3 > base->locate_wire_bytes) {
      std::fprintf(stderr,
                   "FAIL: 53k_mesh dedup_ws locate wire volume %lld B is not "
                   ">=3x under the seed's %lld B\n",
                   static_cast<long long>(r.locate_wire_bytes),
                   static_cast<long long>(base->locate_wire_bytes));
      rc = 1;
    }
  }
  if (rc == 0) {
    std::printf("\nPASS: dedup_ws is allocation-free per warm re-inspection, "
                ">=2x seed throughput at P=16 and P=64, locate volume "
                "capped at distinct+misses, and >=3x less locate wire "
                "traffic on the 53K mesh\n");
  }
  return rc;
}
