// Google-benchmark micro suite for the CHAOS primitives: translation-table
// dereference, inspector localize (translate + dedup + schedule exchange),
// executor gather/scatter, and remap — host wall-clock throughput of the
// actual implementation (not modeled time).
#include <benchmark/benchmark.h>

#include <vector>

#include "core/executor.hpp"
#include "core/inspector.hpp"
#include "dist/remap.hpp"
#include "rt/collectives.hpp"
#include "workload/rng.hpp"

namespace rt = chaos::rt;
namespace dist = chaos::dist;
namespace core = chaos::core;
using chaos::f64;
using chaos::i64;

namespace {

constexpr int kProcs = 4;

std::vector<i64> random_refs(i64 n, i64 count, chaos::u64 seed) {
  chaos::wl::Rng rng(seed);
  std::vector<i64> refs(static_cast<std::size_t>(count));
  for (auto& r : refs) r = rng.below(n);
  return refs;
}

void BM_TranslationTableBuild(benchmark::State& state) {
  const i64 n = state.range(0);
  for (auto _ : state) {
    rt::Machine::run(kProcs, [&](rt::Process& p) {
      auto md = dist::Distribution::block(p, n);
      std::vector<i64> slice(static_cast<std::size_t>(md->my_local_size()));
      for (std::size_t l = 0; l < slice.size(); ++l) {
        const i64 g = md->global_of(p.rank(), static_cast<i64>(l));
        slice[l] = (g * 7 + 1) % p.nprocs();
      }
      auto d = dist::Distribution::irregular_from_map(p, slice, *md);
      benchmark::DoNotOptimize(d);
    });
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_TranslationTableBuild)->Arg(1 << 12)->Arg(1 << 16);

void BM_Dereference(benchmark::State& state) {
  const i64 n = 1 << 16;
  const i64 queries = state.range(0);
  for (auto _ : state) {
    state.PauseTiming();
    rt::Machine machine(kProcs);
    state.ResumeTiming();
    machine.run([&](rt::Process& p) {
      auto md = dist::Distribution::block(p, n);
      std::vector<i64> slice(static_cast<std::size_t>(md->my_local_size()));
      for (std::size_t l = 0; l < slice.size(); ++l) {
        const i64 g = md->global_of(p.rank(), static_cast<i64>(l));
        slice[l] = (g * 3 + 2) % p.nprocs();
      }
      auto d = dist::Distribution::irregular_from_map(p, slice, *md);
      const auto refs = random_refs(n, queries, 17 + p.rank());
      auto entries = d->locate(p, refs);
      benchmark::DoNotOptimize(entries);
    });
  }
  state.SetItemsProcessed(state.iterations() * queries * kProcs);
}
BENCHMARK(BM_Dereference)->Arg(1 << 12)->Arg(1 << 15);

void BM_Localize(benchmark::State& state) {
  const i64 n = 1 << 16;
  const i64 refs_per_proc = state.range(0);
  for (auto _ : state) {
    rt::Machine::run(kProcs, [&](rt::Process& p) {
      auto d = dist::Distribution::block(p, n);
      const auto refs = random_refs(n, refs_per_proc, 99 + p.rank());
      auto loc = core::localize(p, *d, refs);
      benchmark::DoNotOptimize(loc);
    });
  }
  state.SetItemsProcessed(state.iterations() * refs_per_proc * kProcs);
}
BENCHMARK(BM_Localize)->Arg(1 << 12)->Arg(1 << 15);

void BM_GatherScatter(benchmark::State& state) {
  const i64 n = 1 << 16;
  const i64 refs_per_proc = state.range(0);
  for (auto _ : state) {
    rt::Machine::run(kProcs, [&](rt::Process& p) {
      auto d = dist::Distribution::block(p, n);
      dist::DistributedArray<f64> x(p, d, 1.0);
      const auto refs = random_refs(n, refs_per_proc, 7 + p.rank());
      auto loc = core::localize(p, *d, refs);
      x.resize_ghost(loc.schedule.nghost);
      // Steady-state executor idiom: one workspace reused across sweeps,
      // so everything after the first sweep is allocation-free.
      core::ExecutorWorkspace<f64> ws;
      for (int sweep = 0; sweep < 8; ++sweep) {
        core::gather_ghosts<f64>(p, loc.schedule, x.local(), x.ghost(), ws);
        const auto acc = ws.ghost_accumulator(loc.schedule, 0.5);
        core::scatter_reduce<f64>(p, loc.schedule, x.local(), acc,
                                  core::ReduceOp::Add, ws);
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * refs_per_proc * kProcs * 8);
}
BENCHMARK(BM_GatherScatter)->Arg(1 << 12)->Arg(1 << 15);

void BM_Remap(benchmark::State& state) {
  const i64 n = state.range(0);
  for (auto _ : state) {
    rt::Machine::run(kProcs, [&](rt::Process& p) {
      auto a = dist::Distribution::block(p, n);
      auto b = dist::Distribution::cyclic(p, n);
      dist::DistributedArray<f64> x(p, a, 2.0);
      auto plan = dist::build_remap(p, *a, *b);
      auto fresh = dist::apply_remap<f64>(p, plan, x.local());
      benchmark::DoNotOptimize(fresh);
    });
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Remap)->Arg(1 << 12)->Arg(1 << 16);

void BM_DedupHashing(benchmark::State& state) {
  // The inspector's duplicate-removal: many references, few targets.
  const i64 n = 1 << 16;
  const i64 refs_per_proc = state.range(0);
  for (auto _ : state) {
    rt::Machine::run(kProcs, [&](rt::Process& p) {
      auto d = dist::Distribution::block(p, n);
      // Every reference hits one of 64 hot targets: dedup collapses all.
      std::vector<i64> refs(static_cast<std::size_t>(refs_per_proc));
      for (std::size_t i = 0; i < refs.size(); ++i) {
        refs[i] = static_cast<i64>((i * 37) % 64);
      }
      auto loc = core::localize(p, *d, refs);
      benchmark::DoNotOptimize(loc);
    });
  }
  state.SetItemsProcessed(state.iterations() * refs_per_proc * kProcs);
}
BENCHMARK(BM_DedupHashing)->Arg(1 << 15);

}  // namespace

BENCHMARK_MAIN();
