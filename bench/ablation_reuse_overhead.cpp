// Ablation A: what does the Section 3 tracking machinery itself cost?
//
// The paper argues the runtime overhead of maintaining nmod / last_mod and
// checking the three conditions is "likely to be small" because it is paid
// once per loop, not per element. This bench measures
//   (1) the host cost of one reuse-guard check (hit and miss paths),
//   (2) pipeline totals when the indirection array is invalidated every k-th
//       iteration — sweeping the spectrum between Table 1's two extremes.
#include <chrono>
#include <cstdio>

#include "bench/common.hpp"
#include "core/reuse.hpp"

namespace bench = chaos::bench;
namespace core = chaos::core;
namespace dist = chaos::dist;
namespace rt = chaos::rt;
using chaos::f64;
using chaos::i64;

namespace {

/// Hand pipeline where the indirection arrays are marked modified every
/// @p invalidate_every iterations (0 = never).
f64 run_with_invalidation(int procs, const bench::Workload& w,
                          int invalidate_every) {
  f64 total = 0.0;
  rt::Machine machine(procs);
  machine.run([&](rt::Process& p) {
    auto reg = dist::Distribution::block(p, w.nnodes);
    auto reg2 = dist::Distribution::block(p, w.nedges);
    dist::DistributedArray<f64> x(p, reg), y(p, reg, 0.0);
    x.fill_by_global([](i64 g) { return static_cast<f64>(g % 7); });
    std::vector<i64> e1, e2;
    for (i64 l = 0; l < reg2->my_local_size(); ++l) {
      const i64 e = reg2->global_of(p.rank(), l);
      e1.push_back(w.e1[static_cast<std::size_t>(e)]);
      e2.push_back(w.e2[static_cast<std::size_t>(e)]);
    }

    core::ReuseRegistry registry;
    core::InspectorCache cache;
    registry.note_write(reg2->dad());
    const chaos::u64 loop_id = 42;

    rt::ClockSection section(p.clock());
    for (int it = 0; it < 100; ++it) {
      if (invalidate_every > 0 && it > 0 && it % invalidate_every == 0) {
        // "an array intrinsic may have written to the indirection array"
        registry.note_write(reg2->dad());
      }
      auto plan = cache.get_or_build<core::EdgeLoopPlan>(
          loop_id, registry, {x.dad(), y.dad()}, {reg2->dad()}, [&] {
            return core::EdgeReductionLoop::inspect(p, *reg2, e1, e2, *reg);
          });
      core::EdgeReductionLoop::execute(
          p, *plan, x, y, [](f64 a, f64 b) { return a + b; },
          [](f64 a, f64 b) { return a - b; }, w.flops_per_edge);
    }
    const f64 t = rt::allreduce_max(p, section.elapsed_sec());
    if (p.is_root()) total = t;
  });
  return total;
}

}  // namespace

int main() {
  std::printf("Ablation A: cost of the schedule-reuse machinery itself\n\n");

  // (1) Microcost of the guard check, measured on the host.
  {
    core::ReuseRegistry reg;
    core::InspectorCache cache;
    const dist::Dad data{dist::DistKind::Irregular, 53428, 32, 0, 1};
    const dist::Dad ind{dist::DistKind::Block, 371000, 32, 11594, 2};
    reg.note_write(ind);
    auto product = cache.get_or_build<int>(1, reg, {data, data}, {ind}, [] {
      return std::make_shared<int>(0);
    });
    (void)product;
    constexpr int kChecks = 1000000;
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kChecks; ++i) {
      auto r = cache.get_or_build<int>(1, reg, {data, data}, {ind}, [] {
        return std::make_shared<int>(0);
      });
      (void)r;
    }
    const f64 ns = std::chrono::duration<f64, std::nano>(
                       std::chrono::steady_clock::now() - t0)
                       .count() /
                   kChecks;
    std::printf("guard check (hit path):   %7.1f ns per FORALL encounter\n",
                ns);
    std::printf("  -> once per loop, not per element: negligible next to any "
                "executor sweep (paper's claim).\n\n");
  }

  // (2) Invalidation-frequency sweep on the 10K mesh at 8 processors.
  const auto w = bench::workload_mesh_10k();
  std::printf("invalidation sweep, 10K mesh @ 8 procs, 100 iterations "
              "(modeled seconds):\n");
  std::printf("%-28s %12s %12s\n", "indirection modified", "total (s)",
              "vs never");
  const f64 never = run_with_invalidation(8, w, 0);
  std::printf("%-28s %12.2f %12s\n", "never (full reuse)", never, "1.00x");
  for (int k : {50, 10, 5, 2, 1}) {
    const f64 t = run_with_invalidation(8, w, k);
    std::printf("%-28s %12.2f %11.2fx\n",
                ("every " + std::to_string(k) + " iterations").c_str(), t,
                t / never);
    std::fflush(stdout);
  }
  std::printf("\nshape check: cost interpolates smoothly between Table 1's "
              "reuse and no-reuse extremes; tracking itself adds ~nothing.\n");
  return 0;
}
